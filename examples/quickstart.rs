//! Quickstart: the paper's Figure 4 example, line for line.
//!
//! WRITE:  1. collectively create the dataset
//!         2. collectively define dimensions/variables, end define mode
//!         3. `ncmpi_put_vara_all` — collective write of each rank's block
//!         4. collectively close
//! READ:   1. collectively open
//!         2. inquire about the dataset
//!         3. `ncmpi_get_vars_all` — collective strided read
//!         4. collectively close
//!
//! Run with: `cargo run --release --example quickstart`

use hpc_sim::SimConfig;
use pnetcdf::{Dataset, Datatype, Info, NcType, Version};
use pnetcdf_mpi::run_world;
use pnetcdf_pfs::{Pfs, StorageMode};

fn main() {
    let nprocs = 4;
    let cfg = SimConfig::sdsc_blue_horizon();
    let pfs = Pfs::new(cfg.clone(), StorageMode::Full);
    let pfs_w = pfs.clone();

    // ---- WRITE (Figure 4a) -------------------------------------------------
    let run = run_world(nprocs, cfg.clone(), move |comm| {
        // 1  ncmpi_create(mpi_comm, filename, 0, mpi_info, &file_id);
        let mut file = Dataset::create(comm, &pfs_w, "quickstart.nc", Version::Cdf1, &Info::new())
            .expect("create");

        // 2  ncmpi_def_dim / ncmpi_def_var / ncmpi_enddef
        let y = file.def_dim("y", (nprocs * 4) as u64).expect("def_dim");
        let x = file.def_dim("x", 8).expect("def_dim");
        let var = file
            .def_var("field", NcType::Double, &[y, x])
            .expect("def_var");
        file.put_vatt_text(var, "units", "meters").expect("att");
        file.enddef().expect("enddef");

        // 3  ncmpi_put_vara_all(file_id, var_id, start[], count[], buffer, ...)
        let start = [(comm.rank() * 4) as u64, 0];
        let count = [4, 8];
        let buffer: Vec<f64> = (0..32)
            .map(|i| comm.rank() as f64 * 1000.0 + i as f64)
            .collect();
        file.put_vara_all(var, &start, &count, &buffer)
            .expect("put_vara_all");

        // 4  ncmpi_close(file_id);
        file.close().expect("close");
    });
    println!(
        "wrote quickstart.nc with {nprocs} ranks in {} (virtual time)",
        run.makespan
    );

    // ---- READ (Figure 4b) ----------------------------------------------------
    let pfs_r = pfs.clone();
    run_world(nprocs, cfg, move |comm| {
        // 1  ncmpi_open(mpi_comm, filename, 0, mpi_info, &file_id);
        let mut file =
            Dataset::open(comm, &pfs_r, "quickstart.nc", true, &Info::new()).expect("open");

        // 2  ncmpi_inq(file_id, ...);
        let info = file.inq();
        assert_eq!(info.nvars, 1);
        let var = file.inq_varid("field").expect("inq_varid");

        // 3  ncmpi_get_vars_all(...): every rank reads its rows, strided in x.
        let start = [(comm.rank() * 4) as u64, 0];
        let count = [4, 4];
        let stride = [1, 2];
        let mut buffer = vec![0u8; 16 * 8];
        let memtype = Datatype::contiguous(16, Datatype::double());
        file.get_vars_all_flexible(var, &start, &count, &stride, &mut buffer, 1, &memtype)
            .expect("get_vars_all");
        let vals: Vec<f64> = buffer
            .chunks_exact(8)
            .map(|c| f64::from_ne_bytes(c.try_into().unwrap()))
            .collect();
        assert_eq!(vals[0], comm.rank() as f64 * 1000.0);
        assert_eq!(vals[1], comm.rank() as f64 * 1000.0 + 2.0);

        // 4  ncmpi_close(file_id);
        file.close().expect("close");
        if comm.rank() == 0 {
            println!("read back strided selections on {} ranks: OK", comm.size());
        }
    });

    // The file is a real netCDF classic file.
    let bytes = pfs.open("quickstart.nc").unwrap().to_bytes();
    println!(
        "quickstart.nc: {} bytes, magic = {:?}",
        bytes.len(),
        &bytes[..4]
    );
}
