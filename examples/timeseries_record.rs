//! Record variables in parallel: an "observation stream" appending records
//! along the unlimited dimension — the netCDF pattern for data growing with
//! time stamps (paper §3.1) — written collectively by several ranks, then
//! audited with the serial library to show file-format interoperability.
//!
//! Run with: `cargo run --release --example timeseries_record`

use hpc_sim::SimConfig;
use netcdf_serial::{MemStore, NcFile};
use pnetcdf::{AttrValue, Dataset, Info, NcType, Version};
use pnetcdf_mpi::run_world;
use pnetcdf_pfs::{Pfs, StorageMode};

fn main() {
    let nprocs = 4;
    let stations_per_rank = 8u64;
    let nstations = nprocs as u64 * stations_per_rank;
    let nsteps = 24u64;

    let cfg = SimConfig::sdsc_blue_horizon();
    let pfs = Pfs::new(cfg.clone(), StorageMode::Full);
    let pfs2 = pfs.clone();

    let run = run_world(nprocs, cfg, move |comm| {
        let mut ds =
            Dataset::create(comm, &pfs2, "observations.nc", Version::Cdf1, &Info::new()).unwrap();
        // time is unlimited; two record variables share it.
        let time = ds.def_dim("time", pnetcdf::NC_UNLIMITED).unwrap();
        let station = ds.def_dim("station", nstations).unwrap();
        let temp = ds
            .def_var("temperature", NcType::Float, &[time, station])
            .unwrap();
        let pres = ds
            .def_var("pressure", NcType::Double, &[time, station])
            .unwrap();
        let elev = ds.def_var("elevation", NcType::Short, &[station]).unwrap();
        ds.put_vatt_text(temp, "units", "celsius").unwrap();
        ds.put_vatt_text(pres, "units", "hPa").unwrap();
        ds.put_gatt("version", AttrValue::Int(vec![1])).unwrap();
        ds.enddef().unwrap();

        // Fixed metadata once.
        let s0 = comm.rank() as u64 * stations_per_rank;
        let elevs: Vec<i16> = (0..stations_per_rank)
            .map(|i| ((s0 + i) * 10) as i16)
            .collect();
        ds.put_vara_all(elev, &[s0], &[stations_per_rank], &elevs)
            .unwrap();

        // Append one record per timestep; each rank contributes its
        // stations' columns of the record.
        for t in 0..nsteps {
            let temps: Vec<f32> = (0..stations_per_rank)
                .map(|i| 15.0 + (t as f32) * 0.1 + (s0 + i) as f32 * 0.01)
                .collect();
            let press: Vec<f64> = (0..stations_per_rank)
                .map(|i| 1013.0 - t as f64 + (s0 + i) as f64 * 0.5)
                .collect();
            ds.put_vara_all(temp, &[t, s0], &[1, stations_per_rank], &temps)
                .unwrap();
            ds.put_vara_all(pres, &[t, s0], &[1, stations_per_rank], &press)
                .unwrap();
        }
        assert_eq!(ds.numrecs(), nsteps);
        ds.close().unwrap();
    });

    println!(
        "appended {nsteps} records x {nstations} stations on {nprocs} ranks \
         in {} (virtual time)",
        run.makespan
    );

    // Audit the produced bytes with the *serial* library.
    let bytes = pfs.open("observations.nc").unwrap().to_bytes();
    println!("observations.nc: {} bytes", bytes.len());
    let mut f = NcFile::open(MemStore::from_bytes(bytes)).unwrap();
    assert_eq!(f.numrecs(), nsteps);
    let temp = f.var_id("temperature").unwrap();
    let last: Vec<f32> = f.get_vara(temp, &[nsteps - 1, 0], &[1, nstations]).unwrap();
    println!(
        "serial audit: record {} temperatures [{}..{}] = {:.2}..{:.2} °C",
        nsteps - 1,
        0,
        nstations - 1,
        last[0],
        last[nstations as usize - 1]
    );
}
