//! Post-processing workflow: tuning hints and mixing data modes.
//!
//! A "climatology" job sweeps monthly files, reading two small variables
//! from each (prefetched via the `nc_prefetch_vars` hint of paper §4.1),
//! then each rank independently extracts its own station's time series
//! (independent data mode), and finally the job writes a summary file
//! collectively with tuned two-phase hints.
//!
//! Run with: `cargo run --release --example postprocess_hints`

use hpc_sim::SimConfig;
use pnetcdf::{Dataset, Info, NcType, Version};
use pnetcdf_mpi::run_world;
use pnetcdf_pfs::{Pfs, StorageMode};

const MONTHS: usize = 12;
const STATIONS: u64 = 64;

fn main() {
    let nprocs = 4;
    let cfg = SimConfig::sdsc_blue_horizon();
    let pfs = Pfs::new(cfg.clone(), StorageMode::Full);

    // ---- produce the monthly input files --------------------------------
    let pfs_w = pfs.clone();
    run_world(nprocs, cfg.clone(), move |comm| {
        for m in 0..MONTHS {
            let mut ds = Dataset::create(
                comm,
                &pfs_w,
                &format!("month_{m:02}.nc"),
                Version::Cdf1,
                &Info::new(),
            )
            .unwrap();
            let s = ds.def_dim("station", STATIONS).unwrap();
            let t2m = ds.def_var("t2m_mean", NcType::Float, &[s]).unwrap();
            let pr = ds.def_var("precip", NcType::Float, &[s]).unwrap();
            ds.enddef().unwrap();
            let slab = STATIONS / comm.size() as u64;
            let s0 = comm.rank() as u64 * slab;
            let temps: Vec<f32> = (0..slab)
                .map(|i| 10.0 + m as f32 + (s0 + i) as f32 * 0.1)
                .collect();
            let rain: Vec<f32> = (0..slab)
                .map(|i| (m as f32) * 2.0 + (s0 + i) as f32)
                .collect();
            ds.put_vara_all(t2m, &[s0], &[slab], &temps).unwrap();
            ds.put_vara_all(pr, &[s0], &[slab], &rain).unwrap();
            ds.close().unwrap();
        }
    });
    println!("wrote {MONTHS} monthly files");

    // ---- sweep with prefetch + independent extraction --------------------
    let pfs_r = pfs.clone();
    let run = run_world(nprocs, cfg.clone(), move |comm| {
        let open_info = Info::new().with("nc_prefetch_vars", "t2m_mean,precip");
        // Each rank tracks the annual mean of "its" station.
        let my_station = (comm.rank() as u64 * 7) % STATIONS;
        let mut annual = 0.0f64;
        for m in 0..MONTHS {
            let mut ds =
                Dataset::open(comm, &pfs_r, &format!("month_{m:02}.nc"), true, &open_info).unwrap();
            let t2m = ds.inq_varid("t2m_mean").unwrap();
            assert!(ds.is_prefetched(t2m));
            // Independent mode: every rank reads only its own station —
            // served from the prefetch cache, no synchronization at all.
            ds.begin_indep_data().unwrap();
            let v: f32 = ds.get_var1(t2m, &[my_station]).unwrap();
            annual += v as f64;
            ds.end_indep_data().unwrap();
            ds.close().unwrap();
        }
        (my_station, annual / MONTHS as f64)
    });
    for (station, mean) in &run.results {
        println!("station {station:2}: annual mean {mean:.2} °C");
    }

    // ---- write the summary collectively with tuned hints -----------------
    let tuned = Info::new()
        .with("cb_buffer_size", "8388608")
        .with("cb_nodes", "4")
        .with("nc_header_align_size", "262144"); // align data to the stripe
    let pfs_s = pfs.clone();
    let results = run.results.clone();
    run_world(nprocs, cfg, move |comm| {
        let mut ds = Dataset::create(comm, &pfs_s, "summary.nc", Version::Cdf1, &tuned).unwrap();
        let s = ds.def_dim("station", nprocs as u64).unwrap();
        let v = ds.def_var("annual_mean", NcType::Double, &[s]).unwrap();
        ds.put_gatt_text("source", "postprocess_hints example")
            .unwrap();
        ds.enddef().unwrap();
        ds.put_vara_all(v, &[comm.rank() as u64], &[1], &[results[comm.rank()].1])
            .unwrap();
        ds.close().unwrap();
    });
    let size = pfs.open("summary.nc").unwrap().size();
    println!("summary.nc written ({size} bytes, data aligned to the 256 KiB stripe)");
}
