//! FLASH checkpoint end-to-end: write an AMR checkpoint with PnetCDF on 8
//! simulated ranks, export it to a real `.nc` file on the host file system,
//! re-open it with the serial library, and print its CDL header — the full
//! producer/consumer chain the paper's interoperability story promises.
//!
//! Run with: `cargo run --release -p flash-io --example flash_checkpoint`

use flash_io::{BlockMesh, OutputKind};
use hpc_sim::SimConfig;
use netcdf_serial::{dump_cdl, NcFile, StdFileStore};
use pnetcdf_mpi::run_world;
use pnetcdf_pfs::{Pfs, StorageMode};

fn main() {
    let nprocs = 8;
    let mesh = BlockMesh {
        nxb: 8,
        blocks_per_proc: 8, // scaled-down so the exported file stays small
        nprocs,
    };
    let cfg = SimConfig::asci_frost();
    let pfs = Pfs::new(cfg.clone(), StorageMode::Full);
    let pfs2 = pfs.clone();

    let run = run_world(nprocs, cfg, move |comm| {
        flash_io::writers::pnetcdf::write(comm, &pfs2, &mesh, OutputKind::Checkpoint, "flash.nc")
            .expect("checkpoint write")
    });
    let bytes = run.results[0];
    println!(
        "checkpoint: {:.1} MB from {nprocs} ranks in {} (virtual) = {:.1} MB/s aggregate",
        bytes as f64 / 1e6,
        run.makespan,
        bytes as f64 / run.makespan.as_secs_f64() / 1e6
    );

    // Export to a real file and audit it with the serial library.
    let dir = std::env::temp_dir().join("pnetcdf_flash_example");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let path = dir.join("flash_checkpoint.nc");
    pfs.open("flash.nc")
        .unwrap()
        .export_to_path(&path)
        .expect("export");
    println!("exported to {}", path.display());

    let mut f = NcFile::open_readonly(StdFileStore::open_readonly(&path).unwrap())
        .expect("serial open of parallel-written file");
    let cdl = dump_cdl(&mut f, "flash_checkpoint", false).expect("dump");
    println!("\n{cdl}");

    // Verify one unknown's block against the generator.
    let dens = f.var_id("dens").expect("dens variable");
    let vals: Vec<f64> = f.get_vara(dens, &[20, 0, 0, 0], &[1, 8, 8, 8]).unwrap();
    let expect = mesh.cell_value(0, 20, 0);
    assert_eq!(vals[0], expect);
    println!(
        "audit: dens[block 20][0,0,0] = {} (expected {expect}) OK",
        vals[0]
    );
    std::fs::remove_file(&path).ok();
}
