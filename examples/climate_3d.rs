//! The LBNL scalability test (paper §5.1) as a runnable example: a 3-D
//! array field `tt(Z,Y,X)` is written to and read from a single netCDF file
//! by P processes under each of the seven partitions of Figure 5, using
//! collective I/O, and the achieved (virtual) bandwidth is reported.
//!
//! Run with: `cargo run --release --example climate_3d [-- nprocs [mb]]`

use hpc_sim::SimConfig;
use pnetcdf::{Dataset, Info, NcType, Version};
use pnetcdf_mpi::run_world;
use pnetcdf_pfs::{Pfs, StorageMode};

/// Near-equal factorization of `n` over `k` axes.
fn factorize(n: usize, axes: usize) -> Vec<u64> {
    let mut out = Vec::new();
    let mut rem = n as u64;
    for i in 0..axes {
        let left = axes - i;
        let mut f = (rem as f64).powf(1.0 / left as f64).round() as u64;
        while f > 1 && rem % f != 0 {
            f -= 1;
        }
        out.push(f.max(1));
        rem /= out[i];
    }
    let last = out.len() - 1;
    out[last] *= rem;
    out
}

fn main() {
    let mut args = std::env::args().skip(1);
    let nprocs: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(8);
    let mb: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(16);

    // Array dimensions: Z is most significant, X least (paper §5.1).
    let elems = mb * 1024 * 1024 / 4; // f32
    let side = (elems as f64).cbrt() as u64;
    let (nz, ny, nx) = (side, side, elems / (side * side));
    println!(
        "field tt({nz},{ny},{nx}) of f32 = {:.1} MB, {nprocs} processes, SDSC-like platform\n",
        (nz * ny * nx * 4) as f64 / 1e6
    );
    println!(
        "{:<10} {:>14} {:>14}",
        "partition", "write MB/s", "read MB/s"
    );

    for (name, mask) in [
        ("Z", [true, false, false]),
        ("Y", [false, true, false]),
        ("X", [false, false, true]),
        ("ZY", [true, true, false]),
        ("ZX", [true, false, true]),
        ("YX", [false, true, true]),
        ("ZYX", [true, true, true]),
    ] {
        let cfg = SimConfig::sdsc_blue_horizon();
        let pfs = Pfs::new(cfg.clone(), StorageMode::CostOnly);

        // Per-axis process grid.
        let naxes = mask.iter().filter(|&&m| m).count();
        let fs = factorize(nprocs, naxes);
        let mut grid = [1u64; 3];
        let mut fi = 0;
        for d in 0..3 {
            if mask[d] {
                grid[d] = fs[fi];
                fi += 1;
            }
        }
        let (pz, py, px) = (grid[0], grid[1], grid[2]);
        let pfs2 = pfs.clone();

        // Remainder-aware 1-D decomposition: the first `rem` ranks along an
        // axis get one extra element, so the union covers the whole array.
        let decomp = |n: u64, p: u64, i: u64| -> (u64, u64) {
            let base = n / p;
            let rem = n % p;
            let start = i * base + i.min(rem);
            let count = base + u64::from(i < rem);
            (start, count)
        };

        let run = run_world(nprocs, cfg, move |comm| {
            let r = comm.rank() as u64;
            let (iz, iy, ix) = (r / (py * px), (r / px) % py, r % px);
            let (sz, cz) = decomp(nz, pz, iz);
            let (sy, cy) = decomp(ny, py, iy);
            let (sx, cx) = decomp(nx, px, ix);
            let start = [sz, sy, sx];
            let count = [cz, cy, cx];

            let mut ds =
                Dataset::create(comm, &pfs2, "tt.nc", Version::Cdf2, &Info::new()).unwrap();
            let z = ds.def_dim("level", nz).unwrap();
            let y = ds.def_dim("latitude", ny).unwrap();
            let x = ds.def_dim("longitude", nx).unwrap();
            let tt = ds.def_var("tt", NcType::Float, &[z, y, x]).unwrap();
            ds.enddef().unwrap();

            let block = vec![1.5f32; (cz * cy * cx) as usize];
            let t0 = comm.now();
            ds.put_vara_all(tt, &start, &count, &block).unwrap();
            let t_write = comm.now() - t0;

            let t1 = comm.now();
            let _back: Vec<f32> = ds.get_vara_all(tt, &start, &count).unwrap();
            let t_read = comm.now() - t1;
            ds.close().unwrap();
            (t_write, t_read)
        });

        let total = (nz * ny * nx * 4) as f64;
        let w = run.results.iter().map(|r| r.0).max().unwrap();
        let rd = run.results.iter().map(|r| r.1).max().unwrap();
        println!(
            "{:<10} {:>14.1} {:>14.1}",
            name,
            total / w.as_secs_f64() / 1e6,
            total / rd.as_secs_f64() / 1e6,
        );
    }
}
