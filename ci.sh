#!/usr/bin/env bash
# Repository CI: tier-1 verification plus lint/format gates.
# Usage: ./ci.sh
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> bench smoke: fig7_flashio --quick (profiling enabled)"
report_dir=$(mktemp -d)
PNETCDF_REPORT_DIR="$report_dir" ./target/release/fig7_flashio --quick >/dev/null
report="$report_dir/fig7_flashio.profile.json"
[ -f "$report" ] || { echo "FAIL: $report was not written"; exit 1; }
for key in exchange_offsets exchange_data disk_write disk_read metadata wait \
           collbuf_pack compute p2p cache coverage per_rank twophase \
           bytepath flatten_hits flatten_hit_rate fused_pack_bytes \
           copies_elided borrowed_bytes; do
    grep -q "\"$key\"" "$report" || { echo "FAIL: report missing key \"$key\""; exit 1; }
done
rm -rf "$report_dir"
[ -f BENCH_fig7.json ] || { echo "FAIL: BENCH_fig7.json was not written"; exit 1; }
echo "    report OK: all phase keys present; BENCH_fig7.json written"

echo "==> fault smoke: FLASH checkpoint under injected faults"
report_dir=$(mktemp -d)
PNETCDF_REPORT_DIR="$report_dir" ./target/release/fault_smoke
report="$report_dir/fault_smoke.profile.json"
[ -f "$report" ] || { echo "FAIL: $report was not written"; exit 1; }
for key in faults faults_injected retries backoff_time short_completions \
           agreed_errors byte_identical; do
    grep -q "\"$key\"" "$report" || { echo "FAIL: report missing key \"$key\""; exit 1; }
done
rm -rf "$report_dir"
echo "    fault report OK: injection and recovery counters present"

echo "==> failover smoke: parity carries the checkpoint through a server crash"
report_dir=$(mktemp -d)
PNETCDF_REPORT_DIR="$report_dir" ./target/release/failover_smoke
report="$report_dir/failover_smoke.profile.json"
[ -f "$report" ] || { echo "FAIL: $report was not written"; exit 1; }
for key in degraded_reads reconstructed_bytes redirected_writes rebuilds \
           rebuilt_bytes parity_updates epochs rebuild_time; do
    grep -q "\"$key\"" "$report" || { echo "FAIL: report missing key \"$key\""; exit 1; }
done
# The degraded-mode counters must actually have moved: a zero here means
# the crash never engaged the parity layer.
for key in degraded_reads reconstructed_bytes redirected_writes rebuilds; do
    grep -q "\"$key\": 0\b" "$report" \
        && { echo "FAIL: failover counter \"$key\" is zero"; exit 1; }
done
grep -q '"byte_identical": true' "$report" \
    || { echo "FAIL: degraded/rebuilt file diverged from fault-free run"; exit 1; }
rm -rf "$report_dir"
echo "    failover report OK: degraded reads, redirects, and rebuild all engaged"

echo "==> cache smoke: FLASH checkpoint through the client page cache"
report_dir=$(mktemp -d)
PNETCDF_REPORT_DIR="$report_dir" ./target/release/cache_smoke
report="$report_dir/cache_smoke.profile.json"
[ -f "$report" ] || { echo "FAIL: $report was not written"; exit 1; }
for key in hits hit_bytes misses evictions write_behind_flushes \
           write_behind_bytes readahead_issued invalidations \
           byte_identical cached_mb_s uncached_mb_s; do
    grep -q "\"$key\"" "$report" || { echo "FAIL: report missing key \"$key\""; exit 1; }
done
grep -q '"byte_identical": true' "$report" \
    || { echo "FAIL: cached output not byte-identical"; exit 1; }
rm -rf "$report_dir"
echo "    cache report OK: hit/write-behind counters present, bytes identical"

echo "==> twophase smoke: pipelined vs serial collective engines"
report_dir=$(mktemp -d)
PNETCDF_REPORT_DIR="$report_dir" ./target/release/twophase_smoke
report="$report_dir/twophase_smoke.profile.json"
[ -f "$report" ] || { echo "FAIL: $report was not written"; exit 1; }
for key in rounds overlap_saved_ns serial_mb_s pipelined_mb_s \
           byte_identical; do
    grep -q "\"$key\"" "$report" || { echo "FAIL: report missing key \"$key\""; exit 1; }
done
# Dual-resource server engine: per-server queue/stage counters and the
# dynamically chosen aggregator count must land in the profile.
for key in nic_busy_s disk_busy_s overlap_s queue_stall_s max_queue_depth \
           cb_nodes; do
    grep -q "\"$key\"" "$report" || { echo "FAIL: report missing key \"$key\""; exit 1; }
done
grep -q '"byte_identical": true' "$report" \
    || { echo "FAIL: pipelined output not byte-identical"; exit 1; }
grep -q '"overlap_saved_ns": 0' "$report" \
    && { echo "FAIL: pipelining hid no exchange time"; exit 1; }
rm -rf "$report_dir"
echo "    twophase report OK: overlap + server pipeline counters, bytes identical"

echo "==> trace smoke: 64-rank FLASH checkpoint with pnc_trace_events on"
report_dir=$(mktemp -d)
PNETCDF_REPORT_DIR="$report_dir" ./target/release/trace_smoke >/dev/null
trace="$report_dir/trace_smoke.trace.json"
report="$report_dir/trace_smoke.critical_path.json"
[ -f "$trace" ] || { echo "FAIL: $trace was not written"; exit 1; }
[ -f "$report" ] || { echo "FAIL: $report was not written"; exit 1; }
# The Chrome export must be well-formed JSON whose complete (X) spans are
# all balanced (non-negative durations) and whose only other events are
# metadata and flow links.
python3 - "$trace" <<'EOF'
import json, sys
t = json.load(open(sys.argv[1]))
evs = t["traceEvents"]
assert evs, "empty traceEvents"
spans = [e for e in evs if e["ph"] == "X"]
assert spans, "no complete spans"
bad = [e for e in spans if e.get("dur", -1) < 0]
assert not bad, f"unbalanced spans: {bad[:3]}"
other = {e["ph"] for e in evs} - {"X", "M", "s", "f"}
assert not other, f"unexpected event phases: {other}"
print(f"    trace JSON OK: {len(spans)} balanced spans")
EOF
for key in windows stage_totals_ns bound_counts dominant_stage \
           disk nic exchange pack queue retry cache bound_by; do
    grep -q "\"$key\"" "$report" || { echo "FAIL: critical-path report missing key \"$key\""; exit 1; }
done
rm -rf "$report_dir"
echo "    critical-path report OK: stage keys and per-window attribution present"

echo "==> service smoke: 16 sessions on a shared 4-server cluster"
report_dir=$(mktemp -d)
PNETCDF_REPORT_DIR="$report_dir" ./target/release/service_smoke >/dev/null 2>&1
report="$report_dir/service_smoke.profile.json"
[ -f "$report" ] || { echo "FAIL: $report was not written"; exit 1; }
for key in aggregate_mb_s max_session_mb_s cross_file_stall_total_nanos \
           cross_file_stall_s hints_rejected deterministic; do
    grep -q "\"$key\"" "$report" || { echo "FAIL: report missing key \"$key\""; exit 1; }
done
# The fleet must actually contend across files, beat its best single
# session in aggregate, and notice the deliberately misspelled hint.
grep -q '"cross_file_stall_total_nanos": 0\b' "$report" \
    && { echo "FAIL: no cross-file contention on the shared servers"; exit 1; }
grep -q '"aggregate_ge_max_session": true' "$report" \
    || { echo "FAIL: aggregate throughput below best single session"; exit 1; }
grep -q '"hints_rejected": 0\b' "$report" \
    && { echo "FAIL: misspelled pnc_ hint was not rejected"; exit 1; }
grep -q '"deterministic": true' "$report" \
    || { echo "FAIL: session fleet not deterministic across reruns"; exit 1; }
rm -rf "$report_dir"
echo "    service report OK: cross-file stall, aggregate >= best session, hint audit"

echo "==> microbench smoke: byte-path criterion suite (quick mode)"
report_dir=$(mktemp -d)
MICROBENCH_QUICK=1 PNETCDF_REPORT_DIR="$report_dir" \
    cargo bench -q -p pnetcdf-bench --bench microbench >/dev/null
report="$report_dir/BENCH_microbench.json"
[ -f "$report" ] || { echo "FAIL: $report was not written"; exit 1; }
# Quick mode gates at "not slower": the fused pack and the chunked swap
# kernels must not regress below their staged/per-element baselines.
for key in gate_swap4_ok gate_swap8_ok gate_pack_ok; do
    grep -q "\"$key\": true" "$report" \
        || { echo "FAIL: microbench gate \"$key\" did not pass"; exit 1; }
done
rm -rf "$report_dir"
echo "    microbench OK: swap kernels and fused pack at or above baseline"

echo "==> bench results: twophase_bench (BENCH_twophase.json)"
./target/release/twophase_bench >/dev/null
[ -f BENCH_twophase.json ] || { echo "FAIL: BENCH_twophase.json was not written"; exit 1; }
grep -q '"speedup"' BENCH_twophase.json \
    || { echo "FAIL: BENCH_twophase.json missing speedup rows"; exit 1; }
echo "    BENCH_twophase.json written (the bench itself asserts >1.2x at 64 ranks)"

echo "==> bench results: fig6_scalability --quick (BENCH_fig6.json)"
report_dir=$(mktemp -d)
PNETCDF_REPORT_DIR="$report_dir" ./target/release/fig6_scalability --quick >/dev/null
rm -rf "$report_dir"
[ -f BENCH_fig6.json ] || { echo "FAIL: BENCH_fig6.json was not written"; exit 1; }
echo "    BENCH_fig6.json written"

echo "CI OK"
