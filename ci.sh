#!/usr/bin/env bash
# Repository CI: tier-1 verification plus lint/format gates.
# Usage: ./ci.sh
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> bench smoke: fig7_flashio --quick (profiling enabled)"
report_dir=$(mktemp -d)
PNETCDF_REPORT_DIR="$report_dir" ./target/release/fig7_flashio --quick >/dev/null
report="$report_dir/fig7_flashio.profile.json"
[ -f "$report" ] || { echo "FAIL: $report was not written"; exit 1; }
for key in exchange_offsets exchange_data disk_write disk_read metadata wait \
           collbuf_pack compute p2p coverage per_rank twophase; do
    grep -q "\"$key\"" "$report" || { echo "FAIL: report missing key \"$key\""; exit 1; }
done
rm -rf "$report_dir"
echo "    report OK: all phase keys present"

echo "==> fault smoke: FLASH checkpoint under injected faults"
report_dir=$(mktemp -d)
PNETCDF_REPORT_DIR="$report_dir" ./target/release/fault_smoke
report="$report_dir/fault_smoke.profile.json"
[ -f "$report" ] || { echo "FAIL: $report was not written"; exit 1; }
for key in faults faults_injected retries backoff_time short_completions \
           agreed_errors byte_identical; do
    grep -q "\"$key\"" "$report" || { echo "FAIL: report missing key \"$key\""; exit 1; }
done
rm -rf "$report_dir"
echo "    fault report OK: injection and recovery counters present"

echo "CI OK"
