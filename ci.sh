#!/usr/bin/env bash
# Repository CI: tier-1 verification plus lint/format gates.
# Usage: ./ci.sh
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "CI OK"
