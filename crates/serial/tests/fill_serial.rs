//! Serial fill-mode semantics (`nc_set_fill`).

use netcdf_serial::{MemStore, NcFile};
use pnetcdf_format::{AttrValue, NcType, Version};

#[test]
fn enddef_prefills_fixed_vars() {
    let mut f = NcFile::create(MemStore::new(), Version::Cdf1);
    assert!(!f.set_fill(true).unwrap());
    let x = f.def_dim("x", 5).unwrap();
    let vi = f.def_var("i", NcType::Int, &[x]).unwrap();
    let vd = f.def_var("d", NcType::Double, &[x]).unwrap();
    f.enddef().unwrap();
    let ints: Vec<i32> = f.get_var(vi).unwrap();
    assert_eq!(ints, vec![-2147483647; 5]);
    let dbls: Vec<f64> = f.get_var(vd).unwrap();
    assert!(dbls.iter().all(|&v| v > 9.9e36));
}

#[test]
fn record_growth_fills_all_record_vars() {
    let mut f = NcFile::create(MemStore::new(), Version::Cdf1);
    f.set_fill(true).unwrap();
    let t = f.def_dim("time", 0).unwrap();
    let x = f.def_dim("x", 3).unwrap();
    let a = f.def_var("a", NcType::Int, &[t, x]).unwrap();
    let b = f.def_var("b", NcType::Float, &[t, x]).unwrap();
    f.enddef().unwrap();

    // Writing record 2 of `a` creates records 0..3; both variables' new
    // records are filled, then the written cells land.
    f.put_vara(a, &[2, 0], &[1, 3], &[1i32, 2, 3]).unwrap();
    assert_eq!(f.numrecs(), 3);
    let a0: Vec<i32> = f.get_vara(a, &[0, 0], &[1, 3]).unwrap();
    assert_eq!(a0, vec![-2147483647; 3]);
    let a2: Vec<i32> = f.get_vara(a, &[2, 0], &[1, 3]).unwrap();
    assert_eq!(a2, vec![1, 2, 3]);
    let b2: Vec<f32> = f.get_vara(b, &[2, 0], &[1, 3]).unwrap();
    assert!(
        b2.iter().all(|&v| v > 9.9e35),
        "sibling record var filled: {b2:?}"
    );
}

#[test]
fn fill_value_attribute_override() {
    let mut f = NcFile::create(MemStore::new(), Version::Cdf1);
    f.set_fill(true).unwrap();
    let x = f.def_dim("x", 4).unwrap();
    let v = f.def_var("s", NcType::Short, &[x]).unwrap();
    f.put_vatt(v, "_FillValue", AttrValue::Short(vec![-1]))
        .unwrap();
    f.enddef().unwrap();
    let vals: Vec<i16> = f.get_var(v).unwrap();
    assert_eq!(vals, vec![-1; 4]);
}

#[test]
fn nofill_default_leaves_zeros() {
    let mut f = NcFile::create(MemStore::new(), Version::Cdf1);
    let x = f.def_dim("x", 4).unwrap();
    let v = f.def_var("i", NcType::Int, &[x]).unwrap();
    f.enddef().unwrap();
    assert!(!f.fill_mode());
    let vals: Vec<i32> = f.get_var(v).unwrap();
    assert_eq!(vals, vec![0; 4]);
}

#[test]
fn set_fill_rejected_in_data_mode() {
    let mut f = NcFile::create(MemStore::new(), Version::Cdf1);
    f.def_dim("x", 2).unwrap();
    f.enddef().unwrap();
    assert!(f.set_fill(true).is_err());
}

#[test]
fn serial_and_parallel_fill_files_are_identical() {
    // The byte-identity property extends to fill mode.
    use hpc_sim::SimConfig;
    use pnetcdf_mpi::run_world;
    use pnetcdf_pfs::{Pfs, StorageMode};

    let serial = {
        let mut f = NcFile::create(MemStore::new(), Version::Cdf1);
        f.set_fill(true).unwrap();
        let x = f.def_dim("x", 16).unwrap();
        let v = f.def_var("a", NcType::Int, &[x]).unwrap();
        f.def_var("untouched", NcType::Float, &[x]).unwrap();
        f.enddef().unwrap();
        f.put_vara(v, &[2], &[4], &[1i32, 2, 3, 4]).unwrap();
        let mut store = f.close().unwrap();
        let mut bytes = vec![0u8; store.size() as usize];
        store.read_at(0, &mut bytes);
        bytes
    };

    let cfg = SimConfig::test_small();
    let pfs = Pfs::new(cfg.clone(), StorageMode::Full);
    let pfs2 = pfs.clone();
    run_world(4, cfg, move |c| {
        let mut ds =
            pnetcdf::Dataset::create(c, &pfs2, "p.nc", Version::Cdf1, &pnetcdf::Info::new())
                .unwrap();
        ds.set_fill(true).unwrap();
        let x = ds.def_dim("x", 16).unwrap();
        let v = ds.def_var("a", NcType::Int, &[x]).unwrap();
        ds.def_var("untouched", NcType::Float, &[x]).unwrap();
        ds.enddef().unwrap();
        // One rank writes the same region the serial program wrote.
        if c.rank() == 1 {
            ds.begin_indep_data().unwrap();
            ds.put_vara(v, &[2], &[4], &[1i32, 2, 3, 4]).unwrap();
            ds.end_indep_data().unwrap();
        } else {
            ds.begin_indep_data().unwrap();
            ds.end_indep_data().unwrap();
        }
        ds.close().unwrap();
    });
    let parallel = pfs.open("p.nc").unwrap().to_bytes();
    assert_eq!(parallel, serial);
}
