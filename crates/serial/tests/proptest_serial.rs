//! Property-based tests of the serial library against a plain in-memory
//! array oracle: arbitrary sequences of subarray writes followed by
//! arbitrary reads must agree with a `Vec`-backed model.

use proptest::collection::vec;
use proptest::prelude::*;

use netcdf_serial::{MemStore, NcFile};
use pnetcdf_format::{NcType, Version};

/// A write operation on a 3-D variable of shape (4, 5, 6).
#[derive(Clone, Debug)]
struct WriteOp {
    start: [u64; 3],
    count: [u64; 3],
    seed: i32,
}

const SHAPE: [u64; 3] = [4, 5, 6];

fn arb_write() -> impl Strategy<Value = WriteOp> {
    (0u64..4, 0u64..5, 0u64..6, any::<i32>()).prop_flat_map(|(s0, s1, s2, seed)| {
        (1u64..=4 - s0, 1u64..=5 - s1, 1u64..=6 - s2).prop_map(move |(c0, c1, c2)| WriteOp {
            start: [s0, s1, s2],
            count: [c0, c1, c2],
            seed,
        })
    })
}

fn vals_for(op: &WriteOp) -> Vec<i32> {
    let n = (op.count[0] * op.count[1] * op.count[2]) as usize;
    (0..n).map(|i| op.seed.wrapping_add(i as i32)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn writes_then_reads_match_oracle(ops in vec(arb_write(), 1..12)) {
        let mut f = NcFile::create(MemStore::new(), Version::Cdf1);
        let z = f.def_dim("z", SHAPE[0]).unwrap();
        let y = f.def_dim("y", SHAPE[1]).unwrap();
        let x = f.def_dim("x", SHAPE[2]).unwrap();
        let v = f.def_var("a", NcType::Int, &[z, y, x]).unwrap();
        f.enddef().unwrap();

        let mut oracle = vec![0i32; (SHAPE[0] * SHAPE[1] * SHAPE[2]) as usize];
        for op in &ops {
            let vals = vals_for(op);
            f.put_vara(v, &op.start, &op.count, &vals).unwrap();
            let mut i = 0;
            for dz in 0..op.count[0] {
                for dy in 0..op.count[1] {
                    for dx in 0..op.count[2] {
                        let zz = op.start[0] + dz;
                        let yy = op.start[1] + dy;
                        let xx = op.start[2] + dx;
                        oracle[((zz * SHAPE[1] + yy) * SHAPE[2] + xx) as usize] = vals[i];
                        i += 1;
                    }
                }
            }
        }
        let whole: Vec<i32> = f.get_var(v).unwrap();
        prop_assert_eq!(whole, oracle);
    }

    #[test]
    fn strided_read_agrees_with_elementwise(
        op in arb_write(),
        st0 in 1u64..3, st1 in 1u64..3, st2 in 1u64..3,
    ) {
        let mut f = NcFile::create(MemStore::new(), Version::Cdf1);
        let z = f.def_dim("z", SHAPE[0]).unwrap();
        let y = f.def_dim("y", SHAPE[1]).unwrap();
        let x = f.def_dim("x", SHAPE[2]).unwrap();
        let v = f.def_var("a", NcType::Int, &[z, y, x]).unwrap();
        f.enddef().unwrap();
        f.put_vara(v, &op.start, &op.count, &vals_for(&op)).unwrap();

        // Strided counts that stay in bounds.
        let stride = [st0, st1, st2];
        let count = [
            SHAPE[0].div_ceil(stride[0]),
            SHAPE[1].div_ceil(stride[1]),
            SHAPE[2].div_ceil(stride[2]),
        ];
        let strided: Vec<i32> = f
            .get_vars(v, &[0, 0, 0], &count, Some(&stride))
            .unwrap();
        let mut expect = Vec::new();
        for iz in 0..count[0] {
            for iy in 0..count[1] {
                for ix in 0..count[2] {
                    expect.push(
                        f.get_var1::<i32>(v, &[iz * stride[0], iy * stride[1], ix * stride[2]])
                            .unwrap(),
                    );
                }
            }
        }
        prop_assert_eq!(strided, expect);
    }

    #[test]
    fn close_reopen_preserves_everything(ops in vec(arb_write(), 1..6)) {
        let mut f = NcFile::create(MemStore::new(), Version::Cdf1);
        let z = f.def_dim("z", SHAPE[0]).unwrap();
        let y = f.def_dim("y", SHAPE[1]).unwrap();
        let x = f.def_dim("x", SHAPE[2]).unwrap();
        let v = f.def_var("a", NcType::Int, &[z, y, x]).unwrap();
        f.enddef().unwrap();
        for op in &ops {
            f.put_vara(v, &op.start, &op.count, &vals_for(op)).unwrap();
        }
        let before: Vec<i32> = f.get_var(v).unwrap();
        // Reconstruct the raw bytes through a fresh write of the same data
        // into a store we can capture.
        let mut capture = MemStore::new();
        {
            use netcdf_serial::ByteStore;
            let mut g = NcFile::create(MemStore::new(), Version::Cdf1);
            let z = g.def_dim("z", SHAPE[0]).unwrap();
            let y = g.def_dim("y", SHAPE[1]).unwrap();
            let x = g.def_dim("x", SHAPE[2]).unwrap();
            let v = g.def_var("a", NcType::Int, &[z, y, x]).unwrap();
            g.enddef().unwrap();
            for op in &ops {
                g.put_vara(v, &op.start, &op.count, &vals_for(op)).unwrap();
            }
            let mut store = g.close().unwrap();
            let size = store.size();
            let mut bytes = vec![0u8; size as usize];
            store.read_at(0, &mut bytes);
            capture.write_at(0, &bytes);
        }
        let mut h = NcFile::open(capture).unwrap();
        let after: Vec<i32> = h.get_var(h.var_id("a").unwrap()).unwrap();
        prop_assert_eq!(after, before);
    }

    #[test]
    fn record_appends_in_any_order(recs in vec(0u64..8, 1..8)) {
        let mut f = NcFile::create(MemStore::new(), Version::Cdf1);
        let t = f.def_dim("time", 0).unwrap();
        let x = f.def_dim("x", 2).unwrap();
        let v = f.def_var("s", NcType::Double, &[t, x]).unwrap();
        f.enddef().unwrap();
        let mut max_rec = 0;
        for &r in &recs {
            f.put_vara(v, &[r, 0], &[1, 2], &[r as f64, r as f64 + 0.5]).unwrap();
            max_rec = max_rec.max(r);
        }
        prop_assert_eq!(f.numrecs(), max_rec + 1);
        for &r in &recs {
            let back: Vec<f64> = f.get_vara(v, &[r, 0], &[1, 2]).unwrap();
            prop_assert_eq!(back, vec![r as f64, r as f64 + 0.5]);
        }
    }
}
