//! The serial netCDF dataset object and its five data access methods.

use pnetcdf_format::layout::{self, Layout};
use pnetcdf_format::types::{default_fill_f64, fill_element_bytes, from_external, to_external};
use pnetcdf_format::{AttrValue, Header, NcType, NcValue, Version};

use crate::error::{NcError, NcResult};
use crate::storage::ByteStore;

/// Dataset mode: define (metadata edits) or data (array I/O).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    Define,
    Data,
}

/// An open serial netCDF dataset.
pub struct NcFile {
    store: Box<dyn ByteStore>,
    header: Header,
    layout: Layout,
    mode: Mode,
    writable: bool,
    numrecs_dirty: bool,
    /// Fill mode (`nc_set_fill`). Defaults to NOFILL here (matching the
    /// parallel library and PnetCDF; classic netCDF-3 defaulted to FILL).
    fill_mode: bool,
    /// Set by `redef`: layout before redefinition, for data relocation.
    pre_redef: Option<(Header, Layout)>,
}

impl NcFile {
    /// Create a new dataset in define mode (`nc_create`).
    pub fn create(store: impl ByteStore + 'static, version: Version) -> NcFile {
        NcFile {
            store: Box::new(store),
            header: Header::new(version),
            layout: Layout {
                data_start: 0,
                record_start: 0,
                recsize: 0,
            },
            mode: Mode::Define,
            writable: true,
            numrecs_dirty: false,
            fill_mode: false,
            pre_redef: None,
        }
    }

    /// Open an existing dataset in data mode (`nc_open`).
    pub fn open(store: impl ByteStore + 'static) -> NcResult<NcFile> {
        Self::open_with(store, true)
    }

    /// Open read-only.
    pub fn open_readonly(store: impl ByteStore + 'static) -> NcResult<NcFile> {
        Self::open_with(store, false)
    }

    fn open_with(store: impl ByteStore + 'static, writable: bool) -> NcResult<NcFile> {
        let mut store: Box<dyn ByteStore> = Box::new(store);
        // The header length is unknown up front: read a small chunk and
        // grow geometrically until it decodes.
        let mut probe = 8192u64;
        let bytes = loop {
            let take = probe.min(store.size()).max(32) as usize;
            let mut bytes = vec![0u8; take];
            store.read_at(0, &mut bytes);
            match Header::decode(&bytes) {
                Ok(_) => break bytes,
                Err(pnetcdf_format::FormatError::Corrupt(_)) if probe < store.size() => {
                    probe *= 4;
                }
                Err(e) => return Err(e.into()),
            }
        };
        let (mut header, _) = Header::decode(&bytes)?;
        let layout = layout::compute(&mut header, 4)?;
        // `compute` re-derives begins; trust but verify against the file.
        let (on_disk, _) = Header::decode(&bytes)?;
        for (a, b) in header.vars.iter().zip(on_disk.vars.iter()) {
            if a.begin != b.begin {
                return Err(NcError::Io(format!(
                    "variable '{}' has begin {} on disk but layout computes {}; \
                     file written with a different alignment",
                    a.name, b.begin, a.begin
                )));
            }
        }
        Ok(NcFile {
            store,
            header,
            layout,
            mode: Mode::Data,
            writable,
            numrecs_dirty: false,
            fill_mode: false,
            pre_redef: None,
        })
    }

    // ---- mode handling ---------------------------------------------------

    fn require_define(&self) -> NcResult<()> {
        if self.mode != Mode::Define {
            return Err(NcError::NotInDefineMode);
        }
        Ok(())
    }

    fn require_data(&self) -> NcResult<()> {
        if self.mode != Mode::Data {
            return Err(NcError::InDefineMode);
        }
        Ok(())
    }

    fn require_writable(&self) -> NcResult<()> {
        if !self.writable {
            return Err(NcError::ReadOnly);
        }
        Ok(())
    }

    /// Leave define mode: compute the layout, write the header, relocate
    /// existing data if a redefinition moved it (`nc_enddef`).
    pub fn enddef(&mut self) -> NcResult<()> {
        self.require_define()?;
        self.require_writable()?;
        let old = self.pre_redef.take();
        let relocated_names: Option<Vec<String>> = old
            .as_ref()
            .map(|(h, _)| h.vars.iter().map(|v| v.name.clone()).collect());
        self.layout = layout::compute(&mut self.header, 4)?;

        // Relocate data written under the previous layout. Reading
        // everything first makes the move order-safe.
        if let Some((old_header, old_layout)) = old {
            let mut saved: Vec<(usize, Vec<u8>)> = Vec::new();
            for (old_id, ov) in old_header.vars.iter().enumerate() {
                if let Some(new_id) = self.header.var_id(&ov.name) {
                    let len = if old_header.is_record_var(old_id) {
                        old_header.numrecs * old_layout.recsize
                    } else {
                        ov.vsize
                    };
                    // Record vars: grab the whole interleaved span from this
                    // var's begin; rewriting below uses the same recsize
                    // arithmetic, so per-record extraction is required.
                    let mut moved = Vec::new();
                    if old_header.is_record_var(old_id) {
                        let per = ov.vsize as usize;
                        let mut rec_buf = vec![0u8; per];
                        for r in 0..old_header.numrecs {
                            self.store
                                .read_at(ov.begin + r * old_layout.recsize, &mut rec_buf);
                            moved.extend_from_slice(&rec_buf);
                        }
                    } else {
                        moved = vec![0u8; len as usize];
                        self.store.read_at(ov.begin, &mut moved);
                    }
                    saved.push((new_id, moved));
                }
            }
            self.header.numrecs = old_header.numrecs;
            self.write_header()?;
            for (new_id, data) in saved {
                let nv = &self.header.vars[new_id];
                if self.header.is_record_var(new_id) {
                    let per = nv.vsize as usize;
                    for (r, chunk) in data.chunks(per.max(1)).enumerate() {
                        self.store
                            .write_at(nv.begin + r as u64 * self.layout.recsize, chunk);
                    }
                } else {
                    self.store.write_at(nv.begin, &data);
                }
            }
        } else {
            self.write_header()?;
        }
        if self.fill_mode {
            let new_vars: Vec<usize> = match &relocated_names {
                Some(names) => (0..self.header.vars.len())
                    .filter(|&v| !names.contains(&self.header.vars[v].name))
                    .collect(),
                None => (0..self.header.vars.len()).collect(),
            };
            self.prefill_fixed(&new_vars);
        }
        self.mode = Mode::Data;
        Ok(())
    }

    /// Switch fill mode (`nc_set_fill`); define mode only. Returns the
    /// previous setting. With fill on, fixed variables are prefilled at
    /// `enddef` and records created by a write are prefilled across all
    /// record variables before the write lands.
    pub fn set_fill(&mut self, fill: bool) -> NcResult<bool> {
        self.require_define()?;
        self.require_writable()?;
        Ok(std::mem::replace(&mut self.fill_mode, fill))
    }

    /// Current fill mode.
    pub fn fill_mode(&self) -> bool {
        self.fill_mode
    }

    fn fill_value_of(&self, varid: usize) -> f64 {
        let v = &self.header.vars[varid];
        v.atts
            .iter()
            .find(|a| a.name == "_FillValue")
            .and_then(|a| match &a.value {
                AttrValue::Byte(x) => x.first().map(|&b| b as f64),
                AttrValue::Char(t) => t.bytes().next().map(|b| b as f64),
                AttrValue::Short(x) => x.first().map(|&v| v as f64),
                AttrValue::Int(x) => x.first().map(|&v| v as f64),
                AttrValue::Float(x) => x.first().map(|&v| v as f64),
                AttrValue::Double(x) => x.first().copied(),
            })
            .unwrap_or_else(|| default_fill_f64(v.nctype))
    }

    /// Pattern of `nbytes` of fill for `varid` (whole elements).
    fn fill_pattern(&self, varid: usize, nbytes: u64) -> Vec<u8> {
        let elem = fill_element_bytes(self.header.vars[varid].nctype, self.fill_value_of(varid));
        let mut out = Vec::with_capacity(nbytes as usize);
        while (out.len() as u64) < nbytes {
            out.extend_from_slice(&elem);
        }
        out.truncate(nbytes as usize);
        out
    }

    /// Prefill the fixed variables named in `varids`.
    fn prefill_fixed(&mut self, varids: &[usize]) {
        for &v in varids {
            if self.header.is_record_var(v) {
                continue;
            }
            let bytes = self.header.record_elems(v) * self.header.vars[v].nctype.size();
            let pattern = self.fill_pattern(v, bytes);
            let begin = self.header.vars[v].begin;
            self.store.write_at(begin, &pattern);
        }
    }

    /// Prefill records `from..to` of every record variable.
    fn prefill_records(&mut self, from: u64, to: u64) {
        let rec_vars: Vec<usize> = (0..self.header.vars.len())
            .filter(|&v| self.header.is_record_var(v))
            .collect();
        for r in from..to {
            for &v in &rec_vars {
                let bytes = self.header.record_elems(v) * self.header.vars[v].nctype.size();
                let pattern = self.fill_pattern(v, bytes);
                let begin = self.header.vars[v].begin + r * self.layout.recsize;
                self.store.write_at(begin, &pattern);
            }
        }
    }

    /// Re-enter define mode (`nc_redef`).
    pub fn redef(&mut self) -> NcResult<()> {
        self.require_data()?;
        self.require_writable()?;
        self.pre_redef = Some((self.header.clone(), self.layout));
        self.mode = Mode::Define;
        Ok(())
    }

    fn write_header(&mut self) -> NcResult<()> {
        let bytes = self.header.encode();
        self.store.write_at(0, &bytes);
        // Pad up to data_start so the file is well-formed on disk.
        if (bytes.len() as u64) < self.layout.data_start {
            let pad = vec![0u8; (self.layout.data_start - bytes.len() as u64) as usize];
            self.store.write_at(bytes.len() as u64, &pad);
        }
        self.numrecs_dirty = false;
        Ok(())
    }

    /// Flush metadata (`nc_sync`): rewrites `numrecs` if records grew.
    pub fn sync(&mut self) -> NcResult<()> {
        if self.numrecs_dirty && self.writable {
            let nr = (self.header.numrecs.min(u32::MAX as u64 - 1)) as u32;
            self.store.write_at(4, &nr.to_be_bytes());
            self.numrecs_dirty = false;
        }
        Ok(())
    }

    /// Sync and consume the dataset, returning the storage (`nc_close`).
    pub fn close(mut self) -> NcResult<Box<dyn ByteStore>> {
        if self.mode == Mode::Define && self.writable {
            self.enddef()?;
        }
        self.sync()?;
        Ok(self.store)
    }

    // ---- define-mode functions ------------------------------------------------

    /// Define a dimension (`nc_def_dim`); length 0 = unlimited.
    pub fn def_dim(&mut self, name: &str, len: u64) -> NcResult<usize> {
        self.require_define()?;
        Ok(self.header.add_dim(name, len)?)
    }

    /// Define a variable (`nc_def_var`).
    pub fn def_var(&mut self, name: &str, nctype: NcType, dimids: &[usize]) -> NcResult<usize> {
        self.require_define()?;
        Ok(self.header.add_var(name, nctype, dimids)?)
    }

    /// Add/replace a global attribute (`nc_put_att`).
    pub fn put_gatt(&mut self, name: &str, value: AttrValue) -> NcResult<()> {
        self.require_define()?;
        Ok(self.header.put_gatt(name, value)?)
    }

    /// Add/replace a variable attribute.
    pub fn put_vatt(&mut self, varid: usize, name: &str, value: AttrValue) -> NcResult<()> {
        self.require_define()?;
        Ok(self.header.put_vatt(varid, name, value)?)
    }

    // ---- inquiry ---------------------------------------------------------------

    /// The in-memory header (all `nc_inq_*` information).
    pub fn header(&self) -> &Header {
        &self.header
    }

    /// Current file layout.
    pub fn layout(&self) -> Layout {
        self.layout
    }

    /// Variable id by name (`nc_inq_varid`).
    pub fn var_id(&self, name: &str) -> NcResult<usize> {
        self.header
            .var_id(name)
            .ok_or_else(|| NcError::NotFound(format!("variable '{name}'")))
    }

    /// Dimension id by name (`nc_inq_dimid`).
    pub fn dim_id(&self, name: &str) -> NcResult<usize> {
        self.header
            .dim_id(name)
            .ok_or_else(|| NcError::NotFound(format!("dimension '{name}'")))
    }

    /// Global attribute by name (`nc_get_att`).
    pub fn get_gatt(&self, name: &str) -> NcResult<&AttrValue> {
        self.header
            .gatts
            .iter()
            .find(|a| a.name == name)
            .map(|a| &a.value)
            .ok_or_else(|| NcError::NotFound(format!("global attribute '{name}'")))
    }

    /// Variable attribute by name.
    pub fn get_vatt(&self, varid: usize, name: &str) -> NcResult<&AttrValue> {
        self.header
            .vars
            .get(varid)
            .ok_or_else(|| NcError::NotFound(format!("variable id {varid}")))?
            .atts
            .iter()
            .find(|a| a.name == name)
            .map(|a| &a.value)
            .ok_or_else(|| NcError::NotFound(format!("attribute '{name}'")))
    }

    /// Number of records currently in the file.
    pub fn numrecs(&self) -> u64 {
        self.header.numrecs
    }

    // ---- data access --------------------------------------------------------------

    fn product(count: &[u64]) -> u64 {
        count.iter().product()
    }

    /// Write a subarray (`nc_put_vara`).
    pub fn put_vara<T: NcValue>(
        &mut self,
        varid: usize,
        start: &[u64],
        count: &[u64],
        vals: &[T],
    ) -> NcResult<()> {
        self.put_vars(varid, start, count, None, vals)
    }

    /// Write a strided subarray (`nc_put_vars`).
    pub fn put_vars<T: NcValue>(
        &mut self,
        varid: usize,
        start: &[u64],
        count: &[u64],
        stride: Option<&[u64]>,
        vals: &[T],
    ) -> NcResult<()> {
        self.require_data()?;
        self.require_writable()?;
        layout::check_access(&self.header, varid, start, count, stride, None)?;
        let n = Self::product(count);
        if n as usize != vals.len() {
            return Err(NcError::NotFound(format!(
                "value count {} does not match access size {n}",
                vals.len()
            )));
        }
        let ext = to_external(vals, self.header.vars[varid].nctype)?;
        let runs = layout::access_runs(
            &self.header,
            self.layout.recsize,
            varid,
            start,
            count,
            stride,
        );
        let mut pos = 0usize;
        for (off, len) in runs {
            self.store.write_at(off, &ext[pos..pos + len as usize]);
            pos += len as usize;
        }
        // Growing a record variable extends numrecs.
        if self.header.is_record_var(varid) && count.first().copied().unwrap_or(0) > 0 {
            let step = stride.map_or(1, |s| s[0]);
            let last = start[0] + (count[0] - 1) * step;
            if last + 1 > self.header.numrecs {
                let old = self.header.numrecs;
                self.header.numrecs = last + 1;
                self.numrecs_dirty = true;
                if self.fill_mode {
                    // netCDF fill semantics: records created by this write
                    // are prefilled across all record variables, then the
                    // written region is re-applied on top.
                    self.prefill_records(old, last + 1);
                    let runs = layout::access_runs(
                        &self.header,
                        self.layout.recsize,
                        varid,
                        start,
                        count,
                        stride,
                    );
                    let mut pos = 0usize;
                    for (off, len) in runs {
                        self.store.write_at(off, &ext[pos..pos + len as usize]);
                        pos += len as usize;
                    }
                }
            }
        }
        Ok(())
    }

    /// Read a subarray (`nc_get_vara`).
    pub fn get_vara<T: NcValue>(
        &mut self,
        varid: usize,
        start: &[u64],
        count: &[u64],
    ) -> NcResult<Vec<T>> {
        self.get_vars(varid, start, count, None)
    }

    /// Read a strided subarray (`nc_get_vars`).
    pub fn get_vars<T: NcValue>(
        &mut self,
        varid: usize,
        start: &[u64],
        count: &[u64],
        stride: Option<&[u64]>,
    ) -> NcResult<Vec<T>> {
        self.require_data()?;
        layout::check_access(
            &self.header,
            varid,
            start,
            count,
            stride,
            Some(self.header.numrecs),
        )?;
        let runs = layout::access_runs(
            &self.header,
            self.layout.recsize,
            varid,
            start,
            count,
            stride,
        );
        let total: u64 = runs.iter().map(|r| r.1).sum();
        let mut ext = vec![0u8; total as usize];
        let mut pos = 0usize;
        for (off, len) in runs {
            self.store.read_at(off, &mut ext[pos..pos + len as usize]);
            pos += len as usize;
        }
        Ok(from_external(&ext, self.header.vars[varid].nctype)?)
    }

    /// Write one element (`nc_put_var1`).
    pub fn put_var1<T: NcValue>(&mut self, varid: usize, index: &[u64], val: T) -> NcResult<()> {
        let count = vec![1u64; index.len()];
        self.put_vara(varid, index, &count, &[val])
    }

    /// Read one element (`nc_get_var1`).
    pub fn get_var1<T: NcValue>(&mut self, varid: usize, index: &[u64]) -> NcResult<T> {
        let count = vec![1u64; index.len()];
        Ok(self.get_vara::<T>(varid, index, &count)?[0])
    }

    /// Write the whole variable (`nc_put_var`). For record variables this
    /// writes the currently existing records.
    pub fn put_var<T: NcValue>(&mut self, varid: usize, vals: &[T]) -> NcResult<()> {
        let shape = self.header.var_shape(varid);
        let start = vec![0u64; shape.len()];
        // Writing a whole record variable with more data than existing
        // records grows the record dimension to fit.
        let mut count = shape;
        if self.header.is_record_var(varid) {
            let per_rec = self.header.record_elems(varid).max(1);
            count[0] = vals.len() as u64 / per_rec;
        }
        self.put_vara(varid, &start, &count, vals)
    }

    /// Read the whole variable (`nc_get_var`).
    pub fn get_var<T: NcValue>(&mut self, varid: usize) -> NcResult<Vec<T>> {
        let shape = self.header.var_shape(varid);
        let start = vec![0u64; shape.len()];
        self.get_vara(varid, &start, &shape)
    }

    /// Write a mapped strided subarray (`nc_put_varm`): `imap[d]` is the
    /// distance in *elements* between successive indices of dimension `d`
    /// in the caller's memory.
    pub fn put_varm<T: NcValue>(
        &mut self,
        varid: usize,
        start: &[u64],
        count: &[u64],
        stride: Option<&[u64]>,
        imap: &[u64],
        vals: &[T],
    ) -> NcResult<()> {
        let canonical = gather_by_imap(count, imap, vals)?;
        self.put_vars(varid, start, count, stride, &canonical)
    }

    /// Read a mapped strided subarray (`nc_get_varm`) into a buffer laid
    /// out according to `imap`. Returns the buffer, whose length is
    /// `max_mapped_index + 1`.
    pub fn get_varm<T: NcValue + Default>(
        &mut self,
        varid: usize,
        start: &[u64],
        count: &[u64],
        stride: Option<&[u64]>,
        imap: &[u64],
    ) -> NcResult<Vec<T>> {
        let canonical = self.get_vars::<T>(varid, start, count, stride)?;
        scatter_by_imap(count, imap, &canonical)
    }
}

/// Gather values from an `imap`-described memory layout into canonical
/// (row-major) order.
fn gather_by_imap<T: NcValue>(count: &[u64], imap: &[u64], vals: &[T]) -> NcResult<Vec<T>> {
    if imap.len() != count.len() {
        return Err(NcError::NotFound(format!(
            "imap has {} entries, expected {}",
            imap.len(),
            count.len()
        )));
    }
    let n: u64 = count.iter().product();
    let mut out = Vec::with_capacity(n as usize);
    let nd = count.len();
    if nd == 0 {
        return Ok(vals.first().copied().into_iter().collect());
    }
    let mut idx = vec![0u64; nd];
    loop {
        let mem: u64 = (0..nd).map(|d| idx[d] * imap[d]).sum();
        let v = vals
            .get(mem as usize)
            .copied()
            .ok_or_else(|| NcError::NotFound(format!("imap index {mem} outside value buffer")))?;
        out.push(v);
        let mut d = nd;
        loop {
            if d == 0 {
                return Ok(out);
            }
            d -= 1;
            idx[d] += 1;
            if idx[d] < count[d] {
                break;
            }
            idx[d] = 0;
        }
    }
}

/// Scatter canonical-order values into an `imap`-described layout.
fn scatter_by_imap<T: NcValue + Default>(
    count: &[u64],
    imap: &[u64],
    canonical: &[T],
) -> NcResult<Vec<T>> {
    if imap.len() != count.len() {
        return Err(NcError::NotFound(format!(
            "imap has {} entries, expected {}",
            imap.len(),
            count.len()
        )));
    }
    let nd = count.len();
    if nd == 0 {
        return Ok(canonical.to_vec());
    }
    // Size of the mapped buffer: max index + 1.
    let max_index: u64 = (0..nd)
        .map(|d| (count[d].saturating_sub(1)) * imap[d])
        .sum();
    let mut out = vec![T::default(); (max_index + 1) as usize];
    let mut idx = vec![0u64; nd];
    let mut pos = 0usize;
    loop {
        let mem: u64 = (0..nd).map(|d| idx[d] * imap[d]).sum();
        out[mem as usize] = canonical[pos];
        pos += 1;
        let mut d = nd;
        loop {
            if d == 0 {
                return Ok(out);
            }
            d -= 1;
            idx[d] += 1;
            if idx[d] < count[d] {
                break;
            }
            idx[d] = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::MemStore;

    fn simple_file() -> NcFile {
        let mut f = NcFile::create(MemStore::new(), Version::Cdf1);
        let z = f.def_dim("z", 2).unwrap();
        let y = f.def_dim("y", 3).unwrap();
        let x = f.def_dim("x", 4).unwrap();
        f.def_var("tt", NcType::Float, &[z, y, x]).unwrap();
        f.enddef().unwrap();
        f
    }

    #[test]
    fn create_write_read() {
        let mut f = simple_file();
        let vals: Vec<f32> = (0..24).map(|i| i as f32).collect();
        f.put_vara(0, &[0, 0, 0], &[2, 3, 4], &vals).unwrap();
        let back: Vec<f32> = f.get_vara(0, &[0, 0, 0], &[2, 3, 4]).unwrap();
        assert_eq!(back, vals);
        // Subarray read.
        let sub: Vec<f32> = f.get_vara(0, &[1, 1, 1], &[1, 2, 2]).unwrap();
        assert_eq!(sub, vec![17.0, 18.0, 21.0, 22.0]);
    }

    #[test]
    fn reopen_from_bytes() {
        let mut f = simple_file();
        let vals: Vec<f32> = (0..24).map(|i| i as f32 * 0.5).collect();
        f.put_vara(0, &[0, 0, 0], &[2, 3, 4], &vals).unwrap();
        let store = f.close().unwrap();
        let _ = store; // MemStore consumed through the trait object
    }

    #[test]
    fn mode_enforcement() {
        let mut f = NcFile::create(MemStore::new(), Version::Cdf1);
        let d = f.def_dim("x", 4).unwrap();
        let v = f.def_var("a", NcType::Int, &[d]).unwrap();
        assert!(matches!(
            f.put_vara::<i32>(v, &[0], &[4], &[1, 2, 3, 4]),
            Err(NcError::InDefineMode)
        ));
        f.enddef().unwrap();
        assert!(matches!(f.def_dim("y", 2), Err(NcError::NotInDefineMode)));
        f.put_vara::<i32>(v, &[0], &[4], &[1, 2, 3, 4]).unwrap();
    }

    #[test]
    fn var1_and_whole_var() {
        let mut f = simple_file();
        f.put_var1(0, &[1, 2, 3], 42.5f32).unwrap();
        assert_eq!(f.get_var1::<f32>(0, &[1, 2, 3]).unwrap(), 42.5);
        let whole: Vec<f32> = f.get_var(0).unwrap();
        assert_eq!(whole.len(), 24);
        assert_eq!(whole[23], 42.5);
    }

    #[test]
    fn record_variable_growth() {
        let mut f = NcFile::create(MemStore::new(), Version::Cdf1);
        let t = f.def_dim("time", 0).unwrap();
        let x = f.def_dim("x", 3).unwrap();
        let v = f.def_var("ts", NcType::Double, &[t, x]).unwrap();
        f.enddef().unwrap();
        assert_eq!(f.numrecs(), 0);
        for rec in 0..5u64 {
            let vals: Vec<f64> = (0..3).map(|i| (rec * 3 + i) as f64).collect();
            f.put_vara(v, &[rec, 0], &[1, 3], &vals).unwrap();
        }
        assert_eq!(f.numrecs(), 5);
        let rec3: Vec<f64> = f.get_vara(v, &[3, 0], &[1, 3]).unwrap();
        assert_eq!(rec3, vec![9.0, 10.0, 11.0]);
        // Reading past numrecs fails.
        assert!(f.get_vara::<f64>(v, &[5, 0], &[1, 3]).is_err());
    }

    #[test]
    fn strided_and_mapped_access() {
        let mut f = simple_file();
        let vals: Vec<f32> = (0..24).map(|i| i as f32).collect();
        f.put_vara(0, &[0, 0, 0], &[2, 3, 4], &vals).unwrap();

        // Every other x.
        let strided: Vec<f32> = f
            .get_vars(0, &[0, 0, 0], &[1, 1, 2], Some(&[1, 1, 2]))
            .unwrap();
        assert_eq!(strided, vec![0.0, 2.0]);

        // Mapped write: transpose a 2x3 block into y-major memory.
        let mut g = simple_file();
        // Memory holds [y][z] (imap: z stride 1, y stride 2) for z=2,y=3.
        let mem: Vec<f32> = vec![
            0.0, 12.0, // y=0: z=0,1
            4.0, 16.0, // y=1
            8.0, 20.0, // y=2
        ];
        g.put_varm(0, &[0, 0, 0], &[2, 3, 1], None, &[1, 2, 0], &mem)
            .unwrap();
        assert_eq!(g.get_var1::<f32>(0, &[0, 1, 0]).unwrap(), 4.0);
        assert_eq!(g.get_var1::<f32>(0, &[1, 2, 0]).unwrap(), 20.0);
    }

    #[test]
    fn attributes_roundtrip() {
        let mut f = NcFile::create(MemStore::new(), Version::Cdf1);
        let d = f.def_dim("x", 2).unwrap();
        let v = f.def_var("a", NcType::Short, &[d]).unwrap();
        f.put_gatt("title", AttrValue::Char("hello".into()))
            .unwrap();
        f.put_vatt(v, "valid_range", AttrValue::Short(vec![0, 100]))
            .unwrap();
        f.enddef().unwrap();
        assert_eq!(
            f.get_gatt("title").unwrap(),
            &AttrValue::Char("hello".into())
        );
        assert_eq!(
            f.get_vatt(v, "valid_range").unwrap(),
            &AttrValue::Short(vec![0, 100])
        );
        assert!(f.get_gatt("missing").is_err());
    }

    #[test]
    fn type_conversion_on_access() {
        let mut f = NcFile::create(MemStore::new(), Version::Cdf1);
        let d = f.def_dim("x", 3).unwrap();
        let v = f.def_var("a", NcType::Short, &[d]).unwrap();
        f.enddef().unwrap();
        // Write i32 into a short variable (in range).
        f.put_vara::<i32>(v, &[0], &[3], &[1, -2, 300]).unwrap();
        let back: Vec<f64> = f.get_vara(v, &[0], &[3]).unwrap();
        assert_eq!(back, vec![1.0, -2.0, 300.0]);
        // Out of range errors.
        assert!(f.put_vara::<i32>(v, &[0], &[1], &[70000]).is_err());
    }

    #[test]
    fn redef_relocates_data() {
        let mut f = NcFile::create(MemStore::new(), Version::Cdf1);
        let x = f.def_dim("x", 4).unwrap();
        let v = f.def_var("a", NcType::Int, &[x]).unwrap();
        f.enddef().unwrap();
        f.put_vara::<i32>(v, &[0], &[4], &[10, 20, 30, 40]).unwrap();

        // Add a long-named dimension + variable so the header grows and
        // data must move.
        f.redef().unwrap();
        let y = f.def_dim("a_dimension_with_a_rather_long_name", 8).unwrap();
        let w = f
            .def_var("another_variable_name", NcType::Double, &[y])
            .unwrap();
        f.enddef().unwrap();

        let back: Vec<i32> = f.get_vara(v, &[0], &[4]).unwrap();
        assert_eq!(back, vec![10, 20, 30, 40]);
        f.put_vara::<f64>(w, &[0], &[1], &[3.5]).unwrap();
        assert_eq!(f.get_var1::<f64>(w, &[0]).unwrap(), 3.5);
    }

    #[test]
    fn readonly_blocks_writes() {
        let mut f = simple_file();
        f.put_vara::<f32>(0, &[0, 0, 0], &[1, 1, 1], &[5.0])
            .unwrap();
        // Round-trip through bytes into a read-only open.
        let _store = f.close().unwrap();
        // (We cannot recover the MemStore through the trait object; create
        // a fresh read-only file instead.)
        let mut g = simple_file();
        g.writable = false;
        assert!(matches!(
            g.put_vara::<f32>(0, &[0, 0, 0], &[1, 1, 1], &[5.0]),
            Err(NcError::ReadOnly)
        ));
    }

    #[test]
    fn value_count_mismatch_rejected() {
        let mut f = simple_file();
        assert!(f
            .put_vara::<f32>(0, &[0, 0, 0], &[2, 3, 4], &[0.0; 23])
            .is_err());
    }
}
