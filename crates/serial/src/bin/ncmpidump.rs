//! `ncmpidump` — dump a netCDF classic file (from the host file system) as
//! CDL, like netCDF's `ncdump`. Works on any file written by this
//! workspace's serial or parallel library (or by the reference tools, for
//! CDF-1/CDF-2 files).
//!
//! Usage: `ncmpidump [-h] <file.nc>`
//!   -h   header only (no data section)

use netcdf_serial::{dump, NcFile, StdFileStore};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let header_only = args.iter().any(|a| a == "-h");
    let path = match args.iter().find(|a| !a.starts_with('-')) {
        Some(p) => p.clone(),
        None => {
            eprintln!("usage: ncmpidump [-h] <file.nc>");
            std::process::exit(2);
        }
    };
    let store = match StdFileStore::open_readonly(std::path::Path::new(&path)) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("ncmpidump: cannot open '{path}': {e}");
            std::process::exit(1);
        }
    };
    let mut f = match NcFile::open_readonly(store) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("ncmpidump: '{path}' is not a readable netCDF file: {e}");
            std::process::exit(1);
        }
    };
    let name = std::path::Path::new(&path)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("dataset");
    match dump::dump(&mut f, name, !header_only) {
        Ok(cdl) => print!("{cdl}"),
        Err(e) => {
            eprintln!("ncmpidump: {e}");
            std::process::exit(1);
        }
    }
}
