//! `ncmpidiff` — compare two netCDF classic files, like PnetCDF's
//! `cdfdiff`. Exit status 0 = identical, 1 = different, 2 = usage error.
//!
//! Usage: `ncmpidiff [-h] <a.nc> <b.nc>`
//!   -h   compare headers only (skip data)

use netcdf_serial::{diff, NcFile, StdFileStore};

fn open(path: &str) -> NcFile {
    let store = StdFileStore::open_readonly(std::path::Path::new(path)).unwrap_or_else(|e| {
        eprintln!("ncmpidiff: cannot open '{path}': {e}");
        std::process::exit(2);
    });
    NcFile::open_readonly(store).unwrap_or_else(|e| {
        eprintln!("ncmpidiff: '{path}' is not a readable netCDF file: {e}");
        std::process::exit(2);
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let header_only = args.iter().any(|a| a == "-h");
    let files: Vec<&String> = args.iter().filter(|a| !a.starts_with('-')).collect();
    if files.len() != 2 {
        eprintln!("usage: ncmpidiff [-h] <a.nc> <b.nc>");
        std::process::exit(2);
    }
    let mut a = open(files[0]);
    let mut b = open(files[1]);
    match diff::diff(&mut a, &mut b, !header_only) {
        Ok(ds) if ds.is_empty() => {
            println!("files are identical");
        }
        Ok(ds) => {
            for d in &ds {
                println!("DIFF {d}");
            }
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("ncmpidiff: {e}");
            std::process::exit(2);
        }
    }
}
