//! Dataset comparison — the `cdfdiff` companion tool of PnetCDF.
//!
//! Compares two netCDF classic files structurally (dimensions, variables,
//! attributes) and by data, reporting the differences a regression harness
//! or a user migrating between the serial and parallel libraries cares
//! about.

use pnetcdf_format::types::from_external;
use pnetcdf_format::NcType;

use crate::dataset::NcFile;
use crate::error::NcResult;

/// One reported difference between two datasets.
#[derive(Clone, Debug, PartialEq)]
pub enum Difference {
    /// Format version differs.
    Version(String),
    /// Number of records differs.
    Numrecs { a: u64, b: u64 },
    /// A dimension exists in only one file or differs in length.
    Dimension(String),
    /// A global or variable attribute differs.
    Attribute(String),
    /// A variable exists in only one file or its definition differs.
    Definition(String),
    /// Variable data differs; reports the first differing element.
    Data {
        var: String,
        element: u64,
        a: f64,
        b: f64,
    },
}

impl std::fmt::Display for Difference {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Difference::Version(msg) => write!(f, "version: {msg}"),
            Difference::Numrecs { a, b } => write!(f, "numrecs: {a} != {b}"),
            Difference::Dimension(msg) => write!(f, "dimension: {msg}"),
            Difference::Attribute(msg) => write!(f, "attribute: {msg}"),
            Difference::Definition(msg) => write!(f, "variable: {msg}"),
            Difference::Data { var, element, a, b } => {
                write!(f, "data: {var}[{element}] {a} != {b}")
            }
        }
    }
}

/// Compare two datasets; returns every difference found (empty = equal).
/// `compare_data` additionally reads and compares all variable values.
pub fn diff(a: &mut NcFile, b: &mut NcFile, compare_data: bool) -> NcResult<Vec<Difference>> {
    let mut out = Vec::new();
    let (ha, hb) = (a.header().clone(), b.header().clone());

    if ha.version != hb.version {
        out.push(Difference::Version(format!(
            "{:?} != {:?}",
            ha.version, hb.version
        )));
    }
    if ha.numrecs != hb.numrecs {
        out.push(Difference::Numrecs {
            a: ha.numrecs,
            b: hb.numrecs,
        });
    }

    // Dimensions, by name.
    for d in &ha.dims {
        match hb.dims.iter().find(|x| x.name == d.name) {
            None => out.push(Difference::Dimension(format!("'{}' only in first", d.name))),
            Some(x) if x.len != d.len => out.push(Difference::Dimension(format!(
                "'{}' length {} != {}",
                d.name, d.len, x.len
            ))),
            _ => {}
        }
    }
    for d in &hb.dims {
        if !ha.dims.iter().any(|x| x.name == d.name) {
            out.push(Difference::Dimension(format!(
                "'{}' only in second",
                d.name
            )));
        }
    }

    // Global attributes.
    for at in &ha.gatts {
        match hb.gatts.iter().find(|x| x.name == at.name) {
            None => out.push(Difference::Attribute(format!(":{} only in first", at.name))),
            Some(x) if x.value != at.value => {
                out.push(Difference::Attribute(format!(":{} values differ", at.name)))
            }
            _ => {}
        }
    }
    for at in &hb.gatts {
        if !ha.gatts.iter().any(|x| x.name == at.name) {
            out.push(Difference::Attribute(format!(
                ":{} only in second",
                at.name
            )));
        }
    }

    // Variables.
    for v in &ha.vars {
        let Some(w) = hb.vars.iter().find(|x| x.name == v.name) else {
            out.push(Difference::Definition(format!(
                "'{}' only in first",
                v.name
            )));
            continue;
        };
        if v.nctype != w.nctype {
            out.push(Difference::Definition(format!(
                "'{}' type {} != {}",
                v.name,
                v.nctype.name(),
                w.nctype.name()
            )));
            continue;
        }
        let shape_a: Vec<u64> = v.dimids.iter().map(|&d| ha.dims[d].len).collect();
        let shape_b: Vec<u64> = w.dimids.iter().map(|&d| hb.dims[d].len).collect();
        if shape_a != shape_b {
            out.push(Difference::Definition(format!(
                "'{}' shape {shape_a:?} != {shape_b:?}",
                v.name
            )));
            continue;
        }
        for at in &v.atts {
            match w.atts.iter().find(|x| x.name == at.name) {
                None => out.push(Difference::Attribute(format!(
                    "{}:{} only in first",
                    v.name, at.name
                ))),
                Some(x) if x.value != at.value => out.push(Difference::Attribute(format!(
                    "{}:{} values differ",
                    v.name, at.name
                ))),
                _ => {}
            }
        }

        if compare_data {
            let ia = ha.var_id(&v.name).unwrap();
            let ib = hb.var_id(&v.name).unwrap();
            if let Some(d) = diff_var_data(a, b, ia, ib, &v.name, v.nctype)? {
                out.push(d);
            }
        }
    }
    for v in &hb.vars {
        if !ha.vars.iter().any(|x| x.name == v.name) {
            out.push(Difference::Definition(format!(
                "'{}' only in second",
                v.name
            )));
        }
    }
    Ok(out)
}

fn diff_var_data(
    a: &mut NcFile,
    b: &mut NcFile,
    ia: usize,
    ib: usize,
    name: &str,
    t: NcType,
) -> NcResult<Option<Difference>> {
    // Compare through f64, which is exact for every external type.
    let bytes_a = read_raw(a, ia)?;
    let bytes_b = read_raw(b, ib)?;
    let va: Vec<f64> = from_external(&bytes_a, t)?;
    let vb: Vec<f64> = from_external(&bytes_b, t)?;
    for (i, (x, y)) in va.iter().zip(&vb).enumerate() {
        if x != y && !(x.is_nan() && y.is_nan()) {
            return Ok(Some(Difference::Data {
                var: name.to_string(),
                element: i as u64,
                a: *x,
                b: *y,
            }));
        }
    }
    Ok(None)
}

fn read_raw(f: &mut NcFile, varid: usize) -> NcResult<Vec<u8>> {
    // Read the variable's full extent via typed access and re-encode: use
    // the external reader directly through get_var on matching types.
    let t = f.header().vars[varid].nctype;
    Ok(match t {
        NcType::Byte => pnetcdf_format::types::to_external(&f.get_var::<i8>(varid)?, t)?,
        NcType::Char => pnetcdf_format::types::to_external(&f.get_var::<u8>(varid)?, t)?,
        NcType::Short => pnetcdf_format::types::to_external(&f.get_var::<i16>(varid)?, t)?,
        NcType::Int => pnetcdf_format::types::to_external(&f.get_var::<i32>(varid)?, t)?,
        NcType::Float => pnetcdf_format::types::to_external(&f.get_var::<f32>(varid)?, t)?,
        NcType::Double => pnetcdf_format::types::to_external(&f.get_var::<f64>(varid)?, t)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::MemStore;
    use pnetcdf_format::{AttrValue, Version};

    fn sample(tweak: u8) -> NcFile {
        let mut f = NcFile::create(MemStore::new(), Version::Cdf1);
        let x = f.def_dim("x", 4).unwrap();
        let v = f.def_var("a", NcType::Int, &[x]).unwrap();
        f.put_gatt("title", AttrValue::Char("t".into())).unwrap();
        f.put_vatt(v, "units", AttrValue::Char("m".into())).unwrap();
        f.enddef().unwrap();
        f.put_vara(v, &[0], &[4], &[1i32, 2, 3, tweak as i32])
            .unwrap();
        f
    }

    #[test]
    fn identical_files_have_no_differences() {
        let mut a = sample(4);
        let mut b = sample(4);
        assert!(diff(&mut a, &mut b, true).unwrap().is_empty());
    }

    #[test]
    fn data_difference_located() {
        let mut a = sample(4);
        let mut b = sample(9);
        let ds = diff(&mut a, &mut b, true).unwrap();
        assert_eq!(ds.len(), 1);
        assert!(matches!(
            &ds[0],
            Difference::Data { var, element: 3, .. } if var == "a"
        ));
        // Header-only mode ignores it.
        assert!(diff(&mut a, &mut b, false).unwrap().is_empty());
    }

    #[test]
    fn structural_differences_reported() {
        let mut a = sample(4);
        let mut b = NcFile::create(MemStore::new(), Version::Cdf2);
        let x = b.def_dim("x", 5).unwrap();
        b.def_var("a", NcType::Float, &[x]).unwrap();
        b.def_var("extra", NcType::Int, &[x]).unwrap();
        b.enddef().unwrap();
        let ds = diff(&mut a, &mut b, false).unwrap();
        let text: Vec<String> = ds.iter().map(|d| d.to_string()).collect();
        assert!(text.iter().any(|t| t.contains("version")), "{text:?}");
        assert!(text.iter().any(|t| t.contains("'x' length 4 != 5")));
        assert!(text.iter().any(|t| t.contains("'a' type int != float")));
        assert!(text.iter().any(|t| t.contains("'extra' only in second")));
        assert!(text.iter().any(|t| t.contains(":title only in first")));
    }
}
