//! Error type for the serial netCDF library.

use std::fmt;

use pnetcdf_format::FormatError;

/// Errors of the serial netCDF API (the `NC_*` error codes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NcError {
    /// Format-level failure (codec, layout, range...).
    Format(FormatError),
    /// Operation requires define mode (`NC_ENOTINDEFINE`).
    NotInDefineMode,
    /// Operation not permitted in define mode (`NC_EINDEFINE`).
    InDefineMode,
    /// Unknown dimension/variable/attribute (`NC_EBADDIM`/`NC_ENOTVAR`...).
    NotFound(String),
    /// The file is read-only (`NC_EPERM`).
    ReadOnly,
    /// I/O-level failure.
    Io(String),
}

impl fmt::Display for NcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NcError::Format(e) => write!(f, "{e}"),
            NcError::NotInDefineMode => write!(f, "operation requires define mode"),
            NcError::InDefineMode => write!(f, "operation not permitted in define mode"),
            NcError::NotFound(what) => write!(f, "not found: {what}"),
            NcError::ReadOnly => write!(f, "file is read-only"),
            NcError::Io(msg) => write!(f, "I/O error: {msg}"),
        }
    }
}

impl std::error::Error for NcError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NcError::Format(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FormatError> for NcError {
    fn from(e: FormatError) -> NcError {
        NcError::Format(e)
    }
}

/// Result alias for serial netCDF operations.
pub type NcResult<T> = Result<T, NcError>;
