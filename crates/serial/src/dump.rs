//! CDL rendering — the `ncdump` companion every netCDF distribution ships.
//!
//! Produces the textual Common Data Language form of a dataset: the
//! `netcdf name { dimensions: ... variables: ... data: ... }` notation used
//! throughout the netCDF documentation.

use pnetcdf_format::{AttrValue, NcType};

use crate::dataset::NcFile;
use crate::error::NcResult;

/// Render the header (and optionally data) of a dataset as CDL.
pub fn dump(f: &mut NcFile, name: &str, with_data: bool) -> NcResult<String> {
    let mut out = String::new();
    out.push_str(&format!("netcdf {name} {{\n"));

    let h = f.header().clone();
    if !h.dims.is_empty() {
        out.push_str("dimensions:\n");
        for d in &h.dims {
            if d.is_unlimited() {
                out.push_str(&format!(
                    "\t{} = UNLIMITED ; // ({} currently)\n",
                    d.name, h.numrecs
                ));
            } else {
                out.push_str(&format!("\t{} = {} ;\n", d.name, d.len));
            }
        }
    }

    if !h.vars.is_empty() {
        out.push_str("variables:\n");
        for v in &h.vars {
            let dims: Vec<&str> = v.dimids.iter().map(|&d| h.dims[d].name.as_str()).collect();
            if dims.is_empty() {
                out.push_str(&format!("\t{} {} ;\n", v.nctype.name(), v.name));
            } else {
                out.push_str(&format!(
                    "\t{} {}({}) ;\n",
                    v.nctype.name(),
                    v.name,
                    dims.join(", ")
                ));
            }
            for a in &v.atts {
                out.push_str(&format!(
                    "\t\t{}:{} = {} ;\n",
                    v.name,
                    a.name,
                    cdl_value(&a.value)
                ));
            }
        }
    }

    if !h.gatts.is_empty() {
        out.push_str("\n// global attributes:\n");
        for a in &h.gatts {
            out.push_str(&format!("\t\t:{} = {} ;\n", a.name, cdl_value(&a.value)));
        }
    }

    if with_data {
        out.push_str("data:\n");
        for (id, v) in h.vars.iter().enumerate() {
            let vals = dump_values(f, id, v.nctype)?;
            out.push_str(&format!("\n {} = {} ;\n", v.name, vals));
        }
    }
    out.push_str("}\n");
    Ok(out)
}

fn cdl_value(v: &AttrValue) -> String {
    match v {
        AttrValue::Byte(xs) => join(xs.iter(), "b"),
        AttrValue::Char(s) => format!("\"{}\"", s.replace('"', "\\\"")),
        AttrValue::Short(xs) => join(xs.iter(), "s"),
        AttrValue::Int(xs) => join(xs.iter(), ""),
        AttrValue::Float(xs) => join(xs.iter(), "f"),
        AttrValue::Double(xs) => join(xs.iter(), ""),
    }
}

fn join<T: std::fmt::Display>(xs: impl Iterator<Item = T>, suffix: &str) -> String {
    xs.map(|x| format!("{x}{suffix}"))
        .collect::<Vec<_>>()
        .join(", ")
}

fn dump_values(f: &mut NcFile, varid: usize, t: NcType) -> NcResult<String> {
    const LIMIT: usize = 512; // keep dumps readable
    Ok(match t {
        NcType::Byte => clip(f.get_var::<i8>(varid)?, LIMIT),
        NcType::Char => {
            let bytes = f.get_var::<u8>(varid)?;
            let s: String = bytes.iter().map(|&b| b as char).collect();
            format!("\"{s}\"")
        }
        NcType::Short => clip(f.get_var::<i16>(varid)?, LIMIT),
        NcType::Int => clip(f.get_var::<i32>(varid)?, LIMIT),
        NcType::Float => clip(f.get_var::<f32>(varid)?, LIMIT),
        NcType::Double => clip(f.get_var::<f64>(varid)?, LIMIT),
    })
}

fn clip<T: std::fmt::Display>(vals: Vec<T>, limit: usize) -> String {
    let mut s = vals
        .iter()
        .take(limit)
        .map(|v| v.to_string())
        .collect::<Vec<_>>()
        .join(", ");
    if vals.len() > limit {
        s.push_str(&format!(", ... ({} values total)", vals.len()));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::MemStore;
    use pnetcdf_format::Version;

    #[test]
    fn dump_renders_cdl() {
        let mut f = NcFile::create(MemStore::new(), Version::Cdf1);
        let t = f.def_dim("time", 0).unwrap();
        let x = f.def_dim("x", 3).unwrap();
        let v = f.def_var("temp", NcType::Float, &[t, x]).unwrap();
        f.put_vatt(v, "units", AttrValue::Char("K".into())).unwrap();
        f.put_gatt("title", AttrValue::Char("demo".into())).unwrap();
        f.enddef().unwrap();
        f.put_vara(v, &[0, 0], &[2, 3], &[1.0f32, 2.0, 3.0, 4.0, 5.0, 6.0])
            .unwrap();

        let cdl = dump(&mut f, "demo", true).unwrap();
        assert!(cdl.contains("netcdf demo {"));
        assert!(cdl.contains("time = UNLIMITED ; // (2 currently)"));
        assert!(cdl.contains("x = 3 ;"));
        assert!(cdl.contains("float temp(time, x) ;"));
        assert!(cdl.contains("temp:units = \"K\" ;"));
        assert!(cdl.contains(":title = \"demo\" ;"));
        assert!(cdl.contains("temp = 1, 2, 3, 4, 5, 6 ;"));
    }

    #[test]
    fn dump_header_only() {
        let mut f = NcFile::create(MemStore::new(), Version::Cdf1);
        let x = f.def_dim("x", 2).unwrap();
        f.def_var("a", NcType::Int, &[x]).unwrap();
        f.enddef().unwrap();
        let cdl = dump(&mut f, "h", false).unwrap();
        assert!(cdl.contains("int a(x) ;"));
        assert!(!cdl.contains("data:"));
    }

    #[test]
    fn long_arrays_are_clipped() {
        let mut f = NcFile::create(MemStore::new(), Version::Cdf1);
        let x = f.def_dim("x", 1000).unwrap();
        let v = f.def_var("big", NcType::Int, &[x]).unwrap();
        f.enddef().unwrap();
        f.put_vara(v, &[0], &[1000], &vec![7i32; 1000]).unwrap();
        let cdl = dump(&mut f, "c", true).unwrap();
        assert!(cdl.contains("(1000 values total)"));
    }
}
