//! Byte-level storage abstraction for the serial library.

use std::fs::File;
use std::io::{Read, Seek, SeekFrom, Write};

use pnetcdf_pfs::PosixSim;

/// Blocking positional byte storage.
pub trait ByteStore: Send {
    /// Read exactly `buf.len()` bytes at `offset`; bytes beyond the current
    /// size read as zeros.
    fn read_at(&mut self, offset: u64, buf: &mut [u8]);
    /// Write all of `data` at `offset`, growing the file as needed.
    fn write_at(&mut self, offset: u64, data: &[u8]);
    /// Current size in bytes.
    fn size(&self) -> u64;
}

/// A plain in-memory file.
#[derive(Default)]
pub struct MemStore {
    bytes: Vec<u8>,
}

impl MemStore {
    /// New empty store.
    pub fn new() -> MemStore {
        MemStore::default()
    }

    /// Wrap existing contents.
    pub fn from_bytes(bytes: Vec<u8>) -> MemStore {
        MemStore { bytes }
    }

    /// View the full contents.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Take the contents.
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }
}

impl ByteStore for MemStore {
    fn read_at(&mut self, offset: u64, buf: &mut [u8]) {
        let off = offset as usize;
        for (i, b) in buf.iter_mut().enumerate() {
            *b = self.bytes.get(off + i).copied().unwrap_or(0);
        }
    }

    fn write_at(&mut self, offset: u64, data: &[u8]) {
        let end = offset as usize + data.len();
        if self.bytes.len() < end {
            self.bytes.resize(end, 0);
        }
        self.bytes[offset as usize..end].copy_from_slice(data);
    }

    fn size(&self) -> u64 {
        self.bytes.len() as u64
    }
}

/// A real file on the host file system (used for interop tests and for
/// producing files other tools can read).
pub struct StdFileStore {
    file: File,
}

impl StdFileStore {
    /// Create or truncate `path`.
    pub fn create(path: &std::path::Path) -> std::io::Result<StdFileStore> {
        Ok(StdFileStore {
            file: File::options()
                .read(true)
                .write(true)
                .create(true)
                .truncate(true)
                .open(path)?,
        })
    }

    /// Open `path` for read/write.
    pub fn open(path: &std::path::Path) -> std::io::Result<StdFileStore> {
        Ok(StdFileStore {
            file: File::options().read(true).write(true).open(path)?,
        })
    }

    /// Open `path` read-only (writes will panic).
    pub fn open_readonly(path: &std::path::Path) -> std::io::Result<StdFileStore> {
        Ok(StdFileStore {
            file: File::open(path)?,
        })
    }
}

impl ByteStore for StdFileStore {
    fn read_at(&mut self, offset: u64, buf: &mut [u8]) {
        let size = self.size();
        buf.fill(0);
        if offset >= size {
            return;
        }
        let n = ((size - offset) as usize).min(buf.len());
        self.file
            .seek(SeekFrom::Start(offset))
            .expect("seek for read");
        self.file
            .read_exact(&mut buf[..n])
            .expect("read_exact within file size");
    }

    fn write_at(&mut self, offset: u64, data: &[u8]) {
        self.file
            .seek(SeekFrom::Start(offset))
            .expect("seek for write");
        self.file.write_all(data).expect("write_all");
    }

    fn size(&self) -> u64 {
        self.file.metadata().map(|m| m.len()).unwrap_or(0)
    }
}

impl ByteStore for PosixSim {
    fn read_at(&mut self, offset: u64, buf: &mut [u8]) {
        PosixSim::read_at(self, offset, buf);
    }

    fn write_at(&mut self, offset: u64, data: &[u8]) {
        PosixSim::write_at(self, offset, data);
    }

    fn size(&self) -> u64 {
        PosixSim::size(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memstore_grows_and_reads_zeros() {
        let mut s = MemStore::new();
        s.write_at(4, &[1, 2, 3]);
        assert_eq!(s.size(), 7);
        let mut buf = [9u8; 10];
        s.read_at(0, &mut buf);
        assert_eq!(buf, [0, 0, 0, 0, 1, 2, 3, 0, 0, 0]);
    }

    #[test]
    fn stdfile_roundtrip() {
        let dir = std::env::temp_dir().join("pnetcdf_serial_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("store.bin");
        {
            let mut s = StdFileStore::create(&path).unwrap();
            s.write_at(2, &[5, 6, 7]);
            assert_eq!(s.size(), 5);
        }
        let mut s = StdFileStore::open(&path).unwrap();
        let mut buf = [0u8; 8];
        s.read_at(0, &mut buf);
        assert_eq!(buf, [0, 0, 5, 6, 7, 0, 0, 0]);
        std::fs::remove_file(&path).unwrap();
    }
}
