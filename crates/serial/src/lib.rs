//! Serial netCDF-3: the baseline library of the paper's Figure 6.
//!
//! This is a from-scratch implementation of the classic (serial) netCDF
//! API over the [`pnetcdf_format`] codec: create/define/attributes/inquiry
//! plus the five data access methods (single element, whole variable,
//! subarray, strided subarray, mapped subarray). It performs ordinary
//! blocking positional I/O through a [`storage::ByteStore`], which can be
//!
//! * [`storage::MemStore`] — an in-memory file (unit tests),
//! * [`storage::StdFileStore`] — a real file on the host file system
//!   (interoperability tests), or
//! * the simulated PFS via [`pnetcdf_pfs::PosixSim`] — the configuration
//!   used for the serial column of Figure 6, where a single process funnels
//!   the whole array through one client NIC.

pub mod dataset;
pub mod diff;
pub mod dump;
pub mod error;
pub mod storage;

pub use dataset::{Mode, NcFile};
pub use dump::dump as dump_cdl;
pub use error::{NcError, NcResult};
pub use storage::{ByteStore, MemStore, StdFileStore};
