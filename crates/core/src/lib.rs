//! # PnetCDF — Parallel netCDF
//!
//! A Rust reproduction of *"Parallel netCDF: A High-Performance Scientific
//! I/O Interface"* (Li, Liao, Choudhary, Ross, Thakur, Gropp, Latham,
//! Siegel, Gallagher, Zingale — SC 2003).
//!
//! PnetCDF extends the serial netCDF interface with **parallel access
//! semantics** while retaining the classic netCDF file format:
//!
//! * datasets are created/opened **collectively** by the processes of an
//!   MPI communicator ([`Dataset::create`] / [`Dataset::open`] — the
//!   `ncmpi_`-prefixed API of the paper);
//! * the file header is read/written only by rank 0 and cached on every
//!   process, so define-mode/attribute/inquiry functions are pure local
//!   memory operations;
//! * data mode is split into **collective** (`*_all`, mapped to two-phase
//!   collective MPI-IO) and **independent** flavors;
//! * the **high-level API** mirrors serial netCDF's five access methods
//!   (`var1`/`var`/`vara`/`vars`/`varm`); the **flexible API** describes
//!   memory with MPI datatypes;
//! * `MPI_Info` hints flow through to the MPI-IO layer.
//!
//! ```no_run
//! use hpc_sim::SimConfig;
//! use pnetcdf::{Dataset, DataMode};
//! use pnetcdf_format::{NcType, Version};
//! use pnetcdf_mpi::{run_world, Info};
//! use pnetcdf_pfs::{Pfs, StorageMode};
//!
//! let cfg = SimConfig::sdsc_blue_horizon();
//! let pfs = Pfs::new(cfg.clone(), StorageMode::Full);
//! run_world(4, cfg, |comm| {
//!     // 1. collectively create the dataset
//!     let mut ds = Dataset::create(comm, &pfs, "out.nc", Version::Cdf1, &Info::new()).unwrap();
//!     // 2. collectively define it
//!     let z = ds.def_dim("z", 4).unwrap();
//!     let tt = ds.def_var("tt", NcType::Float, &[z]).unwrap();
//!     ds.enddef().unwrap();
//!     // 3. access the data collectively
//!     ds.put_vara_all(tt, &[comm.rank() as u64], &[1], &[comm.rank() as f32]).unwrap();
//!     // 4. collectively close
//!     ds.close().unwrap();
//! });
//! ```

pub mod access;
pub(crate) mod agree;
pub mod consistency;
pub mod convert;
pub mod dataset;
pub mod define;
pub mod error;
pub mod fill;
pub mod inquiry;
pub mod profile;

pub use dataset::{DataMode, Dataset};
pub use error::{NcmpiError, NcmpiResult};
pub use inquiry::{DatasetInfo, VarInfo};
pub use profile::{AccessCounters, DatasetProfile, VarAccess};

// Re-export the pieces a typical application needs, so `use pnetcdf::*`
// style programs mirror the C library's single header.
pub use pnetcdf_format::{AttrValue, NcType, Version, NC_UNLIMITED};
pub use pnetcdf_mpi::{Datatype, Info, Request};
