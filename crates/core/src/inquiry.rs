//! Inquiry functions (`ncmpi_inq_*`).
//!
//! All information comes from the locally cached header — "all header
//! information can be accessed directly in local memory" (paper §4.3) — so
//! none of these involve communication or file I/O.

use pnetcdf_format::{AttrValue, NcType};

use crate::dataset::Dataset;
use crate::error::{NcmpiError, NcmpiResult};

/// Summary returned by [`Dataset::inq`] (`ncmpi_inq`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DatasetInfo {
    /// Number of dimensions.
    pub ndims: usize,
    /// Number of variables.
    pub nvars: usize,
    /// Number of global attributes.
    pub ngatts: usize,
    /// Id of the unlimited dimension, if any.
    pub unlimdimid: Option<usize>,
}

/// Per-variable information returned by [`Dataset::inq_var`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VarInfo {
    /// Variable name.
    pub name: String,
    /// External type.
    pub nctype: NcType,
    /// Dimension ids, most significant first.
    pub dimids: Vec<usize>,
    /// Number of attributes.
    pub natts: usize,
}

impl Dataset {
    /// Dataset summary (`ncmpi_inq`).
    pub fn inq(&self) -> DatasetInfo {
        DatasetInfo {
            ndims: self.header.dims.len(),
            nvars: self.header.vars.len(),
            ngatts: self.header.gatts.len(),
            unlimdimid: self.header.unlimited_dim(),
        }
    }

    /// Dimension id by name (`ncmpi_inq_dimid`).
    pub fn inq_dimid(&self, name: &str) -> NcmpiResult<usize> {
        self.header
            .dim_id(name)
            .ok_or_else(|| NcmpiError::NotFound(format!("dimension '{name}'")))
    }

    /// Dimension name and length (`ncmpi_inq_dim`). The unlimited dimension
    /// reports the current number of records.
    pub fn inq_dim(&self, dimid: usize) -> NcmpiResult<(String, u64)> {
        let d = self
            .header
            .dims
            .get(dimid)
            .ok_or_else(|| NcmpiError::NotFound(format!("dimension id {dimid}")))?;
        let len = if d.is_unlimited() {
            self.header.numrecs
        } else {
            d.len
        };
        Ok((d.name.clone(), len))
    }

    /// Variable id by name (`ncmpi_inq_varid`).
    pub fn inq_varid(&self, name: &str) -> NcmpiResult<usize> {
        self.header
            .var_id(name)
            .ok_or_else(|| NcmpiError::NotFound(format!("variable '{name}'")))
    }

    /// Variable metadata (`ncmpi_inq_var`).
    pub fn inq_var(&self, varid: usize) -> NcmpiResult<VarInfo> {
        let v = self
            .header
            .vars
            .get(varid)
            .ok_or_else(|| NcmpiError::NotFound(format!("variable id {varid}")))?;
        Ok(VarInfo {
            name: v.name.clone(),
            nctype: v.nctype,
            dimids: v.dimids.clone(),
            natts: v.atts.len(),
        })
    }

    /// A variable's current shape (record dimension = current `numrecs`).
    pub fn inq_var_shape(&self, varid: usize) -> NcmpiResult<Vec<u64>> {
        if varid >= self.header.vars.len() {
            return Err(NcmpiError::NotFound(format!("variable id {varid}")));
        }
        Ok(self.header.var_shape(varid))
    }

    /// Global attribute by name (`ncmpi_get_att`).
    pub fn get_gatt(&self, name: &str) -> NcmpiResult<&AttrValue> {
        self.header
            .gatts
            .iter()
            .find(|a| a.name == name)
            .map(|a| &a.value)
            .ok_or_else(|| NcmpiError::NotFound(format!("global attribute '{name}'")))
    }

    /// Variable attribute by name.
    pub fn get_vatt(&self, varid: usize, name: &str) -> NcmpiResult<&AttrValue> {
        self.header
            .vars
            .get(varid)
            .ok_or_else(|| NcmpiError::NotFound(format!("variable id {varid}")))?
            .atts
            .iter()
            .find(|a| a.name == name)
            .map(|a| &a.value)
            .ok_or_else(|| NcmpiError::NotFound(format!("attribute '{name}'")))
    }

    /// Number of records currently defined (`ncmpi_inq_unlimlen`).
    pub fn numrecs(&self) -> u64 {
        self.header.numrecs
    }

    /// Access to the raw header copy (diagnostics and tests).
    pub fn header(&self) -> &pnetcdf_format::Header {
        &self.header
    }

    /// The computed file layout (diagnostics and tests).
    pub fn layout(&self) -> pnetcdf_format::Layout {
        self.layout
    }
}
