//! Per-dataset access profiling: bytes and request counts attributed to
//! each variable and each access mode (blocking `put/get` vs. nonblocking
//! `iput/iget` + `wait`), the core-layer slice of the `pnetcdf-trace`
//! observability stack.
//!
//! Every rank keeps its own [`DatasetProfile`] inside its [`Dataset`]
//! handle — recording is plain field arithmetic on the local struct, no
//! atomics and no locks, so it is always on. At `close`, when the shared
//! trace [`hpc_sim::Profile`] is enabled, the per-rank profiles are
//! summed across the communicator with one `MPI_Allreduce` and rank 0
//! attaches the global roll-up to the trace so it appears in the report
//! JSON (mirroring how Darshan folds per-rank counters at shutdown).

use hpc_sim::trace::Json;

/// Byte and request counters for one access mode of one variable.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AccessCounters {
    pub put_bytes: u64,
    pub put_requests: u64,
    pub get_bytes: u64,
    pub get_requests: u64,
}

impl AccessCounters {
    fn add(&mut self, other: &AccessCounters) {
        self.put_bytes += other.put_bytes;
        self.put_requests += other.put_requests;
        self.get_bytes += other.get_bytes;
        self.get_requests += other.get_requests;
    }

    fn record(&mut self, put: bool, bytes: u64) {
        if put {
            self.put_bytes += bytes;
            self.put_requests += 1;
        } else {
            self.get_bytes += bytes;
            self.get_requests += 1;
        }
    }

    fn to_json(self) -> Json {
        Json::obj()
            .with("put_bytes", self.put_bytes)
            .with("put_requests", self.put_requests)
            .with("get_bytes", self.get_bytes)
            .with("get_requests", self.get_requests)
    }
}

/// One variable's counters, split by access mode.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct VarAccess {
    /// The blocking calls (`put_vara_all`, `get_vars`, …).
    pub blocking: AccessCounters,
    /// The nonblocking calls (`iput_*`/`iget_*` completed by `wait` or
    /// `wait_all`). Bytes are counted per queued request, before
    /// cross-request merging, so a workload issued through either path
    /// reports the same sizes.
    pub nonblocking: AccessCounters,
}

impl VarAccess {
    /// Both access modes combined.
    pub fn total(&self) -> AccessCounters {
        let mut t = self.blocking;
        t.add(&self.nonblocking);
        t
    }
}

/// Per-variable, per-access-mode counters for one dataset on one rank.
#[derive(Clone, Debug, Default)]
pub struct DatasetProfile {
    /// Indexed by variable id; grown on first access.
    vars: Vec<VarAccess>,
}

/// Number of `u64` slots one variable occupies in the flattened form.
const SLOTS: usize = 8;

impl DatasetProfile {
    /// Charge one access of `bytes` to a variable.
    pub(crate) fn record(&mut self, varid: usize, put: bool, nonblocking: bool, bytes: u64) {
        if self.vars.len() <= varid {
            self.vars.resize(varid + 1, VarAccess::default());
        }
        let v = &mut self.vars[varid];
        let mode = if nonblocking {
            &mut v.nonblocking
        } else {
            &mut v.blocking
        };
        mode.record(put, bytes);
    }

    /// Counters for one variable (zero if it was never accessed).
    pub fn var(&self, varid: usize) -> VarAccess {
        self.vars.get(varid).copied().unwrap_or_default()
    }

    /// Counters summed over every variable, split by access mode.
    pub fn totals(&self) -> VarAccess {
        let mut t = VarAccess::default();
        for v in &self.vars {
            t.blocking.add(&v.blocking);
            t.nonblocking.add(&v.nonblocking);
        }
        t
    }

    /// Total bytes this rank has written to the dataset
    /// (`ncmpi_inq_put_size`).
    pub fn put_size(&self) -> u64 {
        let t = self.totals();
        t.blocking.put_bytes + t.nonblocking.put_bytes
    }

    /// Total bytes this rank has read from the dataset
    /// (`ncmpi_inq_get_size`).
    pub fn get_size(&self) -> u64 {
        let t = self.totals();
        t.blocking.get_bytes + t.nonblocking.get_bytes
    }

    /// Flatten to `nvars * 8` u64 values for an elementwise sum-allreduce.
    pub(crate) fn flatten(&self, nvars: usize) -> Vec<u64> {
        let mut out = Vec::with_capacity(nvars * SLOTS);
        for varid in 0..nvars {
            let v = self.var(varid);
            for c in [v.blocking, v.nonblocking] {
                out.extend_from_slice(&[c.put_bytes, c.put_requests, c.get_bytes, c.get_requests]);
            }
        }
        out
    }

    /// Rebuild from the flattened form (after the allreduce).
    pub(crate) fn unflatten(flat: &[u64]) -> DatasetProfile {
        let mut vars = Vec::with_capacity(flat.len() / SLOTS);
        for chunk in flat.chunks_exact(SLOTS) {
            let counters = |s: &[u64]| AccessCounters {
                put_bytes: s[0],
                put_requests: s[1],
                get_bytes: s[2],
                get_requests: s[3],
            };
            vars.push(VarAccess {
                blocking: counters(&chunk[..4]),
                nonblocking: counters(&chunk[4..]),
            });
        }
        DatasetProfile { vars }
    }

    /// Report fragment: totals plus a per-variable breakdown. `names[i]`
    /// labels variable id `i`; missing names fall back to the id.
    pub fn to_json(&self, names: &[String]) -> Json {
        let t = self.totals();
        let mut vars = Vec::new();
        for (varid, v) in self.vars.iter().enumerate() {
            let total = v.total();
            if total.put_requests == 0 && total.get_requests == 0 {
                continue;
            }
            let name = names
                .get(varid)
                .cloned()
                .unwrap_or_else(|| format!("var{varid}"));
            vars.push(
                Json::obj()
                    .with("name", name)
                    .with("blocking", v.blocking.to_json())
                    .with("nonblocking", v.nonblocking.to_json()),
            );
        }
        Json::obj()
            .with("put_bytes", self.put_size())
            .with("get_bytes", self.get_size())
            .with("blocking", t.blocking.to_json())
            .with("nonblocking", t.nonblocking.to_json())
            .with("vars", vars)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_splits_by_var_and_mode() {
        let mut p = DatasetProfile::default();
        p.record(0, true, false, 100);
        p.record(0, true, true, 50);
        p.record(2, false, false, 8);
        assert_eq!(p.var(0).blocking.put_bytes, 100);
        assert_eq!(p.var(0).nonblocking.put_bytes, 50);
        assert_eq!(p.var(2).blocking.get_requests, 1);
        assert_eq!(p.var(1), VarAccess::default());
        assert_eq!(p.put_size(), 150);
        assert_eq!(p.get_size(), 8);
    }

    #[test]
    fn flatten_unflatten_roundtrip() {
        let mut p = DatasetProfile::default();
        p.record(1, true, true, 64);
        p.record(3, false, false, 16);
        let flat = p.flatten(5);
        assert_eq!(flat.len(), 5 * SLOTS);
        let q = DatasetProfile::unflatten(&flat);
        assert_eq!(q.var(1), p.var(1));
        assert_eq!(q.var(3), p.var(3));
        assert_eq!(q.put_size(), 64);
        assert_eq!(q.get_size(), 16);
    }

    #[test]
    fn json_skips_untouched_vars() {
        let mut p = DatasetProfile::default();
        p.record(1, true, false, 10);
        let j = p.to_json(&["a".into(), "b".into()]);
        let vars = match j.get("vars") {
            Some(Json::Arr(v)) => v,
            other => panic!("vars not an array: {other:?}"),
        };
        assert_eq!(vars.len(), 1);
        assert_eq!(
            vars[0].get("name").and_then(|n| match n {
                Json::Str(s) => Some(s.as_str()),
                _ => None,
            }),
            Some("b")
        );
    }
}
