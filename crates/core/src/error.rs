//! PnetCDF error codes.

use std::fmt;

use pnetcdf_format::FormatError;
use pnetcdf_mpi::MpiError;
use pnetcdf_mpio::MpioError;

/// Errors of the parallel netCDF API (the `NC_E*` codes plus the parallel
/// additions introduced by PnetCDF).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NcmpiError {
    /// Format-level failure (codec, layout, NC_ERANGE...).
    Format(FormatError),
    /// MPI-IO failure.
    Mpio(MpioError),
    /// MPI failure.
    Mpi(MpiError),
    /// Operation requires define mode (`NC_ENOTINDEFINE`).
    NotInDefineMode,
    /// Operation not permitted in define mode (`NC_EINDEFINE`).
    InDefineMode,
    /// Collective call attempted in independent data mode or vice versa
    /// (`NC_EINDEP` / `NC_ENOTINDEP`).
    WrongDataMode(&'static str),
    /// Unknown dimension/variable/attribute.
    NotFound(String),
    /// The dataset is read-only (`NC_EPERM`).
    ReadOnly,
    /// Ranks passed inconsistent arguments to a collective definition
    /// (`NC_EMULTIDEFINE`).
    InconsistentDefinitions,
    /// Argument validation failure.
    InvalidArgument(String),
}

impl fmt::Display for NcmpiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NcmpiError::Format(e) => write!(f, "{e}"),
            NcmpiError::Mpio(e) => write!(f, "{e}"),
            NcmpiError::Mpi(e) => write!(f, "{e}"),
            NcmpiError::NotInDefineMode => write!(f, "operation requires define mode"),
            NcmpiError::InDefineMode => write!(f, "operation not permitted in define mode"),
            NcmpiError::WrongDataMode(need) => {
                write!(f, "operation requires {need} data mode")
            }
            NcmpiError::NotFound(what) => write!(f, "not found: {what}"),
            NcmpiError::ReadOnly => write!(f, "dataset is read-only"),
            NcmpiError::InconsistentDefinitions => write!(
                f,
                "ranks passed inconsistent definitions to a collective call (NC_EMULTIDEFINE)"
            ),
            NcmpiError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for NcmpiError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NcmpiError::Format(e) => Some(e),
            NcmpiError::Mpio(e) => Some(e),
            NcmpiError::Mpi(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FormatError> for NcmpiError {
    fn from(e: FormatError) -> Self {
        NcmpiError::Format(e)
    }
}

impl From<MpioError> for NcmpiError {
    fn from(e: MpioError) -> Self {
        NcmpiError::Mpio(e)
    }
}

impl From<MpiError> for NcmpiError {
    fn from(e: MpiError) -> Self {
        NcmpiError::Mpi(e)
    }
}

/// Result alias for PnetCDF operations.
pub type NcmpiResult<T> = Result<T, NcmpiError>;
