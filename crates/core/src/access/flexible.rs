//! The flexible data access API (paper §4.1).
//!
//! "The flexible API provides the user with the ability to describe
//! noncontiguous regions in memory, which is missing from the original
//! interface. These regions are described using MPI datatypes." The file
//! region is still described by `start/count/stride`; the memory side is
//! `(buf, bufcount, mpi_datatype)`. All the high-level routines could be
//! written over these (and in the reference implementation they are; here
//! the typed path shares `put_region` instead to avoid double conversion).
//!
//! The memory datatype's element width must equal the variable's external
//! type width (the common usage); the conversion is then an endianness swap.

use pnetcdf_mpi::Datatype;

use crate::convert;
use crate::dataset::Dataset;
use crate::error::{NcmpiError, NcmpiResult};

impl Dataset {
    pub(crate) fn flexible_common(
        &mut self,
        varid: usize,
        count: &[u64],
        bufcount: usize,
        memtype: &Datatype,
    ) -> NcmpiResult<(pnetcdf_format::NcType, usize)> {
        let nctype = self
            .header
            .vars
            .get(varid)
            .map(|v| v.nctype)
            .ok_or_else(|| NcmpiError::NotFound(format!("variable id {varid}")))?;
        let esize = nctype.size() as usize;
        let mem_bytes = memtype.size() as usize * bufcount;
        let sel: u64 = count.iter().product::<u64>() * esize as u64;
        if mem_bytes as u64 != sel {
            return Err(NcmpiError::InvalidArgument(format!(
                "memory datatype describes {mem_bytes} bytes but the access selects {sel}"
            )));
        }
        if mem_bytes % esize != 0 {
            return Err(NcmpiError::InvalidArgument(format!(
                "memory datatype size {mem_bytes} is not a multiple of element size {esize}"
            )));
        }
        Ok((nctype, mem_bytes))
    }

    /// Collective flexible write (`ncmpi_put_vara_all` in the C API).
    pub fn put_vara_all_flexible(
        &mut self,
        varid: usize,
        start: &[u64],
        count: &[u64],
        buf: &[u8],
        bufcount: usize,
        memtype: &Datatype,
    ) -> NcmpiResult<()> {
        self.put_flexible(varid, start, count, None, buf, bufcount, memtype, true)
    }

    /// Independent flexible write (`ncmpi_put_vara`).
    pub fn put_vara_flexible(
        &mut self,
        varid: usize,
        start: &[u64],
        count: &[u64],
        buf: &[u8],
        bufcount: usize,
        memtype: &Datatype,
    ) -> NcmpiResult<()> {
        self.put_flexible(varid, start, count, None, buf, bufcount, memtype, false)
    }

    /// Collective flexible strided write (`ncmpi_put_vars_all`).
    #[allow(clippy::too_many_arguments)]
    pub fn put_vars_all_flexible(
        &mut self,
        varid: usize,
        start: &[u64],
        count: &[u64],
        stride: &[u64],
        buf: &[u8],
        bufcount: usize,
        memtype: &Datatype,
    ) -> NcmpiResult<()> {
        self.put_flexible(
            varid,
            start,
            count,
            Some(stride),
            buf,
            bufcount,
            memtype,
            true,
        )
    }

    /// Independent flexible strided write (`ncmpi_put_vars`).
    #[allow(clippy::too_many_arguments)]
    pub fn put_vars_flexible(
        &mut self,
        varid: usize,
        start: &[u64],
        count: &[u64],
        stride: &[u64],
        buf: &[u8],
        bufcount: usize,
        memtype: &Datatype,
    ) -> NcmpiResult<()> {
        self.put_flexible(
            varid,
            start,
            count,
            Some(stride),
            buf,
            bufcount,
            memtype,
            false,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn put_flexible(
        &mut self,
        varid: usize,
        start: &[u64],
        count: &[u64],
        stride: Option<&[u64]>,
        buf: &[u8],
        bufcount: usize,
        memtype: &Datatype,
        collective: bool,
    ) -> NcmpiResult<()> {
        if collective {
            self.require_collective()?;
        } else {
            self.require_independent()?;
        }
        self.require_writable()?;
        let (nctype, _) = self.flexible_common(varid, count, bufcount, memtype)?;

        // Gather the (possibly noncontiguous) native memory and swap to
        // external byte order in one fused pass. The simulator still
        // charges the datatype walk and the conversion separately — the
        // work happens, only the intermediate buffer is gone.
        let ext = convert::pack_to_external(buf, bufcount, memtype, nctype)?;
        self.comm
            .config()
            .profile
            .record_bytepath(|b| b.fused_pack_bytes += ext.len() as u64);
        if !memtype.is_contiguous() {
            self.comm
                .advance(self.comm.config().cpu.pack(ext.len(), 1.0));
        }
        self.comm
            .advance(self.comm.config().cpu.pack(ext.len(), 1.0));

        let req = self.lower_put(varid, start, count, stride, ext)?;
        self.execute_put_now(&req, collective)
    }

    /// Collective flexible read (`ncmpi_get_vara_all`).
    pub fn get_vara_all_flexible(
        &mut self,
        varid: usize,
        start: &[u64],
        count: &[u64],
        buf: &mut [u8],
        bufcount: usize,
        memtype: &Datatype,
    ) -> NcmpiResult<()> {
        self.get_flexible(varid, start, count, None, buf, bufcount, memtype, true)
    }

    /// Independent flexible read (`ncmpi_get_vara`).
    pub fn get_vara_flexible(
        &mut self,
        varid: usize,
        start: &[u64],
        count: &[u64],
        buf: &mut [u8],
        bufcount: usize,
        memtype: &Datatype,
    ) -> NcmpiResult<()> {
        self.get_flexible(varid, start, count, None, buf, bufcount, memtype, false)
    }

    /// Collective flexible strided read (`ncmpi_get_vars_all`, as in the
    /// paper's Figure 4 READ example).
    #[allow(clippy::too_many_arguments)]
    pub fn get_vars_all_flexible(
        &mut self,
        varid: usize,
        start: &[u64],
        count: &[u64],
        stride: &[u64],
        buf: &mut [u8],
        bufcount: usize,
        memtype: &Datatype,
    ) -> NcmpiResult<()> {
        self.get_flexible(
            varid,
            start,
            count,
            Some(stride),
            buf,
            bufcount,
            memtype,
            true,
        )
    }

    /// Independent flexible strided read (`ncmpi_get_vars`).
    #[allow(clippy::too_many_arguments)]
    pub fn get_vars_flexible(
        &mut self,
        varid: usize,
        start: &[u64],
        count: &[u64],
        stride: &[u64],
        buf: &mut [u8],
        bufcount: usize,
        memtype: &Datatype,
    ) -> NcmpiResult<()> {
        self.get_flexible(
            varid,
            start,
            count,
            Some(stride),
            buf,
            bufcount,
            memtype,
            false,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn get_flexible(
        &mut self,
        varid: usize,
        start: &[u64],
        count: &[u64],
        stride: Option<&[u64]>,
        buf: &mut [u8],
        bufcount: usize,
        memtype: &Datatype,
        collective: bool,
    ) -> NcmpiResult<()> {
        if collective {
            self.require_collective()?;
        } else {
            self.require_independent()?;
        }
        let (nctype, _) = self.flexible_common(varid, count, bufcount, memtype)?;
        let req = self.lower_get(varid, start, count, stride)?;
        let ext = self.execute_get_now(&req, collective)?;
        self.comm
            .advance(self.comm.config().cpu.pack(ext.len(), 1.0));
        self.comm
            .config()
            .profile
            .record_bytepath(|b| b.fused_unpack_bytes += ext.len() as u64);
        // Fused convert+scatter back into the user's memory description.
        convert::unpack_from_external(&ext, buf, bufcount, memtype, nctype)?;
        Ok(())
    }
}
