//! The unified access-request pipeline and the nonblocking API.
//!
//! Every data access — typed or flexible, blocking or nonblocking,
//! collective or independent — is lowered into one [`AccessReq`]: the
//! validated access frozen as absolute file byte runs plus (for puts) the
//! staged external bytes. The blocking calls in [`super::highlevel`] and
//! [`super::flexible`] execute a single request immediately; the
//! nonblocking `iput_*`/`iget_*` calls queue requests on the dataset and
//! return [`Request`] tickets.
//!
//! `wait_all` is where the paper's aggregation idea pays off (the
//! optimization production PnetCDF later shipped as `ncmpi_iput/ncmpi_wait_all`):
//! all pending puts are merged into **one** sorted, overlap-resolved run
//! list with a packed staging buffer and issued as a single collective
//! write; all pending gets union into one run list issued as a single
//! collective read. N queued variable accesses cost one or two collective
//! rounds instead of N.

use hpc_sim::trace::events::layer;
use hpc_sim::{Span, Time, TraceCtx};
use pnetcdf_format::types::{from_external, to_external};
use pnetcdf_format::{NcType, NcValue};
use pnetcdf_mpi::{Datatype, ReduceOp, Request};
use pnetcdf_mpio::{MpioError, Run};

use crate::convert;
use crate::dataset::{DataMode, Dataset};
use crate::error::{NcmpiError, NcmpiResult};

/// Direction of an access request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum AccessKind {
    Put,
    Get,
}

/// One lowered access request. The access is fully validated and resolved
/// to file byte runs when the request is built, so executing it later (or
/// merged with others) needs no further header state.
pub(crate) struct AccessReq {
    pub id: Request,
    pub varid: usize,
    pub kind: AccessKind,
    /// Absolute file byte runs of the selection, sorted and non-overlapping.
    pub runs: Vec<Run>,
    /// Put: external (big-endian) bytes in run order. Get: empty.
    pub buffer: Vec<u8>,
    /// The variable's external type, kept for get-result conversion.
    pub nctype: NcType,
    /// Whether the variable is a record variable (drives `numrecs`
    /// reconciliation at flush time).
    pub record: bool,
    /// Event-trace id issued at enqueue time (0 when tracing is off or the
    /// request runs on the blocking path, which issues its own span).
    pub trace_id: u64,
    /// Virtual time the request was queued (span begin for `iput`/`iget`).
    pub queued: Time,
}

// ---- request merging --------------------------------------------------------

/// One overlap-resolved slice of a request's staged buffer: `len` bytes at
/// file offset `off`, found at byte `pos` of source buffer `src`. Pieces
/// carry no bytes — overlap resolution is pure arithmetic on them.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Piece {
    off: u64,
    len: u64,
    src: usize,
    pos: u64,
}

impl Piece {
    fn end(&self) -> u64 {
        self.off + self.len
    }
}

/// Sorted, non-overlapping references into the requests' staged buffers.
/// Inserting later requests overwrites earlier ones where they overlap
/// (last request wins — the same deterministic rule two-phase I/O applies
/// across ranks). Unlike the old owned-segment design, resolving overlaps
/// never copies a byte: the only copy happens in [`RunStage::into_merged_with`],
/// one gather pass from the source buffers into the final staging buffer.
#[derive(Default)]
pub(crate) struct RunStage {
    pieces: Vec<Piece>,
}

impl RunStage {
    /// Overlay `len` bytes at file offset `off`, sourced from byte `pos` of
    /// source buffer `src`.
    pub(crate) fn insert(&mut self, off: u64, len: u64, src: usize, pos: u64) {
        if len == 0 {
            return;
        }
        let end = off + len;
        let mut i = self.pieces.partition_point(|p| p.end() <= off);
        if i < self.pieces.len() && self.pieces[i].off < off {
            // The piece straddles `off`: split it, keeping the head.
            let head = &mut self.pieces[i];
            let keep = off - head.off;
            let tail = Piece {
                off,
                len: head.len - keep,
                src: head.src,
                pos: head.pos + keep,
            };
            head.len = keep;
            self.pieces.insert(i + 1, tail);
            i += 1;
        }
        while i < self.pieces.len() && self.pieces[i].off < end {
            if self.pieces[i].end() <= end {
                self.pieces.remove(i);
            } else {
                // Trim the overwritten head of the trailing piece.
                let p = &mut self.pieces[i];
                let cut = end - p.off;
                p.off = end;
                p.pos += cut;
                p.len -= cut;
                break;
            }
        }
        self.pieces.insert(i, Piece { off, len, src, pos });
    }

    /// Final merged form: coalesced runs plus the staging buffer, gathered
    /// in a single pass from the source buffers the pieces reference.
    pub(crate) fn into_merged_with(self, sources: &[&[u8]]) -> (Vec<Run>, Vec<u8>) {
        let total: u64 = self.pieces.iter().map(|p| p.len).sum();
        let mut runs: Vec<Run> = Vec::with_capacity(self.pieces.len());
        let mut staging = Vec::with_capacity(total as usize);
        for p in &self.pieces {
            match runs.last_mut() {
                Some(last) if last.0 + last.1 == p.off => last.1 += p.len,
                _ => runs.push((p.off, p.len)),
            }
            staging.extend_from_slice(&sources[p.src][p.pos as usize..(p.pos + p.len) as usize]);
        }
        (runs, staging)
    }
}

/// True when the runs are sorted, non-overlapping, and non-adjacent — i.e.
/// already in the exact shape `into_merged_with` would produce.
fn runs_coalesced(runs: &[Run]) -> bool {
    runs.windows(2).all(|w| w[0].0 + w[0].1 < w[1].0)
}

/// Merge the put requests into one sorted run list + staging buffer, later
/// requests winning overlaps. A single coalesced put needs no merge at all:
/// its staged buffer is borrowed as-is (zero copies).
fn merge_puts(reqs: &[AccessReq]) -> (Vec<Run>, std::borrow::Cow<'_, [u8]>) {
    let puts: Vec<&AccessReq> = reqs.iter().filter(|r| r.kind == AccessKind::Put).collect();
    if let [only] = puts.as_slice() {
        if runs_coalesced(&only.runs) {
            return (only.runs.clone(), std::borrow::Cow::Borrowed(&only.buffer));
        }
    }
    let mut stage = RunStage::default();
    let sources: Vec<&[u8]> = puts.iter().map(|r| r.buffer.as_slice()).collect();
    for (src, req) in puts.iter().enumerate() {
        let mut pos = 0u64;
        for &(off, len) in &req.runs {
            stage.insert(off, len, src, pos);
            pos += len;
        }
    }
    let (runs, staging) = stage.into_merged_with(&sources);
    (runs, std::borrow::Cow::Owned(staging))
}

/// Union of all get requests' runs: sorted, coalesced coverage.
fn merge_gets(reqs: &[AccessReq]) -> Vec<Run> {
    let mut all: Vec<Run> = reqs
        .iter()
        .filter(|r| r.kind == AccessKind::Get)
        .flat_map(|r| r.runs.iter().copied())
        .collect();
    all.sort_unstable();
    let mut out: Vec<Run> = Vec::with_capacity(all.len());
    for (off, len) in all {
        if let Some(last) = out.last_mut() {
            let last_end = last.0 + last.1;
            if off <= last_end {
                last.1 = (off + len).max(last_end) - last.0;
                continue;
            }
        }
        out.push((off, len));
    }
    out
}

/// Byte position of each coverage run inside the packed coverage buffer.
fn coverage_positions(cov: &[Run]) -> Vec<u64> {
    let mut pos = Vec::with_capacity(cov.len());
    let mut acc = 0u64;
    for &(_, len) in cov {
        pos.push(acc);
        acc += len;
    }
    pos
}

/// Extract one request's bytes (in its own run order) from the packed
/// coverage buffer. Every request run lies inside exactly one coverage run
/// because the coverage is the coalesced union of all request runs.
fn extract_runs(cov: &[Run], pos: &[u64], data: &[u8], runs: &[Run]) -> Vec<u8> {
    let total: u64 = runs.iter().map(|r| r.1).sum();
    let mut out = Vec::with_capacity(total as usize);
    for &(off, len) in runs {
        let i = cov.partition_point(|&(o, _)| o <= off) - 1;
        let p = (pos[i] + (off - cov[i].0)) as usize;
        out.extend_from_slice(&data[p..p + len as usize]);
    }
    out
}

/// The agreed (or local, in independent mode) server index when `res` is
/// the failover-eligible lost-server verdict, `None` otherwise.
pub(crate) fn agreed_server_lost<T>(res: &NcmpiResult<T>) -> Option<usize> {
    match res {
        Err(NcmpiError::Mpio(MpioError::ServerLost { server, .. })) => Some(*server),
        _ => None,
    }
}

// ---- the engine ------------------------------------------------------------

impl Dataset {
    /// Collectively agree on the outcome of a local step (see
    /// [`crate::agree`]): every rank contributes its local result, the
    /// maximum-severity error wins (ties → lowest rank), and *all* ranks —
    /// including those whose local step succeeded — return the same
    /// reconstructed error. Called after local validation/lowering and
    /// before the data collective, so a rank that failed validation never
    /// leaves the others hanging in the collective.
    pub(crate) fn agree<T>(&mut self, local: NcmpiResult<T>) -> NcmpiResult<T> {
        let payload = match &local {
            Ok(_) => Vec::new(),
            Err(e) => crate::agree::encode(e),
        };
        let all = self.comm.allgather_bytes(payload)?;
        match crate::agree::pick(&all) {
            None => local,
            Some(err) => {
                // One agreement event per world, not per rank: the profile
                // is shared by every rank thread.
                if self.comm.rank() == 0 {
                    self.comm
                        .config()
                        .profile
                        .record_fault(|f| f.agreed_errors += 1);
                }
                Err(err)
            }
        }
    }

    /// The variable's external type, or `NotFound`.
    pub(crate) fn var_nctype(&self, varid: usize) -> NcmpiResult<NcType> {
        self.header
            .vars
            .get(varid)
            .map(|v| v.nctype)
            .ok_or_else(|| NcmpiError::NotFound(format!("variable id {varid}")))
    }

    /// Data mode (collective or independent) is required to queue requests.
    fn require_data_mode(&self) -> NcmpiResult<()> {
        if self.mode == DataMode::Define {
            return Err(NcmpiError::InDefineMode);
        }
        Ok(())
    }

    /// Lower a write access: validate, resolve to file runs, and freeze the
    /// staged external bytes. Grows the local record count and invalidates
    /// the variable's prefetch cache, so later accesses in the same batch
    /// see the post-write state.
    pub(crate) fn lower_put(
        &mut self,
        varid: usize,
        start: &[u64],
        count: &[u64],
        stride: Option<&[u64]>,
        ext: Vec<u8>,
    ) -> NcmpiResult<AccessReq> {
        self.require_writable()?;
        let nctype = self.var_nctype(varid)?;
        let (runs, total) = self.build_region(varid, start, count, stride, true)?;
        if total as usize != ext.len() {
            return Err(NcmpiError::InvalidArgument(format!(
                "access selects {total} bytes but the staged buffer holds {}",
                ext.len()
            )));
        }
        self.grow_numrecs(varid, start, count, stride);
        self.invalidate_cache(varid);
        Ok(AccessReq {
            id: Request::NULL,
            varid,
            kind: AccessKind::Put,
            runs,
            buffer: ext,
            nctype,
            record: self.header.is_record_var(varid),
            trace_id: 0,
            queued: Time::ZERO,
        })
    }

    /// Lower a read access: validate against the current record count and
    /// resolve to file runs.
    pub(crate) fn lower_get(
        &mut self,
        varid: usize,
        start: &[u64],
        count: &[u64],
        stride: Option<&[u64]>,
    ) -> NcmpiResult<AccessReq> {
        let nctype = self.var_nctype(varid)?;
        let (runs, _total) = self.build_region(varid, start, count, stride, false)?;
        Ok(AccessReq {
            id: Request::NULL,
            varid,
            kind: AccessKind::Get,
            runs,
            buffer: Vec::new(),
            nctype,
            record: self.header.is_record_var(varid),
            trace_id: 0,
            queued: Time::ZERO,
        })
    }

    /// Execute one put immediately (the blocking path).
    pub(crate) fn execute_put_now(&mut self, req: &AccessReq, collective: bool) -> NcmpiResult<()> {
        let events = self.comm.config().events.clone();
        let rid = events.is_enabled().then(|| events.next_id());
        let t0 = self.comm.now();
        {
            let _ctx = rid.map(|r| TraceCtx::enter(self.comm.world_rank(), r));
            if collective {
                self.file.write_runs_at_all(&req.runs, &req.buffer)?;
                if req.record {
                    self.reconcile_numrecs()?;
                }
            } else {
                self.file.write_runs_at(&req.runs, &req.buffer)?;
            }
        }
        if let Some(r) = rid {
            events.record(
                Span::new(
                    self.comm.world_rank(),
                    layer::CORE,
                    "put",
                    t0.as_nanos(),
                    self.comm.now().as_nanos(),
                )
                .with_id(r)
                .with_arg("bytes", req.buffer.len() as u64),
            );
        }
        self.profile
            .record(req.varid, true, false, req.buffer.len() as u64);
        Ok(())
    }

    /// Execute one get immediately (the blocking path); returns the
    /// external bytes of the selection in run order.
    pub(crate) fn execute_get_now(
        &mut self,
        req: &AccessReq,
        collective: bool,
    ) -> NcmpiResult<Vec<u8>> {
        let events = self.comm.config().events.clone();
        let rid = events.is_enabled().then(|| events.next_id());
        let t0 = self.comm.now();
        let data = {
            let _ctx = rid.map(|r| TraceCtx::enter(self.comm.world_rank(), r));
            if collective {
                self.file.read_runs_at_all(&req.runs)?
            } else {
                self.file.read_runs_at(&req.runs)?
            }
        };
        if let Some(r) = rid {
            events.record(
                Span::new(
                    self.comm.world_rank(),
                    layer::CORE,
                    "get",
                    t0.as_nanos(),
                    self.comm.now().as_nanos(),
                )
                .with_id(r)
                .with_arg("bytes", data.len() as u64),
            );
        }
        self.profile
            .record(req.varid, false, false, data.len() as u64);
        Ok(data)
    }

    pub(crate) fn enqueue(&mut self, mut req: AccessReq) -> Request {
        let id = self.req_table.issue();
        req.id = id;
        let events = &self.comm.config().events;
        if events.is_enabled() {
            req.trace_id = events.next_id();
            req.queued = self.comm.now();
        }
        self.pending.push(req);
        id
    }

    fn enqueue_put_typed<T: NcValue>(
        &mut self,
        varid: usize,
        start: &[u64],
        count: &[u64],
        stride: Option<&[u64]>,
        vals: &[T],
    ) -> NcmpiResult<Request> {
        self.require_data_mode()?;
        self.check_count(count, vals.len())?;
        let nctype = self.var_nctype(varid)?;
        let ext = to_external(vals, nctype)?;
        self.comm
            .advance(self.comm.config().cpu.pack(ext.len(), 1.0));
        let req = self.lower_put(varid, start, count, stride, ext)?;
        Ok(self.enqueue(req))
    }

    fn enqueue_get(
        &mut self,
        varid: usize,
        start: &[u64],
        count: &[u64],
        stride: Option<&[u64]>,
    ) -> NcmpiResult<Request> {
        self.require_data_mode()?;
        let req = self.lower_get(varid, start, count, stride)?;
        Ok(self.enqueue(req))
    }

    // ---- the nonblocking API ------------------------------------------------

    /// Queue a subarray write (`ncmpi_iput_vara_<type>`); complete it with
    /// [`Dataset::wait_all`] (collective mode) or [`Dataset::wait`]
    /// (independent mode).
    pub fn iput_vara<T: NcValue>(
        &mut self,
        varid: usize,
        start: &[u64],
        count: &[u64],
        vals: &[T],
    ) -> NcmpiResult<Request> {
        self.enqueue_put_typed(varid, start, count, None, vals)
    }

    /// Queue a strided subarray write (`ncmpi_iput_vars_<type>`).
    pub fn iput_vars<T: NcValue>(
        &mut self,
        varid: usize,
        start: &[u64],
        count: &[u64],
        stride: &[u64],
        vals: &[T],
    ) -> NcmpiResult<Request> {
        self.enqueue_put_typed(varid, start, count, Some(stride), vals)
    }

    /// Queue a single-element write (`ncmpi_iput_var1_<type>`).
    pub fn iput_var1<T: NcValue>(
        &mut self,
        varid: usize,
        index: &[u64],
        val: T,
    ) -> NcmpiResult<Request> {
        let count = vec![1u64; index.len()];
        self.enqueue_put_typed(varid, index, &count, None, &[val])
    }

    /// Queue a whole-variable write (`ncmpi_iput_var_<type>`).
    pub fn iput_var<T: NcValue>(&mut self, varid: usize, vals: &[T]) -> NcmpiResult<Request> {
        let (start, count) = self.whole(varid, Some(vals.len()))?;
        self.enqueue_put_typed(varid, &start, &count, None, vals)
    }

    /// Queue a flexible subarray write (`ncmpi_iput_vara`): memory described
    /// by an MPI datatype.
    pub fn iput_vara_flexible(
        &mut self,
        varid: usize,
        start: &[u64],
        count: &[u64],
        buf: &[u8],
        bufcount: usize,
        memtype: &Datatype,
    ) -> NcmpiResult<Request> {
        self.require_data_mode()?;
        let (nctype, _) = self.flexible_common(varid, count, bufcount, memtype)?;
        // Fused gather+convert: one pass instead of pack-then-swap. The
        // simulator still charges both steps — the datatype walk and the
        // endianness conversion are real work; only the extra buffer is gone.
        let ext = convert::pack_to_external(buf, bufcount, memtype, nctype)?;
        self.comm
            .config()
            .profile
            .record_bytepath(|b| b.fused_pack_bytes += ext.len() as u64);
        if !memtype.is_contiguous() {
            self.comm
                .advance(self.comm.config().cpu.pack(ext.len(), 1.0));
        }
        self.comm
            .advance(self.comm.config().cpu.pack(ext.len(), 1.0));
        let req = self.lower_put(varid, start, count, None, ext)?;
        Ok(self.enqueue(req))
    }

    /// Queue a flexible subarray read (`ncmpi_iget_vara`): the memory
    /// description is validated now; retrieve the bytes with
    /// [`Dataset::take_result_flexible`] after the wait call completes it.
    pub fn iget_vara_flexible(
        &mut self,
        varid: usize,
        start: &[u64],
        count: &[u64],
        bufcount: usize,
        memtype: &Datatype,
    ) -> NcmpiResult<Request> {
        self.require_data_mode()?;
        self.flexible_common(varid, count, bufcount, memtype)?;
        let req = self.lower_get(varid, start, count, None)?;
        Ok(self.enqueue(req))
    }

    /// Queue a subarray read (`ncmpi_iget_vara_<type>`); retrieve the values
    /// with [`Dataset::take_result`] after the wait call completes it.
    pub fn iget_vara(
        &mut self,
        varid: usize,
        start: &[u64],
        count: &[u64],
    ) -> NcmpiResult<Request> {
        self.enqueue_get(varid, start, count, None)
    }

    /// Queue a strided subarray read (`ncmpi_iget_vars_<type>`).
    pub fn iget_vars(
        &mut self,
        varid: usize,
        start: &[u64],
        count: &[u64],
        stride: &[u64],
    ) -> NcmpiResult<Request> {
        self.enqueue_get(varid, start, count, Some(stride))
    }

    /// Queue a single-element read (`ncmpi_iget_var1_<type>`).
    pub fn iget_var1(&mut self, varid: usize, index: &[u64]) -> NcmpiResult<Request> {
        let count = vec![1u64; index.len()];
        self.enqueue_get(varid, index, &count, None)
    }

    /// Queue a whole-variable read (`ncmpi_iget_var_<type>`).
    pub fn iget_var(&mut self, varid: usize) -> NcmpiResult<Request> {
        let (start, count) = self.whole(varid, None)?;
        self.enqueue_get(varid, &start, &count, None)
    }

    /// Number of queued, un-waited requests.
    pub fn num_pending(&self) -> usize {
        self.pending.len()
    }

    /// Retrieve (and consume) a completed get's values. A get whose flush
    /// failed yields the per-request error recorded at flush time.
    pub fn take_result<T: NcValue>(&mut self, req: Request) -> NcmpiResult<Vec<T>> {
        let (nctype, ext) = self
            .results
            .remove(&req.id())
            .ok_or_else(|| NcmpiError::NotFound(format!("completed request {req:?}")))??;
        self.comm
            .advance(self.comm.config().cpu.pack(ext.len(), 1.0));
        Ok(from_external(&ext, nctype)?)
    }

    /// Retrieve (and consume) a completed get's bytes into a flexible-API
    /// memory description.
    pub fn take_result_flexible(
        &mut self,
        req: Request,
        buf: &mut [u8],
        bufcount: usize,
        memtype: &Datatype,
    ) -> NcmpiResult<()> {
        let (nctype, ext) = self
            .results
            .remove(&req.id())
            .ok_or_else(|| NcmpiError::NotFound(format!("completed request {req:?}")))??;
        self.comm
            .advance(self.comm.config().cpu.pack(ext.len(), 1.0));
        self.comm
            .config()
            .profile
            .record_bytepath(|b| b.fused_unpack_bytes += ext.len() as u64);
        // Fused convert+scatter: one pass instead of swap-then-unpack.
        convert::unpack_from_external(&ext, buf, bufcount, memtype, nctype)?;
        Ok(())
    }

    // ---- waiting ------------------------------------------------------------

    /// Collectively complete every pending request (`ncmpi_wait_all`).
    ///
    /// All ranks must call this together (ranks with nothing pending still
    /// participate). Pending puts merge into a single collective write;
    /// pending gets merge into a single collective read — regardless of how
    /// many requests were queued.
    pub fn wait_all(&mut self) -> NcmpiResult<()> {
        self.require_collective()?;
        let reqs = std::mem::take(&mut self.pending);
        // Agree on which phases run: ranks may have queued different mixes.
        let local = [
            reqs.iter().any(|r| r.kind == AccessKind::Put) as u64,
            reqs.iter().any(|r| r.kind == AccessKind::Get) as u64,
            reqs.iter().any(|r| r.kind == AccessKind::Put && r.record) as u64,
        ];
        let global = self.comm.allreduce(ReduceOp::Max, &local)?;
        // The queue is already drained (`mem::take`) and `flush_merged`
        // records a per-request error result for every get it could not
        // serve, so even a failed flush leaves no stale requests behind.
        let flushed = self.flush_merged(&reqs, global[0] != 0, global[1] != 0, true);
        let mut flushed = self.agree(flushed);
        // Server failover: when the *agreed* outcome is a lost-but-
        // coverable server, every rank — driven by the same agreed error,
        // so at the same operation — marks it down (idempotently) and the
        // whole collective retries once in degraded mode. Puts re-issue
        // the same bytes (idempotent); gets overwrite their error results.
        if let Some(server) = agreed_server_lost(&flushed) {
            self.file.raw().mark_server_down(server);
            let retried = self.flush_merged(&reqs, global[0] != 0, global[1] != 0, true);
            flushed = self.agree(retried);
        }
        if flushed.is_ok() && global[2] != 0 {
            self.reconcile_numrecs()?;
        }
        flushed
    }

    /// Independently complete every pending request (`ncmpi_wait`).
    pub fn wait(&mut self) -> NcmpiResult<()> {
        self.require_independent()?;
        let reqs = std::mem::take(&mut self.pending);
        let do_puts = reqs.iter().any(|r| r.kind == AccessKind::Put);
        let do_gets = reqs.iter().any(|r| r.kind == AccessKind::Get);
        let flushed = self.flush_merged(&reqs, do_puts, do_gets, false);
        // Independent-mode failover: no agreement round — the shared mark
        // is idempotent, so whichever rank escalates first flips it and
        // the others find it already down.
        if let Some(server) = agreed_server_lost(&flushed) {
            self.file.raw().mark_server_down(server);
            return self.flush_merged(&reqs, do_puts, do_gets, false);
        }
        flushed
    }

    /// Merge and issue the pending queue: at most one write and one read.
    /// Writes flush first, so a get queued after a put of the same region
    /// observes the new data.
    fn flush_merged(
        &mut self,
        reqs: &[AccessReq],
        do_puts: bool,
        do_gets: bool,
        collective: bool,
    ) -> NcmpiResult<()> {
        let events = self.comm.config().events.clone();
        let tracing = events.is_enabled();
        let rank = self.comm.world_rank();
        let mut failure: Option<NcmpiError> = None;
        if do_puts {
            let (runs, staging) = merge_puts(reqs);
            if matches!(staging, std::borrow::Cow::Borrowed(_)) {
                self.comm.config().profile.record_bytepath(|b| {
                    b.copies_elided += 1;
                    b.borrowed_bytes += staging.len() as u64;
                });
            }
            // Merging N staged buffers into one is memcpy work.
            self.comm
                .advance(self.comm.config().cpu.pack(staging.len(), 1.0));
            let rid = if tracing { events.next_id() } else { 0 };
            let t0 = self.comm.now();
            let wrote = {
                let _ctx = tracing.then(|| TraceCtx::enter(rank, rid));
                if collective {
                    self.file.write_runs_at_all(&runs, &staging).map(|_| ())
                } else {
                    self.file.write_runs_at(&runs, &staging).map(|_| ())
                }
            };
            if tracing {
                let t1 = self.comm.now();
                let nputs = reqs.iter().filter(|r| r.kind == AccessKind::Put).count();
                events.record(
                    Span::new(rank, layer::CORE, "flush_put", t0.as_nanos(), t1.as_nanos())
                        .with_id(rid)
                        .with_arg("reqs", nputs as u64)
                        .with_arg("bytes", staging.len() as u64),
                );
                // One span per queued request: queue time through the merged
                // flush that carried its bytes, linked to the flush span.
                for req in reqs.iter().filter(|r| r.kind == AccessKind::Put) {
                    if req.trace_id == 0 {
                        continue;
                    }
                    events.record(
                        Span::new(
                            rank,
                            layer::CORE,
                            "iput",
                            req.queued.as_nanos(),
                            t1.as_nanos(),
                        )
                        .with_id(req.trace_id)
                        .with_parent(rid)
                        .with_arg("bytes", req.buffer.len() as u64),
                    );
                }
            }
            match wrote {
                Ok(()) => {
                    // Attribute per queued request (pre-merge sizes), so the
                    // same workload reports the same put_size via either
                    // access mode.
                    for req in reqs.iter().filter(|r| r.kind == AccessKind::Put) {
                        self.profile
                            .record(req.varid, true, true, req.buffer.len() as u64);
                    }
                }
                Err(e) => failure = Some(e.into()),
            }
        }
        if do_gets {
            if let Some(e) = failure.clone() {
                // The write flush already failed: complete every queued get
                // with that error rather than attempting the read, so the
                // drained queue reports per-request outcomes.
                for req in reqs.iter().filter(|r| r.kind == AccessKind::Get) {
                    self.results.insert(req.id.id(), Err(e.clone()));
                }
            } else {
                let cov = merge_gets(reqs);
                let rid = if tracing { events.next_id() } else { 0 };
                let t0 = self.comm.now();
                let read = {
                    let _ctx = tracing.then(|| TraceCtx::enter(rank, rid));
                    if collective {
                        self.file.read_runs_at_all(&cov)
                    } else {
                        self.file.read_runs_at(&cov)
                    }
                };
                if tracing {
                    let t1 = self.comm.now();
                    let ngets = reqs.iter().filter(|r| r.kind == AccessKind::Get).count();
                    let bytes: u64 = cov.iter().map(|r| r.1).sum();
                    events.record(
                        Span::new(rank, layer::CORE, "flush_get", t0.as_nanos(), t1.as_nanos())
                            .with_id(rid)
                            .with_arg("reqs", ngets as u64)
                            .with_arg("bytes", bytes),
                    );
                    for req in reqs.iter().filter(|r| r.kind == AccessKind::Get) {
                        if req.trace_id == 0 {
                            continue;
                        }
                        events.record(
                            Span::new(
                                rank,
                                layer::CORE,
                                "iget",
                                req.queued.as_nanos(),
                                t1.as_nanos(),
                            )
                            .with_id(req.trace_id)
                            .with_parent(rid),
                        );
                    }
                }
                match read {
                    Ok(data) => {
                        let pos = coverage_positions(&cov);
                        for req in reqs.iter().filter(|r| r.kind == AccessKind::Get) {
                            let bytes = extract_runs(&cov, &pos, &data, &req.runs);
                            self.profile
                                .record(req.varid, false, true, bytes.len() as u64);
                            self.results.insert(req.id.id(), Ok((req.nctype, bytes)));
                        }
                    }
                    Err(e) => {
                        let e: NcmpiError = e.into();
                        for req in reqs.iter().filter(|r| r.kind == AccessKind::Get) {
                            self.results.insert(req.id.id(), Err(e.clone()));
                        }
                        failure = Some(e);
                    }
                }
            }
        }
        match failure {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Stage each source buffer in order (whole buffer at one offset) and
    /// gather the merged result.
    fn merged(inserts: &[(u64, &[u8])]) -> (Vec<Run>, Vec<u8>) {
        let mut s = RunStage::default();
        for (src, &(off, bytes)) in inserts.iter().enumerate() {
            s.insert(off, bytes.len() as u64, src, 0);
        }
        let sources: Vec<&[u8]> = inserts.iter().map(|&(_, b)| b).collect();
        s.into_merged_with(&sources)
    }

    #[test]
    fn run_stage_disjoint_inserts_coalesce() {
        let (runs, data) = merged(&[(8, &[3, 4]), (0, &[1, 2]), (2, &[9, 9])]);
        assert_eq!(runs, vec![(0, 4), (8, 2)]);
        assert_eq!(data, vec![1, 2, 9, 9, 3, 4]);
    }

    #[test]
    fn run_stage_later_insert_wins_overlap() {
        // Second insert punches the middle of the first.
        let (runs, data) = merged(&[(0, &[1; 8]), (2, &[2; 4])]);
        assert_eq!(runs, vec![(0, 8)]);
        assert_eq!(data, vec![1, 1, 2, 2, 2, 2, 1, 1]);
    }

    #[test]
    fn run_stage_overlap_spanning_segments() {
        // Third insert covers the tail of the first, head of the second.
        let (runs, data) = merged(&[(0, &[1; 4]), (6, &[2; 4]), (2, &[3; 6])]);
        assert_eq!(runs, vec![(0, 10)]);
        assert_eq!(data, vec![1, 1, 3, 3, 3, 3, 3, 3, 2, 2]);
    }

    #[test]
    fn run_stage_full_cover_replaces() {
        let (runs, data) = merged(&[(4, &[1; 2]), (0, &[2; 10])]);
        assert_eq!(runs, vec![(0, 10)]);
        assert_eq!(data, vec![2; 10]);
    }

    #[test]
    fn run_stage_split_keeps_source_positions() {
        // One multi-run source overlaid in its middle: the surviving head
        // and tail pieces must still index the right bytes of the source.
        let src0: Vec<u8> = (10..20).collect();
        let src1 = vec![99u8; 4];
        let mut s = RunStage::default();
        s.insert(0, 10, 0, 0);
        s.insert(3, 4, 1, 0);
        let (runs, data) = s.into_merged_with(&[&src0, &src1]);
        assert_eq!(runs, vec![(0, 10)]);
        assert_eq!(data, vec![10, 11, 12, 99, 99, 99, 99, 17, 18, 19]);
    }

    fn put_req(runs: Vec<Run>, buffer: Vec<u8>) -> AccessReq {
        AccessReq {
            id: Request::NULL,
            varid: 0,
            kind: AccessKind::Put,
            runs,
            buffer,
            nctype: NcType::Byte,
            record: false,
            trace_id: 0,
            queued: Time::ZERO,
        }
    }

    #[test]
    fn single_put_borrows_staging() {
        let reqs = vec![put_req(vec![(0, 2), (8, 2)], vec![1, 2, 3, 4])];
        let (runs, staging) = merge_puts(&reqs);
        assert_eq!(runs, vec![(0, 2), (8, 2)]);
        assert!(
            matches!(staging, std::borrow::Cow::Borrowed(_)),
            "single coalesced put must not copy its staging buffer"
        );
        assert_eq!(&*staging, &[1, 2, 3, 4]);
    }

    #[test]
    fn multi_put_merges_last_wins() {
        let reqs = vec![
            put_req(vec![(0, 4)], vec![1; 4]),
            put_req(vec![(2, 4)], vec![2; 4]),
        ];
        let (runs, staging) = merge_puts(&reqs);
        assert_eq!(runs, vec![(0, 6)]);
        assert_eq!(&*staging, &[1, 1, 2, 2, 2, 2]);
    }

    #[test]
    fn get_coverage_merges_and_extracts() {
        let a = AccessReq {
            id: Request::NULL,
            varid: 0,
            kind: AccessKind::Get,
            runs: vec![(0, 4), (10, 2)],
            buffer: Vec::new(),
            nctype: NcType::Byte,
            record: false,
            trace_id: 0,
            queued: Time::ZERO,
        };
        let b = AccessReq {
            id: Request::NULL,
            varid: 1,
            kind: AccessKind::Get,
            runs: vec![(2, 4)],
            buffer: Vec::new(),
            nctype: NcType::Byte,
            record: false,
            trace_id: 0,
            queued: Time::ZERO,
        };
        let cov = merge_gets(&[a, b]);
        assert_eq!(cov, vec![(0, 6), (10, 2)]);
        let pos = coverage_positions(&cov);
        // Coverage bytes: offsets 0..6 then 10..12.
        let data: Vec<u8> = vec![0, 1, 2, 3, 4, 5, 10, 11];
        assert_eq!(
            extract_runs(&cov, &pos, &data, &[(0, 4), (10, 2)]),
            vec![0, 1, 2, 3, 10, 11]
        );
        assert_eq!(extract_runs(&cov, &pos, &data, &[(2, 4)]), vec![2, 3, 4, 5]);
    }
}
