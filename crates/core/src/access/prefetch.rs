//! Variable prefetching — the PnetCDF-level hint the paper describes in
//! §4.1: "given a hint indicating that only a certain small set of
//! variables were going to be read, an aggressive PnetCDF implementation
//! might initiate a nonblocking read of those variables at open time so
//! that the values were available locally at read time. For applications
//! that pull a small amount of data from a large number of separate netCDF
//! files, this type of optimization could be a big win."
//!
//! The hint is `nc_prefetch_vars`, a comma-separated list of variable
//! names. At open time the named fixed-size variables are queued as
//! nonblocking get requests and drained with **one** aggregated collective
//! read (`wait_all`) — the nonblocking machinery the paper's "aggressive
//! implementation" sketch calls for — into a per-rank cache; subsequent
//! `get` calls on them are served from local memory with no file I/O and no
//! synchronization. Any write to a cached variable, or a `redef`,
//! invalidates its cache entry.

use pnetcdf_format::layout;

use crate::dataset::Dataset;
use crate::error::NcmpiResult;

impl Dataset {
    /// Execute the `nc_prefetch_vars` hint (called from `open`). Unknown
    /// names and record variables are skipped silently — hints must never
    /// turn a valid program into a failing one.
    pub(crate) fn prefetch_from_hint(&mut self, hint: &str) -> NcmpiResult<()> {
        let names: Vec<String> = hint
            .split(',')
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .collect();
        let mut queued = Vec::new();
        for name in names {
            let Some(varid) = self.header.var_id(&name) else {
                continue;
            };
            if self.header.is_record_var(varid) {
                continue; // records grow; caching them would go stale
            }
            let count = self.header.var_shape(varid);
            let start = vec![0u64; count.len()];
            let req = self.lower_get(varid, &start, &count, None)?;
            queued.push((varid, self.enqueue(req)));
        }
        // One collective round reads every hinted variable, however many
        // the hint named. All ranks process the same hint, so all queue the
        // same requests and participate symmetrically.
        self.wait_all()?;
        for (varid, req) in queued {
            if let Some(Ok((_, ext))) = self.results.remove(&req.id()) {
                self.prefetch.insert(varid, ext);
            }
        }
        Ok(())
    }

    /// Serve a read from the prefetch cache if the variable is resident.
    /// Returns the packed external bytes of the selection, or `None`.
    pub(crate) fn cached_read(
        &self,
        varid: usize,
        start: &[u64],
        count: &[u64],
        stride: Option<&[u64]>,
    ) -> Option<Vec<u8>> {
        let cache = self.prefetch.get(&varid)?;
        let v = &self.header.vars[varid];
        // access_runs yields absolute file offsets; the cache holds the
        // variable contiguously from `begin`.
        let runs = layout::access_runs(
            &self.header,
            self.layout.recsize,
            varid,
            start,
            count,
            stride,
        );
        let mut out = Vec::with_capacity(runs.iter().map(|r| r.1 as usize).sum());
        for (off, len) in runs {
            let lo = (off - v.begin) as usize;
            out.extend_from_slice(&cache[lo..lo + len as usize]);
        }
        Some(out)
    }

    /// Drop the cache entry for `varid` (after a write to it).
    pub(crate) fn invalidate_cache(&mut self, varid: usize) {
        self.prefetch.remove(&varid);
    }

    /// Drop all cached variables (after `redef`).
    pub(crate) fn invalidate_all_caches(&mut self) {
        self.prefetch.clear();
    }

    /// Is `varid` currently served from the prefetch cache? (diagnostics)
    pub fn is_prefetched(&self, varid: usize) -> bool {
        self.prefetch.contains_key(&varid)
    }
}
