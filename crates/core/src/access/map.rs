//! `imap` gather/scatter for the mapped (`varm`) access methods.
//!
//! `imap[d]` is the distance in elements between successive indices of
//! dimension `d` in the caller's memory; the file side is always canonical
//! row-major order.

use pnetcdf_format::NcValue;

use crate::error::{NcmpiError, NcmpiResult};

/// Gather values from an `imap` layout into canonical order.
pub fn gather_by_imap<T: NcValue>(count: &[u64], imap: &[u64], vals: &[T]) -> NcmpiResult<Vec<T>> {
    if imap.len() != count.len() {
        return Err(NcmpiError::InvalidArgument(format!(
            "imap has {} entries, expected {}",
            imap.len(),
            count.len()
        )));
    }
    let nd = count.len();
    if nd == 0 {
        return Ok(vals.first().copied().into_iter().collect());
    }
    let n: u64 = count.iter().product();
    let mut out = Vec::with_capacity(n as usize);
    let mut idx = vec![0u64; nd];
    if count.contains(&0) {
        return Ok(out);
    }
    loop {
        let mem: u64 = (0..nd).map(|d| idx[d] * imap[d]).sum();
        let v = vals.get(mem as usize).copied().ok_or_else(|| {
            NcmpiError::InvalidArgument(format!("imap index {mem} outside value buffer"))
        })?;
        out.push(v);
        let mut d = nd;
        loop {
            if d == 0 {
                return Ok(out);
            }
            d -= 1;
            idx[d] += 1;
            if idx[d] < count[d] {
                break;
            }
            idx[d] = 0;
        }
    }
}

/// Scatter canonical-order values into an `imap` layout. The result buffer
/// is sized `max mapped index + 1`.
pub fn scatter_by_imap<T: NcValue + Default>(
    count: &[u64],
    imap: &[u64],
    canonical: &[T],
) -> NcmpiResult<Vec<T>> {
    if imap.len() != count.len() {
        return Err(NcmpiError::InvalidArgument(format!(
            "imap has {} entries, expected {}",
            imap.len(),
            count.len()
        )));
    }
    let nd = count.len();
    if nd == 0 {
        return Ok(canonical.to_vec());
    }
    if count.contains(&0) {
        return Ok(Vec::new());
    }
    let max_index: u64 = (0..nd).map(|d| (count[d] - 1) * imap[d]).sum();
    let mut out = vec![T::default(); (max_index + 1) as usize];
    let mut idx = vec![0u64; nd];
    let mut pos = 0usize;
    loop {
        let mem: u64 = (0..nd).map(|d| idx[d] * imap[d]).sum();
        out[mem as usize] = canonical[pos];
        pos += 1;
        let mut d = nd;
        loop {
            if d == 0 {
                return Ok(out);
            }
            d -= 1;
            idx[d] += 1;
            if idx[d] < count[d] {
                break;
            }
            idx[d] = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gather_transpose() {
        // Memory is column-major 2x3 (imap = [1, 2]); canonical is row-major.
        let mem: Vec<i32> = vec![0, 10, 1, 11, 2, 12]; // [(0,0),(1,0),(0,1),(1,1),(0,2),(1,2)]
        let canonical = gather_by_imap(&[2, 3], &[1, 2], &mem).unwrap();
        assert_eq!(canonical, vec![0, 1, 2, 10, 11, 12]);
    }

    #[test]
    fn scatter_is_inverse_of_gather() {
        let canonical: Vec<i32> = (0..6).collect();
        let mem = scatter_by_imap(&[2, 3], &[1, 2], &canonical).unwrap();
        let back = gather_by_imap(&[2, 3], &[1, 2], &mem).unwrap();
        assert_eq!(back, canonical);
    }

    #[test]
    fn identity_imap_is_noop() {
        let vals: Vec<f64> = (0..12).map(|i| i as f64).collect();
        // Row-major 3x4: imap = [4, 1].
        let canonical = gather_by_imap(&[3, 4], &[4, 1], &vals).unwrap();
        assert_eq!(canonical, vals);
    }

    #[test]
    fn bad_imap_rank_rejected() {
        assert!(gather_by_imap::<i32>(&[2, 2], &[1], &[0; 4]).is_err());
        assert!(scatter_by_imap::<i32>(&[2, 2], &[1], &[0; 4]).is_err());
    }

    #[test]
    fn out_of_bounds_imap_rejected() {
        assert!(gather_by_imap::<i32>(&[2, 2], &[10, 1], &[0; 4]).is_err());
    }

    #[test]
    fn zero_count_is_empty() {
        assert!(gather_by_imap::<i32>(&[0, 2], &[1, 1], &[])
            .unwrap()
            .is_empty());
        assert!(scatter_by_imap::<i32>(&[0, 2], &[1, 1], &[])
            .unwrap()
            .is_empty());
    }
}
