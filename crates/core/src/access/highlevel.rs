//! The high-level (typed) data access API.
//!
//! These calls mirror the original netCDF data access functions — single
//! element (`var1`), whole array (`var`), subarray (`vara`), strided
//! subarray (`vars`), mapped strided subarray (`varm`) — with the paper's
//! key change: each exists in a **collective** flavor (suffix `_all`,
//! requiring collective data mode) and an **independent** flavor (requiring
//! independent data mode entered via `begin_indep_data`).

use pnetcdf_format::types::{from_external, to_external};
use pnetcdf_format::NcValue;

use crate::access::map::{gather_by_imap, scatter_by_imap};
use crate::access::request;
use crate::dataset::Dataset;
use crate::error::{NcmpiError, NcmpiResult};

impl Dataset {
    fn put_region<T: NcValue>(
        &mut self,
        varid: usize,
        start: &[u64],
        count: &[u64],
        stride: Option<&[u64]>,
        vals: &[T],
        collective: bool,
    ) -> NcmpiResult<()> {
        if collective {
            self.require_collective()?;
        } else {
            self.require_independent()?;
        }
        // Validate and lower locally, then (in collective mode) agree on the
        // outcome *before* entering the collective execution: if any rank
        // failed validation, every rank returns that same error and nobody
        // enters the two-phase exchange alone.
        let lowered = (|| {
            self.require_writable()?;
            self.check_count(count, vals.len())?;
            let nctype = self.var_nctype(varid)?;
            let ext = to_external(vals, nctype)?;
            // Native→external conversion is real CPU work.
            self.comm
                .advance(self.comm.config().cpu.pack(ext.len(), 1.0));
            // Lower into the unified request engine and execute immediately:
            // a blocking call is a queue-depth-one flush.
            self.lower_put(varid, start, count, stride, ext)
        })();
        let req = if collective {
            self.agree(lowered)?
        } else {
            lowered?
        };
        let done = self.execute_put_now(&req, collective);
        // Execution faults can be aggregator-local (a storage fault that
        // exhausted one rank's retry budget), so agree on those too.
        let mut done = if collective { self.agree(done) } else { done };
        // Server failover: the agreed (or, independently, local) verdict
        // says a crashed server is coverable by parity — mark it down
        // (idempotent) and re-issue the same write once in degraded mode.
        if let Some(server) = request::agreed_server_lost(&done) {
            self.file.raw().mark_server_down(server);
            let retried = self.execute_put_now(&req, collective);
            done = if collective {
                self.agree(retried)
            } else {
                retried
            };
        }
        done
    }

    fn get_region<T: NcValue>(
        &mut self,
        varid: usize,
        start: &[u64],
        count: &[u64],
        stride: Option<&[u64]>,
        collective: bool,
    ) -> NcmpiResult<Vec<T>> {
        if collective {
            self.require_collective()?;
        } else {
            self.require_independent()?;
        }
        let nctype = self.var_nctype(varid)?;
        // The prefetch cache serves reads from local memory — no file I/O,
        // no synchronization (the §4.1 hint optimization). Bounds are
        // validated before the cache is consulted.
        if self.is_prefetched(varid) {
            pnetcdf_format::layout::check_access(
                &self.header,
                varid,
                start,
                count,
                stride,
                Some(self.header.numrecs),
            )?;
            let ext = self
                .cached_read(varid, start, count, stride)
                .expect("cache present");
            self.comm
                .advance(self.comm.config().cpu.pack(ext.len(), 1.0));
            return Ok(from_external(&ext, nctype)?);
        }
        // Agree on the lowering before the collective execution, then on the
        // execution outcome itself (see `put_region`).
        let lowered = self.lower_get(varid, start, count, stride);
        let req = if collective {
            self.agree(lowered)?
        } else {
            lowered?
        };
        let got = self.execute_get_now(&req, collective);
        let mut got = if collective { self.agree(got) } else { got };
        // Server failover on reads: degraded mode reconstructs the lost
        // server's chunks from surviving data + parity.
        if let Some(server) = request::agreed_server_lost(&got) {
            self.file.raw().mark_server_down(server);
            let retried = self.execute_get_now(&req, collective);
            got = if collective {
                self.agree(retried)
            } else {
                retried
            };
        }
        let ext = got?;
        self.comm
            .advance(self.comm.config().cpu.pack(ext.len(), 1.0));
        Ok(from_external(&ext, nctype)?)
    }

    // ---- vara: subarray ---------------------------------------------------

    /// Collective subarray write (`ncmpi_put_vara_<type>_all`).
    pub fn put_vara_all<T: NcValue>(
        &mut self,
        varid: usize,
        start: &[u64],
        count: &[u64],
        vals: &[T],
    ) -> NcmpiResult<()> {
        self.put_region(varid, start, count, None, vals, true)
    }

    /// Independent subarray write (`ncmpi_put_vara_<type>`).
    pub fn put_vara<T: NcValue>(
        &mut self,
        varid: usize,
        start: &[u64],
        count: &[u64],
        vals: &[T],
    ) -> NcmpiResult<()> {
        self.put_region(varid, start, count, None, vals, false)
    }

    /// Collective subarray read (`ncmpi_get_vara_<type>_all`).
    pub fn get_vara_all<T: NcValue>(
        &mut self,
        varid: usize,
        start: &[u64],
        count: &[u64],
    ) -> NcmpiResult<Vec<T>> {
        self.get_region(varid, start, count, None, true)
    }

    /// Independent subarray read (`ncmpi_get_vara_<type>`).
    pub fn get_vara<T: NcValue>(
        &mut self,
        varid: usize,
        start: &[u64],
        count: &[u64],
    ) -> NcmpiResult<Vec<T>> {
        self.get_region(varid, start, count, None, false)
    }

    // ---- vars: strided subarray ---------------------------------------------

    /// Collective strided write (`ncmpi_put_vars_<type>_all`).
    pub fn put_vars_all<T: NcValue>(
        &mut self,
        varid: usize,
        start: &[u64],
        count: &[u64],
        stride: &[u64],
        vals: &[T],
    ) -> NcmpiResult<()> {
        self.put_region(varid, start, count, Some(stride), vals, true)
    }

    /// Independent strided write.
    pub fn put_vars<T: NcValue>(
        &mut self,
        varid: usize,
        start: &[u64],
        count: &[u64],
        stride: &[u64],
        vals: &[T],
    ) -> NcmpiResult<()> {
        self.put_region(varid, start, count, Some(stride), vals, false)
    }

    /// Collective strided read (`ncmpi_get_vars_<type>_all`).
    pub fn get_vars_all<T: NcValue>(
        &mut self,
        varid: usize,
        start: &[u64],
        count: &[u64],
        stride: &[u64],
    ) -> NcmpiResult<Vec<T>> {
        self.get_region(varid, start, count, Some(stride), true)
    }

    /// Independent strided read.
    pub fn get_vars<T: NcValue>(
        &mut self,
        varid: usize,
        start: &[u64],
        count: &[u64],
        stride: &[u64],
    ) -> NcmpiResult<Vec<T>> {
        self.get_region(varid, start, count, Some(stride), false)
    }

    // ---- var1: single element -----------------------------------------------

    /// Collective single-element write.
    pub fn put_var1_all<T: NcValue>(
        &mut self,
        varid: usize,
        index: &[u64],
        val: T,
    ) -> NcmpiResult<()> {
        let count = vec![1u64; index.len()];
        self.put_region(varid, index, &count, None, &[val], true)
    }

    /// Independent single-element write (`ncmpi_put_var1_<type>`).
    pub fn put_var1<T: NcValue>(&mut self, varid: usize, index: &[u64], val: T) -> NcmpiResult<()> {
        let count = vec![1u64; index.len()];
        self.put_region(varid, index, &count, None, &[val], false)
    }

    /// Collective single-element read.
    pub fn get_var1_all<T: NcValue>(&mut self, varid: usize, index: &[u64]) -> NcmpiResult<T> {
        let count = vec![1u64; index.len()];
        Ok(self.get_region::<T>(varid, index, &count, None, true)?[0])
    }

    /// Independent single-element read.
    pub fn get_var1<T: NcValue>(&mut self, varid: usize, index: &[u64]) -> NcmpiResult<T> {
        let count = vec![1u64; index.len()];
        Ok(self.get_region::<T>(varid, index, &count, None, false)?[0])
    }

    // ---- var: whole variable ----------------------------------------------------

    /// Collective whole-variable write. For record variables, the number of
    /// records written is derived from the value count.
    pub fn put_var_all<T: NcValue>(&mut self, varid: usize, vals: &[T]) -> NcmpiResult<()> {
        let (start, count) = self.whole(varid, Some(vals.len()))?;
        self.put_region(varid, &start, &count, None, vals, true)
    }

    /// Independent whole-variable write.
    pub fn put_var<T: NcValue>(&mut self, varid: usize, vals: &[T]) -> NcmpiResult<()> {
        let (start, count) = self.whole(varid, Some(vals.len()))?;
        self.put_region(varid, &start, &count, None, vals, false)
    }

    /// Collective whole-variable read.
    pub fn get_var_all<T: NcValue>(&mut self, varid: usize) -> NcmpiResult<Vec<T>> {
        let (start, count) = self.whole(varid, None)?;
        self.get_region(varid, &start, &count, None, true)
    }

    /// Independent whole-variable read.
    pub fn get_var<T: NcValue>(&mut self, varid: usize) -> NcmpiResult<Vec<T>> {
        let (start, count) = self.whole(varid, None)?;
        self.get_region(varid, &start, &count, None, false)
    }

    pub(crate) fn whole(
        &self,
        varid: usize,
        vals_len: Option<usize>,
    ) -> NcmpiResult<(Vec<u64>, Vec<u64>)> {
        if varid >= self.header.vars.len() {
            return Err(NcmpiError::NotFound(format!("variable id {varid}")));
        }
        let mut count = self.header.var_shape(varid);
        let start = vec![0u64; count.len()];
        if let (Some(len), true) = (vals_len, self.header.is_record_var(varid)) {
            let per_rec = self.header.record_elems(varid).max(1);
            if len as u64 % per_rec != 0 {
                return Err(NcmpiError::InvalidArgument(format!(
                    "whole-variable access of {len} values is not a multiple of the \
                     {per_rec} values per record"
                )));
            }
            count[0] = len as u64 / per_rec;
        }
        Ok((start, count))
    }

    // ---- varm: mapped strided subarray ---------------------------------------------

    /// Collective mapped write (`ncmpi_put_varm_<type>_all`).
    pub fn put_varm_all<T: NcValue>(
        &mut self,
        varid: usize,
        start: &[u64],
        count: &[u64],
        stride: Option<&[u64]>,
        imap: &[u64],
        vals: &[T],
    ) -> NcmpiResult<()> {
        let canonical = gather_by_imap(count, imap, vals)?;
        self.put_region(varid, start, count, stride, &canonical, true)
    }

    /// Independent mapped write.
    pub fn put_varm<T: NcValue>(
        &mut self,
        varid: usize,
        start: &[u64],
        count: &[u64],
        stride: Option<&[u64]>,
        imap: &[u64],
        vals: &[T],
    ) -> NcmpiResult<()> {
        let canonical = gather_by_imap(count, imap, vals)?;
        self.put_region(varid, start, count, stride, &canonical, false)
    }

    /// Collective mapped read (`ncmpi_get_varm_<type>_all`).
    pub fn get_varm_all<T: NcValue + Default>(
        &mut self,
        varid: usize,
        start: &[u64],
        count: &[u64],
        stride: Option<&[u64]>,
        imap: &[u64],
    ) -> NcmpiResult<Vec<T>> {
        let canonical = self.get_region::<T>(varid, start, count, stride, true)?;
        scatter_by_imap(count, imap, &canonical)
    }

    /// Independent mapped read.
    pub fn get_varm<T: NcValue + Default>(
        &mut self,
        varid: usize,
        start: &[u64],
        count: &[u64],
        stride: Option<&[u64]>,
        imap: &[u64],
    ) -> NcmpiResult<Vec<T>> {
        let canonical = self.get_region::<T>(varid, start, count, stride, false)?;
        scatter_by_imap(count, imap, &canonical)
    }
}
