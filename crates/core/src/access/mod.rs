//! Data access functions — the "major effort of this work" (paper §4.2.2).
//!
//! Every access is translated from `(variable, start[], count[], stride[])`
//! into an MPI file view built from the variable's metadata in the cached
//! header (shape, element size, `begin`, record size), then handed to
//! MPI-IO. Collective calls (`*_all`) go through two-phase collective I/O;
//! independent calls use data sieving.
//!
//! * [`highlevel`] — the typed API mirroring serial netCDF (`put/get` ×
//!   `var1/var/vara/vars/varm`), in collective and independent flavors;
//! * [`flexible`] — the flexible API taking an MPI datatype describing
//!   (possibly noncontiguous) memory;
//! * [`map`] — `imap` gather/scatter shared by the `varm` calls;
//! * [`request`] — the unified request engine every access lowers into,
//!   including the nonblocking `iput`/`iget`/`wait_all` API.

pub mod flexible;
pub mod highlevel;
pub mod map;
pub mod prefetch;
pub mod request;

use pnetcdf_format::layout;
use pnetcdf_mpio::Run;

use crate::dataset::Dataset;
use crate::error::{NcmpiError, NcmpiResult};

impl Dataset {
    /// Validate an access and resolve it to `(absolute file byte runs,
    /// total bytes)` — the common lowering every request goes through.
    pub(crate) fn build_region(
        &self,
        varid: usize,
        start: &[u64],
        count: &[u64],
        stride: Option<&[u64]>,
        for_write: bool,
    ) -> NcmpiResult<(Vec<Run>, u64)> {
        let limit = if for_write {
            None
        } else {
            Some(self.header.numrecs)
        };
        layout::check_access(&self.header, varid, start, count, stride, limit)?;
        let runs = layout::access_runs(
            &self.header,
            self.layout.recsize,
            varid,
            start,
            count,
            stride,
        );
        let total: u64 = runs.iter().map(|r| r.1).sum();
        Ok((runs, total))
    }

    /// After a write touching a record variable, grow the local `numrecs`.
    pub(crate) fn grow_numrecs(
        &mut self,
        varid: usize,
        start: &[u64],
        count: &[u64],
        stride: Option<&[u64]>,
    ) {
        if !self.header.is_record_var(varid) || count.first().copied().unwrap_or(0) == 0 {
            return;
        }
        let step = stride.map_or(1, |s| s[0]);
        let last = start[0] + (count[0] - 1) * step;
        if last + 1 > self.header.numrecs {
            self.header.numrecs = last + 1;
        }
    }

    /// Check the element count of a typed access.
    pub(crate) fn check_count(&self, count: &[u64], vals_len: usize) -> NcmpiResult<()> {
        let n: u64 = count.iter().product();
        if n as usize != vals_len {
            return Err(NcmpiError::InvalidArgument(format!(
                "value buffer has {vals_len} elements, access selects {n}"
            )));
        }
        Ok(())
    }
}
