//! The parallel dataset object: `ncmpi_create` / `ncmpi_open` /
//! `ncmpi_enddef` / `ncmpi_redef` / `ncmpi_sync` / `ncmpi_close` and the
//! collective↔independent data-mode switch.
//!
//! Header strategy (paper §4.2.1): the header is read and written only by
//! rank 0; a copy is cached in local memory on every process. Define-mode,
//! attribute, and inquiry functions operate on the local copy — no file I/O,
//! and interprocess synchronization only at `enddef`.

use std::collections::HashMap;

use hpc_sim::{Phase, PhaseScope, Time};
use pnetcdf_format::layout::{self, Layout};
use pnetcdf_format::{Header, NcType, Version};
use pnetcdf_mpi::{Comm, Datatype, Info, ReduceOp, RequestTable};
use pnetcdf_mpio::{MpiFile, OpenMode};
use pnetcdf_pfs::Pfs;

use crate::access::request::AccessReq;
use crate::consistency;
use crate::error::{NcmpiError, NcmpiResult};
use crate::profile::DatasetProfile;

/// Dataset mode. Data mode starts collective; `begin_indep_data` switches
/// to independent (paper §4.1: "the split of data mode into two distinct
/// modes: collective and noncollective").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DataMode {
    Define,
    Collective,
    Independent,
}

/// A parallel netCDF dataset handle (one per rank).
pub struct Dataset {
    pub(crate) comm: Comm,
    pub(crate) file: MpiFile,
    pub(crate) header: Header,
    pub(crate) layout: Layout,
    pub(crate) mode: DataMode,
    pub(crate) writable: bool,
    /// Alignment of the data section (the `nc_header_align_size` hint).
    pub(crate) align: u64,
    /// Whole-variable read cache filled by the `nc_prefetch_vars` hint
    /// (paper §4.1), keyed by variable id; external byte order.
    pub(crate) prefetch: HashMap<usize, Vec<u8>>,
    /// Fill mode (`ncmpi_set_fill`); default NOFILL like real PnetCDF.
    pub(crate) fill_mode: bool,
    pre_redef: Option<(Header, Layout)>,
    /// Queued nonblocking requests, drained by `wait`/`wait_all`.
    pub(crate) pending: Vec<AccessReq>,
    /// Ticket issuer for nonblocking requests.
    pub(crate) req_table: RequestTable,
    /// Completed get results awaiting `take_result`, keyed by ticket id.
    /// A flush failure completes its gets with the (agreed) error, so the
    /// queue is always fully drained — a later `wait_all` never sees stale
    /// requests.
    pub(crate) results: HashMap<u64, NcmpiResult<(NcType, Vec<u8>)>>,
    /// Per-variable access counters for this rank (`ncmpi_inq_put_size`
    /// and friends); rolled up across ranks at `close`.
    pub(crate) profile: DatasetProfile,
    /// The PFS path, kept to key the close-time trace roll-up.
    pub(crate) path: String,
}

impl Dataset {
    /// Collectively create a dataset (`ncmpi_create`). The dataset starts
    /// in define mode.
    pub fn create(
        comm: &Comm,
        pfs: &Pfs,
        path: &str,
        version: Version,
        info: &Info,
    ) -> NcmpiResult<Dataset> {
        let file = MpiFile::open(comm, pfs, path, OpenMode::Create, info)?;
        Ok(Dataset {
            comm: comm.clone(),
            file,
            header: Header::new(version),
            layout: Layout {
                data_start: 0,
                record_start: 0,
                recsize: 0,
            },
            mode: DataMode::Define,
            writable: true,
            align: info
                .get_usize("nc_header_align_size")
                .map(|v| v as u64)
                .unwrap_or(4),
            prefetch: HashMap::new(),
            fill_mode: false,
            pre_redef: None,
            pending: Vec::new(),
            req_table: RequestTable::new(),
            results: HashMap::new(),
            profile: DatasetProfile::default(),
            path: path.to_string(),
        })
    }

    /// Collectively open an existing dataset (`ncmpi_open`): rank 0 reads
    /// the header and broadcasts it; every rank caches a local copy.
    pub fn open(
        comm: &Comm,
        pfs: &Pfs,
        path: &str,
        readonly: bool,
        info: &Info,
    ) -> NcmpiResult<Dataset> {
        let mode = if readonly {
            OpenMode::ReadOnly
        } else {
            OpenMode::ReadWrite
        };
        let file = MpiFile::open(comm, pfs, path, mode, info)?;
        // Rank 0 fetches the header bytes; everyone else receives them. The
        // header length is not known up front, so read a small chunk and
        // grow geometrically until it decodes (real netCDF does the same).
        let header_bytes = if comm.rank() == 0 {
            // Header fetches are metadata work, not data-path disk reads.
            let _meta = PhaseScope::enter(Phase::Metadata);
            let mut probe = 8192u64;
            let buf = loop {
                let take = probe.min(file.size()).max(32) as usize;
                let mut buf = vec![0u8; take];
                let mem = Datatype::contiguous(take, Datatype::byte());
                file.read_at(0, &mut buf, 1, &mem)?;
                match Header::decode(&buf) {
                    Ok(_) => break buf,
                    Err(pnetcdf_format::FormatError::Corrupt(_)) if probe < file.size() => {
                        probe *= 4;
                    }
                    Err(e) => return Err(e.into()),
                }
            };
            comm.bcast_bytes(0, buf)?
        } else {
            comm.bcast_bytes(0, Vec::new())?
        };
        let (mut header, _) = Header::decode(&header_bytes)?;
        // Re-derive the layout from the on-disk begins rather than trusting
        // our own alignment policy: use the first variable's begin as the
        // data alignment evidence.
        let align = info
            .get_usize("nc_header_align_size")
            .map(|v| v as u64)
            .unwrap_or(4);
        let on_disk_begins: Vec<u64> = header.vars.iter().map(|v| v.begin).collect();
        let layout = layout::compute(&mut header, align)?;
        for (v, &disk_begin) in header.vars.iter().zip(&on_disk_begins) {
            if v.begin != disk_begin {
                return Err(NcmpiError::InvalidArgument(format!(
                    "variable '{}': on-disk begin {disk_begin} does not match computed {}; \
                     the file was written with a different alignment",
                    v.name, v.begin
                )));
            }
        }
        let mut ds = Dataset {
            comm: comm.clone(),
            file,
            header,
            layout,
            mode: DataMode::Collective,
            writable: !readonly,
            align,
            prefetch: HashMap::new(),
            fill_mode: false,
            pre_redef: None,
            pending: Vec::new(),
            req_table: RequestTable::new(),
            results: HashMap::new(),
            profile: DatasetProfile::default(),
            path: path.to_string(),
        };
        // PnetCDF-level hint: prefetch named variables at open time.
        if let Some(hint) = info.get("nc_prefetch_vars") {
            ds.prefetch_from_hint(hint)?;
        }
        Ok(ds)
    }

    // ---- mode checks -------------------------------------------------------

    pub(crate) fn require_define(&self) -> NcmpiResult<()> {
        if self.mode != DataMode::Define {
            return Err(NcmpiError::NotInDefineMode);
        }
        Ok(())
    }

    pub(crate) fn require_collective(&self) -> NcmpiResult<()> {
        match self.mode {
            DataMode::Collective => Ok(()),
            DataMode::Define => Err(NcmpiError::InDefineMode),
            DataMode::Independent => Err(NcmpiError::WrongDataMode("collective")),
        }
    }

    pub(crate) fn require_independent(&self) -> NcmpiResult<()> {
        match self.mode {
            DataMode::Independent => Ok(()),
            DataMode::Define => Err(NcmpiError::InDefineMode),
            DataMode::Collective => Err(NcmpiError::WrongDataMode("independent")),
        }
    }

    pub(crate) fn require_writable(&self) -> NcmpiResult<()> {
        if !self.writable {
            return Err(NcmpiError::ReadOnly);
        }
        Ok(())
    }

    /// Current data mode.
    pub fn mode(&self) -> DataMode {
        self.mode
    }

    /// The communicator this dataset was opened on.
    pub fn comm(&self) -> &Comm {
        &self.comm
    }

    // ---- define mode end / re-entry ---------------------------------------------

    /// Collectively leave define mode (`ncmpi_enddef`): verify all ranks
    /// built identical headers, compute the layout, and have rank 0 write
    /// the header.
    pub fn enddef(&mut self) -> NcmpiResult<()> {
        self.require_define()?;
        self.require_writable()?;
        let old = self.pre_redef.take();
        let old_names: Option<Vec<String>> = old
            .as_ref()
            .map(|(h, _)| h.vars.iter().map(|v| v.name.clone()).collect());
        self.layout = layout::compute(&mut self.header, self.align)?;
        let header_bytes = self.header.encode();
        consistency::check_same_header(&self.comm, &header_bytes)?;

        // Relocate existing data if a redefinition moved the layout. Each
        // variable is moved by one rank, in parallel (paper §4.3: "moving
        // the existing data to the extended area is performed in parallel").
        if let Some((old_header, old_layout)) = old {
            self.relocate(&old_header, old_layout)?;
        }

        // Rank 0 writes the header (plus alignment padding).
        if self.comm.rank() == 0 {
            let _meta = PhaseScope::enter(Phase::Metadata);
            let mut padded = header_bytes;
            padded.resize(self.layout.data_start as usize, 0);
            let mem = Datatype::contiguous(padded.len(), Datatype::byte());
            self.file
                .set_view_local(0, &Datatype::byte(), &Datatype::byte())?;
            self.file.write_at(0, &padded, 1, &mem)?;
        }
        self.comm.barrier()?;
        self.mode = DataMode::Collective;
        // Fill mode: prefill variables that did not exist before this
        // define pass (all of them on first enddef).
        if self.fill_mode {
            let new_vars: Vec<usize> = match &old_names {
                Some(names) => (0..self.header.vars.len())
                    .filter(|&v| !names.contains(&self.header.vars[v].name))
                    .collect(),
                None => (0..self.header.vars.len()).collect(),
            };
            self.prefill_fixed_vars(&new_vars)?;
        }
        // Leaving define mode: publish the header, relocation and prefill
        // bytes so data-mode reads on any rank observe the new layout.
        self.file.cache_boundary()?;
        Ok(())
    }

    fn relocate(&mut self, old_header: &Header, old_layout: Layout) -> NcmpiResult<()> {
        self.header.numrecs = old_header.numrecs;
        let nprocs = self.comm.size();
        self.file
            .set_view_local(0, &Datatype::byte(), &Datatype::byte())?;
        for (old_id, ov) in old_header.vars.iter().enumerate() {
            let Some(new_id) = self.header.var_id(&ov.name) else {
                continue;
            };
            if old_id % nprocs != self.comm.rank() {
                continue;
            }
            let nv = &self.header.vars[new_id];
            if old_header.is_record_var(old_id) {
                let per = ov.vsize as usize;
                let mut rec = vec![0u8; per];
                let mem = Datatype::contiguous(per, Datatype::byte());
                for r in 0..old_header.numrecs {
                    self.file
                        .read_at(ov.begin + r * old_layout.recsize, &mut rec, 1, &mem)?;
                    self.file
                        .write_at(nv.begin + r * self.layout.recsize, &rec, 1, &mem)?;
                }
            } else {
                let mut data = vec![0u8; ov.vsize as usize];
                let mem = Datatype::contiguous(data.len(), Datatype::byte());
                self.file.read_at(ov.begin, &mut data, 1, &mem)?;
                self.file.write_at(nv.begin, &data, 1, &mem)?;
            }
        }
        self.comm.barrier()?;
        Ok(())
    }

    /// Error if nonblocking requests are still queued: mode transitions and
    /// metadata flushes while accesses are in flight are undefined in real
    /// PnetCDF, so they are rejected here.
    pub(crate) fn require_no_pending(&self, what: &str) -> NcmpiResult<()> {
        if !self.pending.is_empty() {
            let mut vars: Vec<usize> = self.pending.iter().map(|r| r.varid).collect();
            vars.dedup();
            return Err(NcmpiError::InvalidArgument(format!(
                "cannot {what} with {} pending nonblocking request(s) on variable \
                 ids {vars:?}; call wait_all (or wait) first",
                self.pending.len()
            )));
        }
        Ok(())
    }

    /// Collectively re-enter define mode (`ncmpi_redef`).
    pub fn redef(&mut self) -> NcmpiResult<()> {
        if self.mode == DataMode::Define {
            return Err(NcmpiError::InDefineMode);
        }
        self.require_writable()?;
        self.require_no_pending("re-enter define mode")?;
        self.comm.barrier()?;
        // Entering define mode is a netCDF sync point: publish cached dirty
        // pages and revalidate, so relocation reads see every rank's data.
        // (No-op when the page cache is disabled.)
        self.file.cache_boundary()?;
        self.invalidate_all_caches();
        self.pre_redef = Some((self.header.clone(), self.layout));
        self.mode = DataMode::Define;
        Ok(())
    }

    // ---- numrecs reconciliation -----------------------------------------------

    /// Collectively agree on `numrecs` (max across ranks) and update the
    /// local headers. Called inside collective record writes and `sync`.
    pub(crate) fn reconcile_numrecs(&mut self) -> NcmpiResult<()> {
        let max = self
            .comm
            .allreduce_scalar(ReduceOp::Max, self.header.numrecs)?;
        self.header.numrecs = max;
        Ok(())
    }

    /// Collectively flush metadata (`ncmpi_sync`): reconcile `numrecs` and
    /// have rank 0 rewrite it.
    pub fn sync(&mut self) -> NcmpiResult<()> {
        if self.mode == DataMode::Define {
            return Err(NcmpiError::InDefineMode);
        }
        self.require_no_pending("sync")?;
        self.reconcile_numrecs()?;
        if self.writable && self.comm.rank() == 0 {
            let _meta = PhaseScope::enter(Phase::Metadata);
            let nr = (self.header.numrecs.min(u32::MAX as u64 - 1)) as u32;
            let mem = Datatype::contiguous(4, Datatype::byte());
            self.file
                .set_view_local(0, &Datatype::byte(), &Datatype::byte())?;
            self.file.write_at(4, &nr.to_be_bytes(), 1, &mem)?;
        }
        self.file.sync()?;
        Ok(())
    }

    /// Collectively close the dataset (`ncmpi_close`). Pending nonblocking
    /// requests are flushed first (as `ncmpi_close` does).
    pub fn close(mut self) -> NcmpiResult<()> {
        if self.mode == DataMode::Define {
            if self.writable {
                self.enddef()?;
            } else {
                return Err(NcmpiError::InDefineMode);
            }
        } else if !self.pending.is_empty() {
            match self.mode {
                DataMode::Collective => self.wait_all()?,
                DataMode::Independent => self.wait()?,
                DataMode::Define => unreachable!("requests cannot be queued in define mode"),
            }
        }
        self.sync()?;
        self.rollup_profile()?;
        Ok(())
    }

    // ---- access profiling ---------------------------------------------------------

    /// This rank's per-variable access counters.
    pub fn profile(&self) -> &DatasetProfile {
        &self.profile
    }

    /// Bytes this rank has written to the dataset so far
    /// (`ncmpi_inq_put_size`).
    pub fn inq_put_size(&self) -> u64 {
        self.profile.put_size()
    }

    /// Bytes this rank has read from the dataset so far
    /// (`ncmpi_inq_get_size`).
    pub fn inq_get_size(&self) -> u64 {
        self.profile.get_size()
    }

    /// This rank's access counters as a report fragment, with variables
    /// labelled by name.
    pub fn inq_profile(&self) -> hpc_sim::trace::Json {
        let names: Vec<String> = self.header.vars.iter().map(|v| v.name.clone()).collect();
        self.profile.to_json(&names)
    }

    /// Collective: sum the per-rank dataset profiles and attach the global
    /// roll-up to the shared trace profile (rank 0 only), keyed by the
    /// dataset path. A no-op while tracing is disabled, so `close` costs
    /// nothing extra in the common case.
    fn rollup_profile(&mut self) -> NcmpiResult<()> {
        let trace = self.comm.config().profile.clone();
        if !trace.is_enabled() {
            return Ok(());
        }
        let flat = self.profile.flatten(self.header.vars.len());
        let sum = self.comm.allreduce(ReduceOp::Sum, &flat)?;
        if self.comm.rank() == 0 {
            let global = DatasetProfile::unflatten(&sum);
            let names: Vec<String> = self.header.vars.iter().map(|v| v.name.clone()).collect();
            trace.attach_extra(&format!("dataset:{}", self.path), global.to_json(&names));
        }
        Ok(())
    }

    // ---- data-mode switch ---------------------------------------------------------

    /// Collectively enter independent data mode (`ncmpi_begin_indep_data`).
    pub fn begin_indep_data(&mut self) -> NcmpiResult<()> {
        self.require_collective()?;
        self.require_no_pending("switch to independent data mode")?;
        self.file.sync()?;
        self.mode = DataMode::Independent;
        Ok(())
    }

    /// Collectively leave independent data mode (`ncmpi_end_indep_data`).
    pub fn end_indep_data(&mut self) -> NcmpiResult<()> {
        self.require_independent()?;
        self.require_no_pending("return to collective data mode")?;
        // Local record counts may have diverged during independent writes,
        // and another rank's independent write may have invalidated data
        // this rank still holds in its prefetch cache.
        self.mode = DataMode::Collective;
        self.invalidate_all_caches();
        self.reconcile_numrecs()?;
        self.file.sync()?;
        Ok(())
    }

    /// Virtual time of this rank (for benchmarks).
    pub fn now(&self) -> Time {
        self.comm.now()
    }
}
