//! Collective error agreement.
//!
//! A collective data access can fail for reasons only one rank can see —
//! an out-of-bounds region on that rank, a validation failure, a storage
//! fault that exhausted its retry budget. If the failing rank simply
//! returned early, the surviving ranks would enter the collective alone
//! and hang. Instead, every collective read/write agrees on one outcome:
//! each rank contributes its local result (encoded), the ranks pick the
//! **maximum-severity** error (ties broken by lowest rank), and every rank
//! — including the one whose local call succeeded — returns the *same*
//! reconstructed [`NcmpiError`]. No hangs, no divergent returns.
//!
//! The winner is reconstructed *from the encoding on every rank*, the
//! originator included, so lossy encodings still yield bit-identical
//! errors everywhere.

use pnetcdf_format::FormatError;
use pnetcdf_mpi::MpiError;
use pnetcdf_mpio::MpioError;

use crate::error::NcmpiError;

/// Severity ranking used by the max-reduction: higher loses less
/// information when it wins. Infrastructure failures outrank storage
/// exhaustion, which outranks format/argument trouble, which outranks
/// mode bookkeeping.
pub(crate) fn severity(e: &NcmpiError) -> u8 {
    match e {
        NcmpiError::NotInDefineMode
        | NcmpiError::InDefineMode
        | NcmpiError::WrongDataMode(_)
        | NcmpiError::ReadOnly => 1,
        NcmpiError::NotFound(_) => 2,
        NcmpiError::InvalidArgument(_) => 3,
        NcmpiError::InconsistentDefinitions => 4,
        NcmpiError::Format(_) => 5,
        NcmpiError::Mpio(MpioError::Access(_))
        | NcmpiError::Mpio(MpioError::InvalidArgument(_)) => 6,
        NcmpiError::Mpio(MpioError::Exhausted { .. }) => 7,
        // A lost server outranks plain exhaustion: if any rank saw a
        // failover-eligible crash, the whole collective should escalate
        // to the degraded-mode retry rather than give up.
        NcmpiError::Mpio(MpioError::ServerLost { .. }) => 8,
        NcmpiError::Mpio(MpioError::Mpi(_)) | NcmpiError::Mpi(_) => 9,
    }
}

// Wire tags. The payload layout is:
//   [severity u8][tag u8][extra u32 BE][message utf8...]
// An `Ok` outcome is the empty payload.
const T_NOT_IN_DEFINE: u8 = 0;
const T_IN_DEFINE: u8 = 1;
const T_WRONG_MODE_COLL: u8 = 2;
const T_WRONG_MODE_INDEP: u8 = 3;
const T_READ_ONLY: u8 = 4;
const T_NOT_FOUND: u8 = 5;
const T_INVALID_ARG: u8 = 6;
const T_INCONSISTENT: u8 = 7;
const T_FORMAT: u8 = 8;
const T_MPIO_ACCESS: u8 = 9;
const T_MPIO_INVALID: u8 = 10;
const T_MPIO_EXHAUSTED: u8 = 11;
const T_MPI_POISONED: u8 = 12;
const T_MPI_OTHER: u8 = 13;
const T_MPIO_SERVER_LOST: u8 = 14;

/// Encode a local error for the agreement exchange.
pub(crate) fn encode(e: &NcmpiError) -> Vec<u8> {
    let (tag, extra, msg): (u8, u32, String) = match e {
        NcmpiError::NotInDefineMode => (T_NOT_IN_DEFINE, 0, String::new()),
        NcmpiError::InDefineMode => (T_IN_DEFINE, 0, String::new()),
        NcmpiError::WrongDataMode("independent") => (T_WRONG_MODE_INDEP, 0, String::new()),
        NcmpiError::WrongDataMode(_) => (T_WRONG_MODE_COLL, 0, String::new()),
        NcmpiError::ReadOnly => (T_READ_ONLY, 0, String::new()),
        NcmpiError::NotFound(m) => (T_NOT_FOUND, 0, m.clone()),
        NcmpiError::InvalidArgument(m) => (T_INVALID_ARG, 0, m.clone()),
        NcmpiError::InconsistentDefinitions => (T_INCONSISTENT, 0, String::new()),
        NcmpiError::Format(fe) => (T_FORMAT, 0, fe.to_string()),
        NcmpiError::Mpio(MpioError::Access(m)) => (T_MPIO_ACCESS, 0, m.clone()),
        NcmpiError::Mpio(MpioError::InvalidArgument(m)) => (T_MPIO_INVALID, 0, m.clone()),
        NcmpiError::Mpio(MpioError::Exhausted { attempts, message }) => {
            (T_MPIO_EXHAUSTED, *attempts, message.clone())
        }
        NcmpiError::Mpio(MpioError::ServerLost { server, message }) => {
            (T_MPIO_SERVER_LOST, *server as u32, message.clone())
        }
        NcmpiError::Mpi(MpiError::Poisoned)
        | NcmpiError::Mpio(MpioError::Mpi(MpiError::Poisoned)) => {
            (T_MPI_POISONED, 0, String::new())
        }
        NcmpiError::Mpi(me) => (T_MPI_OTHER, 0, me.to_string()),
        NcmpiError::Mpio(MpioError::Mpi(me)) => (T_MPI_OTHER, 0, me.to_string()),
    };
    let mut out = Vec::with_capacity(6 + msg.len());
    out.push(severity(e));
    out.push(tag);
    out.extend_from_slice(&extra.to_be_bytes());
    out.extend_from_slice(msg.as_bytes());
    out
}

/// Decode an agreement payload back into an error. Total: a malformed
/// payload (which would indicate a bug, not data corruption) decodes to an
/// `InvalidArgument` rather than panicking.
pub(crate) fn decode(bytes: &[u8]) -> NcmpiError {
    if bytes.len() < 6 {
        return NcmpiError::InvalidArgument("corrupt error-agreement payload".into());
    }
    let tag = bytes[1];
    let extra = u32::from_be_bytes(bytes[2..6].try_into().unwrap());
    let msg = String::from_utf8_lossy(&bytes[6..]).into_owned();
    match tag {
        T_NOT_IN_DEFINE => NcmpiError::NotInDefineMode,
        T_IN_DEFINE => NcmpiError::InDefineMode,
        T_WRONG_MODE_COLL => NcmpiError::WrongDataMode("collective"),
        T_WRONG_MODE_INDEP => NcmpiError::WrongDataMode("independent"),
        T_READ_ONLY => NcmpiError::ReadOnly,
        T_NOT_FOUND => NcmpiError::NotFound(msg),
        T_INVALID_ARG => NcmpiError::InvalidArgument(msg),
        T_INCONSISTENT => NcmpiError::InconsistentDefinitions,
        T_FORMAT => NcmpiError::Format(FormatError::Corrupt(msg)),
        T_MPIO_ACCESS => NcmpiError::Mpio(MpioError::Access(msg)),
        T_MPIO_INVALID => NcmpiError::Mpio(MpioError::InvalidArgument(msg)),
        T_MPIO_EXHAUSTED => NcmpiError::Mpio(MpioError::Exhausted {
            attempts: extra,
            message: msg,
        }),
        T_MPIO_SERVER_LOST => NcmpiError::Mpio(MpioError::ServerLost {
            server: extra as usize,
            message: msg,
        }),
        T_MPI_POISONED => NcmpiError::Mpi(MpiError::Poisoned),
        _ => NcmpiError::Mpi(MpiError::CollectiveMismatch(msg)),
    }
}

/// Pick the agreed error from the gathered payloads: the maximum severity,
/// ties broken by the lowest rank. `None` when every rank reported success.
pub(crate) fn pick(all: &[Vec<u8>]) -> Option<NcmpiError> {
    let mut best: Option<(u8, &Vec<u8>)> = None;
    for payload in all {
        if payload.is_empty() {
            continue;
        }
        let sev = payload[0];
        if best.map(|(s, _)| sev > s).unwrap_or(true) {
            best = Some((sev, payload));
        }
    }
    best.map(|(_, payload)| decode(payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(e: NcmpiError) {
        let back = decode(&encode(&e));
        assert_eq!(back, e, "agreement encoding must round-trip {e:?}");
    }

    #[test]
    fn exact_roundtrips() {
        roundtrip(NcmpiError::NotInDefineMode);
        roundtrip(NcmpiError::InDefineMode);
        roundtrip(NcmpiError::WrongDataMode("collective"));
        roundtrip(NcmpiError::WrongDataMode("independent"));
        roundtrip(NcmpiError::ReadOnly);
        roundtrip(NcmpiError::NotFound("variable id 7".into()));
        roundtrip(NcmpiError::InvalidArgument("start beyond shape".into()));
        roundtrip(NcmpiError::InconsistentDefinitions);
        roundtrip(NcmpiError::Mpio(MpioError::Access("no such file".into())));
        roundtrip(NcmpiError::Mpio(MpioError::Exhausted {
            attempts: 12,
            message: "write of 42 bytes".into(),
        }));
        roundtrip(NcmpiError::Mpio(MpioError::ServerLost {
            server: 3,
            message: "write of 42 bytes".into(),
        }));
        roundtrip(NcmpiError::Mpi(MpiError::Poisoned));
    }

    #[test]
    fn decode_is_deterministic_for_lossy_variants() {
        // Format errors reconstruct as Corrupt with the display text: every
        // rank decodes the same bytes, so the agreed value is identical
        // everywhere even though the variant collapsed.
        let e = NcmpiError::Format(FormatError::BadMagic);
        let d1 = decode(&encode(&e));
        let d2 = decode(&encode(&e));
        assert_eq!(d1, d2);
        assert!(matches!(d1, NcmpiError::Format(FormatError::Corrupt(_))));
    }

    #[test]
    fn pick_prefers_severity_then_lowest_rank() {
        let ok = Vec::new();
        let arg = encode(&NcmpiError::InvalidArgument("rank 1 bad".into()));
        let arg2 = encode(&NcmpiError::InvalidArgument("rank 2 bad".into()));
        let exhausted = encode(&NcmpiError::Mpio(MpioError::Exhausted {
            attempts: 3,
            message: "dead server".into(),
        }));
        // All success → no agreed error.
        assert!(pick(&[ok.clone(), ok.clone()]).is_none());
        // Highest severity wins regardless of rank position.
        let got = pick(&[ok.clone(), arg.clone(), exhausted.clone()]).unwrap();
        assert!(matches!(got, NcmpiError::Mpio(MpioError::Exhausted { .. })));
        // A failover-eligible lost server outranks exhaustion, so one
        // escalating rank carries the whole collective into failover.
        let lost = encode(&NcmpiError::Mpio(MpioError::ServerLost {
            server: 2,
            message: "crashed".into(),
        }));
        let got = pick(&[exhausted.clone(), lost]).unwrap();
        assert_eq!(
            got,
            NcmpiError::Mpio(MpioError::ServerLost {
                server: 2,
                message: "crashed".into(),
            })
        );
        // Equal severity: lowest rank wins.
        let got = pick(&[ok, arg, arg2]).unwrap();
        assert_eq!(got, NcmpiError::InvalidArgument("rank 1 bad".into()));
    }

    #[test]
    fn malformed_payload_decodes_cleanly() {
        assert!(matches!(decode(&[1, 2]), NcmpiError::InvalidArgument(_)));
    }
}
