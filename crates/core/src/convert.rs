//! Byte-level conversion between native and external representations for
//! the flexible API.
//!
//! The flexible (`*_flexible`) calls describe memory with an MPI datatype,
//! so the library sees raw native bytes rather than a typed slice. When the
//! memory elements have the same width as the variable's external type, the
//! conversion is a per-element byte swap (XDR is big-endian; the host is
//! little-endian).

use pnetcdf_format::NcType;

/// Swap native-endian element bytes to big-endian external order.
pub fn native_to_external(bytes: &[u8], t: NcType) -> Vec<u8> {
    swap(bytes, t.size() as usize)
}

/// Swap big-endian external element bytes to native order.
pub fn external_to_native(bytes: &[u8], t: NcType) -> Vec<u8> {
    swap(bytes, t.size() as usize)
}

#[cfg(target_endian = "little")]
fn swap(bytes: &[u8], width: usize) -> Vec<u8> {
    assert!(
        bytes.len() % width == 0,
        "buffer length {} is not a multiple of element width {width}",
        bytes.len()
    );
    let mut out = Vec::with_capacity(bytes.len());
    for chunk in bytes.chunks_exact(width) {
        out.extend(chunk.iter().rev());
    }
    out
}

#[cfg(target_endian = "big")]
fn swap(bytes: &[u8], _width: usize) -> Vec<u8> {
    bytes.to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_swap_roundtrip() {
        let native = 0x01020304i32.to_ne_bytes().to_vec();
        let ext = native_to_external(&native, NcType::Int);
        assert_eq!(ext, vec![1, 2, 3, 4]);
        assert_eq!(external_to_native(&ext, NcType::Int), native);
    }

    #[test]
    fn double_swap_roundtrip() {
        let native = 1.5f64.to_ne_bytes().to_vec();
        let ext = native_to_external(&native, NcType::Double);
        assert_eq!(ext, 1.5f64.to_be_bytes().to_vec());
        assert_eq!(external_to_native(&ext, NcType::Double), native);
    }

    #[test]
    fn byte_types_are_identity() {
        let b = vec![1u8, 2, 3];
        assert_eq!(native_to_external(&b, NcType::Byte), b);
        assert_eq!(native_to_external(&b, NcType::Char), b);
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn misaligned_buffer_panics() {
        let _ = native_to_external(&[1, 2, 3], NcType::Int);
    }
}
