//! Byte-level conversion between native and external representations for
//! the flexible API.
//!
//! The flexible (`*_flexible`) calls describe memory with an MPI datatype,
//! so the library sees raw native bytes rather than a typed slice. When the
//! memory elements have the same width as the variable's external type, the
//! conversion is an endianness swap (XDR is big-endian) performed by the
//! chunked kernels in [`pnetcdf_format::swap`]. The fused entry points
//! ([`pack_to_external`] / [`unpack_from_external`]) run the
//! datatype gather/scatter and the swap as a single pass, so each byte is
//! touched once between the user buffer and the staging buffer instead of
//! being copied and then swapped.

use pnetcdf_format::swap;
use pnetcdf_format::NcType;
use pnetcdf_mpi::pack::{pack_with, unpack_with};
use pnetcdf_mpi::{Datatype, MpiResult};

/// Swap native-endian element bytes to big-endian external order.
pub fn native_to_external(bytes: &[u8], t: NcType) -> Vec<u8> {
    let width = t.size() as usize;
    assert!(
        bytes.len() % width == 0,
        "buffer length {} is not a multiple of element width {width}",
        bytes.len()
    );
    swap::swap_to_vec(bytes, width)
}

/// Swap big-endian external element bytes to native order.
pub fn external_to_native(bytes: &[u8], t: NcType) -> Vec<u8> {
    let width = t.size() as usize;
    assert!(
        bytes.len() % width == 0,
        "buffer length {} is not a multiple of element width {width}",
        bytes.len()
    );
    swap::swap_to_vec(bytes, width)
}

/// Gather `count` instances of `memtype` from `buf` and convert to the
/// big-endian external order of `t` in one fused pass (pack + swap, one
/// byte touch), replacing the old pack-then-`native_to_external` pair.
pub fn pack_to_external(
    buf: &[u8],
    count: usize,
    memtype: &Datatype,
    t: NcType,
) -> MpiResult<Vec<u8>> {
    let width = t.size() as usize;
    pack_with(buf, count, memtype, width, |src, dst| {
        swap::swap_copy(src, dst, width)
    })
}

/// Convert big-endian external `data` to native order and scatter it into
/// `count` instances of `memtype` inside `buf` in one fused pass
/// (swap + unpack), replacing the old `external_to_native`-then-unpack
/// pair. Returns the bytes consumed from `data`.
pub fn unpack_from_external(
    data: &[u8],
    buf: &mut [u8],
    count: usize,
    memtype: &Datatype,
    t: NcType,
) -> MpiResult<usize> {
    let width = t.size() as usize;
    unpack_with(data, buf, count, memtype, width, |src, dst| {
        swap::swap_copy(src, dst, width)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_swap_roundtrip() {
        let native = 0x01020304i32.to_ne_bytes().to_vec();
        let ext = native_to_external(&native, NcType::Int);
        assert_eq!(ext, vec![1, 2, 3, 4]);
        assert_eq!(external_to_native(&ext, NcType::Int), native);
    }

    #[test]
    fn double_swap_roundtrip() {
        let native = 1.5f64.to_ne_bytes().to_vec();
        let ext = native_to_external(&native, NcType::Double);
        assert_eq!(ext, 1.5f64.to_be_bytes().to_vec());
        assert_eq!(external_to_native(&ext, NcType::Double), native);
    }

    #[test]
    fn byte_types_are_identity() {
        let b = vec![1u8, 2, 3];
        assert_eq!(native_to_external(&b, NcType::Byte), b);
        assert_eq!(native_to_external(&b, NcType::Char), b);
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn misaligned_buffer_panics() {
        let _ = native_to_external(&[1, 2, 3], NcType::Int);
    }

    #[test]
    fn fused_pack_matches_staged_path() {
        let vals = [0x01020304i32, -7, 0x7fff_0001];
        let mut native = Vec::new();
        for v in vals {
            native.extend_from_slice(&v.to_ne_bytes());
        }
        // Noncontiguous memory: every other element of a 6-int buffer.
        let mut buf = vec![0u8; 24];
        for (i, v) in vals.iter().enumerate() {
            buf[i * 8..i * 8 + 4].copy_from_slice(&v.to_ne_bytes());
        }
        let memtype = Datatype::vector(3, 4, 8, Datatype::byte());

        let fused = pack_to_external(&buf, 1, &memtype, NcType::Int).unwrap();
        let staged = native_to_external(
            &pnetcdf_mpi::pack::pack(&buf, 1, &memtype).unwrap(),
            NcType::Int,
        );
        assert_eq!(fused, staged);

        // And back: fused scatter restores the original buffer.
        let mut back = vec![0u8; 24];
        let used = unpack_from_external(&fused, &mut back, 1, &memtype, NcType::Int).unwrap();
        assert_eq!(used, 12);
        assert_eq!(back, buf);
    }
}
