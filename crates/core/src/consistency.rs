//! Cross-rank consistency checking.
//!
//! All define-mode functions are collective and "require all processes in
//! the communicator to provide the same arguments" (paper §4.2.1). Rather
//! than comparing every argument of every call, the implementation verifies
//! at `enddef` time that all ranks assembled bit-identical headers, by
//! comparing a 64-bit FNV-1a hash collectively.

use crate::error::{NcmpiError, NcmpiResult};
use pnetcdf_mpi::Comm;

/// FNV-1a over a byte string.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Verify every rank computed the same header bytes.
pub fn check_same_header(comm: &Comm, header_bytes: &[u8]) -> NcmpiResult<()> {
    let mine = fnv1a(header_bytes);
    let all = comm.allgather_scalar::<u64>(mine)?;
    if all.iter().any(|&h| h != mine) {
        return Err(NcmpiError::InconsistentDefinitions);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_is_stable_and_discriminating() {
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
        assert_ne!(fnv1a(b"abc"), fnv1a(b"abd"));
        assert_eq!(fnv1a(b"header"), fnv1a(b"header"));
    }
}
