//! Define-mode and attribute functions (`ncmpi_def_dim`, `ncmpi_def_var`,
//! `ncmpi_put_att_*`).
//!
//! These are collective in the standard's sense — all ranks must call them
//! with the same arguments — but operate purely on the local header copy,
//! so they involve no communication (consistency is verified collectively
//! at `enddef`).

use pnetcdf_format::{AttrValue, NcType};

use crate::dataset::Dataset;
use crate::error::NcmpiResult;

impl Dataset {
    /// Define a dimension (`ncmpi_def_dim`); length 0 defines the unlimited
    /// dimension. Returns the dimension id.
    pub fn def_dim(&mut self, name: &str, len: u64) -> NcmpiResult<usize> {
        self.require_define()?;
        self.require_writable()?;
        Ok(self.header.add_dim(name, len)?)
    }

    /// Define a variable (`ncmpi_def_var`). Returns the variable id.
    pub fn def_var(&mut self, name: &str, nctype: NcType, dimids: &[usize]) -> NcmpiResult<usize> {
        self.require_define()?;
        self.require_writable()?;
        Ok(self.header.add_var(name, nctype, dimids)?)
    }

    /// Add or replace a global attribute (`ncmpi_put_att`).
    pub fn put_gatt(&mut self, name: &str, value: AttrValue) -> NcmpiResult<()> {
        self.require_define()?;
        self.require_writable()?;
        Ok(self.header.put_gatt(name, value)?)
    }

    /// Add or replace a variable attribute.
    pub fn put_vatt(&mut self, varid: usize, name: &str, value: AttrValue) -> NcmpiResult<()> {
        self.require_define()?;
        self.require_writable()?;
        Ok(self.header.put_vatt(varid, name, value)?)
    }

    /// Convenience: text attribute on the dataset.
    pub fn put_gatt_text(&mut self, name: &str, text: &str) -> NcmpiResult<()> {
        self.put_gatt(name, AttrValue::Char(text.to_string()))
    }

    /// Convenience: text attribute on a variable.
    pub fn put_vatt_text(&mut self, varid: usize, name: &str, text: &str) -> NcmpiResult<()> {
        self.put_vatt(varid, name, AttrValue::Char(text.to_string()))
    }
}
