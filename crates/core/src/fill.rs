//! Fill mode (`ncmpi_set_fill`, `ncmpi_fill_var_rec`).
//!
//! Serial netCDF prefills variables with type-specific fill values
//! (`NC_FILL_*`, or a variable's `_FillValue` attribute) so unwritten cells
//! read deterministically. PnetCDF defaults to NOFILL — prefilling costs a
//! full write of every variable — but provides `ncmpi_set_fill` to opt in
//! at define time (new fixed variables are prefilled collectively at
//! `enddef`) and `ncmpi_fill_var_rec` to prefill one record of a record
//! variable before partial writes land in it.

use pnetcdf_format::types::{default_fill_f64, fill_element_bytes};
use pnetcdf_format::AttrValue;
use pnetcdf_mpi::Datatype;

use crate::dataset::Dataset;
use crate::error::{NcmpiError, NcmpiResult};

/// Chunk size for streaming fill writes (bounds memory).
const FILL_CHUNK: u64 = 4 << 20;

impl Dataset {
    /// Switch fill mode on or off (`ncmpi_set_fill`); define mode only.
    /// Returns the previous setting. The default is NOFILL, as in PnetCDF.
    pub fn set_fill(&mut self, fill: bool) -> NcmpiResult<bool> {
        self.require_define()?;
        self.require_writable()?;
        Ok(std::mem::replace(&mut self.fill_mode, fill))
    }

    /// Current fill mode.
    pub fn fill_mode(&self) -> bool {
        self.fill_mode
    }

    /// The fill value for `varid`: its `_FillValue` attribute if present,
    /// else the type default.
    pub(crate) fn fill_value_of(&self, varid: usize) -> f64 {
        let v = &self.header.vars[varid];
        let from_attr = v.atts.iter().find(|a| a.name == "_FillValue").map(|a| {
            match &a.value {
                AttrValue::Byte(x) => x.first().map(|&b| b as f64),
                AttrValue::Char(s) => s.bytes().next().map(|b| b as f64),
                AttrValue::Short(x) => x.first().map(|&s| s as f64),
                AttrValue::Int(x) => x.first().map(|&i| i as f64),
                AttrValue::Float(x) => x.first().map(|&f| f as f64),
                AttrValue::Double(x) => x.first().copied(),
            }
            .unwrap_or_else(|| default_fill_f64(v.nctype))
        });
        from_attr.unwrap_or_else(|| default_fill_f64(v.nctype))
    }

    /// Collectively write the fill pattern into byte range
    /// `[lo, lo+len)` of the file, the range pre-partitioned across ranks.
    fn fill_range(&mut self, varid: usize, lo: u64, len: u64) -> NcmpiResult<()> {
        let elem = fill_element_bytes(self.header.vars[varid].nctype, self.fill_value_of(varid));
        let esize = elem.len() as u64;
        let nelems = len / esize;
        let n = self.comm.size() as u64;
        let r = self.comm.rank() as u64;
        // Element-aligned slabs per rank.
        let per = nelems.div_ceil(n);
        let my_first = (r * per).min(nelems);
        let my_count = per.min(nelems - my_first);
        let my_lo = lo + my_first * esize;
        let my_bytes = my_count * esize;

        // Stream the pattern in bounded chunks; every rank makes the same
        // number of collective calls (padding with empty writes) so the
        // collective semantics hold even with uneven slabs.
        let rounds = ((per * esize).div_ceil(FILL_CHUNK)).max(1);
        let mut written = 0u64;
        for _ in 0..rounds {
            let take = (my_bytes - written).min(FILL_CHUNK);
            let mut buf = Vec::with_capacity(take as usize);
            while (buf.len() as u64) < take {
                buf.extend_from_slice(&elem);
            }
            buf.truncate(take as usize);
            let ft = Datatype::hindexed(
                vec![((my_lo + written) as i64, take as usize)],
                Datatype::byte(),
            );
            self.file.set_view_local(0, &Datatype::byte(), &ft)?;
            let mem = Datatype::contiguous(buf.len(), Datatype::byte());
            self.file.write_at_all(0, &buf, 1, &mem)?;
            written += take;
        }
        Ok(())
    }

    /// Prefill the given (fixed-size) variables; called from `enddef` when
    /// fill mode is on.
    pub(crate) fn prefill_fixed_vars(&mut self, varids: &[usize]) -> NcmpiResult<()> {
        for &v in varids {
            if self.header.is_record_var(v) {
                continue; // records are filled on demand via fill_var_rec
            }
            let lo = self.header.vars[v].begin;
            let bytes = self.header.record_elems(v) * self.header.vars[v].nctype.size();
            self.fill_range(v, lo, bytes)?;
        }
        Ok(())
    }

    /// Collectively prefill record `recno` of record variable `varid`
    /// (`ncmpi_fill_var_rec`), growing `numrecs` to cover it.
    pub fn fill_var_rec(&mut self, varid: usize, recno: u64) -> NcmpiResult<()> {
        self.require_collective()?;
        self.require_writable()?;
        if varid >= self.header.vars.len() {
            return Err(NcmpiError::NotFound(format!("variable id {varid}")));
        }
        if !self.header.is_record_var(varid) {
            return Err(NcmpiError::InvalidArgument(format!(
                "variable '{}' is not a record variable",
                self.header.vars[varid].name
            )));
        }
        let v = &self.header.vars[varid];
        let lo = v.begin + recno * self.layout.recsize;
        let bytes = self.header.record_elems(varid) * v.nctype.size();
        self.fill_range(varid, lo, bytes)?;
        if recno + 1 > self.header.numrecs {
            self.header.numrecs = recno + 1;
        }
        self.invalidate_cache(varid);
        self.reconcile_numrecs()?;
        Ok(())
    }
}
