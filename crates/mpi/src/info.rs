//! `MPI_Info` — the key/value hint object.
//!
//! PnetCDF passes an `Info` through `ncmpi_create`/`ncmpi_open` to carry both
//! netCDF-level hints and standard MPI-IO hints (`cb_buffer_size`,
//! `cb_nodes`, `ind_rd_buffer_size`, ...). Keys are case-sensitive strings,
//! matching the MPI-2 standard; unrecognized keys are ignored by consumers.

use std::collections::BTreeMap;

/// An ordered key/value hint dictionary (`MPI_Info`).
///
/// `BTreeMap` keeps iteration deterministic, which keeps virtual-time results
/// reproducible when hints are dumped or merged.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Info {
    kv: BTreeMap<String, String>,
}

impl Info {
    /// An empty info object (`MPI_INFO_NULL` behaves like this).
    pub fn new() -> Info {
        Info::default()
    }

    /// Set `key` to `value`, replacing any previous value.
    pub fn set(&mut self, key: &str, value: &str) -> &mut Self {
        self.kv.insert(key.to_string(), value.to_string());
        self
    }

    /// Builder-style `set`.
    pub fn with(mut self, key: &str, value: &str) -> Self {
        self.set(key, value);
        self
    }

    /// Look up `key`.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.kv.get(key).map(String::as_str)
    }

    /// Look up `key` and parse it as an integer (common for MPI-IO hints).
    /// Returns `None` if missing or unparseable.
    pub fn get_usize(&self, key: &str) -> Option<usize> {
        self.get(key)?.trim().parse().ok()
    }

    /// Look up a boolean hint ("true"/"false"/"enable"/"disable").
    pub fn get_bool(&self, key: &str) -> Option<bool> {
        match self.get(key)?.trim() {
            "true" | "enable" | "yes" | "1" => Some(true),
            "false" | "disable" | "no" | "0" => Some(false),
            _ => None,
        }
    }

    /// Remove `key`.
    pub fn delete(&mut self, key: &str) -> bool {
        self.kv.remove(key).is_some()
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.kv.len()
    }

    /// True if no hints are set.
    pub fn is_empty(&self) -> bool {
        self.kv.is_empty()
    }

    /// Iterate over `(key, value)` pairs in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.kv.iter().map(|(k, v)| (k.as_str(), v.as_str()))
    }

    /// Merge `other` into `self` (other's values win on conflict).
    pub fn merge(&mut self, other: &Info) {
        for (k, v) in other.iter() {
            self.set(k, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_delete() {
        let mut info = Info::new();
        assert!(info.is_empty());
        info.set("cb_buffer_size", "4194304");
        info.set("romio_cb_write", "enable");
        assert_eq!(info.get("cb_buffer_size"), Some("4194304"));
        assert_eq!(info.get_usize("cb_buffer_size"), Some(4194304));
        assert_eq!(info.get_bool("romio_cb_write"), Some(true));
        assert_eq!(info.len(), 2);
        assert!(info.delete("cb_buffer_size"));
        assert!(!info.delete("cb_buffer_size"));
        assert_eq!(info.get("cb_buffer_size"), None);
    }

    #[test]
    fn unparseable_numeric_hint_is_none() {
        let info = Info::new().with("cb_nodes", "many");
        assert_eq!(info.get_usize("cb_nodes"), None);
        assert_eq!(info.get_bool("cb_nodes"), None);
    }

    #[test]
    fn merge_overwrites() {
        let mut a = Info::new().with("k", "1").with("only_a", "x");
        let b = Info::new().with("k", "2");
        a.merge(&b);
        assert_eq!(a.get("k"), Some("2"));
        assert_eq!(a.get("only_a"), Some("x"));
    }

    #[test]
    fn iteration_is_ordered() {
        let info = Info::new().with("b", "2").with("a", "1");
        let keys: Vec<&str> = info.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec!["a", "b"]);
    }
}
