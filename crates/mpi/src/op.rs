//! Reduction operations and byte-representable scalars.
//!
//! Collectives move raw bytes between ranks; typed wrappers convert scalars
//! and slices to and from native-endian bytes through [`Scalar`]. Reductions
//! (`MPI_SUM`, `MPI_MIN`, `MPI_MAX`, ...) fold over the gathered
//! contributions with [`ReduceOp`].

/// A fixed-size scalar that can cross the (in-process) wire as bytes.
pub trait Scalar: Copy + PartialEq + std::fmt::Debug + Send + Sync + 'static {
    /// Encoded width in bytes.
    const WIDTH: usize;
    /// Append this value's native-endian bytes.
    fn write_bytes(&self, out: &mut Vec<u8>);
    /// Decode from exactly `WIDTH` bytes.
    fn from_bytes(b: &[u8]) -> Self;
}

macro_rules! impl_scalar {
    ($($t:ty),*) => {$(
        impl Scalar for $t {
            const WIDTH: usize = std::mem::size_of::<$t>();
            fn write_bytes(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_ne_bytes());
            }
            fn from_bytes(b: &[u8]) -> Self {
                <$t>::from_ne_bytes(b.try_into().expect("scalar width"))
            }
        }
    )*};
}

impl_scalar!(u8, i8, u16, i16, u32, i32, u64, i64, f32, f64, usize);

/// Encode a slice of scalars.
pub fn to_bytes<T: Scalar>(vals: &[T]) -> Vec<u8> {
    let mut out = Vec::with_capacity(vals.len() * T::WIDTH);
    for v in vals {
        v.write_bytes(&mut out);
    }
    out
}

/// Decode a byte buffer into scalars. Panics if `b.len()` is not a multiple
/// of the scalar width (that is always a library bug, not user error).
pub fn from_bytes<T: Scalar>(b: &[u8]) -> Vec<T> {
    assert!(
        b.len() % T::WIDTH == 0,
        "byte length {} not a multiple of scalar width {}",
        b.len(),
        T::WIDTH
    );
    b.chunks_exact(T::WIDTH).map(T::from_bytes).collect()
}

/// The predefined MPI reduction operations we need.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReduceOp {
    Sum,
    Min,
    Max,
    /// Logical AND over integer zero/nonzero (used for consistency checks).
    Land,
    /// Logical OR.
    Lor,
}

/// Element types that support the predefined reductions.
pub trait Reducible: Scalar {
    fn reduce(op: ReduceOp, a: Self, b: Self) -> Self;
}

macro_rules! impl_reducible_int {
    ($($t:ty),*) => {$(
        impl Reducible for $t {
            fn reduce(op: ReduceOp, a: Self, b: Self) -> Self {
                match op {
                    ReduceOp::Sum => a.wrapping_add(b),
                    ReduceOp::Min => a.min(b),
                    ReduceOp::Max => a.max(b),
                    ReduceOp::Land => ((a != 0) && (b != 0)) as $t,
                    ReduceOp::Lor => ((a != 0) || (b != 0)) as $t,
                }
            }
        }
    )*};
}

impl_reducible_int!(u8, i8, u16, i16, u32, i32, u64, i64, usize);

macro_rules! impl_reducible_float {
    ($($t:ty),*) => {$(
        impl Reducible for $t {
            fn reduce(op: ReduceOp, a: Self, b: Self) -> Self {
                match op {
                    ReduceOp::Sum => a + b,
                    ReduceOp::Min => a.min(b),
                    ReduceOp::Max => a.max(b),
                    ReduceOp::Land => (((a != 0.0) && (b != 0.0)) as u8) as $t,
                    ReduceOp::Lor => (((a != 0.0) || (b != 0.0)) as u8) as $t,
                }
            }
        }
    )*};
}

impl_reducible_float!(f32, f64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        let v: Vec<i64> = vec![-1, 0, 42, i64::MAX];
        assert_eq!(from_bytes::<i64>(&to_bytes(&v)), v);
        let f: Vec<f64> = vec![0.5, -3.25];
        assert_eq!(from_bytes::<f64>(&to_bytes(&f)), f);
        let u: Vec<usize> = vec![7, 8];
        assert_eq!(from_bytes::<usize>(&to_bytes(&u)), u);
    }

    #[test]
    fn reductions() {
        assert_eq!(i64::reduce(ReduceOp::Sum, 3, 4), 7);
        assert_eq!(i64::reduce(ReduceOp::Min, 3, -4), -4);
        assert_eq!(u64::reduce(ReduceOp::Max, 3, 4), 4);
        assert_eq!(u8::reduce(ReduceOp::Land, 1, 0), 0);
        assert_eq!(u8::reduce(ReduceOp::Lor, 1, 0), 1);
        assert_eq!(f64::reduce(ReduceOp::Sum, 0.5, 0.25), 0.75);
        assert_eq!(f64::reduce(ReduceOp::Max, 0.5, 0.25), 0.5);
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn from_bytes_bad_width_panics() {
        let _ = from_bytes::<u32>(&[1, 2, 3]);
    }
}
