//! Point-to-point messaging: per-rank mailboxes with tag matching.
//!
//! Each world rank owns a mailbox. `send` deposits an envelope into the
//! destination's mailbox (an eager-protocol model: the sender does not
//! block); `recv` searches the mailbox for the first envelope matching
//! `(communicator, source, tag)` and blocks until one arrives. Matching
//! follows MPI's non-overtaking rule: among matching envelopes, the earliest
//! deposited wins.

use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;

use hpc_sim::Time;

use crate::error::{MpiError, MpiResult};

/// Wildcard source (`MPI_ANY_SOURCE`).
pub const ANY_SOURCE: i32 = -1;
/// Wildcard tag (`MPI_ANY_TAG`).
pub const ANY_TAG: i32 = -1;

/// Delivery metadata returned by `recv` (`MPI_Status`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Status {
    /// Group rank of the sender within the receiving communicator.
    pub source: usize,
    /// Message tag.
    pub tag: i32,
    /// Payload length in bytes.
    pub len: usize,
}

pub(crate) struct Envelope {
    /// Sender's rank *within the communicator* the message was sent on.
    pub src_group_rank: usize,
    pub tag: i32,
    /// Identifies the communicator (its collective-context id).
    pub comm_id: u64,
    pub data: Vec<u8>,
    /// Virtual time at which the message is available at the receiver.
    pub arrival: Time,
}

/// One rank's incoming message queue.
#[derive(Default)]
pub(crate) struct Mailbox {
    q: Mutex<VecDeque<Envelope>>,
    cv: Condvar,
}

impl Mailbox {
    pub fn new() -> Mailbox {
        Mailbox::default()
    }

    /// Deposit a message and wake any waiting receiver.
    pub fn deposit(&self, env: Envelope) {
        self.q.lock().push_back(env);
        self.cv.notify_all();
    }

    /// Wake all waiters so they can observe a poisoned world.
    pub fn poison_notify(&self) {
        self.cv.notify_all();
    }

    /// Blocking matched receive. `src` / `tag` may be the `ANY_*` wildcards.
    /// `poisoned` is checked on every wakeup.
    pub fn recv(
        &self,
        comm_id: u64,
        src: i32,
        tag: i32,
        poisoned: &std::sync::atomic::AtomicBool,
    ) -> MpiResult<Envelope> {
        let mut q = self.q.lock();
        loop {
            if poisoned.load(std::sync::atomic::Ordering::SeqCst) {
                return Err(MpiError::Poisoned);
            }
            let found = q.iter().position(|e| {
                e.comm_id == comm_id
                    && (src == ANY_SOURCE || e.src_group_rank == src as usize)
                    && (tag == ANY_TAG || e.tag == tag)
            });
            if let Some(i) = found {
                return Ok(q.remove(i).expect("index valid"));
            }
            self.cv.wait(&mut q);
        }
    }

    /// Nonblocking probe: is a matching message available?
    pub fn probe(&self, comm_id: u64, src: i32, tag: i32) -> Option<Status> {
        let q = self.q.lock();
        q.iter()
            .find(|e| {
                e.comm_id == comm_id
                    && (src == ANY_SOURCE || e.src_group_rank == src as usize)
                    && (tag == ANY_TAG || e.tag == tag)
            })
            .map(|e| Status {
                source: e.src_group_rank,
                tag: e.tag,
                len: e.data.len(),
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    fn env(src: usize, tag: i32, comm: u64, data: Vec<u8>) -> Envelope {
        Envelope {
            src_group_rank: src,
            tag,
            comm_id: comm,
            data,
            arrival: Time::ZERO,
        }
    }

    #[test]
    fn matching_respects_comm_src_tag() {
        let mb = Mailbox::new();
        let poisoned = AtomicBool::new(false);
        mb.deposit(env(1, 7, 0, vec![1]));
        mb.deposit(env(2, 7, 0, vec![2]));
        mb.deposit(env(1, 9, 1, vec![3]));

        let got = mb.recv(0, 2, 7, &poisoned).unwrap();
        assert_eq!(got.data, vec![2]);
        let got = mb.recv(1, ANY_SOURCE, ANY_TAG, &poisoned).unwrap();
        assert_eq!(got.data, vec![3]);
        let got = mb.recv(0, ANY_SOURCE, 7, &poisoned).unwrap();
        assert_eq!(got.data, vec![1]);
    }

    #[test]
    fn non_overtaking_order() {
        let mb = Mailbox::new();
        let poisoned = AtomicBool::new(false);
        mb.deposit(env(0, 5, 0, vec![10]));
        mb.deposit(env(0, 5, 0, vec![11]));
        assert_eq!(mb.recv(0, 0, 5, &poisoned).unwrap().data, vec![10]);
        assert_eq!(mb.recv(0, 0, 5, &poisoned).unwrap().data, vec![11]);
    }

    #[test]
    fn probe_does_not_consume() {
        let mb = Mailbox::new();
        mb.deposit(env(3, 2, 0, vec![1, 2, 3]));
        let st = mb.probe(0, ANY_SOURCE, ANY_TAG).unwrap();
        assert_eq!(st.source, 3);
        assert_eq!(st.tag, 2);
        assert_eq!(st.len, 3);
        assert!(mb.probe(0, ANY_SOURCE, ANY_TAG).is_some());
        assert!(mb.probe(9, ANY_SOURCE, ANY_TAG).is_none());
    }

    #[test]
    fn poisoned_recv_errors() {
        let mb = Mailbox::new();
        let poisoned = AtomicBool::new(true);
        assert!(matches!(
            mb.recv(0, ANY_SOURCE, ANY_TAG, &poisoned),
            Err(MpiError::Poisoned)
        ));
    }
}
