//! Datatype flattening: typemap → offset/length segment list.
//!
//! ROMIO-style MPI-IO implementations "flatten" a derived datatype into a
//! list of `(byte offset, byte length)` segments; everything downstream
//! (file views, data sieving, two-phase I/O) operates on these lists. We
//! coalesce adjacent segments during emission, so a subarray whose fastest
//! dimension is fully selected flattens to one segment per row-group rather
//! than one per element.

use crate::datatype::Datatype;

/// One contiguous run of bytes: `offset` relative to the datatype origin.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Segment {
    /// Byte offset (may be negative for types with a negative lower bound).
    pub offset: i64,
    /// Length in bytes; always nonzero in a flattened list.
    pub len: u64,
}

impl Segment {
    /// Exclusive end offset.
    pub fn end(&self) -> i64 {
        self.offset + self.len as i64
    }
}

/// Accumulates segments, merging runs that touch.
#[derive(Default)]
pub struct Coalescer {
    out: Vec<Segment>,
}

impl Coalescer {
    /// New empty coalescer.
    pub fn new() -> Coalescer {
        Coalescer::default()
    }

    /// Append a run, merging with the previous one when adjacent.
    pub fn push(&mut self, offset: i64, len: u64) {
        if len == 0 {
            return;
        }
        if let Some(last) = self.out.last_mut() {
            if last.end() == offset {
                last.len += len;
                return;
            }
        }
        self.out.push(Segment { offset, len });
    }

    /// Finish, returning the segment list in emission order.
    pub fn finish(self) -> Vec<Segment> {
        self.out
    }
}

/// Flatten one instance of `dtype` into coalesced segments, in typemap order.
pub fn flatten(dtype: &Datatype) -> Vec<Segment> {
    let mut c = Coalescer::new();
    emit(dtype, 0, &mut c);
    c.finish()
}

/// Flatten `count` repeated instances (each shifted by the type's extent).
pub fn flatten_n(dtype: &Datatype, count: usize) -> Vec<Segment> {
    let mut c = Coalescer::new();
    let ext = dtype.extent() as i64;
    for r in 0..count {
        emit(dtype, r as i64 * ext, &mut c);
    }
    c.finish()
}

/// Total data bytes in a segment list.
pub fn total_len(segs: &[Segment]) -> u64 {
    segs.iter().map(|s| s.len).sum()
}

fn emit(dtype: &Datatype, base: i64, c: &mut Coalescer) {
    match dtype {
        Datatype::Base(b) => c.push(base, b.size() as u64),
        Datatype::Contiguous { count, inner } => {
            if inner.is_contiguous() {
                c.push(base + inner.lb(), *count as u64 * inner.size());
            } else {
                let e = inner.extent() as i64;
                for i in 0..*count {
                    emit(inner, base + i as i64 * e, c);
                }
            }
        }
        Datatype::Vector {
            count,
            blocklen,
            stride,
            inner,
        } => {
            let e = inner.extent() as i64;
            emit_strided(inner, base, *count, *blocklen, *stride * e, e, c);
        }
        Datatype::Hvector {
            count,
            blocklen,
            stride_bytes,
            inner,
        } => {
            let e = inner.extent() as i64;
            emit_strided(inner, base, *count, *blocklen, *stride_bytes, e, c);
        }
        Datatype::Indexed { blocks, inner } => {
            let e = inner.extent() as i64;
            for &(d, l) in blocks {
                emit_block(inner, base + d * e, l, e, c);
            }
        }
        Datatype::Hindexed { blocks, inner } => {
            let e = inner.extent() as i64;
            for &(d, l) in blocks {
                emit_block(inner, base + d, l, e, c);
            }
        }
        Datatype::Struct { fields } => {
            for (off, count, t) in fields {
                let e = t.extent() as i64;
                for i in 0..*count {
                    emit(t, base + off + i as i64 * e, c);
                }
            }
        }
        Datatype::Subarray {
            sizes,
            subsizes,
            starts,
            inner,
        } => {
            emit_subarray(sizes, subsizes, starts, inner, base, c);
        }
        Datatype::Resized { inner, .. } => emit(inner, base, c),
    }
}

fn emit_block(inner: &Datatype, base: i64, len: usize, inner_extent: i64, c: &mut Coalescer) {
    if inner.is_contiguous() {
        c.push(base + inner.lb(), len as u64 * inner.size());
    } else {
        for j in 0..len {
            emit(inner, base + j as i64 * inner_extent, c);
        }
    }
}

fn emit_strided(
    inner: &Datatype,
    base: i64,
    count: usize,
    blocklen: usize,
    stride_bytes: i64,
    inner_extent: i64,
    c: &mut Coalescer,
) {
    for i in 0..count {
        emit_block(
            inner,
            base + i as i64 * stride_bytes,
            blocklen,
            inner_extent,
            c,
        );
    }
}

fn emit_subarray(
    sizes: &[u64],
    subsizes: &[u64],
    starts: &[u64],
    inner: &Datatype,
    base: i64,
    c: &mut Coalescer,
) {
    let ndims = sizes.len();
    if ndims == 0 {
        emit(inner, base, c);
        return;
    }
    if subsizes.contains(&0) {
        return;
    }
    let esize = inner.extent() as i64;

    // Row-major strides of the *full* array, in elements.
    let mut strides = vec![1i64; ndims];
    for d in (0..ndims.saturating_sub(1)).rev() {
        strides[d] = strides[d + 1] * sizes[d + 1] as i64;
    }

    // How many trailing dims are fully selected (they form one contiguous
    // run together with the innermost partial dim).
    let contiguous_inner = inner.is_contiguous();
    let mut run_elems = subsizes[ndims - 1] as i64;
    let mut outer_dims = ndims - 1;
    if contiguous_inner {
        while outer_dims > 0 && subsizes[outer_dims] == sizes[outer_dims] && starts[outer_dims] == 0
        {
            run_elems *= subsizes[outer_dims - 1] as i64;
            outer_dims -= 1;
        }
        if outer_dims == 0 {
            // entire selection is one run
            let off: i64 = (0..ndims).map(|d| starts[d] as i64 * strides[d]).sum();
            c.push(
                base + off * esize + inner.lb(),
                run_elems as u64 * inner.size(),
            );
            return;
        }
        // When the loop stops, dim `outer_dims` is the innermost *looped*
        // dim... but run_elems currently aggregates dims (outer_dims..ndims)
        // only if those were full. The innermost looped run is
        // subsizes[outer_dims] collapsed with all full dims below it.
    } else {
        run_elems = 1;
        outer_dims = ndims;
    }

    // Iterate over the outer (non-collapsed) dims with an odometer.
    let mut idx = vec![0u64; outer_dims];
    loop {
        // Compute element offset of this run's start.
        let mut off: i64 = 0;
        for d in 0..outer_dims {
            off += (starts[d] + idx[d]) as i64 * strides[d];
        }
        for d in outer_dims..ndims {
            off += starts[d] as i64 * strides[d];
        }
        if contiguous_inner {
            c.push(
                base + off * esize + inner.lb(),
                run_elems as u64 * inner.size(),
            );
        } else {
            // Element-by-element for noncontiguous inner types.
            emit_noncontig_run(inner, base + off * esize, run_elems as usize, esize, c);
        }

        // Odometer increment over outer dims (row-major: last varies fastest).
        let mut d = outer_dims;
        loop {
            if d == 0 {
                return;
            }
            d -= 1;
            idx[d] += 1;
            if idx[d] < subsizes[d] {
                break;
            }
            idx[d] = 0;
        }
    }
}

fn emit_noncontig_run(inner: &Datatype, base: i64, n: usize, esize: i64, c: &mut Coalescer) {
    for j in 0..n {
        emit(inner, base + j as i64 * esize, c);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datatype::Datatype;

    fn segs(d: &Datatype) -> Vec<(i64, u64)> {
        flatten(d).into_iter().map(|s| (s.offset, s.len)).collect()
    }

    #[test]
    fn base_and_contiguous() {
        assert_eq!(segs(&Datatype::double()), vec![(0, 8)]);
        assert_eq!(
            segs(&Datatype::contiguous(3, Datatype::int())),
            vec![(0, 12)]
        );
    }

    #[test]
    fn vector_flattens_to_blocks() {
        let t = Datatype::vector(3, 2, 4, Datatype::int());
        assert_eq!(segs(&t), vec![(0, 8), (16, 8), (32, 8)]);
    }

    #[test]
    fn vector_with_stride_equal_blocklen_coalesces() {
        let t = Datatype::vector(3, 4, 4, Datatype::int());
        assert_eq!(segs(&t), vec![(0, 48)]);
    }

    #[test]
    fn indexed_blocks() {
        let t = Datatype::indexed(vec![(0, 1), (2, 2)], Datatype::int());
        assert_eq!(segs(&t), vec![(0, 4), (8, 8)]);
    }

    #[test]
    fn hindexed_blocks_in_bytes() {
        let t = Datatype::hindexed(
            vec![(0, 1), (6, 1)],
            Datatype::Base(crate::datatype::BaseType::I16),
        );
        assert_eq!(segs(&t), vec![(0, 2), (6, 2)]);
    }

    #[test]
    fn struct_fields() {
        let t = Datatype::structure(vec![(0, 1, Datatype::int()), (8, 2, Datatype::double())]);
        assert_eq!(segs(&t), vec![(0, 4), (8, 16)]);
    }

    #[test]
    fn subarray_2d_interior() {
        // 4x4 array of bytes, 2x2 subarray at (1,1):
        // rows 1..3, cols 1..3 -> offsets 5..7 and 9..11.
        let t = Datatype::subarray(&[4, 4], &[2, 2], &[1, 1], Datatype::byte()).unwrap();
        assert_eq!(segs(&t), vec![(5, 2), (9, 2)]);
    }

    #[test]
    fn subarray_full_rows_collapse() {
        // 4x4, select rows 1..3 fully: one run of 8 bytes at offset 4.
        let t = Datatype::subarray(&[4, 4], &[2, 4], &[1, 0], Datatype::byte()).unwrap();
        assert_eq!(segs(&t), vec![(4, 8)]);
    }

    #[test]
    fn subarray_whole_array_is_one_run() {
        let t = Datatype::subarray(&[3, 5], &[3, 5], &[0, 0], Datatype::int()).unwrap();
        assert_eq!(segs(&t), vec![(0, 60)]);
    }

    #[test]
    fn subarray_3d_partition_x() {
        // 2x2x4 array, select all z,y but x in 2..4 (an "X partition").
        let t = Datatype::subarray(&[2, 2, 4], &[2, 2, 2], &[0, 0, 2], Datatype::byte()).unwrap();
        assert_eq!(segs(&t), vec![(2, 2), (6, 2), (10, 2), (14, 2)]);
    }

    #[test]
    fn subarray_zero_subsize_is_empty() {
        let t = Datatype::subarray(&[4, 4], &[0, 2], &[0, 0], Datatype::byte()).unwrap();
        assert!(flatten(&t).is_empty());
    }

    #[test]
    fn flatten_n_tiles_by_extent() {
        let t = Datatype::vector(2, 1, 2, Datatype::byte());
        // One instance: (0,1), (2,1); extent = 3. Instance 2 starts at 3, so
        // its first byte coalesces with the previous instance's last run.
        assert_eq!(
            flatten_n(&t, 2)
                .iter()
                .map(|s| (s.offset, s.len))
                .collect::<Vec<_>>(),
            vec![(0, 1), (2, 2), (5, 1)]
        );
    }

    #[test]
    fn flatten_n_contiguous_coalesces_across_instances() {
        let t = Datatype::contiguous(2, Datatype::byte());
        assert_eq!(
            flatten_n(&t, 3)
                .iter()
                .map(|s| (s.offset, s.len))
                .collect::<Vec<_>>(),
            vec![(0, 6)]
        );
    }

    #[test]
    fn total_len_matches_size() {
        let t = Datatype::subarray(&[8, 8], &[3, 5], &[2, 1], Datatype::double()).unwrap();
        assert_eq!(total_len(&flatten(&t)), t.size());
    }

    #[test]
    fn resized_flattens_like_inner() {
        let t = Datatype::resized(0, 64, Datatype::int());
        assert_eq!(segs(&t), vec![(0, 4)]);
        // But repetition respects the new extent.
        assert_eq!(
            flatten_n(&t, 2)
                .iter()
                .map(|s| (s.offset, s.len))
                .collect::<Vec<_>>(),
            vec![(0, 4), (64, 4)]
        );
    }
}
