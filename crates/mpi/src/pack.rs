//! Packing and unpacking buffers through datatypes (`MPI_Pack`/`MPI_Unpack`).
//!
//! The flexible PnetCDF API lets the user describe a noncontiguous memory
//! region with an MPI datatype; before the bytes can be handed to the I/O
//! layer they are gathered ("packed") into a contiguous staging buffer, and
//! scattered back ("unpacked") on the read path. Packing is driven by the
//! flattened segment list, so it costs one `copy_from_slice` per run.

use crate::datatype::Datatype;
use crate::error::{MpiError, MpiResult};
use crate::flatten::{flatten_n, Segment};

/// Gather `count` instances of `dtype` from `buf` into a new contiguous
/// buffer, in typemap order.
///
/// `buf` is addressed from the datatype origin; all flattened offsets must
/// fall within it (negative offsets are rejected — callers pass a slice that
/// starts at the lowest addressed byte).
pub fn pack(buf: &[u8], count: usize, dtype: &Datatype) -> MpiResult<Vec<u8>> {
    let segs = flatten_n(dtype, count);
    let total: u64 = segs.iter().map(|s| s.len).sum();
    let mut out = Vec::with_capacity(total as usize);
    for s in &segs {
        let (lo, hi) = seg_range(s, buf.len())?;
        out.extend_from_slice(&buf[lo..hi]);
    }
    Ok(out)
}

/// Gather like [`pack`], but apply `copy` (a streaming byte transformer,
/// e.g. an endianness swap) while copying, so the gather and the conversion
/// are one fused pass — the byte is touched once between the user buffer
/// and the staging buffer.
///
/// `copy` must be position-independent over any `elem_width`-aligned prefix
/// split (converting the stream in chunks must equal converting it whole).
/// When some flattened segment is not a multiple of `elem_width` — an
/// element straddles a segment boundary — the fusion would corrupt that
/// element, so this falls back to gather-then-convert over the whole
/// staging buffer.
pub fn pack_with(
    buf: &[u8],
    count: usize,
    dtype: &Datatype,
    elem_width: usize,
    copy: impl Fn(&[u8], &mut [u8]),
) -> MpiResult<Vec<u8>> {
    let segs = flatten_n(dtype, count);
    let total: u64 = segs.iter().map(|s| s.len).sum();
    let mut out = vec![0u8; total as usize];
    if segs_elem_aligned(&segs, elem_width) {
        let mut pos = 0usize;
        for s in &segs {
            let (lo, hi) = seg_range(s, buf.len())?;
            copy(&buf[lo..hi], &mut out[pos..pos + s.len as usize]);
            pos += s.len as usize;
        }
    } else {
        let staged = pack(buf, count, dtype)?;
        copy(&staged, &mut out);
    }
    Ok(out)
}

/// Scatter `data` into `count` instances of `dtype` inside `buf`.
///
/// Returns the number of bytes consumed from `data`. Errors if `data` is
/// shorter than the type signature requires.
pub fn unpack(data: &[u8], buf: &mut [u8], count: usize, dtype: &Datatype) -> MpiResult<usize> {
    let segs = flatten_n(dtype, count);
    let total: u64 = segs.iter().map(|s| s.len).sum();
    if (data.len() as u64) < total {
        return Err(MpiError::Truncated {
            needed: total as usize,
            available: data.len(),
        });
    }
    let mut pos = 0usize;
    for s in &segs {
        let (lo, hi) = seg_range(s, buf.len())?;
        buf[lo..hi].copy_from_slice(&data[pos..pos + s.len as usize]);
        pos += s.len as usize;
    }
    Ok(pos)
}

/// Scatter like [`unpack`], but apply `copy` while scattering (see
/// [`pack_with`] for the fusion contract and the misaligned-segment
/// fallback).
pub fn unpack_with(
    data: &[u8],
    buf: &mut [u8],
    count: usize,
    dtype: &Datatype,
    elem_width: usize,
    copy: impl Fn(&[u8], &mut [u8]),
) -> MpiResult<usize> {
    let segs = flatten_n(dtype, count);
    let total: u64 = segs.iter().map(|s| s.len).sum();
    if (data.len() as u64) < total {
        return Err(MpiError::Truncated {
            needed: total as usize,
            available: data.len(),
        });
    }
    if segs_elem_aligned(&segs, elem_width) {
        let mut pos = 0usize;
        for s in &segs {
            let (lo, hi) = seg_range(s, buf.len())?;
            copy(&data[pos..pos + s.len as usize], &mut buf[lo..hi]);
            pos += s.len as usize;
        }
        Ok(pos)
    } else {
        let mut converted = vec![0u8; total as usize];
        copy(&data[..total as usize], &mut converted);
        unpack(&converted, buf, count, dtype)
    }
}

/// True when every flattened segment holds a whole number of
/// `elem_width`-byte elements, i.e. no element straddles a segment
/// boundary and per-segment conversion is safe.
fn segs_elem_aligned(segs: &[Segment], elem_width: usize) -> bool {
    elem_width <= 1 || segs.iter().all(|s| s.len % elem_width as u64 == 0)
}

fn seg_range(s: &Segment, buf_len: usize) -> MpiResult<(usize, usize)> {
    if s.offset < 0 {
        return Err(MpiError::InvalidDatatype(format!(
            "segment at negative offset {} cannot address a slice",
            s.offset
        )));
    }
    let lo = s.offset as usize;
    let hi = lo + s.len as usize;
    if hi > buf_len {
        return Err(MpiError::Truncated {
            needed: hi,
            available: buf_len,
        });
    }
    Ok((lo, hi))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_contiguous_is_copy() {
        let buf = [1u8, 2, 3, 4, 5, 6];
        let t = Datatype::contiguous(6, Datatype::byte());
        assert_eq!(pack(&buf, 1, &t).unwrap(), buf.to_vec());
    }

    #[test]
    fn pack_vector_gathers() {
        let buf = [0u8, 1, 2, 3, 4, 5, 6, 7];
        // 2 blocks of 2 bytes, stride 4: picks 0,1,4,5.
        let t = Datatype::vector(2, 2, 4, Datatype::byte());
        assert_eq!(pack(&buf, 1, &t).unwrap(), vec![0, 1, 4, 5]);
    }

    #[test]
    fn unpack_is_inverse_of_pack() {
        let src: Vec<u8> = (0..32).collect();
        let t = Datatype::subarray(&[4, 8], &[2, 3], &[1, 2], Datatype::byte()).unwrap();
        let packed = pack(&src, 1, &t).unwrap();
        assert_eq!(packed.len(), 6);
        let mut dst = vec![0u8; 32];
        let used = unpack(&packed, &mut dst, 1, &t).unwrap();
        assert_eq!(used, 6);
        // The selected region matches, everything else is zero.
        for (i, &v) in dst.iter().enumerate() {
            let row = i / 8;
            let col = i % 8;
            if (1..3).contains(&row) && (2..5).contains(&col) {
                assert_eq!(v, src[i], "selected byte {i}");
            } else {
                assert_eq!(v, 0, "unselected byte {i}");
            }
        }
    }

    #[test]
    fn pack_out_of_bounds_errors() {
        let buf = [0u8; 4];
        let t = Datatype::contiguous(8, Datatype::byte());
        assert!(matches!(
            pack(&buf, 1, &t),
            Err(MpiError::Truncated {
                needed: 8,
                available: 4
            })
        ));
    }

    #[test]
    fn unpack_short_data_errors() {
        let mut buf = [0u8; 8];
        let t = Datatype::contiguous(8, Datatype::byte());
        assert!(unpack(&[1, 2, 3], &mut buf, 1, &t).is_err());
    }

    #[test]
    fn pack_repeated_instances() {
        let buf = [9u8, 0, 8, 0, 7, 0, 6, 0];
        // One byte then a hole; extent 2; 4 instances pick 9,8,7,6.
        let t = Datatype::resized(0, 2, Datatype::byte());
        assert_eq!(pack(&buf, 4, &t).unwrap(), vec![9, 8, 7, 6]);
    }

    #[test]
    fn zero_count_packs_nothing() {
        let t = Datatype::double();
        assert!(pack(&[], 0, &t).unwrap().is_empty());
        let mut buf = [];
        assert_eq!(unpack(&[], &mut buf, 0, &t).unwrap(), 0);
    }

    /// A 2-byte lane swap usable as the fused copy hook in tests.
    fn swap2(src: &[u8], dst: &mut [u8]) {
        for (s, d) in src.chunks_exact(2).zip(dst.chunks_exact_mut(2)) {
            d[0] = s[1];
            d[1] = s[0];
        }
    }

    #[test]
    fn pack_with_fuses_conversion() {
        let buf = [0u8, 1, 2, 3, 4, 5, 6, 7];
        // 2 blocks of 2 bytes, stride 4: picks 0,1,4,5 — aligned for width 2.
        let t = Datatype::vector(2, 2, 4, Datatype::byte());
        let fused = pack_with(&buf, 1, &t, 2, swap2).unwrap();
        let mut staged = vec![0u8; 4];
        swap2(&pack(&buf, 1, &t).unwrap(), &mut staged);
        assert_eq!(fused, staged);
        assert_eq!(fused, vec![1, 0, 5, 4]);
    }

    #[test]
    fn pack_with_misaligned_segments_fall_back() {
        let buf = [0u8, 1, 2, 3, 4, 5, 6, 7];
        // 4 blocks of 1 byte, stride 2: segment length 1 < element width 2,
        // so an element spans two segments and fusion must degrade to
        // gather-then-convert.
        let t = Datatype::vector(4, 1, 2, Datatype::byte());
        let fused = pack_with(&buf, 1, &t, 2, swap2).unwrap();
        let mut staged = vec![0u8; 4];
        swap2(&pack(&buf, 1, &t).unwrap(), &mut staged);
        assert_eq!(fused, staged);
        assert_eq!(fused, vec![2, 0, 6, 4]);
    }

    #[test]
    fn unpack_with_is_inverse_of_pack_with() {
        let src: Vec<u8> = (0..32).collect();
        let t = Datatype::subarray(&[4, 8], &[2, 4], &[1, 2], Datatype::byte()).unwrap();
        let packed = pack_with(&src, 1, &t, 2, swap2).unwrap();
        let mut dst = vec![0u8; 32];
        let used = unpack_with(&packed, &mut dst, 1, &t, 2, swap2).unwrap();
        assert_eq!(used, 8);
        let mut plain = vec![0u8; 32];
        unpack(&pack(&src, 1, &t).unwrap(), &mut plain, 1, &t).unwrap();
        assert_eq!(dst, plain, "swap twice restores the original bytes");
    }
}
