//! Communicators: the per-rank handle through which all MPI operations run.
//!
//! A [`Comm`] identifies (world, member group, this rank's index, collective
//! context). `MPI_COMM_WORLD` is created by [`crate::runtime::run_world`];
//! [`Comm::dup`] and [`Comm::split`] derive new communicators collectively,
//! exactly as MPI does.

use std::collections::BTreeMap;
use std::sync::Arc;

use hpc_sim::trace::events::layer;
use hpc_sim::{CollKind, Phase, PhaseScope, SharedClocks, SimConfig, SimStats, Span, Time};

use crate::collective::{CollContext, Deposits};
use crate::error::{MpiError, MpiResult};
use crate::op::{from_bytes, to_bytes, ReduceOp, Reducible, Scalar};
use crate::p2p::{Envelope, Status};
use crate::runtime::WorldInner;

/// Everything a collective `finish` closure needs to account costs: shared
/// clocks, cost models, statistics, and the world ranks of the group.
#[derive(Clone)]
pub struct CollEnv {
    /// Per-rank virtual clocks of the whole world.
    pub clocks: SharedClocks,
    /// Platform cost models.
    pub config: Arc<SimConfig>,
    /// Shared operation counters.
    pub stats: SimStats,
    /// `group[i]` = world rank of group member `i`.
    pub group: Arc<Vec<usize>>,
}

impl CollEnv {
    /// Synchronize the group's clocks to `max + extra`; returns the common
    /// time. This is the standard clock effect of a collective operation.
    pub fn sync_max(&self, extra: Time) -> Time {
        self.clocks.sync_max(&self.group, extra)
    }

    /// [`sync_max`](CollEnv::sync_max) with profile attribution: each
    /// member's entry skew (distance to the latest arriver) is charged to
    /// [`Phase::Wait`] and the operation cost itself to `phase`. Charging
    /// both sides keeps per-rank phase sums equal to the clocks. The
    /// two-phase I/O engine uses this directly with its own phases.
    pub fn sync_phase(&self, phase: Phase, cost: Time) -> Time {
        let profile = &self.config.profile;
        let events = &self.config.events;
        if profile.is_enabled() || events.is_enabled() {
            let snap = self.clocks.snapshot();
            let entry = self
                .group
                .iter()
                .map(|&r| snap[r])
                .max()
                .unwrap_or(Time::ZERO);
            for &r in self.group.iter() {
                if profile.is_enabled() {
                    profile.record_phase(r, Phase::Wait, (entry - snap[r]).as_nanos());
                    profile.record_phase(r, phase, cost.as_nanos());
                }
                if events.is_enabled() {
                    // Mirror the attribution as timeline spans: the entry
                    // skew and then the operation cost, tiling each
                    // member's clock across the collective.
                    if entry > snap[r] {
                        events.record(Span::new(
                            r,
                            layer::PHASE,
                            Phase::Wait.name(),
                            snap[r].as_nanos(),
                            entry.as_nanos(),
                        ));
                    }
                    if cost > Time::ZERO {
                        events.record(Span::new(
                            r,
                            layer::PHASE,
                            phase.name(),
                            entry.as_nanos(),
                            (entry + cost).as_nanos(),
                        ));
                    }
                }
            }
        }
        self.sync_max(cost)
    }

    /// [`sync_phase`](CollEnv::sync_phase) against [`Phase::Metadata`],
    /// additionally tallying the op in the per-kind collective table. All
    /// predefined MPI collectives route through here.
    pub fn sync_collective(&self, kind: CollKind, bytes: u64, cost: Time) -> Time {
        self.config
            .profile
            .record_collective(kind, bytes, cost.as_nanos());
        self.sync_phase(Phase::Metadata, cost)
    }

    /// Cost of one alltoallv round over this group, from the α–β network
    /// model: `max_send`/`max_recv` are the busiest endpoints' byte counts.
    /// The round is tallied in the per-kind collective table (so pipelined
    /// two-phase exchange rounds show up next to the predefined
    /// collectives), but no clock or phase timer is touched — callers that
    /// overlap rounds with other work own their timeline and charge phases
    /// along the critical path themselves.
    pub fn alltoallv_cost(&self, max_send: usize, max_recv: usize, total_bytes: u64) -> Time {
        let cost = self
            .config
            .network
            .alltoallv(max_send, max_recv, self.size());
        self.config
            .profile
            .record_collective(CollKind::Alltoallv, total_bytes, cost.as_nanos());
        cost
    }

    /// Set every group member's clock to exactly `t` (used by collective
    /// I/O, which computes its own completion time).
    pub fn set_all(&self, t: Time) {
        for &r in self.group.iter() {
            self.clocks.advance_to(r, t);
        }
    }

    /// Group size.
    pub fn size(&self) -> usize {
        self.group.len()
    }
}

/// A communicator handle owned by one rank.
///
/// Cloning yields another handle to the *same* communicator for the same
/// rank (useful for storing in file objects); it does not create a new
/// communicator — use [`Comm::dup`] for that.
#[derive(Clone)]
pub struct Comm {
    world: Arc<WorldInner>,
    group: Arc<Vec<usize>>,
    my_index: usize,
    ctx: Arc<CollContext>,
}

impl Comm {
    pub(crate) fn world(world: Arc<WorldInner>, ctx: Arc<CollContext>, rank: usize) -> Comm {
        let group = Arc::new((0..world.nprocs).collect::<Vec<_>>());
        Comm {
            world,
            group,
            my_index: rank,
            ctx,
        }
    }

    // ---- identity ---------------------------------------------------------

    /// This rank's index within the communicator (`MPI_Comm_rank`).
    pub fn rank(&self) -> usize {
        self.my_index
    }

    /// Number of members (`MPI_Comm_size`).
    pub fn size(&self) -> usize {
        self.group.len()
    }

    /// This rank's index in `MPI_COMM_WORLD`.
    pub fn world_rank(&self) -> usize {
        self.group[self.my_index]
    }

    /// Platform configuration of the world.
    pub fn config(&self) -> &SimConfig {
        &self.world.config
    }

    /// Shared operation counters.
    pub fn stats(&self) -> &SimStats {
        &self.world.stats
    }

    // ---- virtual clock ------------------------------------------------------

    /// This rank's current virtual time.
    pub fn now(&self) -> Time {
        self.world.clocks.now(self.world_rank())
    }

    /// Advance this rank's clock by `dt` (local work: packing, compute).
    ///
    /// The delta is charged to the ambient [`hpc_sim::PhaseScope`]
    /// (defaulting to [`Phase::Compute`]), which is how most local work in
    /// the stack gets attributed without per-call-site instrumentation.
    pub fn advance(&self, dt: Time) -> Time {
        self.advance_attr(dt, Phase::Compute)
    }

    /// Move this rank's clock forward to `t` if later.
    pub fn advance_to(&self, t: Time) -> Time {
        self.advance_to_attr(t, Phase::Compute)
    }

    fn advance_attr(&self, dt: Time, default: Phase) -> Time {
        let w = self.world_rank();
        let cfg = &self.world.config;
        if cfg.profile.is_enabled() {
            cfg.profile.record_scoped(w, default, dt.as_nanos());
        }
        if cfg.events.is_enabled() && dt > Time::ZERO {
            let begin = self.world.clocks.now(w).as_nanos();
            let phase = PhaseScope::current(default);
            cfg.events.record(Span::new(
                w,
                layer::PHASE,
                phase.name(),
                begin,
                begin + dt.as_nanos(),
            ));
        }
        self.world.clocks.advance(w, dt)
    }

    fn advance_to_attr(&self, t: Time, default: Phase) -> Time {
        let w = self.world_rank();
        let cfg = &self.world.config;
        let now = self.world.clocks.now(w);
        if cfg.profile.is_enabled() {
            cfg.profile
                .record_scoped(w, default, t.saturating_sub(now).as_nanos());
        }
        if cfg.events.is_enabled() && t > now {
            let phase = PhaseScope::current(default);
            cfg.events.record(Span::new(
                w,
                layer::PHASE,
                phase.name(),
                now.as_nanos(),
                t.as_nanos(),
            ));
        }
        self.world.clocks.advance_to(w, t)
    }

    /// Clone of the shared clock array (for the I/O layers).
    pub fn clocks(&self) -> SharedClocks {
        self.world.clocks.clone()
    }

    // ---- generic collective ------------------------------------------------

    /// Capture the environment a `finish` closure needs.
    pub fn coll_env(&self) -> CollEnv {
        CollEnv {
            clocks: self.world.clocks.clone(),
            config: Arc::new(self.world.config.clone()),
            stats: self.world.stats.clone(),
            group: self.group.clone(),
        }
    }

    /// Low-level collective: deposit `parts` and run `finish` at the last
    /// arriver (see [`CollContext::rendezvous`]). The closure is responsible
    /// for clock accounting (usually via [`CollEnv::sync_max`]).
    ///
    /// This is the extension point the MPI-IO layer uses to implement
    /// two-phase collective I/O deterministically.
    pub fn collective<R, F>(&self, parts: Vec<Vec<u8>>, finish: F) -> MpiResult<Arc<R>>
    where
        R: Send + Sync + 'static,
        F: FnOnce(Deposits) -> R,
    {
        self.world.stats.count_collective();
        self.ctx.rendezvous(self.my_index, parts, finish)
    }

    // ---- predefined collectives ---------------------------------------------

    /// `MPI_Barrier`.
    pub fn barrier(&self) -> MpiResult<()> {
        let env = self.coll_env();
        self.collective(Vec::new(), move |_| {
            let cost = env.config.network.barrier(env.size());
            env.sync_collective(CollKind::Barrier, 0, cost);
        })
        .map(|_| ())
    }

    /// `MPI_Bcast` of a byte buffer. Every rank receives `root`'s buffer;
    /// non-roots typically pass an empty vector.
    pub fn bcast_bytes(&self, root: usize, mine: Vec<u8>) -> MpiResult<Vec<u8>> {
        self.check_rank(root)?;
        let env = self.coll_env();
        let res = self.collective(vec![mine], move |mut deps: Deposits| {
            let payload = std::mem::take(&mut deps[root][0]);
            let cost = env.config.network.bcast(payload.len(), env.size());
            env.sync_collective(CollKind::Bcast, payload.len() as u64, cost);
            payload
        })?;
        Ok((*res).clone())
    }

    /// Broadcast a slice of scalars from `root`.
    pub fn bcast_scalars<T: Scalar>(&self, root: usize, mine: &[T]) -> MpiResult<Vec<T>> {
        let bytes = self.bcast_bytes(root, to_bytes(mine))?;
        Ok(from_bytes(&bytes))
    }

    /// `MPI_Allgatherv` of byte buffers: returns every rank's contribution,
    /// indexed by rank.
    pub fn allgather_bytes(&self, mine: Vec<u8>) -> MpiResult<Vec<Vec<u8>>> {
        let env = self.coll_env();
        let res = self.collective(vec![mine], move |mut deps: Deposits| {
            let all: Vec<Vec<u8>> = deps.iter_mut().map(|d| std::mem::take(&mut d[0])).collect();
            let maxlen = all.iter().map(Vec::len).max().unwrap_or(0);
            let total: usize = all.iter().map(Vec::len).sum();
            let cost = env.config.network.allgather(maxlen, env.size());
            env.sync_collective(CollKind::Allgather, total as u64, cost);
            all
        })?;
        Ok((*res).clone())
    }

    /// Allgather one scalar from each rank.
    pub fn allgather_scalar<T: Scalar>(&self, v: T) -> MpiResult<Vec<T>> {
        let all = self.allgather_bytes(to_bytes(&[v]))?;
        Ok(all.iter().map(|b| from_bytes::<T>(b)[0]).collect())
    }

    /// `MPI_Alltoallv`: `parts[i]` goes to rank `i`; returns what each rank
    /// sent to us, indexed by source.
    pub fn alltoallv_bytes(&self, parts: Vec<Vec<u8>>) -> MpiResult<Vec<Vec<u8>>> {
        if parts.len() != self.size() {
            return Err(MpiError::CollectiveMismatch(format!(
                "alltoallv parts len {} != comm size {}",
                parts.len(),
                self.size()
            )));
        }
        let env = self.coll_env();
        let me = self.my_index;
        let res = self.collective(parts, move |deps: Deposits| {
            let n = env.size();
            let max_send = deps
                .iter()
                .map(|row| row.iter().map(Vec::len).sum::<usize>())
                .max()
                .unwrap_or(0);
            let max_recv = (0..n)
                .map(|dst| deps.iter().map(|row| row[dst].len()).sum::<usize>())
                .max()
                .unwrap_or(0);
            let total: usize = deps
                .iter()
                .map(|row| row.iter().map(Vec::len).sum::<usize>())
                .sum();
            let cost = env.config.network.alltoallv(max_send, max_recv, n);
            env.sync_collective(CollKind::Alltoallv, total as u64, cost);
            deps // [src][dst]
        })?;
        Ok(res.iter().map(|row| row[me].clone()).collect())
    }

    /// `MPI_Gatherv` to `root`: root gets every contribution, others `None`.
    pub fn gatherv_bytes(&self, root: usize, mine: Vec<u8>) -> MpiResult<Option<Vec<Vec<u8>>>> {
        self.check_rank(root)?;
        let env = self.coll_env();
        let res = self.collective(vec![mine], move |mut deps: Deposits| {
            let all: Vec<Vec<u8>> = deps.iter_mut().map(|d| std::mem::take(&mut d[0])).collect();
            let maxlen = all.iter().map(Vec::len).max().unwrap_or(0);
            let total: usize = all.iter().map(Vec::len).sum();
            let cost = env.config.network.allgather(maxlen, env.size());
            env.sync_collective(CollKind::Gather, total as u64, cost);
            all
        })?;
        Ok(if self.my_index == root {
            Some((*res).clone())
        } else {
            None
        })
    }

    /// `MPI_Scatterv` from `root`: root passes one parcel per rank.
    pub fn scatterv_bytes(&self, root: usize, parts: Option<Vec<Vec<u8>>>) -> MpiResult<Vec<u8>> {
        self.check_rank(root)?;
        if self.my_index == root {
            match &parts {
                Some(p) if p.len() == self.size() => {}
                _ => {
                    return Err(MpiError::CollectiveMismatch(
                        "scatterv root must supply one parcel per rank".into(),
                    ))
                }
            }
        }
        let env = self.coll_env();
        let me = self.my_index;
        let deposit = parts.unwrap_or_default();
        let res = self.collective(deposit, move |mut deps: Deposits| {
            let row = std::mem::take(&mut deps[root]);
            let maxlen = row.iter().map(Vec::len).max().unwrap_or(0);
            let total: usize = row.iter().map(Vec::len).sum();
            let cost = env.config.network.bcast(maxlen, env.size());
            env.sync_collective(CollKind::Scatter, total as u64, cost);
            row
        })?;
        Ok(res[me].clone())
    }

    /// `MPI_Allreduce` over a slice (elementwise).
    pub fn allreduce<T: Reducible>(&self, op: ReduceOp, vals: &[T]) -> MpiResult<Vec<T>> {
        let env = self.coll_env();
        let nvals = vals.len();
        let res = self.collective(vec![to_bytes(vals)], move |deps: Deposits| {
            let mut acc: Option<Vec<T>> = None;
            for d in &deps {
                let row = from_bytes::<T>(&d[0]);
                assert_eq!(row.len(), nvals, "allreduce length mismatch across ranks");
                acc = Some(match acc {
                    None => row,
                    Some(a) => a
                        .into_iter()
                        .zip(row)
                        .map(|(x, y)| T::reduce(op, x, y))
                        .collect(),
                });
            }
            let cost = env.config.network.allreduce(nvals * T::WIDTH, env.size());
            env.sync_collective(CollKind::Allreduce, (nvals * T::WIDTH) as u64, cost);
            acc.expect("at least one rank")
        })?;
        Ok((*res).clone())
    }

    /// Allreduce of a single scalar.
    pub fn allreduce_scalar<T: Reducible>(&self, op: ReduceOp, v: T) -> MpiResult<T> {
        Ok(self.allreduce(op, &[v])?[0])
    }

    /// `MPI_Reduce`: elementwise reduction delivered to `root` only.
    pub fn reduce<T: Reducible>(
        &self,
        root: usize,
        op: ReduceOp,
        vals: &[T],
    ) -> MpiResult<Option<Vec<T>>> {
        self.check_rank(root)?;
        let env = self.coll_env();
        let nvals = vals.len();
        let res = self.collective(vec![to_bytes(vals)], move |deps: Deposits| {
            let mut acc: Option<Vec<T>> = None;
            for d in &deps {
                let row = from_bytes::<T>(&d[0]);
                assert_eq!(row.len(), nvals, "reduce length mismatch across ranks");
                acc = Some(match acc {
                    None => row,
                    Some(a) => a
                        .into_iter()
                        .zip(row)
                        .map(|(x, y)| T::reduce(op, x, y))
                        .collect(),
                });
            }
            // Binomial-tree reduction: same cost shape as a broadcast.
            let cost = env.config.network.bcast(nvals * T::WIDTH, env.size());
            env.sync_collective(CollKind::Reduce, (nvals * T::WIDTH) as u64, cost);
            acc.expect("at least one rank")
        })?;
        Ok(if self.my_index == root {
            Some((*res).clone())
        } else {
            None
        })
    }

    /// `MPI_Exscan` with sum: returns the sum of values at ranks `< self`
    /// (0 at rank 0), plus the grand total — a common pair for laying out
    /// shared output.
    pub fn exscan_sum(&self, v: u64) -> MpiResult<(u64, u64)> {
        let all = self.allgather_scalar::<u64>(v)?;
        let prefix: u64 = all[..self.my_index].iter().sum();
        let total: u64 = all.iter().sum();
        Ok((prefix, total))
    }

    // ---- point-to-point ------------------------------------------------------

    /// `MPI_Send` of a byte buffer to group rank `dest`.
    pub fn send_bytes(&self, dest: usize, tag: i32, data: Vec<u8>) -> MpiResult<()> {
        self.check_rank(dest)?;
        let len = data.len();
        self.world.stats.count_message(len);
        self.world.config.profile.record_msg_size(len as u64);
        // Eager model: the sender pays the wire occupancy, the message
        // becomes visible at sender_time + latency.
        let send_done = self.advance_attr(self.world.config.network.transfer(len), Phase::P2p);
        let arrival = send_done + self.world.config.network.latency;
        let world_dest = self.group[dest];
        self.world.mailboxes[world_dest].deposit(Envelope {
            src_group_rank: self.my_index,
            tag,
            comm_id: self.ctx.id,
            data,
            arrival,
        });
        Ok(())
    }

    /// Send a slice of scalars.
    pub fn send_scalars<T: Scalar>(&self, dest: usize, tag: i32, vals: &[T]) -> MpiResult<()> {
        self.send_bytes(dest, tag, to_bytes(vals))
    }

    /// `MPI_Recv`: blocking receive matching `(src, tag)`; wildcards are
    /// [`crate::p2p::ANY_SOURCE`] / [`crate::p2p::ANY_TAG`].
    pub fn recv_bytes(&self, src: i32, tag: i32) -> MpiResult<(Vec<u8>, Status)> {
        if src >= 0 {
            self.check_rank(src as usize)?;
        }
        let env = self.world.mailboxes[self.world_rank()].recv(
            self.ctx.id,
            src,
            tag,
            &self.world.poisoned,
        )?;
        self.advance_to_attr(env.arrival, Phase::P2p);
        let status = Status {
            source: env.src_group_rank,
            tag: env.tag,
            len: env.data.len(),
        };
        Ok((env.data, status))
    }

    /// Receive a slice of scalars.
    pub fn recv_scalars<T: Scalar>(&self, src: i32, tag: i32) -> MpiResult<(Vec<T>, Status)> {
        let (bytes, st) = self.recv_bytes(src, tag)?;
        Ok((from_bytes(&bytes), st))
    }

    /// Nonblocking probe for a matching message.
    pub fn probe(&self, src: i32, tag: i32) -> Option<Status> {
        self.world.mailboxes[self.world_rank()].probe(self.ctx.id, src, tag)
    }

    // ---- communicator management ----------------------------------------------

    /// `MPI_Comm_dup`: a congruent communicator with its own collective
    /// context (so its traffic cannot match this one's).
    pub fn dup(&self) -> MpiResult<Comm> {
        let env = self.coll_env();
        let world = self.world.clone();
        let n = self.size();
        let ctx = self.collective(Vec::new(), move |_| {
            let cost = env.config.network.barrier(env.size());
            env.sync_collective(CollKind::Barrier, 0, cost);
            world.new_context(n)
        })?;
        Ok(Comm {
            world: self.world.clone(),
            group: self.group.clone(),
            my_index: self.my_index,
            ctx: (*ctx).clone(),
        })
    }

    /// `MPI_Comm_split`: ranks with equal `color` form a new communicator,
    /// ordered by `(key, old rank)`. A negative color (`MPI_UNDEFINED`)
    /// yields `None`.
    pub fn split(&self, color: i64, key: i64) -> MpiResult<Option<Comm>> {
        let env = self.coll_env();
        let world = self.world.clone();
        let group = self.group.clone();
        let deposit = to_bytes(&[color, key]);
        let me = self.my_index;
        let table = self.collective(vec![deposit], move |deps: Deposits| {
            // (color, key, old_index) for every member.
            let mut entries: Vec<(i64, i64, usize)> = deps
                .iter()
                .enumerate()
                .map(|(i, d)| {
                    let v = from_bytes::<i64>(&d[0]);
                    (v[0], v[1], i)
                })
                .collect();
            entries.sort_by_key(|&(c, k, i)| (c, k, i));
            let mut out: BTreeMap<i64, (Arc<Vec<usize>>, Arc<CollContext>)> = BTreeMap::new();
            let mut i = 0;
            while i < entries.len() {
                let color = entries[i].0;
                let mut members = Vec::new();
                while i < entries.len() && entries[i].0 == color {
                    members.push(group[entries[i].2]);
                    i += 1;
                }
                if color >= 0 {
                    let ctx = world.new_context(members.len());
                    out.insert(color, (Arc::new(members), ctx));
                }
            }
            let cost = env.config.network.barrier(env.size());
            env.sync_collective(CollKind::Barrier, 0, cost);
            (out, me) // me unused; keeps closure simple
        })?;
        if color < 0 {
            return Ok(None);
        }
        let (new_group, new_ctx) = table.0.get(&color).expect("own color present").clone();
        let my_world = self.world_rank();
        let my_index = new_group
            .iter()
            .position(|&w| w == my_world)
            .expect("member of own color group");
        Ok(Some(Comm {
            world: self.world.clone(),
            group: new_group,
            my_index,
            ctx: new_ctx,
        }))
    }

    fn check_rank(&self, r: usize) -> MpiResult<()> {
        if r >= self.size() {
            return Err(MpiError::InvalidRank {
                rank: r as i32,
                size: self.size(),
            });
        }
        Ok(())
    }
}
