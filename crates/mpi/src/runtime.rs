//! The SPMD runtime: spawn `nprocs` ranks as threads and run a closure on
//! each, exactly as `mpirun -np P ./prog` would start P processes.
//!
//! If any rank panics, the world is *poisoned*: the flag is set, every
//! blocked receiver and collective waiter is woken and returns
//! [`crate::error::MpiError::Poisoned`], and [`run_world`] re-raises the original panic
//! after all threads have exited — a hung test instead becomes a failed one.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use hpc_sim::{SharedClocks, SimConfig, SimStats, Time};

use crate::collective::CollContext;
use crate::comm::Comm;
use crate::p2p::Mailbox;
use hpc_sim::stats::StatsSnapshot;

pub(crate) struct WorldInner {
    pub nprocs: usize,
    pub config: SimConfig,
    pub clocks: SharedClocks,
    pub stats: SimStats,
    pub mailboxes: Vec<Mailbox>,
    pub poisoned: Arc<AtomicBool>,
    /// All live collective contexts, so poisoning can wake their waiters.
    pub contexts: Mutex<Vec<Arc<CollContext>>>,
    next_ctx_id: AtomicU64,
}

impl WorldInner {
    pub fn new_context(&self, size: usize) -> Arc<CollContext> {
        let id = self.next_ctx_id.fetch_add(1, Ordering::Relaxed);
        let ctx = Arc::new(CollContext::new(id, size, self.poisoned.clone()));
        self.contexts.lock().push(ctx.clone());
        ctx
    }

    pub fn poison(&self) {
        self.poisoned.store(true, Ordering::SeqCst);
        for mb in &self.mailboxes {
            mb.poison_notify();
        }
        for ctx in self.contexts.lock().iter() {
            ctx.poison_notify();
        }
    }
}

/// Everything a finished world run reports back.
pub struct WorldRun<T> {
    /// Per-rank return values, indexed by world rank.
    pub results: Vec<T>,
    /// The virtual makespan: `max` over all rank clocks at exit.
    pub makespan: Time,
    /// Final per-rank virtual clocks.
    pub clocks: Vec<Time>,
    /// Operation counters accumulated during the run.
    pub stats: StatsSnapshot,
}

/// Run `body` on `nprocs` ranks (threads) under `config`, returning each
/// rank's result plus the virtual-time accounting.
///
/// `body` receives this rank's `MPI_COMM_WORLD` handle. Panics in any rank
/// poison the world and are re-raised here.
pub fn run_world<T, F>(nprocs: usize, config: SimConfig, body: F) -> WorldRun<T>
where
    T: Send,
    F: Fn(&mut Comm) -> T + Sync,
{
    assert!(nprocs > 0, "a world needs at least one rank");
    let inner = Arc::new(WorldInner {
        nprocs,
        config,
        clocks: SharedClocks::new(nprocs),
        stats: SimStats::new(),
        mailboxes: (0..nprocs).map(|_| Mailbox::new()).collect(),
        poisoned: Arc::new(AtomicBool::new(false)),
        contexts: Mutex::new(Vec::new()),
        next_ctx_id: AtomicU64::new(1),
    });
    // One shared context for MPI_COMM_WORLD.
    let world_ctx = inner.new_context(nprocs);

    let results: Vec<T> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..nprocs)
            .map(|rank| {
                let inner = inner.clone();
                let world_ctx = world_ctx.clone();
                let body = &body;
                std::thread::Builder::new()
                    .name(format!("rank-{rank}"))
                    .stack_size(2 * 1024 * 1024)
                    .spawn_scoped(s, move || {
                        struct Guard<'a>(&'a WorldInner);
                        impl Drop for Guard<'_> {
                            fn drop(&mut self) {
                                if std::thread::panicking() {
                                    self.0.poison();
                                }
                            }
                        }
                        let _g = Guard(&inner);
                        let mut comm = Comm::world(inner.clone(), world_ctx, rank);
                        body(&mut comm)
                    })
                    .expect("spawn rank thread")
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(v) => v,
                Err(p) => std::panic::resume_unwind(p),
            })
            .collect()
    });

    WorldRun {
        makespan: inner.clocks.makespan(),
        clocks: inner.clocks.snapshot(),
        stats: inner.stats.snapshot(),
        results,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rank_world() {
        let run = run_world(1, SimConfig::test_small(), |c| {
            assert_eq!(c.rank(), 0);
            assert_eq!(c.size(), 1);
            42u32
        });
        assert_eq!(run.results, vec![42]);
    }

    #[test]
    fn ranks_are_distinct() {
        let run = run_world(8, SimConfig::test_small(), |c| c.rank());
        assert_eq!(run.results, (0..8).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "rank 3 exploded")]
    fn panic_in_one_rank_propagates() {
        run_world(4, SimConfig::test_small(), |c| {
            if c.rank() == 3 {
                panic!("rank 3 exploded");
            }
            // Other ranks block in a collective; poisoning must wake them.
            let _ = c.barrier();
        });
    }
}
