//! MPI derived datatypes.
//!
//! PnetCDF's "flexible" API describes noncontiguous memory with MPI
//! datatypes, and its file views are MPI datatypes constructed from the
//! variable's shape plus the user's `start/count/stride/imap` arguments
//! (Section 4.2.2 of the paper). This module implements the constructors of
//! MPI-1/MPI-2 that those paths need: contiguous, vector, hvector, indexed,
//! hindexed, struct, subarray, and resized types.
//!
//! A datatype is a *typemap*: a sequence of `(offset, base-type)` pairs. We
//! keep the constructor tree and derive everything else (size, extent,
//! flattened offset/length segments) from it; see [`mod@crate::flatten`].

use crate::error::{MpiError, MpiResult};

/// The primitive (leaf) types.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BaseType {
    U8,
    I8,
    I16,
    U16,
    I32,
    U32,
    I64,
    U64,
    F32,
    F64,
}

impl BaseType {
    /// Size in bytes.
    pub const fn size(self) -> usize {
        match self {
            BaseType::U8 | BaseType::I8 => 1,
            BaseType::I16 | BaseType::U16 => 2,
            BaseType::I32 | BaseType::U32 | BaseType::F32 => 4,
            BaseType::I64 | BaseType::U64 | BaseType::F64 => 8,
        }
    }
}

/// Array storage order for [`Datatype::subarray`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Order {
    /// C order: the last dimension varies fastest (netCDF's order).
    RowMajor,
}

/// An MPI derived datatype.
#[derive(Clone, Debug, PartialEq)]
pub enum Datatype {
    /// A primitive type.
    Base(BaseType),
    /// `count` copies of `inner`, back to back (`MPI_Type_contiguous`).
    Contiguous { count: usize, inner: Box<Datatype> },
    /// `count` blocks of `blocklen` elements, block starts `stride` elements
    /// apart (`MPI_Type_vector`). `stride` may be negative.
    Vector {
        count: usize,
        blocklen: usize,
        stride: i64,
        inner: Box<Datatype>,
    },
    /// Like `Vector` but `stride` is in bytes (`MPI_Type_create_hvector`).
    Hvector {
        count: usize,
        blocklen: usize,
        stride_bytes: i64,
        inner: Box<Datatype>,
    },
    /// Explicit blocks of `(displacement-in-elements, length)` pairs
    /// (`MPI_Type_indexed`).
    Indexed {
        blocks: Vec<(i64, usize)>,
        inner: Box<Datatype>,
    },
    /// Explicit blocks of `(displacement-in-bytes, length)` pairs
    /// (`MPI_Type_create_hindexed`).
    Hindexed {
        blocks: Vec<(i64, usize)>,
        inner: Box<Datatype>,
    },
    /// Heterogeneous fields of `(byte offset, count, type)`
    /// (`MPI_Type_create_struct`).
    Struct { fields: Vec<(i64, usize, Datatype)> },
    /// An n-dimensional subarray of an n-dimensional array
    /// (`MPI_Type_create_subarray`), row-major.
    Subarray {
        sizes: Vec<u64>,
        subsizes: Vec<u64>,
        starts: Vec<u64>,
        inner: Box<Datatype>,
    },
    /// `inner` with its lower bound / extent overridden
    /// (`MPI_Type_create_resized`).
    Resized {
        lb: i64,
        extent: u64,
        inner: Box<Datatype>,
    },
}

impl From<BaseType> for Datatype {
    fn from(b: BaseType) -> Datatype {
        Datatype::Base(b)
    }
}

impl Datatype {
    // ---- constructors (validated) ----------------------------------------

    /// `MPI_BYTE`.
    pub fn byte() -> Datatype {
        Datatype::Base(BaseType::U8)
    }

    /// `MPI_DOUBLE`.
    pub fn double() -> Datatype {
        Datatype::Base(BaseType::F64)
    }

    /// `MPI_FLOAT`.
    pub fn float() -> Datatype {
        Datatype::Base(BaseType::F32)
    }

    /// `MPI_INT`.
    pub fn int() -> Datatype {
        Datatype::Base(BaseType::I32)
    }

    /// `MPI_Type_contiguous`.
    pub fn contiguous(count: usize, inner: Datatype) -> Datatype {
        Datatype::Contiguous {
            count,
            inner: Box::new(inner),
        }
    }

    /// `MPI_Type_vector`.
    pub fn vector(count: usize, blocklen: usize, stride: i64, inner: Datatype) -> Datatype {
        Datatype::Vector {
            count,
            blocklen,
            stride,
            inner: Box::new(inner),
        }
    }

    /// `MPI_Type_create_hvector`.
    pub fn hvector(count: usize, blocklen: usize, stride_bytes: i64, inner: Datatype) -> Datatype {
        Datatype::Hvector {
            count,
            blocklen,
            stride_bytes,
            inner: Box::new(inner),
        }
    }

    /// `MPI_Type_indexed`.
    pub fn indexed(blocks: Vec<(i64, usize)>, inner: Datatype) -> Datatype {
        Datatype::Indexed {
            blocks,
            inner: Box::new(inner),
        }
    }

    /// `MPI_Type_create_hindexed`.
    pub fn hindexed(blocks: Vec<(i64, usize)>, inner: Datatype) -> Datatype {
        Datatype::Hindexed {
            blocks,
            inner: Box::new(inner),
        }
    }

    /// `MPI_Type_create_struct`.
    pub fn structure(fields: Vec<(i64, usize, Datatype)>) -> Datatype {
        Datatype::Struct { fields }
    }

    /// `MPI_Type_create_subarray` (row-major). Errors if the subarray does
    /// not fit inside the full array.
    pub fn subarray(
        sizes: &[u64],
        subsizes: &[u64],
        starts: &[u64],
        inner: Datatype,
    ) -> MpiResult<Datatype> {
        if sizes.len() != subsizes.len() || sizes.len() != starts.len() {
            return Err(MpiError::InvalidDatatype(format!(
                "subarray rank mismatch: sizes={} subsizes={} starts={}",
                sizes.len(),
                subsizes.len(),
                starts.len()
            )));
        }
        for i in 0..sizes.len() {
            if starts[i]
                .checked_add(subsizes[i])
                .is_none_or(|end| end > sizes[i])
            {
                return Err(MpiError::InvalidDatatype(format!(
                    "subarray dim {i}: start {} + subsize {} exceeds size {}",
                    starts[i], subsizes[i], sizes[i]
                )));
            }
        }
        Ok(Datatype::Subarray {
            sizes: sizes.to_vec(),
            subsizes: subsizes.to_vec(),
            starts: starts.to_vec(),
            inner: Box::new(inner),
        })
    }

    /// `MPI_Type_create_resized`.
    pub fn resized(lb: i64, extent: u64, inner: Datatype) -> Datatype {
        Datatype::Resized {
            lb,
            extent,
            inner: Box::new(inner),
        }
    }

    // ---- derived quantities ----------------------------------------------

    /// Total bytes of *data* described by one instance of this type
    /// (`MPI_Type_size`).
    pub fn size(&self) -> u64 {
        match self {
            Datatype::Base(b) => b.size() as u64,
            Datatype::Contiguous { count, inner } => *count as u64 * inner.size(),
            Datatype::Vector {
                count,
                blocklen,
                inner,
                ..
            }
            | Datatype::Hvector {
                count,
                blocklen,
                inner,
                ..
            } => *count as u64 * *blocklen as u64 * inner.size(),
            Datatype::Indexed { blocks, inner } | Datatype::Hindexed { blocks, inner } => {
                blocks.iter().map(|&(_, l)| l as u64).sum::<u64>() * inner.size()
            }
            Datatype::Struct { fields } => {
                fields.iter().map(|(_, c, t)| *c as u64 * t.size()).sum()
            }
            Datatype::Subarray {
                subsizes, inner, ..
            } => subsizes.iter().product::<u64>() * inner.size(),
            Datatype::Resized { inner, .. } => inner.size(),
        }
    }

    /// Lower bound in bytes (`MPI_Type_get_extent`'s `lb`).
    pub fn lb(&self) -> i64 {
        self.bounds().0
    }

    /// Extent in bytes: `ub - lb` (`MPI_Type_get_extent`).
    pub fn extent(&self) -> u64 {
        let (lb, ub) = self.bounds();
        (ub - lb) as u64
    }

    /// `(lb, ub)` byte bounds of the typemap.
    pub fn bounds(&self) -> (i64, i64) {
        match self {
            Datatype::Base(b) => (0, b.size() as i64),
            Datatype::Contiguous { count, inner } => {
                let (lb, _ub) = inner.bounds();
                let e = inner.extent() as i64;
                if *count == 0 {
                    (0, 0)
                } else {
                    (lb, lb + e * *count as i64)
                }
            }
            Datatype::Vector {
                count,
                blocklen,
                stride,
                inner,
            } => {
                let e = inner.extent() as i64;
                Self::strided_bounds(*count, *blocklen, *stride * e, e, inner.bounds())
            }
            Datatype::Hvector {
                count,
                blocklen,
                stride_bytes,
                inner,
            } => {
                let e = inner.extent() as i64;
                Self::strided_bounds(*count, *blocklen, *stride_bytes, e, inner.bounds())
            }
            Datatype::Indexed { blocks, inner } => {
                let e = inner.extent() as i64;
                Self::blocks_bounds(blocks.iter().map(|&(d, l)| (d * e, l)), e, inner.bounds())
            }
            Datatype::Hindexed { blocks, inner } => {
                let e = inner.extent() as i64;
                Self::blocks_bounds(blocks.iter().copied(), e, inner.bounds())
            }
            Datatype::Struct { fields } => {
                let mut lb = i64::MAX;
                let mut ub = i64::MIN;
                for (off, count, t) in fields {
                    if *count == 0 {
                        continue;
                    }
                    let (tlb, tub) = t.bounds();
                    let e = t.extent() as i64;
                    lb = lb.min(off + tlb);
                    ub = ub.max(off + tlb + e * *count as i64 + (tub - tlb - e).max(0));
                }
                if lb == i64::MAX {
                    (0, 0)
                } else {
                    (lb, ub)
                }
            }
            Datatype::Subarray { sizes, inner, .. } => {
                // A subarray's extent is the full array: element p occupies
                // [p*ext + inner.lb, p*ext + inner.ub), so for the usual
                // inner types (lb 0, ub = ext) this is (0, total*ext). An
                // inner type with displaced bounds shifts both ends.
                let total: u64 = sizes.iter().product();
                if total == 0 {
                    return (0, 0);
                }
                let (ilb, iub) = inner.bounds();
                let ext = inner.extent() as i64;
                (ilb, (total as i64 - 1) * ext + iub)
            }
            Datatype::Resized { lb, extent, .. } => (*lb, *lb + *extent as i64),
        }
    }

    /// `(true_lb, true_ub)`: the tight bounds of the typemap itself,
    /// ignoring `Resized` adjustments (`MPI_Type_get_true_extent`). A
    /// buffer addressed from offset 0 must extend to at least
    /// `(count-1) * extent() + true_ub` to hold `count` instances.
    pub fn true_bounds(&self) -> (i64, i64) {
        match self {
            Datatype::Base(b) => (0, b.size() as i64),
            Datatype::Contiguous { count, inner } => {
                if *count == 0 {
                    return (0, 0);
                }
                let (tlb, tub) = inner.true_bounds();
                let e = inner.extent() as i64;
                (tlb, (*count as i64 - 1) * e + tub)
            }
            Datatype::Vector {
                count,
                blocklen,
                stride,
                inner,
            } => {
                let e = inner.extent() as i64;
                Self::strided_true_bounds(*count, *blocklen, *stride * e, e, inner.true_bounds())
            }
            Datatype::Hvector {
                count,
                blocklen,
                stride_bytes,
                inner,
            } => {
                let e = inner.extent() as i64;
                Self::strided_true_bounds(*count, *blocklen, *stride_bytes, e, inner.true_bounds())
            }
            Datatype::Indexed { blocks, inner } => {
                let e = inner.extent() as i64;
                Self::blocks_true_bounds(
                    blocks.iter().map(|&(d, l)| (d * e, l)),
                    e,
                    inner.true_bounds(),
                )
            }
            Datatype::Hindexed { blocks, inner } => {
                let e = inner.extent() as i64;
                Self::blocks_true_bounds(blocks.iter().copied(), e, inner.true_bounds())
            }
            Datatype::Struct { fields } => {
                let mut lb = i64::MAX;
                let mut ub = i64::MIN;
                for (off, count, t) in fields {
                    if *count == 0 {
                        continue;
                    }
                    let (tlb, tub) = t.true_bounds();
                    let e = t.extent() as i64;
                    lb = lb.min(off + tlb);
                    ub = ub.max(off + (*count as i64 - 1) * e + tub);
                }
                if lb == i64::MAX {
                    (0, 0)
                } else {
                    (lb, ub)
                }
            }
            Datatype::Subarray {
                sizes,
                subsizes,
                starts,
                inner,
            } => {
                let total: u64 = subsizes.iter().product();
                if total == 0 {
                    return (0, 0);
                }
                let (tlb, tub) = inner.true_bounds();
                let e = inner.extent() as i64;
                // First and last selected element in row-major order.
                let ndims = sizes.len();
                let mut strides = vec![1i64; ndims];
                for d in (0..ndims.saturating_sub(1)).rev() {
                    strides[d] = strides[d + 1] * sizes[d + 1] as i64;
                }
                let first: i64 = (0..ndims).map(|d| starts[d] as i64 * strides[d]).sum();
                let last: i64 = (0..ndims)
                    .map(|d| (starts[d] + subsizes[d] - 1) as i64 * strides[d])
                    .sum();
                (first * e + tlb, last * e + tub)
            }
            Datatype::Resized { inner, .. } => inner.true_bounds(),
        }
    }

    fn strided_true_bounds(
        count: usize,
        blocklen: usize,
        stride_bytes: i64,
        inner_extent: i64,
        (tlb, tub): (i64, i64),
    ) -> (i64, i64) {
        if count == 0 || blocklen == 0 {
            return (0, 0);
        }
        let mut lb = i64::MAX;
        let mut ub = i64::MIN;
        for i in [0i64, count as i64 - 1] {
            for j in [0i64, blocklen as i64 - 1] {
                let base = i * stride_bytes + j * inner_extent;
                lb = lb.min(base + tlb);
                ub = ub.max(base + tub);
            }
        }
        (lb, ub)
    }

    fn blocks_true_bounds(
        blocks: impl Iterator<Item = (i64, usize)>,
        inner_extent: i64,
        (tlb, tub): (i64, i64),
    ) -> (i64, i64) {
        let mut lb = i64::MAX;
        let mut ub = i64::MIN;
        let mut any = false;
        for (d, l) in blocks {
            if l == 0 {
                continue;
            }
            any = true;
            lb = lb.min(d + tlb);
            ub = ub.max(d + (l as i64 - 1) * inner_extent + tub);
        }
        if any {
            (lb, ub)
        } else {
            (0, 0)
        }
    }

    fn strided_bounds(
        count: usize,
        blocklen: usize,
        stride_bytes: i64,
        inner_extent: i64,
        inner_bounds: (i64, i64),
    ) -> (i64, i64) {
        if count == 0 || blocklen == 0 {
            return (0, 0);
        }
        let (ilb, _) = inner_bounds;
        let block_span = inner_extent * blocklen as i64;
        let mut lb = i64::MAX;
        let mut ub = i64::MIN;
        for i in [0i64, count as i64 - 1] {
            let start = i * stride_bytes;
            lb = lb.min(start + ilb);
            ub = ub.max(start + ilb + block_span);
        }
        (lb, ub)
    }

    fn blocks_bounds(
        blocks: impl Iterator<Item = (i64, usize)>,
        inner_extent: i64,
        inner_bounds: (i64, i64),
    ) -> (i64, i64) {
        let (ilb, _) = inner_bounds;
        let mut lb = i64::MAX;
        let mut ub = i64::MIN;
        let mut any = false;
        for (d, l) in blocks {
            if l == 0 {
                continue;
            }
            any = true;
            lb = lb.min(d + ilb);
            ub = ub.max(d + ilb + inner_extent * l as i64);
        }
        if any {
            (lb, ub)
        } else {
            (0, 0)
        }
    }

    /// True if the data described is one contiguous run starting at `lb` with
    /// no holes (so pack/unpack can be a single memcpy).
    pub fn is_contiguous(&self) -> bool {
        self.size() == self.extent()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_sizes() {
        assert_eq!(BaseType::U8.size(), 1);
        assert_eq!(BaseType::I16.size(), 2);
        assert_eq!(BaseType::F32.size(), 4);
        assert_eq!(BaseType::F64.size(), 8);
    }

    #[test]
    fn contiguous_size_extent() {
        let t = Datatype::contiguous(10, Datatype::double());
        assert_eq!(t.size(), 80);
        assert_eq!(t.extent(), 80);
        assert!(t.is_contiguous());
    }

    #[test]
    fn vector_size_and_extent() {
        // 3 blocks of 2 ints, stride 4 ints: |XX..|XX..|XX| -> extent 40 bytes
        let t = Datatype::vector(3, 2, 4, Datatype::int());
        assert_eq!(t.size(), 24);
        assert_eq!(t.extent(), (2 * 4 + 2 * 4 + 2 * 4 + 2 * 4 * 2) as u64);
        assert_eq!(t.extent(), 40);
        assert!(!t.is_contiguous());
    }

    #[test]
    fn hvector_matches_vector() {
        let v = Datatype::vector(3, 2, 4, Datatype::int());
        let h = Datatype::hvector(3, 2, 16, Datatype::int());
        assert_eq!(v.size(), h.size());
        assert_eq!(v.extent(), h.extent());
    }

    #[test]
    fn subarray_validation() {
        assert!(Datatype::subarray(&[4, 4], &[2, 2], &[3, 0], Datatype::byte()).is_err());
        assert!(Datatype::subarray(&[4], &[2, 2], &[0, 0], Datatype::byte()).is_err());
        let t = Datatype::subarray(&[4, 4], &[2, 2], &[1, 1], Datatype::byte()).unwrap();
        assert_eq!(t.size(), 4);
        assert_eq!(t.extent(), 16); // full array extent
    }

    #[test]
    fn indexed_bounds() {
        let t = Datatype::indexed(vec![(4, 2), (0, 1)], Datatype::int());
        assert_eq!(t.size(), 12);
        assert_eq!(t.bounds(), (0, 24));
    }

    #[test]
    fn struct_bounds() {
        let t = Datatype::structure(vec![(0, 1, Datatype::int()), (8, 2, Datatype::double())]);
        assert_eq!(t.size(), 4 + 16);
        assert_eq!(t.bounds(), (0, 24));
    }

    #[test]
    fn resized_overrides_extent() {
        let t = Datatype::resized(0, 32, Datatype::int());
        assert_eq!(t.size(), 4);
        assert_eq!(t.extent(), 32);
        assert!(!t.is_contiguous());
    }

    #[test]
    fn zero_count_types_are_empty() {
        let t = Datatype::contiguous(0, Datatype::double());
        assert_eq!(t.size(), 0);
        assert_eq!(t.extent(), 0);
        let v = Datatype::vector(0, 3, 5, Datatype::int());
        assert_eq!(v.extent(), 0);
    }

    #[test]
    fn negative_stride_vector_bounds() {
        // 2 blocks of 1 int, stride -2 ints: block 1 at byte -8.
        let t = Datatype::vector(2, 1, -2, Datatype::int());
        assert_eq!(t.bounds(), (-8, 4));
        assert_eq!(t.extent(), 12);
    }
}
