//! Lightweight nonblocking-request handles (`MPI_Request`-shaped).
//!
//! The simulated MPI runs ranks as threads and completes operations at
//! well-defined rendezvous points, so a request does not need to carry any
//! progress machinery — it is an opaque ticket identifying a queued
//! operation to the layer that queued it (PnetCDF's `iput`/`iget` queue,
//! drained by `wait`/`wait_all`).

use std::fmt;

/// An opaque handle to a queued nonblocking operation.
///
/// Handles are `Copy` tickets: completing the operation does not mutate the
/// handle, it removes the queue entry the handle names. The all-zero value
/// is reserved as [`Request::NULL`] (`MPI_REQUEST_NULL`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Request(u64);

impl Request {
    /// The null request (`MPI_REQUEST_NULL`): never names a queued operation.
    pub const NULL: Request = Request(0);

    /// Does this handle name no operation?
    pub fn is_null(self) -> bool {
        self.0 == 0
    }

    /// The raw ticket value (for queue keys and diagnostics).
    pub fn id(self) -> u64 {
        self.0
    }
}

impl fmt::Debug for Request {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_null() {
            f.write_str("Request::NULL")
        } else {
            write!(f, "Request({})", self.0)
        }
    }
}

/// Issues [`Request`] tickets with unique, monotonically increasing ids.
/// Ticket order is enqueue order, which queue-draining layers rely on for
/// deterministic conflict resolution (later request wins).
#[derive(Debug, Default)]
pub struct RequestTable {
    next: u64,
}

impl RequestTable {
    /// A table whose first ticket is `Request(1)`.
    pub fn new() -> RequestTable {
        RequestTable { next: 0 }
    }

    /// Issue the next ticket.
    pub fn issue(&mut self) -> Request {
        self.next += 1;
        Request(self.next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tickets_are_unique_and_ordered() {
        let mut t = RequestTable::new();
        let a = t.issue();
        let b = t.issue();
        assert!(!a.is_null());
        assert!(a < b);
        assert_ne!(a, b);
        assert_eq!(b.id(), 2);
    }

    #[test]
    fn null_is_null() {
        assert!(Request::NULL.is_null());
        assert_eq!(format!("{:?}", Request::NULL), "Request::NULL");
    }
}
