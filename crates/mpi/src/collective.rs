//! The collective rendezvous primitive.
//!
//! Every collective operation in this MPI reduces to one generic pattern:
//! all members of a communicator deposit per-destination byte parcels, the
//! *last* member to arrive runs a `finish` closure over the full deposit
//! matrix (this is where clocks are synchronized, costs are charged, and —
//! for collective I/O — the file system is driven deterministically), and
//! every member receives a shared `Arc` to the closure's result.
//!
//! The slot is generation-counted so it can be reused immediately: a rank
//! collects its result under the same lock acquisition in which it observes
//! the generation bump, so a later generation can never overwrite a result
//! that has not been read by everyone.

use parking_lot::{Condvar, Mutex};
use std::any::Any;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use crate::error::{MpiError, MpiResult};

/// The deposit matrix handed to `finish`: `deposits[src][dst]` is the parcel
/// rank `src` addressed to rank `dst` (collectives that are not personalized
/// deposit a single-element vector).
pub type Deposits = Vec<Vec<Vec<u8>>>;

struct CollState {
    gen: u64,
    arrived: usize,
    deposits: Vec<Option<Vec<Vec<u8>>>>,
    result: Option<Arc<dyn Any + Send + Sync>>,
}

/// Rendezvous state shared by the members of one communicator.
pub struct CollContext {
    /// Unique id; doubles as the communicator id for point-to-point matching.
    pub id: u64,
    size: usize,
    m: Mutex<CollState>,
    cv: Condvar,
    poisoned: Arc<AtomicBool>,
}

impl CollContext {
    pub(crate) fn new(id: u64, size: usize, poisoned: Arc<AtomicBool>) -> CollContext {
        CollContext {
            id,
            size,
            m: Mutex::new(CollState {
                gen: 0,
                arrived: 0,
                deposits: (0..size).map(|_| None).collect(),
                result: None,
            }),
            cv: Condvar::new(),
            poisoned,
        }
    }

    /// Number of members.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Wake all waiters so they can observe the poison flag.
    pub(crate) fn poison_notify(&self) {
        self.cv.notify_all();
    }

    /// Enter the collective as member `me`, depositing `parts` (one parcel
    /// per member; non-personalized collectives pass whatever shape `finish`
    /// expects). The last arriver runs `finish` on the complete deposit
    /// matrix; everyone gets an `Arc` of the result.
    ///
    /// All members must pass type-compatible `R` (SPMD discipline); a
    /// mismatch is a library bug and panics on downcast.
    pub fn rendezvous<R, F>(&self, me: usize, parts: Vec<Vec<u8>>, finish: F) -> MpiResult<Arc<R>>
    where
        R: Send + Sync + 'static,
        F: FnOnce(Deposits) -> R,
    {
        let mut g = self.m.lock();
        if self.poisoned.load(Ordering::SeqCst) {
            return Err(MpiError::Poisoned);
        }
        let my_gen = g.gen;
        assert!(
            g.deposits[me].is_none(),
            "rank {me} entered a collective twice concurrently"
        );
        g.deposits[me] = Some(parts);
        g.arrived += 1;

        if g.arrived == self.size {
            // Last arriver: run finish, publish, bump generation.
            let deposits: Deposits = g
                .deposits
                .iter_mut()
                .map(|d| d.take().expect("all deposits present"))
                .collect();
            let r = Arc::new(finish(deposits));
            g.result = Some(r.clone() as Arc<dyn Any + Send + Sync>);
            g.arrived = 0;
            g.gen = g.gen.wrapping_add(1);
            self.cv.notify_all();
            return Ok(r);
        }

        while g.gen == my_gen {
            if self.poisoned.load(Ordering::SeqCst) {
                return Err(MpiError::Poisoned);
            }
            self.cv.wait(&mut g);
        }
        let any = g.result.clone().expect("result published with gen bump");
        drop(g);
        any.downcast::<R>()
            .map_err(|_| MpiError::CollectiveMismatch("result type mismatch across ranks".into()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn ctx(n: usize) -> Arc<CollContext> {
        Arc::new(CollContext::new(0, n, Arc::new(AtomicBool::new(false))))
    }

    #[test]
    fn all_members_see_same_result() {
        let c = ctx(4);
        let outs: Vec<u64> = thread::scope(|s| {
            let hs: Vec<_> = (0..4)
                .map(|r| {
                    let c = c.clone();
                    s.spawn(move || {
                        let parts = vec![vec![r as u8]; 4];
                        let res = c
                            .rendezvous(r, parts, |deps| {
                                deps.iter().map(|d| d[0][0] as u64).sum::<u64>()
                            })
                            .unwrap();
                        *res
                    })
                })
                .collect();
            hs.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(outs, vec![6, 6, 6, 6]);
    }

    #[test]
    fn slot_is_reusable_across_rounds() {
        let c = ctx(3);
        let outs: Vec<Vec<u64>> = thread::scope(|s| {
            let hs: Vec<_> = (0..3)
                .map(|r| {
                    let c = c.clone();
                    s.spawn(move || {
                        let mut got = Vec::new();
                        for round in 0..50u64 {
                            let parts = vec![round.to_ne_bytes().to_vec(); 3];
                            let res = c
                                .rendezvous(r, parts, |deps| {
                                    deps.iter()
                                        .map(|d| u64::from_ne_bytes(d[0][..8].try_into().unwrap()))
                                        .sum::<u64>()
                                })
                                .unwrap();
                            got.push(*res);
                        }
                        got
                    })
                })
                .collect();
            hs.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for o in outs {
            let expect: Vec<u64> = (0..50).map(|r| r * 3).collect();
            assert_eq!(o, expect);
        }
    }

    #[test]
    fn poisoned_context_errors() {
        let flag = Arc::new(AtomicBool::new(true));
        let c = CollContext::new(0, 2, flag);
        assert!(matches!(
            c.rendezvous(0, vec![vec![], vec![]], |_| 0u8),
            Err(MpiError::Poisoned)
        ));
    }
}
