//! Error type for the MPI substrate.

use std::fmt;

/// Errors surfaced by the MPI layer.
///
/// Real MPI aborts on most errors; we return them so the upper layers
/// (MPI-IO, PnetCDF) can translate them into their own error codes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MpiError {
    /// A rank index was outside the communicator.
    InvalidRank { rank: i32, size: usize },
    /// A datatype did not describe the buffer it was applied to.
    Truncated { needed: usize, available: usize },
    /// A datatype constructor was given inconsistent arguments.
    InvalidDatatype(String),
    /// The world was poisoned: another rank panicked.
    Poisoned,
    /// Mismatched collective call (e.g. different byte counts at a bcast).
    CollectiveMismatch(String),
}

impl fmt::Display for MpiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MpiError::InvalidRank { rank, size } => {
                write!(f, "invalid rank {rank} for communicator of size {size}")
            }
            MpiError::Truncated { needed, available } => {
                write!(
                    f,
                    "message truncated: needed {needed} bytes, buffer has {available}"
                )
            }
            MpiError::InvalidDatatype(msg) => write!(f, "invalid datatype: {msg}"),
            MpiError::Poisoned => write!(f, "world poisoned: a peer rank panicked"),
            MpiError::CollectiveMismatch(msg) => write!(f, "collective mismatch: {msg}"),
        }
    }
}

impl std::error::Error for MpiError {}

/// Result alias for MPI operations.
pub type MpiResult<T> = Result<T, MpiError>;
