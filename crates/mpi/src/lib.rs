//! An in-process MPI substrate for the PnetCDF reproduction.
//!
//! The paper's PnetCDF is layered on MPI and MPI-IO. The `rsmpi` bindings
//! lack dependable collective MPI-IO, and a reproduction must in any case run
//! on one machine — so this crate provides MPI semantics with **ranks as
//! threads** inside one process:
//!
//! * [`runtime::run_world`] plays the role of `mpirun -np P`;
//! * [`comm::Comm`] is the communicator handle (`MPI_COMM_WORLD`, `dup`,
//!   `split`, point-to-point, and the predefined collectives);
//! * [`datatype::Datatype`] implements MPI derived datatypes, with
//!   [`mod@flatten`]-ing and [`mod@pack`]-ing exactly as a ROMIO-style MPI-IO
//!   consumes them;
//! * [`info::Info`] is `MPI_Info`, the hint mechanism PnetCDF extends.
//!
//! Data really moves between rank buffers (so upper layers are correct,
//! byte-for-byte), while time is charged to the virtual clocks of
//! [`hpc_sim`] (so performance results are deterministic).

pub mod collective;
pub mod comm;
pub mod datatype;
pub mod error;
pub mod flatten;
pub mod info;
pub mod op;
pub mod p2p;
pub mod pack;
pub mod request;
pub mod runtime;

pub use comm::{CollEnv, Comm};
pub use datatype::{BaseType, Datatype, Order};
pub use error::{MpiError, MpiResult};
pub use flatten::{flatten, flatten_n, Segment};
pub use info::Info;
pub use op::{ReduceOp, Reducible, Scalar};
pub use p2p::{Status, ANY_SOURCE, ANY_TAG};
pub use request::{Request, RequestTable};
pub use runtime::{run_world, WorldRun};
