//! Integration tests for communicator semantics: collectives, point-to-point,
//! dup/split, and virtual-clock behaviour, all run in multi-rank worlds.

use hpc_sim::{SimConfig, Time};
use pnetcdf_mpi::{run_world, ReduceOp, ANY_SOURCE, ANY_TAG};

fn cfg() -> SimConfig {
    SimConfig::test_small()
}

#[test]
fn barrier_synchronizes_clocks() {
    let run = run_world(4, cfg(), |c| {
        // Skew the clocks, then barrier.
        c.advance(Time::from_millis(c.rank() as u64));
        c.barrier().unwrap();
        c.now()
    });
    let t0 = run.results[0];
    assert!(run.results.iter().all(|&t| t == t0));
    assert!(t0 >= Time::from_millis(3));
}

#[test]
fn bcast_delivers_root_payload() {
    let run = run_world(5, cfg(), |c| {
        let mine = if c.rank() == 2 {
            vec![9, 8, 7]
        } else {
            Vec::new()
        };
        c.bcast_bytes(2, mine).unwrap()
    });
    for r in run.results {
        assert_eq!(r, vec![9, 8, 7]);
    }
}

#[test]
fn bcast_scalars_roundtrip() {
    let run = run_world(3, cfg(), |c| {
        let mine: Vec<f64> = if c.rank() == 0 {
            vec![1.5, -2.25, 1e300]
        } else {
            Vec::new()
        };
        c.bcast_scalars::<f64>(0, &mine).unwrap()
    });
    for r in run.results {
        assert_eq!(r, vec![1.5, -2.25, 1e300]);
    }
}

#[test]
fn allgather_collects_in_rank_order() {
    let run = run_world(6, cfg(), |c| {
        let all = c.allgather_bytes(vec![c.rank() as u8; c.rank()]).unwrap();
        all.iter().map(Vec::len).collect::<Vec<_>>()
    });
    for r in run.results {
        assert_eq!(r, vec![0, 1, 2, 3, 4, 5]);
    }
}

#[test]
fn alltoallv_transposes() {
    let n = 4;
    let run = run_world(n, cfg(), |c| {
        // Rank i sends [i, j] to rank j.
        let parts: Vec<Vec<u8>> = (0..n).map(|j| vec![c.rank() as u8, j as u8]).collect();
        c.alltoallv_bytes(parts).unwrap()
    });
    for (j, incoming) in run.results.iter().enumerate() {
        for (i, msg) in incoming.iter().enumerate() {
            assert_eq!(msg, &vec![i as u8, j as u8]);
        }
    }
}

#[test]
fn allreduce_sum_min_max() {
    let run = run_world(7, cfg(), |c| {
        let r = c.rank() as i64;
        let sum = c.allreduce_scalar(ReduceOp::Sum, r).unwrap();
        let min = c.allreduce_scalar(ReduceOp::Min, r - 3).unwrap();
        let max = c.allreduce_scalar(ReduceOp::Max, r).unwrap();
        (sum, min, max)
    });
    for (sum, min, max) in run.results {
        assert_eq!(sum, 21);
        assert_eq!(min, -3);
        assert_eq!(max, 6);
    }
}

#[test]
fn allreduce_elementwise_vector() {
    let run = run_world(3, cfg(), |c| {
        let vals = vec![c.rank() as u64, 10 + c.rank() as u64];
        c.allreduce(ReduceOp::Max, &vals).unwrap()
    });
    for r in run.results {
        assert_eq!(r, vec![2, 12]);
    }
}

#[test]
fn reduce_delivers_to_root_only() {
    let run = run_world(5, cfg(), |c| {
        c.reduce(2, ReduceOp::Sum, &[c.rank() as i64, 1]).unwrap()
    });
    assert!(run.results[0].is_none());
    assert_eq!(run.results[2].as_ref().unwrap(), &vec![10, 5]);
    assert!(run.results[4].is_none());
}

#[test]
fn gatherv_only_root_receives() {
    let run = run_world(4, cfg(), |c| {
        c.gatherv_bytes(1, vec![c.rank() as u8]).unwrap()
    });
    assert!(run.results[0].is_none());
    assert_eq!(
        run.results[1].as_ref().unwrap(),
        &vec![vec![0u8], vec![1], vec![2], vec![3]]
    );
    assert!(run.results[2].is_none());
}

#[test]
fn scatterv_distributes() {
    let run = run_world(3, cfg(), |c| {
        let parts = if c.rank() == 0 {
            Some(vec![vec![0u8], vec![1, 1], vec![2, 2, 2]])
        } else {
            None
        };
        c.scatterv_bytes(0, parts).unwrap()
    });
    assert_eq!(run.results[0], vec![0]);
    assert_eq!(run.results[1], vec![1, 1]);
    assert_eq!(run.results[2], vec![2, 2, 2]);
}

#[test]
fn exscan_sum_prefixes() {
    let run = run_world(4, cfg(), |c| {
        c.exscan_sum(10 * (c.rank() as u64 + 1)).unwrap()
    });
    assert_eq!(run.results[0], (0, 100));
    assert_eq!(run.results[1], (10, 100));
    assert_eq!(run.results[2], (30, 100));
    assert_eq!(run.results[3], (60, 100));
}

#[test]
fn p2p_ring() {
    let n = 5;
    let run = run_world(n, cfg(), |c| {
        let next = (c.rank() + 1) % n;
        let prev = (c.rank() + n - 1) % n;
        c.send_bytes(next, 42, vec![c.rank() as u8]).unwrap();
        let (data, st) = c.recv_bytes(prev as i32, 42).unwrap();
        assert_eq!(st.source, prev);
        assert_eq!(st.tag, 42);
        data[0]
    });
    assert_eq!(run.results, vec![4, 0, 1, 2, 3]);
}

#[test]
fn p2p_wildcards_and_probe() {
    let run = run_world(2, cfg(), |c| {
        if c.rank() == 0 {
            c.send_scalars::<u32>(1, 7, &[123, 456]).unwrap();
            0
        } else {
            // Spin until probe sees the message (sender may lag in wall time).
            let st = loop {
                if let Some(st) = c.probe(ANY_SOURCE, ANY_TAG) {
                    break st;
                }
                std::thread::yield_now();
            };
            assert_eq!(st.len, 8);
            let (vals, st) = c.recv_scalars::<u32>(ANY_SOURCE, ANY_TAG).unwrap();
            assert_eq!(st.source, 0);
            assert_eq!(vals, vec![123, 456]);
            1
        }
    });
    assert_eq!(run.results, vec![0, 1]);
}

#[test]
fn recv_advances_clock_past_send() {
    let run = run_world(2, cfg(), |c| {
        if c.rank() == 0 {
            c.advance(Time::from_millis(50));
            c.send_bytes(1, 0, vec![0; 1000]).unwrap();
        } else {
            let _ = c.recv_bytes(0, 0).unwrap();
            assert!(c.now() > Time::from_millis(50));
        }
        c.now()
    });
    assert!(run.makespan >= run.results[1]);
}

#[test]
fn dup_isolates_traffic() {
    let run = run_world(2, cfg(), |c| {
        let c2 = c.dup().unwrap();
        if c.rank() == 0 {
            // Same tag on both communicators; receiver must match per-comm.
            c.send_bytes(1, 5, vec![1]).unwrap();
            c2.send_bytes(1, 5, vec![2]).unwrap();
            (0, 0)
        } else {
            let (on_dup, _) = c2.recv_bytes(0, 5).unwrap();
            let (on_orig, _) = c.recv_bytes(0, 5).unwrap();
            (on_orig[0], on_dup[0])
        }
    });
    assert_eq!(run.results[1], (1, 2));
}

#[test]
fn split_forms_subgroups() {
    let run = run_world(6, cfg(), |c| {
        let color = (c.rank() % 2) as i64;
        let sub = c.split(color, c.rank() as i64).unwrap().unwrap();
        let members = sub.allgather_scalar::<u64>(c.rank() as u64).unwrap();
        (sub.rank(), sub.size(), members)
    });
    // Evens: world ranks 0,2,4; odds: 1,3,5.
    assert_eq!(run.results[0], (0, 3, vec![0, 2, 4]));
    assert_eq!(run.results[3], (1, 3, vec![1, 3, 5]));
    assert_eq!(run.results[5], (2, 3, vec![1, 3, 5]));
}

#[test]
fn split_undefined_color_returns_none() {
    let run = run_world(3, cfg(), |c| {
        let color = if c.rank() == 0 { -1 } else { 0 };
        c.split(color, 0).unwrap().is_none()
    });
    assert_eq!(run.results, vec![true, false, false]);
}

#[test]
fn split_key_reorders() {
    let run = run_world(4, cfg(), |c| {
        // All one color; key reverses the rank order.
        let sub = c.split(0, -(c.rank() as i64)).unwrap().unwrap();
        sub.rank()
    });
    assert_eq!(run.results, vec![3, 2, 1, 0]);
}

#[test]
fn stats_count_messages_and_collectives() {
    let run = run_world(3, cfg(), |c| {
        c.barrier().unwrap();
        if c.rank() == 0 {
            c.send_bytes(1, 0, vec![0; 64]).unwrap();
        }
        if c.rank() == 1 {
            let _ = c.recv_bytes(0, 0).unwrap();
        }
        c.barrier().unwrap();
    });
    assert_eq!(run.stats.messages, 1);
    assert_eq!(run.stats.message_bytes, 64);
    // Each rank counts its entry into each of 2 barriers.
    assert_eq!(run.stats.collectives, 6);
}

#[test]
fn makespan_is_max_clock() {
    let run = run_world(4, cfg(), |c| {
        c.advance(Time::from_millis(c.rank() as u64 * 10));
    });
    assert_eq!(run.makespan, Time::from_millis(30));
    assert_eq!(run.clocks.len(), 4);
}

#[test]
fn large_world_collectives() {
    // Exercise the rendezvous machinery with many ranks (the FLASH bench
    // runs up to 512).
    let run = run_world(64, cfg(), |c| {
        let sum = c.allreduce_scalar(ReduceOp::Sum, 1u64).unwrap();
        c.barrier().unwrap();
        sum
    });
    assert!(run.results.iter().all(|&s| s == 64));
}
