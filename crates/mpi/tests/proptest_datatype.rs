//! Property-based tests of the datatype machinery: flattening invariants
//! and pack/unpack inversion for randomly generated derived datatypes.

use proptest::prelude::*;

use pnetcdf_mpi::{flatten, pack, BaseType, Datatype};

fn arb_base() -> impl Strategy<Value = Datatype> {
    prop_oneof![
        Just(Datatype::Base(BaseType::U8)),
        Just(Datatype::Base(BaseType::I16)),
        Just(Datatype::Base(BaseType::I32)),
        Just(Datatype::Base(BaseType::F64)),
    ]
}

/// Random derived datatypes with non-negative displacements (the file-view
/// compatible family), bounded in size.
fn arb_datatype() -> impl Strategy<Value = Datatype> {
    let leaf = arb_base();
    leaf.prop_recursive(3, 64, 8, |inner| {
        prop_oneof![
            (1usize..5, inner.clone()).prop_map(|(n, t)| Datatype::contiguous(n, t)),
            (1usize..4, 1usize..4, 0i64..4, inner.clone()).prop_map(|(c, b, extra, t)| {
                // stride >= blocklen keeps displacements non-negative and
                // non-overlapping.
                Datatype::vector(c, b, b as i64 + extra, t)
            }),
            proptest::collection::vec((0i64..16, 1usize..3), 1..4).prop_flat_map({
                let inner = inner.clone();
                move |mut blocks| {
                    // Sort and strictly separate the blocks.
                    blocks.sort();
                    let mut next_free = 0i64;
                    for (d, l) in blocks.iter_mut() {
                        if *d < next_free {
                            *d = next_free;
                        }
                        next_free = *d + *l as i64;
                    }
                    inner
                        .clone()
                        .prop_map(move |t| Datatype::indexed(blocks.clone(), t))
                }
            }),
            (1u64..64, inner.clone()).prop_map(|(extra, t)| {
                let ext = t.extent() + extra;
                Datatype::resized(0, ext, t)
            }),
            (1u64..5, 1u64..5, inner).prop_map(|(rows, cols, t)| {
                let sub_r = 1 + rows / 2;
                let sub_c = 1 + cols / 2;
                Datatype::subarray(
                    &[rows + 2, cols + 2],
                    &[sub_r, sub_c],
                    &[rows + 2 - sub_r, cols + 2 - sub_c],
                    t,
                )
                .unwrap()
            }),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn flatten_total_equals_size(t in arb_datatype()) {
        let segs = flatten::flatten(&t);
        let total: u64 = segs.iter().map(|s| s.len).sum();
        prop_assert_eq!(total, t.size());
    }

    #[test]
    fn flatten_stays_within_true_bounds(t in arb_datatype()) {
        // true_bounds is computed recursively, flatten iteratively — two
        // independent calculations that must agree on the envelope.
        let (lb, ub) = t.true_bounds();
        for s in flatten::flatten(&t) {
            prop_assert!(s.offset >= lb, "segment {s:?} below true lb {lb}");
            prop_assert!(s.end() <= ub, "segment {s:?} above true ub {ub}");
        }
    }

    #[test]
    fn true_bounds_are_tight(t in arb_datatype()) {
        let segs = flatten::flatten(&t);
        if segs.is_empty() {
            return Ok(());
        }
        let (lb, ub) = t.true_bounds();
        let min = segs.iter().map(|s| s.offset).min().unwrap();
        let max = segs.iter().map(|s| s.end()).max().unwrap();
        prop_assert_eq!(lb, min);
        prop_assert_eq!(ub, max);
    }

    #[test]
    fn flatten_is_coalesced(t in arb_datatype()) {
        let segs = flatten::flatten(&t);
        for w in segs.windows(2) {
            prop_assert!(
                w[0].end() != w[1].offset,
                "adjacent segments not merged: {:?}",
                w
            );
        }
    }

    #[test]
    fn contiguous_iff_single_segment_spanning(t in arb_datatype()) {
        let segs = flatten::flatten(&t);
        if t.is_contiguous() && t.size() > 0 {
            prop_assert_eq!(segs.len(), 1);
            prop_assert_eq!(segs[0].len, t.size());
        }
    }

    #[test]
    fn pack_unpack_roundtrip(t in arb_datatype(), count in 1usize..4) {
        // The generated family has lb >= 0, so a buffer of count*extent
        // bytes addressed from 0 is always sufficient.
        let (lb, ub) = t.true_bounds();
        prop_assume!(lb >= 0);
        // The last instance is shifted by (count-1)*extent; its typemap
        // reaches up to true_ub beyond that.
        let buflen = (t.extent() as usize) * (count - 1) + ub.max(0) as usize + 8;
        let src: Vec<u8> = (0..buflen).map(|i| (i * 131 % 251) as u8).collect();

        let packed = pack::pack(&src, count, &t).unwrap();
        prop_assert_eq!(packed.len() as u64, t.size() * count as u64);

        let mut dst = vec![0u8; buflen];
        let used = pack::unpack(&packed, &mut dst, count, &t).unwrap();
        prop_assert_eq!(used, packed.len());

        // Unpacked bytes agree with the source exactly on the typemap.
        let segs = flatten::flatten_n(&t, count);
        for s in &segs {
            let lo = s.offset as usize;
            let hi = lo + s.len as usize;
            prop_assert_eq!(&dst[lo..hi], &src[lo..hi]);
        }
        // And are zero off the typemap.
        let mut on_map = vec![false; buflen];
        for s in &segs {
            let (lo, hi) = (s.offset as usize, (s.offset + s.len as i64) as usize);
            on_map[lo..hi].fill(true);
        }
        for (i, &b) in dst.iter().enumerate() {
            if !on_map[i] {
                prop_assert_eq!(b, 0, "byte {} written outside the typemap", i);
            }
        }
    }

    #[test]
    fn extent_is_at_least_size_for_nonneg_lb(t in arb_datatype()) {
        let (lb, _) = t.bounds();
        prop_assume!(lb >= 0);
        prop_assert!(t.extent() >= t.size());
    }
}
