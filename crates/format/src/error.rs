//! Errors of the format codec.

use std::fmt;

/// Errors raised while encoding/decoding netCDF classic files.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FormatError {
    /// The file does not begin with `CDF`.
    BadMagic,
    /// Unknown version byte.
    UnsupportedVersion(u8),
    /// Structurally invalid content (truncated, bad tag, bad count...).
    Corrupt(String),
    /// An invalid netCDF name.
    BadName(String),
    /// Invalid definition (duplicate name, bad dimension id, ...).
    InvalidDefinition(String),
    /// A value does not fit the target external type (`NC_ERANGE`).
    Range(String),
    /// A fixed-size variable exceeds what the format version can address.
    TooLarge(String),
}

impl fmt::Display for FormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FormatError::BadMagic => write!(f, "not a netCDF file (bad magic)"),
            FormatError::UnsupportedVersion(v) => {
                write!(f, "unsupported netCDF version byte {v}")
            }
            FormatError::Corrupt(msg) => write!(f, "corrupt netCDF file: {msg}"),
            FormatError::BadName(msg) => write!(f, "invalid netCDF name: {msg}"),
            FormatError::InvalidDefinition(msg) => write!(f, "invalid definition: {msg}"),
            FormatError::Range(msg) => write!(f, "value out of range (NC_ERANGE): {msg}"),
            FormatError::TooLarge(msg) => write!(f, "object too large for format: {msg}"),
        }
    }
}

impl std::error::Error for FormatError {}

/// Result alias for format operations.
pub type FormatResult<T> = Result<T, FormatError>;
