//! Variables: named typed multidimensional arrays.

use crate::attr::{self, Attr};
use crate::error::{FormatError, FormatResult};
use crate::name;
use crate::types::NcType;
use crate::xdr::{Reader, Writer};
use crate::Version;

/// A variable definition, including its layout fields (`vsize`, `begin`)
/// once [`crate::layout`] has run.
#[derive(Clone, Debug, PartialEq)]
pub struct Var {
    /// Variable name.
    pub name: String,
    /// Dimension ids, most significant first. A variable whose first
    /// dimension is the unlimited dimension is a *record variable*.
    pub dimids: Vec<usize>,
    /// Per-variable attributes.
    pub atts: Vec<Attr>,
    /// External type.
    pub nctype: NcType,
    /// Bytes of one "chunk" of this variable: the whole array for fixed
    /// variables, one record for record variables (padded per the spec).
    pub vsize: u64,
    /// Starting byte offset of the variable's data (for record variables:
    /// of its part within the first record).
    pub begin: u64,
}

impl Var {
    /// Create a validated, not-yet-laid-out variable.
    pub fn new(name: &str, nctype: NcType, dimids: Vec<usize>) -> FormatResult<Var> {
        name::validate(name)?;
        Ok(Var {
            name: name.to_string(),
            dimids,
            atts: Vec::new(),
            nctype,
            vsize: 0,
            begin: 0,
        })
    }

    /// Number of dimensions.
    pub fn ndims(&self) -> usize {
        self.dimids.len()
    }

    pub(crate) fn encode(&self, w: &mut Writer, version: Version) {
        w.put_name(&self.name);
        w.put_u32(self.dimids.len() as u32);
        for &d in &self.dimids {
            w.put_u32(d as u32);
        }
        attr::encode_list(&self.atts, w);
        w.put_u32(self.nctype.code());
        // vsize is capped at the u32 "don't care" ceiling for huge variables
        // (netCDF spec: readers must not rely on it in that case).
        w.put_u32(self.vsize.min(u32::MAX as u64) as u32);
        match version {
            Version::Cdf1 => w.put_u32(self.begin as u32),
            Version::Cdf2 => w.put_u64(self.begin),
        }
    }

    pub(crate) fn decode(r: &mut Reader<'_>, version: Version) -> FormatResult<Var> {
        let name = r.get_name()?;
        let ndims = r.get_u32()? as usize;
        r.check_count(ndims, 4)?;
        let mut dimids = Vec::with_capacity(ndims);
        for _ in 0..ndims {
            dimids.push(r.get_u32()? as usize);
        }
        let atts = attr::decode_list(r)?;
        let nctype = NcType::from_code(r.get_u32()?)?;
        let vsize = r.get_u32()? as u64;
        let begin = match version {
            Version::Cdf1 => r.get_u32()? as u64,
            Version::Cdf2 => r.get_u64()?,
        };
        Ok(Var {
            name,
            dimids,
            atts,
            nctype,
            vsize,
            begin,
        })
    }
}

/// Encode a variable list (with the `NC_VARIABLE`/ABSENT tag).
pub(crate) fn encode_list(vars: &[Var], w: &mut Writer, version: Version) {
    if vars.is_empty() {
        w.put_u32(0);
        w.put_u32(0);
    } else {
        w.put_u32(0x0B); // NC_VARIABLE
        w.put_u32(vars.len() as u32);
        for v in vars {
            v.encode(w, version);
        }
    }
}

/// Decode a variable list.
pub(crate) fn decode_list(r: &mut Reader<'_>, version: Version) -> FormatResult<Vec<Var>> {
    let tag = r.get_u32()?;
    let n = r.get_u32()? as usize;
    match (tag, n) {
        (0, 0) => Ok(Vec::new()),
        (0x0B, _) => {
            // Smallest variable: name (4) + ndims (4) + attr tag/count (8)
            // + type (4) + vsize (4) + begin (4).
            r.check_count(n, 28)?;
            (0..n).map(|_| Var::decode(r, version)).collect()
        }
        _ => Err(FormatError::Corrupt(format!(
            "bad variable list tag {tag:#x} with count {n}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::AttrValue;

    #[test]
    fn roundtrip_both_versions() {
        let mut v = Var::new("tt", NcType::Float, vec![0, 1, 2]).unwrap();
        v.atts.push(Attr::text("units", "K").unwrap());
        v.vsize = 4096;
        v.begin = 1234;
        for version in [Version::Cdf1, Version::Cdf2] {
            let mut w = Writer::new();
            v.encode(&mut w, version);
            let bytes = w.into_bytes();
            let mut r = Reader::new(&bytes);
            assert_eq!(Var::decode(&mut r, version).unwrap(), v);
            assert_eq!(r.remaining(), 0);
        }
    }

    #[test]
    fn cdf2_begin_is_64_bit() {
        let mut v = Var::new("big", NcType::Double, vec![]).unwrap();
        v.begin = 5 * (1u64 << 32);
        let mut w = Writer::new();
        v.encode(&mut w, Version::Cdf2);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(Var::decode(&mut r, Version::Cdf2).unwrap().begin, v.begin);
    }

    #[test]
    fn list_roundtrip() {
        let vars = vec![
            Var::new("a", NcType::Int, vec![0]).unwrap(),
            Var::new("b", NcType::Char, vec![]).unwrap(),
        ];
        let mut w = Writer::new();
        encode_list(&vars, &mut w, Version::Cdf1);
        let mut r = Reader::new(w.into_bytes().leak());
        assert_eq!(decode_list(&mut r, Version::Cdf1).unwrap(), vars);
    }

    #[test]
    fn scalar_var_has_no_dims() {
        let v = Var::new("s", NcType::Double, vec![]).unwrap();
        assert_eq!(v.ndims(), 0);
        let _ = AttrValue::Int(vec![]); // silence unused import in cfgs
    }
}
