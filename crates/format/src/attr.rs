//! Attributes: typed metadata attached to the dataset or to variables.

use crate::error::{FormatError, FormatResult};
use crate::name;
use crate::types::NcType;
use crate::xdr::{Reader, Writer};

/// An attribute's typed values.
#[derive(Clone, Debug, PartialEq)]
pub enum AttrValue {
    Byte(Vec<i8>),
    /// Character data; netCDF text attributes.
    Char(String),
    Short(Vec<i16>),
    Int(Vec<i32>),
    Float(Vec<f32>),
    Double(Vec<f64>),
}

impl AttrValue {
    /// External type of the values.
    pub fn nc_type(&self) -> NcType {
        match self {
            AttrValue::Byte(_) => NcType::Byte,
            AttrValue::Char(_) => NcType::Char,
            AttrValue::Short(_) => NcType::Short,
            AttrValue::Int(_) => NcType::Int,
            AttrValue::Float(_) => NcType::Float,
            AttrValue::Double(_) => NcType::Double,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        match self {
            AttrValue::Byte(v) => v.len(),
            AttrValue::Char(s) => s.len(),
            AttrValue::Short(v) => v.len(),
            AttrValue::Int(v) => v.len(),
            AttrValue::Float(v) => v.len(),
            AttrValue::Double(v) => v.len(),
        }
    }

    /// True if there are no values.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A named attribute.
#[derive(Clone, Debug, PartialEq)]
pub struct Attr {
    /// Attribute name.
    pub name: String,
    /// Typed values.
    pub value: AttrValue,
}

impl Attr {
    /// Create a validated attribute.
    pub fn new(name: &str, value: AttrValue) -> FormatResult<Attr> {
        name::validate(name)?;
        Ok(Attr {
            name: name.to_string(),
            value,
        })
    }

    /// Text attribute convenience.
    pub fn text(name: &str, s: &str) -> FormatResult<Attr> {
        Attr::new(name, AttrValue::Char(s.to_string()))
    }

    pub(crate) fn encode(&self, w: &mut Writer) {
        w.put_name(&self.name);
        w.put_u32(self.value.nc_type().code());
        w.put_u32(self.value.len() as u32);
        match &self.value {
            AttrValue::Byte(v) => w.put_slice(v),
            AttrValue::Char(s) => w.put_bytes(s.as_bytes()),
            AttrValue::Short(v) => w.put_slice(v),
            AttrValue::Int(v) => w.put_slice(v),
            AttrValue::Float(v) => w.put_slice(v),
            AttrValue::Double(v) => w.put_slice(v),
        }
        w.align4();
    }

    pub(crate) fn decode(r: &mut Reader<'_>) -> FormatResult<Attr> {
        let name = r.get_name()?;
        let t = NcType::from_code(r.get_u32()?)?;
        let n = r.get_u32()? as usize;
        r.check_count(n, t.size() as usize)?;
        let value = match t {
            NcType::Byte => AttrValue::Byte(r.get_slice(n)?),
            NcType::Char => {
                let bytes = r.get_bytes(n)?.to_vec();
                AttrValue::Char(String::from_utf8(bytes).map_err(|_| {
                    FormatError::Corrupt("char attribute is not valid UTF-8".into())
                })?)
            }
            NcType::Short => AttrValue::Short(r.get_slice(n)?),
            NcType::Int => AttrValue::Int(r.get_slice(n)?),
            NcType::Float => AttrValue::Float(r.get_slice(n)?),
            NcType::Double => AttrValue::Double(r.get_slice(n)?),
        };
        r.align4()?;
        Ok(Attr { name, value })
    }
}

/// Encode an attribute list (with the `NC_ATTRIBUTE`/ABSENT tag).
pub(crate) fn encode_list(attrs: &[Attr], w: &mut Writer) {
    if attrs.is_empty() {
        w.put_u32(0); // ABSENT
        w.put_u32(0);
    } else {
        w.put_u32(0x0C); // NC_ATTRIBUTE
        w.put_u32(attrs.len() as u32);
        for a in attrs {
            a.encode(w);
        }
    }
}

/// Decode an attribute list.
pub(crate) fn decode_list(r: &mut Reader<'_>) -> FormatResult<Vec<Attr>> {
    let tag = r.get_u32()?;
    let n = r.get_u32()? as usize;
    match (tag, n) {
        (0, 0) => Ok(Vec::new()),
        (0x0C, _) => {
            // Smallest attribute: name (4) + type (4) + count (4).
            r.check_count(n, 12)?;
            (0..n).map(|_| Attr::decode(r)).collect()
        }
        _ => Err(FormatError::Corrupt(format!(
            "bad attribute list tag {tag:#x} with count {n}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(a: &Attr) {
        let mut w = Writer::new();
        a.encode(&mut w);
        let bytes = w.into_bytes();
        assert_eq!(bytes.len() % 4, 0, "attribute encoding must be aligned");
        let mut r = Reader::new(&bytes);
        assert_eq!(&Attr::decode(&mut r).unwrap(), a);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn roundtrip_all_types() {
        roundtrip(&Attr::new("b", AttrValue::Byte(vec![-1, 0, 1])).unwrap());
        roundtrip(&Attr::text("units", "degrees_celsius").unwrap());
        roundtrip(&Attr::new("s", AttrValue::Short(vec![-300, 300, 5])).unwrap());
        roundtrip(&Attr::new("i", AttrValue::Int(vec![i32::MIN, i32::MAX])).unwrap());
        roundtrip(&Attr::new("f", AttrValue::Float(vec![1.5, -2.5])).unwrap());
        roundtrip(&Attr::new("d", AttrValue::Double(vec![1e300])).unwrap());
        roundtrip(&Attr::new("empty", AttrValue::Int(vec![])).unwrap());
    }

    #[test]
    fn list_roundtrip_including_absent() {
        let attrs = vec![
            Attr::text("title", "x").unwrap(),
            Attr::new("range", AttrValue::Double(vec![0.0, 1.0])).unwrap(),
        ];
        let mut w = Writer::new();
        encode_list(&attrs, &mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(decode_list(&mut r).unwrap(), attrs);

        let mut w = Writer::new();
        encode_list(&[], &mut w);
        let bytes = w.into_bytes();
        assert_eq!(bytes, vec![0; 8]);
        let mut r = Reader::new(&bytes);
        assert!(decode_list(&mut r).unwrap().is_empty());
    }

    #[test]
    fn value_metadata() {
        let v = AttrValue::Short(vec![1, 2, 3]);
        assert_eq!(v.nc_type(), NcType::Short);
        assert_eq!(v.len(), 3);
        assert!(!v.is_empty());
    }
}
