//! The netCDF classic file format (CDF-1 and CDF-2), from scratch.
//!
//! PnetCDF's design premise (paper §4) is that it "retains the original
//! netCDF file format (version 3)": a single self-describing header followed
//! by flat array data — fixed-size variables laid out contiguously in
//! definition order, record variables interleaved record by record along the
//! unlimited dimension (paper Figure 1). This crate implements that format:
//!
//! * [`xdr`] — the XDR-like big-endian encoding with 4-byte alignment;
//! * [`swap`] — chunked, width-specialized byteswap kernels shared by the
//!   whole byte path (codec fast paths, fused pack/unpack);
//! * [`types`] — the six external types and native-value conversion;
//! * [`header`] — header encode/decode (dimensions, attributes, variables);
//! * [`layout`] — `vsize`/`begin`/record-size computation, i.e. exactly the
//!   variable→file-offset math PnetCDF uses to build MPI file views.
//!
//! CDF-2 (the 64-bit-offset variant introduced by the PnetCDF project) is
//! supported alongside CDF-1.

pub mod attr;
pub mod dim;
pub mod error;
pub mod header;
pub mod layout;
pub mod name;
pub mod swap;
pub mod types;
pub mod var;
pub mod xdr;

pub use attr::{Attr, AttrValue};
pub use dim::Dim;
pub use error::{FormatError, FormatResult};
pub use header::Header;
pub use layout::Layout;
pub use types::{NcType, NcValue};
pub use var::Var;

/// File format version.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Version {
    /// Classic format, 32-bit offsets (`CDF\x01`).
    Cdf1,
    /// 64-bit offset format (`CDF\x02`).
    Cdf2,
}

impl Version {
    /// The byte following the `CDF` magic.
    pub fn magic_byte(self) -> u8 {
        match self {
            Version::Cdf1 => 1,
            Version::Cdf2 => 2,
        }
    }

    /// Parse the version byte.
    pub fn from_magic_byte(b: u8) -> Option<Version> {
        match b {
            1 => Some(Version::Cdf1),
            2 => Some(Version::Cdf2),
            _ => None,
        }
    }
}

/// Marker for the unlimited (record) dimension's length in `def_dim`.
pub const NC_UNLIMITED: u64 = 0;
