//! The six external types of netCDF classic, and conversion to/from native
//! Rust values.
//!
//! External data is big-endian; the library converts between the in-memory
//! type the application uses and the external type of the variable, with
//! `NC_ERANGE` on overflow — the same semantics as netCDF-3's type layer.

use crate::error::{FormatError, FormatResult};

/// External (on-disk) data types (`nc_type`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum NcType {
    /// 8-bit signed integer (`NC_BYTE` = 1).
    Byte,
    /// 8-bit character (`NC_CHAR` = 2).
    Char,
    /// 16-bit signed integer (`NC_SHORT` = 3).
    Short,
    /// 32-bit signed integer (`NC_INT` = 4).
    Int,
    /// 32-bit IEEE float (`NC_FLOAT` = 5).
    Float,
    /// 64-bit IEEE float (`NC_DOUBLE` = 6).
    Double,
}

impl NcType {
    /// On-disk tag value.
    pub fn code(self) -> u32 {
        match self {
            NcType::Byte => 1,
            NcType::Char => 2,
            NcType::Short => 3,
            NcType::Int => 4,
            NcType::Float => 5,
            NcType::Double => 6,
        }
    }

    /// Parse an on-disk tag.
    pub fn from_code(c: u32) -> FormatResult<NcType> {
        Ok(match c {
            1 => NcType::Byte,
            2 => NcType::Char,
            3 => NcType::Short,
            4 => NcType::Int,
            5 => NcType::Float,
            6 => NcType::Double,
            _ => return Err(FormatError::Corrupt(format!("unknown nc_type {c}"))),
        })
    }

    /// Element size in bytes.
    pub fn size(self) -> u64 {
        match self {
            NcType::Byte | NcType::Char => 1,
            NcType::Short => 2,
            NcType::Int | NcType::Float => 4,
            NcType::Double => 8,
        }
    }

    /// Canonical name (for dumps).
    pub fn name(self) -> &'static str {
        match self {
            NcType::Byte => "byte",
            NcType::Char => "char",
            NcType::Short => "short",
            NcType::Int => "int",
            NcType::Float => "float",
            NcType::Double => "double",
        }
    }
}

/// A native Rust type usable as in-memory data for netCDF I/O.
///
/// `to_external` / `from_external` convert one element between the native
/// representation and the big-endian external representation of `ext`,
/// returning `NC_ERANGE` errors when a value cannot be represented.
pub trait NcValue: Copy + PartialEq + std::fmt::Debug + Send + Sync + 'static {
    /// The natural external type of this native type.
    const NATURAL: NcType;

    /// Convert to a double for range-checked cross-type conversion.
    fn as_f64(self) -> f64;
    /// Convert from a double, which is exact for every external type.
    fn from_f64(v: f64) -> FormatResult<Self>;

    /// Append the big-endian external bytes of a whole slice (natural type
    /// only). Each implementation is a monomorphic fixed-width loop the
    /// autovectorizer turns into a bulk byteswap, so the same-type encode
    /// path is one pass instead of a per-element trip through `f64`.
    fn slice_to_be(vals: &[Self], out: &mut Vec<u8>);

    /// Decode a whole slice of big-endian external elements of the natural
    /// type. `bytes.len()` must be a multiple of the element width.
    fn slice_from_be(bytes: &[u8]) -> Vec<Self>;
}

/// Generates the bulk big-endian slice codecs for a multi-byte primitive:
/// fixed-width `to_be_bytes`/`from_be_bytes` loops over `chunks_exact`, the
/// shape LLVM vectorizes into `pshufb`-style lane swaps.
macro_rules! bulk_be_codec {
    ($ty:ty) => {
        fn slice_to_be(vals: &[Self], out: &mut Vec<u8>) {
            const W: usize = std::mem::size_of::<$ty>();
            let start = out.len();
            out.resize(start + vals.len() * W, 0);
            for (v, c) in vals.iter().zip(out[start..].chunks_exact_mut(W)) {
                c.copy_from_slice(&v.to_be_bytes());
            }
        }
        fn slice_from_be(bytes: &[u8]) -> Vec<Self> {
            const W: usize = std::mem::size_of::<$ty>();
            debug_assert_eq!(bytes.len() % W, 0);
            bytes
                .chunks_exact(W)
                .map(|c| <$ty>::from_be_bytes(c.try_into().unwrap()))
                .collect()
        }
    };
}

fn range_err<T>(v: f64) -> FormatResult<T> {
    Err(FormatError::Range(format!("{v} does not fit target type")))
}

impl NcValue for i8 {
    const NATURAL: NcType = NcType::Byte;
    fn as_f64(self) -> f64 {
        self as f64
    }
    fn from_f64(v: f64) -> FormatResult<i8> {
        if !v.is_finite() || v < i8::MIN as f64 || v > i8::MAX as f64 {
            return range_err(v);
        }
        Ok(v as i8)
    }
    fn slice_to_be(vals: &[i8], out: &mut Vec<u8>) {
        out.extend(vals.iter().map(|&v| v as u8));
    }
    fn slice_from_be(bytes: &[u8]) -> Vec<i8> {
        bytes.iter().map(|&b| b as i8).collect()
    }
}

impl NcValue for u8 {
    const NATURAL: NcType = NcType::Char;
    fn as_f64(self) -> f64 {
        self as f64
    }
    fn from_f64(v: f64) -> FormatResult<u8> {
        if !v.is_finite() || v < 0.0 || v > u8::MAX as f64 {
            return range_err(v);
        }
        Ok(v as u8)
    }
    fn slice_to_be(vals: &[u8], out: &mut Vec<u8>) {
        out.extend_from_slice(vals);
    }
    fn slice_from_be(bytes: &[u8]) -> Vec<u8> {
        bytes.to_vec()
    }
}

impl NcValue for i16 {
    const NATURAL: NcType = NcType::Short;
    fn as_f64(self) -> f64 {
        self as f64
    }
    fn from_f64(v: f64) -> FormatResult<i16> {
        if !v.is_finite() || v < i16::MIN as f64 || v > i16::MAX as f64 {
            return range_err(v);
        }
        Ok(v as i16)
    }
    bulk_be_codec!(i16);
}

impl NcValue for i32 {
    const NATURAL: NcType = NcType::Int;
    fn as_f64(self) -> f64 {
        self as f64
    }
    fn from_f64(v: f64) -> FormatResult<i32> {
        if !v.is_finite() || v < i32::MIN as f64 || v > i32::MAX as f64 {
            return range_err(v);
        }
        Ok(v as i32)
    }
    bulk_be_codec!(i32);
}

impl NcValue for f32 {
    const NATURAL: NcType = NcType::Float;
    fn as_f64(self) -> f64 {
        self as f64
    }
    fn from_f64(v: f64) -> FormatResult<f32> {
        // netCDF converts double->float without an ERANGE check for
        // overflow-to-infinity; we mirror that (it clamps to +-inf).
        Ok(v as f32)
    }
    bulk_be_codec!(f32);
}

impl NcValue for f64 {
    const NATURAL: NcType = NcType::Double;
    fn as_f64(self) -> f64 {
        self
    }
    fn from_f64(v: f64) -> FormatResult<f64> {
        Ok(v)
    }
    bulk_be_codec!(f64);
}

/// Encode one external element (big-endian) from a double.
fn encode_one(ext: NcType, v: f64, out: &mut Vec<u8>) -> FormatResult<()> {
    match ext {
        NcType::Byte => out.push(i8::from_f64(v)? as u8),
        NcType::Char => out.push(u8::from_f64(v)?),
        NcType::Short => out.extend_from_slice(&i16::from_f64(v)?.to_be_bytes()),
        NcType::Int => out.extend_from_slice(&i32::from_f64(v)?.to_be_bytes()),
        NcType::Float => out.extend_from_slice(&(v as f32).to_be_bytes()),
        NcType::Double => out.extend_from_slice(&v.to_be_bytes()),
    }
    Ok(())
}

/// Decode one external element at `bytes` to a double.
fn decode_one(ext: NcType, bytes: &[u8]) -> f64 {
    match ext {
        NcType::Byte => bytes[0] as i8 as f64,
        NcType::Char => bytes[0] as f64,
        NcType::Short => i16::from_be_bytes([bytes[0], bytes[1]]) as f64,
        NcType::Int => i32::from_be_bytes(bytes[..4].try_into().unwrap()) as f64,
        NcType::Float => f32::from_be_bytes(bytes[..4].try_into().unwrap()) as f64,
        NcType::Double => f64::from_be_bytes(bytes[..8].try_into().unwrap()),
    }
}

/// NetCDF default fill values (`NC_FILL_*`), written into unwritten parts
/// of variables when fill mode is on.
pub fn default_fill_f64(t: NcType) -> f64 {
    match t {
        NcType::Byte => -127.0,
        NcType::Char => 0.0,
        NcType::Short => -32767.0,
        NcType::Int => -2147483647.0,
        NcType::Float => 9.969_21e36_f32 as f64,
        NcType::Double => 9.969209968386869e36,
    }
}

/// The big-endian external bytes of one fill element of type `t`, using
/// `value` (normally [`default_fill_f64`], or a `_FillValue` override).
pub fn fill_element_bytes(t: NcType, value: f64) -> Vec<u8> {
    let mut out = Vec::with_capacity(t.size() as usize);
    encode_one(t, value, &mut out).expect("fill values are representable");
    out
}

/// Convert native values to the external representation of `ext`.
///
/// When `ext` is the natural type of `T` this is one bulk byteswap pass
/// ([`NcValue::slice_to_be`]); cross-type conversion falls back to the
/// per-element trip through `f64` with range checks (netCDF-3 semantics).
pub fn to_external<T: NcValue>(vals: &[T], ext: NcType) -> FormatResult<Vec<u8>> {
    if ext == T::NATURAL {
        let mut out = Vec::new();
        T::slice_to_be(vals, &mut out);
        return Ok(out);
    }
    to_external_by_element(vals, ext)
}

/// The pre-kernel per-element encode path: every value goes through `f64`
/// and [`encode_one`], even for same-type conversion. Kept public as the
/// staged reference baseline for the microbench suite and the byte-identity
/// property tests; [`to_external`] only uses it for cross-type conversion.
pub fn to_external_by_element<T: NcValue>(vals: &[T], ext: NcType) -> FormatResult<Vec<u8>> {
    let mut out = Vec::with_capacity(vals.len() * ext.size() as usize);
    for &v in vals {
        encode_one(ext, v.as_f64(), &mut out)?;
    }
    Ok(out)
}

/// Convert external bytes of type `ext` into native values.
///
/// Same-type decode is one bulk byteswap pass ([`NcValue::slice_from_be`]);
/// cross-type falls back to the per-element `f64` path.
pub fn from_external<T: NcValue>(bytes: &[u8], ext: NcType) -> FormatResult<Vec<T>> {
    let esz = ext.size() as usize;
    if bytes.len() % esz != 0 {
        return Err(FormatError::Corrupt(format!(
            "external buffer length {} is not a multiple of element size {esz}",
            bytes.len()
        )));
    }
    if ext == T::NATURAL {
        return Ok(T::slice_from_be(bytes));
    }
    from_external_by_element(bytes, ext)
}

/// The pre-kernel per-element decode path (see [`to_external_by_element`]).
pub fn from_external_by_element<T: NcValue>(bytes: &[u8], ext: NcType) -> FormatResult<Vec<T>> {
    let esz = ext.size() as usize;
    if bytes.len() % esz != 0 {
        return Err(FormatError::Corrupt(format!(
            "external buffer length {} is not a multiple of element size {esz}",
            bytes.len()
        )));
    }
    bytes
        .chunks_exact(esz)
        .map(|c| T::from_f64(decode_one(ext, c)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_and_sizes() {
        for (t, c, s) in [
            (NcType::Byte, 1, 1),
            (NcType::Char, 2, 1),
            (NcType::Short, 3, 2),
            (NcType::Int, 4, 4),
            (NcType::Float, 5, 4),
            (NcType::Double, 6, 8),
        ] {
            assert_eq!(t.code(), c);
            assert_eq!(t.size(), s);
            assert_eq!(NcType::from_code(c).unwrap(), t);
        }
        assert!(NcType::from_code(99).is_err());
    }

    #[test]
    fn same_type_roundtrip() {
        let vals: Vec<i32> = vec![0, -1, i32::MIN, i32::MAX, 42];
        let ext = to_external(&vals, NcType::Int).unwrap();
        assert_eq!(ext.len(), 20);
        // Big-endian check on 42.
        assert_eq!(&ext[16..], &[0, 0, 0, 42]);
        let back: Vec<i32> = from_external(&ext, NcType::Int).unwrap();
        assert_eq!(back, vals);
    }

    #[test]
    fn double_roundtrip_exact() {
        let vals = vec![0.0f64, -1.5, 1e300, f64::MIN_POSITIVE];
        let ext = to_external(&vals, NcType::Double).unwrap();
        let back: Vec<f64> = from_external(&ext, NcType::Double).unwrap();
        assert_eq!(back, vals);
    }

    #[test]
    fn widening_conversion() {
        // i16 values written into an NC_INT variable.
        let vals: Vec<i16> = vec![-300, 0, 300];
        let ext = to_external(&vals, NcType::Int).unwrap();
        let back: Vec<i32> = from_external(&ext, NcType::Int).unwrap();
        assert_eq!(back, vec![-300, 0, 300]);
    }

    #[test]
    fn narrowing_conversion_range_checked() {
        let ok: Vec<i32> = vec![-128, 127];
        assert!(to_external(&ok, NcType::Byte).is_ok());
        let bad: Vec<i32> = vec![128];
        assert!(matches!(
            to_external(&bad, NcType::Byte),
            Err(FormatError::Range(_))
        ));
    }

    #[test]
    fn float_overflow_becomes_infinity() {
        // netCDF semantics: double -> float overflow clamps, no ERANGE.
        let vals = vec![1e300f64];
        let ext = to_external(&vals, NcType::Float).unwrap();
        let back: Vec<f32> = from_external(&ext, NcType::Float).unwrap();
        assert!(back[0].is_infinite());
    }

    #[test]
    fn read_int_as_double() {
        let vals: Vec<i32> = vec![7, -9];
        let ext = to_external(&vals, NcType::Int).unwrap();
        let back: Vec<f64> = from_external(&ext, NcType::Int).unwrap();
        assert_eq!(back, vec![7.0, -9.0]);
    }

    #[test]
    fn misaligned_external_buffer_errors() {
        assert!(from_external::<i32>(&[0, 1, 2], NcType::Int).is_err());
    }

    #[test]
    fn bulk_fast_path_matches_element_path() {
        fn check<T: NcValue>(vals: &[T]) {
            let fast = to_external(vals, T::NATURAL).unwrap();
            let slow = to_external_by_element(vals, T::NATURAL).unwrap();
            assert_eq!(fast, slow);
            let back: Vec<T> = from_external(&fast, T::NATURAL).unwrap();
            let back_slow: Vec<T> = from_external_by_element(&fast, T::NATURAL).unwrap();
            assert_eq!(back, vals);
            assert_eq!(back_slow, vals);
        }
        check::<i8>(&[-128, -1, 0, 1, 127]);
        check::<u8>(&[0, 1, 255]);
        check::<i16>(&[i16::MIN, -1, 0, 1, i16::MAX]);
        check::<i32>(&[i32::MIN, -1, 0, 1, i32::MAX]);
        check::<f32>(&[-1.5, 0.0, f32::MAX, f32::MIN_POSITIVE]);
        check::<f64>(&[-1.5, 0.0, 1e300, f64::MIN_POSITIVE]);
    }
}
