//! Chunked, width-specialized byteswap kernels for the XDR byte path.
//!
//! External netCDF data is big-endian; on a little-endian host every access
//! pays an endianness conversion over the whole payload. Converting
//! element-by-element (`chunks.iter().rev()`) defeats the autovectorizer,
//! so this module provides width-specialized kernels that process a slice
//! at a time as `u16`/`u32`/`u64` lane swaps — straight-line loops LLVM
//! turns into `pshufb`/`rev`-style vector code — making the conversion
//! memory-bandwidth-bound instead of shuffle-bound.
//!
//! Three shapes cover every caller on the put and get chains:
//!
//! * [`swap_inplace`] — convert a buffer that is already staged;
//! * [`swap_copy`] — convert *while* copying between two buffers (the
//!   fused gather/scatter passes use this so a byte is touched once);
//! * [`swap_to_vec`] — convert into a fresh allocation.
//!
//! Width 1 (`NC_BYTE`/`NC_CHAR`) is a no-op / plain memcpy fast path. On a
//! big-endian host every kernel degenerates to a copy.
//!
//! [`swap_bytewise`] keeps the old element-by-element loop as the reference
//! baseline: the microbench suite measures the kernels against it and the
//! property tests assert bit-identical output.

macro_rules! swap_lane_inplace {
    ($buf:expr, $ty:ty) => {{
        const W: usize = std::mem::size_of::<$ty>();
        for chunk in $buf.chunks_exact_mut(W) {
            let v = <$ty>::from_ne_bytes(chunk.try_into().unwrap()).swap_bytes();
            chunk.copy_from_slice(&v.to_ne_bytes());
        }
    }};
}

macro_rules! swap_lane_copy {
    ($src:expr, $dst:expr, $ty:ty) => {{
        const W: usize = std::mem::size_of::<$ty>();
        for (s, d) in $src.chunks_exact(W).zip($dst.chunks_exact_mut(W)) {
            let v = <$ty>::from_ne_bytes(s.try_into().unwrap()).swap_bytes();
            d.copy_from_slice(&v.to_ne_bytes());
        }
    }};
}

/// Swap element endianness in place. `width` must divide `buf.len()` and be
/// one of the external element widths (1, 2, 4, 8).
pub fn swap_inplace(buf: &mut [u8], width: usize) {
    debug_assert!(
        buf.len() % width.max(1) == 0,
        "buffer length {} is not a multiple of element width {width}",
        buf.len()
    );
    if cfg!(target_endian = "big") || width <= 1 || buf.is_empty() {
        return;
    }
    match width {
        2 => swap_lane_inplace!(buf, u16),
        4 => swap_lane_inplace!(buf, u32),
        8 => swap_lane_inplace!(buf, u64),
        _ => {
            for chunk in buf.chunks_exact_mut(width) {
                chunk.reverse();
            }
        }
    }
}

/// Copy `src` into `dst` (equal lengths), swapping element endianness on
/// the way — the fused convert-while-copying primitive of the gather and
/// scatter passes.
pub fn swap_copy(src: &[u8], dst: &mut [u8], width: usize) {
    debug_assert_eq!(src.len(), dst.len());
    debug_assert!(
        src.len() % width.max(1) == 0,
        "buffer length {} is not a multiple of element width {width}",
        src.len()
    );
    if cfg!(target_endian = "big") || width <= 1 {
        dst.copy_from_slice(src);
        return;
    }
    match width {
        2 => swap_lane_copy!(src, dst, u16),
        4 => swap_lane_copy!(src, dst, u32),
        8 => swap_lane_copy!(src, dst, u64),
        _ => {
            for (s, d) in src.chunks_exact(width).zip(dst.chunks_exact_mut(width)) {
                for (i, b) in s.iter().rev().enumerate() {
                    d[i] = *b;
                }
            }
        }
    }
}

/// Swap element endianness into a fresh buffer.
pub fn swap_to_vec(src: &[u8], width: usize) -> Vec<u8> {
    let mut out = vec![0u8; src.len()];
    swap_copy(src, &mut out, width);
    out
}

/// The pre-kernel reference: element-by-element byte reversal, exactly the
/// loop the byte path used before the chunked kernels. Kept (not dead
/// code) as the staged baseline for the microbench suite and the
/// byte-identity property tests.
pub fn swap_bytewise(src: &[u8], width: usize) -> Vec<u8> {
    assert!(
        src.len() % width.max(1) == 0,
        "buffer length {} is not a multiple of element width {width}",
        src.len()
    );
    if cfg!(target_endian = "big") || width <= 1 {
        return src.to_vec();
    }
    let mut out = Vec::with_capacity(src.len());
    for chunk in src.chunks_exact(width) {
        out.extend(chunk.iter().rev());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernels_match_bytewise_reference() {
        let src: Vec<u8> = (0..64u8).collect();
        for width in [1usize, 2, 4, 8] {
            let reference = swap_bytewise(&src, width);
            assert_eq!(swap_to_vec(&src, width), reference, "width {width}");
            let mut inplace = src.clone();
            swap_inplace(&mut inplace, width);
            assert_eq!(inplace, reference, "width {width} in place");
            let mut copied = vec![0u8; src.len()];
            swap_copy(&src, &mut copied, width);
            assert_eq!(copied, reference, "width {width} copy");
        }
    }

    #[test]
    fn swap_is_an_involution() {
        let src: Vec<u8> = (0..32u8).map(|i| i.wrapping_mul(37)).collect();
        for width in [2usize, 4, 8] {
            let mut buf = src.clone();
            swap_inplace(&mut buf, width);
            swap_inplace(&mut buf, width);
            assert_eq!(buf, src);
        }
    }

    #[test]
    fn width_one_is_identity() {
        let src = vec![1u8, 2, 3];
        assert_eq!(swap_to_vec(&src, 1), src);
    }

    #[test]
    fn matches_primitive_to_be_bytes() {
        let vals = [0x0102_0304u32, 0xdead_beef];
        let mut native = Vec::new();
        let mut expect = Vec::new();
        for v in vals {
            native.extend_from_slice(&v.to_ne_bytes());
            expect.extend_from_slice(&v.to_be_bytes());
        }
        assert_eq!(swap_to_vec(&native, 4), expect);
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn misaligned_bytewise_panics() {
        let _ = swap_bytewise(&[1, 2, 3], 4);
    }
}
