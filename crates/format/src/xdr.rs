//! XDR-like big-endian primitives with 4-byte alignment.
//!
//! NetCDF's on-disk encoding is "similar to XDR but extended to support
//! efficient storage of arrays of nonbyte data": all integers and floats are
//! big-endian, and variable-length items (names, attribute values) are
//! padded with zeros to 4-byte boundaries.

use crate::error::{FormatError, FormatResult};
use crate::types::NcValue;

/// Round `n` up to a multiple of 4.
pub fn pad4(n: u64) -> u64 {
    (n + 3) & !3
}

/// Append-only big-endian encoder.
#[derive(Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// New empty writer.
    pub fn new() -> Writer {
        Writer::default()
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Finish, returning the buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    pub fn put_i32(&mut self, v: i32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    pub fn put_i16(&mut self, v: i16) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    pub fn put_f32(&mut self, v: f32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Raw bytes, unpadded.
    pub fn put_bytes(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }

    /// A whole slice of elements in one bulk big-endian pass
    /// ([`NcValue::slice_to_be`]) instead of a per-element `put_*` loop.
    pub fn put_slice<T: NcValue>(&mut self, vals: &[T]) {
        T::slice_to_be(vals, &mut self.buf);
    }

    /// Zero-pad to the next 4-byte boundary.
    pub fn align4(&mut self) {
        while self.buf.len() % 4 != 0 {
            self.buf.push(0);
        }
    }

    /// A netCDF name: length + bytes + padding.
    pub fn put_name(&mut self, name: &str) {
        self.put_u32(name.len() as u32);
        self.put_bytes(name.as_bytes());
        self.align4();
    }
}

/// Cursor-based big-endian decoder.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wrap a byte buffer.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    /// Current cursor position.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Bound a decoded item count against the bytes actually remaining.
    /// Each item occupies at least `min_size` encoded bytes, so a count
    /// that could not possibly fit is rejected *before* any allocation is
    /// sized from it — a corrupt 32-bit count must never drive a
    /// multi-gigabyte `Vec::with_capacity`.
    pub fn check_count(&self, n: usize, min_size: usize) -> FormatResult<()> {
        match n.checked_mul(min_size.max(1)) {
            Some(need) if need <= self.remaining() => Ok(()),
            _ => Err(FormatError::Corrupt(format!(
                "count {n} of >={min_size}-byte items at offset {} exceeds the {} bytes remaining",
                self.pos,
                self.remaining()
            ))),
        }
    }

    fn take(&mut self, n: usize) -> FormatResult<&'a [u8]> {
        if self.remaining() < n {
            return Err(FormatError::Corrupt(format!(
                "truncated: wanted {n} bytes at offset {}, have {}",
                self.pos,
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub fn get_u8(&mut self) -> FormatResult<u8> {
        Ok(self.take(1)?[0])
    }

    pub fn get_u32(&mut self) -> FormatResult<u32> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub fn get_i32(&mut self) -> FormatResult<i32> {
        Ok(i32::from_be_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub fn get_u64(&mut self) -> FormatResult<u64> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn get_i16(&mut self) -> FormatResult<i16> {
        Ok(i16::from_be_bytes(self.take(2)?.try_into().unwrap()))
    }

    pub fn get_f32(&mut self) -> FormatResult<f32> {
        Ok(f32::from_be_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub fn get_f64(&mut self) -> FormatResult<f64> {
        Ok(f64::from_be_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Raw bytes, unpadded.
    pub fn get_bytes(&mut self, n: usize) -> FormatResult<&'a [u8]> {
        self.take(n)
    }

    /// Decode `n` elements in one bulk big-endian pass
    /// ([`NcValue::slice_from_be`]) instead of a per-element `get_*` loop.
    pub fn get_slice<T: NcValue>(&mut self, n: usize) -> FormatResult<Vec<T>> {
        let width = T::NATURAL.size() as usize;
        let need = n.checked_mul(width).ok_or_else(|| {
            FormatError::Corrupt(format!("element count {n} overflows byte length"))
        })?;
        Ok(T::slice_from_be(self.take(need)?))
    }

    /// Skip padding to the next 4-byte boundary.
    pub fn align4(&mut self) -> FormatResult<()> {
        let pad = (4 - self.pos % 4) % 4;
        self.take(pad)?;
        Ok(())
    }

    /// A netCDF name: length + bytes + padding.
    pub fn get_name(&mut self) -> FormatResult<String> {
        let len = self.get_u32()? as usize;
        let bytes = self.take(len)?.to_vec();
        self.align4()?;
        String::from_utf8(bytes).map_err(|_| FormatError::Corrupt("name is not valid UTF-8".into()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pad4_values() {
        assert_eq!(pad4(0), 0);
        assert_eq!(pad4(1), 4);
        assert_eq!(pad4(4), 4);
        assert_eq!(pad4(5), 8);
    }

    #[test]
    fn scalar_roundtrips_are_big_endian() {
        let mut w = Writer::new();
        w.put_u32(0x01020304);
        w.put_i32(-2);
        w.put_f64(2.5);
        w.put_i16(-300);
        w.put_f32(1.5);
        w.put_u64(0x0102030405060708);
        let bytes = w.into_bytes();
        assert_eq!(&bytes[..4], &[1, 2, 3, 4]);

        let mut r = Reader::new(&bytes);
        assert_eq!(r.get_u32().unwrap(), 0x01020304);
        assert_eq!(r.get_i32().unwrap(), -2);
        assert_eq!(r.get_f64().unwrap(), 2.5);
        assert_eq!(r.get_i16().unwrap(), -300);
        assert_eq!(r.get_f32().unwrap(), 1.5);
        assert_eq!(r.get_u64().unwrap(), 0x0102030405060708);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn name_roundtrip_pads() {
        let mut w = Writer::new();
        w.put_name("tt");
        // 4 (len) + 2 (chars) + 2 (padding)
        assert_eq!(w.len(), 8);
        let bytes = w.into_bytes();
        assert_eq!(&bytes[4..8], &[b't', b't', 0, 0]);
        let mut r = Reader::new(&bytes);
        assert_eq!(r.get_name().unwrap(), "tt");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn truncated_reads_error() {
        let mut r = Reader::new(&[1, 2]);
        assert!(matches!(r.get_u32(), Err(FormatError::Corrupt(_))));
    }

    #[test]
    fn align4_consumes_padding() {
        let mut r = Reader::new(&[9, 0, 0, 0, 7]);
        r.get_u8().unwrap();
        r.align4().unwrap();
        assert_eq!(r.get_u8().unwrap(), 7);
    }
}
