//! The netCDF file header: everything before the array data.
//!
//! ```text
//! header  = magic numrecs dim_list gatt_list var_list
//! magic   = 'C' 'D' 'F' version
//! ```
//!
//! The header is the only metadata in the file — the property PnetCDF
//! exploits by caching a copy on every process (paper §4.2.1).

use crate::attr::{self, Attr, AttrValue};
use crate::dim::Dim;
use crate::error::{FormatError, FormatResult};
use crate::types::NcType;
use crate::var::{self, Var};
use crate::xdr::{Reader, Writer};
use crate::Version;

/// Sentinel for "numrecs unknown" (streaming); we always write real counts
/// but accept the sentinel on read.
pub const STREAMING: u32 = u32::MAX;

/// An in-memory netCDF header.
#[derive(Clone, Debug, PartialEq)]
pub struct Header {
    /// Format version (CDF-1 or CDF-2).
    pub version: Version,
    /// Number of records written so far.
    pub numrecs: u64,
    /// Dimensions, in definition order (ids are indices).
    pub dims: Vec<Dim>,
    /// Global attributes.
    pub gatts: Vec<Attr>,
    /// Variables, in definition order (ids are indices).
    pub vars: Vec<Var>,
}

impl Header {
    /// An empty header.
    pub fn new(version: Version) -> Header {
        Header {
            version,
            numrecs: 0,
            dims: Vec::new(),
            gatts: Vec::new(),
            vars: Vec::new(),
        }
    }

    // ---- definition ---------------------------------------------------------

    /// Define a dimension; returns its id. `len == 0` defines the unlimited
    /// dimension (at most one).
    pub fn add_dim(&mut self, name: &str, len: u64) -> FormatResult<usize> {
        if self.dims.iter().any(|d| d.name == name) {
            return Err(FormatError::InvalidDefinition(format!(
                "dimension '{name}' already defined"
            )));
        }
        if len == 0 && self.unlimited_dim().is_some() {
            return Err(FormatError::InvalidDefinition(
                "only one unlimited dimension is allowed".into(),
            ));
        }
        self.dims.push(Dim::new(name, len)?);
        Ok(self.dims.len() - 1)
    }

    /// Define a variable; returns its id. The unlimited dimension, if used,
    /// must be the first (most significant) dimension.
    pub fn add_var(&mut self, name: &str, nctype: NcType, dimids: &[usize]) -> FormatResult<usize> {
        if self.vars.iter().any(|v| v.name == name) {
            return Err(FormatError::InvalidDefinition(format!(
                "variable '{name}' already defined"
            )));
        }
        for (i, &d) in dimids.iter().enumerate() {
            let dim = self.dims.get(d).ok_or_else(|| {
                FormatError::InvalidDefinition(format!("variable '{name}': bad dimension id {d}"))
            })?;
            if dim.is_unlimited() && i != 0 {
                return Err(FormatError::InvalidDefinition(format!(
                    "variable '{name}': unlimited dimension must be the first dimension"
                )));
            }
        }
        self.vars.push(Var::new(name, nctype, dimids.to_vec())?);
        Ok(self.vars.len() - 1)
    }

    /// Add or replace a global attribute.
    pub fn put_gatt(&mut self, name: &str, value: AttrValue) -> FormatResult<()> {
        let a = Attr::new(name, value)?;
        if let Some(slot) = self.gatts.iter_mut().find(|x| x.name == name) {
            *slot = a;
        } else {
            self.gatts.push(a);
        }
        Ok(())
    }

    /// Add or replace a variable attribute.
    pub fn put_vatt(&mut self, varid: usize, name: &str, value: AttrValue) -> FormatResult<()> {
        let a = Attr::new(name, value)?;
        let v = self
            .vars
            .get_mut(varid)
            .ok_or_else(|| FormatError::InvalidDefinition(format!("bad variable id {varid}")))?;
        if let Some(slot) = v.atts.iter_mut().find(|x| x.name == name) {
            *slot = a;
        } else {
            v.atts.push(a);
        }
        Ok(())
    }

    // ---- inquiry --------------------------------------------------------------

    /// Id of the unlimited dimension, if defined.
    pub fn unlimited_dim(&self) -> Option<usize> {
        self.dims.iter().position(Dim::is_unlimited)
    }

    /// Look up a dimension id by name.
    pub fn dim_id(&self, name: &str) -> Option<usize> {
        self.dims.iter().position(|d| d.name == name)
    }

    /// Look up a variable id by name.
    pub fn var_id(&self, name: &str) -> Option<usize> {
        self.vars.iter().position(|v| v.name == name)
    }

    /// Is `varid` a record variable (first dimension unlimited)?
    pub fn is_record_var(&self, varid: usize) -> bool {
        self.vars[varid]
            .dimids
            .first()
            .is_some_and(|&d| self.dims[d].is_unlimited())
    }

    /// The shape of a variable, with the record dimension reported as the
    /// current `numrecs`.
    pub fn var_shape(&self, varid: usize) -> Vec<u64> {
        self.vars[varid]
            .dimids
            .iter()
            .map(|&d| {
                if self.dims[d].is_unlimited() {
                    self.numrecs
                } else {
                    self.dims[d].len
                }
            })
            .collect()
    }

    /// The shape of one record (or the whole array for fixed variables):
    /// the record dimension is excluded.
    pub fn record_shape(&self, varid: usize) -> Vec<u64> {
        let v = &self.vars[varid];
        let skip = usize::from(self.is_record_var(varid));
        v.dimids[skip..].iter().map(|&d| self.dims[d].len).collect()
    }

    /// Number of elements in one record (or the whole fixed array).
    pub fn record_elems(&self, varid: usize) -> u64 {
        self.record_shape(varid).iter().product()
    }

    // ---- codec ---------------------------------------------------------------

    /// Encode the complete header.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_bytes(b"CDF");
        w.put_u8(self.version.magic_byte());
        w.put_u32(self.numrecs.min(STREAMING as u64 - 1) as u32);
        // dim_list
        if self.dims.is_empty() {
            w.put_u32(0);
            w.put_u32(0);
        } else {
            w.put_u32(0x0A); // NC_DIMENSION
            w.put_u32(self.dims.len() as u32);
            for d in &self.dims {
                d.encode(&mut w);
            }
        }
        attr::encode_list(&self.gatts, &mut w);
        var::encode_list(&self.vars, &mut w, self.version);
        w.into_bytes()
    }

    /// Size in bytes of the encoded header.
    pub fn encoded_len(&self) -> u64 {
        self.encode().len() as u64
    }

    /// Decode a header from the start of `bytes`. Returns the header and
    /// the number of bytes it occupied.
    pub fn decode(bytes: &[u8]) -> FormatResult<(Header, usize)> {
        let mut r = Reader::new(bytes);
        let magic = r.get_bytes(3)?;
        if magic != b"CDF" {
            return Err(FormatError::BadMagic);
        }
        let vb = r.get_u8()?;
        let version = Version::from_magic_byte(vb).ok_or(FormatError::UnsupportedVersion(vb))?;
        let numrecs_raw = r.get_u32()?;
        let numrecs = if numrecs_raw == STREAMING {
            0
        } else {
            numrecs_raw as u64
        };
        // dim_list
        let tag = r.get_u32()?;
        let n = r.get_u32()? as usize;
        let dims = match (tag, n) {
            (0, 0) => Vec::new(),
            (0x0A, _) => {
                // Smallest dimension: name (4) + length (4).
                r.check_count(n, 8)?;
                (0..n)
                    .map(|_| Dim::decode(&mut r))
                    .collect::<FormatResult<Vec<_>>>()?
            }
            _ => {
                return Err(FormatError::Corrupt(format!(
                    "bad dimension list tag {tag:#x} with count {n}"
                )))
            }
        };
        let gatts = attr::decode_list(&mut r)?;
        let vars = var::decode_list(&mut r, version)?;
        // Every dimension id must resolve: the accessors index `dims`
        // directly, so a dangling id from a corrupt file must be caught
        // here. The unlimited dimension may only lead a shape (the classic
        // format stores record slabs along the *first* dimension).
        for v in &vars {
            for (i, &d) in v.dimids.iter().enumerate() {
                let dim = dims.get(d).ok_or_else(|| {
                    FormatError::Corrupt(format!(
                        "variable '{}' references dimension id {d} but only {} dimensions exist",
                        v.name,
                        dims.len()
                    ))
                })?;
                if i > 0 && dim.is_unlimited() {
                    return Err(FormatError::Corrupt(format!(
                        "variable '{}' uses the unlimited dimension at position {i}; \
                         it may only be the first dimension",
                        v.name
                    )));
                }
            }
        }
        Ok((
            Header {
                version,
                numrecs,
                dims,
                gatts,
                vars,
            },
            r.pos(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Header {
        let mut h = Header::new(Version::Cdf1);
        let time = h.add_dim("time", 0).unwrap();
        let z = h.add_dim("level", 4).unwrap();
        let y = h.add_dim("lat", 6).unwrap();
        let x = h.add_dim("lon", 8).unwrap();
        h.put_gatt("title", AttrValue::Char("test dataset".into()))
            .unwrap();
        let tt = h.add_var("tt", NcType::Float, &[z, y, x]).unwrap();
        h.put_vatt(tt, "units", AttrValue::Char("K".into()))
            .unwrap();
        h.add_var("ts", NcType::Double, &[time, y, x]).unwrap();
        h.numrecs = 3;
        h
    }

    #[test]
    fn encode_decode_roundtrip() {
        let h = sample();
        let bytes = h.encode();
        assert_eq!(&bytes[..4], b"CDF\x01");
        let (h2, used) = Header::decode(&bytes).unwrap();
        assert_eq!(h2, h);
        assert_eq!(used, bytes.len());
    }

    #[test]
    fn cdf2_roundtrip() {
        let mut h = sample();
        h.version = Version::Cdf2;
        let bytes = h.encode();
        assert_eq!(&bytes[..4], b"CDF\x02");
        let (h2, _) = Header::decode(&bytes).unwrap();
        assert_eq!(h2.version, Version::Cdf2);
        assert_eq!(h2, h);
    }

    #[test]
    fn empty_header_roundtrip() {
        let h = Header::new(Version::Cdf1);
        let (h2, used) = Header::decode(&h.encode()).unwrap();
        assert_eq!(h2, h);
        // magic(4) + numrecs(4) + 3 ABSENT lists (8 each)
        assert_eq!(used, 32);
    }

    #[test]
    fn bad_magic_rejected() {
        assert!(matches!(
            Header::decode(b"HDF\x01\0\0\0\0"),
            Err(FormatError::BadMagic)
        ));
        assert!(matches!(
            Header::decode(b"CDF\x07\0\0\0\0"),
            Err(FormatError::UnsupportedVersion(7))
        ));
    }

    #[test]
    fn definition_validation() {
        let mut h = Header::new(Version::Cdf1);
        let t = h.add_dim("time", 0).unwrap();
        assert!(h.add_dim("time", 5).is_err(), "duplicate dim");
        assert!(h.add_dim("t2", 0).is_err(), "second unlimited");
        let z = h.add_dim("z", 3).unwrap();
        assert!(
            h.add_var("v", NcType::Int, &[z, t]).is_err(),
            "record dim not first"
        );
        assert!(h.add_var("v", NcType::Int, &[9]).is_err(), "bad dim id");
        let v = h.add_var("v", NcType::Int, &[t, z]).unwrap();
        assert!(h.add_var("v", NcType::Int, &[z]).is_err(), "duplicate var");
        assert!(h.is_record_var(v));
    }

    #[test]
    fn inquiry_helpers() {
        let mut h = sample();
        assert_eq!(h.unlimited_dim(), Some(0));
        assert_eq!(h.dim_id("lat"), Some(2));
        assert_eq!(h.var_id("ts"), Some(1));
        assert_eq!(h.var_id("nope"), None);
        assert!(!h.is_record_var(0));
        assert!(h.is_record_var(1));
        assert_eq!(h.var_shape(0), vec![4, 6, 8]);
        assert_eq!(h.var_shape(1), vec![3, 6, 8]); // numrecs = 3
        assert_eq!(h.record_shape(1), vec![6, 8]);
        assert_eq!(h.record_elems(1), 48);
        h.numrecs = 9;
        assert_eq!(h.var_shape(1), vec![9, 6, 8]);
    }

    #[test]
    fn attribute_replacement() {
        let mut h = sample();
        h.put_gatt("title", AttrValue::Char("new".into())).unwrap();
        assert_eq!(h.gatts.len(), 1);
        assert_eq!(h.gatts[0].value, AttrValue::Char("new".into()));
        h.put_vatt(0, "units", AttrValue::Char("C".into())).unwrap();
        assert_eq!(h.vars[0].atts.len(), 1);
        assert!(h.put_vatt(99, "x", AttrValue::Byte(vec![])).is_err());
    }

    #[test]
    fn scalar_variable_shape() {
        let mut h = Header::new(Version::Cdf1);
        let v = h.add_var("s", NcType::Double, &[]).unwrap();
        assert_eq!(h.var_shape(v), Vec::<u64>::new());
        assert_eq!(h.record_elems(v), 1);
        assert!(!h.is_record_var(v));
    }
}
