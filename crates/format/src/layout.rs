//! Data layout: where each variable's bytes live (paper Figure 1).
//!
//! Fixed-size variables are stored contiguously in definition order after
//! the header; record variables are stored interleaved, one record slab per
//! variable per record, the slabs repeating every `recsize` bytes along the
//! unlimited dimension. This module computes `vsize`/`begin` for every
//! variable and translates `(start, count, stride)` accesses into absolute
//! file byte runs — the same math PnetCDF uses to construct MPI file views.

use crate::error::{FormatError, FormatResult};
use crate::header::Header;
use crate::Version;

/// Computed file layout.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Layout {
    /// Offset where array data begins (header end, aligned).
    pub data_start: u64,
    /// Offset where the record section begins.
    pub record_start: u64,
    /// Bytes of one full record (all record variables' slabs).
    pub recsize: u64,
}

/// Compute one variable's `vsize`: the product of its non-record dimension
/// lengths times the element size, padded to 4 bytes — except that the
/// padding is skipped when the file has exactly one record variable (the
/// spec's special case, which lets a lone byte/short record variable pack
/// tightly).
fn vsize_of(h: &Header, varid: usize, skip_padding: bool) -> FormatResult<u64> {
    // Checked arithmetic throughout: a corrupt header can carry dimension
    // lengths whose product overflows u64, and that must surface as an
    // error, not wraparound (or a debug-build panic).
    let mut elems: u64 = 1;
    for len in h.record_shape(varid) {
        elems = elems.checked_mul(len).ok_or_else(|| too_large(h, varid))?;
    }
    let raw = elems
        .checked_mul(h.vars[varid].nctype.size())
        .ok_or_else(|| too_large(h, varid))?;
    if skip_padding {
        Ok(raw)
    } else {
        raw.checked_add(3)
            .map(|r| r & !3)
            .ok_or_else(|| too_large(h, varid))
    }
}

fn too_large(h: &Header, varid: usize) -> FormatError {
    FormatError::TooLarge(format!(
        "variable '{}' is larger than the file format can address",
        h.vars[varid].name
    ))
}

/// Assign `vsize` and `begin` to every variable and return the [`Layout`].
///
/// `align` is the alignment of the data section start (netCDF's
/// `v_align`, normally 4).
pub fn compute(h: &mut Header, align: u64) -> FormatResult<Layout> {
    let align = align.max(4);
    let record_vars: Vec<usize> = (0..h.vars.len()).filter(|&v| h.is_record_var(v)).collect();
    let single_record_var = record_vars.len() == 1;

    // vsize for every variable.
    for v in 0..h.vars.len() {
        let skip_pad = single_record_var && h.is_record_var(v);
        h.vars[v].vsize = vsize_of(h, v, skip_pad)?;
    }

    // The header length is independent of the begin values (fixed-width
    // encodings), so one encode gives the final size.
    let header_len = h.encoded_len();
    let data_start = header_len.div_ceil(align) * align;

    // Fixed variables first, in definition order.
    let mut cur = data_start;
    for v in 0..h.vars.len() {
        if !h.is_record_var(v) {
            h.vars[v].begin = cur;
            cur = cur
                .checked_add(h.vars[v].vsize)
                .ok_or_else(|| too_large(h, v))?;
        }
    }
    // Then the record section.
    let record_start = cur;
    let mut recsize = 0u64;
    for &v in &record_vars {
        h.vars[v].begin = cur;
        cur = cur
            .checked_add(h.vars[v].vsize)
            .ok_or_else(|| too_large(h, v))?;
        recsize = recsize
            .checked_add(h.vars[v].vsize)
            .ok_or_else(|| too_large(h, v))?;
    }

    if h.version == Version::Cdf1 {
        for v in &h.vars {
            if v.begin > u32::MAX as u64 {
                return Err(FormatError::TooLarge(format!(
                    "variable '{}' begins at {} which does not fit CDF-1 32-bit offsets; \
                     use CDF-2 (64-bit offset) format",
                    v.name, v.begin
                )));
            }
        }
    }

    Ok(Layout {
        data_start,
        record_start,
        recsize,
    })
}

/// Validate a `(start, count, stride)` access against a variable's shape.
/// For record variables the record dimension is validated against
/// `numrecs_limit` (reads) or not at all (`None`, writes may extend).
pub fn check_access(
    h: &Header,
    varid: usize,
    start: &[u64],
    count: &[u64],
    stride: Option<&[u64]>,
    numrecs_limit: Option<u64>,
) -> FormatResult<()> {
    let v = h
        .vars
        .get(varid)
        .ok_or_else(|| FormatError::InvalidDefinition(format!("bad variable id {varid}")))?;
    let ndims = v.ndims();
    if start.len() != ndims || count.len() != ndims {
        return Err(FormatError::InvalidDefinition(format!(
            "variable '{}' has {ndims} dims; start/count have {}/{}",
            v.name,
            start.len(),
            count.len()
        )));
    }
    if let Some(st) = stride {
        if st.len() != ndims {
            return Err(FormatError::InvalidDefinition(format!(
                "stride has {} entries, expected {ndims}",
                st.len()
            )));
        }
        if st.contains(&0) {
            return Err(FormatError::InvalidDefinition("zero stride".into()));
        }
    }
    let is_rec = h.is_record_var(varid);
    for d in 0..ndims {
        let limit = if d == 0 && is_rec {
            numrecs_limit.unwrap_or(u64::MAX)
        } else {
            h.dims[v.dimids[d]].len
        };
        if count[d] == 0 {
            continue;
        }
        let step = stride.map_or(1, |s| s[d]);
        let last = (count[d] - 1)
            .checked_mul(step)
            .and_then(|span| start[d].checked_add(span))
            .ok_or_else(|| {
                FormatError::InvalidDefinition(format!(
                    "access to variable '{}' dim {d}: index arithmetic overflows",
                    v.name
                ))
            })?;
        if last >= limit && limit != u64::MAX {
            return Err(FormatError::InvalidDefinition(format!(
                "access to variable '{}' dim {d}: last index {last} >= limit {limit}",
                v.name
            )));
        }
    }
    Ok(())
}

/// Translate a `(start, count, stride)` access on `varid` into absolute
/// file byte runs, coalesced and increasing. `recsize` must come from
/// [`compute`] (it is also derivable from the header, but callers always
/// have a [`Layout`]).
pub fn access_runs(
    h: &Header,
    recsize: u64,
    varid: usize,
    start: &[u64],
    count: &[u64],
    stride: Option<&[u64]>,
) -> Vec<(u64, u64)> {
    let v = &h.vars[varid];
    let esize = v.nctype.size();
    let is_rec = h.is_record_var(varid);
    let mut out: Vec<(u64, u64)> = Vec::new();

    // Inner (non-record) shape and element strides.
    let skip = usize::from(is_rec);
    let inner_shape = h.record_shape(varid);
    let nd = inner_shape.len();
    let mut elem_strides = vec![1u64; nd];
    for d in (0..nd.saturating_sub(1)).rev() {
        elem_strides[d] = elem_strides[d + 1] * inner_shape[d + 1];
    }

    let push = |out: &mut Vec<(u64, u64)>, off: u64, len: u64| {
        if len == 0 {
            return;
        }
        if let Some(last) = out.last_mut() {
            if last.0 + last.1 == off {
                last.1 += len;
                return;
            }
        }
        out.push((off, len));
    };

    // Iterate the record dimension (or a single pass for fixed vars).
    let (rec_start, rec_count, rec_stride) = if is_rec {
        (start[0], count[0], stride.map_or(1, |s| s[0]))
    } else {
        (0, 1, 1)
    };

    let inner_start = &start[skip..];
    let inner_count = &count[skip..];
    let inner_stride: Option<&[u64]> = stride.map(|s| &s[skip..]);
    if inner_count.contains(&0) || rec_count == 0 {
        return out;
    }

    for r in 0..rec_count {
        let base = if is_rec {
            v.begin + (rec_start + r * rec_stride) * recsize
        } else {
            v.begin
        };
        if nd == 0 {
            push(&mut out, base, esize);
            continue;
        }
        // Odometer over all inner dims except the innermost.
        let mut idx = vec![0u64; nd - 1];
        loop {
            let mut elem_off: u64 = 0;
            for d in 0..nd - 1 {
                let step = inner_stride.map_or(1, |s| s[d]);
                elem_off += (inner_start[d] + idx[d] * step) * elem_strides[d];
            }
            let last_step = inner_stride.map_or(1, |s| s[nd - 1]);
            if last_step == 1 {
                let off = elem_off + inner_start[nd - 1];
                push(&mut out, base + off * esize, inner_count[nd - 1] * esize);
            } else {
                for k in 0..inner_count[nd - 1] {
                    let off = elem_off + inner_start[nd - 1] + k * last_step;
                    push(&mut out, base + off * esize, esize);
                }
            }
            // Increment the odometer.
            let mut d = nd - 1;
            loop {
                if d == 0 {
                    break;
                }
                d -= 1;
                idx[d] += 1;
                if idx[d] < inner_count[d] {
                    break;
                }
                idx[d] = 0;
                if d == 0 {
                    d = usize::MAX;
                    break;
                }
            }
            if d == usize::MAX || nd == 1 {
                break;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::NcType;

    fn sample() -> (Header, Layout) {
        let mut h = Header::new(Version::Cdf1);
        let t = h.add_dim("time", 0).unwrap();
        let z = h.add_dim("z", 2).unwrap();
        let y = h.add_dim("y", 3).unwrap();
        let x = h.add_dim("x", 4).unwrap();
        h.add_var("fixed_a", NcType::Int, &[z, y, x]).unwrap(); // 96 bytes
        h.add_var("fixed_b", NcType::Short, &[y]).unwrap(); // 6 -> pad 8
        h.add_var("rec_a", NcType::Float, &[t, y, x]).unwrap(); // 48/rec
        h.add_var("rec_b", NcType::Byte, &[t, x]).unwrap(); // 4/rec
        let l = compute(&mut h, 4).unwrap();
        (h, l)
    }

    #[test]
    fn layout_assigns_begins_in_order() {
        let (h, l) = sample();
        assert_eq!(l.data_start % 4, 0);
        assert!(l.data_start >= h.encoded_len());
        let a = &h.vars[0];
        let b = &h.vars[1];
        assert_eq!(a.begin, l.data_start);
        assert_eq!(a.vsize, 96);
        assert_eq!(b.begin, a.begin + 96);
        assert_eq!(b.vsize, 8, "6 bytes padded to 8");
        // Record section follows the fixed section.
        assert_eq!(l.record_start, b.begin + 8);
        assert_eq!(h.vars[2].begin, l.record_start);
        assert_eq!(h.vars[2].vsize, 48);
        assert_eq!(h.vars[3].begin, l.record_start + 48);
        assert_eq!(h.vars[3].vsize, 4);
        assert_eq!(l.recsize, 52);
    }

    #[test]
    fn single_record_var_skips_padding() {
        let mut h = Header::new(Version::Cdf1);
        let t = h.add_dim("time", 0).unwrap();
        let x = h.add_dim("x", 3).unwrap();
        h.add_var("r", NcType::Byte, &[t, x]).unwrap(); // 3 bytes/record
        let l = compute(&mut h, 4).unwrap();
        assert_eq!(h.vars[0].vsize, 3, "no padding with a single record var");
        assert_eq!(l.recsize, 3);
    }

    #[test]
    fn cdf1_rejects_huge_offsets() {
        let mut h = Header::new(Version::Cdf1);
        let x = h.add_dim("x", 1 << 30).unwrap();
        h.add_var("a", NcType::Double, &[x]).unwrap(); // 8 GiB
        h.add_var("b", NcType::Byte, &[x]).unwrap(); // begins past 4 GiB
        assert!(matches!(compute(&mut h, 4), Err(FormatError::TooLarge(_))));
        h.version = Version::Cdf2;
        assert!(compute(&mut h, 4).is_ok());
    }

    #[test]
    fn access_runs_whole_fixed_var_is_one_run() {
        let (h, l) = sample();
        let runs = access_runs(&h, l.recsize, 0, &[0, 0, 0], &[2, 3, 4], None);
        assert_eq!(runs, vec![(h.vars[0].begin, 96)]);
    }

    #[test]
    fn access_runs_subarray() {
        let (h, l) = sample();
        // fixed_a[0..2][1][1..3]: rows of 2 ints in each z plane.
        let runs = access_runs(&h, l.recsize, 0, &[0, 1, 1], &[2, 1, 2], None);
        let b = h.vars[0].begin;
        assert_eq!(runs, vec![(b + 5 * 4, 8), (b + 17 * 4, 8)]);
    }

    #[test]
    fn access_runs_strided() {
        let (h, l) = sample();
        // fixed_a[0][0][0..4:2] -> elements 0 and 2.
        let runs = access_runs(&h, l.recsize, 0, &[0, 0, 0], &[1, 1, 2], Some(&[1, 1, 2]));
        let b = h.vars[0].begin;
        assert_eq!(runs, vec![(b, 4), (b + 8, 4)]);
    }

    #[test]
    fn access_runs_record_var_spans_records() {
        let (h, l) = sample();
        // rec_a records 1..3, whole record each: two runs recsize apart.
        let runs = access_runs(&h, l.recsize, 2, &[1, 0, 0], &[2, 3, 4], None);
        let b = h.vars[2].begin;
        assert_eq!(runs, vec![(b + l.recsize, 48), (b + 2 * l.recsize, 48)]);
    }

    #[test]
    fn access_runs_scalar_var() {
        let mut h = Header::new(Version::Cdf1);
        h.add_var("s", NcType::Double, &[]).unwrap();
        let l = compute(&mut h, 4).unwrap();
        let runs = access_runs(&h, l.recsize, 0, &[], &[], None);
        assert_eq!(runs, vec![(h.vars[0].begin, 8)]);
    }

    #[test]
    fn check_access_bounds() {
        let (h, _) = sample();
        assert!(check_access(&h, 0, &[0, 0, 0], &[2, 3, 4], None, None).is_ok());
        assert!(check_access(&h, 0, &[0, 0, 1], &[2, 3, 4], None, None).is_err());
        assert!(
            check_access(&h, 0, &[0, 0], &[2, 3], None, None).is_err(),
            "rank mismatch"
        );
        // Strided: count 2 stride 2 reaches index 2 < 4 (ok); count 3
        // stride 2 reaches index 4 (overrun).
        assert!(check_access(&h, 0, &[0, 0, 0], &[2, 3, 2], Some(&[1, 1, 2]), None).is_ok());
        assert!(check_access(&h, 0, &[0, 0, 0], &[2, 3, 3], Some(&[1, 1, 2]), None).is_err());
        // Record dim: limited for reads, unlimited for writes.
        assert!(check_access(&h, 2, &[5, 0, 0], &[1, 3, 4], None, Some(3)).is_err());
        assert!(check_access(&h, 2, &[5, 0, 0], &[1, 3, 4], None, None).is_ok());
        // Zero stride rejected.
        assert!(check_access(&h, 0, &[0, 0, 0], &[1, 1, 1], Some(&[1, 1, 0]), None).is_err());
        // Zero count is always fine.
        assert!(check_access(&h, 0, &[2, 3, 4], &[0, 0, 0], None, None).is_ok());
    }

    #[test]
    fn empty_count_yields_no_runs() {
        let (h, l) = sample();
        assert!(access_runs(&h, l.recsize, 0, &[0, 0, 0], &[2, 0, 4], None).is_empty());
    }

    #[test]
    fn runs_total_matches_request() {
        let (h, l) = sample();
        let runs = access_runs(&h, l.recsize, 2, &[0, 1, 1], &[3, 2, 2], None);
        let total: u64 = runs.iter().map(|r| r.1).sum();
        assert_eq!(total, 3 * 2 * 2 * 4);
    }
}
