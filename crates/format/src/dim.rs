//! Dimensions.

use crate::error::FormatResult;
use crate::name;
use crate::xdr::{Reader, Writer};

/// A named dimension. Length 0 on disk marks the unlimited (record)
/// dimension; at most one may exist.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Dim {
    /// Dimension name.
    pub name: String,
    /// Length; `0` = unlimited.
    pub len: u64,
}

impl Dim {
    /// Create a validated dimension.
    pub fn new(name: &str, len: u64) -> FormatResult<Dim> {
        name::validate(name)?;
        Ok(Dim {
            name: name.to_string(),
            len,
        })
    }

    /// Is this the record dimension?
    pub fn is_unlimited(&self) -> bool {
        self.len == 0
    }

    pub(crate) fn encode(&self, w: &mut Writer) {
        w.put_name(&self.name);
        w.put_u32(self.len as u32);
    }

    pub(crate) fn decode(r: &mut Reader<'_>) -> FormatResult<Dim> {
        let name = r.get_name()?;
        let len = r.get_u32()? as u64;
        Ok(Dim { name, len })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let d = Dim::new("longitude", 360).unwrap();
        let mut w = Writer::new();
        d.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(Dim::decode(&mut r).unwrap(), d);
    }

    #[test]
    fn unlimited_marker() {
        let d = Dim::new("time", 0).unwrap();
        assert!(d.is_unlimited());
        assert!(!Dim::new("z", 5).unwrap().is_unlimited());
    }

    #[test]
    fn invalid_name_rejected() {
        assert!(Dim::new("bad name", 4).is_err());
    }
}
