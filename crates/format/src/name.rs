//! NetCDF name validation.
//!
//! Classic netCDF names must begin with a letter, digit or underscore and
//! continue with alphanumerics, underscores, hyphens, dots and plus signs.
//! (NetCDF-3.5-era rules — stricter than modern netCDF, which is fine: we
//! only reject names the era's tools would also reject.)

use crate::error::{FormatError, FormatResult};

/// Maximum name length (`NC_MAX_NAME`).
pub const NC_MAX_NAME: usize = 256;

/// Validate a dimension/variable/attribute name.
pub fn validate(name: &str) -> FormatResult<()> {
    if name.is_empty() {
        return Err(FormatError::BadName("empty name".into()));
    }
    if name.len() > NC_MAX_NAME {
        return Err(FormatError::BadName(format!(
            "name longer than {NC_MAX_NAME} characters"
        )));
    }
    let mut chars = name.chars();
    let first = chars.next().unwrap();
    if !(first.is_ascii_alphanumeric() || first == '_') {
        return Err(FormatError::BadName(format!(
            "name '{name}' must start with a letter, digit or '_'"
        )));
    }
    for ch in chars {
        if !(ch.is_ascii_alphanumeric() || matches!(ch, '_' | '-' | '.' | '+' | '@')) {
            return Err(FormatError::BadName(format!(
                "name '{name}' contains invalid character '{ch}'"
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_typical_names() {
        for n in [
            "tt", "level", "time_1", "T2m", "_hidden", "a.b-c+d", "var@x",
        ] {
            assert!(validate(n).is_ok(), "{n}");
        }
    }

    #[test]
    fn rejects_bad_names() {
        assert!(validate("").is_err());
        assert!(validate(" lead").is_err());
        assert!(validate("has space").is_err());
        assert!(validate("tab\there").is_err());
        let long = "x".repeat(257);
        assert!(validate(&long).is_err());
    }
}
