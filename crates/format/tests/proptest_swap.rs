//! Property-based tests of the byteswap kernels and the bulk codec fast
//! paths: the chunked width-specialized kernels must be bit-identical to the
//! element-by-element reference loop, and the same-type bulk encode/decode
//! must match the per-element `f64` path for every external type.

use proptest::collection::vec;
use proptest::prelude::*;

use pnetcdf_format::swap::{swap_bytewise, swap_copy, swap_inplace, swap_to_vec};
use pnetcdf_format::types::{
    from_external, from_external_by_element, to_external, to_external_by_element,
};
use pnetcdf_format::{NcType, NcValue};

fn check_bulk_matches_element<T: NcValue>(vals: &[T]) {
    let fast = to_external(vals, T::NATURAL).unwrap();
    let slow = to_external_by_element(vals, T::NATURAL).unwrap();
    assert_eq!(fast, slow, "encode fast path diverged");
    let back: Vec<T> = from_external(&fast, T::NATURAL).unwrap();
    let back_slow: Vec<T> = from_external_by_element(&fast, T::NATURAL).unwrap();
    assert_eq!(back, back_slow, "decode fast path diverged");
    assert_eq!(back.len(), vals.len());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn kernels_match_bytewise_reference(
        elems in vec(any::<u8>(), 0..512),
        width_pick in 0usize..4,
    ) {
        let width = [1usize, 2, 4, 8][width_pick];
        // Truncate to a whole number of elements.
        let src = &elems[..elems.len() - elems.len() % width];
        let reference = swap_bytewise(src, width);

        prop_assert_eq!(&swap_to_vec(src, width), &reference);

        let mut inplace = src.to_vec();
        swap_inplace(&mut inplace, width);
        prop_assert_eq!(&inplace, &reference);

        let mut copied = vec![0u8; src.len()];
        swap_copy(src, &mut copied, width);
        prop_assert_eq!(&copied, &reference);

        // Swapping twice restores the original bytes.
        swap_inplace(&mut inplace, width);
        prop_assert_eq!(&inplace[..], src);
    }

    #[test]
    fn bulk_i8_matches_element_path(vals in vec(any::<i8>(), 0..128)) {
        check_bulk_matches_element(&vals);
    }

    #[test]
    fn bulk_u8_matches_element_path(vals in vec(any::<u8>(), 0..128)) {
        check_bulk_matches_element(&vals);
    }

    #[test]
    fn bulk_i16_matches_element_path(vals in vec(any::<i16>(), 0..128)) {
        check_bulk_matches_element(&vals);
    }

    #[test]
    fn bulk_i32_matches_element_path(vals in vec(any::<i32>(), 0..128)) {
        check_bulk_matches_element(&vals);
    }

    #[test]
    fn bulk_f32_matches_element_path(vals in vec(any::<f32>(), 0..128)) {
        // Compare raw external bytes: the f32→f64→f32 element path must be
        // exact, so the bulk path has to produce identical encodings.
        let fast = to_external(&vals, NcType::Float).unwrap();
        let slow = to_external_by_element(&vals, NcType::Float).unwrap();
        prop_assert_eq!(fast, slow);
    }

    #[test]
    fn bulk_f64_matches_element_path(vals in vec(any::<f64>(), 0..128)) {
        let fast = to_external(&vals, NcType::Double).unwrap();
        let slow = to_external_by_element(&vals, NcType::Double).unwrap();
        prop_assert_eq!(fast, slow);
    }
}
