//! Property-based tests of the format layer: header codec inversion,
//! layout invariants, and access-run correctness against a naive oracle.

use proptest::collection::vec;
use proptest::prelude::*;

use pnetcdf_format::layout;
use pnetcdf_format::types::{from_external, to_external};
use pnetcdf_format::{AttrValue, Header, NcType, Version};

fn arb_nctype() -> impl Strategy<Value = NcType> {
    prop_oneof![
        Just(NcType::Byte),
        Just(NcType::Char),
        Just(NcType::Short),
        Just(NcType::Int),
        Just(NcType::Float),
        Just(NcType::Double),
    ]
}

fn arb_name() -> impl Strategy<Value = String> {
    "[A-Za-z_][A-Za-z0-9_]{0,14}".prop_map(|s| s)
}

fn arb_attr_value() -> impl Strategy<Value = AttrValue> {
    prop_oneof![
        vec(any::<i8>(), 0..8).prop_map(AttrValue::Byte),
        "[ -~]{0,16}".prop_map(AttrValue::Char),
        vec(any::<i16>(), 0..8).prop_map(AttrValue::Short),
        vec(any::<i32>(), 0..8).prop_map(AttrValue::Int),
        vec(any::<f32>(), 0..8).prop_map(AttrValue::Float),
        vec(any::<f64>(), 0..8).prop_map(AttrValue::Double),
    ]
}

/// Build a random but *valid* header.
fn arb_header() -> impl Strategy<Value = Header> {
    (
        prop_oneof![Just(Version::Cdf1), Just(Version::Cdf2)],
        vec((arb_name(), 1u64..20), 0..5),
        proptest::bool::ANY, // unlimited dim?
        vec((arb_name(), arb_nctype(), vec(0usize..16, 0..3)), 0..5),
        vec((arb_name(), arb_attr_value()), 0..4),
        0u64..5, // numrecs
    )
        .prop_map(|(version, dims, unlimited, vars, gatts, numrecs)| {
            let mut h = Header::new(version);
            let mut dim_ids = Vec::new();
            if unlimited {
                dim_ids.push(h.add_dim("record_dim", 0).unwrap());
            }
            for (i, (name, len)) in dims.into_iter().enumerate() {
                // Deduplicate names by suffixing the index.
                if let Ok(id) = h.add_dim(&format!("{name}_{i}"), len) {
                    dim_ids.push(id);
                }
            }
            for (i, (name, t, picks)) in vars.into_iter().enumerate() {
                if dim_ids.is_empty() {
                    let _ = h.add_var(&format!("{name}_{i}"), t, &[]);
                    continue;
                }
                let mut ids: Vec<usize> =
                    picks.iter().map(|&p| dim_ids[p % dim_ids.len()]).collect();
                // Keep the unlimited dim out of non-leading positions.
                if let Some(u) = h.unlimited_dim() {
                    ids.retain(|&d| d != u);
                }
                let _ = h.add_var(&format!("{name}_{i}"), t, &ids);
            }
            for (i, (name, value)) in gatts.into_iter().enumerate() {
                let _ = h.put_gatt(&format!("{name}_{i}"), value);
            }
            if h.unlimited_dim().is_some() {
                h.numrecs = numrecs;
            }
            h
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn header_encode_decode_is_identity(h in arb_header()) {
        let bytes = h.encode();
        let (h2, used) = Header::decode(&bytes).unwrap();
        prop_assert_eq!(&h2, &h);
        prop_assert_eq!(used, bytes.len());
        // Re-encoding is byte-stable.
        prop_assert_eq!(h2.encode(), bytes);
    }

    #[test]
    fn encoded_header_is_4_byte_aligned(h in arb_header()) {
        prop_assert_eq!(h.encode().len() % 4, 0);
    }

    #[test]
    fn layout_begins_are_disjoint_and_ordered(mut h in arb_header()) {
        if layout::compute(&mut h, 4).is_err() {
            return Ok(()); // CDF-1 overflow of giant random vars: fine
        }
        let hl = h.encoded_len();
        // Fixed vars: consecutive, non-overlapping, after the header.
        let mut cur = None;
        for v in 0..h.vars.len() {
            if h.is_record_var(v) {
                continue;
            }
            let var = &h.vars[v];
            prop_assert!(var.begin >= hl);
            if let Some(end) = cur {
                prop_assert!(var.begin >= end);
            }
            cur = Some(var.begin + var.vsize);
        }
        // Record vars fit within one record.
        let rec_vars: Vec<usize> = (0..h.vars.len()).filter(|&v| h.is_record_var(v)).collect();
        if !rec_vars.is_empty() {
            let l = layout::compute(&mut h, 4).unwrap();
            let total: u64 = rec_vars.iter().map(|&v| h.vars[v].vsize).sum();
            prop_assert_eq!(l.recsize, total);
        }
    }

    #[test]
    fn external_conversion_roundtrip_f64(vals in vec(-1e15f64..1e15, 0..64)) {
        let ext = to_external(&vals, NcType::Double).unwrap();
        let back: Vec<f64> = from_external(&ext, NcType::Double).unwrap();
        prop_assert_eq!(back, vals);
    }

    #[test]
    fn external_conversion_roundtrip_i32(vals in vec(any::<i32>(), 0..64)) {
        let ext = to_external(&vals, NcType::Int).unwrap();
        let back: Vec<i32> = from_external(&ext, NcType::Int).unwrap();
        prop_assert_eq!(back, vals);
    }

    #[test]
    fn short_roundtrip_through_int_external(vals in vec(any::<i16>(), 0..64)) {
        // Widening write then narrowing read must be lossless.
        let ext = to_external(&vals, NcType::Int).unwrap();
        let back: Vec<i16> = from_external(&ext, NcType::Int).unwrap();
        prop_assert_eq!(back, vals);
    }
}

/// Naive oracle: enumerate every selected element's file offset one by one.
fn naive_offsets(h: &Header, recsize: u64, varid: usize, start: &[u64], count: &[u64]) -> Vec<u64> {
    let v = &h.vars[varid];
    let esize = v.nctype.size();
    let is_rec = h.is_record_var(varid);
    let inner = h.record_shape(varid);
    let mut strides = vec![1u64; inner.len()];
    for d in (0..inner.len().saturating_sub(1)).rev() {
        strides[d] = strides[d + 1] * inner[d + 1];
    }
    let mut out = Vec::new();
    let nd = start.len();
    let mut idx = vec![0u64; nd];
    'outer: loop {
        let mut off = v.begin;
        if is_rec {
            off += (start[0] + idx[0]) * recsize;
            for d in 1..nd {
                off += (start[d] + idx[d]) * strides[d - 1] * esize;
            }
        } else {
            for d in 0..nd {
                off += (start[d] + idx[d]) * strides[d] * esize;
            }
        }
        for b in 0..esize {
            out.push(off + b);
        }
        let mut d = nd;
        loop {
            if d == 0 {
                break 'outer;
            }
            d -= 1;
            idx[d] += 1;
            if idx[d] < count[d] {
                break;
            }
            idx[d] = 0;
        }
        if nd == 0 {
            break;
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn access_runs_match_naive_oracle(
        dims in vec(1u64..6, 1..4),
        t in arb_nctype(),
        record in proptest::bool::ANY,
        seed in any::<u64>(),
    ) {
        let mut h = Header::new(Version::Cdf1);
        let mut dimids = Vec::new();
        if record {
            dimids.push(h.add_dim("time", 0).unwrap());
        }
        for (i, &d) in dims.iter().enumerate() {
            dimids.push(h.add_dim(&format!("d{i}"), d).unwrap());
        }
        h.add_var("v", t, &dimids).unwrap();
        // A second variable makes recsize nontrivial.
        if record {
            h.add_var("w", NcType::Int, &[dimids[0]]).unwrap();
        }
        let l = layout::compute(&mut h, 4).unwrap();
        h.numrecs = 4;

        // Derive a random in-bounds (start, count) from the seed.
        let shape = h.var_shape(0);
        let mut s = seed;
        let mut start = Vec::new();
        let mut count = Vec::new();
        for &ext in &shape {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let st = s % ext.max(1);
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let ct = 1 + s % (ext - st).max(1);
            start.push(st);
            count.push(ct);
        }

        let runs = layout::access_runs(&h, l.recsize, 0, &start, &count, None);
        let mut from_runs = Vec::new();
        for (off, len) in &runs {
            for b in 0..*len {
                from_runs.push(off + b);
            }
        }
        let expect = naive_offsets(&h, l.recsize, 0, &start, &count);
        prop_assert_eq!(from_runs, expect);
        // Runs are coalesced: no two adjacent.
        for w in runs.windows(2) {
            prop_assert!(w[0].0 + w[0].1 < w[1].0, "adjacent runs not merged: {:?}", w);
        }
    }
}
