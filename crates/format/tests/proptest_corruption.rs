//! Corruption fuzzing of the header decoder: whatever bytes arrive —
//! truncated, bit-flipped, or spliced — `Header::decode` must return an
//! error or a header, never panic, over-read, or blow up an allocation
//! sized from a corrupt count. A decoded header must also survive the
//! layout pass without panicking (checked arithmetic end to end).

use proptest::collection::vec;
use proptest::prelude::*;

use pnetcdf_format::{layout, AttrValue, Header, NcType, Version};

/// A small but representative valid header to corrupt.
fn sample_header(version: Version) -> Header {
    let mut h = Header::new(version);
    let t = h.add_dim("time", 0).unwrap();
    let z = h.add_dim("z", 3).unwrap();
    let y = h.add_dim("y", 5).unwrap();
    h.put_gatt("title", AttrValue::Char("corruption fuzz".into()))
        .unwrap();
    h.put_gatt("levels", AttrValue::Int(vec![1, 2, 3])).unwrap();
    let v = h.add_var("tt", NcType::Float, &[t, z, y]).unwrap();
    h.put_vatt(v, "units", AttrValue::Char("K".into())).unwrap();
    h.add_var("fixed", NcType::Double, &[z, y]).unwrap();
    h.add_var("scalar", NcType::Short, &[]).unwrap();
    h.numrecs = 2;
    h
}

/// Decode must be total; if it succeeds anyway, the layout pass must be too.
fn decode_never_panics(bytes: &[u8]) {
    if let Ok((mut h, used)) = Header::decode(bytes) {
        assert!(used <= bytes.len(), "decoder claimed more bytes than given");
        let _ = layout::compute(&mut h, 4);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn truncated_headers_never_panic(
        cdf2 in proptest::bool::ANY,
        cut in 0usize..400,
    ) {
        let version = if cdf2 { Version::Cdf2 } else { Version::Cdf1 };
        let bytes = sample_header(version).encode();
        let cut = cut.min(bytes.len());
        decode_never_panics(&bytes[..cut]);
    }

    #[test]
    fn byte_flips_never_panic(
        cdf2 in proptest::bool::ANY,
        flips in vec((0usize..400, any::<u8>()), 1..8),
    ) {
        let version = if cdf2 { Version::Cdf2 } else { Version::Cdf1 };
        let mut bytes = sample_header(version).encode();
        for (pos, val) in flips {
            let pos = pos % bytes.len();
            bytes[pos] ^= val;
        }
        decode_never_panics(&bytes);
    }

    #[test]
    fn flips_plus_truncation_never_panic(
        flips in vec((0usize..400, any::<u8>()), 1..6),
        cut in 8usize..400,
    ) {
        let mut bytes = sample_header(Version::Cdf1).encode();
        for (pos, val) in flips {
            let pos = pos % bytes.len();
            bytes[pos] = val; // overwrite, not xor: hits zero/huge counts
        }
        let cut = cut.min(bytes.len());
        decode_never_panics(&bytes[..cut]);
    }

    #[test]
    fn arbitrary_garbage_never_panics(bytes in vec(any::<u8>(), 0..256)) {
        decode_never_panics(&bytes);
    }

    #[test]
    fn garbage_with_valid_magic_never_panics(
        cdf2 in proptest::bool::ANY,
        tail in vec(any::<u8>(), 0..256),
    ) {
        // Force the decoder past the magic check so the structural parsing
        // paths see the garbage.
        let mut bytes = vec![b'C', b'D', b'F', if cdf2 { 2 } else { 1 }];
        bytes.extend_from_slice(&tail);
        decode_never_panics(&bytes);
    }
}

#[test]
fn corrupt_count_does_not_drive_allocation() {
    // Splice a huge attribute count into an otherwise valid header: the
    // decoder must reject it from the remaining-bytes bound, not attempt a
    // multi-gigabyte Vec::with_capacity first.
    let h = sample_header(Version::Cdf1);
    let bytes = h.encode();
    // Find the gatt list tag (0x0C) and clobber the count that follows it.
    let tag = [0, 0, 0, 0x0C];
    let pos = bytes
        .windows(4)
        .position(|w| w == tag)
        .expect("header has attributes");
    let mut evil = bytes.clone();
    evil[pos + 4..pos + 8].copy_from_slice(&u32::MAX.to_be_bytes());
    assert!(Header::decode(&evil).is_err());
}

#[test]
fn dangling_dimension_id_is_rejected() {
    // Variables referencing dimensions that don't exist must fail decode,
    // not panic later in var_shape/layout.
    let h = sample_header(Version::Cdf1);
    let bytes = h.encode();
    // The var "fixed" references dims [1, 2]; encode a fresh header whose
    // dimension list is emptied by flipping the dim-list tag to ABSENT
    // is fiddly — instead corrupt one dimid in place: find the encoded
    // name "fixed" and patch its first dimid (name len + "fixed" + pad).
    let name = b"fixed";
    let pos = bytes
        .windows(name.len())
        .position(|w| w == name)
        .expect("var present");
    // Layout after the name: 3 bytes padding ("fixed" is 5 bytes → pad to
    // 8), then ndims (4 bytes), then the first dimid.
    let dimid_at = pos + 8 + 4;
    let mut evil = bytes.clone();
    evil[dimid_at..dimid_at + 4].copy_from_slice(&1000u32.to_be_bytes());
    let err = Header::decode(&evil);
    assert!(err.is_err(), "dangling dimid must be rejected: {err:?}");
}
