//! Property-based tests of the file-view machinery: mapping logical
//! positions through a tiled filetype must agree with a naive per-byte
//! oracle, for random monotonic filetypes, offsets, and lengths.

use proptest::collection::vec;
use proptest::prelude::*;

use pnetcdf_mpi::Datatype;
use pnetcdf_mpio::FileView;

/// A random monotonic filetype: disjoint ascending (offset, len) blocks,
/// possibly with a resized (larger) extent to create a tail hole.
fn arb_filetype() -> impl Strategy<Value = (Datatype, Vec<(u64, u64)>, u64)> {
    (vec((0u64..32, 1u64..16), 1..6), 0u64..64).prop_map(|(raw, extra)| {
        let mut blocks = Vec::new();
        let mut next_free = 0u64;
        for (gap, len) in raw {
            let off = next_free + gap;
            blocks.push((off, len));
            next_free = off + len;
        }
        let extent = next_free + extra;
        let h = Datatype::hindexed(
            blocks
                .iter()
                .map(|&(o, l)| (o as i64, l as usize))
                .collect(),
            Datatype::byte(),
        );
        let ft = Datatype::resized(0, extent, h);
        (ft, blocks, extent)
    })
}

/// Oracle: the absolute offset of logical data byte `i` under the view.
fn oracle_offset(blocks: &[(u64, u64)], extent: u64, disp: u64, mut i: u64) -> u64 {
    let tile_data: u64 = blocks.iter().map(|b| b.1).sum();
    let tile = i / tile_data;
    i %= tile_data;
    for &(off, len) in blocks {
        if i < len {
            return disp + tile * extent + off + i;
        }
        i -= len;
    }
    unreachable!()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn view_map_matches_oracle(
        (ft, blocks, extent) in arb_filetype(),
        disp in 0u64..1000,
        offset in 0u64..200,
        len in 0u64..300,
    ) {
        let view = FileView::new(disp, &Datatype::byte(), &ft).unwrap();
        let runs = view.map(offset, len).unwrap();
        // Expand runs to per-byte offsets and compare with the oracle.
        let mut got = Vec::new();
        for (off, l) in &runs {
            for b in 0..*l {
                got.push(off + b);
            }
        }
        let expect: Vec<u64> = (0..len)
            .map(|i| oracle_offset(&blocks, extent, disp, offset + i))
            .collect();
        prop_assert_eq!(got, expect);
        // Runs are coalesced and strictly increasing.
        for w in runs.windows(2) {
            prop_assert!(w[0].0 + w[0].1 < w[1].0, "uncoalesced: {:?}", w);
        }
    }

    #[test]
    fn view_map_total_is_len(
        (ft, _, _) in arb_filetype(),
        offset in 0u64..100,
        len in 0u64..500,
    ) {
        let view = FileView::new(0, &Datatype::byte(), &ft).unwrap();
        let runs = view.map(offset, len).unwrap();
        let total: u64 = runs.iter().map(|r| r.1).sum();
        prop_assert_eq!(total, len);
    }

    #[test]
    fn etype_offsets_scale(
        disp in 0u64..100,
        offset in 0u64..100,
        count in 0u64..50,
    ) {
        // A contiguous double view: offset in etypes scales by 8.
        let ft = Datatype::contiguous(1024, Datatype::double());
        let view = FileView::new(disp, &Datatype::double(), &ft).unwrap();
        let runs = view.map(offset, count * 8).unwrap();
        if count > 0 {
            prop_assert_eq!(runs, vec![(disp + offset * 8, count * 8)]);
        } else {
            prop_assert!(runs.is_empty());
        }
    }
}
