//! End-to-end MPI-IO tests: multi-rank worlds writing and reading one file
//! through views, independent ops, and two-phase collective ops.

use hpc_sim::SimConfig;
use pnetcdf_mpi::{run_world, Datatype, Info};
use pnetcdf_mpio::{MpiFile, OpenMode};
use pnetcdf_pfs::{Pfs, StorageMode};

fn cfg() -> SimConfig {
    SimConfig::test_small()
}

fn byte_buf(n: usize, seed: u8) -> Vec<u8> {
    (0..n)
        .map(|i| (i as u8).wrapping_mul(31).wrapping_add(seed))
        .collect()
}

#[test]
fn collective_open_create_and_reopen() {
    let pfs = Pfs::new(cfg(), StorageMode::Full);
    run_world(4, cfg(), |c| {
        let f = MpiFile::open(c, &pfs, "f.dat", OpenMode::Create, &Info::new()).unwrap();
        assert_eq!(f.size(), 0);
        drop(f);
        let f2 = MpiFile::open(c, &pfs, "f.dat", OpenMode::ReadWrite, &Info::new()).unwrap();
        assert_eq!(f2.size(), 0);
        assert!(MpiFile::open(c, &pfs, "f.dat", OpenMode::CreateExcl, &Info::new()).is_err());
        assert!(MpiFile::open(c, &pfs, "nope.dat", OpenMode::ReadOnly, &Info::new()).is_err());
    });
}

#[test]
fn contiguous_collective_write_then_read() {
    let pfs = Pfs::new(cfg(), StorageMode::Full);
    let n = 4;
    let chunk = 8192usize;
    run_world(n, cfg(), |c| {
        let f = MpiFile::open(c, &pfs, "cont.dat", OpenMode::Create, &Info::new()).unwrap();
        let mine = byte_buf(chunk, c.rank() as u8);
        let mem = Datatype::contiguous(chunk, Datatype::byte());
        f.write_at_all((c.rank() * chunk) as u64, &mine, 1, &mem)
            .unwrap();

        let mut back = vec![0u8; chunk];
        f.read_at_all((c.rank() * chunk) as u64, &mut back, 1, &mem)
            .unwrap();
        assert_eq!(back, mine);
    });
    // The file as a whole is each rank's pattern in order.
    let bytes = pfs.open("cont.dat").unwrap().to_bytes();
    assert_eq!(bytes.len(), n * chunk);
    for r in 0..n {
        assert_eq!(
            &bytes[r * chunk..(r + 1) * chunk],
            &byte_buf(chunk, r as u8)[..]
        );
    }
}

#[test]
fn interleaved_views_collective_write() {
    // Each rank owns every n-th block of 64 bytes (a strided view): the
    // classic pattern where two-phase I/O shines.
    let pfs = Pfs::new(cfg(), StorageMode::Full);
    let n = 4;
    let block = 64usize;
    let blocks_per_rank = 32usize;
    run_world(n, cfg(), |c| {
        let mut f = MpiFile::open(c, &pfs, "inter.dat", OpenMode::Create, &Info::new()).unwrap();
        // Filetype: one block at rank*block, tile extent n*block.
        let ft = Datatype::resized(
            0,
            (n * block) as u64,
            Datatype::hindexed(vec![((c.rank() * block) as i64, block)], Datatype::byte()),
        );
        f.set_view(0, &Datatype::byte(), &ft).unwrap();
        let mine: Vec<u8> = (0..block * blocks_per_rank)
            .map(|i| (c.rank() * 10 + i / block) as u8)
            .collect();
        let mem = Datatype::contiguous(mine.len(), Datatype::byte());
        f.write_at_all(0, &mine, 1, &mem).unwrap();
    });
    let bytes = pfs.open("inter.dat").unwrap().to_bytes();
    assert_eq!(bytes.len(), n * block * blocks_per_rank);
    for (i, b) in bytes.iter().enumerate() {
        let blk = i / block;
        let rank = blk % n;
        let round = blk / n;
        assert_eq!(*b as usize, rank * 10 + round, "byte {i}");
    }
}

#[test]
fn collective_read_with_interleaved_views() {
    let pfs = Pfs::new(cfg(), StorageMode::Full);
    let n = 3;
    let block = 16usize;
    let rounds = 8usize;
    // Seed the file serially.
    let all: Vec<u8> = (0..n * block * rounds).map(|i| (i % 251) as u8).collect();
    pfs.create("r.dat").import_bytes(&all);

    let all2 = all.clone();
    run_world(n, cfg(), move |c| {
        let mut f = MpiFile::open(c, &pfs, "r.dat", OpenMode::ReadOnly, &Info::new()).unwrap();
        let ft = Datatype::resized(
            0,
            (n * block) as u64,
            Datatype::hindexed(vec![((c.rank() * block) as i64, block)], Datatype::byte()),
        );
        f.set_view(0, &Datatype::byte(), &ft).unwrap();
        let mut buf = vec![0u8; block * rounds];
        let mem = Datatype::contiguous(buf.len(), Datatype::byte());
        f.read_at_all(0, &mut buf, 1, &mem).unwrap();
        for round in 0..rounds {
            let src = (round * n + c.rank()) * block;
            assert_eq!(
                &buf[round * block..(round + 1) * block],
                &all2[src..src + block]
            );
        }
    });
}

#[test]
fn independent_write_with_noncontiguous_memory() {
    let pfs = Pfs::new(cfg(), StorageMode::Full);
    run_world(2, cfg(), |c| {
        let f = MpiFile::open(c, &pfs, "m.dat", OpenMode::Create, &Info::new()).unwrap();
        if c.rank() == 0 {
            // Memory: 4 bytes used, 4 skipped, repeated.
            let mem = Datatype::resized(0, 8, Datatype::contiguous(4, Datatype::byte()));
            let buf: Vec<u8> = (0..32).collect();
            f.write_at(0, &buf, 4, &mem).unwrap();
        }
        c.barrier().unwrap();
    });
    let bytes = pfs.open("m.dat").unwrap().to_bytes();
    assert_eq!(
        bytes,
        vec![0, 1, 2, 3, 8, 9, 10, 11, 16, 17, 18, 19, 24, 25, 26, 27]
    );
}

#[test]
fn readonly_rejects_writes() {
    let pfs = Pfs::new(cfg(), StorageMode::Full);
    run_world(2, cfg(), |c| {
        {
            let f = MpiFile::open(c, &pfs, "ro.dat", OpenMode::Create, &Info::new()).unwrap();
            let mem = Datatype::contiguous(4, Datatype::byte());
            f.write_at_all(0, &[1, 2, 3, 4], 1, &mem).unwrap();
        }
        let f = MpiFile::open(c, &pfs, "ro.dat", OpenMode::ReadOnly, &Info::new()).unwrap();
        let mem = Datatype::contiguous(4, Datatype::byte());
        assert!(f.write_at(0, &[9; 4], 1, &mem).is_err());
        let mut buf = [0u8; 4];
        f.read_at(0, &mut buf, 1, &mem).unwrap();
        assert_eq!(buf, [1, 2, 3, 4]);
    });
}

#[test]
fn two_phase_beats_disabled_collective_buffering() {
    // Interleaved small blocks: with two-phase the file sees large ordered
    // writes; without, every rank issues many small strided writes.
    let block = 512usize;
    let rounds = 64usize;
    let n = 4;

    let time_with = |info: Info| {
        let pfs = Pfs::new(cfg(), StorageMode::CostOnly);
        let run = run_world(n, cfg(), move |c| {
            let mut f = MpiFile::open(c, &pfs, "x", OpenMode::Create, &info).unwrap();
            let ft = Datatype::resized(
                0,
                (n * block) as u64,
                Datatype::hindexed(vec![((c.rank() * block) as i64, block)], Datatype::byte()),
            );
            f.set_view(0, &Datatype::byte(), &ft).unwrap();
            let mine = vec![7u8; block * rounds];
            let mem = Datatype::contiguous(mine.len(), Datatype::byte());
            f.write_at_all(0, &mine, 1, &mem).unwrap();
        });
        run.makespan
    };

    let t_two_phase = time_with(Info::new());
    let t_disabled = time_with(
        Info::new()
            .with("romio_cb_write", "disable")
            .with("romio_ds_write", "disable"),
    );
    assert!(
        t_two_phase < t_disabled,
        "two-phase {t_two_phase:?} should beat disabled {t_disabled:?}"
    );
}

#[test]
fn collective_matches_independent_bytes() {
    // Same interleaved pattern written via collective two-phase and via
    // independent writes must produce identical files.
    let n = 3;
    let block = 128usize;
    let rounds = 16usize;

    let write = |collective: bool| {
        let pfs = Pfs::new(cfg(), StorageMode::Full);
        let pfs2 = pfs.clone();
        run_world(n, cfg(), move |c| {
            let mut f = MpiFile::open(c, &pfs2, "y", OpenMode::Create, &Info::new()).unwrap();
            let ft = Datatype::resized(
                0,
                (n * block) as u64,
                Datatype::hindexed(vec![((c.rank() * block) as i64, block)], Datatype::byte()),
            );
            f.set_view(0, &Datatype::byte(), &ft).unwrap();
            let mine: Vec<u8> = (0..block * rounds)
                .map(|i| (c.rank() + 3 * i) as u8)
                .collect();
            let mem = Datatype::contiguous(mine.len(), Datatype::byte());
            if collective {
                f.write_at_all(0, &mine, 1, &mem).unwrap();
            } else {
                f.write_at(0, &mine, 1, &mem).unwrap();
                c.barrier().unwrap();
            }
        });
        pfs.open("y").unwrap().to_bytes()
    };

    assert_eq!(write(true), write(false));
}

#[test]
fn set_size_and_sync() {
    let pfs = Pfs::new(cfg(), StorageMode::Full);
    run_world(2, cfg(), |c| {
        let f = MpiFile::open(c, &pfs, "s", OpenMode::Create, &Info::new()).unwrap();
        f.set_size(4096).unwrap();
        assert_eq!(f.size(), 4096);
        f.sync().unwrap();
    });
}

#[test]
fn cb_nodes_hint_changes_aggregation() {
    // Sanity: restricting to 1 aggregator still produces correct bytes.
    let pfs = Pfs::new(cfg(), StorageMode::Full);
    let n = 4;
    let info = Info::new()
        .with("cb_nodes", "1")
        .with("cb_buffer_size", "256");
    run_world(n, cfg(), move |c| {
        let f = MpiFile::open(c, &pfs, "z", OpenMode::Create, &info).unwrap();
        let mem = Datatype::contiguous(1000, Datatype::byte());
        let mine = vec![c.rank() as u8 + 1; 1000];
        f.write_at_all((c.rank() * 1000) as u64, &mine, 1, &mem)
            .unwrap();
        let mut buf = vec![0u8; 1000];
        f.read_at_all((c.rank() * 1000) as u64, &mut buf, 1, &mem)
            .unwrap();
        assert_eq!(buf, mine);
    });
}
