//! Fuzzing for the two-phase exchange parcel codec: a parcel crosses the
//! rank boundary, so [`decode_req`] must reject truncated, oversized, or
//! corrupt input with an error — never a panic — and must round-trip
//! everything [`encode_write_req`] produces.

use proptest::prelude::*;

use pnetcdf_mpio::twophase::{decode_req, encode_read_req, encode_write_req};

fn runs_strategy() -> impl Strategy<Value = Vec<(u64, u64)>> {
    proptest::collection::vec((0u64..1 << 40, 0u64..4096), 0..12)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn write_parcels_round_trip(runs in runs_strategy(), trace_id in any::<u64>()) {
        let total: u64 = runs.iter().map(|&(_, len)| len).sum();
        let data: Vec<u8> = (0..total).map(|i| (i % 251) as u8).collect();
        let parcel = encode_write_req(&runs, &data, trace_id);
        let (got_runs, got_data, got_id) = decode_req(&parcel).expect("valid parcel");
        prop_assert_eq!(got_runs, runs);
        prop_assert_eq!(got_data, &data[..]);
        prop_assert_eq!(got_id, trace_id);
    }

    #[test]
    fn read_parcels_round_trip(runs in runs_strategy(), trace_id in any::<u64>()) {
        let parcel = encode_read_req(&runs, trace_id);
        let (got_runs, got_data, got_id) = decode_req(&parcel).expect("valid parcel");
        prop_assert_eq!(got_runs, runs);
        prop_assert!(got_data.is_empty());
        prop_assert_eq!(got_id, trace_id);
    }

    #[test]
    fn arbitrary_bytes_never_panic(parcel in proptest::collection::vec(any::<u8>(), 0..256)) {
        // Error or success, but never a panic or an out-of-bounds slice.
        let _ = decode_req(&parcel);
    }

    #[test]
    fn truncation_is_an_error_not_a_panic(
        runs in runs_strategy(),
        trace_id in any::<u64>(),
        cut in 0usize..100,
    ) {
        let total: u64 = runs.iter().map(|&(_, len)| len).sum();
        let data: Vec<u8> = vec![7u8; total as usize];
        let parcel = encode_write_req(&runs, &data, trace_id);
        let cut = cut.min(parcel.len());
        let trimmed = &parcel[..parcel.len() - cut];
        match decode_req(trimmed) {
            // A cut confined to the payload of the *last* runs can only be
            // detected by the payload-length check; any cut into the header
            // or run table must fail too. Whatever succeeds must describe
            // a consistent parcel.
            Ok((got_runs, got_data, _)) => {
                let got_total: u64 = got_runs.iter().map(|&(_, len)| len).sum();
                prop_assert!(got_data.is_empty() || got_data.len() as u64 == got_total);
            }
            Err(e) => {
                prop_assert!(e.to_string().contains("parcel"), "unexpected error: {e}");
            }
        }
    }

    #[test]
    fn oversized_payload_is_rejected(
        runs in runs_strategy(),
        trace_id in any::<u64>(),
        extra in 1usize..64,
    ) {
        let total: u64 = runs.iter().map(|&(_, len)| len).sum();
        let data: Vec<u8> = vec![9u8; total as usize];
        let mut parcel = encode_write_req(&runs, &data, trace_id);
        parcel.extend(std::iter::repeat_n(0xAAu8, extra));
        prop_assert!(decode_req(&parcel).is_err(), "trailing junk must not decode");
    }

    #[test]
    fn declared_run_count_cannot_overrun(header_n in any::<u64>(), tail in proptest::collection::vec(any::<u8>(), 0..64)) {
        // Hand-build a parcel whose run count is unrelated to its size.
        let mut parcel = Vec::new();
        parcel.extend_from_slice(&0u64.to_ne_bytes());
        parcel.extend_from_slice(&header_n.to_ne_bytes());
        parcel.extend_from_slice(&tail);
        let _ = decode_req(&parcel); // must not panic or overflow
    }
}
