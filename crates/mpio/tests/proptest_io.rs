//! Property-based tests of the I/O algorithms: data sieving and two-phase
//! collective writes must leave exactly the same bytes in the file as plain
//! direct writes, for arbitrary run lists and data.

use proptest::collection::vec;
use proptest::prelude::*;

use hpc_sim::{SimConfig, Time};
use pnetcdf_mpi::{run_world, Datatype, Info};
use pnetcdf_mpio::{sieve, MpiFile, OpenMode, Run};
use pnetcdf_pfs::{Pfs, StorageMode};

/// Sorted, disjoint, nonempty run lists within a small file.
fn arb_runs() -> impl Strategy<Value = Vec<Run>> {
    vec((0u64..512, 1u64..40), 1..12).prop_map(|mut raw| {
        raw.sort();
        let mut out: Vec<Run> = Vec::new();
        let mut next_free = 0u64;
        for (off, len) in raw {
            let off = off.max(next_free) + 1; // strictly disjoint with gaps
            out.push((off, len));
            next_free = off + len;
        }
        out
    })
}

fn data_for(runs: &[Run], seed: u8) -> Vec<u8> {
    let total: u64 = runs.iter().map(|r| r.1).sum();
    (0..total)
        .map(|i| (i as u8).wrapping_mul(37).wrapping_add(seed))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sieved_write_equals_direct_write(
        runs in arb_runs(),
        bufsize in 8usize..256,
        prefill in proptest::bool::ANY,
    ) {
        let cfg = SimConfig::test_small();
        let data = data_for(&runs, 11);

        let mk = |sieved: bool| {
            let pfs = Pfs::new(cfg.clone(), StorageMode::Full);
            let f = pfs.create("x");
            if prefill {
                f.write_at(Time::ZERO, 0, &[0xAB; 2048]);
            }
            sieve::write(&f, bufsize, sieved, Time::ZERO, &runs, &data).unwrap();
            f.to_bytes()
        };
        prop_assert_eq!(mk(true), mk(false));
    }

    #[test]
    fn sieved_read_returns_written_bytes(
        runs in arb_runs(),
        bufsize in 8usize..256,
    ) {
        let cfg = SimConfig::test_small();
        let data = data_for(&runs, 99);
        let pfs = Pfs::new(cfg.clone(), StorageMode::Full);
        let f = pfs.create("x");
        sieve::write(&f, 4096, true, Time::ZERO, &runs, &data).unwrap();
        let (sieved, _) = sieve::read(&f, bufsize, true, Time::ZERO, &runs).unwrap();
        let (direct, _) = sieve::read(&f, bufsize, false, Time::ZERO, &runs).unwrap();
        prop_assert_eq!(&sieved, &data);
        prop_assert_eq!(&direct, &data);
    }

    #[test]
    fn two_phase_write_equals_independent_write(
        per_rank in vec(arb_runs(), 2..5),
        cb_buffer in 16usize..512,
    ) {
        let cfg = SimConfig::test_small();
        let n = per_rank.len();

        // Overlapping concurrent writes are undefined in MPI, so give each
        // rank a private 2 KiB region; runs stay interesting within it
        // (the regions still interleave across aggregator domains).
        let rank_runs: Vec<Vec<Run>> = per_rank
            .iter()
            .enumerate()
            .map(|(r, runs)| {
                let base = r as u64 * 2048;
                let mut next_free = base;
                runs.iter()
                    .map(|&(off, len)| {
                        let o = (base + off).max(next_free);
                        next_free = o + len;
                        (o, len)
                    })
                    .collect()
            })
            .collect();

        let write = |collective: bool, info: Info| {
            let pfs = Pfs::new(cfg.clone(), StorageMode::Full);
            let pfs_in = pfs.clone();
            let rank_runs = rank_runs.clone();
            run_world(n, cfg.clone(), move |c| {
                let mut f =
                    MpiFile::open(c, &pfs_in, "t", OpenMode::Create, &info).unwrap();
                let runs = &rank_runs[c.rank()];
                let data = data_for(runs, c.rank() as u8);
                // Describe the file region with a matching hindexed view.
                let blocks: Vec<(i64, usize)> =
                    runs.iter().map(|&(o, l)| (o as i64, l as usize)).collect();
                let ft = Datatype::hindexed(blocks, Datatype::byte());
                f.set_view_local(0, &Datatype::byte(), &ft).unwrap();
                let mem = Datatype::contiguous(data.len(), Datatype::byte());
                if collective {
                    f.write_at_all(0, &data, 1, &mem).unwrap();
                } else {
                    f.write_at(0, &data, 1, &mem).unwrap();
                    c.barrier().unwrap();
                }
            });
            pfs.open("t").unwrap().to_bytes()
        };

        let info = Info::new().with("cb_buffer_size", &cb_buffer.to_string());
        let collective = write(true, info);
        let independent = write(false, Info::new());
        prop_assert_eq!(collective, independent);
    }

    #[test]
    fn collective_read_returns_exact_bytes(
        per_rank in vec(arb_runs(), 2..4),
        cb_buffer in 16usize..512,
    ) {
        let cfg = SimConfig::test_small();
        let n = per_rank.len();
        let rank_runs: Vec<Vec<Run>> = per_rank
            .iter()
            .enumerate()
            .map(|(r, runs)| {
                let base = r as u64 * 2048;
                let mut next_free = base;
                runs.iter()
                    .map(|&(off, len)| {
                        let o = (base + off).max(next_free);
                        next_free = o + len;
                        (o, len)
                    })
                    .collect()
            })
            .collect();

        // Seed the file with a known pattern.
        let pfs = Pfs::new(cfg.clone(), StorageMode::Full);
        let max_end = rank_runs
            .iter()
            .flatten()
            .map(|&(o, l)| o + l)
            .max()
            .unwrap();
        let content: Vec<u8> = (0..max_end).map(|i| (i % 251) as u8).collect();
        pfs.create("t").import_bytes(&content);

        let info = Info::new().with("cb_buffer_size", &cb_buffer.to_string());
        let rr = rank_runs.clone();
        let content2 = content.clone();
        run_world(n, cfg.clone(), move |c| {
            let mut f = MpiFile::open(c, &pfs, "t", OpenMode::ReadOnly, &info).unwrap();
            let runs = &rr[c.rank()];
            let blocks: Vec<(i64, usize)> =
                runs.iter().map(|&(o, l)| (o as i64, l as usize)).collect();
            let ft = Datatype::hindexed(blocks, Datatype::byte());
            f.set_view_local(0, &Datatype::byte(), &ft).unwrap();
            let total: u64 = runs.iter().map(|r| r.1).sum();
            let mut buf = vec![0u8; total as usize];
            let mem = Datatype::contiguous(buf.len(), Datatype::byte());
            f.read_at_all(0, &mut buf, 1, &mem).unwrap();
            // Verify against the seeded pattern.
            let mut pos = 0usize;
            for &(off, len) in runs {
                for i in 0..len {
                    assert_eq!(
                        buf[pos],
                        content2[(off + i) as usize],
                        "rank {} byte {} of run ({off},{len})",
                        c.rank(),
                        i
                    );
                    pos += 1;
                }
            }
        });
    }
}
