//! Error type for the MPI-IO layer.

use std::fmt;

use pnetcdf_mpi::MpiError;

/// Errors surfaced by MPI-IO operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MpioError {
    /// Propagated MPI failure (poisoned world, bad rank, ...).
    Mpi(MpiError),
    /// The file does not exist / already exists / mode conflict.
    Access(String),
    /// Bad argument (negative offset, view mismatch, buffer too small...).
    InvalidArgument(String),
    /// The retry budget ran out while recovering from injected storage
    /// faults (e.g. a server crashed and never restarted).
    Exhausted {
        /// Attempts made before giving up.
        attempts: u32,
        /// Human-readable description of the failing operation.
        message: String,
    },
    /// The retry budget ran out against a single crashed server *and* the
    /// parity layer can route around it: the collective error agreement
    /// turns this into one agreed verdict, every rank marks the server
    /// down, and the operation is retried in degraded mode.
    ServerLost {
        /// Index of the crashed server.
        server: usize,
        /// Human-readable description of the failing operation.
        message: String,
    },
}

impl fmt::Display for MpioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MpioError::Mpi(e) => write!(f, "MPI error: {e}"),
            MpioError::Access(msg) => write!(f, "file access error: {msg}"),
            MpioError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
            MpioError::Exhausted { attempts, message } => {
                write!(
                    f,
                    "I/O retry budget exhausted after {attempts} attempts: {message}"
                )
            }
            MpioError::ServerLost { server, message } => {
                write!(f, "I/O server {server} lost (failover eligible): {message}")
            }
        }
    }
}

impl std::error::Error for MpioError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MpioError::Mpi(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MpiError> for MpioError {
    fn from(e: MpiError) -> Self {
        MpioError::Mpi(e)
    }
}

/// Result alias for MPI-IO operations.
pub type MpioResult<T> = Result<T, MpioError>;
