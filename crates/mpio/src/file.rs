//! `MPI_File`: open/close, views, independent and collective data access.

use std::sync::Arc;

use hpc_sim::trace::events::layer;
use hpc_sim::{CollKind, Phase, PhaseScope, Span, Time, TraceCtx};
use parking_lot::Mutex;
use pnetcdf_mpi::{pack, Comm, Datatype, Info};
use pnetcdf_pfs::{Pfs, PfsFile};

use crate::cache::{CacheConfig, CacheLedger, PageCache};
use crate::error::{MpioError, MpioResult};
use crate::hints::{Hints, Toggle};
use crate::sieve;
use crate::twophase::{self, TwoPhaseParams};
use crate::view::{runs_total, FileView, FlattenCache, Run};

/// How to open the file (`MPI_MODE_*` combinations we support).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpenMode {
    /// Create or truncate, read-write (`CREATE | RDWR`).
    Create,
    /// Create, failing if the file exists (`CREATE | EXCL | RDWR`).
    CreateExcl,
    /// Open existing, read-write (`RDWR`).
    ReadWrite,
    /// Open existing, read-only (`RDONLY`).
    ReadOnly,
}

/// An open MPI-IO file handle (per rank).
pub struct MpiFile {
    comm: Comm,
    file: PfsFile,
    view: FileView,
    hints: Hints,
    readonly: bool,
    /// Client-side page cache (`pnc_cache=enable`); per rank, so no lock
    /// contention — the mutex only provides interior mutability behind the
    /// `&self` data-access methods.
    cache: Option<Mutex<PageCache>>,
    /// Memoized view-flattening results; keyed by view signature, so
    /// `set_view` needs no invalidation.
    flatten: Mutex<FlattenCache>,
}

impl MpiFile {
    /// Collectively open `name` on `pfs` (`MPI_File_open`). The namespace
    /// operation happens exactly once (at the last arriver); every rank
    /// receives the same handle or the same error.
    pub fn open(
        comm: &Comm,
        pfs: &Pfs,
        name: &str,
        mode: OpenMode,
        info: &Info,
    ) -> MpioResult<MpiFile> {
        let (hints, rejected) = Hints::from_info_audited(info);
        // Unknown `pnc_*` keys and malformed values never change behavior
        // (the parser falls back to defaults), but they are almost always a
        // misspelling the user would want to know about: count them in the
        // profile and leave a debug line. Rank 0 only, so a 64-rank open
        // with one bad hint counts it once.
        if comm.rank() == 0 {
            for r in &rejected {
                comm.config().profile.record_hint_rejected();
                eprintln!("pnetcdf: rejected hint {r} for {name}");
            }
        }
        if hints.trace_events.resolve(false) {
            // `pnc_trace_events`: turn on the shared span recorder. The
            // log rides in the SimConfig, so (like the queue-depth hint)
            // enabling it is global to the simulated platform.
            comm.config().events.set_enabled(true);
        }
        if let Some(depth) = hints.server_queue_depth {
            // `pnc_server_queue_depth`: resize every server's bounded
            // admission queue. The servers are shared, so the hint is
            // global — exactly like striping parameters on a real PFS.
            pfs.set_queue_depth(depth);
        }
        if hints.parity != Toggle::Auto {
            // `pnc_parity`: toggle the declustered-parity failover layer.
            // Like the queue depth, the redundancy scheme is a property of
            // the shared storage array, so the hint is global.
            pfs.set_parity(hints.parity.resolve(false));
        }
        let env = comm.coll_env();
        let pfs = pfs.clone();
        let name_owned = name.to_string();
        let res: Arc<Result<PfsFile, String>> = comm.collective(Vec::new(), move |_| {
            let cost = env.config.network.barrier(env.size()) + env.config.cpu.metadata_op;
            env.sync_collective(CollKind::Barrier, 0, cost);
            match mode {
                OpenMode::Create => Ok(pfs.create(&name_owned)),
                OpenMode::CreateExcl => {
                    if pfs.exists(&name_owned) {
                        Err(format!("file '{name_owned}' already exists"))
                    } else {
                        Ok(pfs.create(&name_owned))
                    }
                }
                OpenMode::ReadWrite | OpenMode::ReadOnly => pfs
                    .open(&name_owned)
                    .ok_or_else(|| format!("file '{name_owned}' does not exist")),
            }
        })?;
        match &*res {
            Ok(f) => {
                let cfg = comm.config();
                let cache = hints.cache.resolve(false).then(|| {
                    let page_size = if hints.cache_page_size > 0 {
                        hints.cache_page_size
                    } else {
                        cfg.stripe_size
                    };
                    Mutex::new(PageCache::new(
                        CacheConfig {
                            page_size,
                            capacity_bytes: hints.cache_size,
                            readahead_pages: hints.cache_readahead,
                        },
                        cfg.cpu,
                        f,
                    ))
                });
                Ok(MpiFile {
                    comm: comm.clone(),
                    file: f.clone(),
                    view: FileView::contiguous(),
                    hints,
                    readonly: mode == OpenMode::ReadOnly,
                    cache,
                    flatten: Mutex::new(FlattenCache::new()),
                })
            }
            Err(e) => Err(MpioError::Access(e.clone())),
        }
    }

    /// The communicator the file was opened on.
    pub fn comm(&self) -> &Comm {
        &self.comm
    }

    /// The underlying PFS file (for export/diagnostics).
    pub fn raw(&self) -> &PfsFile {
        &self.file
    }

    /// Resolved hints.
    pub fn hints(&self) -> &Hints {
        &self.hints
    }

    /// Current file size (`MPI_File_get_size`).
    pub fn size(&self) -> u64 {
        self.file.size()
    }

    /// Collectively extend the file (`MPI_File_set_size`, grow only).
    pub fn set_size(&self, size: u64) -> MpioResult<()> {
        let env = self.comm.coll_env();
        let file = self.file.clone();
        self.comm
            .collective(Vec::new(), move |_| {
                file.grow_to(size);
                let cost = env.config.network.barrier(env.size()) + env.config.cpu.metadata_op;
                env.sync_collective(CollKind::Barrier, 0, cost);
            })
            .map(|_| ())
            .map_err(MpioError::from)
    }

    /// `MPI_File_sync`: flush + synchronize. The simulated PFS has no
    /// volatile cache, so this is a barrier plus a metadata operation.
    pub fn sync(&self) -> MpioResult<()> {
        // Publish cached dirty pages before the rendezvous so every rank's
        // bytes are on the PFS once the barrier completes.
        self.cache_pre()?;
        let env = self.comm.coll_env();
        self.comm
            .collective(Vec::new(), move |_| {
                let cost = env.config.network.barrier(env.size()) + env.config.cpu.metadata_op;
                env.sync_collective(CollKind::Barrier, 0, cost);
            })
            .map(|_| ())
            .map_err(MpioError::from)?;
        self.cache_post();
        Ok(())
    }

    /// Collectively set the file view (`MPI_File_set_view`).
    pub fn set_view(&mut self, disp: u64, etype: &Datatype, filetype: &Datatype) -> MpioResult<()> {
        let view = FileView::new(disp, etype, filetype)?;
        self.comm.barrier()?;
        self.view = view;
        Ok(())
    }

    /// Set the view without synchronization. Real PnetCDF achieves
    /// independent data mode by keeping a second handle opened on
    /// `MPI_COMM_SELF`; changing the view on that handle involves no other
    /// rank. This method models that path.
    pub fn set_view_local(
        &mut self,
        disp: u64,
        etype: &Datatype,
        filetype: &Datatype,
    ) -> MpioResult<()> {
        self.view = FileView::new(disp, etype, filetype)?;
        Ok(())
    }

    /// The current view.
    pub fn view(&self) -> &FileView {
        &self.view
    }

    /// Is the client-side page cache active on this handle
    /// (`pnc_cache=enable`)?
    pub fn cache_enabled(&self) -> bool {
        self.cache.is_some()
    }

    /// Charge a cache operation's virtual time to the trace: memcpy work to
    /// [`Phase::Cache`], miss fills and write-behind to the disk phases.
    /// Three scoped advances keep the coverage invariant exact.
    fn apply_ledger(&self, led: &CacheLedger) {
        if led.cache_nanos > 0 {
            let _s = PhaseScope::enter(Phase::Cache);
            self.comm.advance(Time::from_nanos(led.cache_nanos));
        }
        if led.read_nanos > 0 {
            let _s = PhaseScope::enter(Phase::DiskRead);
            self.comm.advance(Time::from_nanos(led.read_nanos));
        }
        if led.write_nanos > 0 {
            let _s = PhaseScope::enter(Phase::DiskWrite);
            self.comm.advance(Time::from_nanos(led.write_nanos));
        }
    }

    /// Pre-synchronization cache work: publish dirty pages (write-behind)
    /// and advance the file's coherence epoch if anything was published.
    /// Must run *before* the collective rendezvous.
    fn cache_pre(&self) -> MpioResult<()> {
        if let Some(cache) = &self.cache {
            let mut led = CacheLedger::new(self.comm.now());
            let res = cache.lock().sync_prepare(&self.file, &mut led);
            self.apply_ledger(&led);
            res?;
        }
        Ok(())
    }

    /// Post-synchronization cache work: drop clean cached bytes if any rank
    /// advanced the epoch. Must run *after* the collective rendezvous, so
    /// every rank's [`Self::cache_pre`] happens-before this check.
    fn cache_post(&self) {
        if let Some(cache) = &self.cache {
            cache.lock().sync_complete(&self.file);
        }
    }

    /// A coherence boundary without other I/O semantics: flush, rendezvous,
    /// revalidate. PnetCDF calls this where netCDF semantics promise
    /// visibility (e.g. entering define mode). No-op when the cache is
    /// disabled, so uncached runs keep their exact timings.
    pub fn cache_boundary(&self) -> MpioResult<()> {
        if self.cache.is_none() {
            return Ok(());
        }
        self.cache_pre()?;
        self.comm.barrier()?;
        self.cache_post();
        Ok(())
    }

    /// Ambient trace context for this rank's independent I/O: keeps the
    /// caller's request id (core installs one around its blocking and
    /// flush paths) while pinning the world rank, so pfs / cache / retry
    /// spans recorded below land on this rank's timeline.
    fn trace_ctx(&self) -> Option<TraceCtx> {
        self.comm
            .config()
            .events
            .is_enabled()
            .then(|| TraceCtx::enter(self.comm.world_rank(), TraceCtx::current_id()))
    }

    fn check_writable(&self) -> MpioResult<()> {
        if self.readonly {
            return Err(MpioError::Access("file is opened read-only".into()));
        }
        Ok(())
    }

    /// Pack the memory buffer described by `(buf, count, memtype)` into
    /// contiguous staging bytes, charging pack CPU time for noncontiguous
    /// layouts. Contiguous memory is borrowed as-is — no staging copy.
    fn stage<'a>(
        &self,
        buf: &'a [u8],
        count: usize,
        memtype: &Datatype,
    ) -> MpioResult<std::borrow::Cow<'a, [u8]>> {
        let bytes = memtype.size() as usize * count;
        if memtype.is_contiguous() && memtype.lb() == 0 {
            if buf.len() < bytes {
                return Err(MpioError::InvalidArgument(format!(
                    "memory buffer has {} bytes, datatype needs {bytes}",
                    buf.len()
                )));
            }
            self.comm.config().profile.record_bytepath(|b| {
                b.copies_elided += 1;
                b.borrowed_bytes += bytes as u64;
            });
            return Ok(std::borrow::Cow::Borrowed(&buf[..bytes]));
        }
        let data = pack::pack(buf, count, memtype)?;
        self.comm
            .advance(self.comm.config().cpu.pack(data.len(), 1.0));
        Ok(std::borrow::Cow::Owned(data))
    }

    fn params(&self) -> TwoPhaseParams {
        let cfg = self.comm.config();
        TwoPhaseParams {
            cb_buffer_size: self.hints.cb_buffer_size,
            cb_nodes: self
                .hints
                .cb_nodes
                .map(|_| self.hints.aggregators(self.comm.size(), cfg.io_servers)),
            io_servers: cfg.io_servers,
            stripe: cfg.stripe_size as u64,
            pipeline: self.hints.cb_pipeline.resolve(true),
            affinity: self.hints.cb_affinity.resolve(true),
        }
    }

    /// Map a view-relative access to absolute file runs through the
    /// memoizing flatten cache.
    fn mapped(&self, offset_etypes: u64, len: u64) -> MpioResult<Arc<Vec<Run>>> {
        let mut cache = self.flatten.lock();
        let before = cache.stats();
        let runs = cache.map(&self.view, offset_etypes, len);
        let profile = &self.comm.config().profile;
        if profile.is_enabled() {
            let after = cache.stats();
            profile.record_bytepath(|b| {
                b.flatten_hits += after.0 - before.0;
                b.flatten_misses += after.1 - before.1;
            });
        }
        runs
    }

    /// `(hits, misses)` of the view-flattening memoization cache.
    pub fn flatten_stats(&self) -> (u64, u64) {
        self.flatten.lock().stats()
    }

    /// Validate a caller-supplied run list: sorted, non-overlapping, and
    /// totalling `data_len` bytes.
    fn check_runs(runs: &[Run], data_len: usize) -> MpioResult<()> {
        let mut prev_end = 0u64;
        for &(off, len) in runs {
            if off < prev_end {
                return Err(MpioError::InvalidArgument(
                    "run list must be sorted and non-overlapping".into(),
                ));
            }
            prev_end = off + len;
        }
        let total = runs_total(runs);
        if total != data_len as u64 {
            return Err(MpioError::InvalidArgument(format!(
                "run list covers {total} bytes but the buffer has {data_len}"
            )));
        }
        Ok(())
    }

    // ---- independent data access ------------------------------------------

    /// Independent write of pre-resolved absolute file runs: the data-sieving
    /// path without view mapping. `runs` must be sorted and non-overlapping;
    /// `data` holds the run bytes concatenated in run order.
    pub fn write_runs_at(&self, runs: &[Run], data: &[u8]) -> MpioResult<usize> {
        self.check_writable()?;
        Self::check_runs(runs, data.len())?;
        let _tc = self.trace_ctx();
        if let Some(cache) = &self.cache {
            // Write-allocate into the page cache; bytes reach the PFS at
            // the next flush point (eviction, sync, collective entry).
            let mut led = CacheLedger::new(self.comm.now());
            let res = cache.lock().write_runs(&self.file, &mut led, runs, data);
            self.apply_ledger(&led);
            res?;
            return Ok(data.len());
        }
        let ds = self.hints.ds_write.resolve(true);
        let _attr = PhaseScope::enter(Phase::DiskWrite);
        let t = sieve::write(
            &self.file,
            self.hints.ind_wr_buffer_size,
            ds,
            self.comm.now(),
            runs,
            data,
        )?;
        self.comm.advance_to(t);
        Ok(data.len())
    }

    /// Independent read of pre-resolved absolute file runs; returns the run
    /// bytes concatenated in run order.
    pub fn read_runs_at(&self, runs: &[Run]) -> MpioResult<Vec<u8>> {
        Self::check_runs(runs, runs_total(runs) as usize)?;
        let _tc = self.trace_ctx();
        if let Some(cache) = &self.cache {
            let mut led = CacheLedger::new(self.comm.now());
            let res = cache.lock().read_runs(&self.file, &mut led, runs);
            self.apply_ledger(&led);
            return res;
        }
        let ds = self.hints.ds_read.resolve(true);
        let _attr = PhaseScope::enter(Phase::DiskRead);
        let (data, t) = sieve::read(
            &self.file,
            self.hints.ind_rd_buffer_size,
            ds,
            self.comm.now(),
            runs,
        )?;
        self.comm.advance_to(t);
        Ok(data)
    }

    /// Independent write at `offset` (in etypes of the current view)
    /// (`MPI_File_write_at`). Returns bytes written.
    pub fn write_at(
        &self,
        offset: u64,
        buf: &[u8],
        count: usize,
        memtype: &Datatype,
    ) -> MpioResult<usize> {
        self.check_writable()?;
        let data = self.stage(buf, count, memtype)?;
        let runs = self.mapped(offset, data.len() as u64)?;
        self.write_runs_at(&runs, &data)
    }

    /// Independent read at `offset` (`MPI_File_read_at`). Returns bytes read.
    pub fn read_at(
        &self,
        offset: u64,
        buf: &mut [u8],
        count: usize,
        memtype: &Datatype,
    ) -> MpioResult<usize> {
        let want = memtype.size() as usize * count;
        let runs = self.mapped(offset, want as u64)?;
        let data = self.read_runs_at(&runs)?;
        if memtype.is_contiguous() && memtype.lb() == 0 {
            if buf.len() < data.len() {
                return Err(MpioError::InvalidArgument(format!(
                    "memory buffer has {} bytes, read produced {}",
                    buf.len(),
                    data.len()
                )));
            }
            buf[..data.len()].copy_from_slice(&data);
        } else {
            pack::unpack(&data, buf, count, memtype)?;
            self.comm
                .advance(self.comm.config().cpu.pack(data.len(), 1.0));
        }
        Ok(want)
    }

    // ---- collective data access ----------------------------------------------

    /// Collective write (`MPI_File_write_at_all`): two-phase I/O unless
    /// disabled by `romio_cb_write`. Returns bytes written.
    pub fn write_at_all(
        &self,
        offset: u64,
        buf: &[u8],
        count: usize,
        memtype: &Datatype,
    ) -> MpioResult<usize> {
        let data = self.stage(buf, count, memtype)?;
        let runs = self.mapped(offset, data.len() as u64)?;
        self.write_runs_at_all(&runs, &data)
    }

    /// Collective write of pre-resolved absolute file runs: the two-phase
    /// path without view mapping, for callers (such as PnetCDF's
    /// `wait_all`) that have already merged many requests into one sorted
    /// run list. Ranks may contribute empty lists but must all participate.
    pub fn write_runs_at_all(&self, runs: &[Run], data: &[u8]) -> MpioResult<usize> {
        self.check_writable()?;
        Self::check_runs(runs, data.len())?;
        // Collective entry is a coherence boundary: publish cached dirty
        // bytes first so the two-phase engine reads/writes a settled file.
        self.cache_pre()?;
        let nbytes = data.len();
        // The sender's ambient trace id rides the parcel: the finish
        // closure runs on one thread for all ranks, so thread-local
        // context cannot carry per-rank ids across the rendezvous.
        let parcel = twophase::encode_write_req(runs, data, TraceCtx::current_id());

        let env = self.comm.coll_env();
        let file = self.file.clone();
        let p = self.params();
        let cb = self.hints.cb_write.resolve(true);
        let (wr_buf, ds) = (
            self.hints.ind_wr_buffer_size,
            self.hints.ds_write.resolve(true),
        );
        let res: Arc<MpioResult<()>> =
            self.comm
                .collective(vec![parcel], move |mut deps| -> MpioResult<()> {
                    let parcels: Vec<Vec<u8>> =
                        deps.iter_mut().map(|d| std::mem::take(&mut d[0])).collect();
                    let mut reqs: Vec<(Vec<Run>, &[u8])> = Vec::with_capacity(parcels.len());
                    let mut ids: Vec<u64> = Vec::with_capacity(parcels.len());
                    for pc in &parcels {
                        let (r, d, id) = twophase::decode_req(pc)?;
                        reqs.push((r, d));
                        ids.push(id);
                    }
                    if cb {
                        twophase::write_all(&env, &file, &p, &reqs, &ids)?;
                    } else {
                        // Collective buffering disabled: every rank writes its
                        // own pieces independently (the ablation baseline).
                        let profile = &env.config.profile;
                        let events = &env.config.events;
                        for (i, (runs, data)) in reqs.iter().enumerate() {
                            let w = env.group[i];
                            let _ctx = events.is_enabled().then(|| TraceCtx::enter(w, ids[i]));
                            let before = env.clocks.now(w);
                            let t = sieve::write(&file, wr_buf, ds, before, runs, data)?;
                            profile.record_phase(
                                w,
                                Phase::DiskWrite,
                                t.saturating_sub(before).as_nanos(),
                            );
                            if events.is_enabled() && t > before {
                                events.record(
                                    Span::new(
                                        w,
                                        layer::MPIO,
                                        "ind_write",
                                        before.as_nanos(),
                                        t.as_nanos(),
                                    )
                                    .with_parent(ids[i]),
                                );
                            }
                            env.clocks.advance_to(w, t);
                        }
                    }
                    // The file changed under every client cache: advance the
                    // epoch once (the closure runs at the last arriver).
                    if reqs.iter().any(|(_, d)| !d.is_empty()) {
                        file.bump_coherence_epoch();
                    }
                    Ok(())
                })?;
        (*res).clone()?;
        self.cache_post();
        Ok(nbytes)
    }

    /// Collective read (`MPI_File_read_at_all`). Returns bytes read.
    pub fn read_at_all(
        &self,
        offset: u64,
        buf: &mut [u8],
        count: usize,
        memtype: &Datatype,
    ) -> MpioResult<usize> {
        let want = memtype.size() as usize * count;
        let runs = self.mapped(offset, want as u64)?;
        let data = self.read_runs_at_all(&runs)?;
        if memtype.is_contiguous() && memtype.lb() == 0 {
            if buf.len() < data.len() {
                return Err(MpioError::InvalidArgument(format!(
                    "memory buffer has {} bytes, read produced {}",
                    buf.len(),
                    data.len()
                )));
            }
            buf[..data.len()].copy_from_slice(&data);
        } else {
            pack::unpack(&data, buf, count, memtype)?;
            self.comm
                .advance(self.comm.config().cpu.pack(data.len(), 1.0));
        }
        Ok(want)
    }

    /// Collective read of pre-resolved absolute file runs; returns the run
    /// bytes concatenated in run order. Ranks may contribute empty lists
    /// but must all participate.
    pub fn read_runs_at_all(&self, runs: &[Run]) -> MpioResult<Vec<u8>> {
        Self::check_runs(runs, runs_total(runs) as usize)?;
        // Publish this rank's cached dirty bytes before the rendezvous so
        // the collective read observes them (and every peer's).
        self.cache_pre()?;
        let parcel = twophase::encode_read_req(runs, TraceCtx::current_id());

        let env = self.comm.coll_env();
        let file = self.file.clone();
        let p = self.params();
        let cb = self.hints.cb_read.resolve(true);
        let (rd_buf, ds) = (
            self.hints.ind_rd_buffer_size,
            self.hints.ds_read.resolve(true),
        );
        let me = self.comm.rank();
        let res: Arc<MpioResult<Vec<Vec<u8>>>> =
            self.comm
                .collective(vec![parcel], move |mut deps| -> MpioResult<Vec<Vec<u8>>> {
                    let mut reqs: Vec<Vec<Run>> = Vec::with_capacity(deps.len());
                    let mut ids: Vec<u64> = Vec::with_capacity(deps.len());
                    for d in deps.iter_mut() {
                        let parcel = std::mem::take(&mut d[0]);
                        let (r, _, id) = twophase::decode_req(&parcel)?;
                        reqs.push(r);
                        ids.push(id);
                    }
                    if cb {
                        Ok(twophase::read_all(&env, &file, &p, &reqs, &ids)?.0)
                    } else {
                        let profile = &env.config.profile;
                        let events = &env.config.events;
                        let mut outs = Vec::with_capacity(reqs.len());
                        for (i, runs) in reqs.iter().enumerate() {
                            let w = env.group[i];
                            let _ctx = events.is_enabled().then(|| TraceCtx::enter(w, ids[i]));
                            let before = env.clocks.now(w);
                            let (data, t) = sieve::read(&file, rd_buf, ds, before, runs)?;
                            profile.record_phase(
                                w,
                                Phase::DiskRead,
                                t.saturating_sub(before).as_nanos(),
                            );
                            if events.is_enabled() && t > before {
                                events.record(
                                    Span::new(
                                        w,
                                        layer::MPIO,
                                        "ind_read",
                                        before.as_nanos(),
                                        t.as_nanos(),
                                    )
                                    .with_parent(ids[i]),
                                );
                            }
                            env.clocks.advance_to(w, t);
                            outs.push(data);
                        }
                        Ok(outs)
                    }
                })?;
        let data = match &*res {
            Ok(all) => all[me].clone(),
            Err(e) => return Err(e.clone()),
        };
        self.cache_post();
        debug_assert_eq!(data.len() as u64, runs_total(runs));
        Ok(data)
    }
}
