//! MPI-IO hint handling (the ROMIO hint set).
//!
//! Hints arrive in an [`pnetcdf_mpi::Info`] at open time. We implement the
//! subset that controls the two optimizations the paper leans on — two-phase
//! collective buffering (`cb_*`, `romio_cb_*`) and data sieving
//! (`ind_*_buffer_size`, `romio_ds_*`) — with ROMIO's defaults.

use pnetcdf_mpi::Info;

/// Tri-state toggle used by `romio_cb_write` etc.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Toggle {
    Enable,
    Disable,
    /// Let the implementation decide (ROMIO's "automatic").
    Auto,
}

impl Toggle {
    fn parse(s: Option<&str>) -> Toggle {
        match s {
            Some("enable") | Some("true") => Toggle::Enable,
            Some("disable") | Some("false") => Toggle::Disable,
            _ => Toggle::Auto,
        }
    }

    /// Resolve with the given default for `Auto`.
    pub fn resolve(self, auto_default: bool) -> bool {
        match self {
            Toggle::Enable => true,
            Toggle::Disable => false,
            Toggle::Auto => auto_default,
        }
    }
}

/// Parsed hints, with ROMIO-era defaults.
#[derive(Clone, Debug)]
pub struct Hints {
    /// Collective buffering buffer size per aggregator (`cb_buffer_size`).
    pub cb_buffer_size: usize,
    /// Number of aggregator ranks (`cb_nodes`); `None` = choose at open
    /// time (min of communicator size and I/O server count).
    pub cb_nodes: Option<usize>,
    /// Enable two-phase on collective writes (`romio_cb_write`).
    pub cb_write: Toggle,
    /// Enable two-phase on collective reads (`romio_cb_read`).
    pub cb_read: Toggle,
    /// Pipeline the two-phase rounds (`pnc_cb_pipeline`): with double
    /// collective buffers per aggregator, round `j+1`'s data exchange
    /// overlaps round `j`'s disk access. Default: enabled (`Auto` resolves
    /// to on); `disable` reproduces the serial exchange-then-access timing
    /// for A/B comparisons.
    pub cb_pipeline: Toggle,
    /// Data-sieving buffer for independent reads (`ind_rd_buffer_size`).
    pub ind_rd_buffer_size: usize,
    /// Data-sieving buffer for independent writes (`ind_wr_buffer_size`).
    pub ind_wr_buffer_size: usize,
    /// Enable data sieving on independent writes (`romio_ds_write`).
    pub ds_write: Toggle,
    /// Enable data sieving on independent reads (`romio_ds_read`).
    pub ds_read: Toggle,
    /// Enable the client-side page cache (`pnc_cache`). Default: disabled
    /// (`Auto` resolves to off so uncached timings stay comparable).
    pub cache: Toggle,
    /// Page-cache byte budget (`pnc_cache_size`).
    pub cache_size: usize,
    /// Cache page size (`pnc_page_size`); 0 = use the PFS stripe unit.
    pub cache_page_size: usize,
    /// Pages of sequential readahead (`pnc_readahead`); 0 disables.
    pub cache_readahead: usize,
    /// Bounded admission queue depth on every PFS server
    /// (`pnc_server_queue_depth`); `None` keeps the platform default,
    /// `Some(0)` makes the queue unbounded. Applied at open time.
    pub server_queue_depth: Option<usize>,
    /// Server-affine collective-buffer domains (`pnc_cb_affinity`): assign
    /// each file stripe to the aggregator that owns its server, so every
    /// server sees exactly one aggregator stream and the dual-resource
    /// pipeline can overlap NIC with disk. Default: enabled (`Auto`
    /// resolves to on); `disable` restores contiguous block domains.
    pub cb_affinity: Toggle,
    /// Per-request event tracing (`pnc_trace_events`): record
    /// sim-clock-stamped spans from `iput` down to the server disk into
    /// the shared `hpc_sim::TraceLog`. Default: disabled (`Auto` resolves
    /// to off — tracing is opt-in per run).
    pub trace_events: Toggle,
    /// Declustered-parity redundancy across the I/O servers
    /// (`pnc_parity`): RAID-5-style rotated parity plus server failover —
    /// degraded reads, redirected writes, online rebuild. Default:
    /// disabled (`Auto` resolves to off; the parity-off stack is
    /// byte- and timing-identical to a build without the layer).
    pub parity: Toggle,
}

impl Default for Hints {
    fn default() -> Hints {
        Hints {
            cb_buffer_size: 4 * 1024 * 1024,
            cb_nodes: None,
            cb_write: Toggle::Auto,
            cb_read: Toggle::Auto,
            cb_pipeline: Toggle::Auto,
            ind_rd_buffer_size: 4 * 1024 * 1024,
            ind_wr_buffer_size: 512 * 1024,
            ds_write: Toggle::Auto,
            ds_read: Toggle::Auto,
            cache: Toggle::Auto,
            cache_size: 8 * 1024 * 1024,
            cache_page_size: 0,
            cache_readahead: 2,
            server_queue_depth: None,
            cb_affinity: Toggle::Auto,
            trace_events: Toggle::Auto,
            parity: Toggle::Auto,
        }
    }
}

/// Every hint key this implementation consumes. Keys outside this list are
/// ignored per the MPI standard — except unknown `pnc_`-prefixed keys, which
/// the audit flags (they were addressed at *this* library and can only be a
/// misspelling).
const KNOWN_KEYS: &[&str] = &[
    "cb_buffer_size",
    "cb_nodes",
    "romio_cb_write",
    "romio_cb_read",
    "pnc_cb_pipeline",
    "ind_rd_buffer_size",
    "ind_wr_buffer_size",
    "romio_ds_write",
    "romio_ds_read",
    "pnc_cache",
    "pnc_cache_size",
    "pnc_page_size",
    "pnc_readahead",
    "pnc_server_queue_depth",
    "pnc_cb_affinity",
    "pnc_trace_events",
    "pnc_parity",
];

/// Is `v` a well-formed value for the tri-state toggles?
fn valid_toggle(v: &str) -> bool {
    matches!(
        v,
        "enable" | "disable" | "true" | "false" | "automatic" | "auto"
    )
}

impl Hints {
    /// Parse hints from an info object, falling back to defaults.
    pub fn from_info(info: &Info) -> Hints {
        let d = Hints::default();
        Hints {
            cb_buffer_size: info
                .get_usize("cb_buffer_size")
                .filter(|&v| v > 0)
                .unwrap_or(d.cb_buffer_size),
            cb_nodes: info.get_usize("cb_nodes").filter(|&v| v > 0),
            cb_write: Toggle::parse(info.get("romio_cb_write")),
            cb_read: Toggle::parse(info.get("romio_cb_read")),
            cb_pipeline: Toggle::parse(info.get("pnc_cb_pipeline")),
            ind_rd_buffer_size: info
                .get_usize("ind_rd_buffer_size")
                .filter(|&v| v > 0)
                .unwrap_or(d.ind_rd_buffer_size),
            ind_wr_buffer_size: info
                .get_usize("ind_wr_buffer_size")
                .filter(|&v| v > 0)
                .unwrap_or(d.ind_wr_buffer_size),
            ds_write: Toggle::parse(info.get("romio_ds_write")),
            ds_read: Toggle::parse(info.get("romio_ds_read")),
            cache: Toggle::parse(info.get("pnc_cache")),
            cache_size: info
                .get_usize("pnc_cache_size")
                .filter(|&v| v > 0)
                .unwrap_or(d.cache_size),
            cache_page_size: info.get_usize("pnc_page_size").unwrap_or(d.cache_page_size),
            // 0 is a meaningful value here (readahead off), so no filter.
            cache_readahead: info.get_usize("pnc_readahead").unwrap_or(d.cache_readahead),
            // 0 is meaningful (unbounded queue), so no filter.
            server_queue_depth: info.get_usize("pnc_server_queue_depth"),
            cb_affinity: Toggle::parse(info.get("pnc_cb_affinity")),
            trace_events: Toggle::parse(info.get("pnc_trace_events")),
            parity: Toggle::parse(info.get("pnc_parity")),
        }
    }

    /// Parse hints and audit the info object: returns the parsed hints
    /// (identical to [`Hints::from_info`] — a bad value never changes
    /// behavior, it falls back) plus a human-readable description of every
    /// rejected entry. Rejected means an unknown `pnc_*` key, or a known
    /// key whose value is malformed (unparseable number, zero where zero
    /// is meaningless, unrecognized toggle word).
    pub fn from_info_audited(info: &Info) -> (Hints, Vec<String>) {
        let mut rejected = Vec::new();
        // Info iterates a BTreeMap, so the audit order is deterministic.
        for (k, v) in info.iter() {
            if !KNOWN_KEYS.contains(&k) {
                if k.starts_with("pnc_") {
                    rejected.push(format!("{k}={v} (unknown pnc_ hint)"));
                }
                continue;
            }
            let ok = match k {
                "romio_cb_write" | "romio_cb_read" | "pnc_cb_pipeline" | "romio_ds_write"
                | "romio_ds_read" | "pnc_cache" | "pnc_cb_affinity" | "pnc_trace_events"
                | "pnc_parity" => valid_toggle(v),
                // Zero-sized buffers and zero aggregators are meaningless;
                // from_info filters them out, so the audit flags them.
                "cb_buffer_size" | "cb_nodes" | "ind_rd_buffer_size" | "ind_wr_buffer_size"
                | "pnc_cache_size" => v.parse::<usize>().map(|n| n > 0).unwrap_or(false),
                // Zero is meaningful here (stripe-sized pages, readahead
                // off, unbounded queue) — only unparseable values reject.
                "pnc_page_size" | "pnc_readahead" | "pnc_server_queue_depth" => {
                    v.parse::<usize>().is_ok()
                }
                _ => unreachable!("key {k} is in KNOWN_KEYS but not audited"),
            };
            if !ok {
                rejected.push(format!("{k}={v} (malformed value)"));
            }
        }
        (Hints::from_info(info), rejected)
    }

    /// Number of aggregators for a communicator of `nprocs` over
    /// `io_servers` servers, before the per-collective volume cap.
    ///
    /// With the dual-resource servers, more aggregator streams per server
    /// only queue behind one disk, so the default matches aggregators to
    /// I/O servers (one stream each keeps every NIC+disk pipeline full).
    /// A `cb_nodes` hint overrides; collectives that know their request
    /// volume shrink the unhinted default further
    /// (`twophase::dynamic_cb_nodes`).
    pub fn aggregators(&self, nprocs: usize, io_servers: usize) -> usize {
        self.cb_nodes.unwrap_or(io_servers).min(nprocs).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_without_hints() {
        let h = Hints::from_info(&Info::new());
        assert_eq!(h.cb_buffer_size, 4 * 1024 * 1024);
        assert_eq!(h.cb_nodes, None);
        assert_eq!(h.cb_write, Toggle::Auto);
        assert!(h.cb_write.resolve(true));
        assert!(!h.cb_write.resolve(false));
        // Pipelining defaults on.
        assert_eq!(h.cb_pipeline, Toggle::Auto);
        assert!(h.cb_pipeline.resolve(true));
    }

    #[test]
    fn pipeline_hint_parses() {
        let h = Hints::from_info(&Info::new().with("pnc_cb_pipeline", "disable"));
        assert_eq!(h.cb_pipeline, Toggle::Disable);
        assert!(!h.cb_pipeline.resolve(true));
        let h = Hints::from_info(&Info::new().with("pnc_cb_pipeline", "enable"));
        assert_eq!(h.cb_pipeline, Toggle::Enable);
    }

    #[test]
    fn parses_romio_hints() {
        let info = Info::new()
            .with("cb_buffer_size", "1048576")
            .with("cb_nodes", "3")
            .with("romio_cb_write", "disable")
            .with("romio_ds_read", "enable");
        let h = Hints::from_info(&info);
        assert_eq!(h.cb_buffer_size, 1048576);
        assert_eq!(h.cb_nodes, Some(3));
        assert_eq!(h.cb_write, Toggle::Disable);
        assert!(!h.cb_write.resolve(true));
        assert_eq!(h.ds_read, Toggle::Enable);
    }

    #[test]
    fn invalid_hints_fall_back() {
        let info = Info::new()
            .with("cb_buffer_size", "zero")
            .with("cb_nodes", "0");
        let h = Hints::from_info(&info);
        assert_eq!(h.cb_buffer_size, 4 * 1024 * 1024);
        assert_eq!(h.cb_nodes, None);
    }

    #[test]
    fn cache_hints() {
        let d = Hints::from_info(&Info::new());
        assert_eq!(d.cache, Toggle::Auto);
        assert!(!d.cache.resolve(false), "cache defaults off");
        assert_eq!(d.cache_size, 8 * 1024 * 1024);
        assert_eq!(d.cache_page_size, 0);
        assert_eq!(d.cache_readahead, 2);
        let info = Info::new()
            .with("pnc_cache", "enable")
            .with("pnc_cache_size", "65536")
            .with("pnc_page_size", "4096")
            .with("pnc_readahead", "0");
        let h = Hints::from_info(&info);
        assert!(h.cache.resolve(false));
        assert_eq!(h.cache_size, 65536);
        assert_eq!(h.cache_page_size, 4096);
        assert_eq!(h.cache_readahead, 0, "explicit 0 must stick");
    }

    #[test]
    fn aggregator_selection() {
        let h = Hints::default();
        assert_eq!(h.aggregators(32, 12), 12);
        assert_eq!(h.aggregators(4, 12), 4);
        // One aggregator stream per I/O server: no per-node floor.
        assert_eq!(h.aggregators(32, 2), 2);
        assert_eq!(h.aggregators(4, 2), 2);
        let h2 = Hints {
            cb_nodes: Some(2),
            ..Hints::default()
        };
        assert_eq!(h2.aggregators(32, 12), 2);
        assert_eq!(h2.aggregators(1, 12), 1);
    }

    #[test]
    fn server_engine_hints() {
        let d = Hints::from_info(&Info::new());
        assert_eq!(d.server_queue_depth, None);
        assert_eq!(d.cb_affinity, Toggle::Auto);
        assert!(d.cb_affinity.resolve(true), "affinity defaults on");
        let info = Info::new()
            .with("pnc_server_queue_depth", "0")
            .with("pnc_cb_affinity", "disable");
        let h = Hints::from_info(&info);
        assert_eq!(
            h.server_queue_depth,
            Some(0),
            "explicit 0 (unbounded) sticks"
        );
        assert!(!h.cb_affinity.resolve(true));
        let h = Hints::from_info(&Info::new().with("pnc_server_queue_depth", "16"));
        assert_eq!(h.server_queue_depth, Some(16));
    }

    #[test]
    fn parity_hint() {
        let d = Hints::from_info(&Info::new());
        assert_eq!(d.parity, Toggle::Auto);
        assert!(!d.parity.resolve(false), "parity defaults off");
        let h = Hints::from_info(&Info::new().with("pnc_parity", "enable"));
        assert_eq!(h.parity, Toggle::Enable);
        assert!(h.parity.resolve(false));
        let h = Hints::from_info(&Info::new().with("pnc_parity", "disable"));
        assert!(!h.parity.resolve(false));
    }

    #[test]
    fn audit_flags_unknown_pnc_and_malformed_values() {
        let info = Info::new()
            .with("pnc_cachesize", "65536") // misspelled pnc_ key
            .with("cb_buffer_size", "zero") // unparseable number
            .with("cb_nodes", "0") // zero aggregators
            .with("pnc_parity", "yes") // bad toggle word
            .with("striping_factor", "4") // foreign hint: silently ignored
            .with("romio_ds_read", "enable"); // well-formed: accepted
        let (h, rejected) = Hints::from_info_audited(&info);
        assert_eq!(
            rejected,
            vec![
                "cb_buffer_size=zero (malformed value)",
                "cb_nodes=0 (malformed value)",
                "pnc_cachesize=65536 (unknown pnc_ hint)",
                "pnc_parity=yes (malformed value)",
            ]
        );
        // Rejects never change behavior: same fallbacks as from_info.
        assert_eq!(h.cb_buffer_size, 4 * 1024 * 1024);
        assert_eq!(h.cb_nodes, None);
        assert_eq!(h.parity, Toggle::Auto);
        assert_eq!(h.ds_read, Toggle::Enable);
    }

    #[test]
    fn audit_accepts_clean_info() {
        let info = Info::new()
            .with("pnc_server_queue_depth", "0")
            .with("pnc_readahead", "0")
            .with("romio_cb_write", "automatic");
        let (_, rejected) = Hints::from_info_audited(&info);
        assert!(rejected.is_empty(), "got rejects: {rejected:?}");
    }

    #[test]
    fn trace_events_hint() {
        let d = Hints::from_info(&Info::new());
        assert_eq!(d.trace_events, Toggle::Auto);
        assert!(!d.trace_events.resolve(false), "tracing defaults off");
        let h = Hints::from_info(&Info::new().with("pnc_trace_events", "enable"));
        assert_eq!(h.trace_events, Toggle::Enable);
        assert!(h.trace_events.resolve(false));
        let h = Hints::from_info(&Info::new().with("pnc_trace_events", "true"));
        assert!(h.trace_events.resolve(false));
    }
}
