//! MPI-IO: the parallel I/O layer PnetCDF is built on (paper §4.1).
//!
//! This crate is a ROMIO-shaped MPI-IO implementation over the simulated
//! parallel file system:
//!
//! * [`file::MpiFile`] — collective open/close, file views, independent and
//!   collective read/write with explicit offsets;
//! * [`view::FileView`] — `(displacement, etype, filetype)` views built from
//!   MPI derived datatypes, flattened to absolute file runs;
//! * [`sieve`] — **data sieving** for independent noncontiguous access;
//! * [`twophase`] — **two-phase collective I/O** with aggregator file
//!   domains and collective buffering;
//! * [`hints::Hints`] — the ROMIO hint set (`cb_buffer_size`, `cb_nodes`,
//!   `romio_cb_write`, `ind_rd_buffer_size`, ...).
//!
//! These are the two optimizations the paper credits for PnetCDF's
//! performance ("we benefit from ... data sieving and two-phase I/O in
//! ROMIO, which we would otherwise need to implement ourselves").

pub mod cache;
pub mod error;
pub mod file;
pub mod hints;
pub mod recover;
pub mod sieve;
pub mod twophase;
pub mod view;

pub use cache::{CacheConfig, CacheLedger, PageCache};
pub use error::{MpioError, MpioResult};
pub use file::{MpiFile, OpenMode};
pub use hints::{Hints, Toggle};
pub use recover::RetryPolicy;
pub use view::{FileView, Run};
