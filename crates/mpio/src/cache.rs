//! Client-side file page cache with write-behind, sequential readahead,
//! and cross-rank coherence epochs.
//!
//! The paper's bandwidth numbers ride on GPFS's *client-side* block
//! caching: small strided accesses are absorbed by pages cached at the
//! compute node, written behind as stripe-aligned full blocks, and read
//! ahead when a sequential pattern is detected (§4's hint discussion and
//! the Fig. 6 read/write asymmetry both assume it). This module is that
//! layer for the simulated stack: a per-rank cache of fixed-size pages
//! (aligned to the PFS stripe unit by default) sitting between the MPI-IO
//! independent data path and the PFS.
//!
//! Design points:
//!
//! * **Exact byte-run tracking.** Each page keeps sorted disjoint `valid`
//!   and `dirty` byte-run lists. Writes populate pages without a read
//!   fill; flushes write back *only the dirty runs* (zero-gap neighbours
//!   coalesced). Ranks routinely share boundary pages (block boundaries
//!   are rarely page-aligned), so flushing a whole page would clobber a
//!   sibling's bytes — false sharing is survived by construction.
//! * **Write-behind.** Dirty runs accumulate and flush on LRU eviction,
//!   `sync`, close, and collective entry; adjacent dirty runs from many
//!   small writes coalesce into single page-spanning PFS requests.
//! * **Readahead.** Two byte-contiguous reads in a row mark the stream
//!   sequential; the next `readahead` absent pages are fetched with one
//!   contiguous PFS read and inserted clean.
//! * **Coherence epochs.** Every PFS file carries a shared epoch counter.
//!   A cache that publishes dirty bytes bumps it; at synchronization
//!   points (after the collective rendezvous, so all pre-flushes
//!   happen-before the check) a cache whose remembered epoch is stale
//!   drops its clean bytes. Independent-mode changes therefore become
//!   visible to other ranks exactly at netCDF's sync/collective
//!   boundaries, and never silently in between.
//! * **Fault recovery.** All PFS traffic goes through [`crate::recover`],
//!   so a dirty page survives transient/short faults on flush and the
//!   retry/backoff cost lands in the disk phases of the trace.
//!
//! Virtual-time accounting runs through a [`CacheLedger`]: memcpy work is
//! charged to [`Phase::Cache`](hpc_sim::Phase), miss fills and flushes to
//! the disk phases, preserving the trace layer's coverage-1.0 invariant.

use std::collections::HashMap;

use hpc_sim::trace::events::{layer, stage};
use hpc_sim::{CpuModel, Span, Time, TraceCtx};
use pnetcdf_pfs::PfsFile;

use crate::error::MpioResult;
use crate::recover::{self, RetryPolicy};
use crate::view::Run;

/// A byte range within a page, half-open.
type PageRun = (u32, u32);

/// Resolved cache parameters (from the `pnc_*` hints).
#[derive(Clone, Copy, Debug)]
pub struct CacheConfig {
    /// Page size in bytes (default: the PFS stripe unit).
    pub page_size: usize,
    /// Byte budget; at least one page is always kept.
    pub capacity_bytes: usize,
    /// Pages to read ahead on a sequential stream (0 disables).
    pub readahead_pages: usize,
}

impl CacheConfig {
    fn capacity_pages(&self) -> usize {
        (self.capacity_bytes / self.page_size).max(1)
    }
}

/// Virtual-time ledger for one cache operation: the caller turns the
/// per-phase totals into scoped clock advances, keeping every nanosecond
/// attributed.
#[derive(Clone, Copy, Debug)]
pub struct CacheLedger {
    now: Time,
    /// Nanoseconds of client CPU work (page memcpy) — [`hpc_sim::Phase::Cache`].
    pub cache_nanos: u64,
    /// Nanoseconds of PFS reads (miss fills, readahead) — `Phase::DiskRead`.
    pub read_nanos: u64,
    /// Nanoseconds of PFS writes (write-behind flushes) — `Phase::DiskWrite`.
    pub write_nanos: u64,
}

impl CacheLedger {
    /// Start a ledger at the rank's current virtual time.
    pub fn new(now: Time) -> CacheLedger {
        CacheLedger {
            now,
            cache_nanos: 0,
            read_nanos: 0,
            write_nanos: 0,
        }
    }

    fn cpu(&mut self, t: Time) {
        self.now += t;
        self.cache_nanos += t.as_nanos();
    }

    fn disk_read(
        &mut self,
        file: &PfsFile,
        policy: &RetryPolicy,
        offset: u64,
        buf: &mut [u8],
    ) -> MpioResult<()> {
        let done = recover::read_at(file, policy, self.now, offset, buf)?;
        self.read_nanos += done.saturating_sub(self.now).as_nanos();
        self.now = done;
        Ok(())
    }

    fn disk_write(
        &mut self,
        file: &PfsFile,
        policy: &RetryPolicy,
        offset: u64,
        data: &[u8],
    ) -> MpioResult<()> {
        let done = recover::write_at(file, policy, self.now, offset, data)?;
        self.write_nanos += done.saturating_sub(self.now).as_nanos();
        self.now = done;
        Ok(())
    }
}

/// One cached page.
struct Page {
    data: Vec<u8>,
    /// Sorted, disjoint, non-adjacent byte runs holding cached bytes.
    valid: Vec<PageRun>,
    /// Subset of `valid` not yet written back.
    dirty: Vec<PageRun>,
    /// LRU tick of the last touch.
    last_use: u64,
    /// Fetched speculatively and not yet demanded (readahead-hit counting).
    readahead: bool,
}

impl Page {
    fn new(page_size: usize) -> Page {
        Page {
            data: vec![0u8; page_size],
            valid: Vec::new(),
            dirty: Vec::new(),
            last_use: 0,
            readahead: false,
        }
    }
}

/// Insert `[lo, hi)` into a sorted disjoint run list, merging overlapping
/// and adjacent runs.
fn insert_run(list: &mut Vec<PageRun>, lo: u32, hi: u32) {
    debug_assert!(lo < hi);
    let mut out: Vec<PageRun> = Vec::with_capacity(list.len() + 1);
    let (mut lo, mut hi) = (lo, hi);
    let mut placed = false;
    for &(a, b) in list.iter() {
        if b < lo || (placed && a > hi) {
            out.push((a, b));
        } else if a > hi {
            if !placed {
                out.push((lo, hi));
                placed = true;
            }
            out.push((a, b));
        } else {
            lo = lo.min(a);
            hi = hi.max(b);
        }
    }
    if !placed {
        out.push((lo, hi));
    }
    out.sort_unstable();
    *list = out;
}

/// Does the run list fully cover `[lo, hi)`?
fn covers(list: &[PageRun], lo: u32, hi: u32) -> bool {
    list.iter().any(|&(a, b)| a <= lo && hi <= b)
}

/// Record a CACHE-layer event span, parented to the ambient request (if
/// any) so cache work shows up on the request's flow in the Chrome trace.
/// Free when tracing is off: one relaxed atomic load.
fn trace_cache_span(file: &PfsFile, name: &'static str, begin: Time, end: Time, bytes: u64) {
    let events = file.events();
    if end <= begin || !events.is_enabled() {
        return;
    }
    if let Some((rank, parent)) = TraceCtx::current() {
        events.record(
            Span::new(rank, layer::CACHE, name, begin.as_nanos(), end.as_nanos())
                .with_parent(parent)
                .with_stage(stage::CACHE)
                .with_arg("bytes", bytes),
        );
    }
}

/// The sub-ranges of `[lo, hi)` *not* covered by the run list.
fn gaps(list: &[PageRun], lo: u32, hi: u32) -> Vec<PageRun> {
    let mut out = Vec::new();
    let mut pos = lo;
    for &(a, b) in list {
        if b <= pos {
            continue;
        }
        if a >= hi {
            break;
        }
        if a > pos {
            out.push((pos, a.min(hi)));
        }
        pos = pos.max(b);
        if pos >= hi {
            break;
        }
    }
    if pos < hi {
        out.push((pos, hi));
    }
    out
}

/// The per-rank page cache for one open file.
pub struct PageCache {
    cfg: CacheConfig,
    cpu: CpuModel,
    policy: RetryPolicy,
    pages: HashMap<u64, Page>,
    tick: u64,
    /// File coherence epoch this cache last synchronized at.
    seen_epoch: u64,
    /// End offset of the previous read (sequential-stream detection).
    last_read_end: u64,
    seq_streak: u32,
}

impl PageCache {
    /// Build a cache for `file` (remembers the file's current coherence
    /// epoch as its baseline).
    pub fn new(cfg: CacheConfig, cpu: CpuModel, file: &PfsFile) -> PageCache {
        PageCache {
            cfg,
            cpu,
            policy: RetryPolicy::default(),
            pages: HashMap::new(),
            tick: 0,
            seen_epoch: file.coherence_epoch(),
            last_read_end: u64::MAX,
            seq_streak: 0,
        }
    }

    /// The configured page size.
    pub fn page_size(&self) -> usize {
        self.cfg.page_size
    }

    fn touch(page: &mut Page, tick: &mut u64) {
        *tick += 1;
        page.last_use = *tick;
    }

    /// Split an absolute byte range into per-page pieces:
    /// `(page index, in-page lo, in-page hi)`.
    fn pieces(&self, off: u64, len: u64) -> Vec<(u64, u32, u32)> {
        let ps = self.cfg.page_size as u64;
        let mut out = Vec::new();
        let mut pos = off;
        let end = off + len;
        while pos < end {
            let page = pos / ps;
            let lo = pos - page * ps;
            let hi = (end - page * ps).min(ps);
            out.push((page, lo as u32, hi as u32));
            pos = (page + 1) * ps;
        }
        out
    }

    // ---- write path -------------------------------------------------------

    /// Write-allocate `runs`/`data` into the cache (no read fill): bytes
    /// become valid+dirty and are published at the next flush point.
    pub fn write_runs(
        &mut self,
        file: &PfsFile,
        led: &mut CacheLedger,
        runs: &[Run],
        data: &[u8],
    ) -> MpioResult<()> {
        let profile = file.profile().clone();
        let t0 = led.now;
        let mut pos = 0usize;
        let (mut hits, mut hit_bytes, mut misses) = (0u64, 0u64, 0u64);
        for &(off, len) in runs {
            for (pidx, lo, hi) in self.pieces(off, len) {
                let take = (hi - lo) as usize;
                let ps = self.cfg.page_size;
                let mut created = false;
                let page = self.pages.entry(pidx).or_insert_with(|| {
                    created = true;
                    Page::new(ps)
                });
                if created {
                    misses += 1;
                } else {
                    hits += 1;
                    hit_bytes += take as u64;
                }
                page.data[lo as usize..hi as usize].copy_from_slice(&data[pos..pos + take]);
                insert_run(&mut page.valid, lo, hi);
                insert_run(&mut page.dirty, lo, hi);
                if page.readahead {
                    page.readahead = false;
                    profile.record_cache(|c| c.readahead_hits += 1);
                }
                Self::touch(page, &mut self.tick);
                led.cpu(self.cpu.pack(take, 1.0));
                pos += take;
            }
        }
        profile.record_cache(|c| {
            c.hits += hits;
            c.hit_bytes += hit_bytes;
            c.misses += misses;
        });
        trace_cache_span(file, "cache_write", t0, led.now, pos as u64);
        self.evict_to_capacity(file, led)?;
        Ok(())
    }

    // ---- read path --------------------------------------------------------

    /// Read `runs` through the cache, returning the bytes concatenated in
    /// run order. Misses fill whole pages (consecutive absent pages with
    /// one PFS read); a sequential stream triggers readahead.
    pub fn read_runs(
        &mut self,
        file: &PfsFile,
        led: &mut CacheLedger,
        runs: &[Run],
    ) -> MpioResult<Vec<u8>> {
        let total: u64 = runs.iter().map(|r| r.1).sum();
        let mut out = vec![0u8; total as usize];
        let profile = file.profile().clone();
        let t0 = led.now;
        let mut pos = 0usize;
        for &(off, len) in runs {
            let pieces = self.pieces(off, len);
            // Fill absent coverage first, coalescing consecutive pages
            // that need disk bytes into single PFS reads.
            let mut need: Vec<u64> = Vec::new();
            for &(pidx, lo, hi) in &pieces {
                let known = self.pages.get(&pidx).map(|p| covers(&p.valid, lo, hi));
                match known {
                    Some(true) => {
                        profile.record_cache(|c| {
                            c.hits += 1;
                            c.hit_bytes += (hi - lo) as u64;
                        });
                        let page = self.pages.get_mut(&pidx).expect("checked");
                        if page.readahead {
                            page.readahead = false;
                            profile.record_cache(|c| c.readahead_hits += 1);
                        }
                    }
                    _ => {
                        profile.record_cache(|c| c.misses += 1);
                        need.push(pidx);
                    }
                }
            }
            for group in consecutive_groups(&need) {
                self.fill_pages(file, led, group, "cache_fill")?;
            }
            // Everything requested is now valid; copy out.
            for (pidx, lo, hi) in pieces {
                let take = (hi - lo) as usize;
                let page = self.pages.get_mut(&pidx).expect("filled above");
                debug_assert!(covers(&page.valid, lo, hi));
                out[pos..pos + take].copy_from_slice(&page.data[lo as usize..hi as usize]);
                Self::touch(page, &mut self.tick);
                led.cpu(self.cpu.pack(take, 1.0));
                pos += take;
            }
        }
        // Sequential detection + readahead on the whole request.
        if let (Some(&(first, _)), Some(&(last_off, last_len))) = (runs.first(), runs.last()) {
            let end = last_off + last_len;
            if first == self.last_read_end {
                self.seq_streak += 1;
            } else {
                self.seq_streak = 1;
            }
            self.last_read_end = end;
            if self.seq_streak >= 2 && self.cfg.readahead_pages > 0 {
                self.readahead(file, led, end)?;
            }
        }
        trace_cache_span(file, "cache_read", t0, led.now, total);
        self.evict_to_capacity(file, led)?;
        Ok(out)
    }

    /// Fill the invalid portions of consecutive pages `group` with one
    /// contiguous PFS read (clipped at EOF so a tail page does not charge
    /// for bytes past the end of the file).
    fn fill_pages(
        &mut self,
        file: &PfsFile,
        led: &mut CacheLedger,
        group: &[u64],
        span_name: &'static str,
    ) -> MpioResult<()> {
        let (first, last) = (group[0], group[group.len() - 1]);
        let ps = self.cfg.page_size as u64;
        let lo = first * ps;
        let hi = ((last + 1) * ps).min(file.size().max(lo + 1));
        let mut buf = vec![0u8; (hi - lo) as usize];
        let t0 = led.now;
        led.disk_read(file, &self.policy, lo, &mut buf)?;
        trace_cache_span(file, span_name, t0, led.now, hi - lo);
        for &pidx in group {
            let ps32 = self.cfg.page_size as u32;
            let page_lo = pidx * ps;
            let avail = (hi.saturating_sub(page_lo)).min(ps) as u32;
            let ps_usize = self.cfg.page_size;
            let page = self
                .pages
                .entry(pidx)
                .or_insert_with(|| Page::new(ps_usize));
            // Copy disk bytes only into gaps: cached dirty/valid bytes are
            // newer than the disk copy and must win.
            for (glo, ghi) in gaps(&page.valid, 0, ps32) {
                let ghi = ghi.min(avail);
                if glo >= ghi {
                    continue;
                }
                let src = (page_lo - lo) as usize + glo as usize;
                page.data[glo as usize..ghi as usize]
                    .copy_from_slice(&buf[src..src + (ghi - glo) as usize]);
            }
            // The whole page is now a faithful view (bytes past EOF are
            // zero, which is what the PFS reads there too).
            page.valid = vec![(0, ps32)];
            Self::touch(page, &mut self.tick);
        }
        Ok(())
    }

    /// Prefetch up to `readahead_pages` absent pages following `end`.
    fn readahead(&mut self, file: &PfsFile, led: &mut CacheLedger, end: u64) -> MpioResult<()> {
        let ps = self.cfg.page_size as u64;
        let size = file.size();
        let first = end.div_ceil(ps);
        let mut want: Vec<u64> = Vec::new();
        for pidx in first..first + self.cfg.readahead_pages as u64 {
            if pidx * ps >= size {
                break;
            }
            if !self.pages.contains_key(&pidx) {
                want.push(pidx);
            }
        }
        if want.is_empty() {
            return Ok(());
        }
        let profile = file.profile().clone();
        for group in consecutive_groups(&want) {
            self.fill_pages(file, led, group, "readahead_fill")?;
            for &pidx in group {
                if let Some(p) = self.pages.get_mut(&pidx) {
                    p.readahead = true;
                }
            }
            profile.record_cache(|c| c.readahead_issued += group.len() as u64);
        }
        self.evict_to_capacity(file, led)?;
        Ok(())
    }

    // ---- write-behind / eviction ------------------------------------------

    /// Flush every dirty run to the PFS (adjacent runs coalesced across
    /// page boundaries into single requests). Pages stay cached and clean.
    /// Returns the bytes written.
    pub fn flush(&mut self, file: &PfsFile, led: &mut CacheLedger) -> MpioResult<u64> {
        let ps = self.cfg.page_size as u64;
        // Absolute dirty runs, sorted.
        let mut dirty: Vec<(u64, u64)> = Vec::new(); // (abs lo, abs hi)
        let mut idxs: Vec<u64> = self
            .pages
            .iter()
            .filter(|(_, p)| !p.dirty.is_empty())
            .map(|(&i, _)| i)
            .collect();
        idxs.sort_unstable();
        for &i in &idxs {
            for &(lo, hi) in &self.pages[&i].dirty {
                dirty.push((i * ps + lo as u64, i * ps + hi as u64));
            }
        }
        if dirty.is_empty() {
            return Ok(0);
        }
        // Coalesce zero-gap neighbours (many small writes -> page-spanning
        // contiguous flushes).
        let mut merged: Vec<(u64, u64)> = Vec::new();
        for (lo, hi) in dirty {
            match merged.last_mut() {
                Some(m) if m.1 == lo => m.1 = hi,
                _ => merged.push((lo, hi)),
            }
        }
        let mut bytes = 0u64;
        let t0 = led.now;
        for (lo, hi) in merged {
            let mut buf = vec![0u8; (hi - lo) as usize];
            for (pidx, plo, phi) in self.pieces(lo, hi - lo) {
                let page = &self.pages[&pidx];
                let dst = (pidx * ps + plo as u64 - lo) as usize;
                buf[dst..dst + (phi - plo) as usize]
                    .copy_from_slice(&page.data[plo as usize..phi as usize]);
            }
            led.disk_write(file, &self.policy, lo, &buf)?;
            bytes += buf.len() as u64;
        }
        trace_cache_span(file, "write_behind", t0, led.now, bytes);
        for &i in &idxs {
            if let Some(p) = self.pages.get_mut(&i) {
                p.dirty.clear();
            }
        }
        file.profile().record_cache(|c| {
            c.write_behind_flushes += 1;
            c.write_behind_bytes += bytes;
        });
        Ok(bytes)
    }

    /// Evict least-recently-used pages until the page count fits the byte
    /// budget; a dirty victim is written behind (its runs only).
    fn evict_to_capacity(&mut self, file: &PfsFile, led: &mut CacheLedger) -> MpioResult<()> {
        let cap = self.cfg.capacity_pages();
        let ps = self.cfg.page_size as u64;
        let mut published = false;
        while self.pages.len() > cap {
            let victim = self
                .pages
                .iter()
                .min_by_key(|(&i, p)| (p.last_use, i))
                .map(|(&i, _)| i)
                .expect("non-empty");
            let page = self.pages.remove(&victim).expect("chosen from keys");
            if !page.dirty.is_empty() {
                let mut bytes = 0u64;
                let t0 = led.now;
                let mut runs = page.dirty.clone();
                // Coalesce adjacent dirty runs within the page.
                runs.dedup_by(|b, a| {
                    if a.1 == b.0 {
                        a.1 = b.1;
                        true
                    } else {
                        false
                    }
                });
                for (lo, hi) in runs {
                    led.disk_write(
                        file,
                        &self.policy,
                        victim * ps + lo as u64,
                        &page.data[lo as usize..hi as usize],
                    )?;
                    bytes += (hi - lo) as u64;
                }
                file.profile().record_cache(|c| {
                    c.write_behind_flushes += 1;
                    c.write_behind_bytes += bytes;
                });
                trace_cache_span(file, "evict_flush", t0, led.now, bytes);
                published = true;
            }
            file.profile().record_cache(|c| c.evictions += 1);
        }
        if published {
            // Evicted dirty bytes are now on disk: other caches must notice
            // at their next synchronization point.
            file.bump_coherence_epoch();
        }
        Ok(())
    }

    // ---- coherence --------------------------------------------------------

    /// Pre-synchronization half of the coherence protocol: publish dirty
    /// bytes (write-behind) and advance the file epoch if anything was
    /// published. Call *before* the collective rendezvous.
    pub fn sync_prepare(&mut self, file: &PfsFile, led: &mut CacheLedger) -> MpioResult<()> {
        if self.flush(file, led)? > 0 {
            file.bump_coherence_epoch();
        }
        Ok(())
    }

    /// Post-synchronization half: if any rank (this one included) advanced
    /// the epoch, drop clean cached bytes so later reads refetch. Call
    /// *after* the collective rendezvous, so every rank's `sync_prepare`
    /// happens-before this check.
    pub fn sync_complete(&mut self, file: &PfsFile) {
        let epoch = file.coherence_epoch();
        if epoch == self.seen_epoch {
            return;
        }
        self.seen_epoch = epoch;
        self.invalidate_clean(file);
        // A new phase begins; forget the stream state.
        self.last_read_end = u64::MAX;
        self.seq_streak = 0;
    }

    /// Drop every clean page and the clean fraction of dirty pages. Dirty
    /// runs (this rank's own unpublished writes) always survive.
    fn invalidate_clean(&mut self, file: &PfsFile) {
        // Every cached page loses its clean bytes: clean pages drop
        // entirely, dirty pages shrink their valid set to the dirty runs.
        let touched = self.pages.len() as u64;
        self.pages.retain(|_, p| !p.dirty.is_empty());
        for p in self.pages.values_mut() {
            p.valid = p.dirty.clone();
            p.readahead = false;
        }
        file.profile().record_cache(|c| c.invalidations += touched);
    }

    /// Number of cached pages (diagnostics/tests).
    pub fn cached_pages(&self) -> usize {
        self.pages.len()
    }
}

/// Split a sorted list of page indices into maximal consecutive groups.
fn consecutive_groups(idxs: &[u64]) -> Vec<&[u64]> {
    let mut out = Vec::new();
    let mut start = 0usize;
    for i in 1..=idxs.len() {
        if i == idxs.len() || idxs[i] != idxs[i - 1] + 1 {
            out.push(&idxs[start..i]);
            start = i;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpc_sim::SimConfig;
    use pnetcdf_pfs::{Pfs, StorageMode};

    fn setup(capacity: usize, page: usize) -> (PageCache, PfsFile, SimConfig) {
        let cfg = SimConfig::test_small();
        cfg.profile.set_enabled(true);
        let file = Pfs::new(cfg.clone(), StorageMode::Full).create("c");
        let cache = PageCache::new(
            CacheConfig {
                page_size: page,
                capacity_bytes: capacity,
                readahead_pages: 2,
            },
            cfg.cpu,
            &file,
        );
        (cache, file, cfg)
    }

    #[test]
    fn run_list_insert_and_gaps() {
        let mut l: Vec<PageRun> = Vec::new();
        insert_run(&mut l, 10, 20);
        insert_run(&mut l, 30, 40);
        insert_run(&mut l, 20, 30); // bridges
        assert_eq!(l, vec![(10, 40)]);
        insert_run(&mut l, 0, 5);
        assert_eq!(l, vec![(0, 5), (10, 40)]);
        assert!(covers(&l, 12, 40));
        assert!(!covers(&l, 4, 11));
        assert_eq!(gaps(&l, 0, 50), vec![(5, 10), (40, 50)]);
        assert_eq!(gaps(&l, 12, 30), Vec::<PageRun>::new());
    }

    #[test]
    fn write_then_read_hits_without_disk() {
        let (mut cache, file, cfg) = setup(1 << 20, 1024);
        let mut led = CacheLedger::new(Time::ZERO);
        let data: Vec<u8> = (0..3000u32).map(|i| (i % 251) as u8).collect();
        cache
            .write_runs(&file, &mut led, &[(100, 3000)], &data)
            .unwrap();
        assert_eq!(led.read_nanos, 0, "write-allocate must not read");
        assert_eq!(led.write_nanos, 0, "write-behind must not write yet");
        let got = cache.read_runs(&file, &mut led, &[(100, 3000)]).unwrap();
        assert_eq!(got, data);
        assert_eq!(led.read_nanos, 0, "fully dirty range must be a pure hit");
        let c = cfg.profile.cache_counters();
        assert!(c.hits > 0);
        // Nothing on disk yet.
        assert_eq!(file.size(), 0);
        // Flush publishes the exact runs.
        cache.flush(&file, &mut led).unwrap();
        let mut out = vec![0u8; 3000];
        file.peek_at(100, &mut out);
        assert_eq!(out, data);
    }

    #[test]
    fn flush_coalesces_small_writes() {
        let (mut cache, file, cfg) = setup(1 << 20, 1024);
        let mut led = CacheLedger::new(Time::ZERO);
        // 64 back-to-back 128-byte writes = 8 KiB contiguous.
        for i in 0..64u64 {
            cache
                .write_runs(&file, &mut led, &[(i * 128, 128)], &[7u8; 128])
                .unwrap();
        }
        cache.flush(&file, &mut led).unwrap();
        let snap = cfg.profile.snapshot();
        // One coalesced flush: requests == number of servers touched by one
        // 8 KiB striped write, far fewer than 64.
        let reqs: u64 = snap.servers.iter().map(|s| s.requests).sum();
        assert!(reqs <= 8, "flush should coalesce, saw {reqs} requests");
        assert_eq!(cfg.profile.cache_counters().write_behind_bytes, 8192);
    }

    #[test]
    fn dirty_runs_only_no_false_sharing() {
        let (mut cache, file, _cfg) = setup(1 << 20, 1024);
        // Another writer (rank B) put bytes on disk in the same page.
        file.write_at(Time::ZERO, 0, &[9u8; 512]);
        let mut led = CacheLedger::new(Time::ZERO);
        // This rank dirties only [512, 1024) of page 0.
        cache
            .write_runs(&file, &mut led, &[(512, 512)], &[5u8; 512])
            .unwrap();
        cache.flush(&file, &mut led).unwrap();
        let mut out = vec![0u8; 1024];
        file.peek_at(0, &mut out);
        assert_eq!(&out[..512], &[9u8; 512][..], "foreign bytes must survive");
        assert_eq!(&out[512..], &[5u8; 512][..]);
    }

    #[test]
    fn read_miss_fills_one_page_then_hits() {
        let (mut cache, file, cfg) = setup(1 << 20, 1024);
        let data: Vec<u8> = (0..1024u32).map(|i| i as u8).collect();
        file.write_at(Time::ZERO, 0, &data);
        let mut led = CacheLedger::new(Time::from_millis(1));
        let got = cache.read_runs(&file, &mut led, &[(10, 50)]).unwrap();
        assert_eq!(got, data[10..60]);
        assert!(led.read_nanos > 0);
        let after_fill = led.read_nanos;
        // Overlapping re-read: pure hit, no further disk time.
        let got2 = cache.read_runs(&file, &mut led, &[(0, 200)]).unwrap();
        assert_eq!(got2, data[0..200]);
        assert_eq!(led.read_nanos, after_fill);
        let c = cfg.profile.cache_counters();
        assert_eq!(c.misses, 1);
        assert_eq!(c.hits, 1);
    }

    #[test]
    fn eviction_respects_budget_and_preserves_bytes() {
        let (mut cache, file, cfg) = setup(2048, 1024); // 2 pages
        let mut led = CacheLedger::new(Time::ZERO);
        let data: Vec<u8> = (0..8192u32).map(|i| (i % 241) as u8).collect();
        for i in 0..16u64 {
            cache
                .write_runs(
                    &file,
                    &mut led,
                    &[(i * 512, 512)],
                    &data[(i * 512) as usize..(i * 512 + 512) as usize],
                )
                .unwrap();
        }
        assert!(cache.cached_pages() <= 2);
        assert!(cfg.profile.cache_counters().evictions > 0);
        cache.flush(&file, &mut led).unwrap();
        let mut out = vec![0u8; 8192];
        file.peek_at(0, &mut out);
        assert_eq!(out, data);
        // Read everything back through the (tiny) cache.
        let got = cache.read_runs(&file, &mut led, &[(0, 8192)]).unwrap();
        assert_eq!(got, data);
    }

    #[test]
    fn sequential_reads_trigger_readahead() {
        let (mut cache, file, cfg) = setup(1 << 20, 1024);
        let data: Vec<u8> = (0..16384u32).map(|i| (i % 239) as u8).collect();
        file.write_at(Time::ZERO, 0, &data);
        let mut led = CacheLedger::new(Time::from_millis(1));
        let mut got = Vec::new();
        for i in 0..32u64 {
            got.extend(cache.read_runs(&file, &mut led, &[(i * 512, 512)]).unwrap());
        }
        assert_eq!(got, data);
        let c = cfg.profile.cache_counters();
        assert!(c.readahead_issued > 0, "{c:?}");
        assert!(c.readahead_hits > 0, "{c:?}");
        assert!(c.hits > 0, "{c:?}");
    }

    #[test]
    fn epoch_invalidation_drops_clean_keeps_dirty() {
        let (mut cache, file, _cfg) = setup(1 << 20, 1024);
        file.write_at(Time::ZERO, 0, &[1u8; 1024]);
        let mut led = CacheLedger::new(Time::from_millis(1));
        // Cache page 0 clean, dirty half of page 1.
        cache.read_runs(&file, &mut led, &[(0, 100)]).unwrap();
        cache
            .write_runs(&file, &mut led, &[(1024 + 256, 128)], &[8u8; 128])
            .unwrap();
        assert_eq!(cache.cached_pages(), 2);

        // Another rank publishes: epoch moves, disk changes under us.
        file.write_at(Time::ZERO, 0, &[2u8; 1024]);
        file.bump_coherence_epoch();
        cache.sync_complete(&file);

        // Clean page dropped: next read sees the new bytes.
        let got = cache.read_runs(&file, &mut led, &[(0, 4)]).unwrap();
        assert_eq!(got, vec![2u8; 4]);
        // Dirty bytes survived.
        let got = cache
            .read_runs(&file, &mut led, &[(1024 + 256, 128)])
            .unwrap();
        assert_eq!(got, vec![8u8; 128]);
    }

    #[test]
    fn sync_prepare_publishes_and_bumps_epoch() {
        let (mut cache, file, _cfg) = setup(1 << 20, 1024);
        let e0 = file.coherence_epoch();
        let mut led = CacheLedger::new(Time::ZERO);
        cache
            .write_runs(&file, &mut led, &[(0, 64)], &[3u8; 64])
            .unwrap();
        cache.sync_prepare(&file, &mut led).unwrap();
        assert_eq!(file.coherence_epoch(), e0 + 1);
        let mut out = vec![0u8; 64];
        file.peek_at(0, &mut out);
        assert_eq!(out, vec![3u8; 64]);
        // Nothing dirty: a second prepare is a no-op.
        cache.sync_prepare(&file, &mut led).unwrap();
        assert_eq!(file.coherence_epoch(), e0 + 1);
    }

    #[test]
    fn ledger_time_is_fully_attributed() {
        let (mut cache, file, _cfg) = setup(1 << 20, 1024);
        let start = Time::from_millis(3);
        let mut led = CacheLedger::new(start);
        cache
            .write_runs(&file, &mut led, &[(0, 2048)], &[1u8; 2048])
            .unwrap();
        cache.read_runs(&file, &mut led, &[(4096, 100)]).unwrap();
        cache.flush(&file, &mut led).unwrap();
        assert_eq!(
            led.now.as_nanos(),
            start.as_nanos() + led.cache_nanos + led.read_nanos + led.write_nanos,
            "every nanosecond of cache work must land in exactly one bucket"
        );
    }
}
