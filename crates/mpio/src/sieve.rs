//! Data sieving for independent noncontiguous access (Thakur, Gropp & Lusk,
//! "Data Sieving and Collective I/O in ROMIO").
//!
//! Instead of issuing one small I/O request per noncontiguous piece, the
//! whole extent covering a group of pieces is transferred in one large
//! request and the useful bytes are picked out in memory. Writes become
//! read-modify-write of the extent. The extent processed at a time is
//! bounded by the `ind_rd_buffer_size` / `ind_wr_buffer_size` hints.

use hpc_sim::Time;
use pnetcdf_pfs::PfsFile;

use crate::error::MpioResult;
use crate::recover::{self, RetryPolicy};
use crate::view::Run;

/// Sieved (or direct) write of `runs` carrying `data` (packed in run
/// order). Returns the completion time.
///
/// `sieve` enables read-modify-write sieving; when disabled every run is
/// written with its own request (the "many small requests" behaviour the
/// paper's serialized baselines suffer from). Storage faults are recovered
/// by the bounded-retry policy in [`crate::recover`]; an exhausted budget
/// surfaces as [`crate::MpioError::Exhausted`].
pub fn write(
    file: &PfsFile,
    buffer_size: usize,
    sieve: bool,
    mut now: Time,
    runs: &[Run],
    data: &[u8],
) -> MpioResult<Time> {
    let policy = RetryPolicy::default();
    debug_assert_eq!(crate::view::runs_total(runs) as usize, data.len());
    if runs.is_empty() {
        return Ok(now);
    }
    if runs.len() == 1 {
        return recover::write_at(file, &policy, now, runs[0].0, data);
    }
    if !sieve {
        let mut pos = 0usize;
        for &(off, len) in runs {
            now = recover::write_at(file, &policy, now, off, &data[pos..pos + len as usize])?;
            pos += len as usize;
        }
        file.profile()
            .record_sieve(false, data.len() as u64, data.len() as u64);
        return Ok(now);
    }

    // Sieving: process the covered extent window by window. The piece list
    // and the RMW extent buffer are reused across windows — a multi-window
    // access allocates once, not per window.
    let mut transferred = 0u64; // bytes moved to/from the file system
    let mut idx = 0usize; // current run
    let mut consumed = 0u64; // bytes of runs[idx] already handled
    let mut pos = 0usize; // position in `data`
    let mut pieces: Vec<(u64, usize, usize)> = Vec::new(); // (off, len, data pos)
    let mut window: Vec<u8> = Vec::new();
    while idx < runs.len() {
        let wlo = runs[idx].0 + consumed;
        let whi_limit = wlo + buffer_size as u64;
        // Collect the pieces that fall inside [wlo, whi_limit).
        pieces.clear();
        let mut whi = wlo;
        while idx < runs.len() {
            let (off, len) = runs[idx];
            let start = off + consumed;
            if start >= whi_limit {
                break;
            }
            let end = (off + len).min(whi_limit);
            let take = (end - start) as usize;
            pieces.push((start, take, pos));
            pos += take;
            whi = end;
            if end == off + len {
                idx += 1;
                consumed = 0;
            } else {
                consumed = end - off;
                break;
            }
        }
        if pieces.len() == 1 {
            let (off, len, dpos) = pieces[0];
            transferred += len as u64;
            now = recover::write_at(file, &policy, now, off, &data[dpos..dpos + len])?;
            continue;
        }
        // Read-modify-write the extent [wlo, whi). The reused buffer needs
        // no re-zeroing: `read_at` fills every byte it is handed (zeros
        // beyond EOF).
        let span = (whi - wlo) as usize;
        transferred += 2 * span as u64; // read the extent, write it back
        if window.len() < span {
            window.resize(span, 0);
        }
        let buf = &mut window[..span];
        now = recover::read_at(file, &policy, now, wlo, buf)?;
        for &(off, len, dpos) in &pieces {
            let lo = (off - wlo) as usize;
            buf[lo..lo + len].copy_from_slice(&data[dpos..dpos + len]);
        }
        now = recover::write_at(file, &policy, now, wlo, buf)?;
    }
    file.profile()
        .record_sieve(false, transferred, data.len() as u64);
    Ok(now)
}

/// Sieved (or direct) read of `runs` into a fresh buffer packed in run
/// order. Returns `(data, completion time)`.
pub fn read(
    file: &PfsFile,
    buffer_size: usize,
    sieve: bool,
    mut now: Time,
    runs: &[Run],
) -> MpioResult<(Vec<u8>, Time)> {
    let policy = RetryPolicy::default();
    let total = crate::view::runs_total(runs) as usize;
    let mut out = vec![0u8; total];
    if runs.is_empty() {
        return Ok((out, now));
    }
    if runs.len() == 1 {
        now = recover::read_at(file, &policy, now, runs[0].0, &mut out)?;
        return Ok((out, now));
    }
    if !sieve {
        let mut pos = 0usize;
        for &(off, len) in runs {
            now = recover::read_at(file, &policy, now, off, &mut out[pos..pos + len as usize])?;
            pos += len as usize;
        }
        file.profile()
            .record_sieve(true, total as u64, total as u64);
        return Ok((out, now));
    }

    let mut transferred = 0u64;
    let mut idx = 0usize;
    let mut consumed = 0u64;
    let mut pos = 0usize;
    let mut pieces: Vec<(u64, usize, usize)> = Vec::new();
    let mut window: Vec<u8> = Vec::new();
    while idx < runs.len() {
        let wlo = runs[idx].0 + consumed;
        let whi_limit = wlo + buffer_size as u64;
        pieces.clear();
        let mut whi = wlo;
        while idx < runs.len() {
            let (off, len) = runs[idx];
            let start = off + consumed;
            if start >= whi_limit {
                break;
            }
            let end = (off + len).min(whi_limit);
            let take = (end - start) as usize;
            pieces.push((start, take, pos));
            pos += take;
            whi = end;
            if end == off + len {
                idx += 1;
                consumed = 0;
            } else {
                consumed = end - off;
                break;
            }
        }
        if pieces.len() == 1 {
            let (off, len, dpos) = pieces[0];
            transferred += len as u64;
            now = recover::read_at(file, &policy, now, off, &mut out[dpos..dpos + len])?;
            continue;
        }
        let span = (whi - wlo) as usize;
        transferred += span as u64;
        if window.len() < span {
            window.resize(span, 0);
        }
        let buf = &mut window[..span];
        now = recover::read_at(file, &policy, now, wlo, buf)?;
        for &(off, len, dpos) in &pieces {
            let lo = (off - wlo) as usize;
            out[dpos..dpos + len].copy_from_slice(&buf[lo..lo + len]);
        }
    }
    file.profile().record_sieve(true, transferred, total as u64);
    Ok((out, now))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpc_sim::SimConfig;
    use pnetcdf_pfs::{Pfs, StorageMode};

    fn file() -> PfsFile {
        Pfs::new(SimConfig::test_small(), StorageMode::Full).create("s")
    }

    #[test]
    fn sieved_write_then_read_roundtrip() {
        let f = file();
        let runs: Vec<Run> = vec![(10, 4), (20, 4), (30, 4)];
        let data: Vec<u8> = (1..=12).collect();
        write(&f, 1024, true, Time::ZERO, &runs, &data).unwrap();
        let (got, _) = read(&f, 1024, true, Time::ZERO, &runs).unwrap();
        assert_eq!(got, data);
        // Holes are untouched (zero).
        let mut hole = [9u8; 6];
        f.peek_at(14, &mut hole);
        assert_eq!(hole, [0; 6]);
    }

    #[test]
    fn sieved_write_preserves_existing_holes() {
        let f = file();
        f.write_at(Time::ZERO, 0, &[7u8; 64]);
        // Overwrite two pieces; the bytes between must stay 7.
        write(
            &f,
            1024,
            true,
            Time::ZERO,
            &[(4, 2), (10, 2)],
            &[1, 1, 2, 2],
        )
        .unwrap();
        let mut buf = [0u8; 16];
        f.peek_at(0, &mut buf);
        assert_eq!(buf, [7, 7, 7, 7, 1, 1, 7, 7, 7, 7, 2, 2, 7, 7, 7, 7]);
    }

    #[test]
    fn unsieved_write_matches_sieved_bytes() {
        let runs: Vec<Run> = vec![(0, 3), (8, 3), (100, 3)];
        let data = [1u8, 2, 3, 4, 5, 6, 7, 8, 9];

        let f1 = file();
        write(&f1, 1024, true, Time::ZERO, &runs, &data).unwrap();
        let f2 = file();
        write(&f2, 1024, false, Time::ZERO, &runs, &data).unwrap();
        assert_eq!(f1.to_bytes(), f2.to_bytes());
    }

    #[test]
    fn sieving_issues_fewer_requests() {
        let cfg = SimConfig::test_small();
        let runs: Vec<Run> = (0..64u64).map(|i| (i * 8, 2)).collect();
        let data = vec![5u8; 128];

        let pfs1 = Pfs::new(cfg.clone(), StorageMode::Full);
        let t_sieved = write(&pfs1.create("a"), 4096, true, Time::ZERO, &runs, &data).unwrap();
        let reqs_sieved = pfs1.stats().snapshot().io_requests;

        let pfs2 = Pfs::new(cfg, StorageMode::Full);
        let t_direct = write(&pfs2.create("b"), 4096, false, Time::ZERO, &runs, &data).unwrap();
        let reqs_direct = pfs2.stats().snapshot().io_requests;

        assert!(reqs_sieved < reqs_direct);
        assert!(t_sieved < t_direct);
    }

    #[test]
    fn window_boundary_splits_runs() {
        // A run longer than the sieve buffer must be split across windows.
        let f = file();
        let runs: Vec<Run> = vec![(0, 100), (200, 100)];
        let data: Vec<u8> = (0..200u32).map(|i| i as u8).collect();
        write(&f, 64, true, Time::ZERO, &runs, &data).unwrap();
        let (got, _) = read(&f, 64, true, Time::ZERO, &runs).unwrap();
        assert_eq!(got, data);
    }

    #[test]
    fn empty_request_is_noop() {
        let f = file();
        let t = write(&f, 1024, true, Time::from_millis(1), &[], &[]).unwrap();
        assert_eq!(t, Time::from_millis(1));
        let (d, t) = read(&f, 1024, true, Time::from_millis(1), &[]).unwrap();
        assert!(d.is_empty());
        assert_eq!(t, Time::from_millis(1));
    }
}
