//! Fault recovery for the MPI-IO layer: bounded retry with exponential
//! backoff in *virtual* time, plus short-I/O completion loops.
//!
//! The simulated PFS ([`pnetcdf_pfs`]) can inject typed faults (transient
//! EIO, short transfers, latency stalls, server crashes) through its
//! fallible `try_write_at` / `try_read_at` API. This module is the ROMIO-ish
//! recovery policy layered on top:
//!
//! * **Transient / crashed**: retry the remaining bytes after an
//!   exponentially growing backoff (charged to the caller's virtual clock,
//!   so recovery time shows up in the disk phases of the profile).
//! * **Short transfer**: resume at `offset + completed` — the PFS
//!   guarantees `completed` is a contiguous file-order prefix — and a
//!   resumed attempt that made progress refills the attempt budget, so a
//!   long request trickling forward is never misclassified as dead.
//! * **Budget exhausted**: give up with [`MpioError::Exhausted`] carrying
//!   the attempt count; collective paths turn this into one agreed error
//!   on every rank (no hangs, no divergent returns).
//!
//! All recovery activity is tallied in the shared
//! [`hpc_sim::Profile`] fault counters (`retries`, `backoff_time`,
//! `short_completions`, `exhausted`).

use hpc_sim::trace::events::{layer, stage};
use hpc_sim::{FaultKind, Span, Time, TraceCtx};
use pnetcdf_pfs::{IoFailure, PfsFile, WriteCompletion};

use crate::error::{MpioError, MpioResult};

/// Bounded-retry policy. The budget is per *stall*: any attempt that moves
/// bytes forward (a short completion) resets the remaining-attempt counter,
/// so only consecutive zero-progress failures count against it.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Consecutive zero-progress attempts tolerated before giving up.
    pub attempts: u32,
    /// First backoff delay.
    pub base_backoff: Time,
    /// Backoff ceiling (doubling stops here).
    pub max_backoff: Time,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            attempts: 12,
            base_backoff: Time::from_micros(50),
            max_backoff: Time::from_millis(50),
        }
    }
}

impl RetryPolicy {
    fn next_backoff(&self, b: Time) -> Time {
        Time::from_nanos((b.as_nanos() * 2).min(self.max_backoff.as_nanos()))
    }
}

/// Record one recovery step in the shared profile, and span the backoff
/// interval on the ambient request's timeline (parented to its window or
/// independent-request span, so the critical-path analyzer can charge
/// retry backoff against the right collective window).
fn record_retry(file: &PfsFile, failure: &IoFailure, backoff: Time) {
    file.profile().record_fault(|f| {
        f.retries += 1;
        f.backoff_nanos += backoff.as_nanos();
        if failure.completed > 0 {
            f.short_completions += 1;
        }
    });
    let events = file.events();
    if events.is_enabled() {
        if let Some((rank, parent)) = TraceCtx::current() {
            events.record(
                Span::new(
                    rank,
                    layer::RETRY,
                    "backoff",
                    failure.time.as_nanos(),
                    (failure.time + backoff).as_nanos(),
                )
                .with_parent(parent)
                .with_stage(stage::RETRY)
                .with_arg("server", failure.server as u64)
                .with_arg("completed", failure.completed),
            );
        }
    }
}

/// Record a final give-up in the shared profile.
fn record_exhausted(file: &PfsFile) {
    file.profile().record_fault(|f| f.exhausted += 1);
}

/// Tracks whether the failure streak that is about to exhaust the budget
/// was caused by *one crashed server* — the precondition for escalating to
/// server failover instead of a terminal `Exhausted`.
#[derive(Clone, Copy, Default)]
struct Escalation {
    crash: Option<usize>,
}

impl Escalation {
    fn observe(&mut self, f: &IoFailure) {
        self.crash = match (f.kind, self.crash) {
            (FaultKind::Crashed, None) => Some(f.server),
            (FaultKind::Crashed, Some(s)) if s == f.server => Some(s),
            // Two distinct crashed servers, or a non-crash fault broke the
            // streak: single-parity failover cannot help.
            _ => None,
        };
    }

    /// The terminal error once the budget is gone: `ServerLost` when the
    /// whole streak hit one crashed server and the parity layer can cover
    /// it, plain `Exhausted` otherwise. Either way the ladder *did*
    /// exhaust, so the fault counter records it.
    fn give_up(self, file: &PfsFile, attempts: u32, message: String) -> MpioError {
        record_exhausted(file);
        if let Some(server) = self.crash {
            if file.can_failover(server) {
                return MpioError::ServerLost { server, message };
            }
        }
        MpioError::Exhausted { attempts, message }
    }
}

/// Write `data` at `offset` with fault recovery. Returns the completion
/// time, or [`MpioError::Exhausted`] once `policy.attempts` consecutive
/// zero-progress attempts have failed.
pub fn write_at(
    file: &PfsFile,
    policy: &RetryPolicy,
    start: Time,
    offset: u64,
    data: &[u8],
) -> MpioResult<Time> {
    let mut t = start;
    let mut resume = 0usize;
    let mut backoff = policy.base_backoff;
    let mut left = policy.attempts;
    let mut made = 0u32;
    let mut esc = Escalation::default();
    while left > 0 {
        match file.try_write_at(t, offset + resume as u64, &data[resume..]) {
            Ok(done) => return Ok(done),
            Err(f) => {
                esc.observe(&f);
                record_retry(file, &f, backoff);
                t = f.time + backoff;
                if f.completed > 0 {
                    resume += f.completed as usize;
                    backoff = policy.base_backoff;
                    left = policy.attempts; // progress refills the budget
                } else {
                    backoff = policy.next_backoff(backoff);
                    left -= 1;
                }
                made += 1;
            }
        }
    }
    Err(esc.give_up(
        file,
        made,
        format!(
            "write of {} bytes at offset {offset} of '{}'",
            data.len(),
            file.name()
        ),
    ))
}

/// Like [`write_at`] but keeps the two-stage completion: `handoff` (server
/// NIC owns the bytes, the bounded admission queue is the backpressure) and
/// `durable` (disk has them). Pipelined two-phase advances an aggregator's
/// clock on `handoff` and only drains `durable` at the end of the
/// collective.
pub fn write_at_detailed(
    file: &PfsFile,
    policy: &RetryPolicy,
    start: Time,
    offset: u64,
    data: &[u8],
) -> MpioResult<WriteCompletion> {
    let mut t = start;
    let mut resume = 0usize;
    let mut backoff = policy.base_backoff;
    let mut left = policy.attempts;
    let mut made = 0u32;
    let mut esc = Escalation::default();
    while left > 0 {
        match file.try_write_at_detailed(t, offset + resume as u64, &data[resume..]) {
            Ok(done) => return Ok(done),
            Err(f) => {
                esc.observe(&f);
                record_retry(file, &f, backoff);
                t = f.time + backoff;
                if f.completed > 0 {
                    resume += f.completed as usize;
                    backoff = policy.base_backoff;
                    left = policy.attempts;
                } else {
                    backoff = policy.next_backoff(backoff);
                    left -= 1;
                }
                made += 1;
            }
        }
    }
    Err(esc.give_up(
        file,
        made,
        format!(
            "write of {} bytes at offset {offset} of '{}'",
            data.len(),
            file.name()
        ),
    ))
}

/// Drop the leading `skip` payload bytes from `runs` (run order), returning
/// the trimmed tail. Resuming a short vectored write re-issues exactly the
/// bytes the PFS has not guaranteed.
fn trim_runs(runs: &[(u64, u64)], skip: u64) -> Vec<(u64, u64)> {
    let mut out = Vec::with_capacity(runs.len());
    let mut remaining = skip;
    for &(off, len) in runs {
        if remaining >= len {
            remaining -= len;
        } else {
            out.push((off + remaining, len - remaining));
            remaining = 0;
        }
    }
    out
}

/// Vectored write of sorted disjoint `(offset, len)` runs holding the
/// concatenated `data`, with the same fault recovery as [`write_at`]. The
/// runs are coalesced into one PFS request per server
/// ([`PfsFile::try_write_runs`]) — this is the aggregator fast path for
/// server-affine collective-buffer windows.
pub fn write_runs(
    file: &PfsFile,
    policy: &RetryPolicy,
    start: Time,
    runs: &[(u64, u64)],
    data: &[u8],
) -> MpioResult<WriteCompletion> {
    let total: u64 = runs.iter().map(|&(_, len)| len).sum();
    let mut t = start;
    let mut resume = 0u64;
    let mut backoff = policy.base_backoff;
    let mut left = policy.attempts;
    let mut made = 0u32;
    let mut esc = Escalation::default();
    let mut tail: Vec<(u64, u64)> = runs.to_vec();
    while left > 0 {
        match file.try_write_runs(t, &tail, &data[resume as usize..]) {
            Ok(done) => return Ok(done),
            Err(f) => {
                esc.observe(&f);
                record_retry(file, &f, backoff);
                t = f.time + backoff;
                if f.completed > 0 {
                    resume += f.completed;
                    tail = trim_runs(runs, resume);
                    backoff = policy.base_backoff;
                    left = policy.attempts;
                } else {
                    backoff = policy.next_backoff(backoff);
                    left -= 1;
                }
                made += 1;
            }
        }
    }
    Err(esc.give_up(
        file,
        made,
        format!(
            "vectored write of {total} bytes in {} runs of '{}'",
            runs.len(),
            file.name()
        ),
    ))
}

/// Read into `buf` from `offset` with fault recovery; same policy as
/// [`write_at`].
pub fn read_at(
    file: &PfsFile,
    policy: &RetryPolicy,
    start: Time,
    offset: u64,
    buf: &mut [u8],
) -> MpioResult<Time> {
    let len = buf.len();
    let mut t = start;
    let mut resume = 0usize;
    let mut backoff = policy.base_backoff;
    let mut left = policy.attempts;
    let mut made = 0u32;
    let mut esc = Escalation::default();
    while left > 0 {
        match file.try_read_at(t, offset + resume as u64, &mut buf[resume..]) {
            Ok(done) => return Ok(done),
            Err(f) => {
                esc.observe(&f);
                record_retry(file, &f, backoff);
                t = f.time + backoff;
                if f.completed > 0 {
                    resume += f.completed as usize;
                    backoff = policy.base_backoff;
                    left = policy.attempts;
                } else {
                    backoff = policy.next_backoff(backoff);
                    left -= 1;
                }
                made += 1;
            }
        }
    }
    Err(esc.give_up(
        file,
        made,
        format!(
            "read of {len} bytes at offset {offset} of '{}'",
            file.name()
        ),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpc_sim::{CrashSpec, FaultPlan, SimConfig};
    use pnetcdf_pfs::{Pfs, StorageMode};

    fn faulty_file(plan: FaultPlan) -> (PfsFile, SimConfig) {
        let mut cfg = SimConfig::test_small();
        cfg.faults = plan;
        cfg.profile.set_enabled(true);
        let f = Pfs::new(cfg.clone(), StorageMode::Full).create("r");
        (f, cfg)
    }

    #[test]
    fn recovers_transients_and_shorts() {
        let (f, cfg) = faulty_file(FaultPlan {
            transient: 0.25,
            short: 0.25,
            ..FaultPlan::default()
        });
        let policy = RetryPolicy::default();
        let data: Vec<u8> = (0..30_000u32).map(|i| (i % 253) as u8).collect();
        let t = write_at(&f, &policy, Time::ZERO, 7, &data).expect("write should recover");
        let mut out = vec![0u8; data.len()];
        read_at(&f, &policy, t, 7, &mut out).expect("read should recover");
        assert_eq!(out, data);
        let fc = cfg.profile.fault_counters();
        assert!(fc.retries > 0);
        assert!(fc.backoff_nanos > 0);
        assert_eq!(fc.exhausted, 0);
    }

    #[test]
    fn vectored_write_recovers_and_matches() {
        let (f, cfg) = faulty_file(FaultPlan {
            transient: 0.25,
            short: 0.25,
            ..FaultPlan::default()
        });
        let policy = RetryPolicy::default();
        let runs = [(0u64, 3000u64), (5000, 2000), (9000, 4000)];
        let data: Vec<u8> = (0..9000u32).map(|i| (i * 11 % 251) as u8).collect();
        let c = write_runs(&f, &policy, Time::ZERO, &runs, &data).expect("should recover");
        assert!(c.handoff <= c.durable);
        let mut pos = 0usize;
        for &(off, len) in &runs {
            let mut out = vec![0u8; len as usize];
            read_at(&f, &policy, c.durable, off, &mut out).unwrap();
            assert_eq!(out, &data[pos..pos + len as usize]);
            pos += len as usize;
        }
        assert!(cfg.profile.fault_counters().retries > 0);
    }

    #[test]
    fn permanent_crash_exhausts_in_bounded_virtual_time() {
        let (f, cfg) = faulty_file(FaultPlan {
            crashes: vec![CrashSpec {
                server: 0,
                at: Time::ZERO,
                restart: None,
            }],
            ..FaultPlan::default()
        });
        let policy = RetryPolicy::default();
        let err = write_at(&f, &policy, Time::ZERO, 0, &[1u8; 8192]).unwrap_err();
        match err {
            MpioError::Exhausted { attempts, .. } => assert!(attempts >= policy.attempts),
            other => panic!("expected Exhausted, got {other:?}"),
        }
        assert!(cfg.profile.fault_counters().exhausted > 0);
    }

    #[test]
    fn crash_with_restart_recovers() {
        // Server 0 is down from t=0 and restarts at 1 ms; the backoff
        // schedule walks past the outage and the write completes.
        let (f, _cfg) = faulty_file(FaultPlan {
            crashes: vec![CrashSpec {
                server: 0,
                at: Time::ZERO,
                restart: Some(Time::from_millis(1)),
            }],
            ..FaultPlan::default()
        });
        let policy = RetryPolicy::default();
        let data = vec![9u8; 8192];
        let t = write_at(&f, &policy, Time::ZERO, 0, &data).expect("restart should save it");
        assert!(t >= Time::from_millis(1));
        let mut out = vec![0u8; data.len()];
        read_at(&f, &policy, t, 0, &mut out).unwrap();
        assert_eq!(out, data);
    }
}
