//! File views (`MPI_File_set_view`).
//!
//! A view is `(displacement, etype, filetype)`: the filetype tiles the file
//! starting at the displacement, and only the bytes covered by the
//! filetype's typemap are visible. PnetCDF constructs one view per variable
//! access from the variable's shape and the user's start/count/stride
//! arguments (paper §4.2.2); this module maps logical (view-relative)
//! positions to absolute file runs.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use pnetcdf_mpi::{flatten, Datatype};

use crate::error::{MpioError, MpioResult};

/// An absolute byte run in the file: `(offset, len)`.
pub type Run = (u64, u64);

/// Append a run, coalescing with the previous one when adjacent.
pub fn push_run(out: &mut Vec<Run>, off: u64, len: u64) {
    if len == 0 {
        return;
    }
    if let Some(last) = out.last_mut() {
        if last.0 + last.1 == off {
            last.1 += len;
            return;
        }
    }
    out.push((off, len));
}

/// Total bytes in a run list.
pub fn runs_total(runs: &[Run]) -> u64 {
    runs.iter().map(|r| r.1).sum()
}

/// A file view: displacement + etype + flattened filetype.
#[derive(Clone, Debug)]
pub struct FileView {
    disp: u64,
    etype_size: u64,
    /// Filetype segments within one tile: non-negative, strictly increasing.
    segs: Vec<(u64, u64)>,
    /// Data bytes per tile (sum of segment lengths).
    tile_data: u64,
    /// Tile stride (the filetype's extent).
    tile_extent: u64,
    /// Structural fingerprint, computed once at construction so
    /// [`FlattenCache`] can key memoized run lists without comparing the
    /// whole segment list.
    signature: u64,
}

fn view_signature(disp: u64, etype_size: u64, segs: &[(u64, u64)], tile_extent: u64) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    disp.hash(&mut h);
    etype_size.hash(&mut h);
    segs.hash(&mut h);
    tile_extent.hash(&mut h);
    h.finish()
}

impl FileView {
    /// The default view: the whole file as a byte stream from offset 0.
    pub fn contiguous() -> FileView {
        let segs = vec![(0, u64::MAX)];
        let signature = view_signature(0, 1, &segs, u64::MAX);
        FileView {
            disp: 0,
            etype_size: 1,
            segs,
            tile_data: u64::MAX,
            tile_extent: u64::MAX,
            signature,
        }
    }

    /// Build a view. The filetype's flattened offsets must be monotonically
    /// increasing and non-negative (the MPI standard requires this of file
    /// views), and the filetype size must be a multiple of the etype size.
    pub fn new(disp: u64, etype: &Datatype, filetype: &Datatype) -> MpioResult<FileView> {
        let etype_size = etype.size();
        if etype_size == 0 {
            return Err(MpioError::InvalidArgument("etype has zero size".into()));
        }
        let flat = flatten(filetype);
        let mut segs = Vec::with_capacity(flat.len());
        let mut prev_end: i64 = -1;
        for s in &flat {
            if s.offset < 0 {
                return Err(MpioError::InvalidArgument(
                    "filetype addresses negative offsets".into(),
                ));
            }
            if s.offset < prev_end {
                return Err(MpioError::InvalidArgument(
                    "filetype offsets must be monotonically increasing".into(),
                ));
            }
            prev_end = s.end();
            segs.push((s.offset as u64, s.len));
        }
        let tile_data: u64 = segs.iter().map(|s| s.1).sum();
        if tile_data % etype_size != 0 {
            return Err(MpioError::InvalidArgument(format!(
                "filetype size {tile_data} is not a multiple of etype size {etype_size}"
            )));
        }
        let tile_extent = filetype.extent();
        let signature = view_signature(disp, etype_size, &segs, tile_extent);
        Ok(FileView {
            disp,
            etype_size,
            segs,
            tile_data,
            tile_extent,
            signature,
        })
    }

    /// Structural fingerprint of this view (displacement, etype, segments,
    /// extent). Two views with equal signatures flatten identically.
    pub fn signature(&self) -> u64 {
        self.signature
    }

    /// Bytes of data visible per filetype tile.
    pub fn tile_data(&self) -> u64 {
        self.tile_data
    }

    /// Size of the etype in bytes.
    pub fn etype_size(&self) -> u64 {
        self.etype_size
    }

    /// Map a logical access of `len` bytes starting at `offset` *etypes*
    /// into absolute file runs (coalesced, increasing).
    pub fn map(&self, offset_etypes: u64, len: u64) -> MpioResult<Vec<Run>> {
        let mut out = Vec::new();
        if len == 0 {
            return Ok(out);
        }
        if self.tile_data == 0 {
            return Err(MpioError::InvalidArgument(
                "view has an empty filetype but a nonzero access".into(),
            ));
        }
        let logical = offset_etypes
            .checked_mul(self.etype_size)
            .ok_or_else(|| MpioError::InvalidArgument("view offset overflow".into()))?;

        let mut tile = logical / self.tile_data;
        let mut skip = logical % self.tile_data; // data bytes to skip inside tile
        let mut remaining = len;

        'tiles: loop {
            let base = self.disp + tile * self.tile_extent;
            for &(soff, slen) in &self.segs {
                if skip >= slen {
                    skip -= slen;
                    continue;
                }
                let start_in_seg = skip;
                skip = 0;
                let take = (slen - start_in_seg).min(remaining);
                push_run(&mut out, base + soff + start_in_seg, take);
                remaining -= take;
                if remaining == 0 {
                    break 'tiles;
                }
            }
            tile += 1;
        }
        Ok(out)
    }
}

/// Memoizes [`FileView::map`] results keyed by `(view signature, offset,
/// len)`.
///
/// PnetCDF record-variable access patterns flatten the same view at the
/// same offsets over and over (one call per record per timestep); the run
/// list depends only on the view structure and the access window, so the
/// walk over tiles and segments can be reused. Results are shared as
/// `Arc<Vec<Run>>` so a hit costs one hash lookup and a refcount bump.
#[derive(Debug, Default)]
pub struct FlattenCache {
    map: HashMap<(u64, u64, u64), Arc<Vec<Run>>>,
    hits: u64,
    misses: u64,
}

impl FlattenCache {
    /// Bound on cached entries; the map is cleared wholesale when full
    /// (flatten results are cheap to recompute, so eviction bookkeeping
    /// would cost more than it saves).
    const MAX_ENTRIES: usize = 1024;

    pub fn new() -> FlattenCache {
        FlattenCache::default()
    }

    /// Map a logical access through `view`, reusing a memoized run list
    /// when the same `(view, offset, len)` was flattened before.
    pub fn map(
        &mut self,
        view: &FileView,
        offset_etypes: u64,
        len: u64,
    ) -> MpioResult<Arc<Vec<Run>>> {
        let key = (view.signature, offset_etypes, len);
        if let Some(runs) = self.map.get(&key) {
            self.hits += 1;
            return Ok(Arc::clone(runs));
        }
        self.misses += 1;
        let runs = Arc::new(view.map(offset_etypes, len)?);
        if self.map.len() >= Self::MAX_ENTRIES {
            self.map.clear();
        }
        self.map.insert(key, Arc::clone(&runs));
        Ok(runs)
    }

    /// `(hits, misses)` since construction.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnetcdf_mpi::Datatype;

    #[test]
    fn contiguous_view_is_identity() {
        let v = FileView::contiguous();
        assert_eq!(v.map(100, 50).unwrap(), vec![(100, 50)]);
        assert_eq!(v.map(0, 0).unwrap(), vec![]);
    }

    #[test]
    fn displacement_shifts_everything() {
        let v = FileView::new(
            1000,
            &Datatype::byte(),
            &Datatype::contiguous(8, Datatype::byte()),
        )
        .unwrap();
        assert_eq!(v.map(4, 10).unwrap(), vec![(1004, 10)]);
    }

    #[test]
    fn strided_filetype_tiles() {
        // Filetype: 2 bytes data, 2 bytes hole (vector 1 block of 2, resized
        // to extent 4).
        let ft = Datatype::resized(0, 4, Datatype::contiguous(2, Datatype::byte()));
        let v = FileView::new(0, &Datatype::byte(), &ft).unwrap();
        // 6 logical bytes -> (0,2), (4,2), (8,2)
        assert_eq!(v.map(0, 6).unwrap(), vec![(0, 2), (4, 2), (8, 2)]);
        // Offset into the middle of a tile.
        assert_eq!(v.map(1, 3).unwrap(), vec![(1, 1), (4, 2)]);
        // Skipping whole tiles.
        assert_eq!(v.map(4, 2).unwrap(), vec![(8, 2)]);
    }

    #[test]
    fn subarray_view_maps_partition() {
        // 4x4 int array; this rank sees rows 2..4 (a "Z partition").
        let ft = Datatype::subarray(&[4, 4], &[2, 4], &[2, 0], Datatype::int()).unwrap();
        let v = FileView::new(0, &Datatype::int(), &ft).unwrap();
        // The whole sub-block is one contiguous run of 32 bytes at byte 32.
        assert_eq!(v.map(0, 32).unwrap(), vec![(32, 32)]);
    }

    #[test]
    fn subarray_view_noncontiguous_partition() {
        // 4x4 int array; this rank sees columns 1..3 (an "X partition").
        let ft = Datatype::subarray(&[4, 4], &[4, 2], &[0, 1], Datatype::int()).unwrap();
        let v = FileView::new(0, &Datatype::int(), &ft).unwrap();
        assert_eq!(
            v.map(0, 32).unwrap(),
            vec![(4, 8), (20, 8), (36, 8), (52, 8)]
        );
        // Partial access stops mid-run.
        assert_eq!(v.map(0, 3).unwrap(), vec![(4, 3)]);
    }

    #[test]
    fn etype_scales_offsets() {
        let ft = Datatype::contiguous(100, Datatype::double());
        let v = FileView::new(0, &Datatype::double(), &ft).unwrap();
        assert_eq!(v.map(3, 16).unwrap(), vec![(24, 16)]);
        assert_eq!(v.etype_size(), 8);
    }

    #[test]
    fn rejects_decreasing_filetype() {
        // Struct with fields out of order addresses backwards.
        let ft = Datatype::structure(vec![(8, 1, Datatype::int()), (0, 1, Datatype::int())]);
        assert!(FileView::new(0, &Datatype::byte(), &ft).is_err());
    }

    #[test]
    fn rejects_etype_mismatch() {
        let ft = Datatype::contiguous(3, Datatype::byte());
        assert!(FileView::new(0, &Datatype::int(), &ft).is_err());
    }

    #[test]
    fn flatten_cache_hits_and_distinguishes_views() {
        let ft = Datatype::resized(0, 4, Datatype::contiguous(2, Datatype::byte()));
        let strided = FileView::new(0, &Datatype::byte(), &ft).unwrap();
        let contig = FileView::contiguous();
        assert_ne!(strided.signature(), contig.signature());

        let mut cache = FlattenCache::new();
        let a = cache.map(&strided, 0, 6).unwrap();
        assert_eq!(*a, vec![(0, 2), (4, 2), (8, 2)]);
        assert_eq!(cache.stats(), (0, 1));
        // Same view+access: served from the cache, same result.
        let b = cache.map(&strided, 0, 6).unwrap();
        assert_eq!(a, b);
        assert_eq!(cache.stats(), (1, 1));
        // Same access through a different view must not collide.
        let c = cache.map(&contig, 0, 6).unwrap();
        assert_eq!(*c, vec![(0, 6)]);
        assert_eq!(cache.stats(), (1, 2));
        // A rebuilt identical view shares the signature and therefore hits.
        let ft2 = Datatype::resized(0, 4, Datatype::contiguous(2, Datatype::byte()));
        let strided2 = FileView::new(0, &Datatype::byte(), &ft2).unwrap();
        assert_eq!(strided.signature(), strided2.signature());
        cache.map(&strided2, 0, 6).unwrap();
        assert_eq!(cache.stats(), (2, 2));
    }

    #[test]
    fn push_run_coalesces() {
        let mut runs = Vec::new();
        push_run(&mut runs, 0, 4);
        push_run(&mut runs, 4, 4);
        push_run(&mut runs, 10, 2);
        push_run(&mut runs, 12, 0);
        assert_eq!(runs, vec![(0, 8), (10, 2)]);
        assert_eq!(runs_total(&runs), 10);
    }
}
