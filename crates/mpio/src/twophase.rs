//! Two-phase collective I/O (Rosario/Bordawekar/Choudhary; Thakur's extended
//! two-phase method — the ROMIO algorithm the paper builds on).
//!
//! Phase 1 — *exchange*: the aggregate byte range requested by all ranks is
//! partitioned into contiguous **file domains**, one per aggregator rank;
//! every rank ships the parts of its request that fall in each domain to
//! that domain's aggregator.
//!
//! Phase 2 — *access*: each aggregator walks its domain in collective-buffer
//! sized windows. In a window, the pieces contributed by all ranks are
//! merged; if they cover one contiguous interval the aggregator issues a
//! single large request, otherwise it performs read-modify-write of the
//! covered extent (writes) or one spanning read (reads). Either way, the
//! many small noncontiguous per-rank requests become a few large ordered
//! ones — this is the optimization responsible for PnetCDF's scaling in
//! Figures 6 and 7.
//!
//! The whole algorithm runs inside the last-arriver closure of a collective
//! rendezvous ([`pnetcdf_mpi::comm::Comm::collective`]), which makes the
//! virtual-time accounting deterministic: aggregator timelines all start at
//! the synchronized time `t0` and advance through the shared server queues
//! in rank order.

use hpc_sim::trace::events::{layer, stage};
use hpc_sim::{Phase, Profile, Span, Time, TraceCtx, TraceLog};
use pnetcdf_mpi::CollEnv;
use pnetcdf_pfs::{PfsFile, WriteCompletion};

use crate::error::{MpioError, MpioResult};
use crate::recover::{self, RetryPolicy};
use crate::view::{runs_total, Run};

/// Parameters resolved from hints at the call site.
#[derive(Clone, Copy, Debug)]
pub struct TwoPhaseParams {
    /// Collective buffer (window) size per aggregator.
    pub cb_buffer_size: usize,
    /// `cb_nodes` hint; `None` picks the aggregator count per collective
    /// from the server count and request volume ([`dynamic_cb_nodes`]).
    pub cb_nodes: Option<usize>,
    /// Number of PFS I/O servers (aggregator default and affine mapping).
    pub io_servers: usize,
    /// File system stripe size (domain boundaries align to it).
    pub stripe: u64,
    /// Pipeline the rounds (`pnc_cb_pipeline`): each aggregator holds two
    /// collective buffers, so round `j`'s data exchange overlaps round
    /// `j-1`'s disk access. Off reproduces the serial exchange-then-access
    /// timing exactly.
    pub pipeline: bool,
    /// Server-affine write domains (`pnc_cb_affinity`): each aggregator
    /// owns the stripes of a distinct subset of servers, so every server
    /// sees one aggregator stream and its NIC+disk pipeline stays full.
    pub affinity: bool,
}

impl TwoPhaseParams {
    /// Aggregator count for this collective: the `cb_nodes` hint if given,
    /// otherwise the dynamic default.
    pub fn naggs(&self, nprocs: usize, total_bytes: u64) -> usize {
        match self.cb_nodes {
            Some(k) => k.min(nprocs).max(1),
            None => dynamic_cb_nodes(nprocs, self.io_servers, total_bytes, self.cb_buffer_size),
        }
    }
}

/// Default aggregator count when `cb_nodes` is unset: one aggregator
/// stream per I/O server keeps every dual-resource server pipeline full
/// without queueing extra streams behind one disk, and a collective too
/// small to fill that many collective buffers uses fewer still.
pub fn dynamic_cb_nodes(
    nprocs: usize,
    io_servers: usize,
    total_bytes: u64,
    cb_buffer: usize,
) -> usize {
    let volume_cap = total_bytes.div_ceil(cb_buffer.max(1) as u64).max(1);
    io_servers
        .min(nprocs)
        .min(volume_cap.min(usize::MAX as u64) as usize)
        .max(1)
}

// ---- request parcels ------------------------------------------------------

/// Encode a write request (runs + packed data) into a deposit parcel.
///
/// `trace_id` is the sender's ambient trace id (0 while tracing is off).
/// It rides the parcel because the collective's finish closure runs on ONE
/// thread for all ranks — thread-local [`TraceCtx`] cannot carry a rank's
/// id across the rendezvous, so the wire format does.
pub fn encode_write_req(runs: &[Run], data: &[u8], trace_id: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + runs.len() * 16 + data.len());
    out.extend_from_slice(&trace_id.to_ne_bytes());
    out.extend_from_slice(&(runs.len() as u64).to_ne_bytes());
    for &(off, len) in runs {
        out.extend_from_slice(&off.to_ne_bytes());
        out.extend_from_slice(&len.to_ne_bytes());
    }
    out.extend_from_slice(data);
    out
}

/// Encode a read request (runs only).
pub fn encode_read_req(runs: &[Run], trace_id: u64) -> Vec<u8> {
    encode_write_req(runs, &[], trace_id)
}

/// Decode a parcel into `(runs, data, trace_id)`; `data` borrows the
/// parcel.
///
/// A parcel arrives from another rank's deposit, so its length is
/// validated before any slice is taken: a truncated or corrupt exchange
/// parcel yields [`MpioError::InvalidArgument`] rather than a panic.
pub fn decode_req(parcel: &[u8]) -> MpioResult<(Vec<Run>, &[u8], u64)> {
    let trace_id = read_u64(parcel, 0)?;
    let n = read_u64(parcel, 8)? as usize;
    let runs_end = n
        .checked_mul(16)
        .and_then(|b| b.checked_add(16))
        .filter(|&need| need <= parcel.len())
        .ok_or_else(|| {
            MpioError::InvalidArgument(format!(
                "exchange parcel declares {n} runs but holds only {} bytes",
                parcel.len()
            ))
        })?;
    let mut runs = Vec::with_capacity(n);
    let mut total = 0u64;
    let mut pos = 16;
    while pos < runs_end {
        let off = read_u64(parcel, pos)?;
        let len = read_u64(parcel, pos + 8)?;
        total = total.checked_add(len).ok_or_else(|| {
            MpioError::InvalidArgument("exchange parcel run lengths overflow u64".to_string())
        })?;
        runs.push((off, len));
        pos += 16;
    }
    let data = &parcel[runs_end..];
    // A write parcel carries exactly the runs' payload; a read parcel
    // carries none. Anything else is a truncated or oversized exchange.
    if !data.is_empty() && data.len() as u64 != total {
        return Err(MpioError::InvalidArgument(format!(
            "exchange parcel payload is {} bytes but its runs cover {total}",
            data.len()
        )));
    }
    Ok((runs, data, trace_id))
}

/// Checked little-slice read used by [`decode_req`]: a parcel crossing the
/// rank boundary is untrusted input, so every fixed-width field goes
/// through a bounds check instead of a panicking `try_into().unwrap()`.
fn read_u64(parcel: &[u8], pos: usize) -> MpioResult<u64> {
    parcel
        .get(pos..pos + 8)
        .map(|b| u64::from_ne_bytes(b.try_into().expect("slice is 8 bytes")))
        .ok_or_else(|| {
            MpioError::InvalidArgument(format!(
                "exchange parcel truncated: field at byte {pos} needs 8 bytes, parcel holds {}",
                parcel.len()
            ))
        })
}

// ---- file domains -----------------------------------------------------------

/// Partition `[gmin, gmax)` into at most `naggs` contiguous domains whose
/// interior boundaries are *absolute* multiples of `stripe`.
///
/// Absolute alignment matters: GPFS-style file systems read-modify-write
/// partial blocks, so domain (and window) boundaries must coincide with
/// file-system block boundaries, not with the (arbitrary) start of the
/// aggregate request. Only the outermost edges at `gmin`/`gmax` can be
/// unaligned.
pub fn file_domains(gmin: u64, gmax: u64, naggs: usize, stripe: u64) -> Vec<(u64, u64)> {
    assert!(gmax >= gmin);
    let span = gmax - gmin;
    if span == 0 {
        return Vec::new();
    }
    let raw = span.div_ceil(naggs as u64);
    let dsz = raw.div_ceil(stripe).max(1) * stripe;
    // First interior boundary: the first absolute stripe multiple > gmin.
    let first_boundary = (gmin / stripe + 1) * stripe;
    let mut out = Vec::new();
    let mut lo = gmin;
    let mut boundary = first_boundary + (dsz - stripe);
    while lo < gmax {
        let hi = boundary.min(gmax);
        if hi > lo {
            out.push((lo, hi));
        }
        lo = hi;
        boundary += dsz;
    }
    out
}

/// Total requested bytes falling inside each domain, summed over all ranks.
/// `domains` must be sorted and disjoint; each rank's `runs` sorted.
pub fn bytes_per_domain(all_runs: &[Vec<Run>], domains: &[(u64, u64)]) -> Vec<u64> {
    let mut acc = vec![0u64; domains.len()];
    for runs in all_runs {
        let mut d = 0usize;
        for &(off, len) in runs {
            let mut lo = off;
            let end = off + len;
            while lo < end && d < domains.len() {
                let (dlo, dhi) = domains[d];
                if end <= dlo {
                    break;
                }
                if lo >= dhi {
                    d += 1;
                    continue;
                }
                let take = end.min(dhi) - lo.max(dlo);
                acc[d] += take;
                lo = lo.max(dlo) + take;
                if lo >= dhi {
                    d += 1;
                }
            }
        }
    }
    acc
}

/// Bytes of one rank's request that overlap one domain.
fn overlap_bytes(runs: &[Run], (dlo, dhi): (u64, u64)) -> u64 {
    let mut acc = 0u64;
    for &(off, len) in runs {
        let end = off + len;
        if end <= dlo {
            continue;
        }
        if off >= dhi {
            break;
        }
        acc += end.min(dhi) - off.max(dlo);
    }
    acc
}

/// Exchange-phase wire cost: aggregator `a` owns `domains[a]` and *is* rank
/// `a` (ROMIO's default aggregator ranklist), so bytes a rank requests
/// within its own domain move by memcpy, not over the network. This is why
/// Z-ish partitions — whose blocks align with the file domains — exchange
/// less than X-ish partitions (the paper's "different access contiguity").
fn exchange_cost(
    env: &CollEnv,
    all_runs: &[Vec<Run>],
    totals: &[u64],
    domains: &[(u64, u64)],
) -> Time {
    let n = env.size();
    let mut max_rank_wire = 0u64; // busiest non-aggregator-side endpoint
    let mut total_wire = 0u64;
    for (r, runs) in all_runs.iter().enumerate() {
        let local = domains.get(r).map(|&d| overlap_bytes(runs, d)).unwrap_or(0);
        max_rank_wire = max_rank_wire.max(totals[r] - local);
        total_wire += totals[r] - local;
    }
    let per_domain = bytes_per_domain(all_runs, domains);
    let mut max_agg_wire = 0u64;
    for (a, &bytes) in per_domain.iter().enumerate() {
        let local = all_runs
            .get(a)
            .map(|runs| overlap_bytes(runs, domains[a]))
            .unwrap_or(0);
        max_agg_wire = max_agg_wire.max(bytes - local);
    }
    env.config
        .profile
        .record_twophase(|t| t.exchange_wire_bytes += total_wire);
    env.config
        .network
        .alltoallv(max_rank_wire as usize, max_agg_wire as usize, n)
}

/// Per-round exchange wire statistics for the pipelined engine: round `j`
/// ships only the bytes that land in (writes) or come out of (reads) the
/// round-`j` windows.
#[derive(Clone, Copy, Debug, Default)]
struct RoundWire {
    /// Busiest non-aggregator endpoint: bytes one rank moves this round.
    max_send: u64,
    /// Busiest aggregator endpoint: bytes arriving from other ranks.
    max_recv: u64,
    /// Total bytes crossing the network this round.
    total: u64,
}

/// Compute each round's wire traffic from the gathered window pieces.
/// A piece whose owning rank *is* the window's aggregator moves by memcpy
/// and costs no wire, exactly as in the monolithic [`exchange_cost`] — the
/// per-round totals sum to the same `exchange_wire_bytes`.
fn round_wire(windows: &[Vec<Vec<Piece>>], nranks: usize, rounds: usize) -> Vec<RoundWire> {
    let mut out = Vec::with_capacity(rounds);
    for j in 0..rounds {
        let mut send = vec![0u64; nranks];
        let mut w = RoundWire::default();
        for (a, agg_windows) in windows.iter().enumerate() {
            let Some(pieces) = agg_windows.get(j) else {
                continue;
            };
            let mut recv = 0u64;
            for pc in pieces {
                if pc.rank != a {
                    send[pc.rank] += pc.len;
                    recv += pc.len;
                }
            }
            w.max_recv = w.max_recv.max(recv);
            w.total += recv;
        }
        w.max_send = send.into_iter().max().unwrap_or(0);
        out.push(w);
    }
    out
}

/// Monolithic exchange wire traffic computed from the gathered windows
/// themselves: a piece whose owning rank *is* the window's aggregator moves
/// by memcpy. Unlike [`exchange_cost`] this needs no contiguous domain
/// table, so it prices server-affine (interleaved) write domains too; for
/// contiguous domains the two agree exactly.
fn monolithic_wire(windows: &[Vec<Vec<Piece>>], nranks: usize) -> RoundWire {
    let mut send = vec![0u64; nranks];
    let mut w = RoundWire::default();
    for (a, agg_windows) in windows.iter().enumerate() {
        let mut recv = 0u64;
        for pieces in agg_windows {
            for pc in pieces {
                if pc.rank != a {
                    send[pc.rank] += pc.len;
                    recv += pc.len;
                }
            }
        }
        w.max_recv = w.max_recv.max(recv);
        w.total += recv;
    }
    w.max_send = send.into_iter().max().unwrap_or(0);
    w
}

// ---- window piece gathering -------------------------------------------------

/// A contiguous piece of one rank's request inside the current window.
#[derive(Clone, Copy, Debug)]
struct Piece {
    off: u64,
    len: u64,
    rank: usize,
    /// Position of this piece's bytes in the rank's packed buffer.
    src_pos: u64,
}

/// Per-rank scan cursor over its sorted run list.
#[derive(Clone, Copy, Default)]
struct Cursor {
    idx: usize,
    consumed: u64,
    src_pos: u64,
}

/// Advance `cur` over `runs`, emitting pieces up to file offset `whi`.
fn take_pieces(runs: &[Run], cur: &mut Cursor, whi: u64, rank: usize, out: &mut Vec<Piece>) {
    while cur.idx < runs.len() {
        let (off, len) = runs[cur.idx];
        let start = off + cur.consumed;
        if start >= whi {
            return;
        }
        let end = (off + len).min(whi);
        out.push(Piece {
            off: start,
            len: end - start,
            rank,
            src_pos: cur.src_pos + cur.consumed,
        });
        if end == off + len {
            cur.src_pos += len;
            cur.consumed = 0;
            cur.idx += 1;
        } else {
            cur.consumed = end - off;
            return;
        }
    }
}

/// Merge sorted-by-offset intervals into maximal contiguous runs.
fn merge_coverage(mut intervals: Vec<(u64, u64)>) -> Vec<(u64, u64)> {
    intervals.sort_unstable();
    let mut out: Vec<(u64, u64)> = Vec::new();
    for (off, len) in intervals {
        if let Some(last) = out.last_mut() {
            let last_end = last.0 + last.1;
            if off <= last_end {
                let end = (off + len).max(last_end);
                last.1 = end - last.0;
                continue;
            }
        }
        out.push((off, len));
    }
    out
}

// ---- server-affine write domains --------------------------------------------

/// Affine planning walks every stripe of the aggregate span once; beyond
/// this many stripes (4 Mi ≈ a multi-TiB span at default stripes) fall
/// back to contiguous domains rather than build giant per-stripe tables.
const AFFINE_SPAN_LIMIT: u64 = 1 << 22;

/// Server-affine window plan: `windows[a][j]` holds round `j`'s pieces for
/// aggregator `a`, `extents[a][j]` the sorted owned stripe ranges those
/// pieces may touch. Aggregator `a` owns exactly the stripes of servers
/// `{s : s % naggs_eff == a}`, so its disk traffic never contends with
/// another aggregator's.
struct AffinePlan {
    windows: Vec<Vec<Vec<Piece>>>,
    extents: Vec<Vec<Vec<(u64, u64)>>>,
    naggs_eff: usize,
}

/// Build the affine plan for `[gmin, gmax)`. Stripe `s` lives on server
/// `s % nservers` and is owned by aggregator `(s % nservers) % naggs_eff`;
/// each aggregator groups its consecutive owned stripes into windows of
/// about `cb_buffer_size` bytes. Pieces are split at stripe boundaries so
/// each lies in exactly one window (and one extent).
fn gather_affine_windows(
    all_runs: &[Vec<Run>],
    gmin: u64,
    gmax: u64,
    naggs: usize,
    io_servers: usize,
    stripe: u64,
    cb_buffer_size: usize,
) -> AffinePlan {
    debug_assert!(gmax > gmin);
    let nservers = io_servers.max(1) as u64;
    let naggs_eff = naggs.min(io_servers).max(1);
    let s0 = gmin / stripe;
    let s1 = (gmax - 1) / stripe;
    let cb = cb_buffer_size.max(1) as u64;

    // Pass 1: per-stripe owner and window index, plus per-window extents.
    let mut wmap: Vec<u32> = Vec::with_capacity((s1 - s0 + 1) as usize);
    let mut wbytes = vec![0u64; naggs_eff];
    let mut extents: Vec<Vec<Vec<(u64, u64)>>> = vec![Vec::new(); naggs_eff];
    for s in s0..=s1 {
        let a = ((s % nservers) as usize) % naggs_eff;
        let elo = (s * stripe).max(gmin);
        let ehi = ((s + 1) * stripe).min(gmax);
        let len = ehi - elo;
        if extents[a].is_empty() || wbytes[a] + len > cb {
            extents[a].push(Vec::new());
            wbytes[a] = 0;
        }
        wbytes[a] += len;
        let win = extents[a].last_mut().unwrap();
        match win.last_mut() {
            Some(last) if last.0 + last.1 == elo => last.1 += len,
            _ => win.push((elo, len)),
        }
        wmap.push((extents[a].len() - 1) as u32);
    }

    // Pass 2: split every run at stripe boundaries and route each piece to
    // its stripe's window. Ranks are walked in order, so within a window
    // pieces stay in rank order and overlapping writes resolve exactly as
    // in the contiguous gather (highest rank wins).
    let mut windows: Vec<Vec<Vec<Piece>>> = extents
        .iter()
        .map(|aw| vec![Vec::new(); aw.len()])
        .collect();
    for (r, runs) in all_runs.iter().enumerate() {
        let mut src = 0u64;
        for &(off, len) in runs {
            let end = off + len;
            let mut lo = off;
            while lo < end {
                let s = lo / stripe;
                let hi = ((s + 1) * stripe).min(end);
                let a = ((s % nservers) as usize) % naggs_eff;
                windows[a][wmap[(s - s0) as usize] as usize].push(Piece {
                    off: lo,
                    len: hi - lo,
                    rank: r,
                    src_pos: src + (lo - off),
                });
                lo = hi;
            }
            src += len;
        }
    }

    // Drop windows no run touched (their stripes hold only other data).
    for a in 0..naggs_eff {
        let mut kept_w = Vec::new();
        let mut kept_e = Vec::new();
        for (w, e) in windows[a].drain(..).zip(extents[a].drain(..)) {
            if !w.is_empty() {
                kept_w.push(w);
                kept_e.push(e);
            }
        }
        windows[a] = kept_w;
        extents[a] = kept_e;
    }
    AffinePlan {
        windows,
        extents,
        naggs_eff,
    }
}

// ---- event tracing ----------------------------------------------------------

/// Tracing identity of one collective-buffer window: its round index, its
/// pre-allocated span id, and the owning aggregator's collective-span id
/// (the window span's parent). All zeros while tracing is off.
#[derive(Clone, Copy, Default)]
struct WinTrace {
    round: usize,
    wid: u64,
    parent: u64,
}

/// Allocate the trace identity for window `(a, round)`.
fn win_trace(
    events: &TraceLog,
    tracing: bool,
    round: usize,
    coll_ids: &[u64],
    a: usize,
) -> WinTrace {
    if !tracing {
        return WinTrace::default();
    }
    WinTrace {
        round,
        wid: events.next_id(),
        parent: coll_ids.get(a).copied().unwrap_or(0),
    }
}

/// World rank a window's spans are attributed to. Domains past the group
/// size are *virtual* aggregators (see [`AccessSplit::attribute`]); their
/// spans land on the last real rank's timeline rather than a phantom one.
fn agg_world(env: &CollEnv, a: usize) -> usize {
    env.group
        .get(a)
        .copied()
        .unwrap_or_else(|| env.group.last().copied().unwrap_or(0))
}

/// Emit each rank's whole-collective span `[t0, t_end]` — the region
/// `set_all` jumps every clock across, which the per-advance phase tiling
/// cannot see. Span `coll_ids[r]` parents rank `r`'s windows; its own
/// parent is the request trace id that rode in rank `r`'s parcel, which
/// closes the core → mpio link of the id chain.
fn record_coll_spans(
    env: &CollEnv,
    events: &TraceLog,
    name: &'static str,
    t0: Time,
    t_end: Time,
    ids: &[u64],
    coll_ids: &[u64],
) {
    if coll_ids.is_empty() {
        return;
    }
    for (r, &w) in env.group.iter().enumerate() {
        events.record(
            Span::new(w, layer::MPIO, name, t0.as_nanos(), t_end.as_nanos())
                .with_id(coll_ids.get(r).copied().unwrap_or(0))
                .with_parent(ids.get(r).copied().unwrap_or(0)),
        );
    }
}

// ---- the two phases -----------------------------------------------------------

/// Collective write: the finish-closure body. `reqs[r]` is rank `r`'s
/// `(runs, packed data)`, `ids[r]` the trace id that rode rank `r`'s
/// parcel (empty while tracing is off). Returns the synchronized
/// completion time.
///
/// Aggregator-side storage faults are recovered by [`crate::recover`];
/// when the budget runs out the error is returned *after* every rank's
/// clock has been synchronized (`set_all`), so the collective never leaves
/// a rank stranded in the past — the caller then agrees on the error.
pub fn write_all(
    env: &CollEnv,
    file: &PfsFile,
    p: &TwoPhaseParams,
    reqs: &[(Vec<Run>, &[u8])],
    ids: &[u64],
) -> MpioResult<Time> {
    let n = env.size();
    let policy = RetryPolicy::default();
    let profile = env.config.profile.clone();
    let events = env.config.events.clone();
    let tracing = events.is_enabled();
    let coll_ids: Vec<u64> = if tracing {
        env.group.iter().map(|_| events.next_id()).collect()
    } else {
        Vec::new()
    };
    let total: u64 = reqs.iter().map(|(r, _)| runs_total(r)).sum();
    if total == 0 {
        return Ok(env.sync_phase(Phase::Metadata, env.config.network.barrier(n)));
    }
    let gmin = reqs
        .iter()
        .filter_map(|(r, _)| r.first().map(|&(o, _)| o))
        .min()
        .unwrap();
    let gmax = reqs
        .iter()
        .filter_map(|(r, _)| r.last().map(|&(o, l)| o + l))
        .max()
        .unwrap();
    let naggs = p.naggs(n, total);

    profile.record_twophase(|t| {
        t.collective_writes += 1;
        t.cb_nodes = naggs as u64;
    });

    // Pieces are gathered first in one offset-ordered pass; the windows
    // are then timed in round-robin order across aggregators, so their
    // concurrent requests reach the shared server queues interleaved in
    // time order — identically in both engines, which is what keeps the
    // produced file bytes independent of the pipeline hint.
    let all_runs: Vec<Vec<Run>> = reqs.iter().map(|(r, _)| r.clone()).collect();
    let span_stripes = (gmax - 1) / p.stripe - gmin / p.stripe + 1;
    let affine = p.affinity && span_stripes <= AFFINE_SPAN_LIMIT;
    let (windows, extents) = if affine {
        let plan = gather_affine_windows(
            &all_runs,
            gmin,
            gmax,
            naggs,
            p.io_servers,
            p.stripe,
            p.cb_buffer_size,
        );
        profile.record_twophase(|t| t.file_domains += plan.naggs_eff as u64);
        (plan.windows, Some(plan.extents))
    } else {
        let domains = file_domains(gmin, gmax, naggs, p.stripe);
        profile.record_twophase(|t| t.file_domains += domains.len() as u64);
        (gather_windows(&all_runs, &domains, p.cb_buffer_size), None)
    };
    let window_extents = |a: usize, j: usize| -> Option<&[(u64, u64)]> {
        extents.as_ref().map(|e| e[a][j].as_slice())
    };
    let rounds = windows.iter().map(Vec::len).max().unwrap_or(0);
    let mut split = AccessSplit::new(windows.len());

    // With fewer than two rounds there is nothing to overlap, so the
    // pipelined engine would only pay its extra offset exchange; fall back
    // to the serial timing.
    if !p.pipeline || rounds < 2 {
        // Serial engine (`pnc_cb_pipeline=disable`): ONE monolithic
        // alltoallv models offset lists and data moving together up front,
        // charged whole to the data-exchange phase; every disk window is
        // timed after it, waiting for durability. Exchange and disk time
        // add, and the server NIC stage adds to the disk stage too.
        let wire = monolithic_wire(&windows, n);
        profile.record_twophase(|t| t.exchange_wire_bytes += wire.total);
        let t0 = env.sync_phase(
            Phase::DataExchange,
            env.config
                .network
                .alltoallv(wire.max_send as usize, wire.max_recv as usize, n),
        );
        let mut t_agg = vec![t0; windows.len()];
        let access = (|| -> MpioResult<()> {
            for j in 0..rounds {
                for (a, agg_windows) in windows.iter().enumerate() {
                    let Some(pieces) = agg_windows.get(j) else {
                        continue;
                    };
                    let wt = win_trace(&events, tracing, j, &coll_ids, a);
                    let (_, durable) = write_window(
                        env,
                        file,
                        &policy,
                        t_agg[a],
                        a,
                        pieces,
                        reqs,
                        &mut split,
                        window_extents(a, j),
                        true,
                        wt,
                    )?;
                    t_agg[a] = durable;
                }
            }
            Ok(())
        })();
        let t_end = t_agg.iter().copied().fold(t0, Time::max);
        record_coll_spans(env, &events, "coll_write", t0, t_end, ids, &coll_ids);
        return match access {
            Ok(()) => {
                split.attribute(&profile, env, t_end, &t_agg, Phase::Wait);
                env.set_all(t_end);
                Ok(t_end)
            }
            Err(e) => {
                // Synchronize the clocks even on failure: no rank may be
                // left behind a collective, successful or not.
                env.set_all(t_end);
                Err(e)
            }
        };
    }

    // Pipelined engine: offset lists are exchanged up front (small) so the
    // rounds can be planned; each round then ships only the bytes landing
    // in that round's windows. With two collective buffers per aggregator,
    // round j's exchange may start as soon as round j-1's exchange has
    // drained AND round j-2's disk pass has freed its buffer, so
    // communication genuinely hides disk time (and vice versa).
    let meta_bytes = all_runs.iter().map(|r| r.len() * 16).max().unwrap_or(0);
    let entry = env.sync_phase(
        Phase::OffsetExchange,
        env.config.network.alltoallv(meta_bytes, meta_bytes, n),
    );
    let wire = round_wire(&windows, n, rounds);
    profile.record_twophase(|t| {
        t.exchange_wire_bytes += wire.iter().map(|w| w.total).sum::<u64>();
        t.pipelined_rounds += rounds as u64;
    });

    let mut t_agg = vec![entry; windows.len()];
    let mut x_done = vec![entry; rounds]; // per-round exchange completion
    let mut d_done = vec![entry; rounds]; // per-round handoff completion (all aggs)
    let mut durable_max = entry; // slowest disk among all windows
    let mut costs: Vec<Time> = Vec::with_capacity(rounds);
    let access = (|| -> MpioResult<()> {
        for j in 0..rounds {
            let mut xs = if j > 0 { x_done[j - 1] } else { entry };
            if j >= 2 {
                // Double buffering: the buffer receiving round j is the one
                // round j-2 handed off to the servers — with the dual-
                // resource servers the collective buffer is free once the
                // server NIC owns the bytes; the bounded admission queue is
                // the backpressure, not the platter.
                xs = xs.max(d_done[j - 2]);
            }
            let cost = env.alltoallv_cost(
                wire[j].max_send as usize,
                wire[j].max_recv as usize,
                wire[j].total,
            );
            costs.push(cost);
            x_done[j] = xs + cost;
            let mut dmax = entry;
            for (a, agg_windows) in windows.iter().enumerate() {
                let Some(pieces) = agg_windows.get(j) else {
                    continue;
                };
                // Aggregator a starts round j once its previous window is
                // handed off and round j's data has arrived; time spent
                // waiting on the wire is the exchange cost that survives
                // on this aggregator's critical path.
                let wt = win_trace(&events, tracing, j, &coll_ids, a);
                let ready = t_agg[a].max(x_done[j]);
                split.exchange[a] += (ready - t_agg[a]).as_nanos();
                if tracing && ready > t_agg[a] {
                    events.record(
                        Span::new(
                            agg_world(env, a),
                            layer::MPIO,
                            "exchange_wait",
                            t_agg[a].as_nanos(),
                            ready.as_nanos(),
                        )
                        .with_parent(wt.wid)
                        .with_stage(stage::EXCHANGE)
                        .with_arg("round", j as u64),
                    );
                }
                let (handoff, durable) = write_window(
                    env,
                    file,
                    &policy,
                    ready,
                    a,
                    pieces,
                    reqs,
                    &mut split,
                    window_extents(a, j),
                    false,
                    wt,
                )?;
                t_agg[a] = handoff;
                durable_max = durable_max.max(durable);
                dmax = dmax.max(handoff);
            }
            d_done[j] = dmax;
        }
        Ok(())
    })();
    // The collective completes when the last exchange has drained, the
    // last window is handed off, AND every server's disk has the bytes —
    // write_all promises durability at return, the pipeline only moves the
    // disk wait off each window's critical path.
    let t_end = t_agg.iter().copied().fold(
        x_done.last().copied().unwrap_or(entry).max(durable_max),
        Time::max,
    );
    record_coll_spans(env, &events, "coll_write", entry, t_end, ids, &coll_ids);
    match access {
        Ok(()) => {
            split.record_overlap(&profile, &costs, entry, t_end, &t_agg);
            split.attribute(&profile, env, t_end, &t_agg, Phase::Wait);
            env.set_all(t_end);
            Ok(t_end)
        }
        Err(e) => {
            env.set_all(t_end);
            Err(e)
        }
    }
}

/// Time one write window on aggregator `a` starting at `t_start`:
/// collective-buffer assembly (memcpy), any read-modify-write reads, then
/// the window's write(s). Returns `(advance, durable)`: `advance` is the
/// time the aggregator may move on — the server hand-off when
/// `wait_durable` is false (pipelined engine), the disk completion when
/// true (serial engine) — and `durable` is always the disk completion.
///
/// With `extents` (server-affine windows) the window may touch several
/// disjoint owned stripe ranges: fully covered spans are written as-is,
/// partially covered spans are read-modify-written per extent, untouched
/// extents are skipped, and all resulting runs go to the PFS as ONE
/// vectored request per server.
#[allow(clippy::too_many_arguments)]
fn write_window(
    env: &CollEnv,
    file: &PfsFile,
    policy: &RetryPolicy,
    t_start: Time,
    a: usize,
    pieces: &[Piece],
    reqs: &[(Vec<Run>, &[u8])],
    split: &mut AccessSplit,
    extents: Option<&[(u64, u64)]>,
    wait_durable: bool,
    wt: WinTrace,
) -> MpioResult<(Time, Time)> {
    let events = &env.config.events;
    let tracing = wt.wid != 0 && events.is_enabled();
    let w = agg_world(env, a);
    // Ambient context: the pfs ServiceEngine stages and any retry backoffs
    // taken on this window's behalf parent themselves to the window span.
    let _ctx = tracing.then(|| TraceCtx::enter(w, wt.wid));
    let mut t_a = t_start;
    split.windows += 1;
    let piece_bytes: u64 = pieces.iter().map(|pc| pc.len).sum();
    // Assembling the collective buffer is memcpy work.
    let pack = env.config.cpu.pack(piece_bytes as usize, 1.0);
    t_a += pack;
    split.pack[a] += pack.as_nanos();
    if tracing && pack > Time::ZERO {
        events.record(
            Span::new(w, layer::MPIO, "pack", t_start.as_nanos(), t_a.as_nanos())
                .with_parent(wt.wid)
                .with_stage(stage::PACK)
                .with_arg("round", wt.round as u64),
        );
    }

    let coverage = merge_coverage(pieces.iter().map(|pc| (pc.off, pc.len)).collect());
    let completion: WriteCompletion = match extents {
        None if coverage.len() == 1 => {
            // Fully contiguous: assemble and write once.
            let (clo, clen) = coverage[0];
            let mut buf = vec![0u8; clen as usize];
            overlay(&mut buf, clo, pieces, reqs);
            recover::write_at_detailed(file, policy, t_a, clo, &buf)?
        }
        None => {
            // Holes in a contiguous domain: read-modify-write the covered
            // extent.
            split.rmw += 1;
            let clo = coverage[0].0;
            let cend = coverage.last().map(|&(o, l)| o + l).unwrap();
            let mut buf = vec![0u8; (cend - clo) as usize];
            let before = t_a;
            t_a = recover::read_at(file, policy, t_a, clo, &mut buf)?;
            split.read[a] += (t_a - before).as_nanos();
            overlay(&mut buf, clo, pieces, reqs);
            recover::write_at_detailed(file, policy, t_a, clo, &buf)?
        }
        Some(extents) => {
            // Affine window: per owned extent, find the covered bounding
            // span. A single covered run writes directly; holes inside the
            // span read-modify-write it; untouched extents are skipped.
            // Coverage runs never bridge extents (pieces lie in owned
            // stripes only), so one linear merge suffices.
            let mut runs: Vec<(u64, u64)> = Vec::new();
            let mut data: Vec<u8> = Vec::new();
            let mut ci = 0usize;
            let mut did_rmw = false;
            for &(elo, elen) in extents {
                let ehi = elo + elen;
                let first = ci;
                while ci < coverage.len() && coverage[ci].0 + coverage[ci].1 <= ehi {
                    debug_assert!(coverage[ci].0 >= elo, "coverage escapes its extent");
                    ci += 1;
                }
                if ci == first {
                    continue;
                }
                let blo = coverage[first].0;
                let bhi = coverage[ci - 1].0 + coverage[ci - 1].1;
                let mut buf = vec![0u8; (bhi - blo) as usize];
                if ci - first > 1 {
                    // Holes within the span: fetch what is there first.
                    did_rmw = true;
                    let before = t_a;
                    t_a = recover::read_at(file, policy, t_a, blo, &mut buf)?;
                    split.read[a] += (t_a - before).as_nanos();
                }
                overlay_within(&mut buf, blo, pieces, reqs);
                runs.push((blo, bhi - blo));
                data.extend_from_slice(&buf);
            }
            if did_rmw {
                split.rmw += 1;
            }
            recover::write_runs(file, policy, t_a, &runs, &data)?
        }
    };
    let advance = if wait_durable {
        completion.durable
    } else {
        completion.handoff
    };
    split.write[a] += (advance - t_a).as_nanos();
    split.serial_busy[a] += (completion.durable - t_start).as_nanos();
    if tracing {
        events.record(
            Span::new(
                w,
                layer::MPIO,
                "window",
                t_start.as_nanos(),
                completion.durable.as_nanos(),
            )
            .with_id(wt.wid)
            .with_parent(wt.parent)
            .with_arg("round", wt.round as u64)
            .with_arg("agg", a as u64)
            .with_arg("bytes", piece_bytes),
        );
    }
    Ok((advance, completion.durable))
}

/// Copy pieces lying inside `[base, base + buf.len())` from their ranks'
/// packed data into `buf`, in piece (= rank) order. Affine windows use
/// this per covered span — each piece sits wholly inside exactly one span,
/// so a containment filter is enough.
fn overlay_within(buf: &mut [u8], base: u64, pieces: &[Piece], reqs: &[(Vec<Run>, &[u8])]) {
    let hi = base + buf.len() as u64;
    for pc in pieces {
        if pc.off < base || pc.off + pc.len > hi {
            continue;
        }
        let src = &reqs[pc.rank].1[pc.src_pos as usize..(pc.src_pos + pc.len) as usize];
        let lo = (pc.off - base) as usize;
        buf[lo..lo + pc.len as usize].copy_from_slice(src);
    }
}

/// Per-aggregator breakdown of the access phase, accumulated along each
/// aggregator's own timeline, plus engine window counters.
struct AccessSplit {
    pack: Vec<u64>,
    write: Vec<u64>,
    read: Vec<u64>,
    /// Pipelined engine only: time an aggregator spent *waiting on the
    /// wire* for its round's data (the exchange cost that was not hidden
    /// behind disk). Serial engine leaves this zero — its exchange is
    /// charged whole by `sync_phase` before the access loop.
    exchange: Vec<u64>,
    /// What each window would cost run serially (to durability, from the
    /// moment its data was ready): the baseline [`Self::record_overlap`]
    /// compares the overlapped makespan against. Kept apart from the
    /// attribution splits above, which charge only hand-off deltas in the
    /// pipelined engine.
    serial_busy: Vec<u64>,
    windows: u64,
    rmw: u64,
}

impl AccessSplit {
    fn new(naggs: usize) -> AccessSplit {
        AccessSplit {
            pack: vec![0; naggs],
            write: vec![0; naggs],
            read: vec![0; naggs],
            exchange: vec![0; naggs],
            serial_busy: vec![0; naggs],
            windows: 0,
            rmw: 0,
        }
    }

    /// Record how much the pipelined rounds saved: the difference between
    /// running this collective's exchange rounds and the critical
    /// aggregator's windows back to back (the serial schedule of the same
    /// rounds, each window waiting for durability) and the overlapped
    /// makespan actually achieved.
    fn record_overlap(
        &self,
        profile: &Profile,
        costs: &[Time],
        entry: Time,
        t_end: Time,
        t_agg: &[Time],
    ) {
        let Some(crit) = (0..t_agg.len()).max_by_key(|&a| t_agg[a]) else {
            return;
        };
        // serial_busy already folds in pack and RMW-read time (it is the
        // whole window, ready → durable).
        let serialized = costs.iter().map(|c| c.as_nanos()).sum::<u64>() + self.serial_busy[crit];
        let saved = serialized.saturating_sub((t_end - entry).as_nanos());
        profile.record_twophase(|t| t.overlap_saved_nanos += saved);
    }

    /// Charge the access phase (`t0 → t_end`, applied to every rank by
    /// `set_all`) to profile phases so per-rank sums stay exact:
    ///
    /// * aggregator `a` gets its own pack/write/read split, its unhidden
    ///   exchange waits as [`Phase::DataExchange`] (pipelined engine), and
    ///   `trailing` (usually [`Phase::Wait`]) for `t_end - t_agg[a]` —
    ///   idle behind the slowest aggregator, or, for pipelined reads,
    ///   still shipping rounds back;
    /// * a non-aggregator rank spends the same wall of virtual time blocked
    ///   on the aggregators, so it is credited with the *critical*
    ///   aggregator's split — the one that actually determines `t_end` —
    ///   which keeps the makespan rank's breakdown meaningful instead of
    ///   reading as one opaque wait. With overlap this is exactly the
    ///   "charged along the critical path only" rule: exchange time hidden
    ///   behind disk appears in no rank's breakdown.
    fn attribute(
        &self,
        profile: &Profile,
        env: &CollEnv,
        t_end: Time,
        t_agg: &[Time],
        trailing: Phase,
    ) {
        profile.record_twophase(|t| {
            t.windows += self.windows;
            t.rmw_windows += self.rmw;
        });
        if !profile.is_enabled() || t_agg.is_empty() {
            return;
        }
        // Stripe-aligned boundaries can yield one more domain than there
        // are ranks; domains past the group size are *virtual* aggregators
        // whose concurrent timelines belong to no rank — charging their
        // split to a rank that already owns a domain would double-count
        // that rank's clock advance.
        for (a, &t_a) in t_agg.iter().enumerate().take(env.group.len()) {
            let w = env.group[a];
            profile.record_phase(w, Phase::CollBufPack, self.pack[a]);
            profile.record_phase(w, Phase::DiskWrite, self.write[a]);
            profile.record_phase(w, Phase::DiskRead, self.read[a]);
            profile.record_phase(w, Phase::DataExchange, self.exchange[a]);
            profile.record_phase(w, trailing, (t_end - t_a).as_nanos());
        }
        let crit = (0..t_agg.len()).max_by_key(|&a| t_agg[a]).unwrap();
        for &w in env.group.iter().skip(t_agg.len()) {
            profile.record_phase(w, Phase::CollBufPack, self.pack[crit]);
            profile.record_phase(w, Phase::DiskWrite, self.write[crit]);
            profile.record_phase(w, Phase::DiskRead, self.read[crit]);
            profile.record_phase(w, Phase::DataExchange, self.exchange[crit]);
            profile.record_phase(w, trailing, (t_end - t_agg[crit]).as_nanos());
        }
    }
}

/// Pre-gather every aggregator's windows' piece lists: one offset-ordered
/// pass with per-rank cursors. `result[a][j]` holds the pieces of window
/// `j` within domain `a` (empty windows are dropped).
fn gather_windows(
    all_runs: &[Vec<Run>],
    domains: &[(u64, u64)],
    cb_buffer_size: usize,
) -> Vec<Vec<Vec<Piece>>> {
    let mut cursors = vec![Cursor::default(); all_runs.len()];
    let mut out = Vec::with_capacity(domains.len());
    let cb = cb_buffer_size as u64;
    for &(dlo, dhi) in domains {
        let mut agg_windows = Vec::new();
        let mut wlo = dlo;
        while wlo < dhi {
            // Window boundaries at absolute multiples of the buffer size,
            // which (for the default hints) are file-system block aligned.
            let whi = ((wlo / cb + 1) * cb).min(dhi);
            let mut pieces: Vec<Piece> = Vec::new();
            for (r, runs) in all_runs.iter().enumerate() {
                take_pieces(runs, &mut cursors[r], whi, r, &mut pieces);
            }
            wlo = whi;
            if !pieces.is_empty() {
                agg_windows.push(pieces);
            }
        }
        out.push(agg_windows);
    }
    out
}

/// Copy each piece's bytes from its rank's packed data into `buf` (which
/// starts at file offset `base`). Pieces are applied in rank order, so
/// overlapping writes resolve deterministically (highest rank wins).
fn overlay(buf: &mut [u8], base: u64, pieces: &[Piece], reqs: &[(Vec<Run>, &[u8])]) {
    for pc in pieces {
        let src = &reqs[pc.rank].1[pc.src_pos as usize..(pc.src_pos + pc.len) as usize];
        let lo = (pc.off - base) as usize;
        buf[lo..lo + pc.len as usize].copy_from_slice(src);
    }
}

/// Collective read: the finish-closure body. `reqs[r]` is rank `r`'s run
/// list. Returns each rank's data (packed in run order) and the completion
/// time. Faults are handled as in [`write_all`].
pub fn read_all(
    env: &CollEnv,
    file: &PfsFile,
    p: &TwoPhaseParams,
    reqs: &[Vec<Run>],
    ids: &[u64],
) -> MpioResult<(Vec<Vec<u8>>, Time)> {
    let n = env.size();
    let policy = RetryPolicy::default();
    let profile = env.config.profile.clone();
    let events = env.config.events.clone();
    let tracing = events.is_enabled();
    let coll_ids: Vec<u64> = if tracing {
        env.group.iter().map(|_| events.next_id()).collect()
    } else {
        Vec::new()
    };
    let totals: Vec<u64> = reqs.iter().map(|r| runs_total(r)).collect();
    let grand: u64 = totals.iter().sum();
    let mut outs: Vec<Vec<u8>> = totals.iter().map(|&t| vec![0u8; t as usize]).collect();
    if grand == 0 {
        let t = env.sync_phase(Phase::Metadata, env.config.network.barrier(n));
        return Ok((outs, t));
    }
    let gmin = reqs
        .iter()
        .filter_map(|r| r.first().map(|&(o, _)| o))
        .min()
        .unwrap();
    let gmax = reqs
        .iter()
        .filter_map(|r| r.last().map(|&(o, l)| o + l))
        .max()
        .unwrap();
    // Reads keep contiguous domains: the affine layout exists to give each
    // server a single *write* stream; a read window's spanning read is
    // already one large request per domain.
    let naggs = p.naggs(n, grand);
    let domains = file_domains(gmin, gmax, naggs, p.stripe);

    profile.record_twophase(|t| {
        t.collective_reads += 1;
        t.cb_nodes = naggs as u64;
        t.file_domains += domains.len() as u64;
    });

    // Offset lists are exchanged up front (small).
    let meta_bytes = reqs.iter().map(|r| r.len() * 16).max().unwrap_or(0);
    let t0 = env.sync_phase(
        Phase::OffsetExchange,
        env.config.network.alltoallv(meta_bytes, meta_bytes, n),
    );

    // Aggregators read their domains concurrently (round-robin timing, as
    // in `write_all`).
    let windows = gather_windows(reqs, &domains, p.cb_buffer_size);
    let rounds = windows.iter().map(Vec::len).max().unwrap_or(0);
    let mut t_agg = vec![t0; windows.len()];
    let mut split = AccessSplit::new(windows.len());

    // A single round has nothing to overlap: fall back to serial timing
    // (identical for one round), as in `write_all`.
    if !p.pipeline || rounds < 2 {
        // Serial engine: every window is read first, then ONE monolithic
        // alltoallv ships all the data back (local shares stay put).
        let access = (|| -> MpioResult<()> {
            for j in 0..rounds {
                for (a, agg_windows) in windows.iter().enumerate() {
                    let Some(pieces) = agg_windows.get(j) else {
                        continue;
                    };
                    let wt = win_trace(&events, tracing, j, &coll_ids, a);
                    t_agg[a] = read_window(
                        env, file, &policy, t_agg[a], a, pieces, &mut outs, &mut split, wt,
                    )?;
                }
            }
            Ok(())
        })();
        let t_end = t_agg.iter().copied().fold(t0, Time::max);
        if let Err(e) = access {
            record_coll_spans(env, &events, "coll_read", t0, t_end, ids, &coll_ids);
            env.set_all(t_end);
            return Err(e);
        }
        split.attribute(&profile, env, t_end, &t_agg, Phase::Wait);

        let ship = exchange_cost(env, reqs, &totals, &domains);
        if profile.is_enabled() {
            for &w in env.group.iter() {
                profile.record_phase(w, Phase::DataExchange, ship.as_nanos());
            }
        }
        let t_final = t_end + ship;
        record_coll_spans(env, &events, "coll_read", t0, t_final, ids, &coll_ids);
        env.set_all(t_final);
        return Ok((outs, t_final));
    }

    // Pipelined engine: round j ships back to the requesting ranks while
    // round j+1 is still being read from disk.
    let wire = round_wire(&windows, n, rounds);
    profile.record_twophase(|t| {
        t.exchange_wire_bytes += wire.iter().map(|w| w.total).sum::<u64>();
        t.pipelined_rounds += rounds as u64;
    });
    let mut x_done = vec![t0; rounds]; // per-round ship completion
    let mut costs: Vec<Time> = Vec::with_capacity(rounds);
    let access = (|| -> MpioResult<()> {
        for j in 0..rounds {
            let mut dmax = t0;
            for (a, agg_windows) in windows.iter().enumerate() {
                let Some(pieces) = agg_windows.get(j) else {
                    continue;
                };
                // Double buffering: round j refills the buffer round j-2
                // shipped; waiting for that ship to drain is wire time on
                // this aggregator's critical path.
                let wt = win_trace(&events, tracing, j, &coll_ids, a);
                let ready = if j >= 2 {
                    t_agg[a].max(x_done[j - 2])
                } else {
                    t_agg[a]
                };
                split.exchange[a] += (ready - t_agg[a]).as_nanos();
                if tracing && ready > t_agg[a] {
                    events.record(
                        Span::new(
                            agg_world(env, a),
                            layer::MPIO,
                            "exchange_wait",
                            t_agg[a].as_nanos(),
                            ready.as_nanos(),
                        )
                        .with_parent(wt.wid)
                        .with_stage(stage::EXCHANGE)
                        .with_arg("round", j as u64),
                    );
                }
                t_agg[a] = read_window(
                    env, file, &policy, ready, a, pieces, &mut outs, &mut split, wt,
                )?;
                dmax = dmax.max(t_agg[a]);
            }
            // Round j ships once every aggregator's round-j read is done
            // and the previous ship has drained the wire.
            let xs = if j > 0 { dmax.max(x_done[j - 1]) } else { dmax };
            let cost = env.alltoallv_cost(
                wire[j].max_send as usize,
                wire[j].max_recv as usize,
                wire[j].total,
            );
            costs.push(cost);
            x_done[j] = xs + cost;
        }
        Ok(())
    })();
    let t_final = t_agg
        .iter()
        .copied()
        .fold(x_done.last().copied().unwrap_or(t0), Time::max);
    record_coll_spans(env, &events, "coll_read", t0, t_final, ids, &coll_ids);
    if let Err(e) = access {
        env.set_all(t_final);
        return Err(e);
    }
    split.record_overlap(&profile, &costs, t0, t_final, &t_agg);
    // Each rank's trailing tail is spent shipping the last rounds back, so
    // it is data-exchange time, not idle wait.
    split.attribute(&profile, env, t_final, &t_agg, Phase::DataExchange);
    env.set_all(t_final);
    Ok((outs, t_final))
}

/// Time one read window on aggregator `a` starting at `t_start`: one
/// spanning read covers every piece in the window (data sieving at the
/// aggregator), then the pieces are scattered into the requesting ranks'
/// output buffers (memcpy). Returns the aggregator's completion time.
#[allow(clippy::too_many_arguments)]
fn read_window(
    env: &CollEnv,
    file: &PfsFile,
    policy: &RetryPolicy,
    t_start: Time,
    a: usize,
    pieces: &[Piece],
    outs: &mut [Vec<u8>],
    split: &mut AccessSplit,
    wt: WinTrace,
) -> MpioResult<Time> {
    let events = &env.config.events;
    let tracing = wt.wid != 0 && events.is_enabled();
    let w = agg_world(env, a);
    let _ctx = tracing.then(|| TraceCtx::enter(w, wt.wid));
    let mut t_a = t_start;
    split.windows += 1;
    let clo = pieces.iter().map(|pc| pc.off).min().unwrap();
    let cend = pieces.iter().map(|pc| pc.off + pc.len).max().unwrap();
    let mut buf = vec![0u8; (cend - clo) as usize];
    let before = t_a;
    t_a = recover::read_at(file, policy, t_a, clo, &mut buf)?;
    split.read[a] += (t_a - before).as_nanos();
    let piece_bytes: u64 = pieces.iter().map(|pc| pc.len).sum();
    let pack = env.config.cpu.pack(piece_bytes as usize, 1.0);
    if tracing && pack > Time::ZERO {
        events.record(
            Span::new(
                w,
                layer::MPIO,
                "pack",
                t_a.as_nanos(),
                (t_a + pack).as_nanos(),
            )
            .with_parent(wt.wid)
            .with_stage(stage::PACK)
            .with_arg("round", wt.round as u64),
        );
    }
    t_a += pack;
    split.pack[a] += pack.as_nanos();
    for pc in pieces {
        let lo = (pc.off - clo) as usize;
        outs[pc.rank][pc.src_pos as usize..(pc.src_pos + pc.len) as usize]
            .copy_from_slice(&buf[lo..lo + pc.len as usize]);
    }
    split.serial_busy[a] += (t_a - t_start).as_nanos();
    if tracing {
        events.record(
            Span::new(w, layer::MPIO, "window", t_start.as_nanos(), t_a.as_nanos())
                .with_id(wt.wid)
                .with_parent(wt.parent)
                .with_arg("round", wt.round as u64)
                .with_arg("agg", a as u64)
                .with_arg("bytes", piece_bytes),
        );
    }
    Ok(t_a)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parcel_roundtrip() {
        let runs: Vec<Run> = vec![(5, 10), (100, 3)];
        let data = vec![1u8; 13];
        let parcel = encode_write_req(&runs, &data, 42);
        let (r2, d2, id2) = decode_req(&parcel).unwrap();
        assert_eq!(r2, runs);
        assert_eq!(d2, &data[..]);
        assert_eq!(id2, 42, "trace id survives the wire");

        let parcel = encode_read_req(&runs, 0);
        let (r3, d3, id3) = decode_req(&parcel).unwrap();
        assert_eq!(r3, runs);
        assert!(d3.is_empty());
        assert_eq!(id3, 0);
    }

    #[test]
    fn short_parcel_is_an_error_not_a_panic() {
        assert!(decode_req(&[]).is_err());
        assert!(decode_req(&[0u8; 7]).is_err());
        assert!(decode_req(&[0u8; 15]).is_err());
    }

    #[test]
    fn truncated_run_list_is_an_error() {
        let parcel = encode_write_req(&[(5, 10), (100, 3)], &[1u8; 13], 1);
        // Cut into the middle of the run table.
        assert!(decode_req(&parcel[..28]).is_err());
    }

    #[test]
    fn absurd_run_count_is_an_error() {
        // Header claims u64::MAX runs: length math must not overflow.
        let mut parcel = 0u64.to_ne_bytes().to_vec();
        parcel.extend_from_slice(&u64::MAX.to_ne_bytes());
        parcel.extend_from_slice(&[0u8; 64]);
        assert!(decode_req(&parcel).is_err());
    }

    #[test]
    fn zero_runs_with_trailing_data_decodes() {
        let parcel = encode_write_req(&[], &[], 0);
        let (runs, data, _) = decode_req(&parcel).unwrap();
        assert!(runs.is_empty());
        assert!(data.is_empty());
    }

    #[test]
    fn domains_cover_exactly_and_align() {
        let d = file_domains(100, 10_100, 4, 1000);
        assert_eq!(d.first().unwrap().0, 100);
        assert_eq!(d.last().unwrap().1, 10_100);
        for w in d.windows(2) {
            assert_eq!(w[0].1, w[1].0);
            // Interior boundaries are *absolute* stripe multiples.
            assert_eq!(w[0].1 % 1000, 0);
        }
        // Alignment of the ragged first domain may cost one extra domain.
        assert!(d.len() <= 5, "{d:?}");
    }

    /// Every domain must be non-empty (`hi > lo`) and together they must
    /// tile `[gmin, gmax)` exactly, with interior boundaries on absolute
    /// stripe multiples.
    fn check_domains(gmin: u64, gmax: u64, naggs: usize, stripe: u64) -> Vec<(u64, u64)> {
        let d = file_domains(gmin, gmax, naggs, stripe);
        if gmax == gmin {
            assert!(d.is_empty());
            return d;
        }
        assert_eq!(d.first().unwrap().0, gmin, "{d:?}");
        assert_eq!(d.last().unwrap().1, gmax, "{d:?}");
        for &(lo, hi) in &d {
            assert!(hi > lo, "empty domain in {d:?}");
        }
        for w in d.windows(2) {
            assert_eq!(w[0].1, w[1].0, "gap/overlap in {d:?}");
            assert_eq!(w[0].1 % stripe, 0, "unaligned boundary in {d:?}");
        }
        d
    }

    #[test]
    fn domains_more_aggregators_than_stripes() {
        // Span of 3 stripes split over 8 aggregators: some aggregators get
        // nothing, but no domain may be empty.
        let d = check_domains(0, 3000, 8, 1000);
        assert!(d.len() <= 3, "{d:?}");
        // Span smaller than one stripe.
        let d = check_domains(10, 250, 8, 1000);
        assert_eq!(d, vec![(10, 250)]);
    }

    #[test]
    fn domains_single_byte_span() {
        let d = check_domains(999, 1000, 4, 1000);
        assert_eq!(d, vec![(999, 1000)]);
        // A single byte exactly at a stripe boundary.
        let d = check_domains(1000, 1001, 4, 1000);
        assert_eq!(d, vec![(1000, 1001)]);
    }

    #[test]
    fn domains_aligned_edges() {
        // gmin and gmax both exactly on stripe boundaries.
        let d = check_domains(2000, 10_000, 4, 1000);
        assert_eq!(d.len(), 4, "{d:?}");
        for &(lo, hi) in &d {
            assert_eq!(lo % 1000, 0);
            assert_eq!(hi % 1000, 0);
        }
    }

    #[test]
    fn domains_empty_span_and_stripe_one() {
        assert!(check_domains(42, 42, 4, 1000).is_empty());
        // stripe=1 degenerates to an even split with no alignment slack.
        let d = check_domains(0, 10, 4, 1);
        assert_eq!(d.len(), 4, "{d:?}");
        // Ragged: span not divisible by naggs, still exact.
        check_domains(3, 10, 4, 1);
        check_domains(0, 1, 64, 1);
    }

    #[test]
    fn aligned_request_gets_aligned_domains() {
        let d = file_domains(0, 8000, 4, 1000);
        assert_eq!(d, vec![(0, 2000), (2000, 4000), (4000, 6000), (6000, 8000)]);
    }

    #[test]
    fn empty_span_has_no_domains() {
        assert!(file_domains(5, 5, 4, 64).is_empty());
    }

    #[test]
    fn single_aggregator_gets_everything() {
        let d = file_domains(0, 1000, 1, 64);
        assert_eq!(d, vec![(0, 1000)]);
    }

    #[test]
    fn bytes_per_domain_splits_runs() {
        let runs = vec![vec![(0u64, 100u64)], vec![(50, 100)]];
        let domains = vec![(0u64, 100u64), (100, 200)];
        assert_eq!(bytes_per_domain(&runs, &domains), vec![150, 50]);
    }

    #[test]
    fn merge_coverage_detects_holes() {
        assert_eq!(merge_coverage(vec![(0, 4), (4, 4)]), vec![(0, 8)]);
        assert_eq!(merge_coverage(vec![(10, 2), (0, 4)]), vec![(0, 4), (10, 2)]);
        // Overlaps merge too.
        assert_eq!(merge_coverage(vec![(0, 6), (4, 4)]), vec![(0, 8)]);
    }

    #[test]
    fn take_pieces_tracks_source_positions() {
        let runs: Vec<Run> = vec![(0, 10), (20, 10)];
        let mut cur = Cursor::default();
        let mut pieces = Vec::new();
        take_pieces(&runs, &mut cur, 5, 0, &mut pieces);
        assert_eq!(pieces.len(), 1);
        assert_eq!((pieces[0].off, pieces[0].len, pieces[0].src_pos), (0, 5, 0));
        pieces.clear();
        take_pieces(&runs, &mut cur, 25, 0, &mut pieces);
        // Remainder of run 0 (src 5..10) and start of run 1 (src 10..15).
        assert_eq!(pieces.len(), 2);
        assert_eq!((pieces[0].off, pieces[0].len, pieces[0].src_pos), (5, 5, 5));
        assert_eq!(
            (pieces[1].off, pieces[1].len, pieces[1].src_pos),
            (20, 5, 10)
        );
        pieces.clear();
        take_pieces(&runs, &mut cur, u64::MAX, 0, &mut pieces);
        assert_eq!(
            (pieces[0].off, pieces[0].len, pieces[0].src_pos),
            (25, 5, 15)
        );
    }
}
