//! The phase and operation taxonomies time is attributed to.

/// Where a slice of virtual time went.
///
/// Phases partition the virtual timeline of each rank: every clock advance
/// in the stack is charged to exactly one phase, chosen either by the
/// instrumented call site (collective closures account their own deltas) or
/// by the innermost-ambient [`crate::PhaseScope`] for local work that flows
/// through generic primitives (`Comm::advance`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Phase {
    /// Header/metadata synchronization: metadata collectives (barrier,
    /// bcast, allreduce, ...), namespace operations, and header I/O.
    Metadata = 0,
    /// Collective entry skew: time a rank spends waiting for the slowest
    /// participant before a collective's own cost starts.
    Wait = 1,
    /// Two-phase request/offset-list exchange.
    OffsetExchange = 2,
    /// Two-phase data shipping between ranks and aggregators.
    DataExchange = 3,
    /// Aggregator collective-buffer assembly (memcpy in the window loop).
    CollBufPack = 4,
    /// Disk write time: aggregator window writes and independent writes
    /// (including the write half of read-modify-write).
    DiskWrite = 5,
    /// Disk read time: sieve reads, read-modify-write reads, aggregator
    /// window reads.
    DiskRead = 6,
    /// Client-side CPU work: packing, type conversion, staging memcpy.
    Compute = 7,
    /// Point-to-point messaging.
    P2p = 8,
    /// Client page-cache work: hit/miss bookkeeping and the memcpy into
    /// or out of cached pages (the disk halves of misses and flushes are
    /// charged to [`Phase::DiskRead`]/[`Phase::DiskWrite`]).
    Cache = 9,
}

impl Phase {
    /// Number of phases (array sizing).
    pub const COUNT: usize = 10;

    /// All phases, index order.
    pub const ALL: [Phase; Phase::COUNT] = [
        Phase::Metadata,
        Phase::Wait,
        Phase::OffsetExchange,
        Phase::DataExchange,
        Phase::CollBufPack,
        Phase::DiskWrite,
        Phase::DiskRead,
        Phase::Compute,
        Phase::P2p,
        Phase::Cache,
    ];

    /// Stable snake_case name used as the JSON key.
    pub const fn name(self) -> &'static str {
        match self {
            Phase::Metadata => "metadata",
            Phase::Wait => "wait",
            Phase::OffsetExchange => "exchange_offsets",
            Phase::DataExchange => "exchange_data",
            Phase::CollBufPack => "collbuf_pack",
            Phase::DiskWrite => "disk_write",
            Phase::DiskRead => "disk_read",
            Phase::Compute => "compute",
            Phase::P2p => "p2p",
            Phase::Cache => "cache",
        }
    }

    /// Array index of this phase.
    #[inline]
    pub const fn index(self) -> usize {
        self as usize
    }
}

/// Kind of a predefined MPI collective, for the per-op table.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum CollKind {
    Barrier = 0,
    Bcast = 1,
    Allgather = 2,
    Alltoallv = 3,
    Allreduce = 4,
    Reduce = 5,
    Scatter = 6,
    Gather = 7,
}

impl CollKind {
    /// Number of collective kinds (array sizing).
    pub const COUNT: usize = 8;

    /// All kinds, index order.
    pub const ALL: [CollKind; CollKind::COUNT] = [
        CollKind::Barrier,
        CollKind::Bcast,
        CollKind::Allgather,
        CollKind::Alltoallv,
        CollKind::Allreduce,
        CollKind::Reduce,
        CollKind::Scatter,
        CollKind::Gather,
    ];

    /// Stable name used as the JSON key.
    pub const fn name(self) -> &'static str {
        match self {
            CollKind::Barrier => "barrier",
            CollKind::Bcast => "bcast",
            CollKind::Allgather => "allgather",
            CollKind::Alltoallv => "alltoallv",
            CollKind::Allreduce => "allreduce",
            CollKind::Reduce => "reduce",
            CollKind::Scatter => "scatter",
            CollKind::Gather => "gather",
        }
    }

    /// Array index of this kind.
    #[inline]
    pub const fn index(self) -> usize {
        self as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_indices_match_all_order() {
        for (i, p) in Phase::ALL.iter().enumerate() {
            assert_eq!(p.index(), i);
        }
        for (i, k) in CollKind::ALL.iter().enumerate() {
            assert_eq!(k.index(), i);
        }
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = Phase::ALL.iter().map(|p| p.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Phase::COUNT);
    }
}
