//! A dependency-free JSON value type and serializer.
//!
//! The container has no serde; reports are small and write-only, so a tiny
//! hand-rolled tree with a pretty printer is all the layer needs.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Insertion-ordered object (keys stay in the order they were set).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Empty object.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Set `key` on an object (replaces an existing key in place). Panics if
    /// `self` is not an object — report-building is all static code, so a
    /// misuse is a programming error.
    pub fn set(&mut self, key: &str, value: impl Into<Json>) -> &mut Json {
        match self {
            Json::Obj(entries) => {
                let value = value.into();
                if let Some(e) = entries.iter_mut().find(|(k, _)| k == key) {
                    e.1 = value;
                } else {
                    entries.push((key.to_string(), value));
                }
                self
            }
            _ => panic!("Json::set on non-object"),
        }
    }

    /// Builder-style [`set`](Json::set).
    pub fn with(mut self, key: &str, value: impl Into<Json>) -> Json {
        self.set(key, value);
        self
    }

    /// Look up `key` on an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Serialize with two-space indentation and a trailing newline.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(out, *n),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline(out, indent + 1);
                    item.write(out, indent + 1);
                }
                newline(out, indent);
                out.push(']');
            }
            Json::Obj(entries) => {
                if entries.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline(out, indent + 1);
                    write_str(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                newline(out, indent);
                out.push('}');
            }
        }
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::Num(v as f64)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::Num(v as f64)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Json {
        Json::Arr(v.into_iter().map(Into::into).collect())
    }
}

fn newline(out: &mut String, indent: usize) {
    out.push('\n');
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_num(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 1e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{}", n);
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_basic_shapes() {
        let j = Json::obj()
            .with("a", Json::from(1u64))
            .with("b", Json::from("x\"y"))
            .with("c", Json::from(vec![1u64, 2, 3]))
            .with("d", Json::obj());
        let s = j.pretty();
        assert!(s.contains("\"a\": 1"));
        assert!(s.contains("\"x\\\"y\""));
        assert!(s.contains("\"d\": {}"));
        assert!(s.ends_with('\n'));
    }

    #[test]
    fn integers_print_without_fraction() {
        let mut s = String::new();
        write_num(&mut s, 12345.0);
        assert_eq!(s, "12345");
        let mut s = String::new();
        write_num(&mut s, 0.5);
        assert_eq!(s, "0.5");
    }

    #[test]
    fn set_replaces_existing_key() {
        let mut j = Json::obj().with("k", Json::from(1u64));
        j.set("k", Json::from(2u64));
        assert_eq!(j.get("k").and_then(Json::as_f64), Some(2.0));
    }
}
