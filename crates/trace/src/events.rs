//! Per-request event tracing: sim-clock-stamped spans from `iput` to the
//! server disk, Chrome `trace_event` export, and a critical-path analyzer.
//!
//! Where [`crate::Profile`] answers "where did the time go *in aggregate*",
//! this module answers "which request, round, or server stalled *this*
//! `wait_all`". Every layer of one simulation records [`Span`]s into the
//! shared [`TraceLog`] riding inside `hpc_sim::SimConfig`:
//!
//! * **core** issues a trace id per `AccessReq` and wraps each nonblocking
//!   flush in a per-rank flush span;
//! * **mpio** spans the collective window loop (exchange / pack / disk
//!   sub-spans per pipelined round), the page cache (miss fills, readahead,
//!   write-behind), and every retry backoff of the recovery layer;
//! * **pfs** spans each request's passage through the dual-resource
//!   `ServiceEngine`: queue entry → NIC handoff → durable on disk;
//! * **mpi** tiles every rank's virtual clock with phase spans so the
//!   timeline has no holes.
//!
//! Spans are linked across layers by trace ids: a child span stores its
//! parent's id, and the ambient [`TraceCtx`] carries the current id down
//! through layers (pfs and the recovery loops never see core's request
//! objects). The recorder is a bounded per-rank ring — when full, the
//! oldest spans are overwritten and counted as dropped — and is off by
//! default: with tracing disabled every call site pays one relaxed atomic
//! load. Recording never touches a virtual clock, so enabling tracing
//! cannot perturb simulated time.
//!
//! [`TraceSnapshot::to_chrome`] serializes the Chrome `trace_event` JSON
//! (ranks as processes, layers as threads, ids linked by flow events;
//! viewable in Perfetto or `chrome://tracing`), and [`critical_path`]
//! walks the span DAG of each collective window to name the stage — NIC,
//! disk, exchange, pack, queue stall, retry backoff — that bounds it.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use crate::json::Json;

/// Default per-rank ring capacity (spans). At ~100 bytes a span this
/// bounds a runaway rank at a few megabytes while holding every span of
/// the benchmark workloads with room to spare.
pub const DEFAULT_RING_CAPACITY: usize = 65_536;

/// Layer names — the Chrome "threads" within each rank's "process".
pub mod layer {
    /// Phase tiling of the rank's clock (every attributed advance).
    pub const PHASE: &str = "phase";
    /// Core access engine: requests, nonblocking flushes.
    pub const CORE: &str = "core";
    /// MPI-IO: collective windows, rounds, independent I/O.
    pub const MPIO: &str = "mpio";
    /// Client page cache.
    pub const CACHE: &str = "cache";
    /// Fault-recovery retry loop.
    pub const RETRY: &str = "retry";
    /// PFS `ServiceEngine` stages.
    pub const PFS: &str = "pfs";
}

/// Critical-path stage keys. A span carrying one of these contributes its
/// duration to that stage of its window's attribution.
pub mod stage {
    /// Waiting for the round's alltoallv exchange to deliver data.
    pub const EXCHANGE: &str = "exchange";
    /// Collective-buffer assembly (memcpy into the window).
    pub const PACK: &str = "pack";
    /// Disk stage of the server engine / aggregator disk access.
    pub const DISK: &str = "disk";
    /// NIC transfer stage of the server engine.
    pub const NIC: &str = "nic";
    /// Stall at the bounded server admission queue.
    pub const QUEUE: &str = "queue";
    /// Exponential backoff between fault-recovery attempts.
    pub const RETRY: &str = "retry";
    /// Page-cache work (fills, write-behind, readahead).
    pub const CACHE: &str = "cache";

    /// All stages, report order.
    pub const ALL: [&str; 7] = [DISK, NIC, EXCHANGE, PACK, QUEUE, RETRY, CACHE];
}

/// One closed interval of simulated time on one rank.
#[derive(Clone, Debug)]
pub struct Span {
    /// World rank whose timeline this span lives on.
    pub rank: usize,
    /// Layer (Chrome thread) — one of the [`layer`] constants.
    pub layer: &'static str,
    /// Event name shown in the viewer.
    pub name: &'static str,
    /// Begin, simulated nanoseconds.
    pub begin: u64,
    /// End, simulated nanoseconds (`end >= begin`; recording clamps).
    pub end: u64,
    /// This span's trace id (0 = anonymous).
    pub id: u64,
    /// Trace id of the parent span (0 = root). Links layers: request →
    /// flush → window → server stage.
    pub parent: u64,
    /// Critical-path stage this span contributes to, if any.
    pub stage: Option<&'static str>,
    /// Small numeric payload (round index, server, bytes, ...).
    pub args: Vec<(&'static str, u64)>,
}

impl Span {
    /// Anonymous root span with no stage or args.
    pub fn new(rank: usize, layer: &'static str, name: &'static str, begin: u64, end: u64) -> Span {
        Span {
            rank,
            layer,
            name,
            begin,
            end,
            id: 0,
            parent: 0,
            stage: None,
            args: Vec::new(),
        }
    }

    /// Builder-style trace id.
    pub fn with_id(mut self, id: u64) -> Span {
        self.id = id;
        self
    }

    /// Builder-style parent id.
    pub fn with_parent(mut self, parent: u64) -> Span {
        self.parent = parent;
        self
    }

    /// Builder-style critical-path stage.
    pub fn with_stage(mut self, stage: &'static str) -> Span {
        self.stage = Some(stage);
        self
    }

    /// Builder-style argument.
    pub fn with_arg(mut self, key: &'static str, value: u64) -> Span {
        self.args.push((key, value));
        self
    }

    /// Duration in nanoseconds.
    pub fn nanos(&self) -> u64 {
        self.end.saturating_sub(self.begin)
    }

    /// First value of the named argument, if present.
    pub fn arg(&self, key: &str) -> Option<u64> {
        self.args.iter().find(|(k, _)| *k == key).map(|(_, v)| *v)
    }
}

/// Bounded per-rank span storage: a ring that overwrites the oldest span
/// once `capacity` is reached (keeping the end of the run, which is what
/// the critical-path analyzer needs) and counts what it dropped.
#[derive(Default)]
struct RankRing {
    spans: Vec<Span>,
    /// Index of the logically first span once the ring has wrapped.
    start: usize,
    dropped: u64,
}

impl RankRing {
    fn push(&mut self, span: Span, capacity: usize) {
        if self.spans.len() < capacity {
            self.spans.push(span);
        } else {
            self.spans[self.start] = span;
            self.start = (self.start + 1) % self.spans.len();
            self.dropped += 1;
        }
    }

    fn in_order(&self) -> Vec<Span> {
        let mut out = Vec::with_capacity(self.spans.len());
        out.extend_from_slice(&self.spans[self.start..]);
        out.extend_from_slice(&self.spans[..self.start]);
        out
    }
}

struct LogInner {
    enabled: AtomicBool,
    next_id: AtomicU64,
    capacity: usize,
    rings: Mutex<Vec<RankRing>>,
}

/// Lock a trace mutex, recovering from poisoning: a panicking rank thread
/// can die mid-record, but every update leaves the rings structurally
/// valid, so surviving ranks keep tracing instead of cascading the panic.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The shared span recorder. Cloning is cheap (one `Arc`); every layer of
/// one simulation sees the same instance because it rides inside
/// `hpc_sim::SimConfig`. Disabled by default: recording methods are a
/// single relaxed atomic load followed by an early return, and call sites
/// guard span construction behind [`TraceLog::is_enabled`].
#[derive(Clone)]
pub struct TraceLog {
    inner: Arc<LogInner>,
}

impl Default for TraceLog {
    fn default() -> TraceLog {
        TraceLog::new()
    }
}

impl std::fmt::Debug for TraceLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceLog")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl TraceLog {
    /// New disabled log with the default ring capacity.
    pub fn new() -> TraceLog {
        TraceLog::with_capacity(DEFAULT_RING_CAPACITY)
    }

    /// New disabled log holding at most `capacity` spans per rank.
    pub fn with_capacity(capacity: usize) -> TraceLog {
        TraceLog {
            inner: Arc::new(LogInner {
                enabled: AtomicBool::new(false),
                next_id: AtomicU64::new(0),
                capacity: capacity.max(1),
                rings: Mutex::new(Vec::new()),
            }),
        }
    }

    /// Turn recording on or off.
    pub fn set_enabled(&self, on: bool) {
        self.inner.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether recording is on. This is the fast-path guard; call sites
    /// check it before building a [`Span`].
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed)
    }

    /// Whether two logs share the same storage.
    pub fn same_as(&self, other: &TraceLog) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    /// Issue a fresh nonzero trace id (0 means "no id" everywhere).
    pub fn next_id(&self) -> u64 {
        self.inner.next_id.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Record one span on its rank's ring. No-op while disabled. Never
    /// touches a virtual clock, so tracing cannot perturb simulated time.
    pub fn record(&self, mut span: Span) {
        if !self.is_enabled() {
            return;
        }
        span.end = span.end.max(span.begin);
        let mut rings = lock(&self.inner.rings);
        let rank = span.rank;
        if rings.len() <= rank {
            rings.resize_with(rank + 1, RankRing::default);
        }
        rings[rank].push(span, self.inner.capacity);
    }

    /// Copy out every recorded span, ring order per rank.
    pub fn snapshot(&self) -> TraceSnapshot {
        let rings = lock(&self.inner.rings);
        let mut spans = Vec::new();
        let mut dropped = 0;
        for ring in rings.iter() {
            spans.extend(ring.in_order());
            dropped += ring.dropped;
        }
        TraceSnapshot {
            nranks: rings.len(),
            spans,
            dropped,
        }
    }

    /// Drop every recorded span, keeping the enabled flag and the id
    /// counter (ids stay unique across resets).
    pub fn reset(&self) {
        lock(&self.inner.rings).clear();
    }
}

thread_local! {
    static CTX: Cell<Option<(usize, u64)>> = const { Cell::new(None) };
}

/// Ambient `(rank, trace id)` for the current thread, innermost-wins.
///
/// The MPI runtime is ranks-as-threads, but a collective's finish closure
/// runs on *one* thread for all ranks — so layers that cross the
/// rendezvous (twophase) re-enter the context per aggregator, and layers
/// below mpio (pfs servers, the recovery loop, the page cache) read it
/// instead of threading ids through every signature.
pub struct TraceCtx {
    prev: Option<(usize, u64)>,
}

impl TraceCtx {
    /// Install `(rank, id)` as the ambient context until drop.
    pub fn enter(rank: usize, id: u64) -> TraceCtx {
        let prev = CTX.with(|c| c.replace(Some((rank, id))));
        TraceCtx { prev }
    }

    /// The ambient `(rank, id)`, if a context is installed.
    pub fn current() -> Option<(usize, u64)> {
        CTX.with(|c| c.get())
    }

    /// The ambient trace id, or 0 when no context is installed.
    pub fn current_id() -> u64 {
        Self::current().map(|(_, id)| id).unwrap_or(0)
    }
}

impl Drop for TraceCtx {
    fn drop(&mut self) {
        let prev = self.prev;
        CTX.with(|c| c.set(prev));
    }
}

/// A point-in-time copy of every span in a [`TraceLog`].
#[derive(Clone, Debug)]
pub struct TraceSnapshot {
    /// Number of rank rings that recorded at least one span.
    pub nranks: usize,
    /// All spans, grouped by rank, ring order within a rank.
    pub spans: Vec<Span>,
    /// Spans overwritten by full rings.
    pub dropped: u64,
}

impl TraceSnapshot {
    /// Spans on `rank`'s timeline.
    pub fn rank_spans(&self, rank: usize) -> impl Iterator<Item = &Span> {
        self.spans.iter().filter(move |s| s.rank == rank)
    }

    /// Fraction of `[0, total_nanos]` on `rank`'s timeline covered by the
    /// union of its spans. The phase tiling alone should put this at ~1.0;
    /// a hole means some layer advanced a clock without attribution.
    pub fn rank_coverage(&self, rank: usize, total_nanos: u64) -> f64 {
        if total_nanos == 0 {
            return 1.0;
        }
        let mut iv: Vec<(u64, u64)> = self
            .rank_spans(rank)
            .map(|s| (s.begin, s.end.min(total_nanos)))
            .filter(|&(b, e)| e > b)
            .collect();
        iv.sort_unstable();
        let mut covered = 0u64;
        let mut cur: Option<(u64, u64)> = None;
        for (b, e) in iv {
            match cur {
                None => cur = Some((b, e)),
                Some((cb, ce)) if b <= ce => cur = Some((cb, ce.max(e))),
                Some((cb, ce)) => {
                    covered += ce - cb;
                    cur = Some((b, e));
                }
            }
        }
        if let Some((cb, ce)) = cur {
            covered += ce - cb;
        }
        covered as f64 / total_nanos as f64
    }

    /// Serialize as Chrome `trace_event` JSON: one "process" per rank, one
    /// "thread" per layer (overlapping spans within a layer fan out into
    /// numbered lanes so every track stays non-overlapping), complete
    /// (`"ph": "X"`) events in microseconds, and flow events (`"s"`/`"f"`)
    /// linking each span to its parent across layers. Load the output in
    /// Perfetto (ui.perfetto.dev) or `chrome://tracing`.
    pub fn to_chrome(&self) -> Json {
        let mut events = Vec::new();
        // Group spans per rank, keyed into per-layer lanes.
        let mut ranks: Vec<usize> = self.spans.iter().map(|s| s.rank).collect();
        ranks.sort_unstable();
        ranks.dedup();
        // Index of the first span (arbitrary) carrying each nonzero id,
        // for flow-event sources.
        let by_id: std::collections::HashMap<u64, usize> = self
            .spans
            .iter()
            .enumerate()
            .filter(|(_, s)| s.id != 0)
            .map(|(i, s)| (s.id, i))
            .collect();
        // tid assigned to each span, for flow endpoints.
        let mut span_tid: std::collections::HashMap<usize, u64> = std::collections::HashMap::new();
        for &rank in &ranks {
            events.push(meta_event("process_name", rank, 0, format!("rank {rank}")));
            // Stable layer order, then lanes within a layer.
            let mut order: Vec<usize> = (0..self.spans.len())
                .filter(|&i| self.spans[i].rank == rank)
                .collect();
            order.sort_by_key(|&i| (layer_index(self.spans[i].layer), self.spans[i].begin));
            // (layer, lane) -> (tid, last end). Greedy lane assignment
            // keeps each Chrome thread's slices disjoint.
            let mut lanes: Vec<(&'static str, u64, u64)> = Vec::new(); // (layer, tid, last_end)
            let mut next_tid = 1u64;
            for i in order {
                let s = &self.spans[i];
                let mut tid = None;
                for lane in lanes.iter_mut() {
                    if lane.0 == s.layer && lane.2 <= s.begin {
                        lane.2 = s.end;
                        tid = Some(lane.1);
                        break;
                    }
                }
                let tid = tid.unwrap_or_else(|| {
                    let t = next_tid;
                    next_tid += 1;
                    let lane_no = lanes.iter().filter(|l| l.0 == s.layer).count();
                    let name = if lane_no == 0 {
                        s.layer.to_string()
                    } else {
                        format!("{}#{}", s.layer, lane_no + 1)
                    };
                    events.push(meta_event("thread_name", rank, t, name));
                    lanes.push((s.layer, t, s.end));
                    t
                });
                span_tid.insert(i, tid);
                events.push(complete_event(s, tid));
            }
        }
        // Flow events: parent begin -> child begin, id = parent trace id.
        let mut flow_started: std::collections::HashSet<u64> = std::collections::HashSet::new();
        for (i, s) in self.spans.iter().enumerate() {
            if s.parent == 0 {
                continue;
            }
            let Some(&pi) = by_id.get(&s.parent) else {
                continue;
            };
            let p = &self.spans[pi];
            if flow_started.insert(s.parent) {
                events.push(flow_event("s", s.parent, p.rank, span_tid[&pi], p.begin));
            }
            events.push(flow_event("f", s.parent, s.rank, span_tid[&i], s.begin));
        }
        Json::obj()
            .with("traceEvents", Json::Arr(events))
            .with("displayTimeUnit", "ns")
            .with(
                "otherData",
                Json::obj()
                    .with("dropped_spans", self.dropped)
                    .with("ranks", self.nranks as u64),
            )
    }
}

/// Stable display order for layers (top to bottom in the viewer).
fn layer_index(layer: &str) -> usize {
    match layer {
        l if l == layer::PHASE => 0,
        l if l == layer::CORE => 1,
        l if l == layer::MPIO => 2,
        l if l == layer::CACHE => 3,
        l if l == layer::RETRY => 4,
        l if l == layer::PFS => 5,
        _ => 6,
    }
}

fn meta_event(name: &str, pid: usize, tid: u64, value: String) -> Json {
    Json::obj()
        .with("name", name)
        .with("ph", "M")
        .with("pid", pid as u64)
        .with("tid", tid)
        .with("args", Json::obj().with("name", value))
}

fn complete_event(s: &Span, tid: u64) -> Json {
    let mut args = Json::obj();
    if s.id != 0 {
        args.set("trace_id", s.id);
    }
    if s.parent != 0 {
        args.set("parent", s.parent);
    }
    if let Some(stage) = s.stage {
        args.set("stage", stage);
    }
    for (k, v) in &s.args {
        args.set(k, *v);
    }
    Json::obj()
        .with("name", s.name)
        .with("cat", s.layer)
        .with("ph", "X")
        .with("pid", s.rank as u64)
        .with("tid", tid)
        .with("ts", s.begin as f64 / 1000.0)
        .with("dur", s.nanos() as f64 / 1000.0)
        .with("args", args)
}

fn flow_event(ph: &str, id: u64, pid: usize, tid: u64, ts: u64) -> Json {
    let mut e = Json::obj()
        .with("name", "trace")
        .with("cat", "flow")
        .with("ph", ph)
        .with("id", id)
        .with("pid", pid as u64)
        .with("tid", tid)
        .with("ts", ts as f64 / 1000.0);
    if ph == "f" {
        e.set("bp", "e");
    }
    e
}

/// Per-window critical-path attribution: the stage sums of every span
/// hanging off one collective-buffer window, and the stage that bounds it.
#[derive(Clone, Debug)]
pub struct WindowAttribution {
    /// The window's trace id.
    pub window: u64,
    /// Aggregator world rank that owned the window.
    pub rank: usize,
    /// Round index within the collective (0 for serial windows).
    pub round: u64,
    /// Window span begin/end, simulated nanoseconds.
    pub begin: u64,
    pub end: u64,
    /// Summed nanoseconds per stage key ([`stage::ALL`] order, zeros kept).
    pub stage_nanos: Vec<(&'static str, u64)>,
    /// The stage with the largest sum — what bounds this window.
    pub bound_by: &'static str,
    /// Lead of the bounding stage over the runner-up.
    pub margin_nanos: u64,
}

/// Whole-run critical-path report.
#[derive(Clone, Debug)]
pub struct CriticalPath {
    pub windows: Vec<WindowAttribution>,
    /// Stage sums across all windows.
    pub totals: Vec<(&'static str, u64)>,
    /// Windows bounded per stage.
    pub bound_counts: Vec<(&'static str, u64)>,
    /// The stage bounding the most windows (ties break toward the larger
    /// total), or `None` when no windows were traced.
    pub dominant: Option<&'static str>,
}

/// Walk the span DAG and attribute each collective window to the stage
/// that bounds it. A window is a span named `"window"`; its descendants
/// (spans reachable through `parent` links — direct children like the
/// exchange wait and the pack memcpy, and grandchildren like the server
/// NIC / disk / queue stages nested in their queue-residency containers)
/// carry [`stage`] keys. Stages overlap in wall time (that is the point
/// of the pipeline), so sums are *occupancy*, and the argmax names the
/// resource that bounds the window end to end.
pub fn critical_path(snap: &TraceSnapshot) -> CriticalPath {
    let mut children: std::collections::HashMap<u64, Vec<&Span>> = std::collections::HashMap::new();
    for s in &snap.spans {
        if s.parent != 0 {
            children.entry(s.parent).or_default().push(s);
        }
    }
    let mut windows = Vec::new();
    for root in snap
        .spans
        .iter()
        .filter(|s| s.name == "window" && s.id != 0)
    {
        let mut sums: Vec<(&'static str, u64)> = stage::ALL.iter().map(|&k| (k, 0)).collect();
        let mut stack = vec![root.id];
        let mut visited = std::collections::HashSet::new();
        visited.insert(root.id);
        while let Some(id) = stack.pop() {
            for child in children.get(&id).into_iter().flatten() {
                if let Some(st) = child.stage {
                    if let Some(e) = sums.iter_mut().find(|(k, _)| *k == st) {
                        e.1 += child.nanos();
                    }
                }
                if child.id != 0 && visited.insert(child.id) {
                    stack.push(child.id);
                }
            }
        }
        let (top_i, &(bound_by, top)) = sums
            .iter()
            .enumerate()
            .max_by_key(|(_, (_, ns))| *ns)
            .expect("stage::ALL is nonempty");
        let runner_up = sums
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != top_i)
            .map(|(_, (_, ns))| *ns)
            .max()
            .unwrap_or(0);
        windows.push(WindowAttribution {
            window: root.id,
            rank: root.rank,
            round: root.arg("round").unwrap_or(0),
            begin: root.begin,
            end: root.end,
            stage_nanos: sums,
            bound_by,
            margin_nanos: top - runner_up,
        });
    }
    windows.sort_by_key(|w| (w.begin, w.window));
    let mut totals: Vec<(&'static str, u64)> = stage::ALL.iter().map(|&k| (k, 0)).collect();
    let mut bound_counts: Vec<(&'static str, u64)> = stage::ALL.iter().map(|&k| (k, 0)).collect();
    for w in &windows {
        for (k, ns) in &w.stage_nanos {
            if let Some(e) = totals.iter_mut().find(|(tk, _)| tk == k) {
                e.1 += ns;
            }
        }
        if let Some(e) = bound_counts.iter_mut().find(|(k, _)| *k == w.bound_by) {
            e.1 += 1;
        }
    }
    let dominant = bound_counts
        .iter()
        .filter(|(_, n)| *n > 0)
        .max_by_key(|(k, n)| {
            let total = totals.iter().find(|(tk, _)| tk == k).map_or(0, |(_, t)| *t);
            (*n, total)
        })
        .map(|(k, _)| *k);
    CriticalPath {
        windows,
        totals,
        bound_counts,
        dominant,
    }
}

impl CriticalPath {
    /// Serialize the report.
    pub fn to_json(&self) -> Json {
        let mut windows = Vec::new();
        for w in &self.windows {
            let mut stages = Json::obj();
            for (k, ns) in &w.stage_nanos {
                stages.set(k, *ns);
            }
            windows.push(
                Json::obj()
                    .with("window", w.window)
                    .with("rank", w.rank as u64)
                    .with("round", w.round)
                    .with("begin_ns", w.begin)
                    .with("end_ns", w.end)
                    .with("stage_nanos", stages)
                    .with("bound_by", w.bound_by)
                    .with("margin_ns", w.margin_nanos),
            );
        }
        let mut totals = Json::obj();
        for (k, ns) in &self.totals {
            totals.set(k, *ns);
        }
        let mut counts = Json::obj();
        for (k, n) in &self.bound_counts {
            counts.set(k, *n);
        }
        Json::obj()
            .with("windows", Json::Arr(windows))
            .with("stage_totals_ns", totals)
            .with("bound_counts", counts)
            .with(
                "dominant_stage",
                self.dominant.map(Json::from).unwrap_or(Json::Null),
            )
    }

    /// Human-readable report for benchmark stdout.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "critical path: {} windows", self.windows.len());
        for w in &self.windows {
            let stages: Vec<String> = w
                .stage_nanos
                .iter()
                .filter(|(_, ns)| *ns > 0)
                .map(|(k, ns)| format!("{k}={:.3}ms", *ns as f64 / 1e6))
                .collect();
            let _ = writeln!(
                out,
                "  window {} rank {} round {} [{:.3}..{:.3} ms] bound by {} \
                 (margin {:.3} ms; {})",
                w.window,
                w.rank,
                w.round,
                w.begin as f64 / 1e6,
                w.end as f64 / 1e6,
                w.bound_by,
                w.margin_nanos as f64 / 1e6,
                stages.join(" "),
            );
        }
        let totals: Vec<String> = self
            .totals
            .iter()
            .map(|(k, ns)| format!("{k}={:.3}ms", *ns as f64 / 1e6))
            .collect();
        let _ = writeln!(out, "  stage totals: {}", totals.join(" "));
        match self.dominant {
            Some(d) => {
                let n = self
                    .bound_counts
                    .iter()
                    .find(|(k, _)| *k == d)
                    .map_or(0, |(_, n)| *n);
                let _ = writeln!(
                    out,
                    "  dominant stage: {d} (bounds {n}/{} windows)",
                    self.windows.len()
                );
            }
            None => {
                let _ = writeln!(out, "  dominant stage: none (no windows traced)");
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(rank: usize, begin: u64, end: u64) -> Span {
        Span {
            rank,
            layer: layer::MPIO,
            name: "t",
            begin,
            end,
            id: 0,
            parent: 0,
            stage: None,
            args: Vec::new(),
        }
    }

    #[test]
    fn disabled_log_records_nothing() {
        let log = TraceLog::new();
        log.record(span(0, 0, 10));
        assert!(log.snapshot().spans.is_empty());
    }

    #[test]
    fn ids_are_unique_and_nonzero() {
        let log = TraceLog::new();
        let a = log.next_id();
        let b = log.next_id();
        assert_ne!(a, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn ring_keeps_newest_and_counts_dropped() {
        let log = TraceLog::with_capacity(3);
        log.set_enabled(true);
        for i in 0..5u64 {
            log.record(span(0, i * 10, i * 10 + 5));
        }
        let snap = log.snapshot();
        assert_eq!(snap.spans.len(), 3);
        assert_eq!(snap.dropped, 2);
        let begins: Vec<u64> = snap.spans.iter().map(|s| s.begin).collect();
        assert_eq!(begins, vec![20, 30, 40], "oldest spans overwritten");
    }

    #[test]
    fn ctx_is_innermost_wins_and_restores() {
        assert_eq!(TraceCtx::current(), None);
        {
            let _a = TraceCtx::enter(1, 7);
            assert_eq!(TraceCtx::current(), Some((1, 7)));
            {
                let _b = TraceCtx::enter(2, 9);
                assert_eq!(TraceCtx::current_id(), 9);
            }
            assert_eq!(TraceCtx::current(), Some((1, 7)));
        }
        assert_eq!(TraceCtx::current(), None);
    }

    #[test]
    fn coverage_merges_overlaps() {
        let log = TraceLog::new();
        log.set_enabled(true);
        log.record(span(0, 0, 50));
        log.record(span(0, 40, 80));
        log.record(span(0, 90, 100));
        let snap = log.snapshot();
        let cov = snap.rank_coverage(0, 100);
        assert!((cov - 0.9).abs() < 1e-9, "covered 90 of 100: {cov}");
    }

    #[test]
    fn chrome_export_assigns_disjoint_lanes() {
        let log = TraceLog::new();
        log.set_enabled(true);
        // Two overlapping spans on one layer must land on distinct tids.
        log.record(span(0, 0, 100));
        log.record(span(0, 50, 150));
        log.record(span(0, 100, 200));
        let chrome = log.snapshot().to_chrome();
        let Some(Json::Arr(events)) = chrome.get("traceEvents").cloned() else {
            panic!("traceEvents array");
        };
        let xs: Vec<&Json> = events
            .iter()
            .filter(|e| e.get("ph").map(|p| p == &Json::from("X")).unwrap_or(false))
            .collect();
        assert_eq!(xs.len(), 3);
        let tid = |e: &Json| e.get("tid").and_then(Json::as_f64).unwrap() as u64;
        assert_ne!(tid(xs[0]), tid(xs[1]), "overlap forces a second lane");
        assert_eq!(tid(xs[0]), tid(xs[2]), "disjoint span reuses lane 1");
    }

    #[test]
    fn chrome_export_links_parents_with_flows() {
        let log = TraceLog::new();
        log.set_enabled(true);
        let parent = log.next_id();
        log.record(Span {
            id: parent,
            ..span(0, 0, 100)
        });
        log.record(Span {
            parent,
            ..span(1, 20, 80)
        });
        let chrome = log.snapshot().to_chrome();
        let Some(Json::Arr(events)) = chrome.get("traceEvents").cloned() else {
            panic!("traceEvents array");
        };
        let phs: Vec<String> = events
            .iter()
            .filter_map(|e| match e.get("ph") {
                Some(Json::Str(s)) if s == "s" || s == "f" => Some(s.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(phs, vec!["s", "f"], "one flow start, one flow end");
    }

    #[test]
    fn critical_path_names_bounding_stage() {
        let log = TraceLog::new();
        log.set_enabled(true);
        let w = log.next_id();
        log.record(Span {
            name: "window",
            id: w,
            args: vec![("round", 2)],
            ..span(1, 0, 1000)
        });
        for (st, ns) in [
            (stage::DISK, 600u64),
            (stage::EXCHANGE, 250),
            (stage::NIC, 150),
        ] {
            log.record(Span {
                parent: w,
                stage: Some(st),
                ..span(1, 0, ns)
            });
        }
        let cp = critical_path(&log.snapshot());
        assert_eq!(cp.windows.len(), 1);
        let win = &cp.windows[0];
        assert_eq!(win.bound_by, stage::DISK);
        assert_eq!(win.round, 2);
        assert_eq!(win.margin_nanos, 350);
        assert_eq!(cp.dominant, Some(stage::DISK));
        let rendered = cp.render();
        assert!(rendered.contains("bound by disk"));
        assert!(rendered.contains("dominant stage: disk"));
        let json = cp.to_json();
        assert_eq!(
            json.get("dominant_stage").cloned(),
            Some(Json::from(stage::DISK))
        );
    }

    #[test]
    fn reset_keeps_enabled_and_id_uniqueness() {
        let log = TraceLog::new();
        log.set_enabled(true);
        let a = log.next_id();
        log.record(span(0, 0, 1));
        log.reset();
        assert!(log.is_enabled());
        assert!(log.snapshot().spans.is_empty());
        assert_ne!(log.next_id(), a, "ids stay unique across resets");
    }
}
