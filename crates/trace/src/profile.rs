//! The shared profile: counters, phase timers, scopes, snapshots.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::Instant;

use crate::json::Json;
use crate::phase::{CollKind, Phase};

/// Lock a profile mutex, recovering from poisoning instead of panicking.
///
/// Invariant: every critical section in this module performs only in-place
/// arithmetic or container growth, so even if the owning rank thread
/// panicked mid-update the data stays structurally valid — at worst one
/// partial increment is lost. Recovering here means a malformed profile
/// can never cascade a panic into the surviving ranks of a run.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Number of power-of-two size-histogram buckets. Bucket `i` counts
/// requests with `2^(i-1) < size <= 2^i` (bucket 0 counts size 0 and 1);
/// the last bucket absorbs everything larger.
pub const HIST_BUCKETS: usize = 32;

thread_local! {
    static SCOPE: std::cell::Cell<Option<Phase>> = const { std::cell::Cell::new(None) };
}

/// Ambient phase override for the current thread (= the current simulated
/// rank, since the MPI runtime is ranks-as-threads).
///
/// The *outermost* scope wins: entering a scope while one is already active
/// is a no-op, so a high layer (core charging header I/O to
/// [`Phase::Metadata`]) keeps its attribution even when a lower layer
/// (mpio defaulting file writes to [`Phase::DiskWrite`]) opens its own
/// scope on the way down.
pub struct PhaseScope {
    installed: bool,
}

impl PhaseScope {
    /// Enter `phase` as the ambient phase if no scope is active.
    pub fn enter(phase: Phase) -> PhaseScope {
        SCOPE.with(|s| {
            if s.get().is_none() {
                s.set(Some(phase));
                PhaseScope { installed: true }
            } else {
                PhaseScope { installed: false }
            }
        })
    }

    /// The ambient phase, or `default` when no scope is active.
    pub fn current(default: Phase) -> Phase {
        SCOPE.with(|s| s.get()).unwrap_or(default)
    }
}

impl Drop for PhaseScope {
    fn drop(&mut self) {
        if self.installed {
            SCOPE.with(|s| s.set(None));
        }
    }
}

/// Wall-clock timer for a region: records elapsed real time against a
/// phase when dropped. Used around the expensive engine loops so reports
/// can contrast simulated cost with simulator cost.
pub struct WallScope<'a> {
    profile: &'a Profile,
    phase: Phase,
    start: Instant,
}

impl<'a> WallScope<'a> {
    pub fn new(profile: &'a Profile, phase: Phase) -> WallScope<'a> {
        WallScope {
            profile,
            phase,
            start: Instant::now(),
        }
    }
}

impl Drop for WallScope<'_> {
    fn drop(&mut self) {
        if self.profile.is_enabled() {
            let nanos = self.start.elapsed().as_nanos() as u64;
            self.profile.inner.wall_nanos[self.phase.index()].fetch_add(nanos, Ordering::Relaxed);
        }
    }
}

#[derive(Default)]
struct OpCell {
    count: AtomicU64,
    bytes: AtomicU64,
    nanos: AtomicU64,
}

/// Per-server PFS counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServerCounters {
    pub requests: u64,
    pub bytes_read: u64,
    pub bytes_written: u64,
    pub seeks: u64,
    /// Sum of absolute distances (bytes) between the end of one request
    /// and the start of the next on the same file.
    pub seek_distance: u64,
    /// Nanoseconds the server's NIC stage spent transferring payloads.
    pub nic_busy_nanos: u64,
    /// Nanoseconds the server's disk stage spent servicing requests.
    pub disk_busy_nanos: u64,
    /// Disk busy time that overlapped NIC transfers — what the
    /// dual-resource service engine hides relative to a serial server.
    pub overlap_nanos: u64,
    /// Time requests stalled at the full bounded admission queue.
    pub queue_stall_nanos: u64,
    /// Wait time (queue, NIC, disk) spent behind *other files'* requests —
    /// cross-file contention on a shared service cluster.
    pub cross_file_stall_nanos: u64,
    /// Deepest admission-queue occupancy observed.
    pub max_queue_depth: u64,
}

/// Per-request stage breakdown of the dual-resource service engine,
/// attached to [`Profile::record_io_stages`]. Raw nanoseconds so this
/// crate stays independent of the simulator's `Time` type.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IoStages {
    pub nic_busy_nanos: u64,
    pub disk_busy_nanos: u64,
    pub overlap_nanos: u64,
    pub queue_stall_nanos: u64,
    /// Wait time attributable to other files' traffic (see
    /// [`ServerCounters::cross_file_stall_nanos`]).
    pub cross_stall_nanos: u64,
    /// Admission-queue depth observed by this request.
    pub depth: u64,
}

/// Data-sieving amplification counters, one direction.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SieveCounters {
    /// Bytes moved to/from the file system (whole sieve windows).
    pub transferred: u64,
    /// Bytes the application actually asked for.
    pub useful: u64,
}

/// Two-phase collective-I/O engine counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TwophaseCounters {
    pub collective_writes: u64,
    pub collective_reads: u64,
    /// Aggregator count chosen by the most recent collective (the
    /// `cb_nodes` hint, or the dynamic default derived from `io_servers`
    /// and request volume). Recorded so sweeps can audit the choice.
    pub cb_nodes: u64,
    /// Non-empty file domains assigned to aggregators.
    pub file_domains: u64,
    /// Collective-buffer windows processed by aggregators.
    pub windows: u64,
    /// Windows with holes: the aggregator had to read-modify-write.
    pub rmw_windows: u64,
    /// Bytes of request metadata + data shipped in the exchange phases.
    pub exchange_wire_bytes: u64,
    /// Exchange/disk rounds executed by the pipelined engine
    /// (`pnc_cb_pipeline`); serial collectives leave this at zero.
    pub pipelined_rounds: u64,
    /// Virtual nanoseconds the pipelined engine saved by overlapping
    /// per-round exchange with the previous round's disk access, relative
    /// to running the same rounds back to back.
    pub overlap_saved_nanos: u64,
}

/// Fault-injection and recovery counters (PFS faults and the MPI-IO
/// retry/backoff layer that hides them).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Total faults the PFS servers injected (all kinds).
    pub faults_injected: u64,
    /// Transient EIO faults injected.
    pub transient: u64,
    /// Short (partial byte count) reads/writes injected.
    pub short: u64,
    /// Latency stalls injected (charged to virtual time, not errors).
    pub stalls: u64,
    /// Requests refused because the server was crashed.
    pub crashed: u64,
    /// Recovery-layer retries after a transient or crash fault.
    pub retries: u64,
    /// Virtual nanoseconds spent in exponential backoff before retries.
    pub backoff_nanos: u64,
    /// Short-I/O completion resumptions at the partial offset.
    pub short_completions: u64,
    /// Retry budgets exhausted (`MpioError::Exhausted` surfaced).
    pub exhausted: u64,
    /// Collective error agreements that propagated a fault to all ranks.
    pub agreed_errors: u64,
}

/// Parity/failover counters: what the redundancy layer did after the ranks
/// agreed a server was down (degraded reads, redirected writes, parity
/// maintenance, rebuild).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FailoverCounters {
    /// Read requests that had chunks reconstructed from data + parity.
    pub degraded_reads: u64,
    /// Bytes XOR-reconstructed from surviving servers instead of read from
    /// the down server.
    pub reconstructed_bytes: u64,
    /// Write requests with chunks redirected away from the down server.
    pub redirected_writes: u64,
    /// Bytes destined to the down server that were covered by parity
    /// instead of stored there.
    pub redirected_bytes: u64,
    /// Parity rows recomputed and written after data writes.
    pub parity_updates: u64,
    /// Parity bytes written to surviving servers.
    pub parity_bytes: u64,
    /// Server-down epochs the ranks collectively agreed on.
    pub epochs: u64,
    /// Online rebuilds completed after a server restart.
    pub rebuilds: u64,
    /// Bytes replayed onto the restarted server from the parity log.
    pub rebuilt_bytes: u64,
    /// Virtual nanoseconds the rebuild replay occupied.
    pub rebuild_nanos: u64,
}

/// Client page-cache counters (hits, misses, write-behind, readahead,
/// coherence invalidations), summed over all ranks of a run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Page lookups fully served from cached bytes.
    pub hits: u64,
    /// Bytes served from cached pages without touching the PFS.
    pub hit_bytes: u64,
    /// Page lookups that needed a disk fill (or created a fresh page).
    pub misses: u64,
    /// Pages evicted by the LRU policy to stay under the byte budget.
    pub evictions: u64,
    /// Write-behind flush rounds (eviction, sync, close, collective entry).
    pub write_behind_flushes: u64,
    /// Dirty bytes pushed to the PFS by write-behind flushes.
    pub write_behind_bytes: u64,
    /// Pages fetched speculatively by sequential-detection readahead.
    pub readahead_issued: u64,
    /// Readahead pages later hit by a demand read.
    pub readahead_hits: u64,
    /// Pages (or clean page fractions) dropped by the coherence protocol
    /// after another rank's epoch advanced.
    pub invalidations: u64,
}

/// Zero-copy byte-path counters: how often the memoized view flattener
/// hit, how many bytes moved through the fused gather+swap kernels, and
/// how many staging copies the borrow fast paths elided. Summed over all
/// ranks of a run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BytePathCounters {
    /// View-flattening memoization hits (run list reused).
    pub flatten_hits: u64,
    /// View-flattening misses (datatype walked and run list built).
    pub flatten_misses: u64,
    /// Bytes produced by fused gather+byteswap packs (native → external)
    /// — each of these bytes was touched once instead of copied then
    /// swapped.
    pub fused_pack_bytes: u64,
    /// Bytes consumed by fused byteswap+scatter unpacks (external →
    /// native).
    pub fused_unpack_bytes: u64,
    /// Whole staging copies skipped by borrowing the caller's buffer
    /// (single coalesced put, contiguous MPI-IO write).
    pub copies_elided: u64,
    /// Bytes covered by those elided copies.
    pub borrowed_bytes: u64,
}

struct Inner {
    enabled: AtomicBool,
    /// Per-rank, per-phase simulated nanoseconds. Grown on demand.
    phase_nanos: Mutex<Vec<[u64; Phase::COUNT]>>,
    /// Wall-clock nanoseconds per phase (whole world, not per rank).
    wall_nanos: [AtomicU64; Phase::COUNT],
    /// Count / bytes / simulated latency per collective kind.
    collectives: [OpCell; CollKind::COUNT],
    /// Power-of-two size histograms.
    io_write_hist: [AtomicU64; HIST_BUCKETS],
    io_read_hist: [AtomicU64; HIST_BUCKETS],
    msg_hist: [AtomicU64; HIST_BUCKETS],
    servers: Mutex<Vec<ServerCounters>>,
    sieve_read: Mutex<SieveCounters>,
    sieve_write: Mutex<SieveCounters>,
    twophase: Mutex<TwophaseCounters>,
    faults: Mutex<FaultCounters>,
    failover: Mutex<FailoverCounters>,
    cache: Mutex<CacheCounters>,
    bytepath: Mutex<BytePathCounters>,
    /// Unknown or malformed `pnc_*`/MPI-IO hints rejected at file open.
    hints_rejected: AtomicU64,
    /// Named report fragments attached by higher layers (dataset roll-ups).
    extras: Mutex<Vec<(String, Json)>>,
}

/// The shared profile. Cloning is cheap (one `Arc`); every layer of one
/// simulation sees the same instance because it rides inside
/// `hpc_sim::SimConfig`. Disabled by default: every recording method is a
/// single relaxed atomic load followed by an early return.
#[derive(Clone)]
pub struct Profile {
    inner: Arc<Inner>,
}

impl Default for Profile {
    fn default() -> Profile {
        Profile::new()
    }
}

impl std::fmt::Debug for Profile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Profile")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl Profile {
    /// New disabled profile.
    pub fn new() -> Profile {
        Profile {
            inner: Arc::new(Inner {
                enabled: AtomicBool::new(false),
                phase_nanos: Mutex::new(Vec::new()),
                wall_nanos: Default::default(),
                collectives: Default::default(),
                io_write_hist: [0u64; HIST_BUCKETS].map(AtomicU64::new),
                io_read_hist: [0u64; HIST_BUCKETS].map(AtomicU64::new),
                msg_hist: [0u64; HIST_BUCKETS].map(AtomicU64::new),
                servers: Mutex::new(Vec::new()),
                sieve_read: Mutex::new(SieveCounters::default()),
                sieve_write: Mutex::new(SieveCounters::default()),
                twophase: Mutex::new(TwophaseCounters::default()),
                faults: Mutex::new(FaultCounters::default()),
                failover: Mutex::new(FailoverCounters::default()),
                cache: Mutex::new(CacheCounters::default()),
                bytepath: Mutex::new(BytePathCounters::default()),
                hints_rejected: AtomicU64::new(0),
                extras: Mutex::new(Vec::new()),
            }),
        }
    }

    /// New profile with recording on.
    pub fn enabled() -> Profile {
        let p = Profile::new();
        p.set_enabled(true);
        p
    }

    /// Turn recording on or off.
    pub fn set_enabled(&self, on: bool) {
        self.inner.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether recording is on. This is the fast-path guard.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed)
    }

    /// Whether two profiles share the same storage.
    pub fn same_as(&self, other: &Profile) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    /// Charge `nanos` of simulated time on `rank` to `phase`.
    pub fn record_phase(&self, rank: usize, phase: Phase, nanos: u64) {
        if !self.is_enabled() || nanos == 0 {
            return;
        }
        let mut ranks = lock(&self.inner.phase_nanos);
        if ranks.len() <= rank {
            ranks.resize(rank + 1, [0; Phase::COUNT]);
        }
        ranks[rank][phase.index()] += nanos;
    }

    /// Charge `nanos` on `rank` to the ambient [`PhaseScope`], falling back
    /// to `default` when no scope is active. This is what generic
    /// primitives (`Comm::advance`) call so every local clock advance gets
    /// attributed without editing each call site.
    pub fn record_scoped(&self, rank: usize, default: Phase, nanos: u64) {
        if !self.is_enabled() {
            return;
        }
        self.record_phase(rank, PhaseScope::current(default), nanos);
    }

    /// Record one predefined collective: participant count is irrelevant;
    /// `bytes` is the total payload moved, `nanos` its simulated cost.
    pub fn record_collective(&self, kind: CollKind, bytes: u64, nanos: u64) {
        if !self.is_enabled() {
            return;
        }
        let cell = &self.inner.collectives[kind.index()];
        cell.count.fetch_add(1, Ordering::Relaxed);
        cell.bytes.fetch_add(bytes, Ordering::Relaxed);
        cell.nanos.fetch_add(nanos, Ordering::Relaxed);
    }

    /// Record a point-to-point message size.
    pub fn record_msg_size(&self, bytes: u64) {
        if !self.is_enabled() {
            return;
        }
        self.inner.msg_hist[bucket(bytes)].fetch_add(1, Ordering::Relaxed);
    }

    /// Record one request serviced by PFS server `server`.
    pub fn record_io(&self, server: usize, bytes: u64, read: bool, seeked: bool, distance: u64) {
        self.record_io_stages(server, bytes, read, seeked, distance, IoStages::default());
    }

    /// Record one request serviced by PFS server `server`, including the
    /// dual-resource stage breakdown.
    pub fn record_io_stages(
        &self,
        server: usize,
        bytes: u64,
        read: bool,
        seeked: bool,
        distance: u64,
        stages: IoStages,
    ) {
        if !self.is_enabled() {
            return;
        }
        let hist = if read {
            &self.inner.io_read_hist
        } else {
            &self.inner.io_write_hist
        };
        hist[bucket(bytes)].fetch_add(1, Ordering::Relaxed);
        let mut servers = lock(&self.inner.servers);
        if servers.len() <= server {
            servers.resize(server + 1, ServerCounters::default());
        }
        let s = &mut servers[server];
        s.requests += 1;
        if read {
            s.bytes_read += bytes;
        } else {
            s.bytes_written += bytes;
        }
        if seeked {
            s.seeks += 1;
            s.seek_distance += distance;
        }
        s.nic_busy_nanos += stages.nic_busy_nanos;
        s.disk_busy_nanos += stages.disk_busy_nanos;
        s.overlap_nanos += stages.overlap_nanos;
        s.queue_stall_nanos += stages.queue_stall_nanos;
        s.cross_file_stall_nanos += stages.cross_stall_nanos;
        s.max_queue_depth = s.max_queue_depth.max(stages.depth);
    }

    /// Record sieving amplification: one window moved `transferred` bytes
    /// of which `useful` were requested by the application.
    pub fn record_sieve(&self, read: bool, transferred: u64, useful: u64) {
        if !self.is_enabled() {
            return;
        }
        let cell = if read {
            &self.inner.sieve_read
        } else {
            &self.inner.sieve_write
        };
        let mut c = lock(cell);
        c.transferred += transferred;
        c.useful += useful;
    }

    /// Update the two-phase engine counters.
    pub fn record_twophase(&self, f: impl FnOnce(&mut TwophaseCounters)) {
        if !self.is_enabled() {
            return;
        }
        f(&mut lock(&self.inner.twophase));
    }

    /// Copy of the two-phase engine counters (tests and smoke assertions
    /// read these directly).
    pub fn twophase_counters(&self) -> TwophaseCounters {
        *lock(&self.inner.twophase)
    }

    /// Update the fault-injection/recovery counters.
    pub fn record_fault(&self, f: impl FnOnce(&mut FaultCounters)) {
        if !self.is_enabled() {
            return;
        }
        f(&mut lock(&self.inner.faults));
    }

    /// Copy of the fault-injection/recovery counters (tests and smoke
    /// assertions read these directly).
    pub fn fault_counters(&self) -> FaultCounters {
        *lock(&self.inner.faults)
    }

    /// Update the parity/failover counters.
    pub fn record_failover(&self, f: impl FnOnce(&mut FailoverCounters)) {
        if !self.is_enabled() {
            return;
        }
        f(&mut lock(&self.inner.failover));
    }

    /// Copy of the parity/failover counters (tests and smoke assertions
    /// read these directly).
    pub fn failover_counters(&self) -> FailoverCounters {
        *lock(&self.inner.failover)
    }

    /// Update the client page-cache counters.
    pub fn record_cache(&self, f: impl FnOnce(&mut CacheCounters)) {
        if !self.is_enabled() {
            return;
        }
        f(&mut lock(&self.inner.cache));
    }

    /// Copy of the client page-cache counters (tests and smoke assertions
    /// read these directly).
    pub fn cache_counters(&self) -> CacheCounters {
        *lock(&self.inner.cache)
    }

    /// Update the zero-copy byte-path counters.
    pub fn record_bytepath(&self, f: impl FnOnce(&mut BytePathCounters)) {
        if !self.is_enabled() {
            return;
        }
        f(&mut lock(&self.inner.bytepath));
    }

    /// Copy of the byte-path counters (tests and smoke assertions read
    /// these directly).
    pub fn bytepath_counters(&self) -> BytePathCounters {
        *lock(&self.inner.bytepath)
    }

    /// Count one rejected (unknown or malformed) hint key/value observed
    /// at file open. Counted even while profiling is off: a misspelled
    /// hint should be discoverable without enabling the full profile.
    pub fn record_hint_rejected(&self) {
        self.inner.hints_rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Hints rejected so far.
    pub fn hints_rejected(&self) -> u64 {
        self.inner.hints_rejected.load(Ordering::Relaxed)
    }

    /// Attach a named report fragment (e.g. a dataset roll-up at close).
    /// Replaces an existing fragment with the same name.
    pub fn attach_extra(&self, name: &str, value: Json) {
        if !self.is_enabled() {
            return;
        }
        let mut extras = lock(&self.inner.extras);
        if let Some(e) = extras.iter_mut().find(|(n, _)| n == name) {
            e.1 = value;
        } else {
            extras.push((name.to_string(), value));
        }
    }

    /// Copy out all counters.
    pub fn snapshot(&self) -> ProfileSnapshot {
        ProfileSnapshot {
            enabled: self.is_enabled(),
            phase_nanos: lock(&self.inner.phase_nanos).clone(),
            wall_nanos: std::array::from_fn(|i| self.inner.wall_nanos[i].load(Ordering::Relaxed)),
            collectives: std::array::from_fn(|i| {
                let c = &self.inner.collectives[i];
                (
                    c.count.load(Ordering::Relaxed),
                    c.bytes.load(Ordering::Relaxed),
                    c.nanos.load(Ordering::Relaxed),
                )
            }),
            io_write_hist: std::array::from_fn(|i| {
                self.inner.io_write_hist[i].load(Ordering::Relaxed)
            }),
            io_read_hist: std::array::from_fn(|i| {
                self.inner.io_read_hist[i].load(Ordering::Relaxed)
            }),
            msg_hist: std::array::from_fn(|i| self.inner.msg_hist[i].load(Ordering::Relaxed)),
            servers: lock(&self.inner.servers).clone(),
            sieve_read: *lock(&self.inner.sieve_read),
            sieve_write: *lock(&self.inner.sieve_write),
            twophase: *lock(&self.inner.twophase),
            faults: *lock(&self.inner.faults),
            failover: *lock(&self.inner.failover),
            cache: *lock(&self.inner.cache),
            bytepath: *lock(&self.inner.bytepath),
            hints_rejected: self.inner.hints_rejected.load(Ordering::Relaxed),
            extras: lock(&self.inner.extras).clone(),
        }
    }

    /// Zero every counter, keeping the enabled flag. Benchmarks call this
    /// between configurations.
    pub fn reset(&self) {
        lock(&self.inner.phase_nanos).clear();
        for w in &self.inner.wall_nanos {
            w.store(0, Ordering::Relaxed);
        }
        for c in &self.inner.collectives {
            c.count.store(0, Ordering::Relaxed);
            c.bytes.store(0, Ordering::Relaxed);
            c.nanos.store(0, Ordering::Relaxed);
        }
        for h in [
            &self.inner.io_write_hist,
            &self.inner.io_read_hist,
            &self.inner.msg_hist,
        ] {
            for b in h.iter() {
                b.store(0, Ordering::Relaxed);
            }
        }
        lock(&self.inner.servers).clear();
        *lock(&self.inner.sieve_read) = SieveCounters::default();
        *lock(&self.inner.sieve_write) = SieveCounters::default();
        *lock(&self.inner.twophase) = TwophaseCounters::default();
        *lock(&self.inner.faults) = FaultCounters::default();
        *lock(&self.inner.failover) = FailoverCounters::default();
        *lock(&self.inner.cache) = CacheCounters::default();
        *lock(&self.inner.bytepath) = BytePathCounters::default();
        self.inner.hints_rejected.store(0, Ordering::Relaxed);
        lock(&self.inner.extras).clear();
    }
}

/// Histogram bucket for a request size: bucket `i` holds
/// `2^(i-1) < size <= 2^i` (0 and 1 share bucket 0).
pub fn bucket(size: u64) -> usize {
    if size <= 1 {
        0
    } else {
        let b = 64 - (size - 1).leading_zeros() as usize;
        b.min(HIST_BUCKETS - 1)
    }
}

/// A point-in-time copy of every counter in a [`Profile`].
#[derive(Clone, Debug)]
pub struct ProfileSnapshot {
    pub enabled: bool,
    /// `[rank][phase] -> simulated nanoseconds`.
    pub phase_nanos: Vec<[u64; Phase::COUNT]>,
    pub wall_nanos: [u64; Phase::COUNT],
    /// `(count, bytes, nanos)` per [`CollKind`].
    pub collectives: [(u64, u64, u64); CollKind::COUNT],
    pub io_write_hist: [u64; HIST_BUCKETS],
    pub io_read_hist: [u64; HIST_BUCKETS],
    pub msg_hist: [u64; HIST_BUCKETS],
    pub servers: Vec<ServerCounters>,
    pub sieve_read: SieveCounters,
    pub sieve_write: SieveCounters,
    pub twophase: TwophaseCounters,
    pub faults: FaultCounters,
    pub failover: FailoverCounters,
    pub cache: CacheCounters,
    pub bytepath: BytePathCounters,
    pub hints_rejected: u64,
    pub extras: Vec<(String, Json)>,
}

impl ProfileSnapshot {
    /// Total simulated nanoseconds attributed on `rank`.
    pub fn rank_total(&self, rank: usize) -> u64 {
        self.phase_nanos
            .get(rank)
            .map(|p| p.iter().sum())
            .unwrap_or(0)
    }

    /// The rank with the largest attributed time — the critical rank whose
    /// phase breakdown explains the makespan.
    pub fn critical_rank(&self) -> usize {
        (0..self.phase_nanos.len())
            .max_by_key(|&r| self.rank_total(r))
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_profile_records_nothing() {
        let p = Profile::new();
        p.record_phase(0, Phase::Compute, 100);
        p.record_collective(CollKind::Barrier, 0, 10);
        p.record_io(0, 64, false, true, 5);
        let s = p.snapshot();
        assert!(s.phase_nanos.is_empty());
        assert_eq!(s.collectives[CollKind::Barrier.index()], (0, 0, 0));
        assert!(s.servers.is_empty());
    }

    #[test]
    fn phase_accounting_sums_per_rank() {
        let p = Profile::enabled();
        p.record_phase(1, Phase::DiskWrite, 30);
        p.record_phase(1, Phase::Wait, 20);
        p.record_phase(0, Phase::Compute, 5);
        let s = p.snapshot();
        assert_eq!(s.rank_total(1), 50);
        assert_eq!(s.rank_total(0), 5);
        assert_eq!(s.critical_rank(), 1);
    }

    #[test]
    fn scopes_are_outermost_wins() {
        let p = Profile::enabled();
        {
            let _outer = PhaseScope::enter(Phase::Metadata);
            {
                let _inner = PhaseScope::enter(Phase::DiskWrite);
                p.record_scoped(0, Phase::Compute, 7);
            }
            p.record_scoped(0, Phase::Compute, 3);
        }
        p.record_scoped(0, Phase::Compute, 1);
        let s = p.snapshot();
        assert_eq!(s.phase_nanos[0][Phase::Metadata.index()], 10);
        assert_eq!(s.phase_nanos[0][Phase::Compute.index()], 1);
        assert_eq!(s.phase_nanos[0][Phase::DiskWrite.index()], 0);
    }

    #[test]
    fn histogram_buckets_are_powers_of_two() {
        assert_eq!(bucket(0), 0);
        assert_eq!(bucket(1), 0);
        assert_eq!(bucket(2), 1);
        assert_eq!(bucket(3), 2);
        assert_eq!(bucket(4), 2);
        assert_eq!(bucket(1024), 10);
        assert_eq!(bucket(1025), 11);
        assert_eq!(bucket(u64::MAX), HIST_BUCKETS - 1);
    }

    #[test]
    fn reset_clears_but_keeps_enabled() {
        let p = Profile::enabled();
        p.record_phase(0, Phase::Compute, 9);
        p.record_io(2, 128, true, false, 0);
        p.reset();
        let s = p.snapshot();
        assert!(s.enabled);
        assert!(s.phase_nanos.is_empty());
        assert!(s.servers.is_empty());
    }

    #[test]
    fn server_counters_accumulate() {
        let p = Profile::enabled();
        p.record_io(1, 100, false, true, 40);
        p.record_io(1, 50, true, false, 0);
        let s = p.snapshot();
        assert_eq!(s.servers.len(), 2);
        let c = s.servers[1];
        assert_eq!(c.requests, 2);
        assert_eq!(c.bytes_written, 100);
        assert_eq!(c.bytes_read, 50);
        assert_eq!(c.seeks, 1);
        assert_eq!(c.seek_distance, 40);
    }

    #[test]
    fn io_stage_counters_accumulate() {
        let p = Profile::enabled();
        let stages = IoStages {
            nic_busy_nanos: 10,
            disk_busy_nanos: 30,
            overlap_nanos: 7,
            queue_stall_nanos: 2,
            cross_stall_nanos: 1,
            depth: 3,
        };
        p.record_io_stages(0, 64, false, false, 0, stages);
        p.record_io_stages(0, 64, false, false, 0, stages);
        let c = p.snapshot().servers[0];
        assert_eq!(c.nic_busy_nanos, 20);
        assert_eq!(c.disk_busy_nanos, 60);
        assert_eq!(c.overlap_nanos, 14);
        assert_eq!(c.queue_stall_nanos, 4);
        assert_eq!(c.cross_file_stall_nanos, 2);
        assert_eq!(c.max_queue_depth, 3, "depth is a high-water mark");
    }
}
