//! Turning a [`ProfileSnapshot`] into the structured JSON report.

use crate::json::Json;
use crate::phase::{CollKind, Phase};
use crate::profile::{ProfileSnapshot, HIST_BUCKETS};

impl ProfileSnapshot {
    /// Build the full report object.
    ///
    /// `sim_total_nanos` is the externally-measured makespan the breakdown
    /// should explain; the report carries both it and the attributed sum of
    /// the critical rank so consumers can check coverage.
    pub fn to_json(&self, sim_total_nanos: u64) -> Json {
        let critical = self.critical_rank();

        let mut phases = Json::obj();
        for p in Phase::ALL {
            let agg = self
                .phase_nanos
                .get(critical)
                .map(|r| r[p.index()])
                .unwrap_or(0);
            phases.set(
                p.name(),
                Json::obj()
                    .with("sim_s", Json::from(nanos_to_s(agg)))
                    .with("wall_s", Json::from(nanos_to_s(self.wall_nanos[p.index()]))),
            );
        }

        let mut per_rank = Vec::new();
        for (rank, counts) in self.phase_nanos.iter().enumerate() {
            let mut row = Json::obj().with("rank", Json::from(rank));
            for p in Phase::ALL {
                row.set(p.name(), Json::from(nanos_to_s(counts[p.index()])));
            }
            row.set("total_s", Json::from(nanos_to_s(self.rank_total(rank))));
            per_rank.push(row);
        }

        let mut collectives = Json::obj();
        for k in CollKind::ALL {
            let (count, bytes, nanos) = self.collectives[k.index()];
            if count == 0 {
                continue;
            }
            collectives.set(
                k.name(),
                Json::obj()
                    .with("count", Json::from(count))
                    .with("bytes", Json::from(bytes))
                    .with("sim_s", Json::from(nanos_to_s(nanos))),
            );
        }

        let mut servers = Vec::new();
        for (id, s) in self.servers.iter().enumerate() {
            servers.push(
                Json::obj()
                    .with("server", Json::from(id))
                    .with("requests", Json::from(s.requests))
                    .with("bytes_read", Json::from(s.bytes_read))
                    .with("bytes_written", Json::from(s.bytes_written))
                    .with("seeks", Json::from(s.seeks))
                    .with("seek_distance", Json::from(s.seek_distance))
                    .with("nic_busy_s", Json::from(nanos_to_s(s.nic_busy_nanos)))
                    .with("disk_busy_s", Json::from(nanos_to_s(s.disk_busy_nanos)))
                    .with("overlap_s", Json::from(nanos_to_s(s.overlap_nanos)))
                    .with("queue_stall_s", Json::from(nanos_to_s(s.queue_stall_nanos)))
                    .with(
                        "cross_file_stall_s",
                        Json::from(nanos_to_s(s.cross_file_stall_nanos)),
                    )
                    .with("max_queue_depth", Json::from(s.max_queue_depth)),
            );
        }

        let sieve = Json::obj()
            .with(
                "read",
                sieve_json(self.sieve_read.transferred, self.sieve_read.useful),
            )
            .with(
                "write",
                sieve_json(self.sieve_write.transferred, self.sieve_write.useful),
            );

        let tp = &self.twophase;
        let twophase = Json::obj()
            .with("collective_writes", Json::from(tp.collective_writes))
            .with("collective_reads", Json::from(tp.collective_reads))
            .with("cb_nodes", Json::from(tp.cb_nodes))
            .with("file_domains", Json::from(tp.file_domains))
            .with("windows", Json::from(tp.windows))
            .with("rmw_windows", Json::from(tp.rmw_windows))
            .with("exchange_wire_bytes", Json::from(tp.exchange_wire_bytes))
            .with("rounds", Json::from(tp.pipelined_rounds))
            .with("overlap_saved_ns", Json::from(tp.overlap_saved_nanos));

        let fc = &self.faults;
        let faults = Json::obj()
            .with("faults_injected", Json::from(fc.faults_injected))
            .with("transient", Json::from(fc.transient))
            .with("short", Json::from(fc.short))
            .with("stalls", Json::from(fc.stalls))
            .with("crashed", Json::from(fc.crashed))
            .with("retries", Json::from(fc.retries))
            .with("backoff_time", Json::from(nanos_to_s(fc.backoff_nanos)))
            .with("short_completions", Json::from(fc.short_completions))
            .with("exhausted", Json::from(fc.exhausted))
            .with("agreed_errors", Json::from(fc.agreed_errors));

        let fo = &self.failover;
        let failover = Json::obj()
            .with("degraded_reads", Json::from(fo.degraded_reads))
            .with("reconstructed_bytes", Json::from(fo.reconstructed_bytes))
            .with("redirected_writes", Json::from(fo.redirected_writes))
            .with("redirected_bytes", Json::from(fo.redirected_bytes))
            .with("parity_updates", Json::from(fo.parity_updates))
            .with("parity_bytes", Json::from(fo.parity_bytes))
            .with("epochs", Json::from(fo.epochs))
            .with("rebuilds", Json::from(fo.rebuilds))
            .with("rebuilt_bytes", Json::from(fo.rebuilt_bytes))
            .with("rebuild_time", Json::from(nanos_to_s(fo.rebuild_nanos)));

        let cc = &self.cache;
        let cache = Json::obj()
            .with("hits", Json::from(cc.hits))
            .with("hit_bytes", Json::from(cc.hit_bytes))
            .with("misses", Json::from(cc.misses))
            .with(
                "hit_rate",
                Json::from(if cc.hits + cc.misses > 0 {
                    cc.hits as f64 / (cc.hits + cc.misses) as f64
                } else {
                    0.0
                }),
            )
            .with("evictions", Json::from(cc.evictions))
            .with("write_behind_flushes", Json::from(cc.write_behind_flushes))
            .with("write_behind_bytes", Json::from(cc.write_behind_bytes))
            .with("readahead_issued", Json::from(cc.readahead_issued))
            .with("readahead_hits", Json::from(cc.readahead_hits))
            .with("invalidations", Json::from(cc.invalidations));

        let bp = &self.bytepath;
        let bytepath = Json::obj()
            .with("flatten_hits", Json::from(bp.flatten_hits))
            .with("flatten_misses", Json::from(bp.flatten_misses))
            .with(
                "flatten_hit_rate",
                Json::from(if bp.flatten_hits + bp.flatten_misses > 0 {
                    bp.flatten_hits as f64 / (bp.flatten_hits + bp.flatten_misses) as f64
                } else {
                    0.0
                }),
            )
            .with("fused_pack_bytes", Json::from(bp.fused_pack_bytes))
            .with("fused_unpack_bytes", Json::from(bp.fused_unpack_bytes))
            .with("copies_elided", Json::from(bp.copies_elided))
            .with("borrowed_bytes", Json::from(bp.borrowed_bytes));

        let attributed = self.rank_total(critical);
        let mut report = Json::obj()
            .with("sim_total_s", Json::from(nanos_to_s(sim_total_nanos)))
            .with("attributed_s", Json::from(nanos_to_s(attributed)))
            .with(
                "coverage",
                Json::from(if sim_total_nanos > 0 {
                    attributed as f64 / sim_total_nanos as f64
                } else {
                    1.0
                }),
            )
            .with("critical_rank", Json::from(critical))
            .with("nranks", Json::from(self.phase_nanos.len()))
            .with("phases", phases)
            .with("per_rank", Json::Arr(per_rank))
            .with("collectives", collectives)
            .with("request_sizes", self.histograms_json())
            .with("servers", Json::Arr(servers))
            .with("hints_rejected", Json::from(self.hints_rejected))
            .with("sieve", sieve)
            .with("twophase", twophase)
            .with("faults", faults)
            .with("failover", failover)
            .with("cache", cache)
            .with("bytepath", bytepath);
        for (name, value) in &self.extras {
            report.set(name, value.clone());
        }
        report
    }

    fn histograms_json(&self) -> Json {
        Json::obj()
            .with("io_write", hist_json(&self.io_write_hist))
            .with("io_read", hist_json(&self.io_read_hist))
            .with("messages", hist_json(&self.msg_hist))
    }
}

fn sieve_json(transferred: u64, useful: u64) -> Json {
    Json::obj()
        .with("transferred_bytes", Json::from(transferred))
        .with("useful_bytes", Json::from(useful))
        .with(
            "amplification",
            Json::from(if useful > 0 {
                transferred as f64 / useful as f64
            } else {
                1.0
            }),
        )
}

/// Histogram as an object of `"<=2^i": count` entries, empty buckets
/// omitted.
fn hist_json(hist: &[u64; HIST_BUCKETS]) -> Json {
    let mut obj = Json::obj();
    for (i, &count) in hist.iter().enumerate() {
        if count > 0 {
            obj.set(&format!("<=2^{}", i), Json::from(count));
        }
    }
    obj
}

fn nanos_to_s(n: u64) -> f64 {
    n as f64 / 1e9
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::Profile;

    #[test]
    fn report_has_all_phase_keys() {
        let p = Profile::enabled();
        p.record_phase(0, Phase::DiskWrite, 600);
        p.record_phase(0, Phase::Metadata, 400);
        p.record_collective(CollKind::Barrier, 0, 50);
        let report = p.snapshot().to_json(1000);
        let phases = report.get("phases").unwrap();
        for ph in Phase::ALL {
            assert!(phases.get(ph.name()).is_some(), "missing {}", ph.name());
        }
        assert_eq!(report.get("coverage").and_then(Json::as_f64), Some(1.0));
        assert!(report
            .get("collectives")
            .and_then(|c| c.get("barrier"))
            .is_some());
    }

    #[test]
    fn bytepath_section_reports_hit_rate() {
        let p = Profile::enabled();
        p.record_bytepath(|b| {
            b.flatten_hits += 3;
            b.flatten_misses += 1;
            b.fused_pack_bytes += 512;
            b.copies_elided += 1;
            b.borrowed_bytes += 512;
        });
        let report = p.snapshot().to_json(0);
        let bp = report.get("bytepath").unwrap();
        assert_eq!(bp.get("flatten_hits").and_then(Json::as_f64), Some(3.0));
        assert_eq!(
            bp.get("flatten_hit_rate").and_then(Json::as_f64),
            Some(0.75)
        );
        assert_eq!(
            bp.get("fused_pack_bytes").and_then(Json::as_f64),
            Some(512.0)
        );
        assert_eq!(bp.get("copies_elided").and_then(Json::as_f64), Some(1.0));
    }

    #[test]
    fn extras_are_spliced_into_report() {
        let p = Profile::enabled();
        p.attach_extra("dataset", Json::obj().with("put_size", Json::from(42u64)));
        let report = p.snapshot().to_json(0);
        assert_eq!(
            report
                .get("dataset")
                .and_then(|d| d.get("put_size"))
                .and_then(Json::as_f64),
            Some(42.0)
        );
    }
}
