//! `pnetcdf-trace`: a Darshan-style I/O profiling layer for the PnetCDF
//! reproduction.
//!
//! The benchmarks of the source paper (Figures 6 and 7) are *explained* by
//! reasoning about where time goes — two-phase exchange vs. disk I/O,
//! header synchronization vs. data movement. This crate makes that
//! reasoning measurable: a [`Profile`] is shared by every simulation layer
//! (it rides inside `hpc_sim::SimConfig`, so the MPI runtime, the MPI-IO
//! layer, and the PFS servers all see the same one) and attributes
//!
//! * **per-rank virtual time** to a small set of [`Phase`]s — every clock
//!   advance in the stack is charged to exactly one phase, so a rank's
//!   phase times sum to its final clock and the critical rank's breakdown
//!   sums to the makespan;
//! * **operation counts, bytes and simulated latency** to each MPI
//!   collective kind ([`CollKind`]);
//! * **request-size histograms** (power-of-two buckets) and per-server
//!   counters (requests, bytes, seeks, seek distance) at the PFS;
//! * **algorithm counters** for the two-phase and data-sieving engines
//!   (file domains, windows, read-modify-write windows, exchange wire
//!   bytes, sieving amplification).
//!
//! The layer is always compiled and cheap when disabled: every recording
//! method begins with one relaxed atomic load and returns immediately when
//! profiling is off. Reports serialize through the dependency-free
//! [`json::Json`] value type.
//!
//! Aggregate counters answer *where* time went; the [`events`] module
//! answers *which request* it went to: a per-rank span recorder
//! ([`TraceLog`]) stamps sim-clock intervals from `iput` down to the PFS
//! server disk, exports Chrome `trace_event` JSON, and attributes each
//! collective window to the stage that bounds it ([`events::critical_path`]).

pub mod events;
pub mod json;
pub mod phase;
pub mod profile;
pub mod report;

pub use events::{critical_path, CriticalPath, Span, TraceCtx, TraceLog, TraceSnapshot};
pub use json::Json;
pub use phase::{CollKind, Phase};
pub use profile::{
    BytePathCounters, CacheCounters, FaultCounters, IoStages, PhaseScope, Profile, ProfileSnapshot,
    ServerCounters, TwophaseCounters, WallScope,
};
