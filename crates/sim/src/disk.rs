//! Disk cost model for one I/O server.
//!
//! Each request pays a fixed software-path overhead (`per_request`); a
//! request that is not sequential with respect to the previous one on the
//! same server additionally pays a positioning cost (`seek`); payload then
//! streams at `bandwidth`. This is the minimal model that reproduces the
//! paper's central performance facts: many small noncontiguous requests are
//! overhead/seek-bound, while the large contiguous requests produced by
//! two-phase collective I/O run at streaming bandwidth.

use crate::time::Time;

/// Cost parameters of one I/O server's disk subsystem.
#[derive(Clone, Copy, Debug)]
pub struct DiskModel {
    /// Fixed cost charged to every request (request processing, GPFS token
    /// and buffer management, kernel path).
    pub per_request: Time,
    /// Positioning cost charged when a request does not start where the
    /// previous request on the same server ended.
    pub seek: Time,
    /// Streaming bandwidth in bytes/second.
    pub bandwidth: f64,
}

impl DiskModel {
    /// Service time of one request of `bytes`, `sequential` with respect to
    /// the server's previous request or not.
    pub fn request(&self, bytes: usize, sequential: bool) -> Time {
        let mut t = self.per_request;
        if !sequential {
            t += self.seek;
        }
        t + Time::from_secs_f64(bytes as f64 / self.bandwidth)
    }

    /// Pure streaming time for `bytes`.
    pub fn stream(&self, bytes: usize) -> Time {
        Time::from_secs_f64(bytes as f64 / self.bandwidth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn disk() -> DiskModel {
        DiskModel {
            per_request: Time::from_micros(200),
            seek: Time::from_millis(4),
            bandwidth: 1e8,
        }
    }

    #[test]
    fn sequential_skips_seek() {
        let d = disk();
        let seq = d.request(1_000_000, true);
        let rnd = d.request(1_000_000, false);
        assert_eq!(rnd - seq, Time::from_millis(4));
    }

    #[test]
    fn small_requests_are_overhead_bound() {
        let d = disk();
        // 4 KB random request: transfer time 40 us, overhead+seek 4.2 ms.
        let t = d.request(4096, false);
        assert!(t > Time::from_millis(4));
        // 1000 such requests are far slower than one 4 MB request.
        let many = Time::from_nanos(t.as_nanos() * 1000);
        let one = d.request(4096 * 1000, false);
        assert!(many.as_secs_f64() > 50.0 * one.as_secs_f64());
    }

    #[test]
    fn zero_bytes_costs_overhead_only() {
        let d = disk();
        assert_eq!(d.request(0, true), Time::from_micros(200));
    }
}
