//! Virtual-time simulation substrate for the PnetCDF reproduction.
//!
//! The SC'03 PnetCDF paper reports wall-clock bandwidth measured on two IBM
//! SP-2 installations (SDSC Blue Horizon and ASCI White Frost). A laptop-scale
//! reproduction cannot reproduce the *absolute* timing of a 144-node machine
//! with dedicated GPFS I/O nodes, so every layer of this workspace charges its
//! work against a deterministic **virtual clock** instead of reading the real
//! one. The cost models in this crate are the classic first-order models used
//! in parallel-I/O analysis:
//!
//! * **Network** — the α–β (latency + bandwidth) model, with log₂(P) tree
//!   collectives (`[network]`).
//! * **Disk** — per-request overhead + positioning (seek) cost + streaming
//!   bandwidth, with a fixed number of I/O servers (`[disk]`).
//! * **CPU** — per-byte packing cost for buffer (un)packing work such as
//!   HDF5's recursive hyperslab packing (`[cpu]`).
//!
//! Each simulated MPI rank owns one entry in a [`clock::SharedClocks`]; blocking
//! operations advance a rank's clock, collectives synchronize clocks to the
//! maximum across participants. Aggregate bandwidth for a benchmark is then
//! `bytes / max(rank clocks)`, which preserves the *shape* of the paper's
//! results (who wins, crossovers, saturation) while remaining exactly
//! reproducible run-to-run.

pub mod clock;
pub mod config;
pub mod cpu;
pub mod disk;
pub mod fault;
pub mod network;
pub mod service;
pub mod stats;
pub mod time;

pub use clock::SharedClocks;
pub use config::{SimConfig, SimConfigBuilder};
pub use cpu::CpuModel;
pub use disk::DiskModel;
pub use fault::{CrashSpec, FaultKind, FaultPlan};
pub use network::NetworkModel;
pub use service::{ServiceEngine, ServiceModel, StageTiming};
pub use stats::SimStats;
pub use time::Time;

/// Re-export of the profiling layer every consumer of [`SimConfig`] sees.
pub use pnetcdf_trace as trace;
pub use pnetcdf_trace::{
    BytePathCounters, CacheCounters, CollKind, FaultCounters, IoStages, Phase, PhaseScope, Profile,
    ProfileSnapshot, Span, TraceCtx, TraceLog, TraceSnapshot,
};
