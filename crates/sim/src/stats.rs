//! Operation counters shared across the simulation layers.
//!
//! These are diagnostics, not part of the timing model: benchmarks print them
//! to explain *why* one configuration is slower (e.g. HDF5-sim issuing many
//! more metadata requests and synchronizations than PnetCDF).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Shared atomic counters. Cloning shares the underlying counters.
#[derive(Clone, Default)]
pub struct SimStats {
    inner: Arc<Counters>,
}

#[derive(Default)]
struct Counters {
    messages: AtomicU64,
    message_bytes: AtomicU64,
    collectives: AtomicU64,
    io_requests: AtomicU64,
    io_bytes_read: AtomicU64,
    io_bytes_written: AtomicU64,
    seeks: AtomicU64,
    metadata_ops: AtomicU64,
}

/// A plain snapshot of the counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    pub messages: u64,
    pub message_bytes: u64,
    pub collectives: u64,
    pub io_requests: u64,
    pub io_bytes_read: u64,
    pub io_bytes_written: u64,
    pub seeks: u64,
    pub metadata_ops: u64,
}

impl SimStats {
    /// Fresh zeroed counters.
    pub fn new() -> SimStats {
        SimStats::default()
    }

    /// Record one point-to-point message of `bytes`.
    pub fn count_message(&self, bytes: usize) {
        self.inner.messages.fetch_add(1, Ordering::Relaxed);
        self.inner
            .message_bytes
            .fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Record one collective operation.
    pub fn count_collective(&self) {
        self.inner.collectives.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one disk request; `read` selects the byte counter.
    pub fn count_io(&self, bytes: usize, read: bool, seek: bool) {
        self.inner.io_requests.fetch_add(1, Ordering::Relaxed);
        if read {
            self.inner
                .io_bytes_read
                .fetch_add(bytes as u64, Ordering::Relaxed);
        } else {
            self.inner
                .io_bytes_written
                .fetch_add(bytes as u64, Ordering::Relaxed);
        }
        if seek {
            self.inner.seeks.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Record `n` metadata operations.
    pub fn count_metadata(&self, n: usize) {
        self.inner
            .metadata_ops
            .fetch_add(n as u64, Ordering::Relaxed);
    }

    /// Take a snapshot of all counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            messages: self.inner.messages.load(Ordering::Relaxed),
            message_bytes: self.inner.message_bytes.load(Ordering::Relaxed),
            collectives: self.inner.collectives.load(Ordering::Relaxed),
            io_requests: self.inner.io_requests.load(Ordering::Relaxed),
            io_bytes_read: self.inner.io_bytes_read.load(Ordering::Relaxed),
            io_bytes_written: self.inner.io_bytes_written.load(Ordering::Relaxed),
            seeks: self.inner.seeks.load(Ordering::Relaxed),
            metadata_ops: self.inner.metadata_ops.load(Ordering::Relaxed),
        }
    }

    /// Zero all counters.
    pub fn reset(&self) {
        self.inner.messages.store(0, Ordering::Relaxed);
        self.inner.message_bytes.store(0, Ordering::Relaxed);
        self.inner.collectives.store(0, Ordering::Relaxed);
        self.inner.io_requests.store(0, Ordering::Relaxed);
        self.inner.io_bytes_read.store(0, Ordering::Relaxed);
        self.inner.io_bytes_written.store(0, Ordering::Relaxed);
        self.inner.seeks.store(0, Ordering::Relaxed);
        self.inner.metadata_ops.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reset() {
        let s = SimStats::new();
        s.count_message(100);
        s.count_message(50);
        s.count_collective();
        s.count_io(4096, true, true);
        s.count_io(8192, false, false);
        s.count_metadata(3);

        let snap = s.snapshot();
        assert_eq!(snap.messages, 2);
        assert_eq!(snap.message_bytes, 150);
        assert_eq!(snap.collectives, 1);
        assert_eq!(snap.io_requests, 2);
        assert_eq!(snap.io_bytes_read, 4096);
        assert_eq!(snap.io_bytes_written, 8192);
        assert_eq!(snap.seeks, 1);
        assert_eq!(snap.metadata_ops, 3);

        s.reset();
        assert_eq!(s.snapshot(), StatsSnapshot::default());
    }

    #[test]
    fn clones_share_counters() {
        let s = SimStats::new();
        let s2 = s.clone();
        s2.count_collective();
        assert_eq!(s.snapshot().collectives, 1);
    }
}
