//! Interconnect cost model: the classic α–β (latency–bandwidth) model.
//!
//! Point-to-point transfer of `n` bytes costs `α + n/β`. Collectives are
//! charged with the standard tree/pipeline estimates used in MPI performance
//! modelling; we do not model contention on the switch fabric (both SP-2
//! testbeds had full-bisection switches, and the paper itself notes the
//! interprocess-communication overhead is "negligible compared with the disk
//! I/O").

use crate::time::Time;

/// α–β interconnect parameters.
#[derive(Clone, Copy, Debug)]
pub struct NetworkModel {
    /// One-way message latency (α).
    pub latency: Time,
    /// Link bandwidth in bytes/second (β).
    pub bandwidth: f64,
}

impl NetworkModel {
    /// Cost of one point-to-point message of `bytes`.
    pub fn p2p(&self, bytes: usize) -> Time {
        self.latency + self.transfer(bytes)
    }

    /// Pure wire time of `bytes` (no latency term).
    pub fn transfer(&self, bytes: usize) -> Time {
        Time::from_secs_f64(bytes as f64 / self.bandwidth)
    }

    /// ceil(log2(p)), with log2(1) = 0 and log2(0) treated as 0.
    fn log2_ceil(p: usize) -> u64 {
        if p <= 1 {
            0
        } else {
            (usize::BITS - (p - 1).leading_zeros()) as u64
        }
    }

    /// Cost of a binomial-tree broadcast of `bytes` among `nprocs` ranks.
    pub fn bcast(&self, bytes: usize, nprocs: usize) -> Time {
        let rounds = Self::log2_ceil(nprocs);
        self.scaled_rounds(rounds, bytes)
    }

    /// Cost of a barrier among `nprocs` ranks (dissemination barrier).
    pub fn barrier(&self, nprocs: usize) -> Time {
        let rounds = Self::log2_ceil(nprocs);
        Time::from_nanos(self.latency.as_nanos() * rounds)
    }

    /// Cost of a reduction/allreduce of `bytes` among `nprocs` ranks.
    pub fn allreduce(&self, bytes: usize, nprocs: usize) -> Time {
        // Recursive doubling: log2(p) rounds, each moving the full payload.
        let rounds = Self::log2_ceil(nprocs);
        self.scaled_rounds(rounds, bytes)
    }

    /// Cost of an allgather where each rank contributes `bytes_per_rank`.
    pub fn allgather(&self, bytes_per_rank: usize, nprocs: usize) -> Time {
        // Ring allgather: (p-1) steps of one contribution each.
        let steps = nprocs.saturating_sub(1) as u64;
        Time::from_nanos(self.latency.as_nanos() * Self::log2_ceil(nprocs))
            + Time::from_secs_f64(steps as f64 * bytes_per_rank as f64 / self.bandwidth)
    }

    /// Cost of a (personalized) all-to-all where the busiest rank sends
    /// `max_send_bytes` and receives `max_recv_bytes` in total.
    ///
    /// This is the primitive used by the two-phase collective-I/O exchange;
    /// charging the busiest endpoint models the pipeline bottleneck.
    pub fn alltoallv(&self, max_send_bytes: usize, max_recv_bytes: usize, nprocs: usize) -> Time {
        let wire = max_send_bytes.max(max_recv_bytes);
        Time::from_nanos(self.latency.as_nanos() * Self::log2_ceil(nprocs)) + self.transfer(wire)
    }

    fn scaled_rounds(&self, rounds: u64, bytes: usize) -> Time {
        Time::from_nanos(self.latency.as_nanos() * rounds)
            + Time::from_secs_f64(rounds as f64 * bytes as f64 / self.bandwidth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net() -> NetworkModel {
        NetworkModel {
            latency: Time::from_micros(10),
            bandwidth: 1e8, // 100 MB/s
        }
    }

    #[test]
    fn p2p_is_latency_plus_wire() {
        let n = net();
        // 1 MB at 100 MB/s = 10 ms, plus 10 us latency.
        let t = n.p2p(1_000_000);
        assert_eq!(t, Time::from_micros(10) + Time::from_millis(10));
    }

    #[test]
    fn log2_ceil_cases() {
        assert_eq!(NetworkModel::log2_ceil(0), 0);
        assert_eq!(NetworkModel::log2_ceil(1), 0);
        assert_eq!(NetworkModel::log2_ceil(2), 1);
        assert_eq!(NetworkModel::log2_ceil(3), 2);
        assert_eq!(NetworkModel::log2_ceil(8), 3);
        assert_eq!(NetworkModel::log2_ceil(9), 4);
        assert_eq!(NetworkModel::log2_ceil(512), 9);
    }

    #[test]
    fn bcast_grows_with_procs() {
        let n = net();
        assert!(n.bcast(4096, 16) > n.bcast(4096, 2));
        assert_eq!(n.bcast(4096, 1), Time::ZERO);
    }

    #[test]
    fn barrier_is_latency_only() {
        let n = net();
        assert_eq!(n.barrier(8), Time::from_micros(30));
        assert_eq!(n.barrier(1), Time::ZERO);
    }

    #[test]
    fn alltoallv_charges_busiest_endpoint() {
        let n = net();
        let a = n.alltoallv(1000, 500, 4);
        let b = n.alltoallv(500, 1000, 4);
        assert_eq!(a, b);
        assert!(n.alltoallv(2000, 0, 4) > a);
    }
}
