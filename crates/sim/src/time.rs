//! Virtual time represented as integer nanoseconds.
//!
//! Integer nanoseconds keep clock arithmetic exact and `Ord`-comparable;
//! cost models compute in `f64` seconds and round to the nearest nanosecond
//! on conversion.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub};

/// A point in (or span of) virtual time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(u64);

impl Time {
    /// The zero instant (simulation start).
    pub const ZERO: Time = Time(0);

    /// Construct from whole nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Time {
        Time(ns)
    }

    /// Construct from whole microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Time {
        Time(us * 1_000)
    }

    /// Construct from whole milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Time {
        Time(ms * 1_000_000)
    }

    /// Construct from seconds expressed as `f64`.
    ///
    /// Negative or non-finite inputs are clamped to zero: cost models must
    /// never move a clock backwards.
    #[inline]
    pub fn from_secs_f64(secs: f64) -> Time {
        if !secs.is_finite() || secs <= 0.0 {
            return Time(0);
        }
        Time((secs * 1e9).round() as u64)
    }

    /// The raw nanosecond count.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This time as `f64` seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction (`self - other`, floored at zero).
    #[inline]
    pub fn saturating_sub(self, other: Time) -> Time {
        Time(self.0.saturating_sub(other.0))
    }

    /// The later of two instants.
    #[inline]
    pub fn max(self, other: Time) -> Time {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }
}

impl Add for Time {
    type Output = Time;
    #[inline]
    fn add(self, rhs: Time) -> Time {
        Time(self.0.checked_add(rhs.0).expect("virtual time overflow"))
    }
}

impl AddAssign for Time {
    #[inline]
    fn add_assign(&mut self, rhs: Time) {
        *self = *self + rhs;
    }
}

impl Sub for Time {
    type Output = Time;
    #[inline]
    fn sub(self, rhs: Time) -> Time {
        Time(self.0.checked_sub(rhs.0).expect("virtual time underflow"))
    }
}

impl Sum for Time {
    fn sum<I: Iterator<Item = Time>>(iter: I) -> Time {
        iter.fold(Time::ZERO, |a, b| a + b)
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.as_secs_f64();
        if s >= 1.0 {
            write!(f, "{s:.3}s")
        } else if s >= 1e-3 {
            write!(f, "{:.3}ms", s * 1e3)
        } else {
            write!(f, "{:.3}us", s * 1e6)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrips() {
        assert_eq!(Time::from_micros(5).as_nanos(), 5_000);
        assert_eq!(Time::from_millis(2).as_nanos(), 2_000_000);
        assert_eq!(Time::from_secs_f64(1.5).as_nanos(), 1_500_000_000);
        assert!((Time::from_nanos(250).as_secs_f64() - 2.5e-7).abs() < 1e-15);
    }

    #[test]
    fn negative_and_nan_seconds_clamp_to_zero() {
        assert_eq!(Time::from_secs_f64(-3.0), Time::ZERO);
        assert_eq!(Time::from_secs_f64(f64::NAN), Time::ZERO);
        assert_eq!(Time::from_secs_f64(f64::NEG_INFINITY), Time::ZERO);
    }

    #[test]
    fn arithmetic() {
        let a = Time::from_nanos(10);
        let b = Time::from_nanos(4);
        assert_eq!(a + b, Time::from_nanos(14));
        assert_eq!(a - b, Time::from_nanos(6));
        assert_eq!(b.saturating_sub(a), Time::ZERO);
        assert_eq!(a.max(b), a);
        let total: Time = [a, b, b].into_iter().sum();
        assert_eq!(total, Time::from_nanos(18));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = Time::from_nanos(1) - Time::from_nanos(2);
    }

    #[test]
    fn display_chooses_unit() {
        assert_eq!(format!("{}", Time::from_secs_f64(2.0)), "2.000s");
        assert_eq!(format!("{}", Time::from_millis(12)), "12.000ms");
        assert_eq!(format!("{}", Time::from_micros(7)), "7.000us");
    }
}
