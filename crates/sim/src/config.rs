//! Simulation configuration: one struct bundling the platform cost models.
//!
//! Two presets mirror the two testbeds of the paper's Section 5:
//!
//! * [`SimConfig::sdsc_blue_horizon`] — the teraflop SP at SDSC used for the
//!   scalability analysis (Figure 6): 12 I/O nodes running GPFS, 1.5 GB/s
//!   peak aggregate I/O bandwidth.
//! * [`SimConfig::asci_frost`] — ASCI White Frost used for the FLASH I/O
//!   comparison (Figure 7): a much smaller 2-node GPFS I/O system.
//!
//! The individual constants are first-order estimates for Power3-era hardware
//! (they only need to produce the right *relative* behaviour), and every knob
//! can be overridden through [`SimConfigBuilder`] for ablation studies.

use crate::cpu::CpuModel;
use crate::disk::DiskModel;
use crate::fault::FaultPlan;
use crate::network::NetworkModel;
use crate::service::ServiceModel;
use crate::time::Time;
use pnetcdf_trace::{Profile, TraceLog};

/// Default bounded admission queue depth of one I/O server (see
/// [`crate::service`]); overridable per file with `pnc_server_queue_depth`.
pub const DEFAULT_SERVER_QUEUE_DEPTH: usize = 4;

/// Complete description of a simulated platform.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Interconnect between compute nodes (message passing).
    pub network: NetworkModel,
    /// Disk behaviour of one I/O server.
    pub disk: DiskModel,
    /// The NIC of one I/O server: the other half of the dual-resource
    /// service engine. While the disk streams request *k*, this NIC can
    /// already be receiving request *k+1*.
    pub server_nic: NetworkModel,
    /// Bounded server admission queue depth (writes past the NIC awaiting
    /// the disk); `0` = unbounded.
    pub server_queue_depth: usize,
    /// CPU costs for in-memory data movement.
    pub cpu: CpuModel,
    /// Number of I/O server nodes the parallel file system stripes across.
    pub io_servers: usize,
    /// File system stripe unit in bytes.
    pub stripe_size: usize,
    /// Bandwidth of one compute client's link into the storage network,
    /// bytes/second. This is what bounds a *single* process performing all
    /// the I/O (the serialized baseline of Figure 2(a)).
    pub client_link_bw: f64,
    /// One-way latency between a client and an I/O server.
    pub client_link_latency: Time,
    /// Shared profiling sink. Cloning a `SimConfig` clones the handle, not
    /// the counters, so the MPI runtime, the MPI-IO layer and the file
    /// system servers built from one config all record into the same
    /// profile. Disabled (and essentially free) by default.
    pub profile: Profile,
    /// Shared per-request span recorder (same handle semantics as
    /// `profile`): every layer records sim-clock-stamped spans into the
    /// same log, linked across layers by trace ids. Off by default —
    /// enabled per file via the `pnc_trace_events` hint or directly with
    /// `events.set_enabled(true)`.
    pub events: TraceLog,
    /// Fault-injection plan applied by the PFS servers; inert by default.
    pub faults: FaultPlan,
}

impl SimConfig {
    /// SDSC Blue Horizon preset (Figure 6 platform).
    ///
    /// 12 I/O nodes, ~1.5 GB/s peak aggregate: each server streams at
    /// 125 MB/s. A single Power3 client pushing through one NIC manages on
    /// the order of 100 MB/s, which bounds the serial-netCDF column.
    pub fn sdsc_blue_horizon() -> SimConfig {
        SimConfig {
            network: NetworkModel {
                latency: Time::from_micros(20),
                bandwidth: 350e6,
            },
            disk: DiskModel {
                per_request: Time::from_micros(300),
                seek: Time::from_millis(4),
                bandwidth: 125e6,
            },
            server_nic: NetworkModel {
                latency: Time::from_micros(20),
                bandwidth: 250e6,
            },
            server_queue_depth: DEFAULT_SERVER_QUEUE_DEPTH,
            cpu: CpuModel {
                copy_per_byte_ns: 0.35,
                metadata_op: Time::from_micros(50),
            },
            io_servers: 12,
            stripe_size: 256 * 1024,
            client_link_bw: 110e6,
            client_link_latency: Time::from_micros(30),
            profile: Profile::new(),
            events: TraceLog::new(),
            faults: FaultPlan::default(),
        }
    }

    /// ASCI White Frost preset (Figure 7 platform).
    ///
    /// Frost's GPFS ran on only 2 I/O nodes, which is why the paper's FLASH
    /// aggregate bandwidths top out around 60–110 MB/s.
    pub fn asci_frost() -> SimConfig {
        SimConfig {
            network: NetworkModel {
                latency: Time::from_micros(25),
                bandwidth: 300e6,
            },
            disk: DiskModel {
                per_request: Time::from_micros(400),
                seek: Time::from_millis(5),
                bandwidth: 60e6,
            },
            server_nic: NetworkModel {
                latency: Time::from_micros(25),
                bandwidth: 150e6,
            },
            server_queue_depth: DEFAULT_SERVER_QUEUE_DEPTH,
            cpu: CpuModel {
                copy_per_byte_ns: 0.4,
                metadata_op: Time::from_micros(60),
            },
            io_servers: 2,
            stripe_size: 256 * 1024,
            client_link_bw: 90e6,
            client_link_latency: Time::from_micros(35),
            profile: Profile::new(),
            events: TraceLog::new(),
            faults: FaultPlan::default(),
        }
    }

    /// A tiny, fast preset for unit tests: small stripes so striping logic is
    /// exercised even by kilobyte-sized files.
    pub fn test_small() -> SimConfig {
        SimConfig {
            network: NetworkModel {
                latency: Time::from_micros(10),
                bandwidth: 1e9,
            },
            disk: DiskModel {
                per_request: Time::from_micros(100),
                seek: Time::from_millis(1),
                bandwidth: 200e6,
            },
            server_nic: NetworkModel {
                latency: Time::from_micros(10),
                bandwidth: 400e6,
            },
            server_queue_depth: DEFAULT_SERVER_QUEUE_DEPTH,
            cpu: CpuModel {
                copy_per_byte_ns: 0.2,
                metadata_op: Time::from_micros(10),
            },
            io_servers: 4,
            stripe_size: 1024,
            client_link_bw: 400e6,
            client_link_latency: Time::from_micros(10),
            profile: Profile::new(),
            events: TraceLog::new(),
            faults: FaultPlan::default(),
        }
    }

    /// Start building a modified copy of this configuration.
    pub fn builder(self) -> SimConfigBuilder {
        SimConfigBuilder { cfg: self }
    }

    /// Peak aggregate disk bandwidth of the whole I/O subsystem, bytes/s.
    pub fn peak_aggregate_bw(&self) -> f64 {
        self.disk.bandwidth * self.io_servers as f64
    }

    /// The dual-resource service model of one I/O server.
    pub fn service_model(&self) -> ServiceModel {
        ServiceModel {
            nic: self.server_nic,
            queue_depth: self.server_queue_depth,
        }
    }
}

/// Fluent overrides on top of a preset, used by the ablation benchmarks.
#[derive(Clone, Debug)]
pub struct SimConfigBuilder {
    cfg: SimConfig,
}

impl SimConfigBuilder {
    /// Override the number of I/O servers.
    pub fn io_servers(mut self, n: usize) -> Self {
        assert!(n > 0, "at least one I/O server is required");
        self.cfg.io_servers = n;
        self
    }

    /// Override the stripe unit (bytes).
    pub fn stripe_size(mut self, bytes: usize) -> Self {
        assert!(bytes > 0, "stripe size must be nonzero");
        self.cfg.stripe_size = bytes;
        self
    }

    /// Override per-server disk streaming bandwidth (bytes/s).
    pub fn disk_bandwidth(mut self, bw: f64) -> Self {
        self.cfg.disk.bandwidth = bw;
        self
    }

    /// Override the client NIC bandwidth (bytes/s).
    pub fn client_link_bw(mut self, bw: f64) -> Self {
        self.cfg.client_link_bw = bw;
        self
    }

    /// Override the interconnect model.
    pub fn network(mut self, network: NetworkModel) -> Self {
        self.cfg.network = network;
        self
    }

    /// Override the server-side NIC model.
    pub fn server_nic(mut self, nic: NetworkModel) -> Self {
        self.cfg.server_nic = nic;
        self
    }

    /// Override the server admission queue depth (`0` = unbounded).
    pub fn server_queue_depth(mut self, depth: usize) -> Self {
        self.cfg.server_queue_depth = depth;
        self
    }

    /// Install a fault-injection plan.
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.cfg.faults = plan;
        self
    }

    /// Finish building.
    pub fn build(self) -> SimConfig {
        self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_sane() {
        let sdsc = SimConfig::sdsc_blue_horizon();
        assert_eq!(sdsc.io_servers, 12);
        // 12 * 125 MB/s = 1.5 GB/s, the paper's stated peak.
        assert!((sdsc.peak_aggregate_bw() - 1.5e9).abs() < 1e6);

        let frost = SimConfig::asci_frost();
        assert_eq!(frost.io_servers, 2);
        assert!(frost.peak_aggregate_bw() < sdsc.peak_aggregate_bw());
        // Every preset's server NIC outruns its disk, so the NIC stage can
        // hide behind the disk stage rather than become the new bottleneck.
        for cfg in [&sdsc, &frost, &SimConfig::test_small()] {
            assert!(cfg.server_nic.bandwidth >= 2.0 * cfg.disk.bandwidth);
            assert!(cfg.server_queue_depth > 0);
        }
    }

    #[test]
    fn builder_overrides() {
        let cfg = SimConfig::test_small()
            .builder()
            .io_servers(7)
            .stripe_size(4096)
            .disk_bandwidth(1e6)
            .client_link_bw(2e6)
            .build();
        assert_eq!(cfg.io_servers, 7);
        assert_eq!(cfg.stripe_size, 4096);
        assert_eq!(cfg.disk.bandwidth, 1e6);
        assert_eq!(cfg.client_link_bw, 2e6);
    }

    #[test]
    #[should_panic(expected = "at least one I/O server")]
    fn zero_servers_rejected() {
        let _ = SimConfig::test_small().builder().io_servers(0);
    }
}
