//! Dual-resource service engine for one I/O server: a NIC stage and a disk
//! stage connected by a bounded request queue.
//!
//! The old server model charged NIC receive, positioning and streaming as a
//! single fused resource (`next_free`), so nothing overlapped *inside* a
//! server and the client-side pipelined two-phase engine had nothing to
//! hide behind. This engine models the ViPIOS-style I/O-server
//! architecture: while the disk services request `k`, the NIC can already
//! be receiving request `k+1`. Admission is bounded by `queue_depth` — a
//! request may not enter the NIC stage while that many earlier writes are
//! still waiting for the disk — which is the backpressure that keeps an
//! aggressive client from buffering unbounded data at the server.
//!
//! Writes flow NIC → disk: the *handoff* point (NIC done, server owns the
//! bytes) and the *durable* point (disk done) are reported separately so
//! clients may acknowledge at handoff and drain at the end. Reads flow
//! disk → NIC (the payload must come off the platter before it can be
//! shipped back) and complete at the NIC stage.

use std::collections::VecDeque;

use crate::network::NetworkModel;
use crate::time::Time;

/// Parameters of one server's service engine.
#[derive(Clone, Copy, Debug)]
pub struct ServiceModel {
    /// The server-side NIC: receives write payloads, ships read payloads.
    pub nic: NetworkModel,
    /// Bounded admission queue depth (writes in flight past the NIC that
    /// the disk has not retired). `0` = unbounded.
    pub queue_depth: usize,
}

impl ServiceModel {
    /// A pass-through model: infinitely fast NIC, unbounded queue. With
    /// this model the engine degenerates to the old single-resource server
    /// (every request costs exactly its disk time), which is what the bare
    /// [`crate::SimConfig`]-less constructors use.
    pub fn passthrough() -> ServiceModel {
        ServiceModel {
            nic: NetworkModel {
                latency: Time::ZERO,
                bandwidth: f64::INFINITY,
            },
            queue_depth: 0,
        }
    }
}

/// Per-request stage breakdown returned by the engine.
#[derive(Clone, Copy, Debug, Default)]
pub struct StageTiming {
    /// When the request reached the server.
    pub arrival: Time,
    /// When it was admitted past the bounded queue (`>= arrival`).
    pub admit: Time,
    /// NIC stage interval.
    pub nic_start: Time,
    pub nic_done: Time,
    /// Disk stage interval.
    pub disk_start: Time,
    pub disk_done: Time,
    /// `admit - arrival`: time stalled at the full admission queue.
    pub queue_stall: Time,
    /// Disk busy time (from earlier requests) that overlapped this
    /// request's NIC transfer — the saving the dual-resource split buys.
    pub overlap: Time,
    /// Queue depth observed at admission (this request included).
    pub depth: usize,
    /// Portion of this request's wait time (queue stall, NIC wait, disk
    /// wait) spent behind occupants carrying a *different* tag — on a
    /// shared cluster, stalls attributable to other files' traffic.
    pub cross_stall: Time,
}

/// Timing state of one server's two service stages.
#[derive(Clone, Debug)]
pub struct ServiceEngine {
    model: ServiceModel,
    /// When the NIC finishes its current transfer.
    nic_free: Time,
    /// When the disk finishes its current request.
    disk_free: Time,
    /// Disk completion times of admitted writes not yet retired, with the
    /// tag (file id) of the request that produced each.
    inflight: VecDeque<(Time, u64)>,
    /// Recent disk busy intervals, for overlap accounting. Pruned against
    /// the (monotone) NIC start time.
    disk_busy: VecDeque<(Time, Time)>,
    /// Tag of the request that last occupied the NIC / disk stage, for
    /// cross-file wait attribution. `None` until the first request.
    nic_last: Option<u64>,
    disk_last: Option<u64>,
    /// Cumulative stage counters.
    pub nic_busy_total: Time,
    pub disk_busy_total: Time,
    pub overlap_total: Time,
    pub queue_stall_total: Time,
    pub cross_stall_total: Time,
    pub max_depth: usize,
}

impl ServiceEngine {
    pub fn new(model: ServiceModel) -> ServiceEngine {
        ServiceEngine {
            model,
            nic_free: Time::ZERO,
            disk_free: Time::ZERO,
            inflight: VecDeque::new(),
            disk_busy: VecDeque::new(),
            nic_last: None,
            disk_last: None,
            nic_busy_total: Time::ZERO,
            disk_busy_total: Time::ZERO,
            overlap_total: Time::ZERO,
            queue_stall_total: Time::ZERO,
            cross_stall_total: Time::ZERO,
            max_depth: 0,
        }
    }

    /// The configured model.
    pub fn model(&self) -> ServiceModel {
        self.model
    }

    /// Override the admission queue depth (`pnc_server_queue_depth`).
    pub fn set_queue_depth(&mut self, depth: usize) {
        self.model.queue_depth = depth;
    }

    /// Admit a request: drain retired writes, then wait for the oldest
    /// in-flight write when the queue is full. Returns the admit time and
    /// the tag of the blocking in-flight write, if the request had to wait.
    fn admit(&mut self, arrival: Time) -> (Time, Option<u64>) {
        let mut admit = arrival;
        let mut blocker = None;
        while self.inflight.front().is_some_and(|&(d, _)| d <= admit) {
            self.inflight.pop_front();
        }
        if self.model.queue_depth > 0 && self.inflight.len() >= self.model.queue_depth {
            let (done, tag) = self.inflight.pop_front().expect("queue_depth > 0");
            admit = done;
            blocker = Some(tag);
            while self.inflight.front().is_some_and(|&(d, _)| d <= admit) {
                self.inflight.pop_front();
            }
        }
        (admit, blocker)
    }

    /// Disk busy time overlapping `[lo, hi)`, pruning intervals that can
    /// never overlap again (NIC starts are monotone).
    fn overlap_with(&mut self, lo: Time, hi: Time) -> Time {
        while self.disk_busy.front().is_some_and(|&(_, e)| e <= lo) {
            self.disk_busy.pop_front();
        }
        let mut acc = Time::ZERO;
        for &(s, e) in &self.disk_busy {
            if s >= hi {
                break;
            }
            let from = s.max(lo);
            let to = e.min(hi);
            if to > from {
                acc += to - from;
            }
        }
        acc
    }

    fn tally(&mut self, t: &StageTiming) {
        self.nic_busy_total += t.nic_done - t.nic_start;
        self.disk_busy_total += t.disk_done - t.disk_start;
        self.overlap_total += t.overlap;
        self.queue_stall_total += t.queue_stall;
        self.cross_stall_total += t.cross_stall;
        self.max_depth = self.max_depth.max(t.depth);
    }

    /// Service a write of `bytes` whose disk stage costs `disk_time`
    /// (positioning, streaming and any fault penalties, computed by the
    /// caller). The NIC receives the payload first; the disk stage follows.
    /// Untagged convenience wrapper over [`ServiceEngine::write_tagged`].
    pub fn write(&mut self, arrival: Time, bytes: usize, disk_time: Time) -> StageTiming {
        self.write_tagged(arrival, bytes, disk_time, 0)
    }

    /// Tagged write: identical timing to [`ServiceEngine::write`], but wait
    /// time spent behind occupants with a different `tag` (another file's
    /// traffic on a shared cluster) is attributed to `cross_stall`. The tag
    /// is pure accounting — it never changes the stage clocks.
    pub fn write_tagged(
        &mut self,
        arrival: Time,
        bytes: usize,
        disk_time: Time,
        tag: u64,
    ) -> StageTiming {
        let (admit, blocker) = self.admit(arrival);
        let depth = self.inflight.len() + 1;
        let nic_start = self.nic_free.max(admit);
        let nic_done = nic_start + self.model.nic.p2p(bytes);
        let nic_wait = nic_start - admit;
        self.nic_free = nic_done;
        let disk_start = self.disk_free.max(nic_done);
        let disk_done = disk_start + disk_time;
        let disk_wait = disk_start - nic_done;
        self.disk_free = disk_done;
        self.inflight.push_back((disk_done, tag));
        let overlap = self.overlap_with(nic_start, nic_done);
        self.disk_busy.push_back((disk_start, disk_done));
        let mut cross_stall = Time::ZERO;
        if admit > arrival && blocker.is_some() && blocker != Some(tag) {
            cross_stall += admit - arrival;
        }
        if nic_wait > Time::ZERO && self.nic_last.is_some() && self.nic_last != Some(tag) {
            cross_stall += nic_wait;
        }
        if disk_wait > Time::ZERO && self.disk_last.is_some() && self.disk_last != Some(tag) {
            cross_stall += disk_wait;
        }
        self.nic_last = Some(tag);
        self.disk_last = Some(tag);
        let t = StageTiming {
            arrival,
            admit,
            nic_start,
            nic_done,
            disk_start,
            disk_done,
            queue_stall: admit - arrival,
            overlap,
            depth,
            cross_stall,
        };
        self.tally(&t);
        t
    }

    /// Service a read of `bytes` whose disk stage costs `disk_time`. The
    /// disk runs first, then the NIC ships the payload back; reads are
    /// synchronous (the client waits), so they bypass the admission queue.
    /// Untagged convenience wrapper over [`ServiceEngine::read_tagged`].
    pub fn read(&mut self, arrival: Time, bytes: usize, disk_time: Time) -> StageTiming {
        self.read_tagged(arrival, bytes, disk_time, 0)
    }

    /// Tagged read: identical timing to [`ServiceEngine::read`], with
    /// cross-file wait attribution as in [`ServiceEngine::write_tagged`].
    pub fn read_tagged(
        &mut self,
        arrival: Time,
        bytes: usize,
        disk_time: Time,
        tag: u64,
    ) -> StageTiming {
        let disk_start = self.disk_free.max(arrival);
        let disk_done = disk_start + disk_time;
        let disk_wait = disk_start - arrival;
        self.disk_free = disk_done;
        let nic_start = self.nic_free.max(disk_done);
        let nic_done = nic_start + self.model.nic.p2p(bytes);
        let nic_wait = nic_start - disk_done;
        self.nic_free = nic_done;
        self.disk_busy.push_back((disk_start, disk_done));
        let overlap = self.overlap_with(nic_start, nic_done);
        let mut cross_stall = Time::ZERO;
        if disk_wait > Time::ZERO && self.disk_last.is_some() && self.disk_last != Some(tag) {
            cross_stall += disk_wait;
        }
        if nic_wait > Time::ZERO && self.nic_last.is_some() && self.nic_last != Some(tag) {
            cross_stall += nic_wait;
        }
        self.disk_last = Some(tag);
        self.nic_last = Some(tag);
        let t = StageTiming {
            arrival,
            admit: arrival,
            nic_start,
            nic_done,
            disk_start,
            disk_done,
            queue_stall: Time::ZERO,
            overlap,
            depth: self.inflight.len(),
            cross_stall,
        };
        self.tally(&t);
        t
    }

    /// Reset both stage clocks and the queue (benchmark phases), keeping
    /// the model and the cumulative counters.
    pub fn reset(&mut self) {
        self.nic_free = Time::ZERO;
        self.disk_free = Time::ZERO;
        self.inflight.clear();
        self.disk_busy.clear();
        self.nic_last = None;
        self.disk_last = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine(depth: usize) -> ServiceEngine {
        ServiceEngine::new(ServiceModel {
            nic: NetworkModel {
                latency: Time::from_micros(10),
                bandwidth: 200e6,
            },
            queue_depth: depth,
        })
    }

    #[test]
    fn passthrough_degenerates_to_disk_only() {
        let mut e = ServiceEngine::new(ServiceModel::passthrough());
        let d = Time::from_millis(3);
        let a = e.write(Time::ZERO, 1 << 20, d);
        assert_eq!(a.nic_done, Time::ZERO);
        assert_eq!(a.disk_done, d);
        let b = e.write(Time::ZERO, 1 << 20, d);
        assert_eq!(b.disk_done, d + d, "second request queues at the disk");
    }

    #[test]
    fn nic_receives_next_while_disk_writes_previous() {
        let mut e = engine(4);
        let nic_t = e.model().nic.p2p(1 << 20);
        let disk_t = Time::from_millis(20); // disk much slower than NIC
        let a = e.write(Time::ZERO, 1 << 20, disk_t);
        let b = e.write(Time::ZERO, 1 << 20, disk_t);
        // b's NIC transfer ran strictly inside a's disk interval.
        assert!(b.nic_done <= a.disk_done);
        assert!(b.overlap > Time::ZERO, "overlap must be recorded");
        // The disk pipeline never idles: two requests take nic + 2*disk.
        assert_eq!(b.disk_done, a.nic_done + disk_t + disk_t);
        assert_eq!(a.nic_done, nic_t);
    }

    #[test]
    fn bounded_queue_stalls_admission() {
        let mut e = engine(1);
        let disk_t = Time::from_millis(5);
        let a = e.write(Time::ZERO, 1024, disk_t);
        let b = e.write(Time::ZERO, 1024, disk_t);
        // Depth 1: b may not enter the NIC until a is durable.
        assert!(b.admit >= a.disk_done);
        assert_eq!(b.queue_stall, a.disk_done);
        assert!(e.queue_stall_total > Time::ZERO);
        assert_eq!(e.max_depth, 1);
    }

    #[test]
    fn reads_ship_after_disk() {
        let mut e = engine(4);
        let disk_t = Time::from_millis(2);
        let r = e.read(Time::from_millis(1), 4096, disk_t);
        assert_eq!(r.disk_start, Time::from_millis(1));
        assert!(r.nic_start >= r.disk_done);
        assert_eq!(r.nic_done, r.disk_done + e.model().nic.p2p(4096));
    }

    #[test]
    fn cross_stall_attributed_to_other_tags_only() {
        let disk_t = Time::from_millis(5);
        // Same tag back to back: waiting behind your own file is not
        // cross-file contention.
        let mut same = engine(4);
        same.write_tagged(Time::ZERO, 4096, disk_t, 7);
        let b = same.write_tagged(Time::ZERO, 4096, disk_t, 7);
        assert!(b.disk_start > b.nic_done, "second write waits for the disk");
        assert_eq!(b.cross_stall, Time::ZERO);
        assert_eq!(same.cross_stall_total, Time::ZERO);
        // Different tags: the same waits are attributed cross-file, and the
        // stage clocks are identical to the same-tag run.
        let mut diff = engine(4);
        diff.write_tagged(Time::ZERO, 4096, disk_t, 7);
        let c = diff.write_tagged(Time::ZERO, 4096, disk_t, 8);
        assert_eq!(c.disk_done, b.disk_done, "tags never change timing");
        assert_eq!(
            c.cross_stall,
            (c.nic_start - c.admit) + (c.disk_start - c.nic_done)
        );
        assert!(diff.cross_stall_total > Time::ZERO);
    }

    #[test]
    fn cross_stall_on_queue_blocker_and_reads() {
        let disk_t = Time::from_millis(5);
        let mut e = engine(1);
        e.write_tagged(Time::ZERO, 1024, disk_t, 1);
        let b = e.write_tagged(Time::ZERO, 1024, disk_t, 2);
        assert!(b.queue_stall > Time::ZERO);
        assert!(b.cross_stall >= b.queue_stall, "queue blocker was file 1");
        let r = e.read_tagged(Time::ZERO, 1024, disk_t, 3);
        assert!(r.cross_stall > Time::ZERO, "read waited behind file 2");
    }

    #[test]
    fn reset_clears_clocks_keeps_counters() {
        let mut e = engine(2);
        e.write(Time::ZERO, 4096, Time::from_millis(1));
        let busy = e.disk_busy_total;
        assert!(busy > Time::ZERO);
        e.reset();
        let a = e.write(Time::ZERO, 4096, Time::from_millis(1));
        assert_eq!(a.nic_start, Time::ZERO);
        assert!(e.disk_busy_total > busy, "counters survive reset");
    }
}
