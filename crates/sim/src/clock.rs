//! Per-rank virtual clocks with collective synchronization.
//!
//! Every simulated MPI rank owns one slot. Blocking operations advance the
//! owning rank's clock; a collective operation synchronizes the clocks of all
//! participants to their maximum (everyone waits for the slowest) before the
//! collective's own cost is added. The structure is shared between the MPI
//! layer (communication costs) and the MPI-IO/PFS layers (I/O costs).

use parking_lot::Mutex;
use std::sync::Arc;

use crate::time::Time;

/// Shared array of per-rank virtual clocks.
#[derive(Clone)]
pub struct SharedClocks {
    inner: Arc<Mutex<Vec<Time>>>,
}

impl SharedClocks {
    /// Create clocks for `nprocs` ranks, all at `Time::ZERO`.
    pub fn new(nprocs: usize) -> SharedClocks {
        SharedClocks {
            inner: Arc::new(Mutex::new(vec![Time::ZERO; nprocs])),
        }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// True if there are no ranks (never the case in a real world).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current virtual time of `rank`.
    pub fn now(&self, rank: usize) -> Time {
        self.inner.lock()[rank]
    }

    /// Advance `rank`'s clock by `dt` and return the new time.
    pub fn advance(&self, rank: usize, dt: Time) -> Time {
        let mut g = self.inner.lock();
        g[rank] += dt;
        g[rank]
    }

    /// Move `rank`'s clock forward to `t` if `t` is later (never backwards).
    pub fn advance_to(&self, rank: usize, t: Time) -> Time {
        let mut g = self.inner.lock();
        g[rank] = g[rank].max(t);
        g[rank]
    }

    /// Synchronize the given ranks to `max(clock) + extra`, returning the
    /// resulting common time. This is the clock effect of a collective.
    pub fn sync_max(&self, ranks: &[usize], extra: Time) -> Time {
        let mut g = self.inner.lock();
        let mut m = Time::ZERO;
        for &r in ranks {
            m = m.max(g[r]);
        }
        let t = m + extra;
        for &r in ranks {
            g[r] = t;
        }
        t
    }

    /// Maximum clock over all ranks — the virtual makespan of the run.
    pub fn makespan(&self) -> Time {
        self.inner
            .lock()
            .iter()
            .copied()
            .fold(Time::ZERO, Time::max)
    }

    /// Reset every clock to zero (used between benchmark phases).
    pub fn reset(&self) {
        for t in self.inner.lock().iter_mut() {
            *t = Time::ZERO;
        }
    }

    /// Snapshot of all clocks.
    pub fn snapshot(&self) -> Vec<Time> {
        self.inner.lock().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advance_and_now() {
        let c = SharedClocks::new(3);
        assert_eq!(c.now(1), Time::ZERO);
        c.advance(1, Time::from_micros(5));
        assert_eq!(c.now(1), Time::from_micros(5));
        assert_eq!(c.now(0), Time::ZERO);
    }

    #[test]
    fn advance_to_never_goes_backwards() {
        let c = SharedClocks::new(1);
        c.advance(0, Time::from_millis(10));
        c.advance_to(0, Time::from_millis(5));
        assert_eq!(c.now(0), Time::from_millis(10));
        c.advance_to(0, Time::from_millis(20));
        assert_eq!(c.now(0), Time::from_millis(20));
    }

    #[test]
    fn sync_max_aligns_participants() {
        let c = SharedClocks::new(4);
        c.advance(0, Time::from_millis(1));
        c.advance(2, Time::from_millis(7));
        let t = c.sync_max(&[0, 1, 2], Time::from_micros(100));
        assert_eq!(t, Time::from_millis(7) + Time::from_micros(100));
        assert_eq!(c.now(0), t);
        assert_eq!(c.now(1), t);
        assert_eq!(c.now(2), t);
        // Rank 3 did not participate.
        assert_eq!(c.now(3), Time::ZERO);
    }

    #[test]
    fn makespan_and_reset() {
        let c = SharedClocks::new(2);
        c.advance(1, Time::from_millis(3));
        assert_eq!(c.makespan(), Time::from_millis(3));
        c.reset();
        assert_eq!(c.makespan(), Time::ZERO);
    }
}
