//! CPU cost model for in-memory data movement.
//!
//! Virtual time must account for CPU work that differs *between the systems
//! being compared*, not for all CPU work. The paper attributes part of
//! HDF5's deficit to "recursive handling of the hyperslab ... which makes
//! the packing of the hyperslabs into contiguous buffers take a relatively
//! long time"; PnetCDF's flat datatype flattening is cheaper. Both libraries
//! therefore charge their packing work through this model, with multipliers
//! chosen by the caller.

use crate::time::Time;

/// CPU cost parameters of one compute node.
#[derive(Clone, Copy, Debug)]
pub struct CpuModel {
    /// Cost of copying one byte during pack/unpack, in nanoseconds
    /// (Power3-era memcpy of noncontiguous data: a fraction of a ns/byte).
    pub copy_per_byte_ns: f64,
    /// Fixed cost of one metadata operation (header encode/decode, object
    /// lookup, hash of a name, ...).
    pub metadata_op: Time,
}

impl CpuModel {
    /// Cost of packing/unpacking `bytes` bytes with an overhead `multiplier`
    /// (1.0 = straight memcpy; recursive element-wise packing uses more).
    pub fn pack(&self, bytes: usize, multiplier: f64) -> Time {
        Time::from_secs_f64(bytes as f64 * self.copy_per_byte_ns * multiplier * 1e-9)
    }

    /// Cost of `n` metadata operations.
    pub fn metadata_ops(&self, n: usize) -> Time {
        Time::from_nanos(self.metadata_op.as_nanos() * n as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_scales_linearly() {
        let c = CpuModel {
            copy_per_byte_ns: 0.5,
            metadata_op: Time::from_micros(10),
        };
        assert_eq!(c.pack(1000, 1.0), Time::from_nanos(500));
        assert_eq!(c.pack(1000, 4.0), Time::from_nanos(2000));
        assert_eq!(c.pack(0, 4.0), Time::ZERO);
    }

    #[test]
    fn metadata_ops_scale() {
        let c = CpuModel {
            copy_per_byte_ns: 0.5,
            metadata_op: Time::from_micros(10),
        };
        assert_eq!(c.metadata_ops(3), Time::from_micros(30));
        assert_eq!(c.metadata_ops(0), Time::ZERO);
    }
}
