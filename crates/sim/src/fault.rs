//! Deterministic, seeded fault injection for the simulated PFS.
//!
//! The paper's platforms (GPFS on 12 and 2 I/O nodes) routinely see
//! transient server errors, short reads/writes, and stalled disks at scale;
//! the ADIO layer underneath ROMIO is expected to hide them. A [`FaultPlan`]
//! describes which of these the simulated servers should produce and how
//! often. It rides inside [`crate::SimConfig`] so every layer built from
//! one config sees the same plan.
//!
//! Injection is a *pure function* of `(seed, server, op_counter)` — no
//! global RNG state — so a run with a given plan is exactly reproducible,
//! and independent of thread scheduling: each server draws from its own
//! operation counter, which is serialized under the server's mutex.
//!
//! Plans can be parsed from the `PNETCDF_FAULTS` environment spec, e.g.
//! `transient=0.01,short=0.02,stall=0.005,crash=server:3@t>1e6`.

use crate::time::Time;

/// A fault decision for one server operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Serve the request normally.
    None,
    /// Transient EIO: the request fails outright, a retry may succeed.
    Transient,
    /// Short I/O: only `bytes_done` of the request transfer.
    Short {
        /// Bytes actually transferred (strictly less than requested).
        bytes_done: u64,
    },
    /// The disk stalls for the given extra latency, then serves normally.
    Stall {
        /// Extra service latency charged to virtual time.
        delay: Time,
    },
    /// The server is crashed at this virtual time: nothing is served.
    Crashed,
}

/// A server crash window: server `server` is down from virtual time `at`
/// until `restart` (forever when `restart` is `None`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CrashSpec {
    /// Index of the crashed I/O server.
    pub server: usize,
    /// Virtual time at which the server goes down.
    pub at: Time,
    /// Virtual time at which it comes back, if ever.
    pub restart: Option<Time>,
}

/// Describes the faults the simulated PFS servers inject.
///
/// The default plan is inert: [`FaultPlan::is_active`] is `false` and every
/// decision is [`FaultKind::None`], so the fault-free stack pays nothing.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    /// Seed mixed into every per-operation decision.
    pub seed: u64,
    /// Probability of a transient EIO per server operation.
    pub transient: f64,
    /// Probability of a short read/write per server operation.
    pub short: f64,
    /// Probability of a latency stall per server operation.
    pub stall: f64,
    /// Extra latency of one stall.
    pub stall_time: Time,
    /// Server crash windows, in spec order. Windows may overlap or target
    /// the same server more than once (crash, restart, crash again).
    pub crashes: Vec<CrashSpec>,
}

impl Default for FaultPlan {
    fn default() -> FaultPlan {
        FaultPlan {
            seed: 0x5eed_facade,
            transient: 0.0,
            short: 0.0,
            stall: 0.0,
            stall_time: Time::from_micros(500),
            crashes: Vec::new(),
        }
    }
}

impl FaultPlan {
    /// Whether this plan can ever inject a fault.
    pub fn is_active(&self) -> bool {
        self.transient > 0.0 || self.short > 0.0 || self.stall > 0.0 || !self.crashes.is_empty()
    }

    /// Whether `server` is inside any crash window at virtual time `at`.
    pub fn is_down(&self, server: usize, at: Time) -> bool {
        self.crashes
            .iter()
            .any(|c| server == c.server && at >= c.at && c.restart.map(|r| at < r).unwrap_or(true))
    }

    /// Decide the fault (if any) for one server operation.
    ///
    /// * `server` — index of the serving I/O node;
    /// * `op` — that server's operation counter (monotonic per server);
    /// * `arrival` — virtual time the request reaches the server;
    /// * `bytes` — requested transfer size.
    ///
    /// Crash windows dominate probabilistic faults: a request arriving
    /// while the server is down is always [`FaultKind::Crashed`].
    pub fn decide(&self, server: usize, op: u64, arrival: Time, bytes: u64) -> FaultKind {
        if self.is_down(server, arrival) {
            return FaultKind::Crashed;
        }
        if self.transient <= 0.0 && self.short <= 0.0 && self.stall <= 0.0 {
            return FaultKind::None;
        }
        let u = unit_f64(mix(self.seed, server as u64, op));
        // Cumulative thresholds: [0,transient) → transient,
        // [transient, transient+short) → short, then stall, then none.
        if u < self.transient {
            return FaultKind::Transient;
        }
        if u < self.transient + self.short {
            // A second draw picks the completed fraction in [25%, 75%] of
            // the request, truncated down; a 0-byte "short" on a tiny
            // request degrades to a transient so forward progress below is
            // the recovery layer's job, not ours.
            let f = 0.25 + 0.5 * unit_f64(mix(self.seed ^ 0x9e37, server as u64, op));
            let done = (bytes as f64 * f) as u64;
            if done == 0 || done >= bytes {
                return FaultKind::Transient;
            }
            return FaultKind::Short { bytes_done: done };
        }
        if u < self.transient + self.short + self.stall {
            return FaultKind::Stall {
                delay: self.stall_time,
            };
        }
        FaultKind::None
    }

    /// Parse a `PNETCDF_FAULTS`-style spec.
    ///
    /// Comma-separated `key=value` pairs:
    ///
    /// * `transient=<p>` / `short=<p>` / `stall=<p>` — per-op probabilities;
    /// * `stall_us=<micros>` / `stall_ns=<nanos>` — stall latency
    ///   (default 500µs);
    /// * `seed=<u64>` — decision seed;
    /// * `crash=server:<idx>@t><nanos>` — crash server `idx` at the given
    ///   virtual nanosecond (scientific notation accepted, e.g. `t>1e6`);
    ///   may repeat, each occurrence opening a new crash window;
    /// * `restart=<nanos>` — bring the most recently crashed server back at
    ///   that time; binds to the preceding `crash=` item.
    pub fn from_spec(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        for item in spec.split(',').map(str::trim).filter(|s| !s.is_empty()) {
            let (key, value) = item
                .split_once('=')
                .ok_or_else(|| format!("fault spec item {item:?} is not key=value"))?;
            match key.trim() {
                "transient" => plan.transient = parse_prob(value)?,
                "short" => plan.short = parse_prob(value)?,
                "stall" => plan.stall = parse_prob(value)?,
                "stall_us" => {
                    plan.stall_time = Time::from_micros(parse_u64(value)?);
                }
                "stall_ns" => {
                    plan.stall_time = Time::from_nanos(parse_nanos(value)?);
                }
                "seed" => plan.seed = parse_u64(value)?,
                "crash" => {
                    let rest = value.strip_prefix("server:").ok_or_else(|| {
                        format!("crash spec {value:?} must look like server:<idx>@t><nanos>")
                    })?;
                    let (idx, at) = rest.split_once("@t>").ok_or_else(|| {
                        format!("crash spec {value:?} must look like server:<idx>@t><nanos>")
                    })?;
                    plan.crashes.push(CrashSpec {
                        server: parse_u64(idx)? as usize,
                        at: Time::from_nanos(parse_nanos(at)?),
                        restart: None,
                    });
                }
                "restart" => {
                    let r = Time::from_nanos(parse_nanos(value)?);
                    match plan.crashes.last_mut() {
                        Some(c) if c.restart.is_none() => c.restart = Some(r),
                        Some(_) => {
                            return Err("restart= repeated for the same crash= window".to_string());
                        }
                        None => return Err("restart= given without crash=".to_string()),
                    }
                }
                other => return Err(format!("unknown fault spec key {other:?}")),
            }
        }
        Ok(plan)
    }

    /// Plan from the `PNETCDF_FAULTS` environment variable; the inert
    /// default when unset. A malformed spec is an error — silently running
    /// fault-free when the operator asked for faults would be worse.
    pub fn from_env() -> Result<FaultPlan, String> {
        match std::env::var("PNETCDF_FAULTS") {
            Ok(spec) => FaultPlan::from_spec(&spec),
            Err(_) => Ok(FaultPlan::default()),
        }
    }
}

/// The canonical spec string: `FaultPlan::from_spec(&plan.to_string())`
/// reproduces `plan` exactly. Only non-default fields are emitted, in a
/// fixed order; times are plain nanoseconds (whole-microsecond stall
/// latencies use `stall_us`, anything finer falls back to `stall_ns`).
impl std::fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let d = FaultPlan::default();
        let mut parts: Vec<String> = Vec::new();
        if self.seed != d.seed {
            parts.push(format!("seed={}", self.seed));
        }
        if self.transient != d.transient {
            parts.push(format!("transient={}", self.transient));
        }
        if self.short != d.short {
            parts.push(format!("short={}", self.short));
        }
        if self.stall != d.stall {
            parts.push(format!("stall={}", self.stall));
        }
        if self.stall_time != d.stall_time {
            let ns = self.stall_time.as_nanos();
            if ns % 1000 == 0 {
                parts.push(format!("stall_us={}", ns / 1000));
            } else {
                parts.push(format!("stall_ns={ns}"));
            }
        }
        for c in &self.crashes {
            parts.push(format!("crash=server:{}@t>{}", c.server, c.at.as_nanos()));
            if let Some(r) = c.restart {
                parts.push(format!("restart={}", r.as_nanos()));
            }
        }
        write!(f, "{}", parts.join(","))
    }
}

fn parse_prob(s: &str) -> Result<f64, String> {
    let p: f64 = s
        .trim()
        .parse()
        .map_err(|_| format!("bad probability {s:?}"))?;
    if !(0.0..=1.0).contains(&p) {
        return Err(format!("probability {p} outside [0, 1]"));
    }
    Ok(p)
}

fn parse_u64(s: &str) -> Result<u64, String> {
    s.trim().parse().map_err(|_| format!("bad integer {s:?}"))
}

/// Nanoseconds, accepting plain integers or scientific notation (`1e6`).
fn parse_nanos(s: &str) -> Result<u64, String> {
    let s = s.trim();
    if let Ok(n) = s.parse::<u64>() {
        return Ok(n);
    }
    let f: f64 = s.parse().map_err(|_| format!("bad time {s:?}"))?;
    if f < 0.0 || !f.is_finite() {
        return Err(format!("bad time {s:?}"));
    }
    Ok(f as u64)
}

/// splitmix64 over the (seed, server, op) triple: a high-quality mix with
/// no state, so decisions are order-independent and reproducible.
fn mix(seed: u64, server: u64, op: u64) -> u64 {
    let mut z = seed
        .wrapping_add(server.wrapping_mul(0x9e3779b97f4a7c15))
        .wrapping_add(op.wrapping_mul(0xbf58476d1ce4e5b9));
    z = z.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Uniform f64 in [0, 1) from 53 random bits.
fn unit_f64(x: u64) -> f64 {
    (x >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_inert() {
        let plan = FaultPlan::default();
        assert!(!plan.is_active());
        for op in 0..1000 {
            assert_eq!(plan.decide(0, op, Time::ZERO, 4096), FaultKind::None);
        }
    }

    #[test]
    fn decisions_are_deterministic_and_rate_plausible() {
        let plan = FaultPlan {
            transient: 0.1,
            ..FaultPlan::default()
        };
        let mut faults = 0;
        for op in 0..10_000 {
            let d = plan.decide(1, op, Time::ZERO, 4096);
            assert_eq!(d, plan.decide(1, op, Time::ZERO, 4096));
            if d == FaultKind::Transient {
                faults += 1;
            }
        }
        // 10% ± generous slack on 10k draws.
        assert!((700..1300).contains(&faults), "rate off: {faults}");
    }

    #[test]
    fn short_faults_make_partial_progress() {
        let plan = FaultPlan {
            short: 1.0,
            ..FaultPlan::default()
        };
        for op in 0..100 {
            match plan.decide(0, op, Time::ZERO, 1000) {
                FaultKind::Short { bytes_done } => {
                    assert!(bytes_done > 0 && bytes_done < 1000);
                }
                FaultKind::Transient => {} // tiny-request degradation
                other => panic!("expected short fault, got {other:?}"),
            }
        }
    }

    #[test]
    fn crash_window_applies_to_one_server() {
        let plan = FaultPlan {
            crashes: vec![CrashSpec {
                server: 2,
                at: Time::from_nanos(100),
                restart: Some(Time::from_nanos(200)),
            }],
            ..FaultPlan::default()
        };
        assert!(plan.is_active());
        assert_eq!(plan.decide(2, 0, Time::from_nanos(50), 64), FaultKind::None);
        assert_eq!(
            plan.decide(2, 0, Time::from_nanos(150), 64),
            FaultKind::Crashed
        );
        assert_eq!(
            plan.decide(2, 0, Time::from_nanos(250), 64),
            FaultKind::None
        );
        assert_eq!(
            plan.decide(1, 0, Time::from_nanos(150), 64),
            FaultKind::None
        );
        assert!(plan.is_down(2, Time::from_nanos(100)));
        assert!(!plan.is_down(2, Time::from_nanos(200)));
        assert!(!plan.is_down(1, Time::from_nanos(150)));
    }

    #[test]
    fn multiple_crash_windows_cover_independent_spans() {
        let plan = FaultPlan::from_spec(
            "crash=server:1@t>100,restart=200,crash=server:1@t>400,restart=500,\
             crash=server:3@t>50",
        )
        .unwrap();
        assert_eq!(plan.crashes.len(), 3);
        // Server 1 is down in two disjoint windows.
        assert!(plan.is_down(1, Time::from_nanos(150)));
        assert!(!plan.is_down(1, Time::from_nanos(300)));
        assert!(plan.is_down(1, Time::from_nanos(450)));
        assert!(!plan.is_down(1, Time::from_nanos(600)));
        // Server 3 never restarts.
        assert!(plan.is_down(3, Time::from_nanos(1_000_000)));
        assert_eq!(
            plan.decide(1, 7, Time::from_nanos(450), 64),
            FaultKind::Crashed
        );
    }

    #[test]
    fn display_emits_canonical_spec_that_reparses() {
        let plan = FaultPlan {
            seed: 42,
            transient: 0.01,
            short: 0.5,
            stall: 0.125,
            stall_time: Time::from_nanos(1_234_567),
            crashes: vec![
                CrashSpec {
                    server: 3,
                    at: Time::from_nanos(1_000_000),
                    restart: Some(Time::from_nanos(2_000_000)),
                },
                CrashSpec {
                    server: 0,
                    at: Time::from_nanos(5),
                    restart: None,
                },
            ],
        };
        let spec = plan.to_string();
        assert_eq!(FaultPlan::from_spec(&spec).unwrap(), plan);
        // Default plan prints empty and reparses inert.
        assert_eq!(FaultPlan::default().to_string(), "");
        assert!(!FaultPlan::from_spec("").unwrap().is_active());
    }

    #[test]
    fn spec_round_trips_the_issue_example() {
        let plan =
            FaultPlan::from_spec("transient=0.01,short=0.02,stall=0.005,crash=server:3@t>1e6")
                .unwrap();
        assert_eq!(plan.transient, 0.01);
        assert_eq!(plan.short, 0.02);
        assert_eq!(plan.stall, 0.005);
        let c = plan.crashes[0];
        assert_eq!(c.server, 3);
        assert_eq!(c.at, Time::from_nanos(1_000_000));
        assert_eq!(c.restart, None);
    }

    #[test]
    fn spec_rejects_garbage() {
        assert!(FaultPlan::from_spec("transient=2.0").is_err());
        assert!(FaultPlan::from_spec("bogus=1").is_err());
        assert!(FaultPlan::from_spec("transient").is_err());
        assert!(FaultPlan::from_spec("crash=3").is_err());
        assert!(FaultPlan::from_spec("restart=5").is_err());
        // A second restart for the same window is an error, not a silent
        // overwrite.
        assert!(FaultPlan::from_spec("crash=server:0@t>1,restart=2,restart=3").is_err());
    }

    #[test]
    fn spec_with_restart_and_seed() {
        let plan = FaultPlan::from_spec("seed=42,crash=server:0@t>1000,restart=2000").unwrap();
        assert_eq!(plan.seed, 42);
        let c = plan.crashes[0];
        assert_eq!(c.restart, Some(Time::from_nanos(2000)));
    }

    #[test]
    fn empty_spec_is_inert() {
        assert!(!FaultPlan::from_spec("").unwrap().is_active());
    }
}
