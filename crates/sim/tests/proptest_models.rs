//! Property-based tests of the cost models: monotonicity and scaling laws
//! the benchmark interpretations rely on.

use proptest::prelude::*;

use hpc_sim::{DiskModel, NetworkModel, ServiceEngine, ServiceModel, SharedClocks, Time};

fn net() -> NetworkModel {
    NetworkModel {
        latency: Time::from_micros(20),
        bandwidth: 2e8,
    }
}

fn disk() -> DiskModel {
    DiskModel {
        per_request: Time::from_micros(300),
        seek: Time::from_millis(4),
        bandwidth: 1.2e8,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn time_addition_is_associative_enough(a in 0u64..1u64<<40, b in 0u64..1u64<<40, c in 0u64..1u64<<40) {
        let (ta, tb, tc) = (Time::from_nanos(a), Time::from_nanos(b), Time::from_nanos(c));
        prop_assert_eq!((ta + tb) + tc, ta + (tb + tc));
        prop_assert_eq!(ta + tb, tb + ta);
        prop_assert_eq!((ta + tb) - tb, ta);
    }

    #[test]
    fn seconds_roundtrip_within_a_nanosecond(ns in 0u64..1u64<<50) {
        let t = Time::from_nanos(ns);
        let back = Time::from_secs_f64(t.as_secs_f64());
        let diff = back.as_nanos().abs_diff(ns);
        // f64 has 52 mantissa bits; below 2^50 ns we are exact to ~1 ns.
        prop_assert!(diff <= 256, "{ns} -> {diff} ns error");
    }

    #[test]
    fn p2p_cost_monotone_in_bytes(a in 0usize..1<<28, b in 0usize..1<<28) {
        let n = net();
        let (small, big) = (a.min(b), a.max(b));
        prop_assert!(n.p2p(small) <= n.p2p(big));
    }

    #[test]
    fn collectives_monotone_in_procs(bytes in 0usize..1<<20, p in 1usize..512) {
        let n = net();
        prop_assert!(n.bcast(bytes, p) <= n.bcast(bytes, p * 2));
        prop_assert!(n.barrier(p) <= n.barrier(p * 2));
        prop_assert!(n.allreduce(bytes, p) <= n.allreduce(bytes, p * 2));
        prop_assert!(n.allgather(bytes, p) <= n.allgather(bytes, p * 2));
    }

    #[test]
    fn disk_request_cost_bounds(bytes in 0usize..1<<26, seq in proptest::bool::ANY) {
        let d = disk();
        let t = d.request(bytes, seq);
        // Never cheaper than the pure stream, never cheaper than overhead.
        prop_assert!(t >= d.stream(bytes));
        prop_assert!(t >= Time::from_micros(300));
        // Sequential never costs more than random.
        prop_assert!(d.request(bytes, true) <= d.request(bytes, false));
    }

    #[test]
    fn one_large_request_beats_many_small(bytes in 1024usize..1<<22, pieces in 2usize..64) {
        let d = disk();
        let one = d.request(bytes, false);
        let per = bytes / pieces;
        let many = Time::from_nanos(d.request(per, false).as_nanos() * pieces as u64);
        prop_assert!(one < many, "one={one:?} many={many:?}");
    }

    /// The dual-resource server pipeline can never beat its busiest stage
    /// run alone, and can never lose to the fully serialized (NIC then
    /// disk, one request at a time) schedule — for ANY arrival schedule,
    /// request mix, and queue depth (0 = unbounded).
    #[test]
    fn service_engine_bounded_by_stage_and_serial_sums(
        ops in proptest::collection::vec(
            (0u64..2_000_000, 1usize..1 << 20, 0u64..5_000_000),
            1..40,
        ),
        depth in 0usize..8,
    ) {
        let model = ServiceModel { nic: net(), queue_depth: depth };
        let mut eng = ServiceEngine::new(model);
        let mut arrival = Time::ZERO;
        let mut a0 = Time::ZERO;
        let mut t_serial = Time::ZERO;
        let mut pipelined = Time::ZERO;
        let mut sum_disk = 0u64;
        for (i, &(delta, bytes, disk_ns)) in ops.iter().enumerate() {
            arrival += Time::from_nanos(delta);
            if i == 0 {
                a0 = arrival;
                t_serial = arrival;
            }
            let disk_time = Time::from_nanos(disk_ns);
            let st = eng.write(arrival, bytes, disk_time);
            prop_assert!(st.nic_start >= arrival);
            prop_assert!(st.disk_start >= st.nic_done);
            pipelined = pipelined.max(st.disk_done);
            sum_disk += disk_ns;
            t_serial = t_serial.max(arrival) + net().p2p(bytes) + disk_time;
        }
        // Upper bound: the pipeline never loses to the serial sum.
        prop_assert!(pipelined <= t_serial, "pipelined {pipelined:?} > serial {t_serial:?}");
        // Lower bound: each stage is a serial resource, so the makespan is
        // at least the busier stage's total work after the first arrival.
        let stage_floor = eng.nic_busy_total.as_nanos().max(sum_disk);
        prop_assert!(
            pipelined >= a0 + Time::from_nanos(stage_floor),
            "pipelined {pipelined:?} beats stage floor {stage_floor} ns"
        );
    }

    #[test]
    fn sync_max_is_idempotent_and_monotone(
        offsets in proptest::collection::vec(0u64..1_000_000, 2..10),
        extra in 0u64..1000,
    ) {
        let clocks = SharedClocks::new(offsets.len());
        for (r, &off) in offsets.iter().enumerate() {
            clocks.advance(r, Time::from_nanos(off));
        }
        let ranks: Vec<usize> = (0..offsets.len()).collect();
        let before = clocks.snapshot();
        let t1 = clocks.sync_max(&ranks, Time::from_nanos(extra));
        prop_assert_eq!(t1.as_nanos(), offsets.iter().max().unwrap() + extra);
        for (r, b) in before.iter().enumerate() {
            prop_assert!(clocks.now(r) >= *b, "clock went backwards");
        }
        // A second sync with zero extra changes nothing.
        let t2 = clocks.sync_max(&ranks, Time::ZERO);
        prop_assert_eq!(t2, t1);
    }
}
