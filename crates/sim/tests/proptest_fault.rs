//! Property-based tests for the `PNETCDF_FAULTS` spec language: for any
//! representable [`FaultPlan`] — probabilities, seed, stall latency, and an
//! arbitrary list of crash windows — the canonical [`Display`] string must
//! reparse to the identical plan, and parsing must never panic on junk.

use proptest::prelude::*;

use hpc_sim::{CrashSpec, FaultPlan, Time};

fn prob() -> impl Strategy<Value = f64> {
    // Rust's f64 Display prints the shortest string that parses back
    // exactly, so any probability in range must survive the round trip.
    0.0f64..1.0
}

/// (server, at, restart?) triples; restart strictly after the crash when
/// present, which is the only shape the injection layer ever acts on.
fn crashes() -> impl Strategy<Value = Vec<CrashSpec>> {
    proptest::collection::vec(
        (0u64..16, 0u64..1 << 50, 1u64..1 << 20, proptest::bool::ANY),
        0..6,
    )
    .prop_map(|windows| {
        windows
            .into_iter()
            .map(|(server, at, outage, restarts)| CrashSpec {
                server: server as usize,
                at: Time::from_nanos(at),
                restart: restarts.then(|| Time::from_nanos(at + outage)),
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn display_round_trips_any_plan(
        seed in any::<u64>(),
        transient in prob(),
        short in prob(),
        stall in prob(),
        stall_ns in 1u64..1 << 40,
        crashes in crashes(),
    ) {
        let plan = FaultPlan {
            seed,
            transient,
            short,
            stall,
            stall_time: Time::from_nanos(stall_ns),
            crashes,
        };
        let spec = plan.to_string();
        let reparsed = FaultPlan::from_spec(&spec);
        prop_assert_eq!(reparsed.as_ref(), Ok(&plan), "spec was {}", spec);
        // The canonical string is a fixed point: printing the reparse
        // yields the same spec again.
        prop_assert_eq!(reparsed.unwrap().to_string(), spec);
    }

    #[test]
    fn crash_only_specs_round_trip_through_the_repeated_syntax(
        crashes in crashes(),
    ) {
        // The repeated `crash=...[,restart=...]` syntax preserves window
        // order and the crash/restart pairing.
        let plan = FaultPlan { crashes: crashes.clone(), ..FaultPlan::default() };
        let reparsed = FaultPlan::from_spec(&plan.to_string()).unwrap();
        prop_assert_eq!(reparsed.crashes, crashes);
    }

    #[test]
    fn parsing_junk_never_panics(spec in "[a-z0-9=:@>,.]{0,40}") {
        // Error or plan, but never a panic; whatever parses must print a
        // spec that reparses to the same plan.
        if let Ok(plan) = FaultPlan::from_spec(&spec) {
            prop_assert_eq!(FaultPlan::from_spec(&plan.to_string()), Ok(plan));
        }
    }

    #[test]
    fn is_down_matches_the_window_arithmetic(
        crashes in crashes(),
        server in 0u64..16,
        at in 0u64..1 << 50,
    ) {
        let plan = FaultPlan { crashes: crashes.clone(), ..FaultPlan::default() };
        let t = Time::from_nanos(at);
        let expect = crashes.iter().any(|c| {
            c.server == server as usize
                && t >= c.at
                && c.restart.map(|r| t < r).unwrap_or(true)
        });
        prop_assert_eq!(plan.is_down(server as usize, t), expect);
        // Inside a window the decision is Crashed regardless of op/bytes.
        if expect {
            prop_assert_eq!(
                plan.decide(server as usize, 3, t, 64),
                hpc_sim::FaultKind::Crashed
            );
        }
    }
}
