//! End-to-end HDF5-sim tests: multi-rank create/open/write/read round-trips
//! and the structural cost properties the baseline exists to model.

use hdf5_sim::{H5File, H5Type};
use hpc_sim::SimConfig;
use pnetcdf_mpi::{run_world, Info};
use pnetcdf_pfs::{Pfs, StorageMode};

fn cfg() -> SimConfig {
    SimConfig::test_small()
}

#[test]
fn create_write_read_roundtrip() {
    let pfs = Pfs::new(cfg(), StorageMode::Full);
    run_world(4, cfg(), |c| {
        let mut f = H5File::create(c, &pfs, "a.h5", &Info::new()).unwrap();
        let mut d = f.create_dataset("dens", H5Type::F64, &[16, 8]).unwrap();
        // Each rank writes 4 rows.
        let r0 = c.rank() as u64 * 4;
        let vals: Vec<f64> = (0..32).map(|i| r0 as f64 * 100.0 + i as f64).collect();
        d.write_all(&mut f, &[r0, 0], &[4, 8], &vals).unwrap();

        // Read back a transposed selection: each rank reads 2 columns.
        let c0 = c.rank() as u64 * 2;
        let cols: Vec<f64> = d.read_all(&mut f, &[0, c0], &[16, 2]).unwrap();
        assert_eq!(cols.len(), 32);
        // Row 5 belongs to writer rank 1 (rows 4..8), local row 1.
        let row5_col = cols[5 * 2];
        assert_eq!(row5_col, 400.0 + (8 + c0) as f64);
        d.close(&mut f).unwrap();
        f.close().unwrap();
    });
}

#[test]
fn reopen_and_namespace_iteration() {
    let pfs = Pfs::new(cfg(), StorageMode::Full);
    run_world(2, cfg(), |c| {
        {
            let mut f = H5File::create(c, &pfs, "multi.h5", &Info::new()).unwrap();
            for name in ["velx", "vely", "velz"] {
                let mut d = f.create_dataset(name, H5Type::F32, &[8]).unwrap();
                let half = c.rank() as u64 * 4;
                let vals: Vec<f32> = (0..4).map(|i| (half + i) as f32).collect();
                d.write_all(&mut f, &[half], &[4], &vals).unwrap();
                d.close(&mut f).unwrap();
            }
            f.close().unwrap();
        }
        {
            let mut f = H5File::open(c, &pfs, "multi.h5", true, &Info::new()).unwrap();
            assert_eq!(f.dataset_names(), vec!["velx", "vely", "velz"]);
            let d = f.open_dataset("vely").unwrap();
            assert_eq!(d.dims(), &[8]);
            assert_eq!(d.dtype(), H5Type::F32);
            let all: Vec<f32> = d.read_all(&mut f, &[0], &[8]).unwrap();
            assert_eq!(all, (0..8).map(|i| i as f32).collect::<Vec<_>>());
            assert!(f.open_dataset("missing").is_err());
            f.close().unwrap();
        }
    });
}

#[test]
fn duplicate_dataset_rejected() {
    let pfs = Pfs::new(cfg(), StorageMode::Full);
    run_world(2, cfg(), |c| {
        let mut f = H5File::create(c, &pfs, "dup.h5", &Info::new()).unwrap();
        f.create_dataset("x", H5Type::I32, &[4]).unwrap();
        assert!(f.create_dataset("x", H5Type::I32, &[4]).is_err());
        f.close().unwrap();
    });
}

#[test]
fn hyperslab_bounds_checked() {
    let pfs = Pfs::new(cfg(), StorageMode::Full);
    run_world(1, cfg(), |c| {
        let mut f = H5File::create(c, &pfs, "b.h5", &Info::new()).unwrap();
        let mut d = f.create_dataset("x", H5Type::I32, &[4, 4]).unwrap();
        assert!(d
            .write_all::<i32>(&mut f, &[3, 0], &[2, 4], &[0; 8])
            .is_err());
        assert!(d
            .write_all::<i32>(&mut f, &[0, 0], &[2, 2], &[0; 3])
            .is_err());
        d.close(&mut f).unwrap();
        f.close().unwrap();
    });
}

#[test]
fn per_dataset_overhead_exceeds_pnetcdf_style_single_header() {
    // Writing N datasets costs N * (create + metadata sync); the virtual
    // time must grow superlinearly in dataset count compared to one big
    // dataset of the same volume.
    let volume = 1 << 16; // 64 KiB of f32
    let time_for = |ndatasets: usize| {
        let pfs = Pfs::new(cfg(), StorageMode::CostOnly);
        let run = run_world(4, cfg(), move |c| {
            let mut f = H5File::create(c, &pfs, "t.h5", &Info::new()).unwrap();
            let per = (volume / ndatasets) as u64 / 4; // f32 elems per dataset
            for i in 0..ndatasets {
                let mut d = f
                    .create_dataset(&format!("v{i}"), H5Type::F32, &[per])
                    .unwrap();
                let quarter = per / 4;
                let s = c.rank() as u64 * quarter;
                let vals = vec![1.0f32; quarter as usize];
                d.write_all(&mut f, &[s], &[quarter], &vals).unwrap();
                d.close(&mut f).unwrap();
            }
            f.close().unwrap();
        });
        run.makespan
    };
    let one = time_for(1);
    let many = time_for(16);
    assert!(
        many > one,
        "16 datasets ({many}) should cost more than 1 ({one})"
    );
}

#[test]
fn file_bytes_decode_offline() {
    // The produced file is structurally valid: superblock chases to the
    // symbol table, which chases to headers and data.
    let pfs = Pfs::new(cfg(), StorageMode::Full);
    run_world(1, cfg(), |c| {
        let mut f = H5File::create(c, &pfs, "dec.h5", &Info::new()).unwrap();
        let mut d = f.create_dataset("data", H5Type::I32, &[4]).unwrap();
        d.write_all(&mut f, &[0], &[4], &[1i32, 2, 3, 4]).unwrap();
        d.close(&mut f).unwrap();
        f.close().unwrap();
    });
    let bytes = pfs.open("dec.h5").unwrap().to_bytes();
    let sb = hdf5_sim::format::Superblock::decode(&bytes).unwrap();
    assert_eq!(sb.nobjects, 1);
    let syms = hdf5_sim::format::decode_symbols(&bytes[sb.root_addr as usize..], 1).unwrap();
    assert_eq!(syms[0].name, "data");
    let oh =
        hdf5_sim::format::ObjectHeader::decode(&bytes[syms[0].header_addr as usize..]).unwrap();
    assert_eq!(oh.dims, vec![4]);
    assert_eq!(oh.nbytes(), 16);
    // The data itself (native-endian i32s).
    let data = &bytes[oh.data_addr as usize..oh.data_addr as usize + 16];
    let vals: Vec<i32> = data
        .chunks_exact(4)
        .map(|c| i32::from_ne_bytes(c.try_into().unwrap()))
        .collect();
    assert_eq!(vals, vec![1, 2, 3, 4]);
}
