//! Cost-structure tests: the HDF5-sim baseline must be a fair one — close
//! to PnetCDF-style raw collective I/O for one big dataset, slower only
//! through the structural overheads the paper names.

use hdf5_sim::{H5File, H5Type, TransferMode};
use hpc_sim::{SimConfig, Time};
use pnetcdf_mpi::{run_world, Datatype, Info};
use pnetcdf_mpio::{MpiFile, OpenMode};
use pnetcdf_pfs::{Pfs, StorageMode};

fn cfg() -> SimConfig {
    SimConfig::asci_frost()
}

/// Time for one large contiguous collective write through raw MPI-IO.
fn raw_mpiio_time(nprocs: usize, total_elems: u64) -> Time {
    let pfs = Pfs::new(cfg(), StorageMode::CostOnly);
    let run = run_world(nprocs, cfg(), move |c| {
        let f = MpiFile::open(c, &pfs, "raw", OpenMode::Create, &Info::new()).unwrap();
        let slab = (total_elems / nprocs as u64) as usize;
        let data = vec![0u8; slab * 8];
        let mem = Datatype::contiguous(data.len(), Datatype::byte());
        let t0 = c.now();
        f.write_at_all((c.rank() * slab * 8) as u64, &data, 1, &mem)
            .unwrap();
        c.now() - t0
    });
    run.results.into_iter().max().unwrap()
}

/// Time for the same volume through HDF5-sim as one dataset.
fn h5_single_dataset_time(nprocs: usize, total_elems: u64, xfer: TransferMode) -> Time {
    let pfs = Pfs::new(cfg(), StorageMode::CostOnly);
    let run = run_world(nprocs, cfg(), move |c| {
        let mut f = H5File::create(c, &pfs, "one.h5", &Info::new()).unwrap();
        let slab = total_elems / nprocs as u64;
        let vals = vec![0f64; slab as usize];
        let t0 = c.now();
        let mut d = f.create_dataset("x", H5Type::F64, &[total_elems]).unwrap();
        d.set_transfer_mode(xfer);
        d.write_all(&mut f, &[c.rank() as u64 * slab], &[slab], &vals)
            .unwrap();
        d.close(&mut f).unwrap();
        let t = c.now() - t0;
        f.close().unwrap();
        t
    });
    run.results.into_iter().max().unwrap()
}

#[test]
fn single_large_dataset_collective_is_close_to_raw_mpiio() {
    // One 32 MiB dataset on 4 ranks with the collective transfer mode:
    // HDF5-sim overhead must be modest (< 40% over raw collective MPI-IO)
    // — the baseline is not a strawman; its gap comes from its structure,
    // not a crippled data path.
    let elems = 4 * 1024 * 1024; // f64
    let raw = raw_mpiio_time(4, elems);
    let h5 = h5_single_dataset_time(4, elems, TransferMode::Collective);
    assert!(h5 >= raw, "HDF5 can't beat the raw path it sits on");
    let ratio = h5.as_secs_f64() / raw.as_secs_f64();
    assert!(
        ratio < 1.4,
        "single-dataset HDF5 overhead too large: {ratio:.2}x over raw"
    );
}

#[test]
fn independent_default_matches_hdf5_1_4_5() {
    // The default transfer mode is independent, as in HDF5 1.4.5.
    let pfs = Pfs::new(cfg(), StorageMode::CostOnly);
    run_world(2, cfg(), move |c| {
        let mut f = H5File::create(c, &pfs, "m.h5", &Info::new()).unwrap();
        let d = f.create_dataset("x", H5Type::F32, &[8]).unwrap();
        assert_eq!(d.transfer_mode(), TransferMode::Independent);
        d.close(&mut f).unwrap();
        f.close().unwrap();
    });
}

#[test]
fn dataset_create_costs_grow_with_count() {
    let time_n_creates = |n: usize| {
        let pfs = Pfs::new(cfg(), StorageMode::CostOnly);
        let run = run_world(4, cfg(), move |c| {
            let mut f = H5File::create(c, &pfs, "n.h5", &Info::new()).unwrap();
            let t0 = c.now();
            for i in 0..n {
                let d = f
                    .create_dataset(&format!("d{i}"), H5Type::F32, &[16])
                    .unwrap();
                d.close(&mut f).unwrap();
            }
            let t = c.now() - t0;
            f.close().unwrap();
            t
        });
        run.results.into_iter().max().unwrap()
    };
    let t4 = time_n_creates(4);
    let t16 = time_n_creates(16);
    // Cost per create is roughly constant, so 16 creates cost ~4x 4 creates.
    let ratio = t16.as_secs_f64() / t4.as_secs_f64();
    assert!(
        (2.5..6.0).contains(&ratio),
        "create scaling ratio {ratio:.2} outside the linear band"
    );
}

#[test]
fn write_costs_more_than_read_due_to_metadata_sync() {
    // The paper's §6 conjecture in miniature: same selection, write pays
    // the metadata update + synchronization, read does not.
    let pfs = Pfs::new(cfg(), StorageMode::Full);
    let run = run_world(4, cfg(), move |c| {
        let mut f = H5File::create(c, &pfs, "rw.h5", &Info::new()).unwrap();
        let mut d = f.create_dataset("x", H5Type::F64, &[4096]).unwrap();
        d.set_transfer_mode(TransferMode::Collective);
        let slab = 1024u64;
        let vals = vec![1.0f64; slab as usize];
        let s = c.rank() as u64 * slab;

        let t0 = c.now();
        d.write_all(&mut f, &[s], &[slab], &vals).unwrap();
        let t_write = c.now() - t0;

        let t1 = c.now();
        let _back: Vec<f64> = d.read_all(&mut f, &[s], &[slab]).unwrap();
        let t_read = c.now() - t1;
        d.close(&mut f).unwrap();
        f.close().unwrap();
        (t_write, t_read)
    });
    for (w, r) in run.results {
        assert!(
            w > r,
            "write ({w}) should exceed read ({r}) via the metadata sync"
        );
    }
}

#[test]
fn namespace_iteration_cost_grows_with_position() {
    // Opening the last of many datasets costs more than opening the first
    // (rank 0 walks the symbol table).
    let pfs = Pfs::new(cfg(), StorageMode::Full);
    let run = run_world(2, cfg(), move |c| {
        let mut f = H5File::create(c, &pfs, "ns.h5", &Info::new()).unwrap();
        for i in 0..64 {
            let d = f
                .create_dataset(&format!("d{i:02}"), H5Type::I32, &[4])
                .unwrap();
            d.close(&mut f).unwrap();
        }
        let t0 = c.now();
        let d = f.open_dataset("d00").unwrap();
        let t_first = c.now() - t0;
        drop(d);
        let t1 = c.now();
        let d = f.open_dataset("d63").unwrap();
        let t_last = c.now() - t1;
        drop(d);
        f.close().unwrap();
        (t_first, t_last)
    });
    for (first, last) in run.results {
        assert!(
            last > first,
            "opening d63 ({last}) should cost more than d00 ({first})"
        );
    }
}
