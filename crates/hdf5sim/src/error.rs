//! Error type for HDF5-sim.

use std::fmt;

use pnetcdf_mpi::MpiError;
use pnetcdf_mpio::MpioError;

/// Errors of the HDF5-sim library.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum H5Error {
    /// MPI-IO failure.
    Mpio(MpioError),
    /// MPI failure.
    Mpi(MpiError),
    /// Structurally invalid file.
    Corrupt(String),
    /// Unknown object.
    NotFound(String),
    /// Bad argument.
    InvalidArgument(String),
}

impl fmt::Display for H5Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            H5Error::Mpio(e) => write!(f, "{e}"),
            H5Error::Mpi(e) => write!(f, "{e}"),
            H5Error::Corrupt(msg) => write!(f, "corrupt HDF5-sim file: {msg}"),
            H5Error::NotFound(what) => write!(f, "not found: {what}"),
            H5Error::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for H5Error {}

impl From<MpioError> for H5Error {
    fn from(e: MpioError) -> Self {
        H5Error::Mpio(e)
    }
}

impl From<MpiError> for H5Error {
    fn from(e: MpiError) -> Self {
        H5Error::Mpi(e)
    }
}

/// Result alias.
pub type H5Result<T> = Result<T, H5Error>;
