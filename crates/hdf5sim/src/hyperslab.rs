//! Dataspace hyperslab selections.
//!
//! A hyperslab `(start, count)` on an n-dimensional dataspace selects a
//! regular block. Real HDF5 packs selections into contiguous buffers with a
//! recursive descent over the dataspace ("recursive handling of the
//! hyperslab ... makes the packing of the hyperslabs into contiguous
//! buffers take a relatively long time" — paper §5.2); we reproduce the
//! offsets it produces and charge its CPU cost with
//! [`PACK_COST_MULTIPLIER`] relative to a flat memcpy.

use crate::error::{H5Error, H5Result};

/// CPU cost multiplier of recursive hyperslab packing versus a flat copy.
pub const PACK_COST_MULTIPLIER: f64 = 2.5;

/// Validate a hyperslab against a dataspace.
pub fn check(dims: &[u64], start: &[u64], count: &[u64]) -> H5Result<()> {
    if start.len() != dims.len() || count.len() != dims.len() {
        return Err(H5Error::InvalidArgument(format!(
            "hyperslab rank {}/{} does not match dataspace rank {}",
            start.len(),
            count.len(),
            dims.len()
        )));
    }
    for d in 0..dims.len() {
        if start[d] + count[d] > dims[d] {
            return Err(H5Error::InvalidArgument(format!(
                "hyperslab dim {d}: start {} + count {} exceeds extent {}",
                start[d], count[d], dims[d]
            )));
        }
    }
    Ok(())
}

/// Translate a hyperslab into absolute file byte runs for a contiguous
/// dataset whose data block begins at `base`.
pub fn runs(
    dims: &[u64],
    start: &[u64],
    count: &[u64],
    esize: u64,
    base: u64,
) -> H5Result<Vec<(u64, u64)>> {
    check(dims, start, count)?;
    let nd = dims.len();
    let mut out: Vec<(u64, u64)> = Vec::new();
    if nd == 0 {
        out.push((base, esize));
        return Ok(out);
    }
    if count.contains(&0) {
        return Ok(out);
    }
    let mut strides = vec![1u64; nd];
    for d in (0..nd - 1).rev() {
        strides[d] = strides[d + 1] * dims[d + 1];
    }
    let push = |out: &mut Vec<(u64, u64)>, off: u64, len: u64| {
        if let Some(last) = out.last_mut() {
            if last.0 + last.1 == off {
                last.1 += len;
                return;
            }
        }
        out.push((off, len));
    };
    let mut idx = vec![0u64; nd - 1];
    loop {
        let mut elem: u64 = 0;
        for d in 0..nd - 1 {
            elem += (start[d] + idx[d]) * strides[d];
        }
        elem += start[nd - 1];
        push(&mut out, base + elem * esize, count[nd - 1] * esize);
        // Odometer.
        let mut d = nd - 1;
        loop {
            if d == 0 {
                return Ok(out);
            }
            d -= 1;
            idx[d] += 1;
            if idx[d] < count[d] {
                break;
            }
            idx[d] = 0;
            if d == 0 {
                return Ok(out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn whole_space_is_one_run() {
        let r = runs(&[4, 4], &[0, 0], &[4, 4], 4, 100).unwrap();
        assert_eq!(r, vec![(100, 64)]);
    }

    #[test]
    fn interior_block() {
        let r = runs(&[4, 4], &[1, 1], &[2, 2], 1, 0).unwrap();
        assert_eq!(r, vec![(5, 2), (9, 2)]);
    }

    #[test]
    fn full_rows_coalesce() {
        let r = runs(&[4, 4], &[1, 0], &[2, 4], 1, 0).unwrap();
        assert_eq!(r, vec![(4, 8)]);
    }

    #[test]
    fn scalar_space() {
        let r = runs(&[], &[], &[], 8, 64).unwrap();
        assert_eq!(r, vec![(64, 8)]);
    }

    #[test]
    fn out_of_bounds_rejected() {
        assert!(runs(&[4], &[3], &[2], 1, 0).is_err());
        assert!(runs(&[4, 4], &[0], &[4], 1, 0).is_err());
    }

    #[test]
    fn zero_count_is_empty() {
        assert!(runs(&[4, 4], &[0, 0], &[0, 4], 1, 0).unwrap().is_empty());
    }

    #[test]
    fn total_matches_selection() {
        let r = runs(&[8, 8, 8], &[2, 1, 3], &[3, 5, 4], 8, 0).unwrap();
        let total: u64 = r.iter().map(|x| x.1).sum();
        assert_eq!(total, 3 * 5 * 4 * 8);
    }
}
