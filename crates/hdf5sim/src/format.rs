//! On-disk structures of HDF5-sim: superblock, symbol table, object
//! headers.
//!
//! Deliberately simplified relative to real HDF5 (no B-trees or fractal
//! heaps), but with the property that matters for the comparison: metadata
//! is **dispersed** — the superblock points at a root symbol table, which
//! points at per-dataset object headers, which point at the data — so
//! operating on an object requires chasing and updating several small
//! blocks scattered through the file, where netCDF has exactly one header.

use crate::error::{H5Error, H5Result};

/// File magic.
pub const MAGIC: &[u8; 8] = b"\x89H5S\r\n\x1a\n";

/// Size of the encoded superblock.
pub const SUPERBLOCK_SIZE: u64 = 8 + 8 + 8 + 4;

/// Element type of a dataset.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum H5Type {
    /// IEEE 754 single precision.
    F32,
    /// IEEE 754 double precision.
    F64,
    /// 32-bit signed integer.
    I32,
}

impl H5Type {
    /// Element size in bytes.
    pub fn size(self) -> u64 {
        match self {
            H5Type::F32 | H5Type::I32 => 4,
            H5Type::F64 => 8,
        }
    }

    fn code(self) -> u32 {
        match self {
            H5Type::F32 => 0,
            H5Type::F64 => 1,
            H5Type::I32 => 2,
        }
    }

    fn from_code(c: u32) -> H5Result<H5Type> {
        Ok(match c {
            0 => H5Type::F32,
            1 => H5Type::F64,
            2 => H5Type::I32,
            _ => return Err(H5Error::Corrupt(format!("unknown type code {c}"))),
        })
    }
}

/// The superblock: entry point of the file.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Superblock {
    /// Address of the root group's symbol table block.
    pub root_addr: u64,
    /// End-of-file address (next allocation point).
    pub eof: u64,
    /// Number of entries in the root symbol table.
    pub nobjects: u32,
}

impl Superblock {
    /// Encode to fixed-size bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(SUPERBLOCK_SIZE as usize);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&self.root_addr.to_be_bytes());
        out.extend_from_slice(&self.eof.to_be_bytes());
        out.extend_from_slice(&self.nobjects.to_be_bytes());
        out
    }

    /// Decode from the start of a file.
    pub fn decode(bytes: &[u8]) -> H5Result<Superblock> {
        if bytes.len() < SUPERBLOCK_SIZE as usize || &bytes[..8] != MAGIC {
            return Err(H5Error::Corrupt("bad superblock magic".into()));
        }
        Ok(Superblock {
            root_addr: u64::from_be_bytes(bytes[8..16].try_into().unwrap()),
            eof: u64::from_be_bytes(bytes[16..24].try_into().unwrap()),
            nobjects: u32::from_be_bytes(bytes[24..28].try_into().unwrap()),
        })
    }
}

/// One root symbol table entry: object name → object header address.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SymbolEntry {
    pub name: String,
    pub header_addr: u64,
}

/// Encode a symbol table (entry count is carried in the superblock).
pub fn encode_symbols(entries: &[SymbolEntry]) -> Vec<u8> {
    let mut out = Vec::new();
    for e in entries {
        out.extend_from_slice(&(e.name.len() as u32).to_be_bytes());
        out.extend_from_slice(e.name.as_bytes());
        out.extend_from_slice(&e.header_addr.to_be_bytes());
    }
    out
}

/// Decode `n` symbol table entries.
pub fn decode_symbols(bytes: &[u8], n: usize) -> H5Result<Vec<SymbolEntry>> {
    let mut out = Vec::with_capacity(n);
    let mut pos = 0usize;
    for _ in 0..n {
        if pos + 4 > bytes.len() {
            return Err(H5Error::Corrupt("truncated symbol table".into()));
        }
        let len = u32::from_be_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        pos += 4;
        if pos + len + 8 > bytes.len() {
            return Err(H5Error::Corrupt("truncated symbol entry".into()));
        }
        let name = String::from_utf8(bytes[pos..pos + len].to_vec())
            .map_err(|_| H5Error::Corrupt("symbol name not UTF-8".into()))?;
        pos += len;
        let header_addr = u64::from_be_bytes(bytes[pos..pos + 8].try_into().unwrap());
        pos += 8;
        out.push(SymbolEntry { name, header_addr });
    }
    Ok(out)
}

/// A dataset's object header: dataspace + datatype + contiguous layout.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ObjectHeader {
    pub dtype: H5Type,
    pub dims: Vec<u64>,
    /// Address of the dataset's contiguous data block.
    pub data_addr: u64,
    /// Modification counter (bumped on every write — the metadata update
    /// the paper mentions happening during data writes).
    pub mtime: u64,
}

/// Fixed header prefix size; dims follow.
pub fn object_header_size(ndims: usize) -> u64 {
    4 + 4 + 8 + 8 + 8 * ndims as u64
}

impl ObjectHeader {
    /// Encode.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&self.dtype.code().to_be_bytes());
        out.extend_from_slice(&(self.dims.len() as u32).to_be_bytes());
        out.extend_from_slice(&self.data_addr.to_be_bytes());
        out.extend_from_slice(&self.mtime.to_be_bytes());
        for &d in &self.dims {
            out.extend_from_slice(&d.to_be_bytes());
        }
        out
    }

    /// Decode.
    pub fn decode(bytes: &[u8]) -> H5Result<ObjectHeader> {
        if bytes.len() < 24 {
            return Err(H5Error::Corrupt("truncated object header".into()));
        }
        let dtype = H5Type::from_code(u32::from_be_bytes(bytes[..4].try_into().unwrap()))?;
        let ndims = u32::from_be_bytes(bytes[4..8].try_into().unwrap()) as usize;
        let data_addr = u64::from_be_bytes(bytes[8..16].try_into().unwrap());
        let mtime = u64::from_be_bytes(bytes[16..24].try_into().unwrap());
        if bytes.len() < 24 + 8 * ndims {
            return Err(H5Error::Corrupt("truncated dataspace".into()));
        }
        let dims = (0..ndims)
            .map(|i| u64::from_be_bytes(bytes[24 + 8 * i..32 + 8 * i].try_into().unwrap()))
            .collect();
        Ok(ObjectHeader {
            dtype,
            dims,
            data_addr,
            mtime,
        })
    }

    /// Total elements.
    pub fn nelems(&self) -> u64 {
        self.dims.iter().product()
    }

    /// Total data bytes.
    pub fn nbytes(&self) -> u64 {
        self.nelems() * self.dtype.size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn superblock_roundtrip() {
        let sb = Superblock {
            root_addr: 28,
            eof: 123456,
            nobjects: 7,
        };
        assert_eq!(Superblock::decode(&sb.encode()).unwrap(), sb);
        assert_eq!(sb.encode().len() as u64, SUPERBLOCK_SIZE);
    }

    #[test]
    fn bad_magic_rejected() {
        assert!(Superblock::decode(&[0u8; 28]).is_err());
    }

    #[test]
    fn symbols_roundtrip() {
        let entries = vec![
            SymbolEntry {
                name: "dens".into(),
                header_addr: 100,
            },
            SymbolEntry {
                name: "pressure".into(),
                header_addr: 260,
            },
        ];
        let bytes = encode_symbols(&entries);
        assert_eq!(decode_symbols(&bytes, 2).unwrap(), entries);
        assert!(decode_symbols(&bytes[..5], 2).is_err());
    }

    #[test]
    fn object_header_roundtrip() {
        let oh = ObjectHeader {
            dtype: H5Type::F64,
            dims: vec![80, 8, 8, 8],
            data_addr: 4096,
            mtime: 3,
        };
        let bytes = oh.encode();
        assert_eq!(bytes.len() as u64, object_header_size(4));
        assert_eq!(ObjectHeader::decode(&bytes).unwrap(), oh);
        assert_eq!(oh.nelems(), 80 * 512);
        assert_eq!(oh.nbytes(), 80 * 512 * 8);
    }

    #[test]
    fn type_sizes() {
        assert_eq!(H5Type::F32.size(), 4);
        assert_eq!(H5Type::F64.size(), 8);
        assert_eq!(H5Type::I32.size(), 4);
    }
}
