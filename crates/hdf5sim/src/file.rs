//! The HDF5-sim file object: collective create/open and the dispersed
//! metadata bookkeeping.

use pnetcdf_mpi::{Comm, Datatype, Info};
use pnetcdf_mpio::{MpiFile, OpenMode};
use pnetcdf_pfs::Pfs;

use crate::dataset::H5Dataset;
use crate::error::{H5Error, H5Result};
use crate::format::{
    decode_symbols, encode_symbols, object_header_size, H5Type, ObjectHeader, Superblock,
    SymbolEntry, SUPERBLOCK_SIZE,
};

/// An open HDF5-sim file (per rank).
pub struct H5File {
    pub(crate) comm: Comm,
    pub(crate) file: MpiFile,
    pub(crate) sb: Superblock,
    pub(crate) symbols: Vec<SymbolEntry>,
    pub(crate) readonly: bool,
}

impl H5File {
    /// Collectively create a file.
    pub fn create(comm: &Comm, pfs: &Pfs, name: &str, info: &Info) -> H5Result<H5File> {
        let file = MpiFile::open(comm, pfs, name, OpenMode::Create, info)?;
        let sb = Superblock {
            root_addr: SUPERBLOCK_SIZE,
            eof: SUPERBLOCK_SIZE,
            nobjects: 0,
        };
        let mut h5 = H5File {
            comm: comm.clone(),
            file,
            sb,
            symbols: Vec::new(),
            readonly: false,
        };
        if comm.rank() == 0 {
            h5.write_superblock()?;
        }
        comm.barrier()?;
        Ok(h5)
    }

    /// Collectively open an existing file: rank 0 chases superblock and
    /// symbol table, then broadcasts.
    pub fn open(
        comm: &Comm,
        pfs: &Pfs,
        name: &str,
        readonly: bool,
        info: &Info,
    ) -> H5Result<H5File> {
        let mode = if readonly {
            OpenMode::ReadOnly
        } else {
            OpenMode::ReadWrite
        };
        let file = MpiFile::open(comm, pfs, name, mode, info)?;
        let payload = if comm.rank() == 0 {
            let mut sb_bytes = vec![0u8; SUPERBLOCK_SIZE as usize];
            let mem = Datatype::contiguous(sb_bytes.len(), Datatype::byte());
            file.read_at(0, &mut sb_bytes, 1, &mem)?;
            let sb = Superblock::decode(&sb_bytes)?;
            // Read the symbol table block (everything from root_addr to eof
            // can contain it; read generously up to 1 MiB).
            let max = (file.size().saturating_sub(sb.root_addr)).min(1 << 20) as usize;
            let mut sym_bytes = vec![0u8; max];
            if max > 0 {
                let mem = Datatype::contiguous(max, Datatype::byte());
                file.read_at(sb.root_addr, &mut sym_bytes, 1, &mem)?;
            }
            let mut out = sb_bytes;
            out.extend_from_slice(&sym_bytes);
            comm.bcast_bytes(0, out)?
        } else {
            comm.bcast_bytes(0, Vec::new())?
        };
        let sb = Superblock::decode(&payload[..SUPERBLOCK_SIZE as usize])?;
        let symbols = decode_symbols(&payload[SUPERBLOCK_SIZE as usize..], sb.nobjects as usize)?;
        Ok(H5File {
            comm: comm.clone(),
            file,
            sb,
            symbols,
            readonly,
        })
    }

    fn write_superblock(&mut self) -> H5Result<()> {
        let bytes = self.sb.encode();
        let mem = Datatype::contiguous(bytes.len(), Datatype::byte());
        self.file
            .set_view_local(0, &Datatype::byte(), &Datatype::byte())?;
        self.file.write_at(0, &bytes, 1, &mem)?;
        Ok(())
    }

    pub(crate) fn write_meta(&mut self, addr: u64, bytes: &[u8]) -> H5Result<()> {
        let mem = Datatype::contiguous(bytes.len(), Datatype::byte());
        self.file
            .set_view_local(0, &Datatype::byte(), &Datatype::byte())?;
        self.file.write_at(addr, bytes, 1, &mem)?;
        Ok(())
    }

    /// Collectively create a dataset with a contiguous layout. Involves
    /// three dispersed metadata writes (object header, new symbol table,
    /// superblock) by rank 0 plus a broadcast and synchronization — the
    /// per-object cost the paper contrasts with netCDF's single header.
    pub fn create_dataset(
        &mut self,
        name: &str,
        dtype: H5Type,
        dims: &[u64],
    ) -> H5Result<H5Dataset> {
        if self.symbols.iter().any(|s| s.name == name) {
            return Err(H5Error::InvalidArgument(format!(
                "dataset '{name}' already exists"
            )));
        }
        // Allocation: data block, then the object header, then a fresh copy
        // of the grown symbol table (the old copy becomes dead space, as
        // with real HDF5's extended blocks).
        let data_addr = (self.sb.eof + 7) & !7;
        let oh = ObjectHeader {
            dtype,
            dims: dims.to_vec(),
            data_addr,
            mtime: 0,
        };
        let header_addr = data_addr + oh.nbytes();
        self.symbols.push(SymbolEntry {
            name: name.to_string(),
            header_addr,
        });
        let sym_addr = header_addr + object_header_size(dims.len());
        let sym_bytes = encode_symbols(&self.symbols);
        self.sb = Superblock {
            root_addr: sym_addr,
            eof: sym_addr + sym_bytes.len() as u64,
            nobjects: self.symbols.len() as u32,
        };

        if self.comm.rank() == 0 {
            self.write_meta(header_addr, &oh.encode())?;
            self.write_meta(sym_addr, &sym_bytes)?;
            self.write_superblock()?;
            // Reserve the data region so the file has its final size.
            self.file.raw().grow_to(header_addr);
        }
        // Everyone must agree on the new allocation state before use.
        self.comm.barrier()?;
        Ok(H5Dataset {
            name: name.to_string(),
            header_addr,
            header: oh,
            xfer: Default::default(),
            attributes: Vec::new(),
        })
    }

    /// Collectively open a dataset by name. Rank 0 re-reads the superblock,
    /// iterates the namespace, and fetches the object header; the result is
    /// broadcast ("it has to iterate through the entire namespace to get
    /// the header information of that object").
    pub fn open_dataset(&mut self, name: &str) -> H5Result<H5Dataset> {
        let pos = self
            .symbols
            .iter()
            .position(|s| s.name == name)
            .ok_or_else(|| H5Error::NotFound(format!("dataset '{name}'")))?;
        let header_addr = self.symbols[pos].header_addr;

        let payload = if self.comm.rank() == 0 {
            // Namespace iteration: one metadata read for the symbol table,
            // a lookup cost per entry scanned, one read for the header.
            let cfg = self.comm.config().clone();
            self.comm.advance(cfg.cpu.metadata_ops(pos + 1));
            let mut sym_probe = vec![0u8; 64.min(self.file.size() as usize)];
            let mem = Datatype::contiguous(sym_probe.len(), Datatype::byte());
            self.file
                .set_view_local(0, &Datatype::byte(), &Datatype::byte())?;
            self.file
                .read_at(self.sb.root_addr, &mut sym_probe, 1, &mem)?;

            let hsize = 24 + 8 * 16; // generous: up to 16 dims
            let mut hdr = vec![0u8; hsize];
            let mem = Datatype::contiguous(hsize, Datatype::byte());
            self.file.read_at(header_addr, &mut hdr, 1, &mem)?;
            self.comm.bcast_bytes(0, hdr)?
        } else {
            self.comm.bcast_bytes(0, Vec::new())?
        };
        let header = ObjectHeader::decode(&payload)?;
        Ok(H5Dataset {
            name: name.to_string(),
            header_addr,
            header,
            xfer: Default::default(),
            attributes: Vec::new(),
        })
    }

    /// Reserve `bytes` of metadata space at the end of file; every rank
    /// tracks the allocation so the superblock stays consistent.
    pub(crate) fn allocate_metadata_block(&mut self, bytes: u64) -> u64 {
        let addr = (self.sb.eof + 7) & !7;
        self.sb.eof = addr + bytes;
        addr
    }

    /// Names of all datasets.
    pub fn dataset_names(&self) -> Vec<String> {
        self.symbols.iter().map(|s| s.name.clone()).collect()
    }

    /// Collectively close the file: flush the superblock and synchronize.
    pub fn close(mut self) -> H5Result<()> {
        if self.comm.rank() == 0 && !self.readonly {
            self.write_superblock()?;
        }
        self.file.sync()?;
        Ok(())
    }

    /// The communicator.
    pub fn comm(&self) -> &Comm {
        &self.comm
    }
}
