//! A parallel-HDF5-like baseline library ("HDF5-sim").
//!
//! The paper compares PnetCDF against parallel HDF5 1.4.5 on the FLASH I/O
//! benchmark (Figure 7) and attributes HDF5's deficit to structural
//! properties of its design, not to its MPI-IO usage — both libraries sit
//! on the same MPI-IO layer. This crate reproduces those structural
//! properties over the *same* [`pnetcdf_mpio`] layer so the comparison
//! isolates exactly what the paper isolates:
//!
//! 1. **Dispersed per-object metadata** ([`mod@format`]): a superblock, a root
//!    symbol table, and one object header per dataset, scattered through
//!    the file — versus netCDF's single header.
//! 2. **Collective open/close of every object** ([`mod@file`], [`dataset`]):
//!    creating or opening a dataset synchronizes all ranks and performs
//!    small metadata reads/writes through rank 0; opening iterates the
//!    namespace.
//! 3. **Recursive hyperslab packing** ([`hyperslab`]): dataspace selections
//!    are packed with a recursive descent whose per-byte CPU cost is higher
//!    than PnetCDF's flat datatype flattening.
//! 4. **Metadata updates at write time** ([`dataset`]): each dataset write
//!    is followed by an object-header update and a synchronization.
//!
//! Like the real library, the data path itself uses collective MPI-IO, so
//! HDF5-sim is *not* a strawman: for one big contiguous dataset written
//! once it performs close to PnetCDF. The gap appears — as in Figure 7 —
//! when an application writes many datasets (FLASH writes 24 unknowns plus
//! metadata arrays per file).

pub mod dataset;
pub mod error;
pub mod file;
pub mod format;
pub mod hyperslab;

pub use dataset::{H5Dataset, TransferMode};
pub use error::{H5Error, H5Result};
pub use file::H5File;
pub use format::H5Type;
