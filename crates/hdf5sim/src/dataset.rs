//! Datasets: hyperslab-selected data access.
//!
//! HDF5 1.4.5's default data transfer mode was
//! `H5FD_MPIO_INDEPENDENT`: each process writes its selection with its own
//! MPI-IO request, with no cross-process aggregation — and the FLASH I/O
//! benchmark of the era used that default. This is a large part of the
//! Figure 7 gap: PnetCDF's collective writes aggregate the interleaved
//! per-rank slabs into large ordered requests, while HDF5's independent
//! writes land interleaved on the I/O servers. `TransferMode::Collective`
//! is available as the opt-in it was in real HDF5.

use pnetcdf_mpi::Datatype;

use crate::error::H5Result;
use crate::file::H5File;
use crate::format::{H5Type, ObjectHeader};
use crate::hyperslab::{self, PACK_COST_MULTIPLIER};

/// Native scalar types storable in HDF5-sim datasets (stored native-endian,
/// as real HDF5 does with native datatypes).
pub trait H5Native: Copy {
    /// The corresponding file type.
    const TYPE: H5Type;
    /// Encode a slice to bytes.
    fn slice_to_bytes(vals: &[Self]) -> Vec<u8>;
    /// Decode bytes to values.
    fn bytes_to_vec(bytes: &[u8]) -> Vec<Self>;
}

macro_rules! impl_native {
    ($t:ty, $code:expr) => {
        impl H5Native for $t {
            const TYPE: H5Type = $code;
            fn slice_to_bytes(vals: &[Self]) -> Vec<u8> {
                let mut out = Vec::with_capacity(vals.len() * std::mem::size_of::<$t>());
                for v in vals {
                    out.extend_from_slice(&v.to_ne_bytes());
                }
                out
            }
            fn bytes_to_vec(bytes: &[u8]) -> Vec<Self> {
                bytes
                    .chunks_exact(std::mem::size_of::<$t>())
                    .map(|c| <$t>::from_ne_bytes(c.try_into().unwrap()))
                    .collect()
            }
        }
    };
}

impl_native!(f32, H5Type::F32);
impl_native!(f64, H5Type::F64);
impl_native!(i32, H5Type::I32);

/// Data transfer mode (`H5FD_MPIO_*`). Independent is the 1.4.5 default.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum TransferMode {
    /// Each process issues its own MPI-IO request (the default).
    #[default]
    Independent,
    /// Two-phase collective I/O (opt-in, as in real HDF5).
    Collective,
}

/// An open dataset (per rank).
pub struct H5Dataset {
    pub(crate) name: String,
    pub(crate) header_addr: u64,
    pub(crate) header: ObjectHeader,
    pub(crate) xfer: TransferMode,
    pub(crate) attributes: Vec<(String, Vec<u8>)>,
}

impl H5Dataset {
    /// Dataset name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Dataspace extents.
    pub fn dims(&self) -> &[u64] {
        &self.header.dims
    }

    /// Set the data transfer mode (`H5Pset_dxpl_mpio`).
    pub fn set_transfer_mode(&mut self, xfer: TransferMode) {
        self.xfer = xfer;
    }

    /// Current transfer mode.
    pub fn transfer_mode(&self) -> TransferMode {
        self.xfer
    }

    /// Element type.
    pub fn dtype(&self) -> H5Type {
        self.header.dtype
    }

    fn prepare(&self, start: &[u64], count: &[u64]) -> H5Result<Vec<(u64, u64)>> {
        hyperslab::runs(
            &self.header.dims,
            start,
            count,
            self.header.dtype.size(),
            self.header.data_addr,
        )
    }

    /// Collective hyperslab write of raw bytes.
    ///
    /// Data flows through the same collective MPI-IO path as PnetCDF, with
    /// two structural differences: the hyperslab is packed recursively
    /// (higher CPU cost) and the object header is updated afterwards with a
    /// synchronization ("HDF5 metadata is updated during data writes ...
    /// additional synchronization is necessary at write time").
    pub fn write_hyperslab_all(
        &mut self,
        file: &mut H5File,
        start: &[u64],
        count: &[u64],
        data: &[u8],
    ) -> H5Result<()> {
        let runs = self.prepare(start, count)?;
        let total: u64 = runs.iter().map(|r| r.1).sum();
        if total != data.len() as u64 {
            return Err(crate::error::H5Error::InvalidArgument(format!(
                "buffer has {} bytes, selection needs {total}",
                data.len()
            )));
        }
        // Recursive hyperslab packing cost.
        let cfg = file.comm.config().clone();
        file.comm
            .advance(cfg.cpu.pack(data.len(), PACK_COST_MULTIPLIER));

        let blocks: Vec<(i64, usize)> = runs.iter().map(|&(o, l)| (o as i64, l as usize)).collect();
        let ft = Datatype::hindexed(blocks, Datatype::byte());
        file.file.set_view_local(0, &Datatype::byte(), &ft)?;
        let mem = Datatype::contiguous(data.len(), Datatype::byte());
        match self.xfer {
            TransferMode::Independent => {
                file.file.write_at(0, data, 1, &mem)?;
            }
            TransferMode::Collective => {
                file.file.write_at_all(0, data, 1, &mem)?;
            }
        }

        // Metadata update at write time + synchronization.
        self.header.mtime += 1;
        if file.comm.rank() == 0 {
            let hdr = self.header.encode();
            file.write_meta(self.header_addr, &hdr)?;
        }
        file.comm.barrier()?;
        Ok(())
    }

    /// Collective hyperslab read of raw bytes.
    pub fn read_hyperslab_all(
        &self,
        file: &mut H5File,
        start: &[u64],
        count: &[u64],
        out: &mut [u8],
    ) -> H5Result<()> {
        let runs = self.prepare(start, count)?;
        let total: u64 = runs.iter().map(|r| r.1).sum();
        if total != out.len() as u64 {
            return Err(crate::error::H5Error::InvalidArgument(format!(
                "buffer has {} bytes, selection needs {total}",
                out.len()
            )));
        }
        let blocks: Vec<(i64, usize)> = runs.iter().map(|&(o, l)| (o as i64, l as usize)).collect();
        let ft = Datatype::hindexed(blocks, Datatype::byte());
        file.file.set_view_local(0, &Datatype::byte(), &ft)?;
        let mem = Datatype::contiguous(out.len(), Datatype::byte());
        match self.xfer {
            TransferMode::Independent => {
                file.file.read_at(0, out, 1, &mem)?;
            }
            TransferMode::Collective => {
                file.file.read_at_all(0, out, 1, &mem)?;
            }
        }
        // Unpacking the hyperslab is recursive too, but reads skip the
        // write-time metadata synchronization.
        let cfg = file.comm.config().clone();
        file.comm
            .advance(cfg.cpu.pack(out.len(), PACK_COST_MULTIPLIER));
        Ok(())
    }

    /// Typed collective hyperslab write.
    pub fn write_all<T: H5Native>(
        &mut self,
        file: &mut H5File,
        start: &[u64],
        count: &[u64],
        vals: &[T],
    ) -> H5Result<()> {
        debug_assert_eq!(T::TYPE.size(), self.header.dtype.size());
        self.write_hyperslab_all(file, start, count, &T::slice_to_bytes(vals))
    }

    /// Typed collective hyperslab read.
    pub fn read_all<T: H5Native>(
        &self,
        file: &mut H5File,
        start: &[u64],
        count: &[u64],
    ) -> H5Result<Vec<T>> {
        let total: u64 = count.iter().product::<u64>() * self.header.dtype.size();
        let mut out = vec![0u8; total as usize];
        self.read_hyperslab_all(file, start, count, &mut out)?;
        Ok(T::bytes_to_vec(&out))
    }

    /// Collectively attach a small attribute to this dataset (`H5Acreate` +
    /// `H5Awrite`). Attributes live in dispersed metadata: rank 0 writes an
    /// attribute block at the end of file and updates the superblock's
    /// allocation pointer, then everyone synchronizes — each attribute is
    /// two small metadata writes plus a barrier, which is why the paper's
    /// benchmark port "removed the part of code writing attributes" to
    /// focus on data I/O.
    pub fn write_attribute(&mut self, file: &mut H5File, name: &str, value: &[u8]) -> H5Result<()> {
        let addr = file.allocate_metadata_block(8 + name.len() as u64 + value.len() as u64);
        if file.comm.rank() == 0 && !file.readonly {
            let mut block = Vec::with_capacity(8 + name.len() + value.len());
            block.extend_from_slice(&(name.len() as u32).to_be_bytes());
            block.extend_from_slice(&(value.len() as u32).to_be_bytes());
            block.extend_from_slice(name.as_bytes());
            block.extend_from_slice(value);
            file.write_meta(addr, &block)?;
            // The object header gains an attribute-message pointer.
            self.header.mtime += 1;
            let hdr = self.header.encode();
            file.write_meta(self.header_addr, &hdr)?;
        }
        self.attributes.push((name.to_string(), value.to_vec()));
        file.comm.barrier()?;
        Ok(())
    }

    /// Attribute values attached in this session.
    pub fn attributes(&self) -> &[(String, Vec<u8>)] {
        &self.attributes
    }

    /// Collectively close the dataset: in parallel HDF5 1.4.5 the close of
    /// every object is collective, forcing a synchronization even when
    /// nothing changed.
    pub fn close(self, file: &mut H5File) -> H5Result<()> {
        if file.comm.rank() == 0 && !file.readonly {
            let hdr = self.header.encode();
            file.write_meta(self.header_addr, &hdr)?;
        }
        file.comm.barrier()?;
        Ok(())
    }
}
