//! Stripe-granular byte storage for one server.

use std::collections::HashMap;

/// Whether payload bytes are retained.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StorageMode {
    /// Keep every byte (correctness tests, small runs).
    Full,
    /// Account time only; writes are discarded and reads return zeros.
    /// Large benchmark configurations use this to bound memory.
    CostOnly,
    /// Keep only small requests — file headers, superblocks, object
    /// headers — and discard bulk data. Lets read benchmarks re-open files
    /// (the header parses) without holding gigabytes of array data.
    MetadataOnly,
}

/// Requests at or below this size are considered metadata under
/// [`StorageMode::MetadataOnly`].
pub const METADATA_REQUEST_LIMIT: u64 = 64 * 1024;

/// Byte store of one server: sparse stripes keyed by `(file id, stripe idx)`.
#[derive(Default)]
pub struct StripeStore {
    stripes: HashMap<(u64, u64), Box<[u8]>>,
    stripe_size: u64,
}

impl StripeStore {
    /// New store for stripes of `stripe_size` bytes.
    pub fn new(stripe_size: u64) -> StripeStore {
        StripeStore {
            stripes: HashMap::new(),
            stripe_size,
        }
    }

    /// Write `data` into stripe `stripe` of `file` at `offset_in_stripe`.
    pub fn write(&mut self, file: u64, stripe: u64, offset_in_stripe: u64, data: &[u8]) {
        debug_assert!(offset_in_stripe + data.len() as u64 <= self.stripe_size);
        let buf = self
            .stripes
            .entry((file, stripe))
            .or_insert_with(|| vec![0u8; self.stripe_size as usize].into_boxed_slice());
        let lo = offset_in_stripe as usize;
        buf[lo..lo + data.len()].copy_from_slice(data);
    }

    /// Read from stripe `stripe`; unwritten stripes read as zeros.
    pub fn read(&self, file: u64, stripe: u64, offset_in_stripe: u64, out: &mut [u8]) {
        debug_assert!(offset_in_stripe + out.len() as u64 <= self.stripe_size);
        match self.stripes.get(&(file, stripe)) {
            Some(buf) => {
                let lo = offset_in_stripe as usize;
                out.copy_from_slice(&buf[lo..lo + out.len()]);
            }
            None => out.fill(0),
        }
    }

    /// Drop every stripe of `file`.
    pub fn remove_file(&mut self, file: u64) {
        self.stripes.retain(|&(f, _), _| f != file);
    }

    /// Number of resident stripes (diagnostics).
    pub fn resident_stripes(&self) -> usize {
        self.stripes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read() {
        let mut s = StripeStore::new(16);
        s.write(1, 0, 4, &[1, 2, 3]);
        let mut out = [9u8; 6];
        s.read(1, 0, 2, &mut out);
        assert_eq!(out, [0, 0, 1, 2, 3, 0]);
    }

    #[test]
    fn unwritten_reads_zero() {
        let s = StripeStore::new(8);
        let mut out = [7u8; 8];
        s.read(0, 5, 0, &mut out);
        assert_eq!(out, [0; 8]);
    }

    #[test]
    fn files_are_isolated() {
        let mut s = StripeStore::new(8);
        s.write(1, 0, 0, &[1; 8]);
        s.write(2, 0, 0, &[2; 8]);
        let mut out = [0u8; 8];
        s.read(1, 0, 0, &mut out);
        assert_eq!(out, [1; 8]);
        s.remove_file(1);
        s.read(1, 0, 0, &mut out);
        assert_eq!(out, [0; 8]);
        s.read(2, 0, 0, &mut out);
        assert_eq!(out, [2; 8]);
    }

    #[test]
    fn overwrite_within_stripe() {
        let mut s = StripeStore::new(8);
        s.write(0, 3, 0, &[1; 8]);
        s.write(0, 3, 2, &[9, 9]);
        let mut out = [0u8; 8];
        s.read(0, 3, 0, &mut out);
        assert_eq!(out, [1, 1, 9, 9, 1, 1, 1, 1]);
        assert_eq!(s.resident_stripes(), 1);
    }
}
