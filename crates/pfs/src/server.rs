//! One I/O server: a disk queue plus its stripe store.
//!
//! A server services requests one at a time (`next_free` models the queue);
//! each request is charged by the [`hpc_sim::DiskModel`]. A request that
//! starts at the file offset where the server's previous request on that
//! file ended is *sequential* and skips the positioning cost — this is what
//! rewards the large ordered writes produced by two-phase collective I/O.

use std::collections::HashMap;

use hpc_sim::{DiskModel, FaultKind, FaultPlan, Time};

use crate::storage::{StorageMode, StripeStore};
use crate::stripe::StripeChunk;

/// State of one I/O server. Wrapped in a mutex by the file system.
pub struct Server {
    /// When the disk becomes idle.
    next_free: Time,
    /// Per-file end offset of the last request (sequentiality detection).
    last_end: HashMap<u64, u64>,
    /// Stripe payload storage.
    store: StripeStore,
    mode: StorageMode,
    stripe_size: u64,
    /// Fault-injection plan (inert by default).
    plan: FaultPlan,
    /// This server's index (keys the fault decisions).
    server_id: usize,
    /// Monotonic operation counter; serialized under the server's mutex,
    /// so `(seed, server_id, ops)` fully determines each fault decision.
    ops: u64,
}

/// Timing outcome of one server request.
#[derive(Clone, Copy, Debug)]
pub struct ServiceOutcome {
    /// When the request completed (or the failure was reported).
    pub done: Time,
    /// Whether the positioning cost was charged.
    pub seeked: bool,
    /// Distance (bytes) between the previous request's end and this
    /// request's start on the same file; 0 when sequential or when this is
    /// the file's first request on this server.
    pub seek_distance: u64,
    /// The fault injected while servicing, if any. Stalls complete the
    /// request (the delay is inside `done`); transient/short/crashed
    /// outcomes transferred only `bytes_done` bytes.
    pub injected: Option<FaultKind>,
    /// Bytes actually transferred — the full request normally and for
    /// stalls, a strict prefix for short I/O, zero for transient/crashed.
    pub bytes_done: u64,
}

impl ServiceOutcome {
    /// Whether the request fully transferred (stalls count as success).
    pub fn is_complete(&self) -> bool {
        !matches!(
            self.injected,
            Some(FaultKind::Transient) | Some(FaultKind::Short { .. }) | Some(FaultKind::Crashed)
        )
    }
}

impl Server {
    /// New idle server with fault injection disabled.
    pub fn new(stripe_size: u64, mode: StorageMode) -> Server {
        Server::with_faults(stripe_size, mode, FaultPlan::default(), 0)
    }

    /// New idle server injecting faults per `plan`, identified as
    /// `server_id` in the plan's decisions.
    pub fn with_faults(
        stripe_size: u64,
        mode: StorageMode,
        plan: FaultPlan,
        server_id: usize,
    ) -> Server {
        Server {
            next_free: Time::ZERO,
            last_end: HashMap::new(),
            store: StripeStore::new(stripe_size),
            mode,
            stripe_size,
            plan,
            server_id,
            ops: 0,
        }
    }

    /// Service a write of `chunks` (all owned by this server, file order)
    /// carrying `data` slices parallel to `chunks`. `arrival` is when the
    /// request reaches the server. `metadata_sized` classifies the *whole
    /// client request* (not just this server's portion) for
    /// [`StorageMode::MetadataOnly`].
    pub fn write(
        &mut self,
        disk: &DiskModel,
        file: u64,
        arrival: Time,
        chunks: &[StripeChunk],
        data: &[&[u8]],
        metadata_sized: bool,
    ) -> ServiceOutcome {
        debug_assert_eq!(chunks.len(), data.len());
        let bytes: u64 = chunks.iter().map(|c| c.len).sum();
        match self.decide(arrival, bytes) {
            FaultKind::None => {
                self.write_serviced(disk, file, arrival, chunks, data, metadata_sized, None)
            }
            FaultKind::Stall { delay } => {
                let out = self.write_serviced(
                    disk,
                    file,
                    arrival,
                    chunks,
                    data,
                    metadata_sized,
                    Some(FaultKind::Stall { delay }),
                );
                self.next_free += delay;
                ServiceOutcome {
                    done: out.done + delay,
                    ..out
                }
            }
            FaultKind::Transient => self.refuse(disk, arrival, FaultKind::Transient),
            FaultKind::Crashed => ServiceOutcome {
                // The server does not respond; the client detects the
                // failure after a request-timeout's worth of virtual time.
                // The disk queue is untouched — the machine is down.
                done: arrival + disk.per_request,
                seeked: false,
                seek_distance: 0,
                injected: Some(FaultKind::Crashed),
                bytes_done: 0,
            },
            FaultKind::Short { bytes_done } => {
                // Transfer only the first `bytes_done` bytes of the request
                // (in file order), exactly like a short write(2).
                let mut remaining = bytes_done;
                let mut tchunks = Vec::new();
                let mut tdata: Vec<&[u8]> = Vec::new();
                for (c, d) in chunks.iter().zip(data) {
                    if remaining == 0 {
                        break;
                    }
                    let take = c.len.min(remaining);
                    tchunks.push(StripeChunk { len: take, ..*c });
                    tdata.push(&d[..take as usize]);
                    remaining -= take;
                }
                let out = self.write_serviced(
                    disk,
                    file,
                    arrival,
                    &tchunks,
                    &tdata,
                    metadata_sized,
                    Some(FaultKind::Short { bytes_done }),
                );
                ServiceOutcome { bytes_done, ..out }
            }
        }
    }

    /// The fault-free write path: store (mode permitting), charge disk
    /// time, apply the partial-stripe penalty.
    #[allow(clippy::too_many_arguments)]
    fn write_serviced(
        &mut self,
        disk: &DiskModel,
        file: u64,
        arrival: Time,
        chunks: &[StripeChunk],
        data: &[&[u8]],
        metadata_sized: bool,
        injected: Option<FaultKind>,
    ) -> ServiceOutcome {
        let keep = match self.mode {
            StorageMode::Full => true,
            StorageMode::CostOnly => false,
            StorageMode::MetadataOnly => metadata_sized,
        };
        if keep {
            for (c, d) in chunks.iter().zip(data) {
                debug_assert_eq!(c.len as usize, d.len());
                self.store.write(file, c.stripe, c.offset_in_stripe, d);
            }
        }
        // GPFS-style partial-block penalty: a write that does not cover a
        // whole stripe forces the server to read-modify-write that stripe.
        // Of one coalesced request only the first and last chunks can be
        // partial. This is precisely why ROMIO aligns collective-buffering
        // file domains to the file system boundary: aligned two-phase
        // writes avoid the penalty that unaligned independent writes pay on
        // every request.
        let partial = chunks
            .iter()
            .filter(|c| c.offset_in_stripe != 0 || c.len < self.stripe_size)
            .count();
        let out = self.service(disk, file, arrival, chunks, injected);
        if partial > 0 {
            let rmw = disk.stream(partial * self.stripe_size as usize);
            self.next_free += rmw;
            ServiceOutcome {
                done: out.done + rmw,
                ..out
            }
        } else {
            out
        }
    }

    /// Service a read of `chunks`, filling `out` slices parallel to `chunks`.
    pub fn read(
        &mut self,
        disk: &DiskModel,
        file: u64,
        arrival: Time,
        chunks: &[StripeChunk],
        out: &mut [&mut [u8]],
    ) -> ServiceOutcome {
        debug_assert_eq!(chunks.len(), out.len());
        let bytes: u64 = chunks.iter().map(|c| c.len).sum();
        match self.decide(arrival, bytes) {
            FaultKind::None => self.read_serviced(disk, file, arrival, chunks, out, None),
            FaultKind::Stall { delay } => {
                let o = self.read_serviced(
                    disk,
                    file,
                    arrival,
                    chunks,
                    out,
                    Some(FaultKind::Stall { delay }),
                );
                self.next_free += delay;
                ServiceOutcome {
                    done: o.done + delay,
                    ..o
                }
            }
            FaultKind::Transient => self.refuse(disk, arrival, FaultKind::Transient),
            FaultKind::Crashed => ServiceOutcome {
                done: arrival + disk.per_request,
                seeked: false,
                seek_distance: 0,
                injected: Some(FaultKind::Crashed),
                bytes_done: 0,
            },
            FaultKind::Short { bytes_done } => {
                // Deliver only the first `bytes_done` bytes; the suffix of
                // the output buffers is untouched so the recovery layer can
                // resume at the partial offset.
                let mut remaining = bytes_done;
                let mut tchunks = Vec::new();
                for (c, o) in chunks.iter().zip(out.iter_mut()) {
                    if remaining == 0 {
                        break;
                    }
                    let take = c.len.min(remaining);
                    let prefix = &mut o[..take as usize];
                    match self.mode {
                        StorageMode::Full | StorageMode::MetadataOnly => {
                            self.store.read(file, c.stripe, c.offset_in_stripe, prefix)
                        }
                        StorageMode::CostOnly => prefix.fill(0),
                    }
                    tchunks.push(StripeChunk { len: take, ..*c });
                    remaining -= take;
                }
                let o = self.service(
                    disk,
                    file,
                    arrival,
                    &tchunks,
                    Some(FaultKind::Short { bytes_done }),
                );
                ServiceOutcome { bytes_done, ..o }
            }
        }
    }

    /// The fault-free read path.
    fn read_serviced(
        &mut self,
        disk: &DiskModel,
        file: u64,
        arrival: Time,
        chunks: &[StripeChunk],
        out: &mut [&mut [u8]],
        injected: Option<FaultKind>,
    ) -> ServiceOutcome {
        for (c, o) in chunks.iter().zip(out.iter_mut()) {
            debug_assert_eq!(c.len as usize, o.len());
            match self.mode {
                StorageMode::Full | StorageMode::MetadataOnly => {
                    self.store.read(file, c.stripe, c.offset_in_stripe, o)
                }
                StorageMode::CostOnly => o.fill(0),
            }
        }
        self.service(disk, file, arrival, chunks, injected)
    }

    /// Draw the fault decision for the next operation. Free when the plan
    /// is inert.
    fn decide(&mut self, arrival: Time, bytes: u64) -> FaultKind {
        if !self.plan.is_active() {
            return FaultKind::None;
        }
        let op = self.ops;
        self.ops += 1;
        self.plan.decide(self.server_id, op, arrival, bytes)
    }

    /// A failed attempt: the request reached the disk queue and bounced.
    /// The per-request overhead is charged so fault storms cost time.
    fn refuse(&mut self, disk: &DiskModel, arrival: Time, kind: FaultKind) -> ServiceOutcome {
        let start = self.next_free.max(arrival);
        let done = start + disk.per_request;
        self.next_free = done;
        ServiceOutcome {
            done,
            seeked: false,
            seek_distance: 0,
            injected: Some(kind),
            bytes_done: 0,
        }
    }

    /// Charge the disk time for one coalesced request over `chunks`.
    fn service(
        &mut self,
        disk: &DiskModel,
        file: u64,
        arrival: Time,
        chunks: &[StripeChunk],
        injected: Option<FaultKind>,
    ) -> ServiceOutcome {
        let bytes: u64 = chunks.iter().map(|c| c.len).sum();
        if chunks.is_empty() {
            return ServiceOutcome {
                done: arrival,
                seeked: false,
                seek_distance: 0,
                injected,
                bytes_done: 0,
            };
        }
        let first = chunks[0].file_offset;
        let last_end = chunks.last().map(|c| c.file_offset + c.len).unwrap();
        let prev_end = self.last_end.get(&file).copied();
        let sequential = prev_end == Some(first);
        self.last_end.insert(file, last_end);

        let start = self.next_free.max(arrival);
        let done = start + disk.request(bytes as usize, sequential);
        self.next_free = done;
        ServiceOutcome {
            done,
            seeked: !sequential,
            seek_distance: prev_end.map(|e| e.abs_diff(first)).unwrap_or(0),
            injected,
            bytes_done: bytes,
        }
    }

    /// Drop stored stripes of `file` and forget its position state.
    pub fn remove_file(&mut self, file: u64) {
        self.store.remove_file(file);
        self.last_end.remove(&file);
    }

    /// Direct store access for export (bypasses timing).
    pub fn peek(&self, file: u64, stripe: u64, offset_in_stripe: u64, out: &mut [u8]) {
        self.store.read(file, stripe, offset_in_stripe, out);
    }

    /// Direct store write for import (bypasses timing). No-op in
    /// [`StorageMode::CostOnly`].
    pub fn poke(&mut self, file: u64, stripe: u64, offset_in_stripe: u64, data: &[u8]) {
        if self.mode != StorageMode::CostOnly {
            self.store.write(file, stripe, offset_in_stripe, data);
        }
    }

    /// Reset the disk queue and position state (benchmark phases), keeping
    /// stored data.
    pub fn reset_timing(&mut self) {
        self.next_free = Time::ZERO;
        self.last_end.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn disk() -> DiskModel {
        DiskModel {
            per_request: Time::from_micros(100),
            seek: Time::from_millis(1),
            bandwidth: 1e8,
        }
    }

    fn chunk(file_offset: u64, len: u64) -> StripeChunk {
        StripeChunk {
            server: 0,
            stripe: file_offset / 1024,
            file_offset,
            offset_in_stripe: file_offset % 1024,
            len,
        }
    }

    #[test]
    fn sequential_requests_skip_seek() {
        let mut s = Server::new(1024, StorageMode::Full);
        let d = disk();
        let a = s.write(&d, 0, Time::ZERO, &[chunk(0, 100)], &[&[1u8; 100]], true);
        assert!(a.seeked);
        let b = s.write(&d, 0, a.done, &[chunk(100, 100)], &[&[2u8; 100]], true);
        assert!(!b.seeked);
        let c = s.write(&d, 0, b.done, &[chunk(500, 100)], &[&[3u8; 100]], true);
        assert!(c.seeked);
    }

    #[test]
    fn queueing_delays_early_arrivals() {
        let mut s = Server::new(1024, StorageMode::Full);
        let d = disk();
        let a = s.write(&d, 0, Time::ZERO, &[chunk(0, 1000)], &[&[0u8; 1000]], true);
        // Second request arrives "before" the first finishes: it queues.
        let b = s.write(
            &d,
            0,
            Time::ZERO,
            &[chunk(1024, 1000)],
            &[&[0u8; 1000]],
            true,
        );
        assert!(b.done > a.done);
    }

    #[test]
    fn read_returns_written_bytes() {
        let mut s = Server::new(1024, StorageMode::Full);
        let d = disk();
        s.write(&d, 7, Time::ZERO, &[chunk(10, 4)], &[&[5, 6, 7, 8]], true);
        let mut buf = [0u8; 4];
        let mut outs: Vec<&mut [u8]> = vec![&mut buf];
        s.read(&d, 7, Time::ZERO, &[chunk(10, 4)], &mut outs);
        assert_eq!(buf, [5, 6, 7, 8]);
    }

    #[test]
    fn cost_only_discards_payload() {
        let mut s = Server::new(1024, StorageMode::CostOnly);
        let d = disk();
        s.write(&d, 0, Time::ZERO, &[chunk(0, 4)], &[&[1, 2, 3, 4]], true);
        let mut buf = [9u8; 4];
        let mut outs: Vec<&mut [u8]> = vec![&mut buf];
        s.read(&d, 0, Time::ZERO, &[chunk(0, 4)], &mut outs);
        assert_eq!(buf, [0, 0, 0, 0]);
    }

    #[test]
    fn transient_fault_transfers_nothing_and_costs_time() {
        let plan = FaultPlan {
            transient: 1.0,
            ..FaultPlan::default()
        };
        let mut s = Server::with_faults(1024, StorageMode::Full, plan, 0);
        let d = disk();
        let out = s.write(&d, 0, Time::ZERO, &[chunk(0, 100)], &[&[1u8; 100]], true);
        assert_eq!(out.injected, Some(FaultKind::Transient));
        assert_eq!(out.bytes_done, 0);
        assert!(!out.is_complete());
        assert!(out.done > Time::ZERO);
        // Nothing was stored.
        let mut buf = [9u8; 100];
        s.peek(0, 0, 0, &mut buf);
        assert_eq!(buf, [0u8; 100]);
    }

    #[test]
    fn short_write_stores_exact_prefix() {
        let plan = FaultPlan {
            short: 1.0,
            ..FaultPlan::default()
        };
        let mut s = Server::with_faults(1024, StorageMode::Full, plan, 0);
        let d = disk();
        let data: Vec<u8> = (1..=200).map(|i| (i % 251) as u8).collect();
        let out = s.write(&d, 0, Time::ZERO, &[chunk(0, 200)], &[&data], true);
        let done = match out.injected {
            Some(FaultKind::Short { bytes_done }) => bytes_done,
            other => panic!("expected short fault, got {other:?}"),
        };
        assert_eq!(out.bytes_done, done);
        assert!(done > 0 && done < 200);
        let mut buf = vec![0u8; 200];
        s.peek(0, 0, 0, &mut buf);
        assert_eq!(&buf[..done as usize], &data[..done as usize]);
        assert_eq!(&buf[done as usize..], &vec![0u8; 200 - done as usize][..]);
    }

    #[test]
    fn stall_completes_but_takes_longer() {
        let d = disk();
        let mut plain = Server::new(1024, StorageMode::Full);
        let base = plain.write(&d, 0, Time::ZERO, &[chunk(0, 100)], &[&[1u8; 100]], true);
        let plan = FaultPlan {
            stall: 1.0,
            stall_time: Time::from_millis(10),
            ..FaultPlan::default()
        };
        let mut s = Server::with_faults(1024, StorageMode::Full, plan, 0);
        let out = s.write(&d, 0, Time::ZERO, &[chunk(0, 100)], &[&[1u8; 100]], true);
        assert!(matches!(out.injected, Some(FaultKind::Stall { .. })));
        assert!(out.is_complete());
        assert_eq!(out.bytes_done, 100);
        assert!(out.done >= base.done + Time::from_millis(10));
        // The payload still landed.
        let mut buf = [0u8; 100];
        s.peek(0, 0, 0, &mut buf);
        assert_eq!(buf, [1u8; 100]);
    }

    #[test]
    fn crashed_server_refuses_until_restart() {
        let plan = FaultPlan {
            crash: Some(hpc_sim::CrashSpec {
                server: 0,
                at: Time::ZERO,
                restart: Some(Time::from_millis(1)),
            }),
            ..FaultPlan::default()
        };
        let mut s = Server::with_faults(1024, StorageMode::Full, plan, 0);
        let d = disk();
        let out = s.write(&d, 0, Time::ZERO, &[chunk(0, 50)], &[&[3u8; 50]], true);
        assert_eq!(out.injected, Some(FaultKind::Crashed));
        assert_eq!(out.bytes_done, 0);
        // After restart the same write succeeds.
        let out = s.write(
            &d,
            0,
            Time::from_millis(2),
            &[chunk(0, 50)],
            &[&[3u8; 50]],
            true,
        );
        assert!(out.is_complete());
    }

    #[test]
    fn per_file_sequentiality() {
        let mut s = Server::new(1024, StorageMode::Full);
        let d = disk();
        let a = s.write(&d, 1, Time::ZERO, &[chunk(0, 100)], &[&[0u8; 100]], true);
        // Different file at the "same" position: still a seek.
        let b = s.write(&d, 2, a.done, &[chunk(100, 100)], &[&[0u8; 100]], true);
        assert!(b.seeked);
        // Original file continues sequentially.
        let c = s.write(&d, 1, b.done, &[chunk(100, 100)], &[&[0u8; 100]], true);
        assert!(!c.seeked);
    }
}
