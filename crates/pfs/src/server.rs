//! One I/O server: a dual-resource service engine plus its stripe store.
//!
//! A server runs two pipelined stages (see [`hpc_sim::service`]): a NIC
//! that transfers request payloads and a disk charged by the
//! [`hpc_sim::DiskModel`], connected by a bounded admission queue — while
//! the disk services request *k*, the NIC already receives request *k+1*.
//! A request that starts at the **server-local** disk address where the
//! server's previous request on that file ended is *sequential* and skips
//! the positioning cost. Local addressing (stripe index divided by the
//! server count) means a client streaming the file in order — or an
//! aggregator writing the consecutive stripes it owns — stays sequential
//! on every server even though the file offsets it touches there are
//! strided; this is what rewards the large ordered writes produced by
//! two-phase collective I/O.

use std::collections::HashMap;

use hpc_sim::{DiskModel, FaultKind, FaultPlan, ServiceEngine, ServiceModel, StageTiming, Time};

use crate::storage::{StorageMode, StripeStore};
use crate::stripe::StripeChunk;

/// State of one I/O server. Wrapped in a mutex by the file system.
pub struct Server {
    /// NIC + disk stage clocks and the bounded admission queue.
    engine: ServiceEngine,
    /// Per-file *local* end address of the last request (sequentiality
    /// detection in the server's own address space).
    last_end: HashMap<u64, u64>,
    /// Stripe payload storage.
    store: StripeStore,
    mode: StorageMode,
    stripe_size: u64,
    /// How many servers the file system stripes across; maps a stripe
    /// index to this server's local address space.
    nservers: u64,
    /// Fault-injection plan (inert by default).
    plan: FaultPlan,
    /// This server's index (keys the fault decisions).
    server_id: usize,
    /// Monotonic operation counter; serialized under the server's mutex,
    /// so `(seed, server_id, ops)` fully determines each fault decision.
    ops: u64,
}

/// Timing outcome of one server request.
#[derive(Clone, Copy, Debug)]
pub struct ServiceOutcome {
    /// When the request completed from the client's point of view: the
    /// durable (disk) point for writes, the NIC ship-back for reads, the
    /// failure report for faults.
    pub done: Time,
    /// Stage breakdown: arrival, admission, NIC interval, disk interval,
    /// queue stall and NIC/disk overlap.
    pub stages: StageTiming,
    /// Whether the positioning cost was charged.
    pub seeked: bool,
    /// Distance (bytes, local address space) between the previous
    /// request's end and this request's start on the same file; 0 when
    /// sequential or when this is the file's first request on this server.
    pub seek_distance: u64,
    /// The fault injected while servicing, if any. Stalls complete the
    /// request (the delay is inside `done`); transient/short/crashed
    /// outcomes transferred only `bytes_done` bytes.
    pub injected: Option<FaultKind>,
    /// Bytes actually transferred — the full request normally and for
    /// stalls, a strict prefix for short I/O, zero for transient/crashed.
    pub bytes_done: u64,
}

impl ServiceOutcome {
    /// Whether the request fully transferred (stalls count as success).
    pub fn is_complete(&self) -> bool {
        !matches!(
            self.injected,
            Some(FaultKind::Transient) | Some(FaultKind::Short { .. }) | Some(FaultKind::Crashed)
        )
    }

    /// When the server's NIC finished receiving a write — the earliest
    /// point a handoff-acknowledging client may proceed. The payload is
    /// not durable until [`ServiceOutcome::done`].
    pub fn handoff(&self) -> Time {
        self.stages.nic_done
    }
}

impl Server {
    /// New idle single-resource-equivalent server (pass-through NIC,
    /// unbounded queue) with fault injection disabled.
    pub fn new(stripe_size: u64, mode: StorageMode) -> Server {
        Server::with_faults(stripe_size, mode, FaultPlan::default(), 0)
    }

    /// New idle server injecting faults per `plan`, identified as
    /// `server_id` in the plan's decisions. Pass-through service model.
    pub fn with_faults(
        stripe_size: u64,
        mode: StorageMode,
        plan: FaultPlan,
        server_id: usize,
    ) -> Server {
        Server::configure(
            stripe_size,
            1,
            mode,
            ServiceModel::passthrough(),
            plan,
            server_id,
        )
    }

    /// Fully configured server: one of `nservers` peers, servicing
    /// requests through the dual-resource `service` model.
    pub fn configure(
        stripe_size: u64,
        nservers: usize,
        mode: StorageMode,
        service: ServiceModel,
        plan: FaultPlan,
        server_id: usize,
    ) -> Server {
        assert!(nservers > 0, "at least one I/O server is required");
        Server {
            engine: ServiceEngine::new(service),
            last_end: HashMap::new(),
            store: StripeStore::new(stripe_size),
            mode,
            stripe_size,
            nservers: nservers as u64,
            plan,
            server_id,
            ops: 0,
        }
    }

    /// Override the bounded admission queue depth
    /// (`pnc_server_queue_depth`; `0` = unbounded).
    pub fn set_queue_depth(&mut self, depth: usize) {
        self.engine.set_queue_depth(depth);
    }

    /// This server's local disk address of a chunk: consecutive stripes
    /// owned by the server are physically adjacent on its platter.
    fn local_of(&self, c: &StripeChunk) -> u64 {
        (c.stripe / self.nservers) * self.stripe_size + c.offset_in_stripe
    }

    /// Update position state and decide sequentiality for one coalesced
    /// request (`chunks` non-empty, file order).
    fn position(&mut self, file: u64, chunks: &[StripeChunk]) -> (bool, u64) {
        let first = self.local_of(&chunks[0]);
        let last = chunks.last().map(|c| self.local_of(c) + c.len).unwrap();
        let prev_end = self.last_end.get(&file).copied();
        let sequential = prev_end == Some(first);
        self.last_end.insert(file, last);
        (sequential, prev_end.map(|e| e.abs_diff(first)).unwrap_or(0))
    }

    /// Service a write of `chunks` (all owned by this server, file order)
    /// carrying `data` slices parallel to `chunks`. `arrival` is when the
    /// request reaches the server. `metadata_sized` classifies the *whole
    /// client request* (not just this server's portion) for
    /// [`StorageMode::MetadataOnly`].
    pub fn write(
        &mut self,
        disk: &DiskModel,
        file: u64,
        arrival: Time,
        chunks: &[StripeChunk],
        data: &[&[u8]],
        metadata_sized: bool,
    ) -> ServiceOutcome {
        debug_assert_eq!(chunks.len(), data.len());
        match self.decide(arrival, chunks) {
            FaultKind::None => self.write_serviced(
                disk,
                file,
                arrival,
                chunks,
                data,
                metadata_sized,
                None,
                Time::ZERO,
            ),
            FaultKind::Stall { delay } => self.write_serviced(
                disk,
                file,
                arrival,
                chunks,
                data,
                metadata_sized,
                Some(FaultKind::Stall { delay }),
                delay,
            ),
            FaultKind::Transient => self.refuse(disk, file, arrival, false, FaultKind::Transient),
            FaultKind::Crashed => self.crashed(disk, arrival),
            FaultKind::Short { bytes_done } => {
                // Transfer only the first `bytes_done` bytes of the request
                // (in file order), exactly like a short write(2).
                let mut remaining = bytes_done;
                let mut tchunks = Vec::new();
                let mut tdata: Vec<&[u8]> = Vec::new();
                for (c, d) in chunks.iter().zip(data) {
                    if remaining == 0 {
                        break;
                    }
                    let take = c.len.min(remaining);
                    tchunks.push(StripeChunk { len: take, ..*c });
                    tdata.push(&d[..take as usize]);
                    remaining -= take;
                }
                let out = self.write_serviced(
                    disk,
                    file,
                    arrival,
                    &tchunks,
                    &tdata,
                    metadata_sized,
                    Some(FaultKind::Short { bytes_done }),
                    Time::ZERO,
                );
                ServiceOutcome { bytes_done, ..out }
            }
        }
    }

    /// The write service path: store (mode permitting), then run the NIC
    /// and disk stages. The disk stage carries positioning, streaming, the
    /// partial-stripe penalty and any fault `extra_delay` (stalls).
    #[allow(clippy::too_many_arguments)]
    fn write_serviced(
        &mut self,
        disk: &DiskModel,
        file: u64,
        arrival: Time,
        chunks: &[StripeChunk],
        data: &[&[u8]],
        metadata_sized: bool,
        injected: Option<FaultKind>,
        extra_delay: Time,
    ) -> ServiceOutcome {
        let keep = match self.mode {
            StorageMode::Full => true,
            StorageMode::CostOnly => false,
            StorageMode::MetadataOnly => metadata_sized,
        };
        if keep {
            for (c, d) in chunks.iter().zip(data) {
                debug_assert_eq!(c.len as usize, d.len());
                self.store.write(file, c.stripe, c.offset_in_stripe, d);
            }
        }
        let bytes: u64 = chunks.iter().map(|c| c.len).sum();
        if chunks.is_empty() {
            return ServiceOutcome {
                done: arrival,
                stages: idle_stages(arrival),
                seeked: false,
                seek_distance: 0,
                injected,
                bytes_done: 0,
            };
        }
        // GPFS-style partial-block penalty: a write that does not cover a
        // whole stripe forces the server to read-modify-write that stripe.
        // Of one coalesced contiguous request only the first and last
        // chunks can be partial. This is precisely why ROMIO aligns
        // collective-buffering file domains to the file system boundary:
        // aligned two-phase writes avoid the penalty that unaligned
        // independent writes pay on every request.
        let partial = chunks
            .iter()
            .filter(|c| c.offset_in_stripe != 0 || c.len < self.stripe_size)
            .count();
        let (sequential, seek_distance) = self.position(file, chunks);
        let mut disk_time = disk.request(bytes as usize, sequential) + extra_delay;
        if partial > 0 {
            disk_time += disk.stream(partial * self.stripe_size as usize);
        }
        let stages = self
            .engine
            .write_tagged(arrival, bytes as usize, disk_time, file);
        ServiceOutcome {
            done: stages.disk_done,
            stages,
            seeked: !sequential,
            seek_distance,
            injected,
            bytes_done: bytes,
        }
    }

    /// Service a read of `chunks`, filling `out` slices parallel to `chunks`.
    pub fn read(
        &mut self,
        disk: &DiskModel,
        file: u64,
        arrival: Time,
        chunks: &[StripeChunk],
        out: &mut [&mut [u8]],
    ) -> ServiceOutcome {
        debug_assert_eq!(chunks.len(), out.len());
        match self.decide(arrival, chunks) {
            FaultKind::None => {
                self.read_serviced(disk, file, arrival, chunks, out, None, Time::ZERO)
            }
            FaultKind::Stall { delay } => self.read_serviced(
                disk,
                file,
                arrival,
                chunks,
                out,
                Some(FaultKind::Stall { delay }),
                delay,
            ),
            FaultKind::Transient => self.refuse(disk, file, arrival, true, FaultKind::Transient),
            FaultKind::Crashed => self.crashed(disk, arrival),
            FaultKind::Short { bytes_done } => {
                // Deliver only the first `bytes_done` bytes; the suffix of
                // the output buffers is untouched so the recovery layer can
                // resume at the partial offset.
                let mut remaining = bytes_done;
                let mut tchunks = Vec::new();
                for (c, o) in chunks.iter().zip(out.iter_mut()) {
                    if remaining == 0 {
                        break;
                    }
                    let take = c.len.min(remaining);
                    let prefix = &mut o[..take as usize];
                    match self.mode {
                        StorageMode::Full | StorageMode::MetadataOnly => {
                            self.store.read(file, c.stripe, c.offset_in_stripe, prefix)
                        }
                        StorageMode::CostOnly => prefix.fill(0),
                    }
                    tchunks.push(StripeChunk { len: take, ..*c });
                    remaining -= take;
                }
                let o = self.read_cost(
                    disk,
                    file,
                    arrival,
                    &tchunks,
                    Some(FaultKind::Short { bytes_done }),
                    Time::ZERO,
                );
                ServiceOutcome { bytes_done, ..o }
            }
        }
    }

    /// The fault-free read path: fill buffers, then charge the stages.
    #[allow(clippy::too_many_arguments)]
    fn read_serviced(
        &mut self,
        disk: &DiskModel,
        file: u64,
        arrival: Time,
        chunks: &[StripeChunk],
        out: &mut [&mut [u8]],
        injected: Option<FaultKind>,
        extra_delay: Time,
    ) -> ServiceOutcome {
        for (c, o) in chunks.iter().zip(out.iter_mut()) {
            debug_assert_eq!(c.len as usize, o.len());
            match self.mode {
                StorageMode::Full | StorageMode::MetadataOnly => {
                    self.store.read(file, c.stripe, c.offset_in_stripe, o)
                }
                StorageMode::CostOnly => o.fill(0),
            }
        }
        self.read_cost(disk, file, arrival, chunks, injected, extra_delay)
    }

    /// Charge one coalesced read: disk stage first (positioning +
    /// streaming + `extra_delay`), then the NIC ships the payload back.
    fn read_cost(
        &mut self,
        disk: &DiskModel,
        file: u64,
        arrival: Time,
        chunks: &[StripeChunk],
        injected: Option<FaultKind>,
        extra_delay: Time,
    ) -> ServiceOutcome {
        let bytes: u64 = chunks.iter().map(|c| c.len).sum();
        if chunks.is_empty() {
            return ServiceOutcome {
                done: arrival,
                stages: idle_stages(arrival),
                seeked: false,
                seek_distance: 0,
                injected,
                bytes_done: 0,
            };
        }
        let (sequential, seek_distance) = self.position(file, chunks);
        let disk_time = disk.request(bytes as usize, sequential) + extra_delay;
        let stages = self
            .engine
            .read_tagged(arrival, bytes as usize, disk_time, file);
        ServiceOutcome {
            done: stages.nic_done,
            stages,
            seeked: !sequential,
            seek_distance,
            injected,
            bytes_done: bytes,
        }
    }

    /// Draw the fault decision for one coalesced request: one draw per
    /// stripe chunk, in file order. Vectored coalescing must not shrink
    /// the fault surface — each stripe a request touches is an
    /// independent opportunity to fail, exactly as when every stripe was
    /// its own request. The first faulting chunk decides the outcome; a
    /// failure past the first chunk completes the prefix, like a partial
    /// `writev`. Free when the plan is inert; deterministic under
    /// `(seed, server_id, ops)` because both collective engines issue
    /// identical chunk sequences.
    fn decide(&mut self, arrival: Time, chunks: &[StripeChunk]) -> FaultKind {
        if !self.plan.is_active() {
            return FaultKind::None;
        }
        let mut prefix = 0u64;
        for c in chunks {
            let op = self.ops;
            self.ops += 1;
            match self.plan.decide(self.server_id, op, arrival, c.len) {
                FaultKind::None => prefix += c.len,
                FaultKind::Crashed => return FaultKind::Crashed,
                FaultKind::Stall { delay } => return FaultKind::Stall { delay },
                FaultKind::Transient if prefix == 0 => return FaultKind::Transient,
                FaultKind::Transient => return FaultKind::Short { bytes_done: prefix },
                FaultKind::Short { bytes_done } => {
                    return FaultKind::Short {
                        bytes_done: prefix + bytes_done,
                    }
                }
            }
        }
        FaultKind::None
    }

    /// A failed attempt: the request reached the server and bounced. The
    /// per-request overhead still occupies the disk stage so fault storms
    /// cost time.
    fn refuse(
        &mut self,
        disk: &DiskModel,
        file: u64,
        arrival: Time,
        read: bool,
        kind: FaultKind,
    ) -> ServiceOutcome {
        let stages = if read {
            self.engine.read_tagged(arrival, 0, disk.per_request, file)
        } else {
            self.engine.write_tagged(arrival, 0, disk.per_request, file)
        };
        ServiceOutcome {
            done: if read {
                stages.nic_done
            } else {
                stages.disk_done
            },
            stages,
            seeked: false,
            seek_distance: 0,
            injected: Some(kind),
            bytes_done: 0,
        }
    }

    /// The server does not respond; the client detects the failure after
    /// a request-timeout's worth of virtual time. Neither stage clock is
    /// touched — the machine is down.
    fn crashed(&mut self, disk: &DiskModel, arrival: Time) -> ServiceOutcome {
        ServiceOutcome {
            done: arrival + disk.per_request,
            stages: idle_stages(arrival),
            seeked: false,
            seek_distance: 0,
            injected: Some(FaultKind::Crashed),
            bytes_done: 0,
        }
    }

    /// Charge a parity/rebuild *write* of `bytes` to this server's engine
    /// without drawing a fault decision or advancing the `ops` counter:
    /// redundancy maintenance must not perturb the `(seed, server_id, ops)`
    /// fault sequence of the data path, so a parity-on run injects exactly
    /// the faults a parity-off run would. `file` tags the request for
    /// cross-file contention accounting. Returns the durable (disk) time.
    pub fn aux_write(&mut self, disk: &DiskModel, file: u64, arrival: Time, bytes: u64) -> Time {
        if bytes == 0 {
            return arrival;
        }
        let disk_time = disk.request(bytes as usize, false);
        self.engine
            .write_tagged(arrival, bytes as usize, disk_time, file)
            .disk_done
    }

    /// Charge a reconstruction/rebuild *read* of `bytes` (same no-fault,
    /// no-`ops` contract as [`Server::aux_write`]). Returns the NIC
    /// ship-back time.
    pub fn aux_read(&mut self, disk: &DiskModel, file: u64, arrival: Time, bytes: u64) -> Time {
        if bytes == 0 {
            return arrival;
        }
        let disk_time = disk.request(bytes as usize, false);
        self.engine
            .read_tagged(arrival, bytes as usize, disk_time, file)
            .nic_done
    }

    /// Drop stored stripes of `file` and forget its position state.
    pub fn remove_file(&mut self, file: u64) {
        self.store.remove_file(file);
        self.last_end.remove(&file);
    }

    /// Direct store access for export (bypasses timing).
    pub fn peek(&self, file: u64, stripe: u64, offset_in_stripe: u64, out: &mut [u8]) {
        self.store.read(file, stripe, offset_in_stripe, out);
    }

    /// Direct store write for import (bypasses timing). No-op in
    /// [`StorageMode::CostOnly`].
    pub fn poke(&mut self, file: u64, stripe: u64, offset_in_stripe: u64, data: &[u8]) {
        if self.mode != StorageMode::CostOnly {
            self.store.write(file, stripe, offset_in_stripe, data);
        }
    }

    /// Reset the stage clocks, queue, position state **and the fault
    /// operation counter** (benchmark phases), keeping stored data. The
    /// `ops` reset matters: a phase run after `reset_timing` must draw the
    /// same `(seed, server_id, ops)` fault sequence as a fresh run, or
    /// per-phase results would not be reproducible in isolation.
    pub fn reset_timing(&mut self) {
        self.engine.reset();
        self.last_end.clear();
        self.ops = 0;
    }
}

/// Stage breakdown of a request that never occupied either stage (empty
/// request, crashed server).
fn idle_stages(arrival: Time) -> StageTiming {
    StageTiming {
        arrival,
        admit: arrival,
        nic_start: arrival,
        nic_done: arrival,
        disk_start: arrival,
        disk_done: arrival,
        queue_stall: Time::ZERO,
        overlap: Time::ZERO,
        depth: 0,
        cross_stall: Time::ZERO,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpc_sim::NetworkModel;

    fn disk() -> DiskModel {
        DiskModel {
            per_request: Time::from_micros(100),
            seek: Time::from_millis(1),
            bandwidth: 1e8,
        }
    }

    fn chunk(file_offset: u64, len: u64) -> StripeChunk {
        StripeChunk {
            server: 0,
            stripe: file_offset / 1024,
            file_offset,
            offset_in_stripe: file_offset % 1024,
            len,
        }
    }

    #[test]
    fn sequential_requests_skip_seek() {
        let mut s = Server::new(1024, StorageMode::Full);
        let d = disk();
        let a = s.write(&d, 0, Time::ZERO, &[chunk(0, 100)], &[&[1u8; 100]], true);
        assert!(a.seeked);
        let b = s.write(&d, 0, a.done, &[chunk(100, 100)], &[&[2u8; 100]], true);
        assert!(!b.seeked);
        let c = s.write(&d, 0, b.done, &[chunk(500, 100)], &[&[3u8; 100]], true);
        assert!(c.seeked);
    }

    #[test]
    fn queueing_delays_early_arrivals() {
        let mut s = Server::new(1024, StorageMode::Full);
        let d = disk();
        let a = s.write(&d, 0, Time::ZERO, &[chunk(0, 1000)], &[&[0u8; 1000]], true);
        // Second request arrives "before" the first finishes: it queues.
        let b = s.write(
            &d,
            0,
            Time::ZERO,
            &[chunk(1024, 1000)],
            &[&[0u8; 1000]],
            true,
        );
        assert!(b.done > a.done);
    }

    #[test]
    fn read_returns_written_bytes() {
        let mut s = Server::new(1024, StorageMode::Full);
        let d = disk();
        s.write(&d, 7, Time::ZERO, &[chunk(10, 4)], &[&[5, 6, 7, 8]], true);
        let mut buf = [0u8; 4];
        let mut outs: Vec<&mut [u8]> = vec![&mut buf];
        s.read(&d, 7, Time::ZERO, &[chunk(10, 4)], &mut outs);
        assert_eq!(buf, [5, 6, 7, 8]);
    }

    #[test]
    fn cost_only_discards_payload() {
        let mut s = Server::new(1024, StorageMode::CostOnly);
        let d = disk();
        s.write(&d, 0, Time::ZERO, &[chunk(0, 4)], &[&[1, 2, 3, 4]], true);
        let mut buf = [9u8; 4];
        let mut outs: Vec<&mut [u8]> = vec![&mut buf];
        s.read(&d, 0, Time::ZERO, &[chunk(0, 4)], &mut outs);
        assert_eq!(buf, [0, 0, 0, 0]);
    }

    #[test]
    fn transient_fault_transfers_nothing_and_costs_time() {
        let plan = FaultPlan {
            transient: 1.0,
            ..FaultPlan::default()
        };
        let mut s = Server::with_faults(1024, StorageMode::Full, plan, 0);
        let d = disk();
        let out = s.write(&d, 0, Time::ZERO, &[chunk(0, 100)], &[&[1u8; 100]], true);
        assert_eq!(out.injected, Some(FaultKind::Transient));
        assert_eq!(out.bytes_done, 0);
        assert!(!out.is_complete());
        assert!(out.done > Time::ZERO);
        // Nothing was stored.
        let mut buf = [9u8; 100];
        s.peek(0, 0, 0, &mut buf);
        assert_eq!(buf, [0u8; 100]);
    }

    #[test]
    fn short_write_stores_exact_prefix() {
        let plan = FaultPlan {
            short: 1.0,
            ..FaultPlan::default()
        };
        let mut s = Server::with_faults(1024, StorageMode::Full, plan, 0);
        let d = disk();
        let data: Vec<u8> = (1..=200).map(|i| (i % 251) as u8).collect();
        let out = s.write(&d, 0, Time::ZERO, &[chunk(0, 200)], &[&data], true);
        let done = match out.injected {
            Some(FaultKind::Short { bytes_done }) => bytes_done,
            other => panic!("expected short fault, got {other:?}"),
        };
        assert_eq!(out.bytes_done, done);
        assert!(done > 0 && done < 200);
        let mut buf = vec![0u8; 200];
        s.peek(0, 0, 0, &mut buf);
        assert_eq!(&buf[..done as usize], &data[..done as usize]);
        assert_eq!(&buf[done as usize..], &vec![0u8; 200 - done as usize][..]);
    }

    #[test]
    fn stall_completes_but_takes_longer() {
        let d = disk();
        let mut plain = Server::new(1024, StorageMode::Full);
        let base = plain.write(&d, 0, Time::ZERO, &[chunk(0, 100)], &[&[1u8; 100]], true);
        let plan = FaultPlan {
            stall: 1.0,
            stall_time: Time::from_millis(10),
            ..FaultPlan::default()
        };
        let mut s = Server::with_faults(1024, StorageMode::Full, plan, 0);
        let out = s.write(&d, 0, Time::ZERO, &[chunk(0, 100)], &[&[1u8; 100]], true);
        assert!(matches!(out.injected, Some(FaultKind::Stall { .. })));
        assert!(out.is_complete());
        assert_eq!(out.bytes_done, 100);
        assert!(out.done >= base.done + Time::from_millis(10));
        // The payload still landed.
        let mut buf = [0u8; 100];
        s.peek(0, 0, 0, &mut buf);
        assert_eq!(buf, [1u8; 100]);
    }

    #[test]
    fn crashed_server_refuses_until_restart() {
        let plan = FaultPlan {
            crashes: vec![hpc_sim::CrashSpec {
                server: 0,
                at: Time::ZERO,
                restart: Some(Time::from_millis(1)),
            }],
            ..FaultPlan::default()
        };
        let mut s = Server::with_faults(1024, StorageMode::Full, plan, 0);
        let d = disk();
        let out = s.write(&d, 0, Time::ZERO, &[chunk(0, 50)], &[&[3u8; 50]], true);
        assert_eq!(out.injected, Some(FaultKind::Crashed));
        assert_eq!(out.bytes_done, 0);
        // After restart the same write succeeds.
        let out = s.write(
            &d,
            0,
            Time::from_millis(2),
            &[chunk(0, 50)],
            &[&[3u8; 50]],
            true,
        );
        assert!(out.is_complete());
    }

    #[test]
    fn per_file_sequentiality() {
        let mut s = Server::new(1024, StorageMode::Full);
        let d = disk();
        let a = s.write(&d, 1, Time::ZERO, &[chunk(0, 100)], &[&[0u8; 100]], true);
        // Different file at the "same" position: still a seek.
        let b = s.write(&d, 2, a.done, &[chunk(100, 100)], &[&[0u8; 100]], true);
        assert!(b.seeked);
        // Original file continues sequentially.
        let c = s.write(&d, 1, b.done, &[chunk(100, 100)], &[&[0u8; 100]], true);
        assert!(!c.seeked);
    }

    #[test]
    fn strided_stripes_are_sequential_in_local_space() {
        // Server 1 of 4: it owns stripes 1, 5, 9, ... A client streaming
        // the file in order hands this server file offsets 1024, 5120,
        // 9216 — strided in file space, adjacent on the local platter.
        let service = ServiceModel::passthrough();
        let mut s = Server::configure(1024, 4, StorageMode::Full, service, FaultPlan::default(), 1);
        let d = disk();
        let mk = |stripe: u64| StripeChunk {
            server: 1,
            stripe,
            file_offset: stripe * 1024,
            offset_in_stripe: 0,
            len: 1024,
        };
        let a = s.write(&d, 0, Time::ZERO, &[mk(1)], &[&[0u8; 1024]], true);
        let b = s.write(&d, 0, a.done, &[mk(5)], &[&[0u8; 1024]], true);
        assert!(!b.seeked, "next owned stripe is local-sequential");
        let c = s.write(&d, 0, b.done, &[mk(13)], &[&[0u8; 1024]], true);
        assert!(c.seeked, "skipping an owned stripe seeks");
        assert_eq!(c.seek_distance, 1024, "one local stripe was skipped");
    }

    #[test]
    fn write_overlaps_nic_with_busy_disk() {
        let service = ServiceModel {
            nic: NetworkModel {
                latency: Time::from_micros(10),
                bandwidth: 2e8,
            },
            queue_depth: 4,
        };
        let mut s = Server::configure(
            1024,
            1,
            StorageMode::CostOnly,
            service,
            FaultPlan::default(),
            0,
        );
        let d = disk();
        let chunks = [chunk(0, 1024)];
        let data: [&[u8]; 1] = [&[0u8; 1024]];
        let a = s.write(&d, 0, Time::ZERO, &chunks, &data, true);
        let chunks2 = [chunk(1024, 1024)];
        let b = s.write(&d, 0, Time::ZERO, &chunks2, &data, true);
        assert!(b.handoff() < a.done, "NIC of b finished inside a's disk");
        assert!(b.stages.overlap > Time::ZERO);
        assert_eq!(b.done, a.done + d.request(1024, true));
    }

    #[test]
    fn reset_timing_resets_fault_ops_counter() {
        let plan = FaultPlan {
            transient: 0.3,
            short: 0.2,
            ..FaultPlan::default()
        };
        let d = disk();
        let run = |s: &mut Server| -> Vec<Option<FaultKind>> {
            (0..16)
                .map(|i| {
                    let c = [chunk(i * 1024, 512)];
                    let data: [&[u8]; 1] = [&[0u8; 512]];
                    s.write(&d, 0, Time::ZERO, &c, &data, true).injected
                })
                .collect()
        };
        let mut fresh = Server::with_faults(1024, StorageMode::Full, plan.clone(), 3);
        let first = run(&mut fresh);
        // Same server after a timing reset must draw the same faults as a
        // fresh run.
        fresh.reset_timing();
        let second = run(&mut fresh);
        assert_eq!(first, second, "reset_timing must rewind the ops counter");
    }
}
