//! Striping math: mapping file byte ranges onto I/O servers.
//!
//! Files are striped round-robin in fixed-size stripe units: stripe `k`
//! (bytes `[k*S, (k+1)*S)`) lives on server `k mod N`. A byte range splits
//! into per-stripe chunks; the per-server view of a contiguous range is a
//! set of stripes spaced `N*S` apart, which a real GPFS server services as
//! one streaming request — our cost model does the same.

/// Round-robin striping layout.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Striping {
    /// Stripe unit in bytes.
    pub stripe_size: u64,
    /// Number of I/O servers.
    pub nservers: usize,
}

/// One piece of a request that falls entirely within a single stripe.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StripeChunk {
    /// Owning server.
    pub server: usize,
    /// Stripe index within the file.
    pub stripe: u64,
    /// Byte offset in the file where this chunk starts.
    pub file_offset: u64,
    /// Offset of the chunk within its stripe.
    pub offset_in_stripe: u64,
    /// Chunk length in bytes.
    pub len: u64,
}

impl Striping {
    /// Create a layout; panics on degenerate parameters (library bug).
    pub fn new(stripe_size: u64, nservers: usize) -> Striping {
        assert!(stripe_size > 0, "stripe size must be positive");
        assert!(nservers > 0, "need at least one server");
        Striping {
            stripe_size,
            nservers,
        }
    }

    /// Which server owns the stripe containing `offset`.
    pub fn server_of(&self, offset: u64) -> usize {
        ((offset / self.stripe_size) % self.nservers as u64) as usize
    }

    /// Split `[offset, offset+len)` into per-stripe chunks, in file order.
    pub fn split(&self, offset: u64, len: u64) -> Vec<StripeChunk> {
        let mut out = Vec::new();
        let mut pos = offset;
        let end = offset + len;
        while pos < end {
            let stripe = pos / self.stripe_size;
            let in_stripe = pos % self.stripe_size;
            let take = (self.stripe_size - in_stripe).min(end - pos);
            out.push(StripeChunk {
                server: (stripe % self.nservers as u64) as usize,
                stripe,
                file_offset: pos,
                offset_in_stripe: in_stripe,
                len: take,
            });
            pos += take;
        }
        out
    }

    /// Data stripes covered by one parity row: `N-1`, so a row's
    /// consecutive stripes occupy `N-1` *distinct* servers and the one
    /// server the row skips can hold its parity. Requires `nservers >= 2`
    /// (with 2 servers each row is a single stripe and parity degenerates
    /// to mirroring).
    pub fn parity_row_width(&self) -> u64 {
        assert!(self.nservers >= 2, "parity needs at least two servers");
        (self.nservers - 1) as u64
    }

    /// Parity row covering data stripe `stripe`.
    pub fn parity_row_of(&self, stripe: u64) -> u64 {
        stripe / self.parity_row_width()
    }

    /// First data stripe of parity row `row`.
    pub fn row_first_stripe(&self, row: u64) -> u64 {
        row * self.parity_row_width()
    }

    /// Server holding the parity stripe of `row`: the one server none of
    /// the row's `N-1` consecutive data stripes land on. Because
    /// consecutive stripes walk the servers round-robin, this rotates
    /// RAID-5-style — no dedicated parity server bottleneck.
    pub fn parity_server_of(&self, row: u64) -> usize {
        let n = self.nservers as u64;
        ((self.row_first_stripe(row) + n - 1) % n) as usize
    }

    /// Group a request's chunks by server, preserving file order within each
    /// server. Returns `(server, chunks)` for servers that are touched.
    pub fn split_by_server(&self, offset: u64, len: u64) -> Vec<(usize, Vec<StripeChunk>)> {
        let mut per: Vec<Vec<StripeChunk>> = vec![Vec::new(); self.nservers];
        for c in self.split(offset, len) {
            per[c.server].push(c);
        }
        per.into_iter()
            .enumerate()
            .filter(|(_, v)| !v.is_empty())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_within_one_stripe() {
        let s = Striping::new(1024, 4);
        let chunks = s.split(100, 200);
        assert_eq!(chunks.len(), 1);
        assert_eq!(chunks[0].server, 0);
        assert_eq!(chunks[0].offset_in_stripe, 100);
        assert_eq!(chunks[0].len, 200);
    }

    #[test]
    fn split_across_stripes_round_robin() {
        let s = Striping::new(100, 3);
        let chunks = s.split(50, 300);
        // [50,100) srv0, [100,200) srv1, [200,300) srv2, [300,350) srv0
        let servers: Vec<usize> = chunks.iter().map(|c| c.server).collect();
        assert_eq!(servers, vec![0, 1, 2, 0]);
        let lens: Vec<u64> = chunks.iter().map(|c| c.len).collect();
        assert_eq!(lens, vec![50, 100, 100, 50]);
        assert_eq!(chunks.iter().map(|c| c.len).sum::<u64>(), 300);
    }

    #[test]
    fn split_preserves_coverage_exactly() {
        let s = Striping::new(64, 5);
        let chunks = s.split(1000, 1234);
        let mut pos = 1000;
        for c in &chunks {
            assert_eq!(c.file_offset, pos);
            assert_eq!(c.offset_in_stripe, pos % 64);
            assert_eq!(c.stripe, pos / 64);
            assert_eq!(c.server, s.server_of(pos));
            pos += c.len;
        }
        assert_eq!(pos, 2234);
    }

    #[test]
    fn split_by_server_groups() {
        let s = Striping::new(10, 2);
        let by = s.split_by_server(0, 40);
        assert_eq!(by.len(), 2);
        let (srv0, chunks0) = &by[0];
        assert_eq!(*srv0, 0);
        assert_eq!(chunks0.iter().map(|c| c.len).sum::<u64>(), 20);
        // Within-server chunks stay in file order.
        assert!(chunks0
            .windows(2)
            .all(|w| w[0].file_offset < w[1].file_offset));
    }

    #[test]
    fn parity_rows_never_collide_with_their_data() {
        for n in 2..=8usize {
            let s = Striping::new(64, n);
            for row in 0..64u64 {
                let p = s.parity_server_of(row);
                let first = s.row_first_stripe(row);
                let data: Vec<usize> = (first..first + s.parity_row_width())
                    .map(|k| (k % n as u64) as usize)
                    .collect();
                // The row's data stripes cover N-1 distinct servers, none
                // of them the parity server — a single server loss costs
                // at most one unit per row, so every row reconstructs.
                assert!(!data.contains(&p), "n={n} row={row}");
                let mut uniq = data.clone();
                uniq.sort_unstable();
                uniq.dedup();
                assert_eq!(uniq.len(), n - 1, "n={n} row={row}");
                for k in first..first + s.parity_row_width() {
                    assert_eq!(s.parity_row_of(k), row);
                }
            }
            // Parity rotates: over N consecutive rows every server takes a
            // turn.
            let mut seen: Vec<usize> = (0..n as u64).map(|r| s.parity_server_of(r)).collect();
            seen.sort_unstable();
            assert_eq!(seen, (0..n).collect::<Vec<_>>());
        }
    }

    #[test]
    fn zero_len_splits_to_nothing() {
        let s = Striping::new(16, 2);
        assert!(s.split(5, 0).is_empty());
        assert!(s.split_by_server(5, 0).is_empty());
    }

    #[test]
    fn single_server_takes_everything() {
        let s = Striping::new(8, 1);
        assert!(s.split(0, 100).iter().all(|c| c.server == 0));
    }
}
