//! A GPFS-like striped parallel file system, simulated.
//!
//! The paper's testbeds ran GPFS over dedicated I/O server nodes (12 on the
//! SDSC machine, 2 on ASCI Frost). This crate reproduces the two properties
//! of that system that the evaluation depends on:
//!
//! 1. **Byte-accurate storage.** Files are striped round-robin across
//!    servers and the bytes are really kept (in memory), so a netCDF file
//!    written through the whole parallel stack can be exported and re-read —
//!    correctness is testable end to end. For large benchmarks,
//!    [`StorageMode::CostOnly`] discards payloads and keeps only timing.
//! 2. **Virtual-time cost accounting.** Each server is a dual-resource
//!    pipeline ([`hpc_sim::ServiceEngine`]): a server NIC stage and a disk
//!    stage charged by the [`hpc_sim::DiskModel`], joined by a bounded
//!    admission queue, so the NIC receives request *k+1* while the disk
//!    services request *k*. Clients reach servers through their own
//!    bandwidth-limited NIC. A single client therefore cannot saturate the
//!    array (the serial-netCDF bottleneck of Figure 2(a)), while many
//!    clients saturate at the fixed aggregate disk bandwidth (the
//!    flattening curves of Figure 6).
//!
//! Operations take an explicit *start time* and return a *completion time*;
//! the caller (MPI-IO layer, or the serial library's POSIX adapter) owns the
//! clock.

//!
//! Since the cluster refactor the servers, metadata and failover state
//! live in a [`PfsCluster`] with a lifetime that outlives any single
//! open/close; a [`Pfs`] is a per-mount view ([`PfsCluster::mount`]) and
//! `Pfs::new` builds the degenerate one-mount cluster. The namespace is a
//! sharded metadata layer ([`meta::MetaShards`]) hashed by path, so
//! hundreds of datasets coexist without a global table lock.

pub mod cluster;
pub mod failover;
pub mod file;
pub mod filesystem;
pub mod meta;
pub mod posix;
pub mod server;
pub mod storage;
pub mod stripe;

pub use cluster::PfsCluster;
pub use file::{IoFailure, PfsFile, WriteCompletion};
pub use filesystem::Pfs;
pub use meta::{MetaShardStats, MetaShards, META_SHARDS};
pub use posix::PosixSim;
pub use server::{Server, ServiceOutcome};
pub use storage::StorageMode;
pub use stripe::{StripeChunk, Striping};
