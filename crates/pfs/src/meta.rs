//! Sharded metadata layer: the cluster's file table.
//!
//! A service cluster hosts hundreds of datasets; funnelling every
//! `create`/`open`/`delete` through one global table lock would serialize
//! unrelated sessions at the metadata server, the bottleneck the ViPIOS
//! architecture splits I/O servers away from. Instead the namespace is
//! partitioned into [`META_SHARDS`] shards hashed by path (FNV-1a): two
//! sessions touching different shards never contend, and two paths that
//! *do* collide on a shard only share that shard's lock.
//!
//! Determinism: file ids are allocated per shard as
//! `id = 1 + shard + META_SHARDS * local_counter`, so the id a path
//! receives depends only on the sequence of creates *within its own
//! shard* — never on how creates interleave across shards in real time.
//! Sessions that create disjoint paths therefore get identical ids no
//! matter how the scheduler orders them.

use parking_lot::Mutex;
use std::collections::HashMap;

/// Number of metadata shards per cluster. A small power of two: enough to
/// keep concurrent sessions off each other's locks, small enough that
/// `list()` stays cheap.
pub const META_SHARDS: usize = 16;

/// One file's metadata entry.
#[derive(Clone, Copy, Debug)]
pub(crate) struct FileEntry {
    pub id: u64,
    pub size: u64,
}

#[derive(Default)]
struct Shard {
    files: HashMap<String, FileEntry>,
    /// Creates ever performed on this shard; drives id allocation.
    created: u64,
}

/// Cumulative metadata-operation counters, per shard.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MetaShardStats {
    pub creates: u64,
    pub opens: u64,
    pub deletes: u64,
    /// Live files currently on the shard.
    pub files: u64,
}

/// The sharded file table. Create/open/delete take only the owning
/// shard's lock.
pub struct MetaShards {
    shards: Vec<Mutex<Shard>>,
    stats: Vec<Mutex<MetaShardStats>>,
}

/// FNV-1a over the path bytes: stable, platform-independent shard choice.
fn fnv1a(path: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in path.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl MetaShards {
    pub fn new() -> MetaShards {
        MetaShards {
            shards: (0..META_SHARDS).map(|_| Mutex::default()).collect(),
            stats: (0..META_SHARDS).map(|_| Mutex::default()).collect(),
        }
    }

    /// The shard owning `path`.
    pub fn shard_of(&self, path: &str) -> usize {
        (fnv1a(path) % META_SHARDS as u64) as usize
    }

    /// Create (or truncate) `path`: allocates a fresh id and returns
    /// `(old_entry, new_id)` so the caller can free the old id's stripes.
    pub(crate) fn create(&self, path: &str) -> (Option<FileEntry>, u64) {
        let sh = self.shard_of(path);
        let mut shard = self.shards[sh].lock();
        let old = shard.files.remove(path);
        let id = 1 + sh as u64 + (META_SHARDS as u64) * shard.created;
        shard.created += 1;
        shard
            .files
            .insert(path.to_string(), FileEntry { id, size: 0 });
        let nfiles = shard.files.len() as u64;
        drop(shard);
        let mut st = self.stats[sh].lock();
        st.creates += 1;
        st.files = nfiles;
        (old, id)
    }

    /// Look up `path`, counting the open.
    pub(crate) fn open(&self, path: &str) -> Option<FileEntry> {
        let sh = self.shard_of(path);
        let e = self.shards[sh].lock().files.get(path).copied();
        if e.is_some() {
            self.stats[sh].lock().opens += 1;
        }
        e
    }

    /// Look up `path` without counting (internal size queries).
    pub(crate) fn lookup(&self, path: &str) -> Option<FileEntry> {
        let sh = self.shard_of(path);
        self.shards[sh].lock().files.get(path).copied()
    }

    /// Remove `path`, returning its entry so the caller can free stripes.
    pub(crate) fn remove(&self, path: &str) -> Option<FileEntry> {
        let sh = self.shard_of(path);
        let mut shard = self.shards[sh].lock();
        let old = shard.files.remove(path);
        let nfiles = shard.files.len() as u64;
        drop(shard);
        if old.is_some() {
            let mut st = self.stats[sh].lock();
            st.deletes += 1;
            st.files = nfiles;
        }
        old
    }

    /// Grow `path` to at least `size` bytes (writes past EOF).
    pub(crate) fn grow_to(&self, path: &str, size: u64) {
        let sh = self.shard_of(path);
        if let Some(e) = self.shards[sh].lock().files.get_mut(path) {
            e.size = e.size.max(size);
        }
    }

    /// All paths, sorted for deterministic listings.
    pub fn list(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .shards
            .iter()
            .flat_map(|s| s.lock().files.keys().cloned().collect::<Vec<_>>())
            .collect();
        names.sort();
        names
    }

    /// Live file count across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().files.len()).sum()
    }

    /// Whether the namespace is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Per-shard operation counters (index = shard).
    pub fn stats(&self) -> Vec<MetaShardStats> {
        self.stats.iter().map(|s| *s.lock()).collect()
    }
}

impl Default for MetaShards {
    fn default() -> Self {
        MetaShards::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique_and_shard_local() {
        let m = MetaShards::new();
        let mut ids = std::collections::HashSet::new();
        for i in 0..200 {
            let (_, id) = m.create(&format!("f{i}.nc"));
            assert!(ids.insert(id), "duplicate id {id}");
            assert_eq!(
                (id - 1) % META_SHARDS as u64,
                m.shard_of(&format!("f{i}.nc")) as u64,
                "id encodes the owning shard"
            );
        }
        assert_eq!(m.len(), 200);
    }

    #[test]
    fn id_allocation_independent_of_other_shards() {
        // Creating a path yields the same id regardless of how much
        // traffic other shards saw first.
        let quiet = MetaShards::new();
        let (_, id_quiet) = quiet.create("target.nc");
        let busy = MetaShards::new();
        let target_shard = busy.shard_of("target.nc");
        let mut i = 0;
        let mut planted = 0;
        while planted < 50 {
            let p = format!("noise{i}.nc");
            i += 1;
            if busy.shard_of(&p) != target_shard {
                busy.create(&p);
                planted += 1;
            }
        }
        let (_, id_busy) = busy.create("target.nc");
        assert_eq!(id_quiet, id_busy);
    }

    #[test]
    fn recreate_allocates_fresh_id() {
        let m = MetaShards::new();
        let (_, a) = m.create("x");
        let (old, b) = m.create("x");
        assert_eq!(old.unwrap().id, a);
        assert_ne!(a, b, "truncating create must not reuse the stale id");
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn counters_track_ops() {
        let m = MetaShards::new();
        m.create("a");
        m.open("a");
        m.open("a");
        m.remove("a");
        assert!(m.open("a").is_none());
        let totals = m.stats().iter().fold((0, 0, 0), |acc, s| {
            (acc.0 + s.creates, acc.1 + s.opens, acc.2 + s.deletes)
        });
        assert_eq!(totals, (1, 2, 1));
    }
}
