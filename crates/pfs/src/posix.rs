//! Single-client POSIX-style adapter.
//!
//! The serial netCDF baseline (Figure 6's first column) performs ordinary
//! blocking `read`/`write` system calls from one process. `PosixSim` wraps a
//! [`PfsFile`] with an internal clock, giving the serial library exactly
//! that interface while charging the same cost models. The clock is shared
//! between clones, so a benchmark can keep a handle to read elapsed time
//! while the library owns the storage.

use std::sync::Arc;

use parking_lot::Mutex;

use hpc_sim::Time;

use crate::file::PfsFile;

/// A blocking, single-client view of a PFS file. Clones share the clock
/// and the file.
#[derive(Clone)]
pub struct PosixSim {
    file: PfsFile,
    clock: Arc<Mutex<Time>>,
}

impl PosixSim {
    /// Wrap `file` with the clock at zero.
    pub fn new(file: PfsFile) -> PosixSim {
        PosixSim {
            file,
            clock: Arc::new(Mutex::new(Time::ZERO)),
        }
    }

    /// Blocking positional write; advances the clock.
    pub fn write_at(&mut self, offset: u64, data: &[u8]) {
        let mut t = self.clock.lock();
        *t = self.file.write_at(*t, offset, data);
    }

    /// Blocking positional read; advances the clock.
    pub fn read_at(&mut self, offset: u64, buf: &mut [u8]) {
        let mut t = self.clock.lock();
        *t = self.file.read_at(*t, offset, buf);
    }

    /// Current virtual time of this client.
    pub fn now(&self) -> Time {
        *self.clock.lock()
    }

    /// Set the clock (benchmark phase boundaries).
    pub fn set_now(&mut self, t: Time) {
        *self.clock.lock() = t;
    }

    /// Current file size.
    pub fn size(&self) -> u64 {
        self.file.size()
    }

    /// Borrow the underlying file.
    pub fn file(&self) -> &PfsFile {
        &self.file
    }

    /// Unwrap the underlying file.
    pub fn into_file(self) -> PfsFile {
        self.file
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filesystem::Pfs;
    use crate::storage::StorageMode;
    use hpc_sim::SimConfig;

    #[test]
    fn clock_accumulates_over_ops() {
        let fs = Pfs::new(SimConfig::test_small(), StorageMode::Full);
        let mut p = PosixSim::new(fs.create("f"));
        assert_eq!(p.now(), Time::ZERO);
        p.write_at(0, &[1; 2048]);
        let t1 = p.now();
        assert!(t1 > Time::ZERO);
        let mut buf = [0u8; 2048];
        p.read_at(0, &mut buf);
        assert!(p.now() > t1);
        assert_eq!(buf, [1; 2048]);
        assert_eq!(p.size(), 2048);
    }

    #[test]
    fn clones_share_the_clock() {
        let fs = Pfs::new(SimConfig::test_small(), StorageMode::Full);
        let mut p = PosixSim::new(fs.create("f"));
        let watcher = p.clone();
        p.write_at(0, &[0; 4096]);
        assert_eq!(watcher.now(), p.now());
        assert!(watcher.now() > Time::ZERO);
    }
}
