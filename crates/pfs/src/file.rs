//! File handles: timed striped reads and writes, plus untimed export/import.

use std::sync::Arc;

use hpc_sim::Time;

use crate::filesystem::PfsInner;
use crate::stripe::StripeChunk;

/// Handle to one file in the parallel file system. Cheap to clone; all
/// clones address the same bytes and the same server queues.
#[derive(Clone)]
pub struct PfsFile {
    inner: Arc<PfsInner>,
    id: u64,
    name: String,
}

impl PfsFile {
    pub(crate) fn new(inner: Arc<PfsInner>, id: u64, name: String) -> PfsFile {
        PfsFile { inner, id, name }
    }

    /// File name within the PFS namespace.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The profile shared by this file system instance (the one in the
    /// `SimConfig` it was built from).
    pub fn profile(&self) -> &hpc_sim::Profile {
        &self.inner.cfg.profile
    }

    /// Current size in bytes (highest byte ever written + 1).
    pub fn size(&self) -> u64 {
        self.inner
            .files
            .lock()
            .get(&self.name)
            .map(|e| e.size)
            .unwrap_or(0)
    }

    /// Timed write of `data` at `offset`, starting at virtual time `start`.
    /// Returns the completion time.
    ///
    /// The request is split across servers; a client pushes bytes through
    /// its NIC (`client_link_bw`) in file order, so server `k`'s portion
    /// arrives after the portions before it have been transmitted. Each
    /// server coalesces its portion into one disk request.
    pub fn write_at(&self, start: Time, offset: u64, data: &[u8]) -> Time {
        if data.is_empty() {
            return start;
        }
        let cfg = &self.inner.cfg;
        let metadata_sized = data.len() as u64 <= crate::storage::METADATA_REQUEST_LIMIT;
        let mut by_server = self
            .inner
            .striping
            .split_by_server(offset, data.len() as u64);
        by_server.sort_by_key(|(_, chunks)| chunks[0].file_offset);

        let mut cum_bytes: u64 = 0;
        let mut done = start;
        for (srv, chunks) in &by_server {
            let portion: u64 = chunks.iter().map(|c| c.len).sum();
            cum_bytes += portion;
            let arrival = start
                + cfg.client_link_latency
                + Time::from_secs_f64(cum_bytes as f64 / cfg.client_link_bw);
            let slices: Vec<&[u8]> = chunks
                .iter()
                .map(|c| {
                    let lo = (c.file_offset - offset) as usize;
                    &data[lo..lo + c.len as usize]
                })
                .collect();
            let outcome = self.inner.servers[*srv].lock().write(
                &cfg.disk,
                self.id,
                arrival,
                chunks,
                &slices,
                metadata_sized,
            );
            self.inner
                .stats
                .count_io(portion as usize, false, outcome.seeked);
            cfg.profile
                .record_io(*srv, portion, false, outcome.seeked, outcome.seek_distance);
            done = done.max(outcome.done);
        }
        self.grow_to(offset + data.len() as u64);
        done
    }

    /// Timed read into `buf` from `offset`, starting at `start`. Returns the
    /// completion time. Bytes beyond the file size read as zeros (the
    /// underlying stores return zeros for unwritten stripes).
    pub fn read_at(&self, start: Time, offset: u64, buf: &mut [u8]) -> Time {
        if buf.is_empty() {
            return start;
        }
        let cfg = &self.inner.cfg;
        let total = buf.len() as u64;
        let by_server = self.inner.striping.split_by_server(offset, total);

        // The read request message reaches every server after one latency;
        // servers then stream from disk in parallel.
        let arrival = start + cfg.client_link_latency;
        let mut disks_done = start;
        // Split the output buffer per server without aliasing: collect
        // per-chunk ranges first.
        for (srv, chunks) in &by_server {
            let portion: u64 = chunks.iter().map(|c| c.len).sum();
            // Safety-free split: carve per-chunk slices out of `buf` one
            // server at a time using split_at_mut bookkeeping.
            let mut outs: Vec<&mut [u8]> = Vec::with_capacity(chunks.len());
            let mut rest: &mut [u8] = buf;
            let mut consumed = 0u64;
            for c in chunks.iter() {
                let lo = c.file_offset - offset;
                let (skip, tail) = rest.split_at_mut((lo - consumed) as usize);
                let _ = skip;
                let (mine, tail) = tail.split_at_mut(c.len as usize);
                outs.push(mine);
                consumed = lo + c.len;
                rest = tail;
            }
            let outcome = self.inner.servers[*srv]
                .lock()
                .read(&cfg.disk, self.id, arrival, chunks, &mut outs);
            self.inner
                .stats
                .count_io(portion as usize, true, outcome.seeked);
            cfg.profile
                .record_io(*srv, portion, true, outcome.seeked, outcome.seek_distance);
            disks_done = disks_done.max(outcome.done);
        }
        // The client cannot have all the bytes before its NIC has carried
        // them.
        let link_done = start
            + cfg.client_link_latency
            + Time::from_secs_f64(total as f64 / cfg.client_link_bw);
        disks_done.max(link_done)
    }

    /// Extend the recorded file size to at least `new_size`.
    pub fn grow_to(&self, new_size: u64) {
        let mut files = self.inner.files.lock();
        if let Some(e) = files.get_mut(&self.name) {
            if e.size < new_size {
                e.size = new_size;
            }
        }
    }

    /// Untimed export of the full file contents (correctness checks,
    /// interop with the serial library).
    pub fn to_bytes(&self) -> Vec<u8> {
        let size = self.size();
        let mut out = vec![0u8; size as usize];
        for c in self.inner.striping.split(0, size) {
            let lo = c.file_offset as usize;
            self.inner.servers[c.server].lock().peek(
                self.id,
                c.stripe,
                c.offset_in_stripe,
                &mut out[lo..lo + c.len as usize],
            );
        }
        out
    }

    /// Untimed import: overwrite the file contents with `data` (used to
    /// place an externally produced file into the PFS).
    pub fn import_bytes(&self, data: &[u8]) {
        for c in self.inner.striping.split(0, data.len() as u64) {
            let lo = c.file_offset as usize;
            self.inner.servers[c.server].lock().poke(
                self.id,
                c.stripe,
                c.offset_in_stripe,
                &data[lo..lo + c.len as usize],
            );
        }
        self.grow_to(data.len() as u64);
    }

    /// Export to a real file on the host file system.
    pub fn export_to_path(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_bytes())
    }

    /// Import from a real file on the host file system.
    pub fn import_from_path(&self, path: &std::path::Path) -> std::io::Result<()> {
        let data = std::fs::read(path)?;
        self.import_bytes(&data);
        Ok(())
    }

    /// Untimed read of an arbitrary range (diagnostics/tests).
    pub fn peek_at(&self, offset: u64, buf: &mut [u8]) {
        for c in self.inner.striping.split(offset, buf.len() as u64) {
            let lo = (c.file_offset - offset) as usize;
            self.inner.servers[c.server].lock().peek(
                self.id,
                c.stripe,
                c.offset_in_stripe,
                &mut buf[lo..lo + c.len as usize],
            );
        }
    }

    #[doc(hidden)]
    pub fn chunks_for(&self, offset: u64, len: u64) -> Vec<StripeChunk> {
        self.inner.striping.split(offset, len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filesystem::Pfs;
    use crate::storage::StorageMode;
    use hpc_sim::SimConfig;

    fn file() -> PfsFile {
        Pfs::new(SimConfig::test_small(), StorageMode::Full).create("t")
    }

    #[test]
    fn write_read_roundtrip_across_stripes() {
        let f = file();
        // test_small has 1 KiB stripes over 4 servers; span several.
        let data: Vec<u8> = (0..5000u32).map(|i| (i % 251) as u8).collect();
        let t1 = f.write_at(Time::ZERO, 300, &data);
        assert!(t1 > Time::ZERO);
        assert_eq!(f.size(), 5300);
        let mut out = vec![0u8; 5000];
        let t2 = f.read_at(t1, 300, &mut out);
        assert!(t2 > t1);
        assert_eq!(out, data);
    }

    #[test]
    fn unwritten_regions_read_zero() {
        let f = file();
        f.write_at(Time::ZERO, 100, &[7; 10]);
        let mut out = vec![1u8; 120];
        f.read_at(Time::ZERO, 0, &mut out);
        assert_eq!(&out[..100], &[0u8; 100][..]);
        assert_eq!(&out[100..110], &[7u8; 10][..]);
        assert_eq!(&out[110..], &[0u8; 10][..]);
    }

    #[test]
    fn export_import_roundtrip() {
        let f = file();
        let data: Vec<u8> = (0..3000u32).map(|i| (i * 7 % 256) as u8).collect();
        f.write_at(Time::ZERO, 0, &data);
        let bytes = f.to_bytes();
        assert_eq!(bytes, data);

        let f2 = Pfs::new(SimConfig::test_small(), StorageMode::Full).create("u");
        f2.import_bytes(&bytes);
        assert_eq!(f2.size(), 3000);
        assert_eq!(f2.to_bytes(), data);
    }

    #[test]
    fn larger_writes_take_longer() {
        let f = file();
        let t_small = f.write_at(Time::ZERO, 0, &[0u8; 1000]);
        let f2 = file();
        let t_big = f2.write_at(Time::ZERO, 0, &[0u8; 100_000]);
        assert!(t_big > t_small);
    }

    #[test]
    fn parallel_clients_beat_one_client_per_byte() {
        // Two writers starting at the same time on disjoint halves finish
        // earlier than one writer writing everything, because each pays only
        // half the NIC serialization.
        let cfg = SimConfig::test_small();
        let half = 512 * 1024usize;

        let solo = Pfs::new(cfg.clone(), StorageMode::CostOnly).create("solo");
        let t_solo = solo.write_at(Time::ZERO, 0, &vec![0u8; 2 * half]);

        let duo = Pfs::new(cfg, StorageMode::CostOnly).create("duo");
        let t_a = duo.write_at(Time::ZERO, 0, &vec![0u8; half]);
        let t_b = duo.write_at(Time::ZERO, half as u64, &vec![0u8; half]);
        assert!(t_a.max(t_b) < t_solo);
    }

    #[test]
    fn zero_length_ops_cost_nothing() {
        let f = file();
        assert_eq!(
            f.write_at(Time::from_millis(5), 0, &[]),
            Time::from_millis(5)
        );
        let mut empty: [u8; 0] = [];
        assert_eq!(
            f.read_at(Time::from_millis(5), 0, &mut empty),
            Time::from_millis(5)
        );
    }

    #[test]
    fn stats_count_requests() {
        let f = file();
        f.write_at(Time::ZERO, 0, &[0u8; 4096]); // 4 servers, 1 KiB each
        let s = Pfs {
            inner: f.inner.clone(),
        };
        let snap = s.stats().snapshot();
        assert_eq!(snap.io_requests, 4);
        assert_eq!(snap.io_bytes_written, 4096);
    }
}
