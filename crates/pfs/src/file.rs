//! File handles: timed striped reads and writes, plus untimed export/import.

use std::sync::Arc;

use hpc_sim::trace::events::{layer, stage};
use hpc_sim::{FaultKind, IoStages, Span, Time, TraceCtx};

use crate::cluster::ClusterInner;
use crate::server::ServiceOutcome;
use crate::stripe::StripeChunk;

/// A failed timed I/O request against the PFS.
///
/// Requests are issued per server in file order and stop at the first
/// fault, so `completed` is a contiguous prefix of the request: a recovery
/// layer can resume at `offset + completed`.
#[derive(Clone, Copy, Debug)]
pub struct IoFailure {
    /// The injected fault that stopped the request.
    pub kind: FaultKind,
    /// Bytes (contiguous, in file order) transferred before the fault.
    pub completed: u64,
    /// Virtual time at which the failure was detected by the client.
    pub time: Time,
    /// Index of the faulting server.
    pub server: usize,
}

/// Completion times of a successful timed write, separating the two
/// acknowledgement points of the dual-resource servers.
#[derive(Clone, Copy, Debug)]
pub struct WriteCompletion {
    /// Every server's NIC has received its portion: the servers own the
    /// bytes (bounded by their admission queues) and the client may reuse
    /// its buffer and move on.
    pub handoff: Time,
    /// Every server's disk has retired its portion: the write is durable.
    /// Always `>= handoff`.
    pub durable: Time,
}

/// Attempt budget of the *legacy* infallible [`PfsFile::write_at`] /
/// [`PfsFile::read_at`] wrappers (the serial baseline has no recovery
/// layer of its own). The MPI-IO layer uses its own policy on the
/// fallible API instead.
const LEGACY_ATTEMPTS: u32 = 25;

/// Handle to one file in the parallel file system. Cheap to clone; all
/// clones address the same bytes and the same server queues.
#[derive(Clone)]
pub struct PfsFile {
    pub(crate) inner: Arc<ClusterInner>,
    pub(crate) id: u64,
    name: String,
}

impl PfsFile {
    pub(crate) fn new(inner: Arc<ClusterInner>, id: u64, name: String) -> PfsFile {
        PfsFile { inner, id, name }
    }

    /// File name within the PFS namespace.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The profile shared by this file system instance (the one in the
    /// `SimConfig` it was built from).
    pub fn profile(&self) -> &hpc_sim::Profile {
        &self.inner.cfg.profile
    }

    /// The span recorder shared by this file system instance (same handle
    /// semantics as [`PfsFile::profile`]).
    pub fn events(&self) -> &hpc_sim::TraceLog {
        &self.inner.cfg.events
    }

    /// Current size in bytes (highest byte ever written + 1).
    pub fn size(&self) -> u64 {
        self.inner
            .meta
            .lookup(&self.name)
            .map(|e| e.size)
            .unwrap_or(0)
    }

    /// Timed write of `data` at `offset`, starting at virtual time `start`.
    /// Returns the completion time, or the first injected fault.
    ///
    /// The request is split across servers; a client pushes bytes through
    /// its NIC (`client_link_bw`) in file order, so server `k`'s portion
    /// arrives after the portions before it have been transmitted. Each
    /// server coalesces its portion into one disk request. All portions
    /// are issued (they are in flight by the time a fault is detected);
    /// a failure's `completed` count is the contiguous file-order prefix
    /// that is *guaranteed* transferred, so a recovery layer can resume at
    /// `offset + completed` — later scattered chunks that happened to land
    /// are simply rewritten with the same bytes.
    pub fn try_write_at(&self, start: Time, offset: u64, data: &[u8]) -> Result<Time, IoFailure> {
        self.try_write_at_detailed(start, offset, data)
            .map(|c| c.durable)
    }

    /// [`PfsFile::try_write_at`], additionally reporting the handoff point
    /// (all server NICs have received their portions) next to the durable
    /// completion. A pipelined client may proceed at `handoff` and wait
    /// for `durable` only when it needs the bytes on disk.
    pub fn try_write_at_detailed(
        &self,
        start: Time,
        offset: u64,
        data: &[u8],
    ) -> Result<WriteCompletion, IoFailure> {
        if data.is_empty() {
            return Ok(WriteCompletion {
                handoff: start,
                durable: start,
            });
        }
        let cfg = &self.inner.cfg;
        let parity = self.parity_enabled();
        let start = self.maybe_rebuild(start);
        let down = self.active_down();
        let metadata_sized = data.len() as u64 <= crate::storage::METADATA_REQUEST_LIMIT;
        let mut by_server = self
            .inner
            .striping
            .split_by_server(offset, data.len() as u64);
        by_server.sort_by_key(|(_, chunks)| chunks[0].file_offset);

        let mut cum_bytes: u64 = 0;
        let mut done = start;
        let mut handoff = start;
        let mut rows = std::collections::BTreeSet::new();
        let mut redirected = false;
        // Per-portion transfer status: (chunks, bytes transferred in
        // file-order within the portion, fault if any, server).
        let mut portions = Vec::with_capacity(by_server.len());
        for (srv, chunks) in &by_server {
            let portion: u64 = chunks.iter().map(|c| c.len).sum();
            cum_bytes += portion;
            let arrival = start
                + cfg.client_link_latency
                + Time::from_secs_f64(cum_bytes as f64 / cfg.client_link_bw);
            let slices: Vec<&[u8]> = chunks
                .iter()
                .map(|c| {
                    let lo = (c.file_offset - offset) as usize;
                    &data[lo..lo + c.len as usize]
                })
                .collect();
            if parity {
                for c in chunks {
                    rows.insert(self.inner.striping.parity_row_of(c.stripe));
                }
            }
            if down == Some(*srv) {
                // Degraded mode: the down server's engine is never
                // touched; the payload is covered by the parity update
                // after the data phase.
                self.redirect_write_portion(*srv, chunks, &slices);
                redirected = true;
                portions.push((chunks.clone(), portion, None, *srv));
                continue;
            }
            let outcome = self.inner.servers[*srv].lock().write(
                &cfg.disk,
                self.id,
                arrival,
                chunks,
                &slices,
                metadata_sized,
            );
            self.record_outcome(*srv, &outcome, false);
            done = done.max(outcome.done);
            handoff = handoff.max(outcome.handoff());
            let fault = (!outcome.is_complete()).then(|| outcome.injected.unwrap());
            portions.push((chunks.clone(), outcome.bytes_done, fault, *srv));
        }
        if parity {
            // A write is not durable until its parity is; a redirected
            // portion additionally has no NIC handoff of its own, so the
            // client may only proceed once parity holds its bytes.
            done = done.max(self.update_parity_rows(&rows, done));
            if redirected {
                handoff = handoff.max(done);
            }
        }
        match completed_prefix(&portions) {
            None => {
                self.grow_to(offset + data.len() as u64);
                Ok(WriteCompletion {
                    handoff,
                    durable: done,
                })
            }
            Some((completed, kind, server)) => {
                // Record what actually landed, scattered chunks included.
                self.grow_to(transferred_end(&portions));
                Err(IoFailure {
                    kind,
                    completed,
                    time: done,
                    server,
                })
            }
        }
    }

    /// Timed vectored write of several disjoint runs in one shot. `runs`
    /// are `(offset, len)` pairs, sorted and non-overlapping; `data` is
    /// their concatenated payload. The whole batch is split by server and
    /// **coalesced into one request per server** — this is how an
    /// aggregator writes a collective-buffer window of server-affine
    /// stripes with a single per-request overhead per server instead of
    /// one per stripe. On failure, `completed` counts the leading bytes of
    /// `data` (run order) guaranteed transferred.
    pub fn try_write_runs(
        &self,
        start: Time,
        runs: &[(u64, u64)],
        data: &[u8],
    ) -> Result<WriteCompletion, IoFailure> {
        let total: u64 = runs.iter().map(|&(_, len)| len).sum();
        debug_assert_eq!(total as usize, data.len(), "runs must describe data");
        if total == 0 {
            return Ok(WriteCompletion {
                handoff: start,
                durable: start,
            });
        }
        let cfg = &self.inner.cfg;
        let parity = self.parity_enabled();
        let start = self.maybe_rebuild(start);
        let down = self.active_down();
        let metadata_sized = total <= crate::storage::METADATA_REQUEST_LIMIT;

        // Flatten every run's stripe chunks in file order, remembering each
        // chunk's position in the concatenated payload and the running
        // byte count (for NIC streaming arrival times).
        let mut flat: Vec<(StripeChunk, usize, u64)> = Vec::new();
        let mut concat = 0u64;
        let mut cum = 0u64;
        let mut prev_end = 0u64;
        for &(off, len) in runs {
            debug_assert!(off >= prev_end, "runs must be sorted and disjoint");
            prev_end = off + len;
            for c in self.inner.striping.split(off, len) {
                let pos = (concat + (c.file_offset - off)) as usize;
                cum += c.len;
                flat.push((c, pos, cum));
            }
            concat += len;
        }

        // Group by server, preserving file order within each group; issue
        // to servers in order of their first chunk, each server's portion
        // arriving once the client NIC has streamed through its last byte.
        let mut order: Vec<usize> = Vec::new();
        let mut groups: Vec<Vec<(StripeChunk, usize, u64)>> =
            vec![Vec::new(); self.inner.striping.nservers];
        for entry in flat {
            let srv = entry.0.server;
            if groups[srv].is_empty() {
                order.push(srv);
            }
            groups[srv].push(entry);
        }

        let mut done = start;
        let mut handoff = start;
        let mut rows = std::collections::BTreeSet::new();
        let mut redirected = false;
        let mut portions = Vec::with_capacity(order.len());
        for &srv in &order {
            let group = &groups[srv];
            let last_cum = group.last().map(|&(_, _, c)| c).unwrap();
            let arrival = start
                + cfg.client_link_latency
                + Time::from_secs_f64(last_cum as f64 / cfg.client_link_bw);
            let chunks: Vec<StripeChunk> = group.iter().map(|&(c, _, _)| c).collect();
            let slices: Vec<&[u8]> = group
                .iter()
                .map(|&(c, pos, _)| &data[pos..pos + c.len as usize])
                .collect();
            if parity {
                for c in &chunks {
                    rows.insert(self.inner.striping.parity_row_of(c.stripe));
                }
            }
            if down == Some(srv) {
                let portion: u64 = chunks.iter().map(|c| c.len).sum();
                self.redirect_write_portion(srv, &chunks, &slices);
                redirected = true;
                portions.push((chunks, portion, None, srv));
                continue;
            }
            let outcome = self.inner.servers[srv].lock().write(
                &cfg.disk,
                self.id,
                arrival,
                &chunks,
                &slices,
                metadata_sized,
            );
            self.record_outcome(srv, &outcome, false);
            done = done.max(outcome.done);
            handoff = handoff.max(outcome.handoff());
            let fault = (!outcome.is_complete()).then(|| outcome.injected.unwrap());
            portions.push((chunks, outcome.bytes_done, fault, srv));
        }
        if parity {
            done = done.max(self.update_parity_rows(&rows, done));
            if redirected {
                handoff = handoff.max(done);
            }
        }
        match completed_prefix(&portions) {
            None => {
                self.grow_to(prev_end);
                Ok(WriteCompletion {
                    handoff,
                    durable: done,
                })
            }
            Some((completed, kind, server)) => {
                self.grow_to(transferred_end(&portions));
                Err(IoFailure {
                    kind,
                    completed,
                    time: done,
                    server,
                })
            }
        }
    }

    /// Timed write that hides faults behind a bounded retry/short-resume
    /// loop (the recovery policy of callers without one of their own: the
    /// serialized baseline and direct PFS users). Panics when the attempt
    /// budget is exhausted — a permanently crashed server with no recovery
    /// layer above is fatal, exactly like ENOSPC for the real serial API.
    pub fn write_at(&self, start: Time, offset: u64, data: &[u8]) -> Time {
        let mut t = start;
        let mut resume = 0usize;
        let mut backoff = Time::from_micros(50);
        for _ in 0..LEGACY_ATTEMPTS {
            match self.try_write_at(t, offset + resume as u64, &data[resume..]) {
                Ok(done) => return done,
                Err(f) => {
                    resume += f.completed as usize;
                    t = f.time + backoff;
                    self.record_legacy_retry(&f, backoff);
                    backoff = next_backoff(backoff);
                }
            }
        }
        panic!(
            "PFS write of {} bytes at offset {offset} of '{}' still failing after \
             {LEGACY_ATTEMPTS} attempts (fault plan too hostile for the legacy path)",
            data.len(),
            self.name
        );
    }

    /// Timed read into `buf` from `offset`, starting at `start`. Returns
    /// the completion time, or the first injected fault. Bytes beyond the
    /// file size read as zeros (the underlying stores return zeros for
    /// unwritten stripes). On failure the first `completed` bytes of `buf`
    /// are valid.
    pub fn try_read_at(&self, start: Time, offset: u64, buf: &mut [u8]) -> Result<Time, IoFailure> {
        if buf.is_empty() {
            return Ok(start);
        }
        let cfg = &self.inner.cfg;
        let start = self.maybe_rebuild(start);
        let down = self.active_down();
        let total = buf.len() as u64;
        let mut by_server = self.inner.striping.split_by_server(offset, total);
        by_server.sort_by_key(|(_, chunks)| chunks[0].file_offset);

        // The read request message reaches every server after one latency;
        // servers then stream from disk in parallel.
        let arrival = start + cfg.client_link_latency;
        let mut disks_done = start;
        let mut portions = Vec::with_capacity(by_server.len());
        // Split the output buffer per server without aliasing: carve
        // per-chunk slices out of `buf` one server at a time.
        for (srv, chunks) in &by_server {
            let mut outs: Vec<&mut [u8]> = Vec::with_capacity(chunks.len());
            let mut rest: &mut [u8] = buf;
            let mut consumed = 0u64;
            for c in chunks.iter() {
                let lo = c.file_offset - offset;
                let (skip, tail) = rest.split_at_mut((lo - consumed) as usize);
                let _ = skip;
                let (mine, tail) = tail.split_at_mut(c.len as usize);
                outs.push(mine);
                consumed = lo + c.len;
                rest = tail;
            }
            if down == Some(*srv) {
                // Degraded mode: XOR-reconstruct this server's chunks from
                // the surviving data + parity.
                let portion: u64 = chunks.iter().map(|c| c.len).sum();
                let t = self.reconstruct_read(*srv, chunks, &mut outs, arrival);
                disks_done = disks_done.max(t);
                portions.push((chunks.clone(), portion, None, *srv));
                continue;
            }
            let outcome = self.inner.servers[*srv]
                .lock()
                .read(&cfg.disk, self.id, arrival, chunks, &mut outs);
            self.record_outcome(*srv, &outcome, true);
            disks_done = disks_done.max(outcome.done);
            let fault = (!outcome.is_complete()).then(|| outcome.injected.unwrap());
            portions.push((chunks.clone(), outcome.bytes_done, fault, *srv));
        }
        match completed_prefix(&portions) {
            None => {
                // The client cannot have all the bytes before its NIC has
                // carried them.
                let link_done = start
                    + cfg.client_link_latency
                    + Time::from_secs_f64(total as f64 / cfg.client_link_bw);
                Ok(disks_done.max(link_done))
            }
            Some((completed, kind, server)) => Err(IoFailure {
                kind,
                completed,
                time: disks_done,
                server,
            }),
        }
    }

    /// Timed read with the same bounded legacy recovery as
    /// [`PfsFile::write_at`].
    pub fn read_at(&self, start: Time, offset: u64, buf: &mut [u8]) -> Time {
        let len = buf.len();
        let mut t = start;
        let mut resume = 0usize;
        let mut backoff = Time::from_micros(50);
        for _ in 0..LEGACY_ATTEMPTS {
            match self.try_read_at(t, offset + resume as u64, &mut buf[resume..]) {
                Ok(done) => return done,
                Err(f) => {
                    resume += f.completed as usize;
                    t = f.time + backoff;
                    self.record_legacy_retry(&f, backoff);
                    backoff = next_backoff(backoff);
                }
            }
        }
        panic!(
            "PFS read of {len} bytes at offset {offset} of '{}' still failing after \
             {LEGACY_ATTEMPTS} attempts (fault plan too hostile for the legacy path)",
            self.name
        );
    }

    /// Record one server outcome into the stats and the profile,
    /// including the dual-resource stage breakdown.
    fn record_outcome(&self, srv: usize, outcome: &ServiceOutcome, read: bool) {
        self.record_injected(outcome.injected);
        self.inner
            .stats
            .count_io(outcome.bytes_done as usize, read, outcome.seeked);
        let st = &outcome.stages;
        self.inner.cfg.profile.record_io_stages(
            srv,
            outcome.bytes_done,
            read,
            outcome.seeked,
            outcome.seek_distance,
            IoStages {
                nic_busy_nanos: (st.nic_done - st.nic_start).as_nanos(),
                disk_busy_nanos: (st.disk_done - st.disk_start).as_nanos(),
                overlap_nanos: st.overlap.as_nanos(),
                queue_stall_nanos: st.queue_stall.as_nanos(),
                cross_stall_nanos: st.cross_stall.as_nanos(),
                depth: st.depth as u64,
            },
        );
        // Span the request's passage through the dual-resource engine:
        // one queue-residency container (arrival → durable on disk) with
        // the stall, NIC, and disk stages nested inside it. The ambient
        // TraceCtx names the rank whose request this is and the window
        // (or independent request) span to hang the container off — with
        // no context there is no timeline to put the spans on, so the
        // request goes untraced rather than misattributed.
        let events = &self.inner.cfg.events;
        if events.is_enabled() {
            if let Some((rank, parent)) = TraceCtx::current() {
                let qid = events.next_id();
                let name = if read { "srv_read" } else { "srv_write" };
                // Writes finish on the disk; reads finish when the NIC has
                // shipped the bytes back. The container covers both orders.
                let served = st.disk_done.max(st.nic_done);
                events.record(
                    Span::new(
                        rank,
                        layer::PFS,
                        name,
                        st.arrival.as_nanos(),
                        served.as_nanos(),
                    )
                    .with_id(qid)
                    .with_parent(parent)
                    .with_arg("server", srv as u64)
                    .with_arg("bytes", outcome.bytes_done)
                    .with_arg("depth", st.depth as u64),
                );
                if st.admit > st.arrival {
                    events.record(
                        Span::new(
                            rank,
                            layer::PFS,
                            "queue_stall",
                            st.arrival.as_nanos(),
                            st.admit.as_nanos(),
                        )
                        .with_parent(qid)
                        .with_stage(stage::QUEUE)
                        .with_arg("server", srv as u64),
                    );
                }
                events.record(
                    Span::new(
                        rank,
                        layer::PFS,
                        "srv_nic",
                        st.nic_start.as_nanos(),
                        st.nic_done.as_nanos(),
                    )
                    .with_parent(qid)
                    .with_stage(stage::NIC)
                    .with_arg("server", srv as u64),
                );
                events.record(
                    Span::new(
                        rank,
                        layer::PFS,
                        "srv_disk",
                        st.disk_start.as_nanos(),
                        st.disk_done.as_nanos(),
                    )
                    .with_parent(qid)
                    .with_stage(stage::DISK)
                    .with_arg("server", srv as u64),
                );
            }
        }
    }

    /// Tally an injected fault (no-op while profiling is disabled).
    fn record_injected(&self, injected: Option<FaultKind>) {
        let Some(kind) = injected else { return };
        self.inner.cfg.profile.record_fault(|f| {
            f.faults_injected += 1;
            match kind {
                FaultKind::Transient => f.transient += 1,
                FaultKind::Short { .. } => f.short += 1,
                FaultKind::Stall { .. } => f.stalls += 1,
                FaultKind::Crashed => f.crashed += 1,
                FaultKind::None => {}
            }
        });
    }

    /// Tally one legacy-wrapper recovery step.
    fn record_legacy_retry(&self, failure: &IoFailure, backoff: Time) {
        self.inner.cfg.profile.record_fault(|f| {
            f.retries += 1;
            f.backoff_nanos += backoff.as_nanos();
            if failure.completed > 0 {
                f.short_completions += 1;
            }
        });
    }

    /// The shared coherence-epoch cell for this file (every handle to the
    /// same file id gets the same atomic). Created on first use.
    fn epoch_cell(&self) -> Arc<std::sync::atomic::AtomicU64> {
        self.inner.epochs.lock().entry(self.id).or_default().clone()
    }

    /// Current coherence epoch of this file. Client caches remember the
    /// epoch they last synchronized at; a different value means some rank
    /// has published new bytes since, so cached clean pages may be stale.
    pub fn coherence_epoch(&self) -> u64 {
        self.epoch_cell().load(std::sync::atomic::Ordering::Acquire)
    }

    /// Advance the coherence epoch (called after publishing dirty pages or
    /// completing a collective write); returns the new epoch.
    pub fn bump_coherence_epoch(&self) -> u64 {
        self.epoch_cell()
            .fetch_add(1, std::sync::atomic::Ordering::AcqRel)
            + 1
    }

    /// Extend the recorded file size to at least `new_size`.
    pub fn grow_to(&self, new_size: u64) {
        self.inner.meta.grow_to(&self.name, new_size);
    }

    /// Untimed export of the full file contents (correctness checks,
    /// interop with the serial library).
    pub fn to_bytes(&self) -> Vec<u8> {
        let size = self.size();
        let mut out = vec![0u8; size as usize];
        for c in self.inner.striping.split(0, size) {
            let lo = c.file_offset as usize;
            self.inner.servers[c.server].lock().peek(
                self.id,
                c.stripe,
                c.offset_in_stripe,
                &mut out[lo..lo + c.len as usize],
            );
        }
        out
    }

    /// Untimed import: overwrite the file contents with `data` (used to
    /// place an externally produced file into the PFS).
    pub fn import_bytes(&self, data: &[u8]) {
        for c in self.inner.striping.split(0, data.len() as u64) {
            let lo = c.file_offset as usize;
            self.inner.servers[c.server].lock().poke(
                self.id,
                c.stripe,
                c.offset_in_stripe,
                &data[lo..lo + c.len as usize],
            );
        }
        self.grow_to(data.len() as u64);
    }

    /// Export to a real file on the host file system.
    pub fn export_to_path(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_bytes())
    }

    /// Import from a real file on the host file system.
    pub fn import_from_path(&self, path: &std::path::Path) -> std::io::Result<()> {
        let data = std::fs::read(path)?;
        self.import_bytes(&data);
        Ok(())
    }

    /// Untimed read of an arbitrary range (diagnostics/tests).
    pub fn peek_at(&self, offset: u64, buf: &mut [u8]) {
        for c in self.inner.striping.split(offset, buf.len() as u64) {
            let lo = (c.file_offset - offset) as usize;
            self.inner.servers[c.server].lock().peek(
                self.id,
                c.stripe,
                c.offset_in_stripe,
                &mut buf[lo..lo + c.len as usize],
            );
        }
    }

    #[doc(hidden)]
    pub fn chunks_for(&self, offset: u64, len: u64) -> Vec<StripeChunk> {
        self.inner.striping.split(offset, len)
    }
}

/// Double the backoff up to a 50 ms ceiling.
fn next_backoff(b: Time) -> Time {
    Time::from_nanos((b.as_nanos() * 2).min(Time::from_millis(50).as_nanos()))
}

/// Per-portion transfer record: the portion's stripe chunks (in file order
/// within the portion), the bytes the server actually transferred across
/// those chunks (a prefix in that order), the fault that cut it short (if
/// any), and the server index.
type PortionStatus = (Vec<StripeChunk>, u64, Option<FaultKind>, usize);

/// Compute the file-order byte prefix of a (possibly vectored) striped
/// request that is guaranteed transferred.
///
/// One server's portion consists of round-robin stripes that *interleave*
/// with other servers' stripes in file order, so "sum of completed
/// portions" is not a prefix. Instead, flatten every issued chunk with its
/// transferred length and walk them in file order, accumulating while each
/// chunk is fully transferred; a partially transferred chunk contributes
/// its prefix and stops the walk. For a contiguous request the count is
/// the contiguous prefix from its offset; for a vectored request it counts
/// leading bytes of the runs' concatenated payload (the chunks need not
/// tile a contiguous span, only be disjoint).
///
/// Returns `None` when every portion completed, otherwise
/// `Some((prefix_bytes, fault, server))` where the fault is the one that
/// bounds the prefix.
fn completed_prefix(portions: &[PortionStatus]) -> Option<(u64, FaultKind, usize)> {
    if portions.iter().all(|(_, _, fault, _)| fault.is_none()) {
        return None;
    }
    // Flatten to (file_offset, len, transferred, portion fault, server).
    let mut chunks: Vec<(u64, u64, u64, Option<FaultKind>, usize)> = Vec::new();
    for (cs, bytes_done, fault, srv) in portions {
        let mut remaining = *bytes_done;
        for c in cs {
            let take = remaining.min(c.len);
            remaining -= take;
            chunks.push((c.file_offset, c.len, take, *fault, *srv));
        }
    }
    chunks.sort_by_key(|&(off, ..)| off);
    let mut prefix = 0u64;
    let mut watermark = 0u64;
    for (off, len, transferred, fault, srv) in chunks {
        debug_assert!(off >= watermark, "striped chunks must be disjoint");
        watermark = off + len;
        prefix += transferred;
        if transferred < len {
            let fault = fault.expect("an under-transferred chunk belongs to a faulted portion");
            return Some((prefix, fault, srv));
        }
    }
    // Every chunk fully transferred yet some portion faulted: the fault hit
    // at the very end (e.g. a short fault whose prefix covered everything
    // issued so far). Report zero remaining credit past the full request.
    let (_, _, fault, srv) = portions
        .iter()
        .find(|(_, _, fault, _)| fault.is_some())
        .expect("checked above");
    Some((prefix, fault.expect("is_some checked"), *srv))
}

/// Highest file offset any transferred byte reached (for growing the file
/// size after a partially failed write). Zero when nothing landed.
fn transferred_end(portions: &[PortionStatus]) -> u64 {
    let mut end = 0u64;
    for (cs, bytes_done, _, _) in portions {
        let mut remaining = *bytes_done;
        for c in cs {
            let take = remaining.min(c.len);
            remaining -= take;
            if take > 0 {
                end = end.max(c.file_offset + take);
            }
        }
    }
    end
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filesystem::Pfs;
    use crate::storage::StorageMode;
    use hpc_sim::SimConfig;

    fn file() -> PfsFile {
        Pfs::new(SimConfig::test_small(), StorageMode::Full).create("t")
    }

    #[test]
    fn write_read_roundtrip_across_stripes() {
        let f = file();
        // test_small has 1 KiB stripes over 4 servers; span several.
        let data: Vec<u8> = (0..5000u32).map(|i| (i % 251) as u8).collect();
        let t1 = f.write_at(Time::ZERO, 300, &data);
        assert!(t1 > Time::ZERO);
        assert_eq!(f.size(), 5300);
        let mut out = vec![0u8; 5000];
        let t2 = f.read_at(t1, 300, &mut out);
        assert!(t2 > t1);
        assert_eq!(out, data);
    }

    #[test]
    fn unwritten_regions_read_zero() {
        let f = file();
        f.write_at(Time::ZERO, 100, &[7; 10]);
        let mut out = vec![1u8; 120];
        f.read_at(Time::ZERO, 0, &mut out);
        assert_eq!(&out[..100], &[0u8; 100][..]);
        assert_eq!(&out[100..110], &[7u8; 10][..]);
        assert_eq!(&out[110..], &[0u8; 10][..]);
    }

    #[test]
    fn export_import_roundtrip() {
        let f = file();
        let data: Vec<u8> = (0..3000u32).map(|i| (i * 7 % 256) as u8).collect();
        f.write_at(Time::ZERO, 0, &data);
        let bytes = f.to_bytes();
        assert_eq!(bytes, data);

        let f2 = Pfs::new(SimConfig::test_small(), StorageMode::Full).create("u");
        f2.import_bytes(&bytes);
        assert_eq!(f2.size(), 3000);
        assert_eq!(f2.to_bytes(), data);
    }

    #[test]
    fn larger_writes_take_longer() {
        let f = file();
        let t_small = f.write_at(Time::ZERO, 0, &[0u8; 1000]);
        let f2 = file();
        let t_big = f2.write_at(Time::ZERO, 0, &[0u8; 100_000]);
        assert!(t_big > t_small);
    }

    #[test]
    fn parallel_clients_beat_one_client_per_byte() {
        // Two writers starting at the same time on disjoint halves finish
        // earlier than one writer writing everything, because each pays only
        // half the NIC serialization.
        let cfg = SimConfig::test_small();
        let half = 512 * 1024usize;

        let solo = Pfs::new(cfg.clone(), StorageMode::CostOnly).create("solo");
        let t_solo = solo.write_at(Time::ZERO, 0, &vec![0u8; 2 * half]);

        let duo = Pfs::new(cfg, StorageMode::CostOnly).create("duo");
        let t_a = duo.write_at(Time::ZERO, 0, &vec![0u8; half]);
        let t_b = duo.write_at(Time::ZERO, half as u64, &vec![0u8; half]);
        assert!(t_a.max(t_b) < t_solo);
    }

    #[test]
    fn zero_length_ops_cost_nothing() {
        let f = file();
        assert_eq!(
            f.write_at(Time::from_millis(5), 0, &[]),
            Time::from_millis(5)
        );
        let mut empty: [u8; 0] = [];
        assert_eq!(
            f.read_at(Time::from_millis(5), 0, &mut empty),
            Time::from_millis(5)
        );
    }

    #[test]
    fn legacy_wrappers_recover_from_transient_faults() {
        let mut cfg = SimConfig::test_small();
        // Fault draws are per stripe chunk; a 20 KB request spans ~20
        // stripes, so even modest per-stripe rates fault nearly every
        // attempt while still letting the bounded legacy retry loop make
        // steady prefix progress.
        cfg.faults = hpc_sim::FaultPlan {
            transient: 0.08,
            short: 0.08,
            ..hpc_sim::FaultPlan::default()
        };
        cfg.profile.set_enabled(true);
        let f = Pfs::new(cfg.clone(), StorageMode::Full).create("faulty");
        let data: Vec<u8> = (0..20_000u32).map(|i| (i % 241) as u8).collect();
        let t = f.write_at(Time::ZERO, 64, &data);
        let mut out = vec![0u8; data.len()];
        f.read_at(t, 64, &mut out);
        assert_eq!(out, data, "recovered write/read must be byte-identical");
        let fc = cfg.profile.fault_counters();
        assert!(fc.faults_injected > 0, "plan should have fired");
        assert!(fc.retries > 0);
        assert!(fc.backoff_nanos > 0);
    }

    #[test]
    fn try_write_reports_contiguous_prefix() {
        let mut cfg = SimConfig::test_small();
        cfg.faults = hpc_sim::FaultPlan {
            short: 1.0,
            ..hpc_sim::FaultPlan::default()
        };
        let f = Pfs::new(cfg, StorageMode::Full).create("short");
        let data = vec![7u8; 4000];
        let err = f.try_write_at(Time::ZERO, 0, &data).unwrap_err();
        assert!(err.completed < 4000);
        assert!(err.time > Time::ZERO);
        // The reported prefix really landed. (Bytes *beyond* it may also
        // have landed — portions interleave across servers — which is fine:
        // recovery rewrites them with identical bytes.)
        let mut buf = vec![1u8; 4000];
        f.peek_at(0, &mut buf);
        let c = err.completed as usize;
        assert_eq!(&buf[..c], &data[..c]);
    }

    #[test]
    fn inert_plan_leaves_timings_unchanged() {
        // The fault machinery must cost nothing when inactive: identical
        // completion times with and without the (default) plan wired in.
        let f1 = file();
        let f2 = file();
        let data = vec![3u8; 9000];
        assert_eq!(
            f1.try_write_at(Time::ZERO, 128, &data).unwrap(),
            f2.write_at(Time::ZERO, 128, &data)
        );
    }

    #[test]
    fn write_runs_coalesces_per_server_and_lands_bytes() {
        // Three runs on stripes 0, 4 and 8 — all owned by server 0 in the
        // 4-server test_small layout — reach the disk as ONE request.
        let f = file();
        let runs = [(0u64, 1024u64), (4096, 1024), (8192, 1024)];
        let data: Vec<u8> = (0..3 * 1024u32).map(|i| (i % 239) as u8).collect();
        let c = f.try_write_runs(Time::ZERO, &runs, &data).unwrap();
        assert!(
            c.handoff < c.durable,
            "server owns the bytes before the disk has them"
        );

        let s = Pfs {
            inner: f.inner.clone(),
        };
        let snap = s.stats().snapshot();
        assert_eq!(snap.io_requests, 1, "affine runs coalesce per server");
        assert_eq!(snap.io_bytes_written, 3 * 1024);

        assert_eq!(f.size(), 9216);
        let mut out = vec![1u8; 9216];
        f.read_at(c.durable, 0, &mut out);
        assert_eq!(&out[..1024], &data[..1024]);
        assert_eq!(&out[1024..4096], &[0u8; 3072][..], "gaps stay zero");
        assert_eq!(&out[4096..5120], &data[1024..2048]);
        assert_eq!(&out[8192..9216], &data[2048..]);
    }

    #[test]
    fn write_runs_matches_separate_writes_bytewise() {
        let runs = [(100u64, 900u64), (2048, 2048), (7000, 500)];
        let data: Vec<u8> = (0..3448u32).map(|i| (i * 13 % 251) as u8).collect();

        let vectored = file();
        vectored.try_write_runs(Time::ZERO, &runs, &data).unwrap();

        let scalar = file();
        let mut pos = 0usize;
        for &(off, len) in &runs {
            scalar.write_at(Time::ZERO, off, &data[pos..pos + len as usize]);
            pos += len as usize;
        }
        assert_eq!(vectored.to_bytes(), scalar.to_bytes());
    }

    #[test]
    fn stats_count_requests() {
        let f = file();
        f.write_at(Time::ZERO, 0, &[0u8; 4096]); // 4 servers, 1 KiB each
        let s = Pfs {
            inner: f.inner.clone(),
        };
        let snap = s.stats().snapshot();
        assert_eq!(snap.io_requests, 4);
        assert_eq!(snap.io_bytes_written, 4096);
    }
}
